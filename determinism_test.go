package emnoise

// Determinism regression tests for the parallel evaluation engine: every
// parallel path (GA fitness, island GA, fast resonance sweep, shmoo) must
// produce bit-identical results at any worker count. These tests pin the
// core guarantee the instruments' content-derived noise streams provide;
// `go test -race` over this file also exercises the concurrent paths under
// the race detector.

import (
	"reflect"
	"testing"

	"repro/internal/uarch"
)

// gaRun executes a small GA on a freshly built platform at the given
// parallelism. A fresh platform per run keeps the spectra caches
// independent, so any cross-talk would show up as a difference.
func gaRun(t *testing.T, build func() (*Platform, error), domain string, cores, parallelism int) *GAResult {
	t.Helper()
	plat, err := build()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(domain)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(d.Spec.Pool())
	cfg.PopulationSize = 12
	cfg.Generations = 6
	cfg.Seed = 21
	cfg.Parallelism = parallelism
	res, err := RunGA(cfg, bench.EMMeasurer(d, cores), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGADeterministicAcrossParallelism(t *testing.T) {
	cases := []struct {
		name   string
		build  func() (*Platform, error)
		domain string
		cores  int
	}{
		{"juno-a72", JunoR2, DomainA72, 2},
		{"amd-athlon", AMDDesktop, DomainAthlon, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := gaRun(t, tc.build, tc.domain, tc.cores, 1)
			parallel := gaRun(t, tc.build, tc.domain, tc.cores, 8)
			if !reflect.DeepEqual(serial.Best, parallel.Best) {
				t.Errorf("best individual differs:\nserial   %+v\nparallel %+v",
					serial.Best, parallel.Best)
			}
			if !reflect.DeepEqual(serial.History, parallel.History) {
				t.Error("generation history differs between parallelism 1 and 8")
			}
			if !reflect.DeepEqual(serial.FinalPopulation, parallel.FinalPopulation) {
				t.Error("final population differs between parallelism 1 and 8")
			}
		})
	}
}

func TestIslandGADeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) *GAResult {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		bench, err := NewBench(plat, 3)
		if err != nil {
			t.Fatal(err)
		}
		bench.Samples = 3
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		base := DefaultGAConfig(d.Spec.Pool())
		base.PopulationSize = 10
		base.Generations = 6
		base.Seed = 9
		base.Parallelism = parallelism
		cfg := IslandGAConfig{Base: base, Islands: 3, MigrationInterval: 2, Migrants: 1}
		res, err := RunIslandGA(cfg, bench.EMMeasurer(d, 2), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial.Best, parallel.Best) {
		t.Errorf("island best differs:\nserial   %+v\nparallel %+v", serial.Best, parallel.Best)
	}
	if !reflect.DeepEqual(serial.History, parallel.History) {
		t.Error("island history differs between parallelism 1 and 8")
	}
}

func TestFastSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) *SweepResult {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		bench, err := NewBench(plat, 5)
		if err != nil {
			t.Fatal(err)
		}
		bench.Samples = 3
		bench.Parallelism = parallelism
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.FastResonanceSweep(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("sweep differs between parallelism 1 and 8:\nserial   %+v\nparallel %+v",
			serial, parallel)
	}
}

func TestShmooDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) []ShmooPoint {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		w, err := WorkloadByName("probe")
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w.Build(d.Spec.Pool())
		if err != nil {
			t.Fatal(err)
		}
		tester := NewVminTester(d, 13)
		tester.Parallelism = parallelism
		steps := d.ClockSteps()
		clocks := []float64{steps[len(steps)-1], steps[len(steps)/2], steps[len(steps)/4]}
		points, err := tester.Shmoo(Load{Seq: seq, ActiveCores: 2}, clocks)
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("shmoo differs between parallelism 1 and 8:\nserial   %+v\nparallel %+v",
			serial, parallel)
	}
}

// withTraceCache runs fn with the uarch trace cache forced on or off,
// starting from an empty cache either way, and restores the previous
// setting afterwards.
func withTraceCache(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := uarch.SetTraceCacheEnabled(on)
	uarch.ResetTraceCache()
	defer func() {
		uarch.SetTraceCacheEnabled(prev)
		uarch.ResetTraceCache()
	}()
	fn()
}

// TestTraceCacheBitIdenticalWorkflows pins the trace cache's core contract
// at the workflow level: a fast sweep, a shmoo and a GA run must produce
// bit-identical results whether every operating point simulates from
// scratch or synthesizes from cached (and extended) charge histories.
func TestTraceCacheBitIdenticalWorkflows(t *testing.T) {
	sweep := func() *SweepResult {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		bench, err := NewBench(plat, 5)
		if err != nil {
			t.Fatal(err)
		}
		bench.Samples = 3
		bench.Parallelism = 4
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.FastResonanceSweep(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shmoo := func() []ShmooPoint {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		w, err := WorkloadByName("probe")
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w.Build(d.Spec.Pool())
		if err != nil {
			t.Fatal(err)
		}
		tester := NewVminTester(d, 13)
		tester.Parallelism = 4
		steps := d.ClockSteps()
		clocks := []float64{steps[len(steps)-1], steps[len(steps)/2], steps[len(steps)/4]}
		points, err := tester.Shmoo(Load{Seq: seq, ActiveCores: 2}, clocks)
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	t.Run("sweep", func(t *testing.T) {
		var on, off *SweepResult
		withTraceCache(t, true, func() { on = sweep() })
		withTraceCache(t, false, func() { off = sweep() })
		if !reflect.DeepEqual(on, off) {
			t.Errorf("sweep differs cache-on vs cache-off:\non  %+v\noff %+v", on, off)
		}
	})
	t.Run("shmoo", func(t *testing.T) {
		var on, off []ShmooPoint
		withTraceCache(t, true, func() { on = shmoo() })
		withTraceCache(t, false, func() { off = shmoo() })
		if !reflect.DeepEqual(on, off) {
			t.Errorf("shmoo differs cache-on vs cache-off:\non  %+v\noff %+v", on, off)
		}
	})
	t.Run("ga", func(t *testing.T) {
		var on, off *GAResult
		withTraceCache(t, true, func() { on = gaRun(t, JunoR2, DomainA72, 2, 4) })
		withTraceCache(t, false, func() { off = gaRun(t, JunoR2, DomainA72, 2, 4) })
		if !reflect.DeepEqual(on.Best, off.Best) {
			t.Errorf("GA best differs cache-on vs cache-off:\non  %+v\noff %+v", on.Best, off.Best)
		}
		if !reflect.DeepEqual(on.History, off.History) {
			t.Error("GA history differs cache-on vs cache-off")
		}
		if !reflect.DeepEqual(on.FinalPopulation, off.FinalPopulation) {
			t.Error("GA final population differs cache-on vs cache-off")
		}
	})
}

// withCheckpoints runs fn with the uarch checkpoint store forced on or
// off, starting from an empty store either way, and restores the previous
// setting afterwards.
func withCheckpoints(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := uarch.SetCheckpointsEnabled(on)
	uarch.ResetCheckpointStore()
	defer func() {
		uarch.SetCheckpointsEnabled(prev)
		uarch.ResetCheckpointStore()
	}()
	fn()
}

// TestCheckpointBitIdenticalGAWorkflows pins the PR's hard requirement at
// the workflow level: a GA run is bit-identical with checkpointed replay
// on or off, serial or at 8 workers — four combinations, one result.
func TestCheckpointBitIdenticalGAWorkflows(t *testing.T) {
	combos := []struct {
		name string
		ckpt bool
		jobs int
	}{
		{"ckpt-off-j1", false, 1},
		{"ckpt-off-j8", false, 8},
		{"ckpt-on-j1", true, 1},
		{"ckpt-on-j8", true, 8},
	}
	var base *GAResult
	for _, c := range combos {
		var res *GAResult
		withCheckpoints(t, c.ckpt, func() { res = gaRun(t, JunoR2, DomainA72, 2, c.jobs) })
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Best, base.Best) {
			t.Errorf("%s: best differs from %s:\ngot  %+v\nwant %+v", c.name, combos[0].name, res.Best, base.Best)
		}
		if !reflect.DeepEqual(res.History, base.History) {
			t.Errorf("%s: history differs from %s", c.name, combos[0].name)
		}
		if !reflect.DeepEqual(res.FinalPopulation, base.FinalPopulation) {
			t.Errorf("%s: final population differs from %s", c.name, combos[0].name)
		}
	}
}

// TestCheckpointHitsDuringGA checks the lineage path earns its keep on a
// default-shaped run: bred children must resume from their parents'
// snapshots, so the store reports nonzero hits and a positive mean resume
// depth (the numbers gahunt -v surfaces). The trace cache starts empty so
// full-sequence memoization cannot mask the prefix reuse.
func TestCheckpointHitsDuringGA(t *testing.T) {
	withTraceCache(t, true, func() {
		withCheckpoints(t, true, func() {
			gaRun(t, JunoR2, DomainA72, 2, 4)
			cs := uarch.CheckpointStoreStats()
			if cs.Stored == 0 {
				t.Fatal("no snapshots stored across a GA run")
			}
			if cs.Hits == 0 {
				t.Fatalf("no checkpoint hits across a GA run (%d misses, %d stored)", cs.Misses, cs.Stored)
			}
			if cs.MeanResumeDepth <= 0 {
				t.Fatalf("mean resume depth %.2f, want > 0", cs.MeanResumeDepth)
			}
		})
	})
}

// TestSpectraCacheHitsDuringGA checks the memoization layers earn their
// keep: a GA run re-measures elites and converged duplicates, and with
// generation-batched evaluation those repeats are absorbed by the bench's
// dedup + measurement memo before they ever reach the spectra cache — so
// the batch counters must show the repeat traffic, and every individual
// must be accounted for as measured, deduped, or memo-served.
func TestSpectraCacheHitsDuringGA(t *testing.T) {
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(d.Spec.Pool())
	cfg.PopulationSize = 12
	cfg.Generations = 8
	cfg.Seed = 2
	cfg.Parallelism = 4
	if _, err := RunGA(cfg, bench.EMMeasurer(d, 2), nil); err != nil {
		t.Fatal(err)
	}
	_, misses, _ := d.SpectraCacheStats()
	if misses == 0 {
		t.Fatal("no spectra cache traffic at all")
	}
	bs := bench.BatchStats()
	if bs.Batches == 0 || bs.Items == 0 {
		t.Fatalf("GA run never used batch evaluation: %+v", bs)
	}
	if bs.DedupHits+bs.MemoHits == 0 {
		t.Errorf("no repeat individual was served by dedup or the measurement memo: %+v", bs)
	}
	if bs.Measured+bs.DedupHits+bs.MemoHits != bs.Items {
		t.Errorf("batch accounting leak: measured %d + dedup %d + memo %d != items %d",
			bs.Measured, bs.DedupHits, bs.MemoHits, bs.Items)
	}
	if bs.ArenaBytes == 0 {
		t.Errorf("batch evaluation reported zero arena high-water")
	}
}
