package emnoise

import (
	"testing"
)

func TestPublicGPUPlatform(t *testing.T) {
	p, err := GPUCard()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Domain(DomainGPU)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.TotalCores != 8 {
		t.Fatalf("SM count %d", d.Spec.TotalCores)
	}
	if err := GPUSMCore().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPredictFlow(t *testing.T) {
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	var samples []PredictSample
	for _, name := range []string{"idle", "mcf", "povray", "lbm", "prime95", "namd"} {
		w, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w.Build(d.Spec.Pool())
		if err != nil {
			t.Fatal(err)
		}
		s, err := CollectPredictSample(bench, d, name, Load{Seq: seq, ActiveCores: 2})
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	m, err := TrainDroopModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Features extracted standalone must feed the predictor.
	w, err := WorkloadByName("soplex")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	feats, err := ExtractEMFeatures(bench, d, Load{Seq: seq, ActiveCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pred := m.PredictDroop(feats); pred < 0 {
		t.Fatalf("prediction %v", pred)
	}
	if pred := m.PredictDroop(samples[3].Features); pred <= 0 {
		t.Fatalf("lbm prediction %v", pred)
	}
}

func TestPublicFingerprintAndMitigation(t *testing.T) {
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := CaptureFingerprint(bench, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompareFingerprints(fp, fp, DefaultFingerprintThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tampered {
		t.Fatal("self-comparison flagged")
	}
	// Mitigation analysis over a real response.
	w, err := WorkloadByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := d.SteadyResponse(Load{Seq: seq, ActiveCores: 2}, 0.25e-9, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ac := AdaptiveClock{WarnDroopV: 0.01, EmergencyDroopV: 0.03}
	a, err := AnalyzeMitigation(ac, resp, d.Spec.PDN.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	if a.CaughtFraction < 0 || a.CaughtFraction > 1 {
		t.Fatalf("caught fraction %v", a.CaughtFraction)
	}
}

func TestPublicSDR(t *testing.T) {
	sdr := NewRTLSDR(1)
	if err := sdr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ExperimentExtensions()) != 5 {
		t.Fatalf("%d extensions", len(ExperimentExtensions()))
	}
	if _, err := ExperimentByID("ext-sdr"); err != nil {
		t.Fatal(err)
	}
}
