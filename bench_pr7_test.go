package emnoise

// Fleet-path benchmark: a converged GA generation evaluated through the
// campaign orchestrator. BenchmarkFleetGeneration reads against PR6's
// BenchmarkGenerationBatch/batch64 — the delta is the pure coordination
// tax of sharding a generation across rigs (queueing, stealing, merge),
// which for an in-process fleet should be small change on top of the
// batch path it wraps.

import (
	"math/rand"
	"testing"

	"repro/internal/backend"
	"repro/internal/fleet"
	"repro/internal/ga"
)

// localFleet assembles n in-process rigs on fresh Juno benches matching
// the convergedPopulation bench (seed 3, 3-sample averaging).
func localFleet(b *testing.B, n int) *fleet.Fleet {
	b.Helper()
	rigs := make([]fleet.Rig, n)
	for i := range rigs {
		plat, err := JunoR2()
		if err != nil {
			b.Fatal(err)
		}
		bench, err := NewBench(plat, 3)
		if err != nil {
			b.Fatal(err)
		}
		bench.Samples = 3
		bench.Parallelism = 1
		l, err := backend.NewLocal(bench)
		if err != nil {
			b.Fatal(err)
		}
		rigs[i] = fleet.Rig{Backend: l}
	}
	f, err := fleet.New(rigs, fleet.Options{Slots: 2})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkFleetGeneration evaluates successive bred generations of a
// converged 64-individual population through 1- and 2-rig fleets; ns/op is
// per individual, directly comparable to BenchmarkGenerationBatch/batch64.
func BenchmarkFleetGeneration(b *testing.B) {
	for _, v := range []struct {
		name string
		rigs int
	}{{"fleet1x64", 1}, {"fleet2x64", 2}} {
		b.Run(v.name, func(b *testing.B) {
			withBenchTraceCache(b, true)
			cfg, pop, _, _ := convergedPopulation(b)
			f := localFleet(b, v.rigs)
			defer f.Close()
			m, err := f.Measurer(backend.MeasurerSpec{
				Domain:      DomainA72,
				Metric:      backend.MetricEM,
				ActiveCores: 2,
				Samples:     3,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += len(pop) {
				b.StopTimer()
				pop = ga.NextGeneration(cfg, rng, pop)
				b.StartTimer()
				if err := ga.EvaluatePopulation(pop, m, cfg.Parallelism); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
