package emnoise

import (
	"io"
	"time"

	"repro/internal/experiments"
	"repro/internal/fingerprint"
	"repro/internal/instrument"
	"repro/internal/mitigate"
	"repro/internal/pdn"
	"repro/internal/platform"
	"repro/internal/predict"
	"repro/internal/session"
	"repro/internal/vmin"

	"repro/internal/ga"
)

// This file exposes the beyond-the-paper extensions: the Section 10
// future-work items (GPU PDNs, margin prediction, tamper detection) and the
// adaptive-clocking latency study the Section 6 discussion motivates.

// GPU platform (future work a).

// DomainGPU names the GPU card's voltage domain.
const DomainGPU = platform.DomainGPU

// GPUCard builds a discrete-GPU platform: eight streaming multiprocessors
// under one rail with no voltage visibility.
func GPUCard() (*Platform, error) { return platform.GPUCard() }

// GPUSMCore returns the streaming-multiprocessor core model.
var GPUSMCore = platform.GPUSM

// Margin prediction from EM features (future work c).
type (
	// EMFeatures are the in-band emission observables of one workload.
	EMFeatures = predict.Features
	// PredictSample pairs EM features with ground-truth droop.
	PredictSample = predict.Sample
	// DroopModel is a fitted EM→droop regression.
	DroopModel = predict.Model
)

// ExtractEMFeatures measures a workload's EM features through the bench.
func ExtractEMFeatures(b *Bench, d *Domain, l Load) (EMFeatures, error) {
	return predict.Extract(b, d, l)
}

// CollectPredictSample records EM features plus true droop on an
// instrumented reference domain.
func CollectPredictSample(b *Bench, d *Domain, name string, l Load) (PredictSample, error) {
	return predict.Collect(b, d, name, l)
}

// TrainDroopModel fits the droop predictor by least squares.
func TrainDroopModel(samples []PredictSample) (*DroopModel, error) {
	return predict.Train(samples)
}

// Tamper detection (Section 5.3's motivation).
type (
	// Fingerprint is a captured electrical identity of a domain.
	Fingerprint = fingerprint.Fingerprint
	// FingerprintThresholds configures comparison sensitivity.
	FingerprintThresholds = fingerprint.Thresholds
	// FingerprintReport is the outcome of a comparison.
	FingerprintReport = fingerprint.Report
)

// CaptureFingerprint sweeps a domain and records its fingerprint.
func CaptureFingerprint(b *Bench, d *Domain, activeCores int) (*Fingerprint, error) {
	return fingerprint.Capture(b, d, activeCores)
}

// CompareFingerprints checks a fresh fingerprint against a reference.
func CompareFingerprints(reference, current *Fingerprint, th FingerprintThresholds) (*FingerprintReport, error) {
	return fingerprint.Compare(reference, current, th)
}

// DefaultFingerprintThresholds returns the standard drift limits.
func DefaultFingerprintThresholds() FingerprintThresholds {
	return fingerprint.DefaultThresholds()
}

// Adaptive-clocking study (Section 6 discussion).
type (
	// AdaptiveClock describes a droop detector + clock stretcher.
	AdaptiveClock = mitigate.AdaptiveClock
	// MitigationAnalysis is the outcome of replaying a voltage trace.
	MitigationAnalysis = mitigate.Analysis
	// PDNResponse is a time-domain die-voltage/inductor-current record.
	PDNResponse = pdn.Response
)

// AnalyzeMitigation replays a voltage trace against an adaptive clock.
func AnalyzeMitigation(ac AdaptiveClock, resp *PDNResponse, vnom float64) (*MitigationAnalysis, error) {
	return mitigate.Analyze(ac, resp, vnom)
}

// SDR front end.

// SDRReceiver models a cheap software-defined radio receiver.
type SDRReceiver = instrument.SDR

// NewRTLSDR returns an RTL-SDR-class receiver.
func NewRTLSDR(seed int64) *SDRReceiver { return instrument.NewRTLSDR(seed) }

// ExperimentExtensions lists the beyond-the-paper experiments
// (ext-gpu, ext-predict, ext-tamper, ext-mitigate, ext-sdr).
func ExperimentExtensions() []Experiment { return experiments.Extensions() }

// Island-model GA.
type (
	// IslandGAConfig runs several populations with ring migration.
	IslandGAConfig = ga.IslandConfig
	// IslandGAStats reports one island's per-generation progress.
	IslandGAStats = ga.IslandStats
)

// RunIslandGA executes the island-model GA.
func RunIslandGA(cfg IslandGAConfig, m Measurer, progress func(IslandGAStats)) (*GAResult, error) {
	return ga.RunIslands(cfg, m, progress)
}

// Shmoo curves.

// ShmooPoint is one operating point of a V_MIN-vs-frequency shmoo.
type ShmooPoint = vmin.ShmooPoint

// Session reports.
type (
	// SessionReport is a JSON-serializable characterization record.
	SessionReport = session.Report
)

// NewSessionReport starts a report for a domain's current state.
func NewSessionReport(p *Platform, d *Domain, now time.Time) *SessionReport {
	return session.NewLocal(p, d, now)
}

// NewSessionReportFor starts a report through any measurement backend
// (local or remote), capturing the domain's operating point as the
// backend observes it.
func NewSessionReportFor(be MeasureBackend, domain string, now time.Time) (*SessionReport, error) {
	return session.New(be, domain, now)
}

// LoadSessionReport parses a stored report.
func LoadSessionReport(r io.Reader) (*SessionReport, error) { return session.Load(r) }

// Thermal helpers.

// PDNAtTemperature returns PDN parameters adjusted by deltaC kelvin from
// their calibration temperature.
func PDNAtTemperature(p PDNParams, deltaC float64) PDNParams { return p.AtTemperature(deltaC) }
