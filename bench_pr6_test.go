package emnoise

// Generation-batched evaluation benchmarks and the cached-vs-cold repeat
// guarantee. BenchmarkGenerationBatch is the PR6 headline number: one
// converged GA generation evaluated through the batch path (dedup +
// measurement memo + slab arenas) against the per-individual scalar path,
// normalized per individual so it reads against BenchmarkFitnessEvaluation.

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/ga"
	"repro/internal/uarch"
)

// convergedPopulation runs a real GA to convergence and returns its config,
// final measured population, and the bench, so generation benchmarks start
// from the duplicate-heavy populations late generations actually present.
func convergedPopulation(b *testing.B) (ga.Config, []ga.Individual, Measurer, *Bench) {
	b.Helper()
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	bench, err := NewBench(plat, 3)
	if err != nil {
		b.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultGAConfig(d.Spec.Pool())
	cfg.PopulationSize = 64
	cfg.Generations = 30
	cfg.Seed = 5
	cfg.Parallelism = 1
	m := bench.EMMeasurer(d, 2)
	res, err := RunGA(cfg, m, nil)
	if err != nil {
		b.Fatal(err)
	}
	return cfg, res.FinalPopulation, m, bench
}

// BenchmarkGenerationBatch evaluates successive bred generations of a
// converged 64-individual population; ns/op is per individual. The scalar64
// variant hides MeasureBatch so every individual pays a full per-individual
// measurement; batch64 routes through MeasureBatch, where clone children
// dedup against batchmates and elites hit the cross-generation memo.
func BenchmarkGenerationBatch(b *testing.B) {
	for _, v := range []struct {
		name   string
		scalar bool
	}{{"scalar64", true}, {"batch64", false}} {
		b.Run(v.name, func(b *testing.B) {
			withBenchTraceCache(b, true)
			cfg, pop, m, _ := convergedPopulation(b)
			if v.scalar {
				m = scalarOnly{m: m}
			}
			rng := rand.New(rand.NewSource(99))
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += len(pop) {
				b.StopTimer()
				pop = ga.NextGeneration(cfg, rng, pop)
				b.StartTimer()
				if err := ga.EvaluatePopulation(pop, m, cfg.Parallelism); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// medianRepeatMeasure times k repeat measurements of the same sequence and
// returns the median, bracketing each with the supplied tweak (used to
// defeat the spectra memo in the cold variant).
func medianRepeatMeasure(t *testing.T, m Measurer, seq []Inst, k int, tweak func(i int)) time.Duration {
	t.Helper()
	times := make([]time.Duration, k)
	for i := range times {
		if tweak != nil {
			tweak(i)
		}
		start := time.Now()
		if _, _, err := m.Measure(seq); err != nil {
			t.Fatal(err)
		}
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[k/2]
}

// TestRepeatMeasurementCachedNotSlower pins the PR6 cached-path guarantee
// where it actually pays: re-measuring a sequence the rig has already seen.
// With the caches warm a repeat is a spectra-memo hit; with the simulation
// caches disabled and the memo defeated it pays the full pipeline. The
// cached median must not exceed the cold median (the real margin is several
// fold, so this is robust to container timing noise).
func TestRepeatMeasurementCachedNotSlower(t *testing.T) {
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	pool := d.Spec.Pool()
	seq := pool.RandomSequence(rand.New(rand.NewSource(31)), 50)
	m := bench.EMMeasurer(d, 2)

	prevTC := uarch.SetTraceCacheEnabled(true)
	prevCk := uarch.SetCheckpointsEnabled(true)
	t.Cleanup(func() {
		uarch.SetTraceCacheEnabled(prevTC)
		uarch.SetCheckpointsEnabled(prevCk)
		uarch.ResetTraceCache()
		uarch.ResetCheckpointStore()
	})
	uarch.ResetTraceCache()
	uarch.ResetCheckpointStore()

	// Prime every cache layer, then time warm repeats.
	if _, _, err := m.Measure(seq); err != nil {
		t.Fatal(err)
	}
	const k = 7
	warm := medianRepeatMeasure(t, m, seq, k, nil)

	// Cold repeats: simulation caches off, spectra memo defeated by a
	// per-repeat supply nudge (the memo key includes the supply).
	uarch.SetTraceCacheEnabled(false)
	uarch.SetCheckpointsEnabled(false)
	uarch.ResetTraceCache()
	uarch.ResetCheckpointStore()
	vnom := d.SupplyVolts()
	cold := medianRepeatMeasure(t, m, seq, k, func(i int) {
		if err := d.SetSupplyVolts(vnom - float64(i+1)*1e-7); err != nil {
			t.Fatal(err)
		}
	})

	if warm > cold {
		t.Errorf("cached repeat measurement slower than cold: warm %v > cold %v", warm, cold)
	}
}
