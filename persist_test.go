package emnoise

// Whole-campaign property tests for the persistent cache tier (PR 9): a
// campaign served from a populated disk store in a fresh "process" (empty
// in-memory caches) must be bit-identical — reflect.DeepEqual on the whole
// campaign result — to the same campaign with every cache disabled, at any
// parallelism. Corruption anywhere in the store must degrade to
// recomputation, never to a changed result; and two bench instances with
// separate in-memory caches over one store must share each other's work.

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/uarch"
)

// withPersist installs s (which may be nil) as the disk tier under all
// three evaluation caches — exactly what `-cache-dir` wires up — resets the
// global in-memory trace cache so the run starts process-cold, and restores
// everything afterwards.
func withPersist(t *testing.T, s *castore.Store, fn func()) {
	t.Helper()
	prevU := uarch.SetPersistentStore(s)
	prevP := platform.SetPersistentStore(s)
	prevC := core.SetPersistentStore(s)
	uarch.ResetTraceCache()
	defer func() {
		uarch.SetPersistentStore(prevU)
		platform.SetPersistentStore(prevP)
		core.SetPersistentStore(prevC)
		uarch.ResetTraceCache()
	}()
	fn()
}

func openCampaignStore(t *testing.T) *castore.Store {
	t.Helper()
	s, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPersistentCacheBitIdenticalCampaigns is the PR's acceptance
// property: for each campaign shape (resonance sweep, GA hunt, V_MIN
// shmoo) and each parallelism, three runs must agree bit-for-bit —
// cache-off (trace cache disabled, no store), cold (caches on, no store),
// and disk-warm (fresh in-memory caches over a store populated by a prior
// run). The disk-warm run must actually hit the store.
func TestPersistentCacheBitIdenticalCampaigns(t *testing.T) {
	sweep := func(jobs int) any {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		bench, err := NewBench(plat, 5)
		if err != nil {
			t.Fatal(err)
		}
		bench.Samples = 3
		bench.Parallelism = jobs
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.FastResonanceSweep(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gah := func(jobs int) any {
		return gaRun(t, JunoR2, DomainA72, 2, jobs)
	}
	vminShmoo := func(jobs int) any {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		w, err := WorkloadByName("probe")
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w.Build(d.Spec.Pool())
		if err != nil {
			t.Fatal(err)
		}
		tester := NewVminTester(d, 13)
		tester.Parallelism = jobs
		steps := d.ClockSteps()
		clocks := []float64{steps[len(steps)-1], steps[len(steps)/2], steps[len(steps)/4]}
		points, err := tester.Shmoo(Load{Seq: seq, ActiveCores: 2}, clocks)
		if err != nil {
			t.Fatal(err)
		}
		return points
	}

	campaigns := []struct {
		name string
		run  func(jobs int) any
	}{
		{"sweep", sweep},
		{"ga", gah},
		{"vmin-shmoo", vminShmoo},
	}
	for _, jobs := range []int{1, 8} {
		for _, c := range campaigns {
			t.Run(fmt.Sprintf("%s-j%d", c.name, jobs), func(t *testing.T) {
				var off, cold, warm any
				withTraceCache(t, false, func() { off = c.run(jobs) })
				withTraceCache(t, true, func() { cold = c.run(jobs) })

				s := openCampaignStore(t)
				withPersist(t, s, func() { c.run(jobs) }) // populate
				if s.Stats().Puts == 0 {
					t.Fatal("populating run wrote nothing through to the store")
				}
				hitsBefore := s.Stats().Hits
				withPersist(t, s, func() { warm = c.run(jobs) })
				if s.Stats().Hits == hitsBefore {
					t.Error("disk-warm run never hit the store")
				}

				if !reflect.DeepEqual(cold, off) {
					t.Errorf("cold differs from cache-off:\ncold %+v\noff  %+v", cold, off)
				}
				if !reflect.DeepEqual(warm, off) {
					t.Errorf("disk-warm differs from cache-off:\nwarm %+v\noff  %+v", warm, off)
				}
			})
		}
	}
}

// TestPersistentCacheCorruptionRecomputes: garbling every published entry
// in a populated store must turn the warm run back into a (correct) cold
// run — entries quarantined, results unchanged.
func TestPersistentCacheCorruptionRecomputes(t *testing.T) {
	run := func() *SweepResult {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		bench, err := NewBench(plat, 5)
		if err != nil {
			t.Fatal(err)
		}
		bench.Samples = 3
		bench.Parallelism = 4
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.FastResonanceSweep(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var want *SweepResult
	withTraceCache(t, true, func() { want = run() })

	s := openCampaignStore(t)
	withPersist(t, s, func() { run() })

	// Garble every entry: flip one byte in the middle and truncate the odd
	// ones, covering both corruption shapes at campaign scale.
	var garbled int
	err := filepath.WalkDir(s.Dir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".e") {
			return err
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if garbled%2 == 0 {
			buf[len(buf)/2] ^= 0x5a
		} else {
			buf = buf[:len(buf)/2]
		}
		garbled++
		return os.WriteFile(path, buf, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if garbled == 0 {
		t.Fatal("populated store holds no entries")
	}

	var got *SweepResult
	withPersist(t, s, func() { got = run() })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sweep over a corrupted store differs from the clean result")
	}
	st := s.Stats()
	if st.Corrupt == 0 {
		t.Errorf("no corruption detected across %d garbled entries: %+v", garbled, st)
	}
	if ents, err := os.ReadDir(filepath.Join(s.Dir(), "quarantine")); err != nil || len(ents) == 0 {
		t.Errorf("no quarantined entries (err %v)", err)
	}
}

// TestPersistentStoreSharedAcrossBenches: two bench instances with
// separate in-memory caches (fresh platform, fresh bench, reset trace
// cache) over one store — the second must see the first's measurements and
// reproduce the campaign bit-identically without measuring anything.
func TestPersistentStoreSharedAcrossBenches(t *testing.T) {
	runGA := func() (*GAResult, *core.Bench) {
		plat, err := JunoR2()
		if err != nil {
			t.Fatal(err)
		}
		bench, err := NewBench(plat, 3)
		if err != nil {
			t.Fatal(err)
		}
		bench.Samples = 3
		d, err := plat.Domain(DomainA72)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultGAConfig(d.Spec.Pool())
		cfg.PopulationSize = 12
		cfg.Generations = 6
		cfg.Seed = 21
		cfg.Parallelism = 4
		res, err := RunGA(cfg, bench.EMMeasurer(d, 2), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, bench
	}

	s := openCampaignStore(t)
	var first, second *GAResult
	var secondStats core.BatchStats
	withPersist(t, s, func() { first, _ = runGA() })
	withPersist(t, s, func() {
		var b *core.Bench
		second, b = runGA()
		secondStats = b.BatchStats()
	})

	if !reflect.DeepEqual(first.Best, second.Best) ||
		!reflect.DeepEqual(first.History, second.History) ||
		!reflect.DeepEqual(first.FinalPopulation, second.FinalPopulation) {
		t.Error("second bench's campaign differs from the first's")
	}
	if secondStats.Measured != 0 {
		t.Errorf("second bench re-measured %d items despite a fully populated store (%+v)",
			secondStats.Measured, secondStats)
	}
	if secondStats.MemoHits == 0 {
		t.Errorf("second bench reported no memo traffic: %+v", secondStats)
	}
	if s.Stats().Hits == 0 {
		t.Error("store reports no hits across the second campaign")
	}
}
