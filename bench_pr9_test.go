package emnoise

// BenchmarkWarmStart is the PR9 headline number: a repeat campaign from a
// COLD PROCESS. Every iteration rebuilds the platform, bench, and domain
// and empties the global trace cache — exactly what a new `gahunt`
// invocation sees — then evaluates one fixed 32-individual generation
// through the batch path. The cold variant has no persistent store, so the
// whole simulate→respond→FFT→measure pipeline runs; the cached variant
// runs over a store populated once up front, so every individual is served
// by the disk tier. ns/op is per individual, directly comparable to
// BenchmarkGenerationBatch.

import (
	"math/rand"
	"testing"

	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/platform"
	"repro/internal/uarch"
)

// withBenchPersist installs s under all three caches for the duration of
// the benchmark, as `-cache-dir` does, restoring the previous stores on
// cleanup.
func withBenchPersist(b *testing.B, s *castore.Store) {
	b.Helper()
	prevU := uarch.SetPersistentStore(s)
	prevP := platform.SetPersistentStore(s)
	prevC := core.SetPersistentStore(s)
	b.Cleanup(func() {
		uarch.SetPersistentStore(prevU)
		platform.SetPersistentStore(prevP)
		core.SetPersistentStore(prevC)
	})
}

// warmStartPopulation builds the fixed generation every "process" in the
// benchmark re-evaluates: 32 distinct 50-instruction sequences drawn from
// the A72 pool with a pinned seed.
func warmStartPopulation(b *testing.B) []ga.Individual {
	b.Helper()
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	pool := d.Spec.Pool()
	rng := rand.New(rand.NewSource(41))
	pop := make([]ga.Individual, 32)
	for i := range pop {
		pop[i] = ga.Individual{Seq: pool.RandomSequence(rng, 50)}
	}
	return pop
}

// evaluateFreshProcess stands in for one cold process: fresh platform,
// fresh bench (empty batch memo and spectra memo), empty trace cache, then
// one batch evaluation of pop.
func evaluateFreshProcess(b *testing.B, pop []ga.Individual) {
	b.Helper()
	uarch.ResetTraceCache()
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	bench, err := NewBench(plat, 3)
	if err != nil {
		b.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	if err := ga.EvaluatePopulation(pop, bench.EMMeasurer(d, 2), 1); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWarmStart(b *testing.B) {
	for _, v := range []struct {
		name  string
		store bool
	}{{"cold", false}, {"cached", true}} {
		b.Run(v.name, func(b *testing.B) {
			withBenchTraceCache(b, true)
			pop := warmStartPopulation(b)
			if v.store {
				s, err := castore.Open(b.TempDir(), castore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				withBenchPersist(b, s)
				evaluateFreshProcess(b, pop) // populate the store once
			} else {
				withBenchPersist(b, nil) // genuinely cold: no disk tier
			}
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += len(pop) {
				evaluateFreshProcess(b, pop)
			}
		})
	}
}
