// Resonance sweep: the paper's Section 5.3 "15-minute" method applied to
// all three CPUs — the dual-core Cortex-A72, the quad-core Cortex-A53 and
// the Athlon II X4 — including the power-gating experiment where gating
// cores removes die capacitance and pushes the resonance up (Figure 13).
//
//	go run ./examples/resonance_sweep
package main

import (
	"fmt"
	"log"

	emnoise "repro"
)

func main() {
	juno, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	amd, err := emnoise.AMDDesktop()
	if err != nil {
		log.Fatal(err)
	}
	junoBench, err := emnoise.NewBench(juno, 1)
	if err != nil {
		log.Fatal(err)
	}
	amdBench, err := emnoise.NewBench(amd, 2)
	if err != nil {
		log.Fatal(err)
	}
	junoBench.Samples, amdBench.Samples = 10, 10

	type run struct {
		bench   *emnoise.Bench
		plat    *emnoise.Platform
		domain  string
		powered int
	}
	runs := []run{
		{junoBench, juno, emnoise.DomainA72, 2},
		{junoBench, juno, emnoise.DomainA72, 1},
		{junoBench, juno, emnoise.DomainA53, 4},
		{junoBench, juno, emnoise.DomainA53, 3},
		{junoBench, juno, emnoise.DomainA53, 2},
		{junoBench, juno, emnoise.DomainA53, 1},
		{amdBench, amd, emnoise.DomainAthlon, 4},
	}
	fmt.Println("CPU                powered   first-order resonance")
	for _, r := range runs {
		d, err := r.plat.Domain(r.domain)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.SetPoweredCores(r.powered); err != nil {
			log.Fatal(err)
		}
		res, err := r.bench.FastResonanceSweep(d, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %7d   %6.1f MHz\n", r.domain, r.powered, res.ResonanceHz/1e6)
		d.Reset()
	}
	fmt.Println("\nnote how gating cores raises each cluster's resonance: less die")
	fmt.Println("capacitance means a faster (and harder to mitigate) oscillation.")
}
