// Quickstart: characterize a CPU's power-delivery network using only its
// electromagnetic emanations — no voltage probes, no on-chip monitors.
//
// This walks the paper's core loop on the simulated ARM Juno R2 board:
// build the bench (platform + antenna + spectrum analyzer), locate the
// PDN's first-order resonance with the fast clock sweep, then evolve a
// dI/dt stress virus whose fitness is nothing but the received EM peak.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	emnoise "repro"
)

func main() {
	plat, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	bench, err := emnoise.NewBench(plat, 1)
	if err != nil {
		log.Fatal(err)
	}
	bench.Samples = 10 // fewer analyzer sweeps per point than the paper's 30: quick demo

	a72, err := plat.Domain(emnoise.DomainA72)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: the Section 5.3 fast resonance sweep (~15 minutes on real
	// hardware, a second here).
	sweep, err := bench.FastResonanceSweep(a72, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast sweep: first-order resonance ~ %.1f MHz (peak %.1f dBm, %d clock steps)\n",
		sweep.ResonanceHz/1e6, sweep.PeakDBm, len(sweep.Points))

	// Step 2: evolve an EM-guided dI/dt virus. A short run for the demo;
	// the paper uses 50 individuals for 60+ generations.
	cfg := emnoise.DefaultGAConfig(a72.Spec.Pool())
	cfg.PopulationSize = 24
	cfg.Generations = 20
	virus, err := bench.GenerateVirus(a72, cfg, 2, func(s emnoise.GAStats) {
		fmt.Printf("  gen %2d: best %6.2f dBm, dominant %6.2f MHz\n",
			s.Gen, s.BestFitness, s.BestDominant/1e6)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virus dominant frequency %.2f MHz — the GA found the resonance blind\n",
		virus.Best.DominantHz/1e6)

	// Step 3: the evolved individual is ordinary assembly.
	fmt.Println("\nwinning stress loop:")
	fmt.Print(emnoise.FormatProgram(a72.Spec.Pool(), virus.Best.Seq))
}
