// V_MIN margin study: compare the minimum stable operating voltage of
// ordinary benchmarks against an EM-evolved dI/dt virus on the Cortex-A72,
// reproducing the structure of the paper's Figure 10 and the Section 8.1
// margin analysis.
//
//	go run ./examples/vmin_margin
package main

import (
	"fmt"
	"log"

	emnoise "repro"
)

func main() {
	plat, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	bench, err := emnoise.NewBench(plat, 1)
	if err != nil {
		log.Fatal(err)
	}
	bench.Samples = 10
	d, err := plat.Domain(emnoise.DomainA72)
	if err != nil {
		log.Fatal(err)
	}
	pool := d.Spec.Pool()

	// Evolve the virus first (short run for the demo).
	cfg := emnoise.DefaultGAConfig(pool)
	cfg.PopulationSize = 24
	cfg.Generations = 20
	virus, err := bench.GenerateVirus(d, cfg, 2, nil)
	if err != nil {
		log.Fatal(err)
	}

	tester := emnoise.NewVminTester(d, 42)
	nominal := d.Spec.PDN.VNominal

	fmt.Printf("workload      Vmin      margin    droop@nominal  first failure\n")
	show := func(name string, load emnoise.Load) {
		res, err := tester.Search(load)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %.3f V   %5.0f mV  %8.1f mV    %s\n",
			name, res.VminV, res.MarginV*1e3, res.DroopNominalV*1e3, res.Outcome)
	}
	for _, name := range []string{"idle", "mcf", "povray", "lbm", "prime95"} {
		w, err := emnoise.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := w.Build(pool)
		if err != nil {
			log.Fatal(err)
		}
		show(name, emnoise.Load{Seq: seq, ActiveCores: 2})
	}
	show("EM virus", emnoise.Load{Seq: virus.Best.Seq, ActiveCores: 2})

	fmt.Printf("\nnominal supply is %.2f V; the gap between the virus and the noisiest\n", nominal)
	fmt.Println("benchmark is exactly the margin a designer would have wasted (or the")
	fmt.Println("crash they would have shipped) without a proper dI/dt stress test.")
}
