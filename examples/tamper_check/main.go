// Tamper check: the fast resonance sweep as a supply-chain integrity tool
// (the paper's Section 5.3 motivates "tampering detection" as a use of
// quick PDN characterization). A board's first-order resonance and sweep
// curve form an electrical fingerprint; a hardware implant or board rework
// changes the PDN's reactances and shifts it — detectable with nothing but
// the antenna, no matter how well the implant hides from software.
//
//	go run ./examples/tamper_check
package main

import (
	"fmt"
	"log"

	emnoise "repro"
)

func main() {
	// Provisioning: fingerprint the genuine board.
	genuine, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	bench, err := emnoise.NewBench(genuine, 1)
	if err != nil {
		log.Fatal(err)
	}
	a72, err := genuine.Domain(emnoise.DomainA72)
	if err != nil {
		log.Fatal(err)
	}
	reference, err := emnoise.CaptureFingerprint(bench, a72, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference fingerprint: resonance %.2f MHz, %d curve points\n",
		reference.ResonanceHz/1e6, len(reference.CurveHz))

	check := func(label string, plat *emnoise.Platform, seed int64) {
		b, err := emnoise.NewBench(plat, seed)
		if err != nil {
			log.Fatal(err)
		}
		d, err := plat.Domain(emnoise.DomainA72)
		if err != nil {
			log.Fatal(err)
		}
		fp, err := emnoise.CaptureFingerprint(b, d, 2)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := emnoise.CompareFingerprints(reference, fp, emnoise.DefaultFingerprintThresholds())
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ok"
		if rep.Tampered {
			verdict = "TAMPERED"
		}
		fmt.Printf("%-22s shift %+6.2f MHz, curve RMS %.2f dB -> %s (%s)\n",
			label, rep.ShiftHz/1e6, rep.CurveRMSDB, verdict, rep.Reason)
	}

	// Field check 1: the same board, months later, different noise.
	fieldBoard, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	check("genuine re-check", fieldBoard, 77)

	// Field check 2: an interposer implant between package and board adds
	// series inductance to the power path.
	implanted, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	a72Spec, err := implanted.Domain(emnoise.DomainA72)
	if err != nil {
		log.Fatal(err)
	}
	a53Spec, err := implanted.Domain(emnoise.DomainA53)
	if err != nil {
		log.Fatal(err)
	}
	spec := a72Spec.Spec
	spec.PDN.LPkg *= 1.35
	evil, err := emnoise.NewPlatform("juno-implanted", implanted.Antenna, spec, a53Spec.Spec)
	if err != nil {
		log.Fatal(err)
	}
	check("interposer implant", evil, 78)
}
