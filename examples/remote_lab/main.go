// Remote lab: the paper's distributed setup (Section 3.2) — the GA runs on
// a workstation, each individual's source is shipped to the target machine,
// assembled and executed there, measured with the bench instruments, then
// killed. Here both ends run in one process over a loopback TCP socket, but
// the protocol is the same one `cmd/labtarget` serves, so the workstation
// half works unchanged against a remote daemon.
//
//	go run ./examples/remote_lab
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	emnoise "repro"
)

func main() {
	// Target machine side: the platform under test plus the instruments.
	plat, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	bench, err := emnoise.NewBench(plat, 1)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := emnoise.NewLabServer(bench)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("labtarget serving on %s\n", ln.Addr())

	// Workstation side: everything below talks only through the socket.
	client, err := emnoise.DialLab(ln.Addr().String(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	name, domains, err := client.Info()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected to %s (domains: %v)\n", name, domains)

	// Remote fast sweep.
	resHz, peak, points, err := client.Sweep(emnoise.DomainA72, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote sweep: resonance %.1f MHz (peak %.1f dBm, %d points)\n",
		resHz/1e6, peak, points)

	// Remote GA: the measurer ships each individual over the wire.
	a72, err := plat.Domain(emnoise.DomainA72)
	if err != nil {
		log.Fatal(err)
	}
	pool := a72.Spec.Pool()
	cfg := emnoise.DefaultGAConfig(pool)
	cfg.PopulationSize = 16
	cfg.Generations = 8
	measurer := client.Measurer(emnoise.DomainA72, 2, 5, pool)
	res, err := emnoise.RunGA(cfg, measurer, func(s emnoise.GAStats) {
		fmt.Printf("gen %d: best %.2f dBm @ %.1f MHz\n",
			s.Gen, s.BestFitness, s.BestDominant/1e6)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Remote V_MIN of the evolved virus.
	if err := client.Load(emnoise.DomainA72, 2, pool, res.Best.Seq); err != nil {
		log.Fatal(err)
	}
	vres, err := client.Vmin(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virus V_MIN (remote, worst of 3): %.3f V, margin %.0f mV (%s)\n",
		vres.VminV, vres.MarginV*1e3, vres.Outcome)
}
