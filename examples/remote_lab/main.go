// Remote lab: the paper's distributed setup (Section 3.2) — the GA runs on
// a workstation, each individual's source is shipped to the target machine,
// assembled and executed there, measured with the bench instruments, then
// killed. Here both ends run in one process over a loopback TCP socket, but
// the protocol is the same one `cmd/labtarget` serves, so the workstation
// half works unchanged against a remote daemon.
//
// The workstation side talks only through the MeasureBackend interface —
// the same one every command uses — so the identical campaign also runs on
// a LocalBackend, and this example does exactly that to show the two are
// bit-identical. To show the transport earning its keep, the remote half
// goes through a deterministic fault-injection proxy that drops
// connections mid-command, delays replies past the client's deadline and
// garbles reply lines (measurements are content-deterministic, so retries
// cannot change them).
//
//	go run ./examples/remote_lab
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	emnoise "repro"
)

func main() {
	// Target machine side: the platform under test plus the instruments,
	// served as a lab daemon.
	plat, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	bench, err := emnoise.NewBench(plat, 1)
	if err != nil {
		log.Fatal(err)
	}
	bench.Samples = 5
	srv, err := emnoise.NewLabServer(bench)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("labtarget serving on %s\n", ln.Addr())

	// A reference rig — same platform, same seed — driven locally through
	// the same interface, to prove the remote bytes.
	refPlat, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	refBench, err := emnoise.NewBench(refPlat, 1)
	if err != nil {
		log.Fatal(err)
	}
	refBench.Samples = 5
	refBench.Parallelism = 8
	local, err := emnoise.NewLocalBackend(refBench)
	if err != nil {
		log.Fatal(err)
	}

	// A flaky network between workstation and target: seeded faults on the
	// reply path — dropped connections, delayed and corrupted replies.
	proxy, err := emnoise.NewChaosProxy(ln.Addr().String(), emnoise.ChaosConfig{
		Seed:       7,
		DropRate:   0.04,
		GarbleRate: 0.03,
		DelayRate:  0.01,
		Delay:      400 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	fmt.Printf("chaos proxy (drops, delays, garbles) on %s\n", proxy.Addr())

	// Workstation side: one remote backend over the proxied socket, backed
	// by a pool of 8 sessions (sweep -remote ADDR -j 8 builds exactly this).
	remote, err := emnoise.NewRemoteBackend(proxy.Addr(), 8, emnoise.LabOptions{
		IOTimeout:   200 * time.Millisecond,
		MaxAttempts: 8,
		BackoffBase: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	remote.Samples = 5

	fmt.Printf("connected to %s (protocol v%d, domains %v)\n",
		remote.PlatformName(), remote.ProtocolVersion(), remote.Domains())

	// Capability negotiation: the daemon advertises what each domain can
	// measure, so impossible requests fail up front with a typed error
	// instead of mid-campaign.
	caps, err := remote.Caps(emnoise.DomainA72)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d cores, voltage visibility %q\n",
		emnoise.DomainA72, caps.TotalCores, caps.VoltageVisibility)
	_, err = remote.Measurer(emnoise.BackendMeasurerSpec{
		Domain: emnoise.DomainA53, Metric: emnoise.MetricDroop, ActiveCores: 4,
	})
	fmt.Printf("droop on the voltage-blind A53 refused up front (typed: %v): %v\n",
		emnoise.IsCapabilityError(err), err)

	// Remote fast sweep vs the local reference.
	rsw, err := remote.ResonanceSweep(emnoise.DomainA72, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	lsw, err := local.ResonanceSweep(emnoise.DomainA72, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote sweep: resonance %.1f MHz (peak %.1f dBm) — matches local: %v\n",
		rsw.ResonanceHz/1e6, rsw.PeakDBm, rsw.ResonanceHz == lsw.ResonanceHz && rsw.PeakDBm == lsw.PeakDBm)

	// The GA through the backend's measurer factory: each parallel fitness
	// evaluation checks a session out of the pool and ships its individual
	// over the wire.
	cfg := emnoise.DefaultGAConfig(caps.Pool())
	cfg.PopulationSize = 16
	cfg.Generations = 8
	cfg.Parallelism = 8
	spec := emnoise.BackendMeasurerSpec{
		Domain: emnoise.DomainA72, Metric: emnoise.MetricEM, ActiveCores: 2, Samples: 5,
	}
	rm, err := remote.Measurer(spec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := emnoise.RunGA(cfg, rm, func(s emnoise.GAStats) {
		fmt.Printf("gen %d: best %.2f dBm @ %.1f MHz\n",
			s.Gen, s.BestFitness, s.BestDominant/1e6)
	})
	if err != nil {
		log.Fatal(err)
	}
	lm, err := local.Measurer(spec)
	if err != nil {
		log.Fatal(err)
	}
	lres, err := emnoise.RunGA(cfg, lm, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote GA best %.2f dBm — matches local: %v\n",
		res.Best.Fitness, res.Best.Fitness == lres.Best.Fitness)

	// V_MIN of the evolved virus, worst of 3, on both backends.
	load := emnoise.Load{Seq: res.Best.Seq, ActiveCores: 2}
	vres, _, err := remote.Vmin(emnoise.DomainA72, load, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	lvres, _, err := local.Vmin(emnoise.DomainA72, load, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virus V_MIN (remote, worst of 3): %.3f V, margin %.0f mV (%s) — matches local: %v\n",
		vres.VminV, vres.MarginV*1e3, vres.Outcome, vres.VminV == lvres.VminV)

	// What the transport absorbed along the way.
	cs := proxy.Stats()
	fmt.Printf("chaos injected: %d drops, %d delays, %d garbles over %d connection(s)\n",
		cs.Drops, cs.Delays, cs.Garbles, cs.Conns)
	fmt.Println(remote.TransportStats().String())
}
