// Remote lab: the paper's distributed setup (Section 3.2) — the GA runs on
// a workstation, each individual's source is shipped to the target machine,
// assembled and executed there, measured with the bench instruments, then
// killed. Here both ends run in one process over a loopback TCP socket, but
// the protocol is the same one `cmd/labtarget` serves, so the workstation
// half works unchanged against a remote daemon.
//
// To show the transport earning its keep, the workstation talks to the
// daemon through a deterministic fault-injection proxy that drops
// connections mid-command, delays replies past the client's deadline and
// garbles reply lines — and the GA still finishes, in parallel, with the
// exact result a fault-free serial run produces (measurements are
// content-deterministic, so retries cannot change them).
//
//	go run ./examples/remote_lab
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	emnoise "repro"
)

func main() {
	// Target machine side: the platform under test plus the instruments.
	plat, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	bench, err := emnoise.NewBench(plat, 1)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := emnoise.NewLabServer(bench)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("labtarget serving on %s\n", ln.Addr())

	// A flaky network between workstation and target: seeded faults on the
	// reply path — dropped connections, delayed and corrupted replies.
	proxy, err := emnoise.NewChaosProxy(ln.Addr().String(), emnoise.ChaosConfig{
		Seed:       7,
		DropRate:   0.04,
		GarbleRate: 0.03,
		DelayRate:  0.01,
		Delay:      400 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	fmt.Printf("chaos proxy (drops, delays, garbles) on %s\n", proxy.Addr())

	// Workstation side: everything below talks only through the proxied
	// socket. A single resilient client first...
	client, err := emnoise.DialLabOptions(proxy.Addr(), emnoise.LabOptions{
		IOTimeout:   200 * time.Millisecond,
		MaxAttempts: 8,
		BackoffBase: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	name, domains, err := client.Info()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected to %s (domains: %v)\n", name, domains)

	// Remote fast sweep.
	resHz, peak, points, err := client.Sweep(emnoise.DomainA72, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote sweep: resonance %.1f MHz (peak %.1f dBm, %d points)\n",
		resHz/1e6, peak, points)

	// ...then a pool of 8 sessions for the GA: each parallel fitness
	// evaluation checks a client out and ships its individual over the
	// wire (gahunt -remote -j 8 does exactly this).
	pool, err := emnoise.NewLabPool(proxy.Addr(), 8, emnoise.LabOptions{
		IOTimeout:   200 * time.Millisecond,
		MaxAttempts: 8,
		BackoffBase: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	a72, err := plat.Domain(emnoise.DomainA72)
	if err != nil {
		log.Fatal(err)
	}
	ipool := a72.Spec.Pool()
	cfg := emnoise.DefaultGAConfig(ipool)
	cfg.PopulationSize = 16
	cfg.Generations = 8
	cfg.Parallelism = 8
	measurer := pool.Measurer(emnoise.DomainA72, 2, 5, ipool)
	res, err := emnoise.RunGA(cfg, measurer, func(s emnoise.GAStats) {
		fmt.Printf("gen %d: best %.2f dBm @ %.1f MHz\n",
			s.Gen, s.BestFitness, s.BestDominant/1e6)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Remote V_MIN of the evolved virus.
	if err := client.Load(emnoise.DomainA72, 2, ipool, res.Best.Seq); err != nil {
		log.Fatal(err)
	}
	vres, err := client.Vmin(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virus V_MIN (remote, worst of 3): %.3f V, margin %.0f mV (%s)\n",
		vres.VminV, vres.MarginV*1e3, vres.Outcome)

	// What the transport absorbed along the way.
	cs := proxy.Stats()
	fmt.Printf("chaos injected: %d drops, %d delays, %d garbles over %d connection(s)\n",
		cs.Drops, cs.Delays, cs.Garbles, cs.Conns)
	fmt.Println(pool.Stats().String())
}
