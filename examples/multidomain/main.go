// Multi-domain monitoring: a single antenna observes voltage emergencies on
// both Juno voltage domains at once (the paper's Figure 15) — something no
// physically attached single-rail probe can do. Both clusters run their
// own evolved viruses simultaneously and the combined spectrum shows both
// resonance signatures.
//
//	go run ./examples/multidomain
package main

import (
	"fmt"
	"log"

	emnoise "repro"
)

func main() {
	plat, err := emnoise.JunoR2()
	if err != nil {
		log.Fatal(err)
	}
	bench, err := emnoise.NewBench(plat, 1)
	if err != nil {
		log.Fatal(err)
	}
	bench.Samples = 10

	a72, err := plat.Domain(emnoise.DomainA72)
	if err != nil {
		log.Fatal(err)
	}
	a53, err := plat.Domain(emnoise.DomainA53)
	if err != nil {
		log.Fatal(err)
	}

	evolve := func(d *emnoise.Domain, cores int) []emnoise.Inst {
		cfg := emnoise.DefaultGAConfig(d.Spec.Pool())
		cfg.PopulationSize = 20
		cfg.Generations = 15
		res, err := bench.GenerateVirus(d, cfg, cores, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s virus dominant: %.1f MHz\n", d.Spec.Name, res.Best.DominantHz/1e6)
		return res.Best.Seq
	}
	v72 := evolve(a72, 2)
	v53 := evolve(a53, 4)

	sweep, err := bench.MonitorAll(map[string]emnoise.Load{
		emnoise.DomainA72: {Seq: v72, ActiveCores: 2},
		emnoise.DomainA53: {Seq: v53, ActiveCores: 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncombined spectrum, 50-110 MHz (both viruses running):")
	for i, f := range sweep.Freqs {
		if f < 50e6 || f > 110e6 {
			continue
		}
		bar := int(sweep.DBm[i]) + 95 // crude dB-above-floor bar
		if bar < 0 {
			bar = 0
		}
		fmt.Printf("%6.1f MHz %7.1f dBm  %s\n", f/1e6, sweep.DBm[i], stars(bar/2))
	}
	f72, p72, _ := sweep.PeakInBand(55e6, 72e6)
	f53, p53, _ := sweep.PeakInBand(72e6, 90e6)
	fmt.Printf("\nA72 signature at %.1f MHz (%.1f dBm); A53 signature at %.1f MHz (%.1f dBm)\n",
		f72/1e6, p72, f53/1e6, p53)
}

func stars(n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
