// Custom platform: the methodology is cross-platform by construction
// (Section 1.1), so characterizing a CPU nobody has modelled before is a
// matter of describing its PDN, its core and its EM coupling. This example
// builds a fictional octa-core server part, finds its resonance with the
// fast sweep, verifies against the analytic model, and evolves a virus.
//
//	go run ./examples/custom_platform
package main

import (
	"fmt"
	"log"

	emnoise "repro"
)

func main() {
	// An octa-core in-order server part on a stiff package: lots of die
	// capacitance, so a fairly low first-order resonance.
	pdnParams := emnoise.PDNParams{
		Name:       "octane-soc",
		VNominal:   0.9,
		CDieCore:   5e-9,
		CDieUncore: 8e-9,
		RDie:       0.015,
		LPkg:       120e-12,
		RPkgTrace:  0.4e-3,
		CPkg:       2e-6,
		ESRPkg:     15e-3,
		ESLPkg:     50e-12,
		LPcb:       2e-9,
		RPcbTrace:  1e-3,
		CPcb:       400e-6,
		ESRPcb:     2e-3,
		ESLPcb:     1e-9,
		LVrm:       15e-9,
		RVrm:       0.5e-3,
	}
	core := emnoise.CortexA53Core() // reuse the in-order model
	core.Name = "octane-core"

	spec := emnoise.DomainSpec{
		Name:              "octane",
		Board:             "custom-eval-board",
		ISA:               emnoise.ARM64,
		PDN:               pdnParams,
		Core:              core,
		TotalCores:        8,
		MaxClockHz:        1.5e9,
		ClockStepHz:       25e6,
		VoltageVisibility: "none", // exactly the case the EM method exists for
		EMPath:            emnoise.EMPath{DistanceM: 0.08, CouplingK: 1e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           emnoise.FailureParams{VCritAtMax: 0.68, SlackPerHz: 1e-10, SDCBand: 0.010},
		TechNode:          7,
		OS:                "Linux",
	}
	plat, err := emnoise.NewPlatform("octane-board", emnoise.DefaultLoopAntenna(), spec)
	if err != nil {
		log.Fatal(err)
	}
	d, err := plat.Domain("octane")
	if err != nil {
		log.Fatal(err)
	}

	// What the physics says (we built the PDN, so we can peek).
	model, err := d.Model()
	if err != nil {
		log.Fatal(err)
	}
	truth, _, err := model.ResonancePeak(20e6, 200e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic model: first-order resonance at %.1f MHz\n", truth/1e6)

	// What the antenna says (all a real user would have).
	bench, err := emnoise.NewBench(plat, 1)
	if err != nil {
		log.Fatal(err)
	}
	bench.Samples = 10
	sweep, err := bench.FastResonanceSweep(d, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EM fast sweep: first-order resonance at %.1f MHz\n", sweep.ResonanceHz/1e6)

	// And a virus for margin testing, evolved blind.
	cfg := emnoise.DefaultGAConfig(d.Spec.Pool())
	cfg.PopulationSize = 20
	cfg.Generations = 15
	virus, err := bench.GenerateVirus(d, cfg, 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolved virus dominant frequency: %.1f MHz\n", virus.Best.DominantHz/1e6)

	tester := emnoise.NewVminTester(d, 7)
	res, err := tester.Search(emnoise.Load{Seq: virus.Best.Seq, ActiveCores: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virus V_MIN %.3f V -> usable margin below nominal: %.0f mV\n",
		res.VminV, res.MarginV*1e3)
}
