package emnoise_test

import (
	"fmt"

	emnoise "repro"
)

// The antenna model is deterministic, so its headline numbers make a
// stable documentation example.
func ExampleDefaultLoopAntenna() {
	ant := emnoise.DefaultLoopAntenna()
	fmt.Printf("self-resonance: %.2f GHz\n", ant.SelfResonanceHz/1e9)
	fmt.Printf("|S11| at 100 MHz: %.2f (fully mismatched, flat)\n", ant.S11(100e6))
	fmt.Printf("|S11| at resonance: %.2f (deep dip)\n", ant.S11(ant.SelfResonanceHz))
	// Output:
	// self-resonance: 2.95 GHz
	// |S11| at 100 MHz: 1.00 (fully mismatched, flat)
	// |S11| at resonance: 0.25 (deep dip)
}

// Platforms expose their calibrated PDNs; the analytic first-order
// resonance follows 1/(2π·sqrt(L·C)) with per-core die capacitance.
func ExampleJunoR2() {
	plat, err := emnoise.JunoR2()
	if err != nil {
		panic(err)
	}
	a72, err := plat.Domain(emnoise.DomainA72)
	if err != nil {
		panic(err)
	}
	m, err := a72.Model()
	if err != nil {
		panic(err)
	}
	fmt.Printf("die capacitance, both cores: %.1f nF\n", m.CDie()*1e9)
	// The analytic estimate ignores damping and decap parasitics, so it
	// sits above the true impedance peak (~67 MHz on this domain).
	fmt.Printf("analytic first-order resonance: %.1f MHz\n", m.FirstOrderResonance()/1e6)
	// Output:
	// die capacitance, both cores: 31.3 nF
	// analytic first-order resonance: 76.9 MHz
}

// Stress loops serialize as assembly text — this is how individuals travel
// to the lab daemon and how viruses are stored in session reports.
func ExampleFormatProgram() {
	pool := emnoise.ARM64Pool()
	add, _ := pool.DefByMnemonic("add")
	ldr, _ := pool.DefByMnemonic("ldr")
	seq := []emnoise.Inst{
		{Def: add, Dest: 1, Srcs: [2]int{2, 3}},
		{Def: ldr, Dest: 4, Addr: 2},
	}
	fmt.Print(emnoise.FormatProgram(pool, seq))
	// Output:
	// # pool: arm64
	// loop:
	// 	add x1, x2, x3
	// 	ldr x4, [m2]
	// 	b loop
}

// Power-gating cores removes die capacitance and raises the resonance —
// the Section 6 effect the EM sweep observes from outside the package.
func ExampleDomain_SetPoweredCores() {
	plat, err := emnoise.JunoR2()
	if err != nil {
		panic(err)
	}
	a53, err := plat.Domain(emnoise.DomainA53)
	if err != nil {
		panic(err)
	}
	for _, cores := range []int{4, 1} {
		if err := a53.SetPoweredCores(cores); err != nil {
			panic(err)
		}
		m, err := a53.Model()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d cores powered: %.1f MHz\n", cores, m.FirstOrderResonance()/1e6)
	}
	// Output:
	// 4 cores powered: 93.3 MHz
	// 1 cores powered: 118.3 MHz
}
