// Command sweep runs the paper's fast EM resonance sweep (Section 5.3):
// the two-phase probe loop executes while the CPU clock steps through its
// range, and the loop frequency with the strongest emission reveals the
// PDN's first-order resonance — in minutes, with no voltage probing.
//
// Usage:
//
//	sweep -platform juno -domain cortex-a72 -powered 2 -active 2
//	sweep -platform juno -domain cortex-a53 -powered 1 -active 1
//	sweep -platform amd
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/prof"
	"repro/internal/report"
)

func main() {
	var (
		plat    = flag.String("platform", "juno", "platform: juno or amd")
		domName = flag.String("domain", "", "voltage domain (defaults to the platform's first)")
		powered = flag.Int("powered", 0, "powered cores (default: all)")
		active  = flag.Int("active", 1, "cores running the probe loop")
		seed    = flag.Int64("seed", 1, "random seed")
		samples = flag.Int("samples", 30, "analyzer sweeps averaged per point")
		jobs    = flag.Int("j", runtime.NumCPU(), "parallel sweep points (results are identical at any setting)")
		verbose = flag.Bool("v", false, "print cache statistics after the sweep")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprof, *memprof)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var p *platform.Platform
	switch *plat {
	case "juno":
		p, err = platform.JunoR2()
	case "amd":
		p, err = platform.AMDDesktop()
	default:
		err = fmt.Errorf("unknown platform %q", *plat)
	}
	if err != nil {
		fatal(err)
	}
	name := *domName
	if name == "" {
		name = p.Domains()[0].Spec.Name
	}
	d, err := p.Domain(name)
	if err != nil {
		fatal(err)
	}
	if *powered > 0 {
		if err := d.SetPoweredCores(*powered); err != nil {
			fatal(err)
		}
	}
	bench, err := core.NewBench(p, *seed)
	if err != nil {
		fatal(err)
	}
	bench.Samples = *samples
	bench.Parallelism = *jobs

	res, err := bench.FastResonanceSweep(d, *active)
	if err != nil {
		fatal(err)
	}
	xs := make([]float64, len(res.Points))
	ys := make([]float64, len(res.Points))
	for i, pt := range res.Points {
		xs[i] = pt.LoopHz / 1e6
		ys[i] = pt.PeakDBm
	}
	fmt.Print(report.Series(
		fmt.Sprintf("Fast EM sweep: %s/%s, %d powered / %d active cores",
			p.Name, d.Spec.Name, d.PoweredCores(), *active),
		"loop freq (MHz)", "peak (dBm)", xs, ys))
	fmt.Printf("\nfirst-order resonance estimate: %s (peak %s)\n",
		report.MHz(res.ResonanceHz), report.DBm(res.PeakDBm))
	if *verbose {
		fmt.Println(d.EvalStats())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
