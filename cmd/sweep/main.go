// Command sweep runs the paper's fast EM resonance sweep (Section 5.3):
// the two-phase probe loop executes while the CPU clock steps through its
// range, and the loop frequency with the strongest emission reveals the
// PDN's first-order resonance — in minutes, with no voltage probing.
//
// Usage:
//
//	sweep -platform juno -domain cortex-a72 -powered 2 -active 2
//	sweep -platform juno -domain cortex-a53 -powered 1 -active 1
//	sweep -platform amd
//	sweep -remote lab-host:9740 -active 2
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cli"
	"repro/internal/fleet"
	"repro/internal/report"
)

func main() {
	app := cli.New("sweep", flag.CommandLine)
	var (
		powered = flag.Int("powered", 0, "powered cores (default: all)")
		active  = flag.Int("active", 1, "cores running the probe loop")
	)
	flag.Parse()

	stopProf, err := app.StartProfiling()
	if err != nil {
		app.Fatal(err)
	}
	defer stopProf()

	be, err := app.Backend()
	if err != nil {
		app.Fatal(err)
	}
	defer be.Close()
	domain, err := app.Domain(be)
	if err != nil {
		app.Fatal(err)
	}
	if *powered > 0 {
		if err := be.SetPoweredCores(domain, *powered); err != nil {
			app.Fatal(err)
		}
	}
	st, err := be.State(domain)
	if err != nil {
		app.Fatal(err)
	}

	if f, ok := be.(*fleet.Fleet); ok {
		fmt.Printf("sweep: clock grid shards across a fleet of %d rigs\n", f.Size())
	}
	res, err := be.ResonanceSweep(domain, *active, 0)
	if err != nil {
		app.Fatal(err)
	}
	xs := make([]float64, len(res.Points))
	ys := make([]float64, len(res.Points))
	for i, pt := range res.Points {
		xs[i] = pt.LoopHz / 1e6
		ys[i] = pt.PeakDBm
	}
	fmt.Print(report.Series(
		fmt.Sprintf("Fast EM sweep: %s/%s, %d powered / %d active cores",
			be.PlatformName(), domain, st.PoweredCores, *active),
		"loop freq (MHz)", "peak (dBm)", xs, ys))
	fmt.Printf("\nfirst-order resonance estimate: %s (peak %s)\n",
		report.MHz(res.ResonanceHz), report.DBm(res.PeakDBm))
	if *app.Session != "" {
		rep, err := app.NewSession(be, domain, time.Now())
		if err != nil {
			app.Fatal(err)
		}
		rep.SetSweep(res)
		if err := app.SaveSession(rep); err != nil {
			app.Fatal(err)
		}
	}
	app.MaybePrintStats(be, domain)
}
