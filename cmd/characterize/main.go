// Command characterize runs the complete EM-only characterization flow on
// one voltage domain and writes a session report:
//
//  1. fast resonance sweep (Section 5.3),
//  2. EM-driven GA virus generation (Sections 3, 5.1),
//  3. V_MIN campaign with the evolved virus and a benchmark set,
//
// all with no voltage probing. The JSON report stores the resonance, the
// virus (as re-runnable assembly) and the V_MIN table.
//
// Usage:
//
//	characterize -platform juno -domain cortex-a72 -cores 2 -out a72.json
//	characterize -platform amd -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/em"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/session"
	"repro/internal/vmin"
	"repro/internal/workload"
)

func main() {
	var (
		plat    = flag.String("platform", "juno", "platform: juno, amd, gpu, or a .json domain spec")
		domName = flag.String("domain", "", "voltage domain (defaults to the platform's first)")
		cores   = flag.Int("cores", 0, "active cores (default: all powered)")
		quick   = flag.Bool("quick", false, "reduced GA scale")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "write the session report JSON here (default stdout)")
		bench   = flag.String("workloads", "idle,lbm,prime95", "benchmarks for the V_MIN comparison")
	)
	flag.Parse()

	p, err := buildPlatform(*plat)
	if err != nil {
		fatal(err)
	}
	name := *domName
	if name == "" {
		name = p.Domains()[0].Spec.Name
	}
	d, err := p.Domain(name)
	if err != nil {
		fatal(err)
	}
	active := *cores
	if active == 0 {
		active = d.PoweredCores()
	}
	b, err := core.NewBench(p, *seed)
	if err != nil {
		fatal(err)
	}
	if *quick {
		b.Samples = 5
	}
	rep := session.New(p, d, time.Now())

	// 1. Resonance.
	fmt.Fprintf(os.Stderr, "characterize: fast resonance sweep on %s/%s...\n", p.Name, d.Spec.Name)
	sweep, err := b.FastResonanceSweep(d, active)
	if err != nil {
		fatal(err)
	}
	rep.SetSweep(sweep)
	fmt.Fprintf(os.Stderr, "  first-order resonance: %s\n", report.MHz(sweep.ResonanceHz))

	// 2. Virus.
	cfg := ga.DefaultConfig(d.Spec.Pool())
	cfg.Seed = *seed
	if *quick {
		cfg.PopulationSize, cfg.Generations = 20, 15
	}
	fmt.Fprintf(os.Stderr, "characterize: evolving dI/dt virus (%dx%d)...\n",
		cfg.PopulationSize, cfg.Generations)
	virus, err := b.GenerateVirus(d, cfg, active, nil)
	if err != nil {
		fatal(err)
	}
	rep.SetVirus(d.Spec.Pool(), virus)
	fmt.Fprintf(os.Stderr, "  virus dominant: %s (%s)\n",
		report.MHz(virus.Best.DominantHz), report.DBm(virus.Best.Fitness))

	// 3. V_MIN campaign.
	tester := vmin.NewTester(d, *seed+1)
	runVmin := func(label string, load platform.Load) {
		res, err := tester.Search(load)
		if err != nil {
			fatal(fmt.Errorf("vmin of %s: %w", label, err))
		}
		rep.AddVmin(label, res)
		fmt.Fprintf(os.Stderr, "  %-12s Vmin %s (margin %s)\n",
			label, report.Volts(res.VminV), report.MV(res.MarginV))
	}
	fmt.Fprintln(os.Stderr, "characterize: V_MIN campaign...")
	for _, wn := range splitList(*bench) {
		w, err := workload.ByName(wn)
		if err != nil {
			fatal(err)
		}
		seq, err := w.Build(d.Spec.Pool())
		if err != nil {
			fatal(err)
		}
		runVmin(w.Name, platform.Load{Seq: seq, ActiveCores: active})
	}
	runVmin("emVirus", platform.Load{Seq: virus.Best.Seq, ActiveCores: active})

	// Emit the report.
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.Save(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "characterize: report written to %s\n", *out)
	}
}

func buildPlatform(name string) (*platform.Platform, error) {
	switch name {
	case "juno":
		return platform.JunoR2()
	case "amd":
		return platform.AMDDesktop()
	case "gpu":
		return platform.GPUCard()
	}
	if strings.HasSuffix(name, ".json") {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		spec, err := platform.LoadSpecJSON(f)
		if err != nil {
			return nil, err
		}
		return platform.NewPlatform(spec.Name, em.DefaultLoopAntenna(), spec)
	}
	return nil, fmt.Errorf("unknown platform %q (want juno, amd, gpu or a .json spec)", name)
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
