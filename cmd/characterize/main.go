// Command characterize runs the complete EM-only characterization flow on
// one voltage domain and writes a session report:
//
//  1. fast resonance sweep (Section 5.3),
//  2. EM-driven GA virus generation (Sections 3, 5.1),
//  3. V_MIN campaign with the evolved virus and a benchmark set,
//
// all with no voltage probing. The JSON report stores the resonance, the
// virus (as re-runnable assembly) and the V_MIN table.
//
// Usage:
//
//	characterize -platform juno -domain cortex-a72 -cores 2 -out a72.json
//	characterize -platform amd -quick
//	characterize -remote lab-host:9740 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/ga"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	app := cli.New("characterize", flag.CommandLine)
	var (
		quick = flag.Bool("quick", false, "reduced GA scale")
		out   = flag.String("out", "", "write the session report JSON here (default stdout)")
		bench = flag.String("workloads", "idle,lbm,prime95", "benchmarks for the V_MIN comparison")
	)
	flag.Parse()

	stopProf, err := app.StartProfiling()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *quick {
		app.BenchSamples = 5
	}
	be, err := app.Backend()
	if err != nil {
		fatal(err)
	}
	defer be.Close()
	domain, err := app.Domain(be)
	if err != nil {
		fatal(err)
	}
	active, err := app.ActiveCores(be, domain)
	if err != nil {
		fatal(err)
	}
	caps, err := be.Caps(domain)
	if err != nil {
		fatal(err)
	}
	pool := caps.Pool()
	rep, err := app.NewSession(be, domain, time.Now())
	if err != nil {
		fatal(err)
	}

	// 1. Resonance.
	fmt.Fprintf(os.Stderr, "characterize: fast resonance sweep on %s/%s...\n", be.PlatformName(), domain)
	sweep, err := be.ResonanceSweep(domain, active, 0)
	if err != nil {
		fatal(err)
	}
	rep.SetSweep(sweep)
	fmt.Fprintf(os.Stderr, "  first-order resonance: %s\n", report.MHz(sweep.ResonanceHz))

	// 2. Virus.
	cfg := ga.DefaultConfig(pool)
	cfg.Seed = *app.Seed
	cfg.Parallelism = *app.Jobs
	if *quick {
		cfg.PopulationSize, cfg.Generations = 20, 15
	}
	fmt.Fprintf(os.Stderr, "characterize: evolving dI/dt virus (%dx%d)...\n",
		cfg.PopulationSize, cfg.Generations)
	measurer, err := be.Measurer(backend.MeasurerSpec{
		Domain: domain, Metric: backend.MetricEM, ActiveCores: active,
	})
	if err != nil {
		fatal(err)
	}
	virus, err := ga.Run(cfg, measurer, nil)
	if err != nil {
		fatal(err)
	}
	rep.SetVirus(pool, virus)
	fmt.Fprintf(os.Stderr, "  virus dominant: %s (%s)\n",
		report.MHz(virus.Best.DominantHz), report.DBm(virus.Best.Fitness))

	// 3. V_MIN campaign.
	runVmin := func(label string, load platform.Load) {
		res, _, err := be.Vmin(domain, load, *app.Seed+1, 1)
		if err != nil {
			fatal(fmt.Errorf("vmin of %s: %w", label, err))
		}
		rep.AddVmin(label, res)
		fmt.Fprintf(os.Stderr, "  %-12s Vmin %s (margin %s)\n",
			label, report.Volts(res.VminV), report.MV(res.MarginV))
	}
	fmt.Fprintln(os.Stderr, "characterize: V_MIN campaign...")
	for _, wn := range splitList(*bench) {
		w, err := workload.ByName(wn)
		if err != nil {
			fatal(err)
		}
		seq, err := w.Build(pool)
		if err != nil {
			fatal(err)
		}
		runVmin(w.Name, platform.Load{Seq: seq, ActiveCores: active})
	}
	runVmin("emVirus", platform.Load{Seq: virus.Best.Seq, ActiveCores: active})

	// Emit the report.
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.Save(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "characterize: report written to %s\n", *out)
	}
	app.MaybePrintStats(be, domain)
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
