// Command labtarget is the target-machine daemon of the paper's distributed
// measurement setup (Section 3.2): it owns the platform under test and the
// bench instruments, and executes the workstation's commands — assemble and
// run shipped stress loops, take analyzer measurements, sweep clocks,
// power-gate cores.
//
// Usage:
//
//	labtarget -listen :9740 -platform juno
//
// then point `gahunt -remote host:9740 -j N` at it. Each connection is an
// independent session, so pooled workstation clients evaluate in parallel.
// SIGINT/SIGTERM shuts the daemon down gracefully — live sessions are
// severed, the listener closed, and the per-command execution counters
// printed.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/lab"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9740", "address to listen on")
		plat     = flag.String("platform", "juno", "platform: a spec-registry name (see specgen -list) or a .json platform spec")
		seed     = flag.Int64("seed", 1, "random seed for the bench instruments")
		jobs     = flag.Int("j", runtime.NumCPU(), "bench parallelism for server-side sweeps and V_MIN campaigns")
		cacheDir = flag.String("cache-dir", os.Getenv("REPRO_CACHE_DIR"),
			"directory of the persistent result cache shared across runs and processes (default $REPRO_CACHE_DIR; empty disables)")
	)
	flag.Parse()

	if _, err := cli.InstallCacheDir(*cacheDir); err != nil {
		fatal(err)
	}
	p, err := cli.BuildPlatform(*plat)
	if err != nil {
		fatal(err)
	}
	bench, err := core.NewBench(p, *seed)
	if err != nil {
		fatal(err)
	}
	bench.Parallelism = *jobs
	srv, err := lab.NewServer(bench)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("labtarget: %v, shutting down\n", s)
		_ = srv.Shutdown()
	}()

	fmt.Printf("labtarget: serving %s on %s\n", p.Name, ln.Addr())
	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	fmt.Println(srv.StatsString())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "labtarget:", err)
	os.Exit(1)
}
