// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list
//	repro -exp fig7 [-quick] [-seed N]
//	repro -exp all  [-quick] [-seed N]
//
// Each experiment prints its report (series and tables) followed by its
// headline values. Without -quick the paper-scale settings are used
// (50x60 GA runs, 30 V_MIN repetitions), which takes a few minutes for the
// full suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (fig1b..fig18, tab1, tab2, ext-*), \"all\", \"ext\" or \"everything\"")
		quick = flag.Bool("quick", false, "reduced GA/repetition scale (seconds instead of minutes)")
		seed  = flag.Int64("seed", 7, "random seed for all stochastic components")
		list  = flag.Bool("list", false, "list available experiments")
		out   = flag.String("out", "", "also write per-experiment reports and a summary.md into this directory")
		jobs  = flag.Int("j", runtime.NumCPU(), "parallel GA/sweep evaluations (results are identical at any setting)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extensions() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: pass -exp <id|all> or -list")
		os.Exit(2)
	}
	ctx, err := experiments.NewContext(experiments.Options{Quick: *quick, Seed: *seed, Parallelism: *jobs})
	if err != nil {
		fatal(err)
	}
	var toRun []experiments.Experiment
	switch *exp {
	case "all":
		toRun = experiments.All()
	case "ext":
		toRun = experiments.Extensions()
	case "everything":
		toRun = append(experiments.All(), experiments.Extensions()...)
	default:
		e, err := experiments.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		toRun = []experiments.Experiment{e}
	}
	var results []*experiments.Result
	for _, e := range toRun {
		res, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		results = append(results, res)
		fmt.Printf("==== %s: %s ====\n\n", res.ID, res.Title)
		fmt.Println(res.Text)
		fmt.Println("headline values:")
		for _, k := range keys(res.Values) {
			fmt.Printf("  %-32s %.6g\n", k, res.Values[k])
		}
		fmt.Println()
	}
	if *out != "" {
		if err := writeReports(*out, results); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "repro: reports written to %s\n", *out)
	}
}

// writeReports dumps each experiment's report to <dir>/<id>.txt and a
// machine-diffable summary of headline values to <dir>/summary.md.
func writeReports(dir string, results []*experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var md strings.Builder
	md.WriteString("# Experiment summary\n\n| experiment | metric | value |\n|---|---|---|\n")
	for _, res := range results {
		body := fmt.Sprintf("%s: %s\n\n%s", res.ID, res.Title, res.Text)
		if err := os.WriteFile(filepath.Join(dir, res.ID+".txt"), []byte(body), 0o644); err != nil {
			return err
		}
		for _, k := range keys(res.Values) {
			fmt.Fprintf(&md, "| %s | %s | %.6g |\n", res.ID, k, res.Values[k])
		}
	}
	return os.WriteFile(filepath.Join(dir, "summary.md"), []byte(md.String()), 0o644)
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
