// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list
//	repro -exp fig7 [-quick] [-seed N]
//	repro -exp all  [-quick] [-seed N]
//	repro -exp fig11 -remote juno-rig:9740,amd-rig:9741
//
// Each experiment prints its report (series and tables) followed by its
// headline values. Without -quick the paper-scale settings are used
// (50x60 GA runs, 30 V_MIN repetitions), which takes a few minutes for the
// full suite. With -remote the measurement-driven experiments run against
// labtarget daemons (comma-separated addresses, matched to platforms by
// the daemons' own identity); daemons seeded seed+1 (juno) and seed+2
// (amd) reproduce the local bytes exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/isa"
)

func main() {
	app := cli.New("repro", flag.CommandLine)
	var (
		exp   = flag.String("exp", "", "experiment id (fig1b..fig18, tab1, tab2, ext-*), \"all\", \"ext\" or \"everything\"")
		quick = flag.Bool("quick", false, "reduced GA/repetition scale (seconds instead of minutes)")
		list  = flag.Bool("list", false, "list available experiments")
		out   = flag.String("out", "", "also write per-experiment reports and a summary.md into this directory")
	)
	flag.Parse()

	stopProf, err := app.StartProfiling()
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	if _, err := app.InstallCache(); err != nil {
		fatal(err)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extensions() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: pass -exp <id|all> or -list")
		os.Exit(2)
	}
	opts := experiments.Options{Quick: *quick, Seed: *app.Seed, Parallelism: *app.Jobs}
	if *app.Platform != "" {
		// Substitute the platform for the experiment slot its ISA
		// matches: an x86 first domain replaces the AMD desktop, anything
		// else replaces the Juno board.
		p, err := cli.BuildPlatform(*app.Platform)
		if err != nil {
			fatal(err)
		}
		if p.Domains()[0].Spec.ISA == isa.X86 {
			opts.AMDPlatform = *app.Platform
		} else {
			opts.JunoPlatform = *app.Platform
		}
	}
	if *app.Remote != "" {
		backends, closeAll, err := cli.RemoteBackends(*app.Remote, *app.Jobs)
		if err != nil {
			fatal(err)
		}
		defer closeAll()
		opts.Backends = backends
		if *app.Verbose {
			defer func() {
				for name, be := range backends {
					if r, ok := be.(*backend.Remote); ok {
						fmt.Printf("%s: %s\n", name, r.TransportStats().String())
					}
				}
			}()
		}
	}
	ctx, err := experiments.NewContext(opts)
	if err != nil {
		fatal(err)
	}
	var toRun []experiments.Experiment
	switch *exp {
	case "all":
		toRun = experiments.All()
	case "ext":
		toRun = experiments.Extensions()
	case "everything":
		toRun = append(experiments.All(), experiments.Extensions()...)
	default:
		e, err := experiments.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		toRun = []experiments.Experiment{e}
	}
	var results []*experiments.Result
	for _, e := range toRun {
		res, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		results = append(results, res)
		fmt.Printf("==== %s: %s ====\n\n", res.ID, res.Title)
		fmt.Println(res.Text)
		fmt.Println("headline values:")
		for _, k := range keys(res.Values) {
			fmt.Printf("  %-32s %.6g\n", k, res.Values[k])
		}
		fmt.Println()
	}
	if *out != "" {
		if err := writeReports(*out, results); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "repro: reports written to %s\n", *out)
	}
}

// writeReports dumps each experiment's report to <dir>/<id>.txt and a
// machine-diffable summary of headline values to <dir>/summary.md.
func writeReports(dir string, results []*experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var md strings.Builder
	md.WriteString("# Experiment summary\n\n| experiment | metric | value |\n|---|---|---|\n")
	for _, res := range results {
		body := fmt.Sprintf("%s: %s\n\n%s", res.ID, res.Title, res.Text)
		if err := os.WriteFile(filepath.Join(dir, res.ID+".txt"), []byte(body), 0o644); err != nil {
			return err
		}
		for _, k := range keys(res.Values) {
			fmt.Fprintf(&md, "| %s | %s | %.6g |\n", res.ID, k, res.Values[k])
		}
	}
	return os.WriteFile(filepath.Join(dir, "summary.md"), []byte(md.String()), 0o644)
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
