// Command vmin runs the paper's V_MIN methodology (Section 5.2) over a set
// of workloads: lower the supply in board-granularity steps until any
// deviation from nominal execution appears, and report the highest failing
// voltage, the failure class and the workload's droop at nominal.
//
// Usage:
//
//	vmin -platform juno -domain cortex-a72 -cores 2 -workloads idle,lbm,probe
//	vmin -platform amd -workloads all -repeats 5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/platform"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/vmin"
	"repro/internal/workload"
)

func main() {
	var (
		plat    = flag.String("platform", "juno", "platform: juno or amd")
		domName = flag.String("domain", "", "voltage domain (defaults to the platform's first)")
		cores   = flag.Int("cores", 0, "active cores (default: all powered)")
		names   = flag.String("workloads", "idle,lbm,probe", "comma-separated workloads, or \"all\"")
		repeats = flag.Int("repeats", 1, "repetitions per workload (paper uses 30 for viruses)")
		seed    = flag.Int64("seed", 1, "random seed")
		shmoo   = flag.Bool("shmoo", false, "sweep the clock and report Vmin per frequency instead")
		jobs    = flag.Int("j", runtime.NumCPU(), "parallel shmoo points (results are identical at any setting)")
		verbose = flag.Bool("v", false, "print cache statistics after the run")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprof, *memprof)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var p *platform.Platform
	switch *plat {
	case "juno":
		p, err = platform.JunoR2()
	case "amd":
		p, err = platform.AMDDesktop()
	default:
		err = fmt.Errorf("unknown platform %q", *plat)
	}
	if err != nil {
		fatal(err)
	}
	name := *domName
	if name == "" {
		name = p.Domains()[0].Spec.Name
	}
	d, err := p.Domain(name)
	if err != nil {
		fatal(err)
	}
	active := *cores
	if active == 0 {
		active = d.PoweredCores()
	}
	var list []string
	if *names == "all" {
		for _, w := range workload.All() {
			list = append(list, w.Name)
		}
	} else {
		list = strings.Split(*names, ",")
	}

	tester := vmin.NewTester(d, *seed)
	tester.Parallelism = *jobs
	if *shmoo {
		runShmoo(tester, p, d, list, active)
		if *verbose {
			fmt.Println(d.EvalStats())
		}
		return
	}
	tb := report.NewTable(
		fmt.Sprintf("V_MIN on %s/%s (%d active cores, %d repeats)", p.Name, d.Spec.Name, active, *repeats),
		"workload", "Vmin", "margin", "droop@nominal", "first failure")
	for _, wn := range list {
		w, err := workload.ByName(strings.TrimSpace(wn))
		if err != nil {
			fatal(err)
		}
		seq, err := w.Build(d.Spec.Pool())
		if err != nil {
			fatal(err)
		}
		res, _, err := tester.Repeat(platform.Load{Seq: seq, ActiveCores: active}, *repeats)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", w.Name, err))
		}
		tb.AddRow(w.Name, report.Volts(res.VminV), report.MV(res.MarginV),
			report.MV(res.DroopNominalV), res.Outcome.String())
	}
	fmt.Print(tb.String())
	if *verbose {
		fmt.Println(d.EvalStats())
	}
}

// runShmoo prints a Vmin-vs-frequency curve per workload.
func runShmoo(tester *vmin.Tester, p *platform.Platform, d *platform.Domain, list []string, active int) {
	var clocks []float64
	steps := d.ClockSteps()
	// Sample ~8 clocks from max downward.
	stride := len(steps) / 8
	if stride < 1 {
		stride = 1
	}
	for i := len(steps) - 1; i >= 0; i -= stride {
		clocks = append(clocks, steps[i])
	}
	for _, wn := range list {
		w, err := workload.ByName(strings.TrimSpace(wn))
		if err != nil {
			fatal(err)
		}
		seq, err := w.Build(d.Spec.Pool())
		if err != nil {
			fatal(err)
		}
		points, err := tester.Shmoo(platform.Load{Seq: seq, ActiveCores: active}, clocks)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", w.Name, err))
		}
		tb := report.NewTable(fmt.Sprintf("Shmoo: %s on %s/%s", w.Name, p.Name, d.Spec.Name),
			"clock", "Vmin", "margin")
		for _, pt := range points {
			tb.AddRow(report.MHz(pt.ClockHz), report.Volts(pt.VminV), report.MV(pt.MarginV))
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmin:", err)
	os.Exit(1)
}
