// Command vmin runs the paper's V_MIN methodology (Section 5.2) over a set
// of workloads: lower the supply in board-granularity steps until any
// deviation from nominal execution appears, and report the highest failing
// voltage, the failure class and the workload's droop at nominal.
//
// Usage:
//
//	vmin -platform juno -domain cortex-a72 -cores 2 -workloads idle,lbm,probe
//	vmin -platform amd -workloads all -repeats 5
//	vmin -remote lab-host:9740 -workloads probe
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/fleet"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/session"
	"repro/internal/vmin"
	"repro/internal/workload"
)

func main() {
	app := cli.New("vmin", flag.CommandLine)
	var (
		names   = flag.String("workloads", "idle,lbm,probe", "comma-separated workloads, or \"all\"")
		repeats = flag.Int("repeats", 1, "repetitions per workload (paper uses 30 for viruses)")
		shmoo   = flag.Bool("shmoo", false, "sweep the clock and report Vmin per frequency instead")
	)
	flag.Parse()

	stopProf, err := app.StartProfiling()
	if err != nil {
		app.Fatal(err)
	}
	defer stopProf()

	be, err := app.Backend()
	if err != nil {
		app.Fatal(err)
	}
	defer be.Close()
	domain, err := app.Domain(be)
	if err != nil {
		app.Fatal(err)
	}
	active, err := app.ActiveCores(be, domain)
	if err != nil {
		app.Fatal(err)
	}
	caps, err := be.Caps(domain)
	if err != nil {
		app.Fatal(err)
	}
	var list []string
	if *names == "all" {
		for _, w := range workload.All() {
			list = append(list, w.Name)
		}
	} else {
		list = strings.Split(*names, ",")
	}
	if f, ok := be.(*fleet.Fleet); ok {
		fmt.Printf("vmin: fleet of %d rigs\n", f.Size())
	}

	if *shmoo {
		runShmoo(app, be, caps, domain, list, active)
		app.MaybePrintStats(be, domain)
		return
	}
	var rep *session.Report
	if *app.Session != "" {
		rep, err = app.NewSession(be, domain, time.Now())
		if err != nil {
			app.Fatal(err)
		}
	}
	tb := report.NewTable(
		fmt.Sprintf("V_MIN on %s/%s (%d active cores, %d repeats)", be.PlatformName(), domain, active, *repeats),
		"workload", "Vmin", "margin", "droop@nominal", "first failure")
	wnames, loads := buildLoads(app, caps, list, active)
	results := make([]*vmin.Result, len(loads))
	if f, ok := be.(*fleet.Fleet); ok {
		// One campaign for the whole workload list: searches shard across
		// the rigs instead of running one by one.
		rs, _, err := f.VminMany(domain, loads, *app.Seed, *repeats)
		if err != nil {
			app.Fatal(err)
		}
		results = rs
	} else {
		for i, load := range loads {
			res, _, err := be.Vmin(domain, load, *app.Seed, *repeats)
			if err != nil {
				app.Fatal(fmt.Errorf("%s: %w", wnames[i], err))
			}
			results[i] = res
		}
	}
	for i, res := range results {
		tb.AddRow(wnames[i], report.Volts(res.VminV), report.MV(res.MarginV),
			report.MV(res.DroopNominalV), res.Outcome.String())
		if rep != nil {
			rep.AddVmin(wnames[i], res)
		}
	}
	fmt.Print(tb.String())
	if rep != nil {
		if err := app.SaveSession(rep); err != nil {
			app.Fatal(err)
		}
	}
	app.MaybePrintStats(be, domain)
}

// buildLoads resolves workload names into index-aligned (name, load)
// lists.
func buildLoads(app *cli.App, caps backend.Caps, list []string, active int) ([]string, []platform.Load) {
	names := make([]string, 0, len(list))
	loads := make([]platform.Load, 0, len(list))
	for _, wn := range list {
		w, err := workload.ByName(strings.TrimSpace(wn))
		if err != nil {
			app.Fatal(err)
		}
		seq, err := w.Build(caps.Pool())
		if err != nil {
			app.Fatal(err)
		}
		names = append(names, w.Name)
		loads = append(loads, platform.Load{Seq: seq, ActiveCores: active})
	}
	return names, loads
}

// runShmoo prints a Vmin-vs-frequency curve per workload. On a fleet the
// whole workloads × clocks lattice is one campaign, sharded cell by cell
// across the rigs.
func runShmoo(app *cli.App, be backend.Backend, caps backend.Caps, domain string, list []string, active int) {
	var clocks []float64
	steps := caps.ClockSteps()
	// Sample ~8 clocks from max downward.
	stride := len(steps) / 8
	if stride < 1 {
		stride = 1
	}
	for i := len(steps) - 1; i >= 0; i -= stride {
		clocks = append(clocks, steps[i])
	}
	wnames, loads := buildLoads(app, caps, list, active)
	var grid [][]vmin.ShmooPoint
	if f, ok := be.(*fleet.Fleet); ok {
		g, err := f.ShmooGrid(domain, loads, *app.Seed, clocks)
		if err != nil {
			app.Fatal(err)
		}
		grid = g
	} else {
		for i, load := range loads {
			points, err := be.VminShmoo(domain, load, *app.Seed, clocks)
			if err != nil {
				app.Fatal(fmt.Errorf("%s: %w", wnames[i], err))
			}
			grid = append(grid, points)
		}
	}
	for i, points := range grid {
		tb := report.NewTable(fmt.Sprintf("Shmoo: %s on %s/%s", wnames[i], be.PlatformName(), domain),
			"clock", "Vmin", "margin")
		for _, pt := range points {
			tb.AddRow(report.MHz(pt.ClockHz), report.Volts(pt.VminV), report.MV(pt.MarginV))
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
}
