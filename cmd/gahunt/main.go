// Command gahunt runs a GA stress-test (dI/dt virus) search on a platform,
// driven by EM feedback (the paper's methodology) or — on domains with
// voltage visibility — by direct droop or peak-to-peak measurements.
//
// Usage:
//
//	gahunt -platform juno -domain cortex-a72 -cores 2 [-metric em]
//	gahunt -platform amd -domain athlon-ii-x4 -metric droop -out virus.s
//	gahunt -remote host:9740 -domain cortex-a72 -cores 2 -j 8
//
// With -remote the individuals are shipped to a labtarget daemon and
// measured there (the paper's workstation/target split) over a pool of -j
// resilient connections: per-command deadlines, retry with reconnect and
// setpoint replay, so a flaky link degrades throughput, not results.
// `-v` prints the transport's dial/reconnect/replay and per-command
// latency counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/fleet"
	"repro/internal/ga"
	"repro/internal/isa"
)

func main() {
	app := cli.New("gahunt", flag.CommandLine)
	var (
		metric  = flag.String("metric", "em", "fitness: em, droop or ptp")
		pop     = flag.Int("pop", 50, "population size")
		gens    = flag.Int("gens", 60, "generations")
		seqLen  = flag.Int("len", 50, "instructions per individual")
		out     = flag.String("out", "", "write the winning virus as assembly to this file")
		islands = flag.Int("islands", 1, "island-model populations (1 = classic single population)")
	)
	flag.Parse()

	stopProf, err := app.StartProfiling()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	m, err := backend.ParseMetric(*metric)
	if err != nil {
		fatal(err)
	}
	be, err := app.Backend()
	if err != nil {
		fatal(err)
	}
	defer be.Close()
	domain, err := app.Domain(be)
	if err != nil {
		fatal(err)
	}
	caps, err := be.Caps(domain)
	if err != nil {
		fatal(err)
	}
	pool := caps.Pool()
	cfg := ga.DefaultConfig(pool)
	cfg.PopulationSize = *pop
	cfg.Generations = *gens
	cfg.SeqLen = *seqLen
	cfg.Seed = *app.Seed
	cfg.Parallelism = *app.Jobs

	measurer, err := be.Measurer(backend.MeasurerSpec{
		Domain:      domain,
		Metric:      m,
		ActiveCores: *app.Cores,
		Samples:     *app.Samples,
		DSOSeed:     *app.Seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("gahunt: %s/%s, %d cores, metric=%s, %dx%d, %d island(s)\n",
		be.PlatformName(), domain, *app.Cores, *metric, *pop, *gens, *islands)
	if f, ok := be.(*fleet.Fleet); ok {
		fmt.Printf("gahunt: generations shard across a fleet of %d rigs\n", f.Size())
	}
	start := time.Now()
	var res *ga.Result
	if *islands > 1 {
		icfg := ga.IslandConfig{
			Base:              cfg,
			Islands:           *islands,
			MigrationInterval: max(1, *gens/6),
			Migrants:          2,
		}
		res, err = ga.RunIslands(icfg, measurer, func(s ga.IslandStats) {
			fmt.Printf("isl %d gen %3d: best %8.2f  dominant %7.2f MHz\n",
				s.Island, s.Gen, s.BestFitness, s.BestDominant/1e6)
		})
	} else {
		res, err = ga.Run(cfg, measurer, func(s ga.GenerationStats) {
			fmt.Printf("gen %3d: best %8.2f  mean %8.2f  dominant %7.2f MHz\n",
				s.Gen, s.BestFitness, s.MeanFitness, s.BestDominant/1e6)
		})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done in %v: best fitness %.2f, dominant %.2f MHz\n",
		time.Since(start).Round(time.Millisecond), res.Best.Fitness, res.Best.DominantHz/1e6)
	app.MaybePrintStats(be, domain)
	if *app.Session != "" {
		rep, err := app.NewSession(be, domain, time.Now())
		if err != nil {
			fatal(err)
		}
		rep.SetVirus(pool, res)
		if err := app.SaveSession(rep); err != nil {
			fatal(err)
		}
	}
	text := isa.FormatProgram(pool, res.Best.Seq)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("virus written to %s\n", *out)
	} else {
		fmt.Println(text)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gahunt:", err)
	os.Exit(1)
}
