// Command gahunt runs a GA stress-test (dI/dt virus) search on a platform,
// driven by EM feedback (the paper's methodology) or — on domains with
// voltage visibility — by direct droop or peak-to-peak measurements.
//
// Usage:
//
//	gahunt -platform juno -domain cortex-a72 -cores 2 [-metric em]
//	gahunt -platform amd -domain athlon-ii-x4 -metric droop -out virus.s
//	gahunt -remote host:9740 -domain cortex-a72 -cores 2 -j 8
//
// With -remote the individuals are shipped to a labtarget daemon and
// measured there (the paper's workstation/target split) over a pool of -j
// resilient connections: per-command deadlines, retry with reconnect and
// setpoint replay, so a flaky link degrades throughput, not results.
// `-v` prints the transport's dial/reconnect/replay and per-command
// latency counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/lab"
	"repro/internal/par"
	"repro/internal/platform"
	"repro/internal/prof"
	"repro/internal/session"
)

func main() {
	var (
		plat    = flag.String("platform", "juno", "platform: juno or amd")
		domName = flag.String("domain", platform.DomainA72, "voltage domain to attack")
		cores   = flag.Int("cores", 2, "active cores running the virus")
		metric  = flag.String("metric", "em", "fitness: em, droop or ptp")
		pop     = flag.Int("pop", 50, "population size")
		gens    = flag.Int("gens", 60, "generations")
		seqLen  = flag.Int("len", 50, "instructions per individual")
		samples = flag.Int("samples", 30, "analyzer sweeps averaged per measurement")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "write the winning virus as assembly to this file")
		remote  = flag.String("remote", "", "labtarget address for remote measurement")
		islands = flag.Int("islands", 1, "island-model populations (1 = classic single population)")
		sess    = flag.String("session", "", "write a JSON session report to this file")
		jobs    = flag.Int("j", runtime.NumCPU(), "parallel fitness evaluations (results are identical at any setting)")
		verbose = flag.Bool("v", false, "print evaluation statistics (transport latency/retries when -remote, spectra/trace caches otherwise)")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprof, *memprof)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	p, err := buildPlatform(*plat)
	if err != nil {
		fatal(err)
	}
	d, err := p.Domain(*domName)
	if err != nil {
		fatal(err)
	}
	pool := d.Spec.Pool()
	cfg := ga.DefaultConfig(pool)
	cfg.PopulationSize = *pop
	cfg.Generations = *gens
	cfg.SeqLen = *seqLen
	cfg.Seed = *seed
	cfg.Parallelism = *jobs

	measurer, cleanup, transportStats, err := buildMeasurer(p, d, *metric, *cores, *samples, *seed, *remote, par.Workers(*jobs))
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	fmt.Printf("gahunt: %s/%s, %d cores, metric=%s, %dx%d, %d island(s)\n",
		p.Name, d.Spec.Name, *cores, *metric, *pop, *gens, *islands)
	start := time.Now()
	var res *ga.Result
	if *islands > 1 {
		icfg := ga.IslandConfig{
			Base:              cfg,
			Islands:           *islands,
			MigrationInterval: max(1, *gens/6),
			Migrants:          2,
		}
		res, err = ga.RunIslands(icfg, measurer, func(s ga.IslandStats) {
			fmt.Printf("isl %d gen %3d: best %8.2f  dominant %7.2f MHz\n",
				s.Island, s.Gen, s.BestFitness, s.BestDominant/1e6)
		})
	} else {
		res, err = ga.Run(cfg, measurer, func(s ga.GenerationStats) {
			fmt.Printf("gen %3d: best %8.2f  mean %8.2f  dominant %7.2f MHz\n",
				s.Gen, s.BestFitness, s.MeanFitness, s.BestDominant/1e6)
		})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done in %v: best fitness %.2f, dominant %.2f MHz\n",
		time.Since(start).Round(time.Millisecond), res.Best.Fitness, res.Best.DominantHz/1e6)
	if *verbose {
		if transportStats != nil {
			fmt.Println(transportStats())
		} else {
			fmt.Println(d.EvalStats())
		}
	}
	if *sess != "" {
		rep := session.New(p, d, time.Now())
		rep.SetVirus(pool, res)
		f, err := os.Create(*sess)
		if err != nil {
			fatal(err)
		}
		if err := rep.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("session report written to %s\n", *sess)
	}
	text := isa.FormatProgram(pool, res.Best.Seq)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("virus written to %s\n", *out)
	} else {
		fmt.Println(text)
	}
}

func buildPlatform(name string) (*platform.Platform, error) {
	switch name {
	case "juno":
		return platform.JunoR2()
	case "amd":
		return platform.AMDDesktop()
	default:
		return nil, fmt.Errorf("unknown platform %q (want juno or amd)", name)
	}
}

// buildMeasurer wires the fitness source. With -remote it dials a pool of
// `jobs` resilient lab clients so the GA's parallel workers each own a
// session (see internal/lab); the returned stats closure renders the
// transport counters for -v.
func buildMeasurer(p *platform.Platform, d *platform.Domain, metric string,
	cores, samples int, seed int64, remote string, jobs int) (ga.Measurer, func(), func() string, error) {
	if remote != "" {
		pool, err := lab.NewPool(remote, jobs, lab.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		return pool.Measurer(d.Spec.Name, cores, samples, d.Spec.Pool()),
			func() { pool.Close() },
			func() string { return pool.Stats().String() }, nil
	}
	bench, err := core.NewBench(p, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	bench.Samples = samples
	noop := func() {}
	switch metric {
	case "em":
		return bench.EMMeasurer(d, cores), noop, nil, nil
	case "droop":
		return bench.DroopMeasurer(d, cores, scopeFor(d, seed)), noop, nil, nil
	case "ptp":
		return bench.PtpMeasurer(d, cores, scopeFor(d, seed)), noop, nil, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown metric %q (want em, droop or ptp)", metric)
	}
}

func scopeFor(d *platform.Domain, seed int64) *instrument.DSO {
	if d.Spec.VoltageVisibility == "kelvin-pads" {
		return instrument.NewBenchScope(seed)
	}
	return instrument.NewOCDSO(seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gahunt:", err)
	os.Exit(1)
}
