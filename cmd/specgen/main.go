// Command specgen is the workbench for platform spec files: it lists the
// spec registry, dumps any registered platform as a versioned spec file (a
// template for describing custom hardware), and verifies spec files.
//
//	specgen -list
//	specgen -platform juno > myboard.json        # whole platform, schema v2
//	specgen -platform juno -domain cortex-a72 -v1 > mychip.json
//	# edit the file: PDN values, core model, EM path...
//	specgen -check myboard.json                  # strict parse + round trip
//	specgen -check-builtin                       # verify every embedded spec
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"reflect"

	"repro/internal/platform"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list the spec registry and exit")
		plat         = flag.String("platform", "", "registry platform to dump (name or alias)")
		domName      = flag.String("domain", "", "dump one domain instead of the whole platform")
		v1           = flag.Bool("v1", false, "with -domain: write the single-domain v1 schema")
		check        = flag.String("check", "", "verify a spec file: strict parse, build, save/load round trip")
		checkBuiltin = flag.Bool("check-builtin", false, "verify every embedded spec the same way -check does")
	)
	flag.Parse()

	switch {
	case *list:
		reg := platform.Builtin()
		for _, name := range reg.Names() {
			p, err := reg.Build(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-16s", name)
			for i, d := range p.Domains() {
				if i > 0 {
					fmt.Print(",")
				}
				fmt.Printf(" %s (%s, %d cores)", d.Spec.Name, d.Spec.ISA, d.Spec.TotalCores)
			}
			fmt.Println()
		}
	case *check != "":
		src, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		if err := verifySpec(src); err != nil {
			fatal(fmt.Errorf("%s: %w", *check, err))
		}
		fmt.Printf("%s: ok\n", *check)
	case *checkBuiltin:
		reg := platform.Builtin()
		for _, name := range reg.Names() {
			src, err := reg.Source(name)
			if err != nil {
				fatal(err)
			}
			if err := verifySpec(src); err != nil {
				fatal(fmt.Errorf("embedded spec %s: %w", name, err))
			}
			fmt.Printf("embedded spec %s: ok\n", name)
		}
	case *plat != "":
		p, err := platform.Build(*plat)
		if err != nil {
			fatal(err)
		}
		if *domName == "" && !*v1 {
			if err := platform.SavePlatformSpecJSON(os.Stdout, p); err != nil {
				fatal(err)
			}
			return
		}
		name := *domName
		if name == "" {
			name = p.Domains()[0].Spec.Name
		}
		d, err := p.Domain(name)
		if err != nil {
			fatal(err)
		}
		if err := platform.SaveSpecJSON(os.Stdout, d.Spec); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// verifySpec runs the full spec hygiene pass: strict parse, platform
// build, save → re-parse round trip, and stability of every domain's
// persistent-cache identity across the trip.
func verifySpec(src []byte) error {
	f, err := platform.ParsePlatformSpec(src)
	if err != nil {
		return err
	}
	p, err := f.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	var buf bytes.Buffer
	if err := platform.SavePlatformSpecJSON(&buf, p); err != nil {
		return fmt.Errorf("save: %w", err)
	}
	f2, err := platform.ParsePlatformSpec(buf.Bytes())
	if err != nil {
		return fmt.Errorf("round trip: %w", err)
	}
	if !reflect.DeepEqual(f.Specs, f2.Specs) {
		return fmt.Errorf("round trip: specs not a fixed point of save/load")
	}
	if !reflect.DeepEqual(f.Antenna, f2.Antenna) {
		return fmt.Errorf("round trip: antenna not a fixed point of save/load")
	}
	p2, err := f2.Build()
	if err != nil {
		return fmt.Errorf("round trip build: %w", err)
	}
	d1, d2 := p.Domains(), p2.Domains()
	for i := range d1 {
		h1, h2 := d1[i].SpecContentHash(), d2[i].SpecContentHash()
		if h1 != h2 {
			return fmt.Errorf("domain %s: content hash unstable across round trip (%#x != %#x); persistent cache keys would move", d1[i].Spec.Name, h1, h2)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specgen:", err)
	os.Exit(1)
}
