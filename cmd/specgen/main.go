// Command specgen dumps a built-in domain spec as JSON, to serve as a
// template for describing custom hardware:
//
//	specgen -platform juno -domain cortex-a72 > mychip.json
//	# edit mychip.json: PDN values, core model, EM path...
//	characterize -platform mychip.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/platform"
)

func main() {
	var (
		plat    = flag.String("platform", "juno", "platform: juno, amd or gpu")
		domName = flag.String("domain", "", "voltage domain (defaults to the platform's first)")
	)
	flag.Parse()

	var p *platform.Platform
	var err error
	switch *plat {
	case "juno":
		p, err = platform.JunoR2()
	case "amd":
		p, err = platform.AMDDesktop()
	case "gpu":
		p, err = platform.GPUCard()
	default:
		err = fmt.Errorf("unknown platform %q", *plat)
	}
	if err != nil {
		fatal(err)
	}
	name := *domName
	if name == "" {
		name = p.Domains()[0].Spec.Name
	}
	d, err := p.Domain(name)
	if err != nil {
		fatal(err)
	}
	if err := platform.SaveSpecJSON(os.Stdout, d.Spec); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specgen:", err)
	os.Exit(1)
}
