// Command benchjson turns `go test -bench -benchmem` output into a JSON
// record of the measurement hot path's cost: ns/op, B/op and allocs/op per
// benchmark, plus cold/cached speedup ratios for every benchmark that has
// both variants. `make bench` pipes the PR's hot-path benchmarks through it
// to produce BENCH_<pr>.json, so performance regressions show up as a diff
// rather than a feeling.
//
// Repeated runs of the same benchmark (e.g. -count=3) are averaged,
// weighted by iteration count; benchmarks with only a cold or only a
// cached variant simply get no ratio instead of mis-pairing.
//
// With -compare, benchjson diffs two reports instead of parsing stdin:
//
//	benchjson -compare OLD.json NEW.json
//
// prints the ns/op and allocs/op deltas for every benchmark present in
// both files and exits nonzero if any of them regressed by more than 20%
// in ns/op. New and dropped benchmarks are reported but never fail the
// comparison. The comparison also emits a markdown trajectory table of
// ns/op across every checked-in BENCH_*.json — on failure too, since the
// history is what distinguishes real drift from a noisy baseline.
//
// Usage:
//
//	go test -bench 'Sweep|Shmoo|Evaluation' -benchmem -run '^$' . | benchjson [-o out.json]
//	benchjson -compare BENCH_pr3.json BENCH_pr4.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark line.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Ratio is the cold/cached speedup for one benchmark family.
type Ratio struct {
	Name          string  `json:"name"`
	Speedup       float64 `json:"speedup"`
	AllocsSpeedup float64 `json:"allocs_speedup"`
}

// Report is the file benchjson writes.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	Ratios     []Ratio `json:"cold_vs_cached"`
}

// parseLine parses one `Benchmark.../variant-N  iters  ns/op ...` line.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Iterations: iters}
	// Strip the trailing -GOMAXPROCS suffix from the name.
	e.Name = fields[0]
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name = e.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	return e, true
}

// merge folds repeated runs of the same benchmark into one entry, averaging
// the per-op metrics weighted by iteration count, and preserves first-seen
// order.
func merge(entries []Entry) []Entry {
	type acc struct {
		idx               int
		iters             int64
		ns, bytes, allocs float64
	}
	byName := make(map[string]*acc, len(entries))
	var order []string
	for _, e := range entries {
		a, ok := byName[e.Name]
		if !ok {
			a = &acc{idx: len(order)}
			byName[e.Name] = a
			order = append(order, e.Name)
		}
		w := float64(e.Iterations)
		if w <= 0 {
			w = 1
		}
		a.iters += e.Iterations
		a.ns += e.NsPerOp * w
		a.bytes += float64(e.BytesPerOp) * w
		a.allocs += float64(e.AllocsPerOp) * w
	}
	out := make([]Entry, len(order))
	for name, a := range byName {
		w := float64(a.iters)
		if w <= 0 {
			w = 1
		}
		out[a.idx] = Entry{
			Name:        name,
			Iterations:  a.iters,
			NsPerOp:     a.ns / w,
			BytesPerOp:  int64(a.bytes / w),
			AllocsPerOp: int64(a.allocs / w),
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	out := "BENCH_pr9.json"
	var compare []string
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-o", "--out":
			if i+1 >= len(args) {
				fatalf("-o needs a path")
			}
			i++
			out = args[i]
		case "-compare", "--compare":
			if i+2 >= len(args) {
				fatalf("-compare needs two report paths")
			}
			compare = []string{args[i+1], args[i+2]}
			i += 2
		default:
			fatalf("unknown argument %q", args[i])
		}
	}
	if compare != nil {
		os.Exit(runCompare(compare[0], compare[1]))
	}

	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if e, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read: %v", err)
	}
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark lines on stdin")
	}
	rep.Benchmarks = merge(rep.Benchmarks)

	// Pair .../cold with .../cached variants into speedup ratios; a family
	// with only one variant simply gets no ratio.
	byName := make(map[string]Entry, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		byName[e.Name] = e
	}
	for _, e := range rep.Benchmarks {
		base, ok := strings.CutSuffix(e.Name, "/cold")
		if !ok {
			continue
		}
		cached, ok := byName[base+"/cached"]
		if !ok || cached.NsPerOp == 0 {
			continue
		}
		r := Ratio{Name: base, Speedup: e.NsPerOp / cached.NsPerOp}
		if cached.AllocsPerOp > 0 {
			r.AllocsSpeedup = float64(e.AllocsPerOp) / float64(cached.AllocsPerOp)
		}
		rep.Ratios = append(rep.Ratios, r)
	}
	sort.Slice(rep.Ratios, func(i, j int) bool { return rep.Ratios[i].Name < rep.Ratios[j].Name })

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatalf("%v", err)
	}
	for _, r := range rep.Ratios {
		fmt.Printf("%-40s %5.2fx faster cached\n", r.Name, r.Speedup)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(rep.Benchmarks))
}

// regressionLimit is the relative ns/op increase -compare tolerates before
// failing (20%: generous enough for benchmark jitter on shared machines,
// tight enough to catch a real hot-path regression).
const regressionLimit = 0.20

func loadReport(path string) Report {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		fatalf("%s: %v", path, err)
	}
	return rep
}

// runCompare diffs two reports and returns the process exit code: 1 if any
// benchmark present in both regressed past regressionLimit in ns/op.
func runCompare(oldPath, newPath string) int {
	oldRep, newRep := loadReport(oldPath), loadReport(newPath)
	oldBy := make(map[string]Entry, len(oldRep.Benchmarks))
	for _, e := range merge(oldRep.Benchmarks) {
		oldBy[e.Name] = e
	}
	failed := false
	seen := make(map[string]bool)
	fmt.Printf("%-44s %14s %14s %8s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "Δallocs")
	for _, e := range merge(newRep.Benchmarks) {
		seen[e.Name] = true
		o, ok := oldBy[e.Name]
		if !ok {
			fmt.Printf("%-44s %14s %14.0f %8s %9s  (new)\n", e.Name, "-", e.NsPerOp, "-", "-")
			continue
		}
		dNs := 0.0
		if o.NsPerOp > 0 {
			dNs = e.NsPerOp/o.NsPerOp - 1
		}
		dAllocs := "-"
		if o.AllocsPerOp > 0 {
			dAllocs = fmt.Sprintf("%+.1f%%", 100*(float64(e.AllocsPerOp)/float64(o.AllocsPerOp)-1))
		} else if e.AllocsPerOp > 0 {
			dAllocs = fmt.Sprintf("+%d", e.AllocsPerOp)
		}
		mark := ""
		if dNs > regressionLimit {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-44s %14.0f %14.0f %+7.1f%% %9s%s\n", e.Name, o.NsPerOp, e.NsPerOp, 100*dNs, dAllocs, mark)
	}
	for _, e := range merge(oldRep.Benchmarks) {
		if !seen[e.Name] {
			fmt.Printf("%-44s %14.0f %14s %8s %9s  (dropped)\n", e.Name, e.NsPerOp, "-", "-", "-")
		}
	}
	// The trajectory prints either way: when the gate fails, the history is
	// exactly what you need to judge whether the regression is real drift or
	// a noisy baseline.
	writeTrajectory(oldPath, newPath)
	if failed {
		fmt.Printf("FAIL: at least one benchmark regressed more than %.0f%% in ns/op\n", 100*regressionLimit)
		return 1
	}
	fmt.Println("ok: no benchmark regressed past the limit")
	return 0
}

// writeTrajectory prints a markdown table of ns/op for every benchmark
// across all checked-in BENCH_*.json reports (plus the two just compared,
// if they live elsewhere), so a PR's perf claim reads as a trajectory
// rather than a single diff. Purely informational: parse problems are
// skipped, never fatal.
func writeTrajectory(extra ...string) {
	paths, _ := filepath.Glob("BENCH_*.json")
	for _, e := range extra {
		found := false
		for _, p := range paths {
			if p == e {
				found = true
				break
			}
		}
		if !found {
			paths = append(paths, e)
		}
	}
	// Checked-in baselines in name order, transient head snapshots last.
	sort.Slice(paths, func(i, j int) bool {
		hi := strings.Contains(paths[i], "head")
		hj := strings.Contains(paths[j], "head")
		if hi != hj {
			return hj
		}
		return paths[i] < paths[j]
	})
	type col struct {
		label string
		by    map[string]Entry
	}
	var cols []col
	var order []string
	seen := make(map[string]bool)
	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		var rep Report
		if err := json.Unmarshal(buf, &rep); err != nil {
			continue
		}
		by := make(map[string]Entry, len(rep.Benchmarks))
		for _, e := range merge(rep.Benchmarks) {
			by[e.Name] = e
			if !seen[e.Name] {
				seen[e.Name] = true
				order = append(order, e.Name)
			}
		}
		label := strings.TrimSuffix(filepath.Base(p), ".json")
		cols = append(cols, col{label: label, by: by})
	}
	if len(cols) < 2 {
		return
	}
	fmt.Println("\n### Benchmark trajectory (ns/op)")
	fmt.Println()
	header, sep := "| benchmark |", "|---|"
	for _, c := range cols {
		header += " " + c.label + " |"
		sep += "---:|"
	}
	fmt.Println(header)
	fmt.Println(sep)
	for _, name := range order {
		row := "| " + strings.TrimPrefix(name, "Benchmark") + " |"
		for _, c := range cols {
			if e, ok := c.by[name]; ok {
				row += fmt.Sprintf(" %.0f |", e.NsPerOp)
			} else {
				row += " - |"
			}
		}
		fmt.Println(row)
	}
}
