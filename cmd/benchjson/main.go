// Command benchjson turns `go test -bench -benchmem` output into a JSON
// record of the measurement hot path's cost: ns/op, B/op and allocs/op per
// benchmark, plus cold/cached speedup ratios for every benchmark that has
// both variants. `make bench` pipes the PR's hot-path benchmarks through it
// to produce BENCH_pr3.json, so performance regressions show up as a diff
// rather than a feeling.
//
// Usage:
//
//	go test -bench 'Sweep|Shmoo|Evaluation' -benchmem -run '^$' . | benchjson [-o out.json]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark line.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Ratio is the cold/cached speedup for one benchmark family.
type Ratio struct {
	Name          string  `json:"name"`
	Speedup       float64 `json:"speedup"`
	AllocsSpeedup float64 `json:"allocs_speedup"`
}

// Report is the file benchjson writes.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	Ratios     []Ratio `json:"cold_vs_cached"`
}

// parseLine parses one `Benchmark.../variant-N  iters  ns/op ...` line.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Iterations: iters}
	// Strip the trailing -GOMAXPROCS suffix from the name.
	e.Name = fields[0]
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name = e.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	return e, true
}

func main() {
	out := "BENCH_pr3.json"
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-o", "--out":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -o needs a path")
				os.Exit(2)
			}
			i++
			out = args[i]
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown argument %q\n", args[i])
			os.Exit(2)
		}
	}

	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if e, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Pair .../cold with .../cached variants into speedup ratios.
	byName := make(map[string]Entry, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		byName[e.Name] = e
	}
	for _, e := range rep.Benchmarks {
		base, ok := strings.CutSuffix(e.Name, "/cold")
		if !ok {
			continue
		}
		cached, ok := byName[base+"/cached"]
		if !ok || cached.NsPerOp == 0 {
			continue
		}
		r := Ratio{Name: base, Speedup: e.NsPerOp / cached.NsPerOp}
		if cached.AllocsPerOp > 0 {
			r.AllocsSpeedup = float64(e.AllocsPerOp) / float64(cached.AllocsPerOp)
		}
		rep.Ratios = append(rep.Ratios, r)
	}
	sort.Slice(rep.Ratios, func(i, j int) bool { return rep.Ratios[i].Name < rep.Ratios[j].Name })

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Ratios {
		fmt.Printf("%-40s %5.2fx faster cached\n", r.Name, r.Speedup)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(rep.Benchmarks))
}
