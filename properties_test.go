package emnoise

// Cross-cutting physical-invariant property tests: these exercise the whole
// stack through the public API with randomized inputs, checking laws that
// must hold regardless of calibration.

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdn"
)

// randomPDN perturbs the Juno A72 PDN by up to ±30% per element.
func randomPDN(rng *rand.Rand) PDNParams {
	jitter := func(v float64) float64 { return v * (0.7 + 0.6*rng.Float64()) }
	plat, err := JunoR2()
	if err != nil {
		panic(err)
	}
	p := plat.Domains()[0].Spec.PDN
	p.CDieCore = jitter(p.CDieCore)
	p.CDieUncore = jitter(p.CDieUncore)
	p.RDie = jitter(p.RDie)
	p.LPkg = jitter(p.LPkg)
	p.RPkgTrace = jitter(p.RPkgTrace)
	p.CPkg = jitter(p.CPkg)
	p.ESRPkg = jitter(p.ESRPkg)
	p.ESLPkg = jitter(p.ESLPkg)
	p.LPcb = jitter(p.LPcb)
	p.RPcbTrace = jitter(p.RPcbTrace)
	p.CPcb = jitter(p.CPcb)
	p.ESRPcb = jitter(p.ESRPcb)
	p.ESLPcb = jitter(p.ESLPcb)
	p.LVrm = jitter(p.LVrm)
	p.RVrm = jitter(p.RVrm)
	return p
}

// Passivity: a network of positive Rs, Ls and Cs cannot generate energy, so
// the driving-point impedance must have a non-negative real part at every
// frequency, for any parameter set.
func TestPDNPassivityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := randomPDN(rng)
		cores := 1 + rng.Intn(4)
		m, err := pdn.NewModel(params, cores)
		if err != nil {
			return false
		}
		for i := 0; i < 12; i++ {
			f := 1e4 * math10(rng.Float64()*5) // 10 kHz .. 1 GHz, log-uniform
			z, err := m.Impedance(f)
			if err != nil {
				return false
			}
			if real(z) < -1e-9 {
				t.Logf("negative resistance %v at %v Hz (seed %d)", real(z), f, seed)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Reciprocity of scale: doubling the load current must exactly double the
// AC response (the network is linear).
func TestPDNLinearityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := randomPDN(rng)
		m, err := pdn.NewModel(params, 2)
		if err != nil {
			return false
		}
		const n = 256
		dt := 1e-9
		ts, err := m.Transfers(n, dt)
		if err != nil {
			return false
		}
		load := make([]float64, n)
		for i := range load {
			load[i] = 0.5 + 0.5*rng.Float64()
		}
		double := make([]float64, n)
		for i := range load {
			double[i] = 2 * load[i]
		}
		r1, err := ts.SteadyState(load)
		if err != nil {
			return false
		}
		r2, err := ts.SteadyState(double)
		if err != nil {
			return false
		}
		vnom := params.VNominal
		for i := range r1.VDie {
			d1 := vnom - r1.VDie[i]
			d2 := vnom - r2.VDie[i]
			if absDiff(d2, 2*d1) > 1e-9*(1+absDiff(d2, 0)) {
				return false
			}
			if absDiff(r2.IDie[i], 2*r1.IDie[i]) > 1e-9*(1+absDiff(r2.IDie[i], 0)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(67))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Monotone capacitance: adding powered cores (capacitance) can only lower
// the first-order resonance, for any parameter set.
func TestResonanceMonotoneInCoresProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := randomPDN(rng)
		prev := 0.0
		for cores := 1; cores <= 4; cores++ {
			m, err := pdn.NewModel(params, cores)
			if err != nil {
				return false
			}
			f := m.FirstOrderResonance()
			if cores > 1 && f >= prev {
				return false
			}
			prev = f
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Impedance magnitude symmetry: |Z| computed via the AC path must equal the
// magnitude of the transfer-set bin at the same frequency.
func TestTransferConsistencyProperty(t *testing.T) {
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	params := plat.Domains()[0].Spec.PDN
	m, err := pdn.NewModel(params, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	dt := 1e-9
	ts, err := m.Transfers(n, dt)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n/2; k += 7 {
		f := float64(k) / (float64(n) * dt)
		z, err := m.Impedance(f)
		if err != nil {
			t.Fatal(err)
		}
		if absDiff(cmplx.Abs(z), cmplx.Abs(ts.HV[k])) > 1e-9*(1+cmplx.Abs(z)) {
			t.Fatalf("bin %d: |Z| %v vs |HV| %v", k, cmplx.Abs(z), cmplx.Abs(ts.HV[k]))
		}
	}
}

func math10(x float64) float64 {
	out := 1.0
	for x >= 1 {
		out *= 10
		x--
	}
	// Fractional remainder via simple exponentiation.
	frac := 1.0
	if x > 0 {
		frac = 1 + x*9 // coarse log-uniform spread is fine for sampling
	}
	return out * frac
}

func absDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		return -d
	}
	return d
}
