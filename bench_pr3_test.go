package emnoise

// Hot-path benchmarks for the measurement pipeline, each in a cold and a
// cached variant. Cold disables the uarch trace cache and the checkpoint
// store, so every operating point pays a full cycle-accurate simulation;
// cached runs with both warm, so clock and supply changes only
// re-synthesize and resample the stored charge history and lineaged
// sequences resume from their parents' snapshots. The spectra memo is
// defeated in both variants (fresh platforms, or per-iteration supply
// perturbation — the spectra key includes the supply, the trace key does
// not), so the pairs isolate the simulation-avoidance layers themselves.
// These are the benchmarks recorded by `make bench` (BENCH_OUT, default
// BENCH_pr4.json).

import (
	"math/rand"
	"testing"

	"repro/internal/ga"
	"repro/internal/uarch"
)

// withBenchTraceCache flips the simulation-avoidance layers (trace cache
// and checkpoint store) together for one benchmark variant, starting from
// empty stores, and restores the prior state afterwards.
func withBenchTraceCache(b *testing.B, on bool) {
	b.Helper()
	prevTC := uarch.SetTraceCacheEnabled(on)
	prevCk := uarch.SetCheckpointsEnabled(on)
	uarch.ResetTraceCache()
	uarch.ResetCheckpointStore()
	b.Cleanup(func() {
		uarch.SetTraceCacheEnabled(prevTC)
		uarch.SetCheckpointsEnabled(prevCk)
		uarch.ResetTraceCache()
		uarch.ResetCheckpointStore()
	})
}

// BenchmarkSpectraEvaluation times one spectra evaluation of a fixed
// workload (uarch trace → current resample → PDN transfer → FFT). The
// supply is nudged every iteration so the spectra memo never hits; with
// the trace cache on, only the simulation is skipped.
func BenchmarkSpectraEvaluation(b *testing.B) {
	for _, v := range []struct {
		name string
		on   bool
	}{{"cold", false}, {"cached", true}} {
		b.Run(v.name, func(b *testing.B) {
			withBenchTraceCache(b, v.on)
			plat, err := JunoR2()
			if err != nil {
				b.Fatal(err)
			}
			d, err := plat.Domain(DomainA72)
			if err != nil {
				b.Fatal(err)
			}
			pool := d.Spec.Pool()
			rng := rand.New(rand.NewSource(17))
			const (
				dt = 0.25e-9
				n  = 8192
			)
			clock := d.Spec.MaxClockHz
			vnom := d.SupplyVolts()
			seq := pool.RandomSequence(rng, 50)
			l := Load{Seq: seq, ActiveCores: 2}
			// Prime the PDN transfer cache (computed once per domain) and,
			// in the cached variant, the trace cache.
			if _, _, _, _, err := d.SpectraAt(l, dt, n, clock); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := d.SetSupplyVolts(vnom - float64(i%100000+1)*1e-7); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, _, _, err := d.SpectraAt(l, dt, n, clock); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitnessEvaluation times one full GA fitness measurement of a
// never-seen individual: spectra, EM coupling, and the analyzer's sampled
// peak measurement. Every iteration draws a fresh random sequence, which
// is the load profile a GA generation presents.
func BenchmarkFitnessEvaluation(b *testing.B) {
	for _, v := range []struct {
		name string
		on   bool
	}{{"cold", false}, {"cached", true}} {
		b.Run(v.name, func(b *testing.B) {
			withBenchTraceCache(b, v.on)
			plat, err := JunoR2()
			if err != nil {
				b.Fatal(err)
			}
			bench, err := NewBench(plat, 3)
			if err != nil {
				b.Fatal(err)
			}
			bench.Samples = 3
			d, err := plat.Domain(DomainA72)
			if err != nil {
				b.Fatal(err)
			}
			pool := d.Spec.Pool()
			rng := rand.New(rand.NewSource(23))
			m := bench.EMMeasurer(d, 2)
			if _, _, err := m.Measure(pool.RandomSequence(rng, 50)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				seq := pool.RandomSequence(rng, 50)
				b.StartTimer()
				if _, _, err := m.Measure(seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLineage times the GA's dominant measurement: a bred child that
// shares a 32-instruction prefix with an already-measured parent. Every
// iteration draws a fresh crossover suffix, so the trace cache and the
// spectra memo always miss on the child; in the cached variant the
// checkpoint store resumes the simulation from the parent's deepest
// matching snapshot instead of replaying the shared prefix.
func BenchmarkLineage(b *testing.B) {
	for _, v := range []struct {
		name string
		on   bool
	}{{"cold", false}, {"cached", true}} {
		b.Run(v.name, func(b *testing.B) {
			withBenchTraceCache(b, v.on)
			plat, err := JunoR2()
			if err != nil {
				b.Fatal(err)
			}
			bench, err := NewBench(plat, 3)
			if err != nil {
				b.Fatal(err)
			}
			bench.Samples = 3
			d, err := plat.Domain(DomainA72)
			if err != nil {
				b.Fatal(err)
			}
			pool := d.Spec.Pool()
			rng := rand.New(rand.NewSource(29))
			m, ok := bench.EMMeasurer(d, 2).(ga.LineageMeasurer)
			if !ok {
				b.Fatal("EMMeasurer does not implement ga.LineageMeasurer")
			}
			parent := pool.RandomSequence(rng, 50)
			const div = 32
			// Measure the parent once so its checkpoints are stored (and the
			// PDN transfer cache is primed in both variants).
			if _, _, err := m.Measure(parent); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				child := append(parent[:div:div], pool.RandomSequence(rng, len(parent)-div)...)
				b.StartTimer()
				if _, _, err := m.MeasureLineage(child, &ga.Lineage{Diverge: div}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResonanceSweep times the Section 5.3 fast resonance sweep over
// the full clock range. The platform (and its PDN transfer sets) is built
// once outside the timer; the supply is nudged every iteration so the
// spectra memo never serves a step. The cached variant therefore measures
// exactly what the trace cache saves: every clock step re-uses one
// probe-loop charge history instead of re-simulating it.
func BenchmarkResonanceSweep(b *testing.B) {
	for _, v := range []struct {
		name string
		on   bool
	}{{"cold", false}, {"cached", true}} {
		b.Run(v.name, func(b *testing.B) {
			withBenchTraceCache(b, v.on)
			plat, err := AMDDesktop()
			if err != nil {
				b.Fatal(err)
			}
			bench, err := NewBench(plat, 7)
			if err != nil {
				b.Fatal(err)
			}
			bench.Samples = 3
			bench.Parallelism = 1
			bench.Dt = 0.5e-9
			d, err := plat.Domain(DomainAthlon)
			if err != nil {
				b.Fatal(err)
			}
			vnom := d.SupplyVolts()
			// Warm the transfer cache and, in the cached variant, the
			// trace cache.
			if _, err := bench.FastResonanceSweep(d, 4); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := d.SetSupplyVolts(vnom - float64(i%100000+1)*1e-7); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := bench.FastResonanceSweep(d, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShmoo times a three-clock V_MIN shmoo on the Juno A72 domain.
// The V_MIN search path (SteadyResponseAt) is unmemoized, so one shared
// platform suffices: every iteration re-runs the whole clock×supply grid,
// and the trace cache carries the workload's charge history across all of
// its operating points.
func BenchmarkShmoo(b *testing.B) {
	for _, v := range []struct {
		name string
		on   bool
	}{{"cold", false}, {"cached", true}} {
		b.Run(v.name, func(b *testing.B) {
			withBenchTraceCache(b, v.on)
			plat, err := JunoR2()
			if err != nil {
				b.Fatal(err)
			}
			d, err := plat.Domain(DomainA72)
			if err != nil {
				b.Fatal(err)
			}
			w, err := WorkloadByName("probe")
			if err != nil {
				b.Fatal(err)
			}
			seq, err := w.Build(d.Spec.Pool())
			if err != nil {
				b.Fatal(err)
			}
			tester := NewVminTester(d, 13)
			tester.Parallelism = 1
			steps := d.ClockSteps()
			clocks := []float64{steps[len(steps)-1], steps[len(steps)/2], steps[len(steps)/4]}
			run := func() {
				if _, err := tester.Shmoo(Load{Seq: seq, ActiveCores: 2}, clocks); err != nil {
					b.Fatal(err)
				}
			}
			run() // warm the transfer cache and, when enabled, the trace cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}
