package emnoise

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=. -benchmem). Each BenchmarkFigN/BenchmarkTabN
// times one full regeneration of that artifact and reports its headline
// numbers as custom metrics, so `bench_output.txt` doubles as the
// paper-versus-measured record. The Ablation benchmarks quantify the design
// choices called out in DESIGN.md Section 6.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/platform"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

// benchContext shares one experiment context (and its cached GA viruses)
// across the whole harness, as the experiments themselves do.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = experiments.NewContext(experiments.Options{Quick: true, Seed: 7})
	})
	if benchCtxErr != nil {
		b.Fatal(benchCtxErr)
	}
	return benchCtx
}

// runExperiment benches one experiment and publishes its headline values.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	ctx := benchContext(b)
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for _, k := range sortedKeys(last.Values) {
		b.ReportMetric(last.Values[k], k)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func BenchmarkFig1bImpedance(b *testing.B)        { runExperiment(b, "fig1b") }
func BenchmarkFig1cStepResponse(b *testing.B)     { runExperiment(b, "fig1c") }
func BenchmarkFig2Resonance(b *testing.B)         { runExperiment(b, "fig2") }
func BenchmarkFig4Waveforms(b *testing.B)         { runExperiment(b, "fig4") }
func BenchmarkFig6Antenna(b *testing.B)           { runExperiment(b, "fig6") }
func BenchmarkFig7GACortexA72(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig8SCLSweep(b *testing.B)          { runExperiment(b, "fig8") }
func BenchmarkFig9SpectrumAgreement(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10VminA72(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFig11FastSweepA72(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12GACortexA53(b *testing.B)      { runExperiment(b, "fig12") }
func BenchmarkFig13PowerGating(b *testing.B)      { runExperiment(b, "fig13") }
func BenchmarkFig14VminA53(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15MultiDomain(b *testing.B)      { runExperiment(b, "fig15") }
func BenchmarkFig16FastSweepAMD(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkFig17GAAMD(b *testing.B)            { runExperiment(b, "fig17") }
func BenchmarkFig18VminAMD(b *testing.B)          { runExperiment(b, "fig18") }
func BenchmarkTable1Platforms(b *testing.B)       { runExperiment(b, "tab1") }
func BenchmarkTable2Viruses(b *testing.B)         { runExperiment(b, "tab2") }

// BenchmarkAblationFreqVsTransient compares the fast frequency-domain
// steady-state path against the reference transient solver: the fitness
// loop runs thousands of evaluations, so the speedup is the reason the GA
// finishes in minutes instead of hours.
func BenchmarkAblationFreqVsTransient(b *testing.B) {
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	w, err := WorkloadByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		b.Fatal(err)
	}
	l := Load{Seq: seq, ActiveCores: 2}
	const (
		dt = 0.25e-9
		n  = 8192
	)
	b.Run("steady-state", func(b *testing.B) {
		var ptp float64
		for i := 0; i < b.N; i++ {
			resp, _, err := d.SteadyResponse(l, dt, n)
			if err != nil {
				b.Fatal(err)
			}
			ptp = resp.PeakToPeak()
		}
		b.ReportMetric(ptp*1e3, "ptp_mv")
	})
	b.Run("transient", func(b *testing.B) {
		var ptp float64
		for i := 0; i < b.N; i++ {
			resp, _, err := d.TransientResponse(l, dt, n)
			if err != nil {
				b.Fatal(err)
			}
			ptp = ptpOf(resp.VDie[n/2:])
		}
		b.ReportMetric(ptp*1e3, "ptp_mv")
	})
}

func ptpOf(x []float64) float64 {
	min, max := x[0], x[0]
	for _, v := range x {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// BenchmarkAblationGAOperators sweeps the GA mutation rate (the paper uses
// 2-4%) and reports the best fitness each rate reaches under a fixed
// evaluation budget.
func BenchmarkAblationGAOperators(b *testing.B) {
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		b.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	for _, rate := range []float64{0.0, 0.01, 0.03, 0.10, 0.30} {
		b.Run(fmt.Sprintf("mutation=%.2f", rate), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				cfg := ga.DefaultConfig(d.Spec.Pool())
				cfg.PopulationSize = 16
				cfg.Generations = 10
				cfg.MutationRate = rate
				cfg.Seed = 42
				res, err := bench.GenerateVirus(d, cfg, 2, nil)
				if err != nil {
					b.Fatal(err)
				}
				best = res.Best.Fitness
			}
			b.ReportMetric(best, "best_dbm")
		})
	}
}

// BenchmarkAblationSampleCount quantifies the paper's 30-sample averaging:
// the per-measurement noise (stdev across repeated measurements of the same
// individual) shrinks with the sample count, which is what lets tournament
// selection see small fitness differences.
func BenchmarkAblationSampleCount(b *testing.B) {
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	w, err := WorkloadByName("probe")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		b.Fatal(err)
	}
	for _, samples := range []int{1, 5, 30} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			var noise float64
			for i := 0; i < b.N; i++ {
				const reps = 12
				vals := make([]float64, reps)
				for r := 0; r < reps; r++ {
					// Measurement noise is a pure function of (seed,
					// content), so repeated measurements only spread when
					// the analyzer seed differs per repetition.
					bench, err := NewBench(plat, 99+int64(r))
					if err != nil {
						b.Fatal(err)
					}
					bench.Samples = samples
					m, err := bench.EMMeasure(d, Load{Seq: seq, ActiveCores: 2})
					if err != nil {
						b.Fatal(err)
					}
					vals[r] = m.PeakDBm
				}
				var mean float64
				for _, v := range vals {
					mean += v
				}
				mean /= reps
				var acc float64
				for _, v := range vals {
					acc += (v - mean) * (v - mean)
				}
				noise = math.Sqrt(acc / reps)
			}
			b.ReportMetric(noise, "stdev_db")
		})
	}
}

// BenchmarkAblationInstructionPool tests the Section 8.3 claim that the GA
// needs a diverse instruction mix: an integer-only pool reaches a clearly
// lower EM amplitude than the full pool under the same budget.
func BenchmarkAblationInstructionPool(b *testing.B) {
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		b.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	full := d.Spec.Pool()
	var intDefs []isa.Def
	for _, def := range full.Defs {
		if def.Class == isa.IntShort || def.Class == isa.IntLong {
			intDefs = append(intDefs, def)
		}
	}
	intOnly, err := isa.NewPool(full.Arch, intDefs, full.IntRegs, full.VecRegs, full.MemSlots)
	if err != nil {
		b.Fatal(err)
	}
	pools := map[string]*isa.Pool{"full-mix": full, "int-only": intOnly}
	for _, name := range []string{"full-mix", "int-only"} {
		b.Run(name, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				cfg := ga.DefaultConfig(pools[name])
				cfg.PopulationSize = 16
				cfg.Generations = 10
				cfg.Seed = 5
				res, err := bench.GenerateVirus(d, cfg, 2, nil)
				if err != nil {
					b.Fatal(err)
				}
				best = res.Best.Fitness
			}
			b.ReportMetric(best, "best_dbm")
		})
	}
}

// BenchmarkGAEvaluation times one fitness evaluation — the unit of cost the
// paper's 15-hour wall-clock estimate is built from (simulated here, the
// instrument latency is gone).
func BenchmarkGAEvaluation(b *testing.B) {
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		b.Fatal(err)
	}
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	m := bench.EMMeasurer(d, 2)
	seq := d.Spec.Pool().RandomSequence(rand.New(rand.NewSource(1)), 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Measure(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGAEvaluationParallel runs a fixed GA evaluation budget at
// increasing worker counts. The results are bit-identical at every setting
// (the determinism regression tests enforce it); only the wall clock
// changes. On a >=4-core machine j=4 should be at least 2x faster than j=1.
func BenchmarkGAEvaluationParallel(b *testing.B) {
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		b.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	m := bench.EMMeasurer(d, 2)
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := ga.DefaultConfig(d.Spec.Pool())
				cfg.PopulationSize, cfg.Generations, cfg.Seed = 24, 3, 11
				cfg.Parallelism = j
				if _, err := ga.Run(cfg, m, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFastSweepParallel times the fast resonance sweep at increasing
// worker counts; every clock point is independent, so the sweep scales to
// the number of points.
func BenchmarkFastSweepParallel(b *testing.B) {
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		b.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			bench.Parallelism = j
			for i := 0; i < b.N; i++ {
				if _, err := bench.FastResonanceSweep(d, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	bench.Parallelism = 0
}

var _ = platform.DomainA72

// Extension benchmarks: the Section 10 future-work artifacts.
func BenchmarkExtGPU(b *testing.B)      { runExperiment(b, "ext-gpu") }
func BenchmarkExtPredict(b *testing.B)  { runExperiment(b, "ext-predict") }
func BenchmarkExtTamper(b *testing.B)   { runExperiment(b, "ext-tamper") }
func BenchmarkExtMitigate(b *testing.B) { runExperiment(b, "ext-mitigate") }
func BenchmarkExtSDR(b *testing.B)      { runExperiment(b, "ext-sdr") }

// BenchmarkAblationIslandGA compares the single-population GA against the
// island model at equal evaluation budgets.
func BenchmarkAblationIslandGA(b *testing.B) {
	plat, err := JunoR2()
	if err != nil {
		b.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		b.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		b.Fatal(err)
	}
	m := bench.EMMeasurer(d, 2)
	b.Run("single-population", func(b *testing.B) {
		var best float64
		for i := 0; i < b.N; i++ {
			cfg := ga.DefaultConfig(d.Spec.Pool())
			cfg.PopulationSize, cfg.Generations, cfg.Seed = 16, 12, 3
			res, err := ga.Run(cfg, m, nil)
			if err != nil {
				b.Fatal(err)
			}
			best = res.Best.Fitness
		}
		b.ReportMetric(best, "best_dbm")
	})
	b.Run("three-islands", func(b *testing.B) {
		var best float64
		for i := 0; i < b.N; i++ {
			base := ga.DefaultConfig(d.Spec.Pool())
			base.PopulationSize, base.Generations, base.Seed = 16, 12, 3
			cfg := ga.IslandConfig{Base: base, Islands: 3, MigrationInterval: 4, Migrants: 2}
			res, err := ga.RunIslands(cfg, m, nil)
			if err != nil {
				b.Fatal(err)
			}
			best = res.Best.Fitness
		}
		b.ReportMetric(best, "best_dbm")
	})
}
