package emnoise

import (
	"io"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/experiments"
	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/lab"
	"repro/internal/lab/chaos"
	"repro/internal/pdn"
	"repro/internal/platform"
	"repro/internal/uarch"
	"repro/internal/vmin"
	"repro/internal/workload"
)

// Platforms and voltage domains.
type (
	// Platform is a board with one or more CPU voltage domains under a
	// single receiver antenna.
	Platform = platform.Platform
	// Domain is one voltage domain: PDN + core cluster + EM coupling path
	// plus runtime state (clock, supply, powered cores).
	Domain = platform.Domain
	// DomainSpec statically describes a domain.
	DomainSpec = platform.Spec
	// Load is a stress loop bound to a number of active cores.
	Load = platform.Load
	// PDNParams parameterizes a die-package-PCB power delivery network.
	PDNParams = pdn.Params
	// PDNModel is a PDN instance for a powered-core count.
	PDNModel = pdn.Model
	// CoreConfig describes a cycle-approximate core model.
	CoreConfig = uarch.Config
	// FailureParams calibrates a domain's V_MIN failure model.
	FailureParams = platform.FailureParams
)

// Built-in domain names.
const (
	DomainA72    = platform.DomainA72
	DomainA53    = platform.DomainA53
	DomainAthlon = platform.DomainAthlon
)

// JunoR2 builds the ARM Juno R2 big.LITTLE platform of the paper's Table 1
// (dual-core Cortex-A72 with OC-DSO, quad-core Cortex-A53 without voltage
// visibility).
func JunoR2() (*Platform, error) { return platform.JunoR2() }

// AMDDesktop builds the Athlon II X4 645 desktop platform of Table 1.
func AMDDesktop() (*Platform, error) { return platform.AMDDesktop() }

// NewPlatform assembles a custom platform from domain specs.
func NewPlatform(name string, antenna Antenna, specs ...DomainSpec) (*Platform, error) {
	return platform.NewPlatform(name, antenna, specs...)
}

// Core models of the three CPUs the paper characterizes.
var (
	CortexA72Core = uarch.CortexA72
	CortexA53Core = uarch.CortexA53
	AthlonIICore  = uarch.AthlonII
)

// EM front end.
type (
	// Antenna is the loop-antenna model (flat in band, 2.95 GHz
	// self-resonance).
	Antenna = em.Antenna
	// EMPath is the radiating/coupling path from a package to the antenna.
	EMPath = em.Path
)

// DefaultLoopAntenna returns the paper's 3 cm square loop antenna.
func DefaultLoopAntenna() Antenna { return em.DefaultLoopAntenna() }

// Instruments.
type (
	// SpectrumAnalyzer models a swept-tuned analyzer with RBW binning,
	// a noise floor and per-sweep measurement noise.
	SpectrumAnalyzer = instrument.SpectrumAnalyzer
	// DSO models a sampling oscilloscope (the Juno OC-DSO or a bench
	// scope on Kelvin pads).
	DSO = instrument.DSO
	// SCL is the Juno synthetic-current-load block.
	SCL = instrument.SCL
)

// NewOCDSO returns the Juno on-chip power-delivery monitor.
func NewOCDSO(seed int64) *DSO { return instrument.NewOCDSO(seed) }

// NewBenchScope returns a bench oscilloscope with a differential probe.
func NewBenchScope(seed int64) *DSO { return instrument.NewBenchScope(seed) }

// NewSCL returns a synthetic current load of the given amplitude.
func NewSCL(ampA float64) *SCL { return instrument.NewSCL(ampA) }

// The methodology bench.
type (
	// Bench couples a platform to the antenna and analyzer and implements
	// the paper's methods: EM-driven virus generation, the fast resonance
	// sweep, and multi-domain monitoring.
	Bench = core.Bench
	// Band is a frequency search band.
	Band = core.Band
	// SweepResult is a completed fast resonance sweep.
	SweepResult = core.SweepResult
)

// NewBench assembles a measurement bench with the paper's defaults.
func NewBench(p *Platform, seed int64) (*Bench, error) { return core.NewBench(p, seed) }

// DefaultBand returns the paper's 50-200 MHz first-order search band.
func DefaultBand() Band { return core.DefaultBand() }

// Genetic algorithm.
type (
	// GAConfig holds the stress-test generator's hyper-parameters.
	GAConfig = ga.Config
	// GAResult is a finished GA run (best individual plus history).
	GAResult = ga.Result
	// GAStats summarizes one generation.
	GAStats = ga.GenerationStats
	// Measurer evaluates one candidate stress loop.
	Measurer = ga.Measurer
	// MeasurerFunc adapts a function to Measurer.
	MeasurerFunc = ga.MeasurerFunc
	// Individual is a candidate stress loop with its measured fitness.
	Individual = ga.Individual
)

// DefaultGAConfig returns the paper's GA settings (50 individuals, 60
// generations, 50-instruction loops, 3% mutation, tournament selection).
func DefaultGAConfig(pool *Pool) GAConfig { return ga.DefaultConfig(pool) }

// RunGA executes the GA against an arbitrary fitness.
func RunGA(cfg GAConfig, m Measurer, progress func(GAStats)) (*GAResult, error) {
	return ga.Run(cfg, m, progress)
}

// Instruction sets.
type (
	// Pool is the instruction universe the GA draws operands from.
	Pool = isa.Pool
	// Inst is an instruction instance with concrete operands.
	Inst = isa.Inst
	// Arch identifies an instruction-set architecture.
	Arch = isa.Arch
)

// Architectures.
const (
	ARM64 = isa.ARM64
	X86   = isa.X86
)

// ARM64Pool returns the built-in ARMv8-like instruction pool.
func ARM64Pool() *Pool { return isa.ARM64Pool() }

// X86Pool returns the built-in x86-64/SSE2-like instruction pool.
func X86Pool() *Pool { return isa.X86Pool() }

// LoadPoolXML parses the GA's XML instruction-pool input format.
func LoadPoolXML(r io.Reader) (*Pool, error) { return isa.LoadPoolXML(r) }

// WritePoolXML serializes a pool in the XML input format.
func WritePoolXML(w io.Writer, p *Pool) error { return isa.WritePoolXML(w, p) }

// FormatProgram renders a stress loop as assembly text.
func FormatProgram(p *Pool, seq []Inst) string { return isa.FormatProgram(p, seq) }

// ParseProgram parses assembly text back into a stress loop.
func ParseProgram(p *Pool, text string) ([]Inst, error) { return isa.ParseProgram(p, text) }

// V_MIN testing.
type (
	// VminTester runs V_MIN searches against one domain.
	VminTester = vmin.Tester
	// VminResult is a completed V_MIN search.
	VminResult = vmin.Result
	// FailureKind classifies an execution outcome (pass, SDC, crashes).
	FailureKind = vmin.FailureKind
)

// Failure outcomes.
const (
	Pass        = vmin.Pass
	SDC         = vmin.SDC
	AppCrash    = vmin.AppCrash
	SystemCrash = vmin.SystemCrash
)

// NewVminTester returns a V_MIN tester for a domain.
func NewVminTester(d *Domain, seed int64) *VminTester { return vmin.NewTester(d, seed) }

// Workloads.
type (
	// Workload names a benchmark loop builder.
	Workload = workload.Workload
)

// WorkloadByName finds a workload (idle, probe, the SPEC2006 proxies, the
// desktop suite).
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Workloads returns every built-in workload.
func Workloads() []Workload { return workload.All() }

// Remote lab orchestration (the paper's workstation/target split).
type (
	// LabServer is the target-machine daemon (per-session workload slots,
	// graceful Shutdown, per-command counters).
	LabServer = lab.Server
	// LabClient is the workstation side of the measurement loop:
	// per-command deadlines, classified errors, bounded-backoff retry with
	// reconnect and setpoint replay.
	LabClient = lab.Client
	// LabOptions tunes the client's resilience envelope (deadlines,
	// attempts, backoff).
	LabOptions = lab.Options
	// LabPool is a fixed-size set of lab clients for parallel remote
	// measurement (gahunt -remote -j N).
	LabPool = lab.Pool
	// LabStats is a snapshot of transport counters (dials, reconnects,
	// replays, per-command latency/retries).
	LabStats = lab.Stats
	// ChaosProxy is a deterministic fault-injection TCP proxy for
	// exercising the transport's failure handling.
	ChaosProxy = chaos.Proxy
	// ChaosConfig sets the proxy's seeded drop/delay/garble rates.
	ChaosConfig = chaos.Config
)

// NewLabServer wraps a bench as a lab daemon.
func NewLabServer(b *Bench) (*LabServer, error) { return lab.NewServer(b) }

// DialLab connects to a lab daemon.
var DialLab = lab.Dial

// DialLabOptions connects to a lab daemon with explicit resilience options.
var DialLabOptions = lab.DialOptions

// NewLabPool dials a pool of concurrent lab clients to one daemon.
func NewLabPool(addr string, size int, opts LabOptions) (*LabPool, error) {
	return lab.NewPool(addr, size, opts)
}

// IsLabTargetError reports whether err is a target-side ERR reply (never
// retried) as opposed to a transport fault (retried transparently).
var IsLabTargetError = lab.IsTargetError

// NewChaosProxy starts a fault-injection proxy in front of a lab daemon.
func NewChaosProxy(upstream string, cfg ChaosConfig) (*ChaosProxy, error) {
	return chaos.New(upstream, cfg)
}

// Measurement backends: one interface over the local bench and the remote
// lab, observationally equivalent bit for bit.
type (
	// MeasureBackend is the unified measurement surface every tool runs
	// against: domain enumeration and control, EM measurement, measurer
	// factories, capability flags, V_MIN campaigns.
	MeasureBackend = backend.Backend
	// LocalBackend adapts an in-process Bench to MeasureBackend.
	LocalBackend = backend.Local
	// RemoteBackend speaks the lab protocol to a labtarget daemon.
	RemoteBackend = backend.Remote
	// BackendCaps is a domain's capability record (cores, ISA, clock grid,
	// voltage visibility, DSO kind, lineage support).
	BackendCaps = backend.Caps
	// BackendDomainState is a domain's current operating point.
	BackendDomainState = backend.DomainState
	// BackendMeasurerSpec selects a measurer (domain, metric, cores,
	// averaging, DSO seed).
	BackendMeasurerSpec = backend.MeasurerSpec
	// BackendMetric names a fitness metric (em, droop, ptp).
	BackendMetric = backend.Metric
	// CapabilityError reports a metric requested on a domain whose
	// instrumentation cannot provide it.
	CapabilityError = backend.CapabilityError
)

// Fitness metrics.
const (
	MetricEM    = backend.MetricEM
	MetricDroop = backend.MetricDroop
	MetricPtp   = backend.MetricPtp
)

// NewLocalBackend wraps a bench as a MeasureBackend.
func NewLocalBackend(b *Bench) (*LocalBackend, error) { return backend.NewLocal(b) }

// NewRemoteBackend dials a labtarget daemon with a pool of `jobs`
// sessions, negotiating the protocol version.
func NewRemoteBackend(addr string, jobs int, opts LabOptions) (*RemoteBackend, error) {
	return backend.NewRemote(addr, jobs, opts)
}

// IsCapabilityError reports whether err is a capability mismatch (for
// example, the droop metric on a domain with no voltage visibility).
var IsCapabilityError = backend.IsCapabilityError

// ParseBackendMetric validates a metric name from the CLI.
var ParseBackendMetric = backend.ParseMetric

// Experiments: the paper's tables and figures.
type (
	// Experiment is one runnable paper artifact.
	Experiment = experiments.Experiment
	// ExperimentResult is a completed experiment with its report text and
	// headline values.
	ExperimentResult = experiments.Result
	// ExperimentOptions scales the suite (Quick vs paper-scale).
	ExperimentOptions = experiments.Options
	// ExperimentContext caches platforms and GA viruses across a suite run.
	ExperimentContext = experiments.Context
)

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment ("fig7", "tab2", ...).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// NewExperimentContext prepares the shared platforms and caches.
func NewExperimentContext(opts ExperimentOptions) (*ExperimentContext, error) {
	return experiments.NewContext(opts)
}
