// Package vmin implements the paper's V_MIN methodology (Section 5.2): run
// a workload, lower the supply in fixed steps from a safe voltage, and
// report the highest voltage at which any deviation from nominal execution
// is observed — silent data corruption (SDC), an application crash, or a
// system crash.
//
// Failure model: logic fails when the worst instantaneous die voltage under
// the workload falls below a clock-dependent critical voltage
// vcrit(f) = VCritAtMax - SlackPerHz·(fmax - f). Just above the outright
// crash point there is a narrow band (the paper observes ~10 mV) where SDC
// and application crashes appear first. A small per-trial jitter on the
// threshold reproduces the run-to-run spread that makes the paper repeat
// each virus measurement 30 times. The jitter is drawn from a deterministic
// stream keyed by (tester seed, load, operating point, trial index) — see
// internal/detrand — so trials are order-independent and shmoo points can
// be evaluated concurrently with bit-identical results.
package vmin

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/detrand"
	"repro/internal/platform"
	"repro/internal/slab"
	"repro/internal/uarch"
)

// FailureKind classifies the outcome of one execution.
type FailureKind int

// Outcomes, from benign to fatal.
const (
	Pass FailureKind = iota
	SDC
	AppCrash
	SystemCrash
)

// String returns a human-readable outcome name.
func (k FailureKind) String() string {
	switch k {
	case Pass:
		return "pass"
	case SDC:
		return "sdc"
	case AppCrash:
		return "app-crash"
	case SystemCrash:
		return "system-crash"
	default:
		return fmt.Sprintf("failure(%d)", int(k))
	}
}

// ParseKind is the inverse of FailureKind.String, used to round-trip
// outcomes over the lab wire protocol.
func ParseKind(s string) (FailureKind, error) {
	switch s {
	case "pass":
		return Pass, nil
	case "sdc":
		return SDC, nil
	case "app-crash":
		return AppCrash, nil
	case "system-crash":
		return SystemCrash, nil
	default:
		return 0, fmt.Errorf("vmin: unknown outcome %q", s)
	}
}

// Tester runs V_MIN searches against one voltage domain.
type Tester struct {
	Domain *platform.Domain
	// Dt and N set the electrical analysis grid (dt per sample, N samples).
	Dt float64
	N  int
	// ThresholdJitterV is the sigma of the per-trial critical-voltage
	// jitter.
	ThresholdJitterV float64
	// Parallelism bounds the worker count of Shmoo; 0 or 1 runs serially.
	// Results are identical at any setting.
	Parallelism int

	seed int64 // base of the per-trial jitter streams
}

// NewTester returns a tester with the default analysis grid.
func NewTester(d *platform.Domain, seed int64) *Tester {
	return &Tester{
		Domain:           d,
		Dt:               0.25e-9,
		N:                8192,
		ThresholdJitterV: 1.5e-3,
		seed:             seed,
	}
}

// trialRNG derives the jitter stream for one trial from everything that
// identifies it: the load, the operating point, and the trial nonce
// (Repeat's run index, so repeated searches see independent jitter).
func (t *Tester) trialRNG(load platform.Load, clockHz, supply float64, trial int) *rand.Rand {
	h := detrand.NewHash()
	h.Uint64(load.Hash())
	h.Float64(clockHz)
	h.Float64(supply)
	h.Int(t.Domain.PoweredCores())
	return detrand.Stream(t.seed, h.Sum(), uint64(int64(trial)))
}

// VCrit returns the domain's critical voltage at its current clock.
func (t *Tester) VCrit() float64 { return t.vcritAt(t.Domain.ClockHz()) }

// vcritAt returns the critical voltage at an explicit clock setting.
func (t *Tester) vcritAt(clockHz float64) float64 {
	spec := t.Domain.Spec
	return spec.Failure.VCritAtMax - spec.Failure.SlackPerHz*(spec.MaxClockHz-clockHz)
}

// Trial is one execution at one supply setting.
type Trial struct {
	SupplyV  float64
	MinVDie  float64
	DroopV   float64
	Outcome  FailureKind
	VCritEff float64 // the jittered threshold used for this trial
}

// RunAt executes the workload once at the given supply (and the domain's
// current clock) and classifies the outcome. The domain's supply setting is
// never touched: the evaluation goes through the stateless
// SteadyResponseAt path.
func (t *Tester) RunAt(load platform.Load, supply float64) (Trial, error) {
	return t.runAt(load, t.Domain.ClockHz(), supply, 0)
}

// runAt is RunAt at an explicit clock with a trial nonce.
func (t *Tester) runAt(load platform.Load, clockHz, supply float64, trial int) (Trial, error) {
	resp, _, err := t.Domain.SteadyResponseAt(load, t.Dt, t.N, clockHz, supply)
	if err != nil {
		return Trial{}, err
	}
	return t.classify(load, clockHz, supply, trial, resp.MinVoltage(), resp.MaxDroop(supply)), nil
}

// classify applies the failure model to one execution's supply-response
// scalars. It is pure in (load, operating point, trial, minV, droopV) —
// the jitter stream is content-keyed — which is what lets the batched
// descent reuse one electrical evaluation across deduped trials.
func (t *Tester) classify(load platform.Load, clockHz, supply float64, trial int, minV, droopV float64) Trial {
	rng := t.trialRNG(load, clockHz, supply, trial)
	vcrit := t.vcritAt(clockHz) + rng.NormFloat64()*t.ThresholdJitterV
	tr := Trial{
		SupplyV:  supply,
		MinVDie:  minV,
		DroopV:   droopV,
		VCritEff: vcrit,
	}
	sdcBand := t.Domain.Spec.Failure.SDCBand
	switch {
	case minV < vcrit:
		tr.Outcome = SystemCrash
	case minV < vcrit+sdcBand:
		// In the marginal band, lighter failures surface first.
		if rng.Intn(2) == 0 {
			tr.Outcome = SDC
		} else {
			tr.Outcome = AppCrash
		}
	default:
		tr.Outcome = Pass
	}
	return tr
}

// Result is a completed V_MIN search.
type Result struct {
	// VminV is the highest supply at which any deviation was observed.
	VminV float64
	// Outcome is the deviation kind observed at VminV.
	Outcome FailureKind
	// MarginV is nominal voltage minus VminV (Table 2's voltage margin).
	MarginV float64
	// DroopNominalV is the workload's worst droop at nominal supply
	// (Figure 10's red curve).
	DroopNominalV float64
	// Trials records every step of the descent.
	Trials []Trial
}

// pointEval produces the supply-response scalars the failure model
// consumes at one supply setting of a fixed (load, clock) column. The
// descent is written against this signature so the scalar reference path
// (per-point SteadyResponseAt) and the batched ladder (supply-invariant
// state frozen in an arena, per-supply memo) are interchangeable — the
// property tests pin them bit-identical.
type pointEval func(supply float64) (minV, droopV float64, err error)

// scalarEval is the reference evaluator: every supply step pays the full
// stateless SteadyResponseAt pipeline.
func (t *Tester) scalarEval(load platform.Load, clockHz float64) pointEval {
	return func(supply float64) (float64, float64, error) {
		resp, _, err := t.Domain.SteadyResponseAt(load, t.Dt, t.N, clockHz, supply)
		if err != nil {
			return 0, 0, err
		}
		return resp.MinVoltage(), resp.MaxDroop(supply), nil
	}
}

// Search lowers the supply from the domain's nominal voltage in the
// board's V_MIN step size until a deviation is observed. The search runs at
// the domain's current clock without mutating any domain state, descending
// a batched supply ladder: the simulation, base waveform and PDN transfers
// freeze once per search and each voltage step pays only the scale + FFT
// remainder.
func (t *Tester) Search(load platform.Load) (*Result, error) {
	ar := getArena()
	defer putArena(ar)
	return t.searchLadder(load, t.Domain.ClockHz(), 0, nil, ar)
}

// search is the scalar-reference Search at an explicit clock with a trial
// nonce, kept (package-internal) as the bit-identity baseline the batched
// ladder is tested against.
func (t *Tester) search(load platform.Load, clockHz float64, trial int) (*Result, error) {
	return t.searchEval(load, clockHz, trial, t.scalarEval(load, clockHz))
}

// searchLadder is Search at an explicit clock with a trial nonce, its
// column state frozen in the caller's arena and optionally served from a
// primed clock-invariant trace (nil falls back to per-column sizing).
func (t *Tester) searchLadder(load platform.Load, clockHz float64, trial int, tr *uarch.Trace, ar *slab.Arena) (*Result, error) {
	ld, err := t.Domain.LadderAt(load, t.Dt, t.N, clockHz, tr, ar)
	if err != nil {
		return nil, err
	}
	return t.searchEval(load, clockHz, trial, ld.MinVDroop)
}

// searchEval is the descent itself, agnostic of how supply points are
// evaluated.
func (t *Tester) searchEval(load platform.Load, clockHz float64, trial int, eval pointEval) (*Result, error) {
	spec := t.Domain.Spec
	step := spec.VminStepVolts()
	nominal := spec.PDN.VNominal

	// Droop at nominal conditions first.
	_, nomDroop, err := eval(nominal)
	if err != nil {
		return nil, err
	}
	res := &Result{DroopNominalV: nomDroop}

	maxSteps := int(nominal/step) + 1
	for i := 0; i <= maxSteps; i++ {
		supply := nominal - float64(i)*step
		if supply <= 0 {
			return nil, fmt.Errorf("vmin: %s: no failure found down to 0V (model miscalibrated?)", spec.Name)
		}
		minV, droopV, err := eval(supply)
		if err != nil {
			return nil, err
		}
		tr := t.classify(load, clockHz, supply, trial, minV, droopV)
		res.Trials = append(res.Trials, tr)
		if tr.Outcome != Pass {
			res.VminV = supply
			res.Outcome = tr.Outcome
			res.MarginV = nominal - supply
			return res, nil
		}
	}
	return nil, fmt.Errorf("vmin: %s: search exhausted", spec.Name)
}

// Repeat performs n independent V_MIN searches (the paper runs 30 per
// virus) and returns the per-run V_MIN values plus the worst (highest).
// The run index is the trial nonce, so each repetition sees independent
// threshold jitter. All n descents share one ladder: the supply response
// is a pure function of the operating point, so revisited voltage steps —
// the nominal point and the whole common prefix of every descent — dedup
// to one electrical evaluation, and only the jittered classification
// differs per run.
func (t *Tester) Repeat(load platform.Load, n int) (worst *Result, all []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("vmin: need at least 1 repetition")
	}
	clock := t.Domain.ClockHz()
	ar := getArena()
	defer putArena(ar)
	ld, err := t.Domain.LadderAt(load, t.Dt, t.N, clock, nil, ar)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		r, err := t.searchEval(load, clock, i, ld.MinVDroop)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, r.VminV)
		if worst == nil || r.VminV > worst.VminV {
			worst = r
		}
	}
	return worst, all, nil
}

// arenaPool recycles the per-search (and per-shmoo-worker) slab arenas;
// after the first few campaigns every search runs allocation-free on the
// electrical side.
var arenaPool sync.Pool

func getArena() *slab.Arena {
	if ar, _ := arenaPool.Get().(*slab.Arena); ar != nil {
		return ar
	}
	return &slab.Arena{}
}

func putArena(ar *slab.Arena) {
	ar.Reset()
	arenaPool.Put(ar)
}
