// Package vmin implements the paper's V_MIN methodology (Section 5.2): run
// a workload, lower the supply in fixed steps from a safe voltage, and
// report the highest voltage at which any deviation from nominal execution
// is observed — silent data corruption (SDC), an application crash, or a
// system crash.
//
// Failure model: logic fails when the worst instantaneous die voltage under
// the workload falls below a clock-dependent critical voltage
// vcrit(f) = VCritAtMax - SlackPerHz·(fmax - f). Just above the outright
// crash point there is a narrow band (the paper observes ~10 mV) where SDC
// and application crashes appear first. A small per-trial jitter on the
// threshold reproduces the run-to-run spread that makes the paper repeat
// each virus measurement 30 times.
package vmin

import (
	"fmt"
	"math/rand"

	"repro/internal/platform"
)

// FailureKind classifies the outcome of one execution.
type FailureKind int

// Outcomes, from benign to fatal.
const (
	Pass FailureKind = iota
	SDC
	AppCrash
	SystemCrash
)

// String returns a human-readable outcome name.
func (k FailureKind) String() string {
	switch k {
	case Pass:
		return "pass"
	case SDC:
		return "sdc"
	case AppCrash:
		return "app-crash"
	case SystemCrash:
		return "system-crash"
	default:
		return fmt.Sprintf("failure(%d)", int(k))
	}
}

// Tester runs V_MIN searches against one voltage domain.
type Tester struct {
	Domain *platform.Domain
	// Dt and N set the electrical analysis grid (dt per sample, N samples).
	Dt float64
	N  int
	// ThresholdJitterV is the sigma of the per-trial critical-voltage
	// jitter.
	ThresholdJitterV float64

	rng *rand.Rand
}

// NewTester returns a tester with the default analysis grid.
func NewTester(d *platform.Domain, seed int64) *Tester {
	return &Tester{
		Domain:           d,
		Dt:               0.25e-9,
		N:                8192,
		ThresholdJitterV: 1.5e-3,
		rng:              rand.New(rand.NewSource(seed)),
	}
}

// VCrit returns the domain's critical voltage at its current clock.
func (t *Tester) VCrit() float64 {
	spec := t.Domain.Spec
	return spec.Failure.VCritAtMax - spec.Failure.SlackPerHz*(spec.MaxClockHz-t.Domain.ClockHz())
}

// Trial is one execution at one supply setting.
type Trial struct {
	SupplyV  float64
	MinVDie  float64
	DroopV   float64
	Outcome  FailureKind
	VCritEff float64 // the jittered threshold used for this trial
}

// RunAt executes the workload once at the given supply and classifies the
// outcome.
func (t *Tester) RunAt(load platform.Load, supply float64) (Trial, error) {
	prior := t.Domain.SupplyVolts()
	if err := t.Domain.SetSupplyVolts(supply); err != nil {
		return Trial{}, err
	}
	// Restore only the supply: V_MIN campaigns run at whatever clock and
	// powered-core configuration the caller has set up (e.g. a shmoo).
	defer func() { _ = t.Domain.SetSupplyVolts(prior) }()
	resp, _, err := t.Domain.SteadyResponse(load, t.Dt, t.N)
	if err != nil {
		return Trial{}, err
	}
	minV := resp.MinVoltage()
	vcrit := t.VCrit() + t.rng.NormFloat64()*t.ThresholdJitterV
	tr := Trial{
		SupplyV:  supply,
		MinVDie:  minV,
		DroopV:   resp.MaxDroop(supply),
		VCritEff: vcrit,
	}
	sdcBand := t.Domain.Spec.Failure.SDCBand
	switch {
	case minV < vcrit:
		tr.Outcome = SystemCrash
	case minV < vcrit+sdcBand:
		// In the marginal band, lighter failures surface first.
		if t.rng.Intn(2) == 0 {
			tr.Outcome = SDC
		} else {
			tr.Outcome = AppCrash
		}
	default:
		tr.Outcome = Pass
	}
	return tr, nil
}

// Result is a completed V_MIN search.
type Result struct {
	// VminV is the highest supply at which any deviation was observed.
	VminV float64
	// Outcome is the deviation kind observed at VminV.
	Outcome FailureKind
	// MarginV is nominal voltage minus VminV (Table 2's voltage margin).
	MarginV float64
	// DroopNominalV is the workload's worst droop at nominal supply
	// (Figure 10's red curve).
	DroopNominalV float64
	// Trials records every step of the descent.
	Trials []Trial
}

// Search lowers the supply from the domain's nominal voltage in the
// board's V_MIN step size until a deviation is observed.
func (t *Tester) Search(load platform.Load) (*Result, error) {
	spec := t.Domain.Spec
	step := spec.VminStepVolts()
	nominal := spec.PDN.VNominal

	// Droop at nominal conditions first.
	nomTrial, err := t.RunAt(load, nominal)
	if err != nil {
		return nil, err
	}
	res := &Result{DroopNominalV: nomTrial.DroopV}

	maxSteps := int(nominal/step) + 1
	for i := 0; i <= maxSteps; i++ {
		supply := nominal - float64(i)*step
		if supply <= 0 {
			return nil, fmt.Errorf("vmin: %s: no failure found down to 0V (model miscalibrated?)", spec.Name)
		}
		tr, err := t.RunAt(load, supply)
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, tr)
		if tr.Outcome != Pass {
			res.VminV = supply
			res.Outcome = tr.Outcome
			res.MarginV = nominal - supply
			return res, nil
		}
	}
	return nil, fmt.Errorf("vmin: %s: search exhausted", spec.Name)
}

// Repeat performs n independent V_MIN searches (the paper runs 30 per
// virus) and returns the per-run V_MIN values plus the worst (highest).
func (t *Tester) Repeat(load platform.Load, n int) (worst *Result, all []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("vmin: need at least 1 repetition")
	}
	for i := 0; i < n; i++ {
		r, err := t.Search(load)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, r.VminV)
		if worst == nil || r.VminV > worst.VminV {
			worst = r
		}
	}
	return worst, all, nil
}
