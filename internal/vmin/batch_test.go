package vmin

import (
	"reflect"
	"testing"

	"repro/internal/uarch"
)

// TestBatchedSearchMatchesScalar pins the ladder descent against the
// scalar reference (per-supply SteadyResponseAt): same trials, same V_MIN,
// bit for bit, with the trace cache on and off.
func TestBatchedSearchMatchesScalar(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 5)
	l := load(t, d, "lbm", 2)
	for _, cache := range []bool{true, false} {
		uarch.ResetTraceCache()
		prev := uarch.SetTraceCacheEnabled(cache)
		want, err := tst.search(l, d.ClockHz(), 0)
		if err != nil {
			t.Fatalf("cache=%v: scalar search: %v", cache, err)
		}
		got, err := tst.Search(l)
		uarch.SetTraceCacheEnabled(prev)
		if err != nil {
			t.Fatalf("cache=%v: batched search: %v", cache, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cache=%v: batched search diverges:\n got %+v\nwant %+v", cache, got, want)
		}
	}
	uarch.ResetTraceCache()
}

// TestRepeatMatchesScalarRepeats: n ladder-shared descents must reproduce
// n independent scalar searches — the shared supply memo may change cost,
// never values.
func TestRepeatMatchesScalarRepeats(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 6)
	l := load(t, d, "povray", 2)
	clock := d.ClockHz()

	const n = 5
	var wantAll []float64
	var wantWorst *Result
	for i := 0; i < n; i++ {
		r, err := tst.search(l, clock, i)
		if err != nil {
			t.Fatal(err)
		}
		wantAll = append(wantAll, r.VminV)
		if wantWorst == nil || r.VminV > wantWorst.VminV {
			wantWorst = r
		}
	}
	worst, all, err := tst.Repeat(l, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, wantAll) {
		t.Fatalf("per-run V_MIN diverges: got %v want %v", all, wantAll)
	}
	if !reflect.DeepEqual(worst, wantWorst) {
		t.Fatalf("worst result diverges:\n got %+v\nwant %+v", worst, wantWorst)
	}
}

// TestShmooMatchesScalarAtAnyParallelism is the whole-campaign pin: the
// batched shmoo — primed trace, snapped-clock dedup, per-worker ladders —
// must reproduce per-clock scalar searches at every parallelism setting.
func TestShmooMatchesScalarAtAnyParallelism(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 7)
	l := load(t, d, "lbm", 2)
	clocks := []float64{1.2e9, 1.0e9, 0.8e9, 0.6e9}

	want := make([]ShmooPoint, len(clocks))
	for i, clock := range clocks {
		snapped, err := d.SnapClock(clock)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tst.search(l, snapped, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ShmooPoint{ClockHz: snapped, VminV: res.VminV, MarginV: res.MarginV, Outcome: res.Outcome}
	}
	for _, workers := range []int{1, 8} {
		tst.Parallelism = workers
		got, err := tst.Shmoo(l, clocks)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: shmoo diverges:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestShmooDedupsSnappedClocks: a grid denser than the DVFS lattice snaps
// neighbouring requests onto the same step; each distinct column must run
// once and fan out identical points to every requester.
func TestShmooDedupsSnappedClocks(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 8)
	l := load(t, d, "lbm", 2)

	// Three requests that snap to one step plus one distinct step.
	base := 1.0e9
	s0, err := d.SnapClock(base)
	if err != nil {
		t.Fatal(err)
	}
	clocks := []float64{base, s0, base, 0.6e9}
	points, err := tst.Shmoo(l, clocks)
	if err != nil {
		t.Fatal(err)
	}
	if points[0] != points[1] || points[0] != points[2] {
		t.Fatalf("requests snapping to one step diverged: %+v", points[:3])
	}
	if points[3] == points[0] {
		t.Fatalf("distinct steps collapsed: %+v", points)
	}
	// And the fanned-out points are still the scalar values.
	res, err := tst.search(l, s0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantP := ShmooPoint{ClockHz: s0, VminV: res.VminV, MarginV: res.MarginV, Outcome: res.Outcome}
	if points[0] != wantP {
		t.Fatalf("deduped point diverges from scalar: got %+v want %+v", points[0], wantP)
	}
}
