package vmin

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

func a72Domain(t *testing.T) *platform.Domain {
	t.Helper()
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func load(t *testing.T, d *platform.Domain, name string, cores int) platform.Load {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	return platform.Load{Seq: seq, ActiveCores: cores}
}

func TestFailureKindString(t *testing.T) {
	cases := map[FailureKind]string{
		Pass: "pass", SDC: "sdc", AppCrash: "app-crash", SystemCrash: "system-crash",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", k, got)
		}
	}
	if got := FailureKind(9).String(); got != "failure(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestVCritTracksClock(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 1)
	atMax := tst.VCrit()
	if err := d.SetClockHz(600e6); err != nil {
		t.Fatal(err)
	}
	atHalf := tst.VCrit()
	d.Reset()
	if atHalf >= atMax {
		t.Fatalf("vcrit did not drop with clock: %v vs %v", atHalf, atMax)
	}
	want := d.Spec.Failure.VCritAtMax - d.Spec.Failure.SlackPerHz*(1.2e9-600e6)
	if math.Abs(atHalf-want) > 1e-12 {
		t.Fatalf("vcrit = %v, want %v", atHalf, want)
	}
}

func TestRunAtClassifies(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 2)
	tst.ThresholdJitterV = 0 // deterministic classification
	l := load(t, d, "lbm", 2)

	pass, err := tst.RunAt(l, d.Spec.PDN.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	if pass.Outcome != Pass {
		t.Fatalf("nominal run outcome %v", pass.Outcome)
	}
	if pass.DroopV <= 0 {
		t.Fatal("no droop recorded")
	}
	// Far below vcrit: certain system crash.
	crash, err := tst.RunAt(l, tst.VCrit())
	if err != nil {
		t.Fatal(err)
	}
	if crash.Outcome != SystemCrash {
		t.Fatalf("outcome at vcrit supply = %v, want system-crash", crash.Outcome)
	}
	if crash.MinVDie >= pass.MinVDie {
		t.Fatal("min die voltage did not drop with supply")
	}
}

func TestSearchFindsVmin(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 3)
	l := load(t, d, "lbm", 2)
	res, err := tst.Search(l)
	if err != nil {
		t.Fatal(err)
	}
	nominal := d.Spec.PDN.VNominal
	if res.VminV <= 0 || res.VminV >= nominal {
		t.Fatalf("Vmin = %v", res.VminV)
	}
	if math.Abs(res.MarginV-(nominal-res.VminV)) > 1e-12 {
		t.Fatalf("margin inconsistent: %v vs %v", res.MarginV, nominal-res.VminV)
	}
	if res.Outcome == Pass {
		t.Fatal("search ended on a pass")
	}
	if res.DroopNominalV <= 0 {
		t.Fatal("no nominal droop recorded")
	}
	// All but the last trial passed.
	for i, tr := range res.Trials[:len(res.Trials)-1] {
		if tr.Outcome != Pass {
			t.Fatalf("trial %d failed early at %vV", i, tr.SupplyV)
		}
	}
	// Vmin is on the board's step grid.
	step := d.Spec.VminStepVolts()
	steps := (nominal - res.VminV) / step
	if math.Abs(steps-math.Round(steps)) > 1e-9 {
		t.Fatalf("Vmin %v not on the %v step grid", res.VminV, step)
	}
}

func TestVminOrderingAcrossWorkloads(t *testing.T) {
	// A high-droop workload must have a V_MIN at least as high as idle,
	// and its droop must be strictly larger.
	d := a72Domain(t)
	tst := NewTester(d, 4)
	tst.ThresholdJitterV = 0
	lbm, err := tst.Search(load(t, d, "lbm", 2))
	if err != nil {
		t.Fatal(err)
	}
	idle, err := tst.Search(load(t, d, "idle", 2))
	if err != nil {
		t.Fatal(err)
	}
	if lbm.DroopNominalV <= idle.DroopNominalV {
		t.Fatalf("lbm droop %v not above idle droop %v", lbm.DroopNominalV, idle.DroopNominalV)
	}
	if lbm.VminV < idle.VminV {
		t.Fatalf("lbm Vmin %v below idle Vmin %v", lbm.VminV, idle.VminV)
	}
}

func TestRepeat(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 5)
	l := load(t, d, "lbm", 2)
	worst, all, err := tst.Repeat(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("got %d repetitions", len(all))
	}
	for _, v := range all {
		if v > worst.VminV {
			t.Fatalf("Repeat worst %v below a sample %v", worst.VminV, v)
		}
	}
	if _, _, err := tst.Repeat(l, 0); err == nil {
		t.Fatal("0 repetitions accepted")
	}
}

func TestSearchRestoresDomainState(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 6)
	if _, err := tst.Search(load(t, d, "idle", 1)); err != nil {
		t.Fatal(err)
	}
	if d.SupplyVolts() != d.Spec.PDN.VNominal {
		t.Fatalf("supply left at %v", d.SupplyVolts())
	}
}
