package vmin

import (
	"testing"
)

func TestShmooCurve(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 11)
	tst.ThresholdJitterV = 0
	l := load(t, d, "lbm", 2)
	clocks := []float64{1.2e9, 1.0e9, 0.8e9, 0.6e9}
	points, err := tst.Shmoo(l, clocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d shmoo points", len(points))
	}
	// V_MIN falls as the clock drops (more timing slack).
	if !ShmooMonotone(points, 0.011) {
		t.Fatalf("shmoo not monotone: %+v", points)
	}
	if points[0].VminV <= points[len(points)-1].VminV {
		t.Fatalf("no voltage headroom gained from downclocking: %+v", points)
	}
	// Clock restored.
	if d.ClockHz() != d.Spec.MaxClockHz {
		t.Fatalf("clock left at %v", d.ClockHz())
	}
}

func TestShmooErrors(t *testing.T) {
	d := a72Domain(t)
	tst := NewTester(d, 12)
	l := load(t, d, "idle", 1)
	if _, err := tst.Shmoo(l, nil); err == nil {
		t.Error("empty clock list accepted")
	}
	if _, err := tst.Shmoo(l, []float64{9e9}); err == nil {
		t.Error("out-of-range clock accepted")
	}
}

func TestShmooMonotoneHelper(t *testing.T) {
	good := []ShmooPoint{{VminV: 0.9}, {VminV: 0.85}, {VminV: 0.85}, {VminV: 0.8}}
	if !ShmooMonotone(good, 0) {
		t.Error("monotone curve rejected")
	}
	bad := []ShmooPoint{{VminV: 0.8}, {VminV: 0.9}}
	if ShmooMonotone(bad, 0.05) {
		t.Error("rising curve accepted")
	}
	if !ShmooMonotone(bad, 0.2) {
		t.Error("slack not honoured")
	}
	if !ShmooMonotone(nil, 0) {
		t.Error("empty curve rejected")
	}
}
