package vmin

import (
	"fmt"

	"repro/internal/platform"
)

// ShmooPoint is one operating point of a frequency/voltage shmoo.
type ShmooPoint struct {
	ClockHz float64
	VminV   float64
	MarginV float64
	Outcome FailureKind
}

// Shmoo sweeps the domain clock across the given settings and runs a V_MIN
// search at each, producing the classic post-silicon shmoo curve: the
// frequency/voltage boundary of stable operation for one workload. The
// domain's clock is restored afterwards.
func (t *Tester) Shmoo(load platform.Load, clocks []float64) ([]ShmooPoint, error) {
	if len(clocks) == 0 {
		return nil, fmt.Errorf("vmin: shmoo needs at least one clock setting")
	}
	original := t.Domain.ClockHz()
	defer func() { _ = t.Domain.SetClockHz(original) }()

	out := make([]ShmooPoint, 0, len(clocks))
	for _, clock := range clocks {
		if err := t.Domain.SetClockHz(clock); err != nil {
			return nil, err
		}
		res, err := t.Search(load)
		if err != nil {
			return nil, fmt.Errorf("vmin: shmoo at %v Hz: %w", clock, err)
		}
		out = append(out, ShmooPoint{
			ClockHz: t.Domain.ClockHz(),
			VminV:   res.VminV,
			MarginV: res.MarginV,
			Outcome: res.Outcome,
		})
	}
	return out, nil
}

// ShmooMonotone reports whether V_MIN is non-increasing as the clock drops
// (the physically expected shape: slower clocks tolerate lower voltage),
// allowing `slackV` of measurement jitter. The input must be ordered from
// the highest clock to the lowest.
func ShmooMonotone(points []ShmooPoint, slackV float64) bool {
	for i := 1; i < len(points); i++ {
		if points[i].VminV > points[i-1].VminV+slackV {
			return false
		}
	}
	return true
}
