package vmin

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/platform"
)

// ShmooPoint is one operating point of a frequency/voltage shmoo.
type ShmooPoint struct {
	ClockHz float64
	VminV   float64
	MarginV float64
	Outcome FailureKind
}

// Shmoo runs a V_MIN search at each of the given clock settings, producing
// the classic post-silicon shmoo curve: the frequency/voltage boundary of
// stable operation for one workload. Each operating point is independent
// and evaluated through the stateless search path on up to t.Parallelism
// workers; the domain's clock setting is never touched and points are
// collected in input order, so serial and parallel shmoos are identical.
func (t *Tester) Shmoo(load platform.Load, clocks []float64) ([]ShmooPoint, error) {
	if len(clocks) == 0 {
		return nil, fmt.Errorf("vmin: shmoo needs at least one clock setting")
	}
	snapped := make([]float64, len(clocks))
	for i, clock := range clocks {
		c, err := t.Domain.SnapClock(clock)
		if err != nil {
			return nil, err
		}
		snapped[i] = c
	}
	out := make([]ShmooPoint, len(clocks))
	err := par.ForEach(t.Parallelism, len(snapped), func(i int) error {
		res, err := t.search(load, snapped[i], 0)
		if err != nil {
			return fmt.Errorf("vmin: shmoo at %v Hz: %w", snapped[i], err)
		}
		out[i] = ShmooPoint{
			ClockHz: snapped[i],
			VminV:   res.VminV,
			MarginV: res.MarginV,
			Outcome: res.Outcome,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ShmooMonotone reports whether V_MIN is non-increasing as the clock drops
// (the physically expected shape: slower clocks tolerate lower voltage),
// allowing `slackV` of measurement jitter. The input must be ordered from
// the highest clock to the lowest.
func ShmooMonotone(points []ShmooPoint, slackV float64) bool {
	for i := 1; i < len(points); i++ {
		if points[i].VminV > points[i-1].VminV+slackV {
			return false
		}
	}
	return true
}
