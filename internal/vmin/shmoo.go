package vmin

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/platform"
	"repro/internal/slab"
)

// ShmooPoint is one operating point of a frequency/voltage shmoo.
type ShmooPoint struct {
	ClockHz float64
	VminV   float64
	MarginV float64
	Outcome FailureKind
}

// Shmoo runs a V_MIN search at each of the given clock settings, producing
// the classic post-silicon shmoo curve: the frequency/voltage boundary of
// stable operation for one workload. The campaign is batched: the
// workload's clock-invariant trace primes once (sized for the largest
// snapped clock; every other column reads a covered prefix), requested
// clocks that snap onto the same DVFS step dedup to one search, and each
// distinct column descends a supply ladder whose invariant state lives in
// a per-worker slab arena. The domain's clock setting is never touched and
// points are collected in input order, so serial, parallel and
// fleet-sharded shmoos are identical.
func (t *Tester) Shmoo(load platform.Load, clocks []float64) ([]ShmooPoint, error) {
	if len(clocks) == 0 {
		return nil, fmt.Errorf("vmin: shmoo needs at least one clock setting")
	}
	snapped := make([]float64, len(clocks))
	for i, clock := range clocks {
		c, err := t.Domain.SnapClock(clock)
		if err != nil {
			return nil, err
		}
		snapped[i] = c
	}
	// A grid denser than the DVFS lattice snaps neighbouring requests onto
	// the same step; the search outcome is a pure function of the snapped
	// clock (the jitter stream is content-keyed, never index-keyed), so
	// each distinct column runs once and fans out to every requester.
	colOf := make([]int, len(snapped))
	firstCol := make(map[float64]int, len(snapped))
	var uniq []float64
	var maxClock float64
	for i, c := range snapped {
		j, ok := firstCol[c]
		if !ok {
			j = len(uniq)
			firstCol[c] = j
			uniq = append(uniq, c)
			if c > maxClock {
				maxClock = c
			}
		}
		colOf[i] = j
	}

	tr := t.Domain.PrimeTraceAt(load, t.Dt, t.N, maxClock)

	// The parallelism setting resolves exactly once (ForEachWorker takes a
	// literal worker count), clamped to the deduped column count.
	workers := par.Workers(t.Parallelism)
	if workers > len(uniq) {
		workers = len(uniq)
	}
	arenas := make([]*slab.Arena, workers)
	for w := range arenas {
		arenas[w] = getArena()
	}
	cols := make([]ShmooPoint, len(uniq))
	err := par.ForEachWorker(workers, len(uniq), func(w, i int) error {
		ar := arenas[w]
		ar.Reset()
		res, err := t.searchLadder(load, uniq[i], 0, tr, ar)
		if err != nil {
			return fmt.Errorf("vmin: shmoo at %v Hz: %w", uniq[i], err)
		}
		cols[i] = ShmooPoint{
			ClockHz: uniq[i],
			VminV:   res.VminV,
			MarginV: res.MarginV,
			Outcome: res.Outcome,
		}
		return nil
	})
	for _, ar := range arenas {
		putArena(ar)
	}
	if err != nil {
		return nil, err
	}
	out := make([]ShmooPoint, len(snapped))
	for i := range snapped {
		out[i] = cols[colOf[i]]
	}
	return out, nil
}

// ShmooMonotone reports whether V_MIN is non-increasing as the clock drops
// (the physically expected shape: slower clocks tolerate lower voltage),
// allowing `slackV` of measurement jitter. The input must be ordered from
// the highest clock to the lowest.
func ShmooMonotone(points []ShmooPoint, slackV float64) bool {
	for i := 1; i < len(points); i++ {
		if points[i].VminV > points[i-1].VminV+slackV {
			return false
		}
	}
	return true
}
