package lab

import (
	"bufio"
	"net"
	"strings"
	"testing"
)

func TestParseReplyTable(t *testing.T) {
	cases := []struct {
		line    string
		ok      bool
		payload string
		wantErr bool
	}{
		{"OK", true, "", false},
		{"OK payload words", true, "payload words", false},
		{"OK ", true, "", false},
		{"ERR something broke", false, "something broke", false},
		{"ERR", false, "unspecified error", false},
		{"", false, "", true},
		{"ok lowercase", false, "", true},
		{"OKAY", false, "", true},
		{"ERRATIC", false, "", true},
		{"\x15OK 1 2 3", false, "", true}, // chaos-garbled line
		{"garbage", false, "", true},
		{" OK", false, "", true},
	}
	for _, c := range cases {
		ok, payload, err := parseReply(c.line)
		if (err != nil) != c.wantErr {
			t.Errorf("parseReply(%q) err = %v, wantErr %v", c.line, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if ok != c.ok || payload != c.payload {
			t.Errorf("parseReply(%q) = (%v, %q), want (%v, %q)",
				c.line, ok, payload, c.ok, c.payload)
		}
	}
}

func FuzzParseReply(f *testing.F) {
	for _, seed := range []string{"OK", "OK 1 2", "ERR nope", "", "OKOK", "\x00\x15OK"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		ok, payload, err := parseReply(line)
		if err != nil {
			if ok || payload != "" {
				t.Fatalf("parseReply(%q): non-zero results alongside error", line)
			}
			return
		}
		// A successful parse must come from a well-formed line.
		if !strings.HasPrefix(line, replyOK) && !strings.HasPrefix(line, replyErr) {
			t.Fatalf("parseReply(%q) accepted a line without a reply code", line)
		}
	})
}

func TestFieldHelpers(t *testing.T) {
	fields := strings.Fields("12 3.5 x")
	if v, err := intField(fields, 0, "a"); err != nil || v != 12 {
		t.Fatalf("intField = %v, %v", v, err)
	}
	if _, err := intField(fields, 1, "a"); err == nil {
		t.Fatal("intField accepted a float")
	}
	if _, err := intField(fields, 5, "a"); err == nil {
		t.Fatal("intField accepted a missing index")
	}
	if v, err := floatField(fields, 1, "b"); err != nil || v != 3.5 {
		t.Fatalf("floatField = %v, %v", v, err)
	}
	if _, err := floatField(fields, 2, "b"); err == nil {
		t.Fatal("floatField accepted a non-number")
	}
	if _, err := floatField(nil, 0, "b"); err == nil {
		t.Fatal("floatField accepted empty fields")
	}
}

func TestReadLineCapsLength(t *testing.T) {
	huge := strings.Repeat("a", maxLineLen+10) + "\n"
	r := bufio.NewReader(strings.NewReader(huge))
	if _, err := readLine(r); err == nil {
		t.Fatal("oversized line accepted")
	}
	okLine := strings.Repeat("b", 1000) + "\n"
	r = bufio.NewReader(strings.NewReader(okLine))
	got, err := readLine(r)
	if err != nil || len(got) != 1000 {
		t.Fatalf("normal long line: %d bytes, err %v", len(got), err)
	}
}

// rawConn is a test helper speaking the wire protocol directly, bypassing
// the client's retry machinery.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func rawDial(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

func (rc *rawConn) send(line string) string {
	rc.t.Helper()
	if err := writeLine(rc.w, "%s", line); err != nil {
		rc.t.Fatal(err)
	}
	reply, err := readLine(rc.r)
	if err != nil {
		rc.t.Fatalf("reading reply to %q: %v", line, err)
	}
	return reply
}

// TestDispatchMalformed drives the server with truncated, non-numeric and
// out-of-range arguments; every one must produce an ERR reply and leave
// the session usable.
func TestDispatchMalformed(t *testing.T) {
	addr, _ := startServer(t)
	rc := rawDial(t, addr)
	cases := []string{
		// unknown / empty-ish
		"FROBNICATE",
		"   ",
		// LOAD: truncated fields, bad types, out-of-range args
		"LOAD",
		"LOAD cortex-a72",
		"LOAD cortex-a72 2",
		"LOAD cortex-a72 2 3 extra",
		"LOAD cortex-a72 2 -5",
		"LOAD cortex-a72 2 0",
		"LOAD cortex-a72 2 10001",
		"LOAD cortex-a72 2 nope",
		// MEASURE: out-of-range and non-numeric sample counts
		"MEASURE 0",
		"MEASURE -3",
		"MEASURE 1001",
		"MEASURE many",
		// VMIN: out-of-range and non-numeric repeats
		"VMIN 0",
		"VMIN -1",
		"VMIN 101",
		"VMIN x",
		// SWEEP / SET* / RESET: truncated and non-numeric
		"SWEEP",
		"SWEEP cortex-a72",
		"SWEEP cortex-a72 two",
		"SWEEP nope 2",
		"SETCLOCK x",
		"SETCLOCK cortex-a72 fast",
		"SETVOLTS cortex-a72",
		"SETCORES a b",
		"RESET",
		"RESET nope",
		"RUN", // nothing loaded in this session
	}
	for _, cmd := range cases {
		if reply := rc.send(cmd); !strings.HasPrefix(reply, "ERR") {
			t.Errorf("%q -> %q, want ERR", cmd, reply)
		}
	}
	// LOAD headers with a sane declared line count but invalid
	// domain/cores: per the wire contract the body is flushed with the
	// header, and the server must drain it (the desync satellite fix).
	loadCases := []struct {
		header string
		lines  int
	}{
		{"LOAD cortex-a72 two 3", 3},
		{"LOAD cortex-a72 0 1", 1},
		{"LOAD cortex-a72 99 1", 1},
		{"LOAD nope 2 2", 2},
	}
	for _, lc := range loadCases {
		body := strings.Repeat("bogus body line\n", lc.lines)
		if err := writeLine(rc.w, "%s\n%s", lc.header, strings.TrimSuffix(body, "\n")); err != nil {
			t.Fatal(err)
		}
		reply, err := readLine(rc.r)
		if err != nil {
			t.Fatalf("%q: %v", lc.header, err)
		}
		if !strings.HasPrefix(reply, "ERR") {
			t.Errorf("%q -> %q, want ERR", lc.header, reply)
		}
	}
	// The session survives all of it.
	if reply := rc.send("INFO"); !strings.HasPrefix(reply, "OK") {
		t.Errorf("INFO after malformed batch -> %q", reply)
	}
	if reply := rc.send("QUIT"); !strings.HasPrefix(reply, "OK") {
		t.Errorf("QUIT -> %q", reply)
	}
}

// An oversized command line cannot be resynchronized, so the server must
// drop the connection rather than buffer without bound.
func TestOversizedLineClosesConnection(t *testing.T) {
	addr, _ := startServer(t)
	rc := rawDial(t, addr)
	if _, err := rc.w.WriteString(strings.Repeat("x", maxLineLen+100) + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := rc.w.Flush(); err != nil {
		return // server already hung up mid-write: also acceptable
	}
	if _, err := readLine(rc.r); err == nil {
		t.Fatal("server replied to an oversized line instead of closing")
	}
}
