// Package lab implements the paper's measurement orchestration (Section
// 3.2): the GA runs on a workstation, ships each individual's assembly
// source to the target machine, starts it, drives the spectrum analyzer to
// take the measurement, and then kills the binary. Here the transport is a
// line-oriented TCP protocol instead of SSH plus an instrument bus, but the
// control flow — and the failure modes a distributed measurement loop must
// tolerate — are the same, and the workstation side is built to tolerate
// them: every command runs under a read/write deadline, transport faults
// (dropped connections, timeouts, corrupted replies) trigger a bounded
// exponential-backoff reconnect that replays the session's recorded
// setpoints (LOAD/RUN plus SETCLOCK/SETVOLTS/SETCORES) before retrying,
// and a Pool of concurrent clients lets the GA evaluate a whole population
// in parallel against one daemon (`gahunt -remote -j N`). Target-side
// `ERR` replies are never retried — the command reached the target and was
// rejected; only stream integrity failures are.
//
// Protocol v1 (requests are single lines; the program body follows LOAD):
//
//	LOAD <domain> <cores> <lines>   + <lines> lines of assembly
//	RUN                             start the loaded workload
//	STOP                            stop the running workload
//	MEASURE <samples>               averaged EM peak while running
//	SWEEP <domain> <cores>          fast resonance sweep (Section 5.3)
//	VMIN [repeats]                  V_MIN search of the loaded workload
//	SETCLOCK <domain> <hz>          DVFS control (DS-5 / Overdrive role)
//	SETCORES <domain> <n>           power-gate cores via the SCP
//	SETVOLTS <domain> <v>           supply control
//	RESET <domain>                  restore nominal domain state
//	INFO                            platform and domain inventory
//	QUIT                            close the session (replies "OK bye")
//
// Protocol v2 adds the commands the backend layer (internal/backend)
// needs to drive a remote rig exactly like a local bench. Versions are
// negotiated with HELLO: a v1 daemon answers "ERR unknown command" and the
// client falls back to the v1 subset (enough for gahunt's EM loop), so old
// targets keep serving while new ones unlock the full surface:
//
//	HELLO <version>                 → OK <serverVersion> <platform>
//	CAPS <domain>                   → OK <cores> <arch> <maxHz> <stepHz>
//	                                     <visibility> <dsoKind> <lineage>
//	STATE <domain>                  → OK <clockHz> <supplyV> <powered>
//	SWEEPFULL <domain> <cores> <samples>
//	                                → OK <resHz> <peakLoopHz> <peakDBm> <n>
//	                                     then n × "<clock> <loop> <dbm>"
//	                                     inline on the same reply line
//	VMINFULL <seed> <repeats>       → OK <vmin> <margin> <droop> <outcome>
//	                                     <n> <v1> ... <vn>   (loaded slot)
//	SHMOO <seed> <clock>...         → OK <n> then n × "<clock> <vmin>
//	                                     <margin> <outcome>" (loaded slot)
//	VMEASURE <metric> <samples> <dsoseed>
//	                                → OK <fitness> <domHz>  (running slot;
//	                                     metric em|droop|ptp)
//	MONITOR <nparts>                + per part a header "<domain> <cores>
//	                                  <lines> <nphase> [phase...]" and
//	                                  <lines> program lines
//	                                → OK <n> <startHz> <rbwHz> <dbm...>
//	STATS <domain>                  → OK <quoted eval-stats string>
//
// Protocol v3 adds the single verb a fleet coordinator needs to shard a
// resonance sweep across rigs at clock-step granularity (a v2 daemon still
// serves everything above; the client falls back to whole-sweep routing):
//
//	SWEEPAT <domain> <cores> <samples> <clockHz>
//	                                → OK 1 <clock> <loop> <dbm>, or
//	                                  OK 0 when the probe loop falls
//	                                  outside the search band at that clock
//
// Responses are "OK ..." or "ERR <message>". An ERR reply leaves the
// session usable; a malformed line (or one longer than the limit) closes
// it. Requests stay under maxLineLen; v2 replies may carry a whole sweep
// or spectrum on one line and are bounded by the larger maxReplyLen —
// single-line replies keep every command a strict request/response pair,
// which is what makes retry-after-reconnect trivially safe. The
// loaded/running workload slot is per connection — concurrent sessions
// each own their own slot and the daemon serializes conflicting domain
// access internally — so N pooled clients can interleave LOAD/RUN/MEASURE
// cycles without clobbering each other.
//
// All commands are idempotent (LOAD replaces the slot, RUN/STOP set a
// flag, SETx write absolute setpoints, the measurement verbs are
// content-deterministic reads — see internal/detrand), which is what makes
// the client's retry-after-reconnect safe even when a reply was lost after
// the target executed the command.
package lab

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// reply codes.
const (
	replyOK  = "OK"
	replyErr = "ERR"
)

// ProtocolVersion is the protocol revision this package speaks. Version 2
// added the backend-layer verbs (HELLO/CAPS/STATE/SWEEPFULL/VMINFULL/
// SHMOO/VMEASURE/MONITOR/STATS); version 3 added SWEEPAT (per-point sweep
// sharding for fleet coordinators). The v1/v2 subsets are still served
// unchanged and HELLO negotiates down for older peers.
const ProtocolVersion = 3

// Protocol hard limits: a LOAD body may declare at most maxProgramLines
// lines, and no single request or program line may exceed maxLineLen
// bytes — a peer that sends more is desynced or hostile and the connection
// is closed rather than buffering without bound. Replies get the larger
// maxReplyLen because v2 ships whole sweeps and spectra on one line.
const (
	maxProgramLines = 10000
	maxLineLen      = 1 << 16
	maxReplyLen     = 1 << 20
)

// writeLine sends one protocol line.
func writeLine(w *bufio.Writer, format string, args ...any) error {
	if _, err := fmt.Fprintf(w, format+"\n", args...); err != nil {
		return err
	}
	return w.Flush()
}

// readLine reads one protocol line without the trailing newline. Lines
// longer than maxLineLen are an error: the stream cannot be resynchronized
// past an oversized line, so callers must drop the connection.
func readLine(r *bufio.Reader) (string, error) {
	return readLineN(r, maxLineLen)
}

// readLineN is readLine with an explicit length bound; the client reads
// replies under maxReplyLen while the server holds requests to maxLineLen.
func readLineN(r *bufio.Reader, limit int) (string, error) {
	var b strings.Builder
	for {
		frag, err := r.ReadSlice('\n')
		b.Write(frag)
		if b.Len() > limit {
			return "", fmt.Errorf("lab: line exceeds %d bytes", limit)
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			return "", err
		}
		return strings.TrimRight(b.String(), "\r\n"), nil
	}
}

// parseReply splits a response into its code and payload.
func parseReply(line string) (ok bool, payload string, err error) {
	switch {
	case line == replyOK:
		return true, "", nil
	case strings.HasPrefix(line, replyOK+" "):
		return true, line[len(replyOK)+1:], nil
	case strings.HasPrefix(line, replyErr+" "):
		return false, line[len(replyErr)+1:], nil
	case line == replyErr:
		return false, "unspecified error", nil
	default:
		return false, "", fmt.Errorf("lab: malformed reply %q", line)
	}
}

// field helpers for payload parsing.

func floatField(fields []string, i int, what string) (float64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("lab: missing %s field", what)
	}
	v, err := strconv.ParseFloat(fields[i], 64)
	if err != nil {
		return 0, fmt.Errorf("lab: bad %s %q", what, fields[i])
	}
	return v, nil
}

func intField(fields []string, i int, what string) (int, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("lab: missing %s field", what)
	}
	v, err := strconv.Atoi(fields[i])
	if err != nil {
		return 0, fmt.Errorf("lab: bad %s %q", what, fields[i])
	}
	return v, nil
}

func int64Field(fields []string, i int, what string) (int64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("lab: missing %s field", what)
	}
	v, err := strconv.ParseInt(fields[i], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("lab: bad %s %q", what, fields[i])
	}
	return v, nil
}
