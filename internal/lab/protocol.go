// Package lab implements the paper's measurement orchestration (Section
// 3.2): the GA runs on a workstation, ships each individual's assembly
// source to the target machine, starts it, drives the spectrum analyzer to
// take the measurement, and then kills the binary. Here the transport is a
// line-oriented TCP protocol instead of SSH plus an instrument bus, but the
// control flow — and the failure modes a distributed measurement loop must
// tolerate — are the same.
//
// Protocol (requests are single lines; the program body follows LOAD):
//
//	LOAD <domain> <cores> <lines>   + <lines> lines of assembly
//	RUN                             start the loaded workload
//	STOP                            stop the running workload
//	MEASURE <samples>               averaged EM peak while running
//	SWEEP <domain> <cores>          fast resonance sweep (Section 5.3)
//	VMIN [repeats]                  V_MIN search of the loaded workload
//	SETCLOCK <domain> <hz>          DVFS control (DS-5 / Overdrive role)
//	SETCORES <domain> <n>           power-gate cores via the SCP
//	SETVOLTS <domain> <v>           supply control
//	RESET <domain>                  restore nominal domain state
//	INFO                            platform and domain inventory
//	QUIT                            close the session
//
// Responses are "OK ..." or "ERR <message>".
package lab

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// reply codes.
const (
	replyOK  = "OK"
	replyErr = "ERR"
)

// writeLine sends one protocol line.
func writeLine(w *bufio.Writer, format string, args ...any) error {
	if _, err := fmt.Fprintf(w, format+"\n", args...); err != nil {
		return err
	}
	return w.Flush()
}

// readLine reads one protocol line without the trailing newline.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// parseReply splits a response into its code and payload.
func parseReply(line string) (ok bool, payload string, err error) {
	switch {
	case line == replyOK:
		return true, "", nil
	case strings.HasPrefix(line, replyOK+" "):
		return true, line[len(replyOK)+1:], nil
	case strings.HasPrefix(line, replyErr+" "):
		return false, line[len(replyErr)+1:], nil
	case line == replyErr:
		return false, "unspecified error", nil
	default:
		return false, "", fmt.Errorf("lab: malformed reply %q", line)
	}
}

// field helpers for payload parsing.

func floatField(fields []string, i int, what string) (float64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("lab: missing %s field", what)
	}
	v, err := strconv.ParseFloat(fields[i], 64)
	if err != nil {
		return 0, fmt.Errorf("lab: bad %s %q", what, fields[i])
	}
	return v, nil
}

func intField(fields []string, i int, what string) (int, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("lab: missing %s field", what)
	}
	v, err := strconv.Atoi(fields[i])
	if err != nil {
		return 0, fmt.Errorf("lab: bad %s %q", what, fields[i])
	}
	return v, nil
}
