package lab

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// Protocol-v2 command handlers. Every reply is a single line (however
// long) so the client's retry-after-reconnect logic never has to resync a
// partially delivered multi-line response.

// cmdHello answers the version handshake. The server always reports its
// own version; the client picks min(client, server). A v1 daemon has no
// HELLO at all and answers "ERR unknown command", which the client treats
// as version 1.
func (s *Server) cmdHello(w *bufio.Writer, fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("usage: HELLO <version>")
	}
	if _, err := intField(fields, 1, "version"); err != nil {
		return err
	}
	return writeLine(w, "%s %d %s", replyOK, ProtocolVersion, s.Bench.Platform.Name)
}

// dsoKindFor names the scope a domain's voltage visibility implies; "-" is
// the explicit "no scope" token so the reply stays a fixed field count.
func dsoKindFor(visibility string) string {
	switch visibility {
	case "oc-dso":
		return "oc-dso"
	case "kelvin-pads":
		return "bench-scope"
	default:
		return "-"
	}
}

func (s *Server) cmdCaps(w *bufio.Writer, fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("usage: CAPS <domain>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	spec := d.Spec
	// Lineage-resume measurement cannot cross the wire (checkpoints live in
	// the target's process), so the remote capability is always 0 even
	// though the bench behind the daemon supports it locally.
	return writeLine(w, "%s %d %s %g %g %s %s %d", replyOK,
		spec.TotalCores, spec.ISA, spec.MaxClockHz, spec.ClockStepHz,
		spec.VoltageVisibility, dsoKindFor(spec.VoltageVisibility), 0)
}

func (s *Server) cmdState(w *bufio.Writer, fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("usage: STATE <domain>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	l := s.domLock(d.Spec.Name)
	l.RLock()
	clock, supply, powered := d.ClockHz(), d.SupplyVolts(), d.PoweredCores()
	l.RUnlock()
	return writeLine(w, "%s %g %g %d", replyOK, clock, supply, powered)
}

// cmdSweepFull is SWEEP with an explicit sample count and the full point
// list in the reply, so the workstation can render the same table a local
// sweep would. This is also the fleet's fallback for pre-v3 rigs that lack
// SWEEPAT: the whole grid runs here as one core.Bench.SweepBatch campaign
// (one probe build, one primed trace, one band-prefilter pass), so an
// unsharded rig pays batch economics and still agrees bit for bit with a
// sharded layout.
func (s *Server) cmdSweepFull(w *bufio.Writer, fields []string) error {
	if len(fields) != 4 {
		return fmt.Errorf("usage: SWEEPFULL <domain> <cores> <samples>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	cores, err := intField(fields, 2, "cores")
	if err != nil {
		return err
	}
	samples, err := intField(fields, 3, "samples")
	if err != nil {
		return err
	}
	if samples < 1 || samples > 1000 {
		return fmt.Errorf("sample count %d out of range", samples)
	}
	bench := s.Bench
	if samples != bench.Samples {
		b2 := *bench
		b2.Samples = samples
		bench = &b2
	}
	l := s.domLock(d.Spec.Name)
	l.RLock()
	res, err := bench.FastResonanceSweep(d, cores)
	l.RUnlock()
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %g %g %g %d", replyOK, res.ResonanceHz, res.PeakLoopHz, res.PeakDBm, len(res.Points))
	for _, p := range res.Points {
		fmt.Fprintf(&b, " %g %g %g", p.ClockHz, p.LoopHz, p.PeakDBm)
	}
	return writeLine(w, "%s", b.String())
}

// cmdSweepAt serves one fast-sweep point at an explicit clock setting —
// the protocol-v3 primitive behind fleet-sharded sweeps. The point is
// evaluated through the stateless SweepPointAt path (a single-point
// SweepBatch), so the domain's live clock setting is untouched, concurrent
// sessions' points cannot interfere, and the shard agrees bit for bit with
// the same clock inside a whole-grid batch; "OK 0" reports an out-of-band
// step.
func (s *Server) cmdSweepAt(w *bufio.Writer, fields []string) error {
	if len(fields) != 5 {
		return fmt.Errorf("usage: SWEEPAT <domain> <cores> <samples> <clockHz>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	cores, err := intField(fields, 2, "cores")
	if err != nil {
		return err
	}
	samples, err := intField(fields, 3, "samples")
	if err != nil {
		return err
	}
	if samples < 1 || samples > 1000 {
		return fmt.Errorf("sample count %d out of range", samples)
	}
	clock, err := floatField(fields, 4, "clock")
	if err != nil {
		return err
	}
	bench := s.Bench
	if samples != bench.Samples {
		b2 := *bench
		b2.Samples = samples
		bench = &b2
	}
	l := s.domLock(d.Spec.Name)
	l.RLock()
	pt, err := bench.SweepPointAt(d, cores, clock)
	l.RUnlock()
	if err != nil {
		return err
	}
	if pt == nil {
		return writeLine(w, "%s 0", replyOK)
	}
	return writeLine(w, "%s 1 %g %g %g", replyOK, pt.ClockHz, pt.LoopHz, pt.PeakDBm)
}

// cmdVminFull is VMIN with the workstation's tester seed and the full
// per-run V_MIN list. The v1 VMIN pinned seed 1; carrying the seed is what
// lets a remote campaign reproduce a local one bit-for-bit.
func (s *Server) cmdVminFull(sess *session, w *bufio.Writer, fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("usage: VMINFULL <seed> <repeats>")
	}
	seed, err := int64Field(fields, 1, "seed")
	if err != nil {
		return err
	}
	repeats, err := intField(fields, 2, "repeats")
	if err != nil {
		return err
	}
	if repeats < 1 || repeats > 100 {
		return fmt.Errorf("repeat count %d out of range", repeats)
	}
	if sess.current == nil {
		return fmt.Errorf("nothing loaded")
	}
	cur := sess.current
	l := s.domLock(cur.domain.Spec.Name)
	l.RLock()
	tester := vmin.NewTester(cur.domain, seed)
	tester.Parallelism = s.Bench.Parallelism
	res, runs, err := tester.Repeat(cur.load, repeats)
	l.RUnlock()
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %g %g %g %s %d", replyOK,
		res.VminV, res.MarginV, res.DroopNominalV, res.Outcome, len(runs))
	for _, v := range runs {
		fmt.Fprintf(&b, " %g", v)
	}
	return writeLine(w, "%s", b.String())
}

// cmdShmoo runs the frequency/voltage shmoo of the loaded workload over
// the clock list in the request, through vmin's batched campaign path
// (one primed trace, snapped-clock dedup, per-column supply ladders).
// Per-point trial noise is keyed by content (seed, load, operating
// point), so neither the target's parallelism nor a fleet's one-cell
// shard layout can change any value.
func (s *Server) cmdShmoo(sess *session, w *bufio.Writer, fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("usage: SHMOO <seed> <clockHz>...")
	}
	seed, err := int64Field(fields, 1, "seed")
	if err != nil {
		return err
	}
	clocks := make([]float64, 0, len(fields)-2)
	for i := 2; i < len(fields); i++ {
		v, err := floatField(fields, i, "clock")
		if err != nil {
			return err
		}
		clocks = append(clocks, v)
	}
	if sess.current == nil {
		return fmt.Errorf("nothing loaded")
	}
	cur := sess.current
	l := s.domLock(cur.domain.Spec.Name)
	l.RLock()
	tester := vmin.NewTester(cur.domain, seed)
	tester.Parallelism = s.Bench.Parallelism
	points, err := tester.Shmoo(cur.load, clocks)
	l.RUnlock()
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d", replyOK, len(points))
	for _, p := range points {
		fmt.Fprintf(&b, " %g %g %g %s", p.ClockHz, p.VminV, p.MarginV, p.Outcome)
	}
	return writeLine(w, "%s", b.String())
}

// scopeForVisibility builds the DSO a domain's visibility implies, seeded
// by the workstation so a remote droop/ptp measurement reuses the exact
// noise stream a local one would.
func scopeForVisibility(visibility string, seed int64) *instrument.DSO {
	if visibility == "kelvin-pads" {
		return instrument.NewBenchScope(seed)
	}
	return instrument.NewOCDSO(seed)
}

// cmdVMeasure measures the running workload under a caller-chosen metric.
// The em metric duplicates MEASURE but returns the (fitness, dominant-Hz)
// pair the GA wants; droop and ptp go through the bench's DSO measurers,
// which reject domains without voltage visibility with the same typed
// error a local bench raises.
func (s *Server) cmdVMeasure(sess *session, w *bufio.Writer, fields []string) error {
	if len(fields) != 4 {
		return fmt.Errorf("usage: VMEASURE <metric> <samples> <dsoseed>")
	}
	metric := fields[1]
	samples, err := intField(fields, 2, "samples")
	if err != nil {
		return err
	}
	if samples < 1 || samples > 1000 {
		return fmt.Errorf("sample count %d out of range", samples)
	}
	dsoSeed, err := int64Field(fields, 3, "dsoseed")
	if err != nil {
		return err
	}
	if sess.current == nil || !sess.running {
		return fmt.Errorf("no workload running")
	}
	cur := sess.current
	bench := s.Bench
	if samples != bench.Samples {
		b2 := *bench
		b2.Samples = samples
		bench = &b2
	}
	var m ga.Measurer
	switch metric {
	case "em":
		m = bench.EMMeasurer(cur.domain, cur.load.ActiveCores)
	case "droop":
		m = bench.DroopMeasurer(cur.domain, cur.load.ActiveCores,
			scopeForVisibility(cur.domain.Spec.VoltageVisibility, dsoSeed))
	case "ptp":
		m = bench.PtpMeasurer(cur.domain, cur.load.ActiveCores,
			scopeForVisibility(cur.domain.Spec.VoltageVisibility, dsoSeed))
	default:
		return fmt.Errorf("unknown metric %q", metric)
	}
	l := s.domLock(cur.domain.Spec.Name)
	l.RLock()
	fitness, domHz, err := m.Measure(cur.load.Seq)
	l.RUnlock()
	if err != nil {
		return err
	}
	return writeLine(w, "%s %g %g", replyOK, fitness, domHz)
}

// monitorPart is one domain's workload in a MONITOR request.
type monitorPart struct {
	domain string
	cores  int
	phases []float64
	body   string
}

// cmdMonitor captures one combined spectrum over several domains' loads
// (Figure 15). All part bodies are consumed before validation so a
// rejected part cannot leave program lines in the stream to be dispatched
// as commands.
func (s *Server) cmdMonitor(r *bufio.Reader, w *bufio.Writer, fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("usage: MONITOR <nparts>")
	}
	nparts, err := intField(fields, 1, "parts")
	if err != nil {
		return err
	}
	if nparts < 1 || nparts > 16 {
		return fmt.Errorf("part count %d out of range [1, 16]", nparts)
	}
	parts := make([]monitorPart, 0, nparts)
	var firstErr error
	keep := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for i := 0; i < nparts; i++ {
		hdr, err := readLine(r)
		if err != nil {
			return fmt.Errorf("reading part header: %v", err)
		}
		hf := strings.Fields(hdr)
		if len(hf) < 4 {
			// Cannot know how many lines follow: the stream is lost.
			return fmt.Errorf("malformed MONITOR part header %q", hdr)
		}
		lines, err := intField(hf, 2, "lines")
		if err != nil {
			return err
		}
		if lines < 1 || lines > maxProgramLines {
			return fmt.Errorf("line count %d out of range", lines)
		}
		nphase, err := intField(hf, 3, "phases")
		if err != nil {
			return err
		}
		if nphase < 0 || nphase > 64 || len(hf) != 4+nphase {
			return fmt.Errorf("phase count mismatch in MONITOR part header %q", hdr)
		}
		part := monitorPart{domain: hf[0]}
		if part.cores, err = intField(hf, 1, "cores"); err != nil {
			keep(err)
		}
		for p := 0; p < nphase; p++ {
			v, err := floatField(hf, 4+p, "phase")
			if err != nil {
				keep(err)
			}
			part.phases = append(part.phases, v)
		}
		var body strings.Builder
		for j := 0; j < lines; j++ {
			ln, err := readLine(r)
			if err != nil {
				return fmt.Errorf("reading part program: %v", err)
			}
			body.WriteString(ln)
			body.WriteByte('\n')
		}
		part.body = body.String()
		parts = append(parts, part)
	}
	if firstErr != nil {
		return firstErr
	}

	loads := make(map[string]platform.Load, len(parts))
	var names []string
	for _, part := range parts {
		d, err := s.domain(part.domain)
		if err != nil {
			return err
		}
		if part.cores < 1 || part.cores > d.Spec.TotalCores {
			return fmt.Errorf("core count %d out of range [1, %d]", part.cores, d.Spec.TotalCores)
		}
		seq, err := isa.ParseProgram(d.Spec.Pool(), part.body)
		if err != nil {
			return err
		}
		if len(seq) == 0 {
			return fmt.Errorf("part %s has no instructions", part.domain)
		}
		if _, dup := loads[part.domain]; dup {
			return fmt.Errorf("duplicate MONITOR part for domain %s", part.domain)
		}
		loads[part.domain] = platform.Load{Seq: seq, ActiveCores: part.cores, PhaseCycles: part.phases}
		names = append(names, part.domain)
	}
	sort.Strings(names)
	for _, name := range names {
		l := s.domLock(name)
		l.RLock()
		defer l.RUnlock()
	}
	sw, err := s.Bench.MonitorAll(loads)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d %g %g", replyOK, len(sw.DBm), s.Bench.Analyzer.StartHz, s.Bench.Analyzer.RBWHz)
	for _, v := range sw.DBm {
		fmt.Fprintf(&b, " %g", v)
	}
	return writeLine(w, "%s", b.String())
}

// cmdStats ships a domain's evaluation-cache counters (the -v output) as
// one quoted string.
func (s *Server) cmdStats(w *bufio.Writer, fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("usage: STATS <domain>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	return writeLine(w, "%s %s", replyOK, strconv.Quote(d.EvalStats()))
}
