package lab

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestPoolCloseUnderLoad is the checkout/Close race regression: Do used to
// block forever on the free channel when Close drained it between Do's
// admission check and its receive. Now checkout selects against the closed
// signal, so a Close under full load lets every in-flight call finish and
// every blocked one return ErrClosed — never a deadlock, never a leaked
// client.
func TestPoolCloseUnderLoad(t *testing.T) {
	addr, _ := startServer(t)
	pool, err := NewPool(addr, 2, fastOpts())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 12
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				err := pool.Do(func(c *Client) error {
					_, _, err := c.Info()
					return err
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let the workers saturate checkout
	if err := pool.Close(); err != nil {
		t.Fatalf("close under load: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("workers still blocked 10s after Close — checkout deadlock")
	}
	close(errCh)
	for err := range errCh {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("worker saw %v, want ErrClosed", err)
		}
	}
	if err := pool.Do(func(*Client) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after close = %v, want ErrClosed", err)
	}
}

// TestSweepAtMatchesDirect drives the v3 per-point sweep verb and checks
// each wire answer against the bench's own SweepPointAt: same clock grid,
// bit-identical in-band points, and the out-of-band clocks (probe loop
// below the band at low DVFS steps) reported as such rather than faked.
func TestSweepAtMatchesDirect(t *testing.T) {
	addr, bench := startServer(t)
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	negotiated, _, err := c.Hello(ProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	if negotiated < 3 {
		t.Fatalf("negotiated v%d, want v3+", negotiated)
	}

	d, err := bench.Platform.Domain("cortex-a72")
	if err != nil {
		t.Fatal(err)
	}
	steps := core.SweepClockSteps(d)
	inBand := 0
	for _, clock := range steps {
		got, err := c.SweepAt("cortex-a72", 2, bench.Samples, clock)
		if err != nil {
			t.Fatalf("SWEEPAT %g: %v", clock, err)
		}
		want, err := bench.SweepPointAt(d, 2, clock)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SWEEPAT %g: wire %+v != direct %+v", clock, got, want)
		}
		if got != nil {
			inBand++
		}
	}
	if inBand == 0 {
		t.Fatal("every sweep point out of band; the grid comparison is vacuous")
	}
	if inBand == len(steps) {
		t.Log("note: no out-of-band clock on this grid")
	}
}
