package lab

import (
	"errors"
	"fmt"
)

// TargetError is an "ERR ..." reply from the daemon: the command reached
// the target intact and was rejected (unknown domain, out-of-range
// argument, nothing loaded, ...). Target errors are never retried — the
// transport is healthy; the request itself is wrong.
type TargetError struct {
	Msg string
}

// Error implements error.
func (e *TargetError) Error() string { return "lab: target error: " + e.Msg }

// IsTargetError reports whether err is (or wraps) a target-side ERR reply,
// as opposed to a transport failure (timeout, dropped connection,
// corrupted reply) that the client retries transparently.
func IsTargetError(err error) bool {
	var te *TargetError
	return errors.As(err, &te)
}

// transportError marks a failure where the integrity of the byte stream is
// suspect — an I/O error, a deadline expiry, a malformed reply line or an
// unparseable payload. The only safe recovery is dropping the connection,
// reconnecting and replaying session state, which is exactly what the
// client's retry loop does for these.
type transportError struct {
	op  string
	err error
}

func (e *transportError) Error() string { return fmt.Sprintf("lab: %s: %v", e.op, e.err) }
func (e *transportError) Unwrap() error { return e.err }

// ErrClosed is returned by operations on a closed Client or Pool.
var ErrClosed = errors.New("lab: client closed")

// ErrServerClosed is returned by Server.Serve after Shutdown.
var ErrServerClosed = errors.New("lab: server closed")
