package lab

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/workload"
)

// startServer launches a daemon on a loopback port and returns its address.
func startServer(t *testing.T) (string, *core.Bench) {
	t.Helper()
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBench(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 3
	srv, err := NewServer(b)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), b
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("nil bench accepted")
	}
}

func TestInfo(t *testing.T) {
	addr, b := startServer(t)
	c := dial(t, addr)
	name, domains, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if name != b.Platform.Name {
		t.Fatalf("platform name %q", name)
	}
	if len(domains) != 2 {
		t.Fatalf("domains %v", domains)
	}
}

func TestLoadRunMeasureStop(t *testing.T) {
	addr, b := startServer(t)
	c := dial(t, addr)
	d, _ := b.Platform.Domain(platform.DomainA72)
	pool := d.Spec.Pool()
	seq, err := workload.Probe().Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(platform.DomainA72, 2, pool, seq); err != nil {
		t.Fatal(err)
	}
	// Measuring before RUN must fail, like a real bench with no binary up.
	if _, err := c.Measure(3); err == nil {
		t.Fatal("measure without run succeeded")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	m, err := c.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakDBm > 0 || m.PeakDBm < -100 {
		t.Fatalf("implausible peak %v dBm", m.PeakDBm)
	}
	if m.PeakHz < 50e6 || m.PeakHz > 200e6 {
		t.Fatalf("peak frequency %v outside band", m.PeakHz)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Measure(3); err == nil {
		t.Fatal("measure after stop succeeded")
	}
}

func TestDomainControls(t *testing.T) {
	addr, b := startServer(t)
	c := dial(t, addr)
	d, _ := b.Platform.Domain(platform.DomainA72)

	if err := c.SetClock(platform.DomainA72, 600e6); err != nil {
		t.Fatal(err)
	}
	if d.ClockHz() != 600e6 {
		t.Fatalf("clock = %v", d.ClockHz())
	}
	if err := c.SetCores(platform.DomainA72, 1); err != nil {
		t.Fatal(err)
	}
	if d.PoweredCores() != 1 {
		t.Fatalf("cores = %d", d.PoweredCores())
	}
	if err := c.SetVolts(platform.DomainA72, 0.95); err != nil {
		t.Fatal(err)
	}
	if d.SupplyVolts() != 0.95 {
		t.Fatalf("volts = %v", d.SupplyVolts())
	}
	if err := c.Reset(platform.DomainA72); err != nil {
		t.Fatal(err)
	}
	if d.PoweredCores() != 2 || d.ClockHz() != d.Spec.MaxClockHz {
		t.Fatal("reset did not restore state")
	}
	// Errors surface as ERR replies, not dropped connections.
	if err := c.SetCores(platform.DomainA72, 99); err == nil {
		t.Fatal("bad core count accepted")
	}
	if err := c.SetClock("nope", 1e9); err == nil {
		t.Fatal("unknown domain accepted")
	}
	// The session stays usable after an error.
	if _, _, err := c.Info(); err != nil {
		t.Fatalf("session dead after error: %v", err)
	}
}

func TestRemoteSweep(t *testing.T) {
	addr, _ := startServer(t)
	c := dial(t, addr)
	res, peak, points, err := c.Sweep(platform.DomainA72, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res < 60e6 || res > 80e6 {
		t.Fatalf("remote sweep resonance %v", res)
	}
	if points < 10 || peak > 0 {
		t.Fatalf("sweep stats %v %d", peak, points)
	}
}

func TestRemoteGA(t *testing.T) {
	addr, b := startServer(t)
	c := dial(t, addr)
	d, _ := b.Platform.Domain(platform.DomainA72)
	pool := d.Spec.Pool()
	cfg := ga.DefaultConfig(pool)
	cfg.PopulationSize = 8
	cfg.Generations = 4
	res, err := ga.Run(cfg, c.Measurer(platform.DomainA72, 2, 3, pool), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 4 {
		t.Fatalf("history %d", len(res.History))
	}
	if res.Best.Fitness > 0 || res.Best.Fitness < -100 {
		t.Fatalf("best fitness %v dBm implausible", res.Best.Fitness)
	}
}

func TestProtocolErrors(t *testing.T) {
	addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	send := func(line string) string {
		if err := writeLine(w, "%s", line); err != nil {
			t.Fatal(err)
		}
		reply, err := readLine(r)
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}
	for _, cmd := range []string{
		"FROBNICATE",
		"LOAD onearg",
		"LOAD cortex-a72 2 -5",
		"RUN",          // nothing loaded
		"MEASURE 0",    // bad sample count
		"SWEEP",        // missing args
		"SETCLOCK x",   // missing value
		"SETCORES a b", // non-numeric
		"RESET",        // missing domain
	} {
		if reply := send(cmd); !strings.HasPrefix(reply, "ERR") {
			t.Errorf("%q -> %q, want ERR", cmd, reply)
		}
	}
	if reply := send("QUIT"); !strings.HasPrefix(reply, "OK") {
		t.Errorf("QUIT -> %q", reply)
	}
}

func TestLoadRejectsBadProgram(t *testing.T) {
	addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	if err := writeLine(w, "LOAD cortex-a72 2 1"); err != nil {
		t.Fatal(err)
	}
	if err := writeLine(w, "bogus instruction here"); err != nil {
		t.Fatal(err)
	}
	reply, err := readLine(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("bad program accepted: %q", reply)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestRemoteVmin(t *testing.T) {
	addr, b := startServer(t)
	c := dial(t, addr)
	// VMIN before anything is loaded must fail.
	if _, err := c.Vmin(1); err == nil {
		t.Fatal("vmin without a loaded workload succeeded")
	}
	d, _ := b.Platform.Domain(platform.DomainA72)
	pool := d.Spec.Pool()
	seq, err := workload.Probe().Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(platform.DomainA72, 2, pool, seq); err != nil {
		t.Fatal(err)
	}
	res, err := c.Vmin(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.VminV <= 0 || res.VminV >= d.Spec.PDN.VNominal {
		t.Fatalf("remote vmin %v", res.VminV)
	}
	if res.Outcome == "pass" || res.Outcome == "" {
		t.Fatalf("outcome %q", res.Outcome)
	}
	if _, err := c.Vmin(0); err == nil {
		t.Fatal("0 repeats accepted")
	}
}

// Two workstations talking to the same daemon concurrently must not
// corrupt each other or the shared instruments (run under -race). Each
// session owns its own load/run slot, so both clients interleave full
// LOAD/RUN/MEASURE cycles on the SAME domain with DIFFERENT programs —
// and each must read back exactly the measurement its own program
// produces on a fault-free serial bench. A third client hammers domain
// setpoints and sweeps at the same time on the other domain.
func TestConcurrentClients(t *testing.T) {
	addr, b := startServer(t)
	d, err := b.Platform.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	pool := d.Spec.Pool()

	// Two distinct programs and their expected fault-free measurements,
	// computed on an independent identical bench.
	probe, err := workload.Probe().Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]isa.Inst, len(probe))
	for i, in := range probe {
		rev[len(probe)-1-i] = in
	}
	refPlat, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	refBench, err := core.NewBench(refPlat, 1)
	if err != nil {
		t.Fatal(err)
	}
	refDom, err := refPlat.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	expect := func(seq []isa.Inst) float64 {
		m, err := refBench.EMMeasureN(refDom, platform.Load{Seq: seq, ActiveCores: 2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return m.PeakDBm
	}
	wantProbe, wantRev := expect(probe), expect(rev)

	cycle := func(seq []isa.Inst, want float64) error {
		c, err := Dial(addr, 2*time.Second)
		if err != nil {
			return err
		}
		defer c.Close()
		for rep := 0; rep < 3; rep++ {
			if err := c.Load(platform.DomainA72, 2, pool, seq); err != nil {
				return err
			}
			if err := c.Run(); err != nil {
				return err
			}
			m, err := c.Measure(2)
			if err != nil {
				return err
			}
			if m.PeakDBm != want {
				return fmt.Errorf("session measured %v, want its own program's %v", m.PeakDBm, want)
			}
			if err := c.Stop(); err != nil {
				return err
			}
		}
		return nil
	}

	done := make(chan error, 3)
	go func() { done <- cycle(probe, wantProbe) }()
	go func() { done <- cycle(rev, wantRev) }()
	go func() {
		c, err := Dial(addr, 2*time.Second)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		for rep := 0; rep < 2; rep++ {
			if err := c.SetCores(platform.DomainA53, 2); err != nil {
				done <- err
				return
			}
			if _, _, _, err := c.Sweep(platform.DomainA53, 1); err != nil {
				done <- err
				return
			}
			if err := c.Reset(platform.DomainA53); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
