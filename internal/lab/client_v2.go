package lab

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/vmin"
)

// Protocol-v2 client methods. All of them ride the same resilience loop as
// the v1 verbs: single-line request, single-line reply, retried on
// transport faults after a reconnect-and-replay, never retried on target
// ERR replies.

// Hello negotiates the protocol version. It returns the version both
// sides can speak — min(version, server's) — and the target's platform
// name. A v1 daemon predates HELLO and rejects it; callers detect that
// with IsTargetError and fall back to the v1 command subset.
func (c *Client) Hello(version int) (negotiated int, platformName string, err error) {
	err = c.do(command{
		verb: "HELLO",
		line: fmt.Sprintf("HELLO %d", version),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			server, err := intField(fields, 0, "version")
			if err != nil {
				return err
			}
			if len(fields) < 2 {
				return fmt.Errorf("malformed HELLO reply %q", payload)
			}
			negotiated, platformName = server, fields[1]
			if version < negotiated {
				negotiated = version
			}
			return nil
		},
	})
	if err != nil {
		return 0, "", err
	}
	return negotiated, platformName, nil
}

// RemoteCaps is a domain capability record as reported by CAPS.
type RemoteCaps struct {
	TotalCores        int
	Arch              isa.Arch
	MaxClockHz        float64
	ClockStepHz       float64
	VoltageVisibility string
	DSOKind           string // "oc-dso", "bench-scope" or "" (no scope)
	Lineage           bool
}

// Caps queries a domain's capability record.
func (c *Client) Caps(domain string) (*RemoteCaps, error) {
	caps := &RemoteCaps{}
	err := c.do(command{
		verb: "CAPS",
		line: "CAPS " + domain,
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			var err error
			if caps.TotalCores, err = intField(fields, 0, "cores"); err != nil {
				return err
			}
			if len(fields) < 7 {
				return fmt.Errorf("malformed CAPS reply %q", payload)
			}
			if caps.Arch, err = isa.ParseArch(fields[1]); err != nil {
				// A daemon can serve an architecture this process has
				// not loaded a spec for; intern the name so capability
				// queries and placement still work (assembling loads
				// for it fails later with a pointed error).
				if caps.Arch, err = isa.InternArch(fields[1]); err != nil {
					return err
				}
			}
			if caps.MaxClockHz, err = floatField(fields, 2, "max clock"); err != nil {
				return err
			}
			if caps.ClockStepHz, err = floatField(fields, 3, "clock step"); err != nil {
				return err
			}
			caps.VoltageVisibility = fields[4]
			if fields[5] != "-" {
				caps.DSOKind = fields[5]
			}
			lineage, err := intField(fields, 6, "lineage")
			if err != nil {
				return err
			}
			caps.Lineage = lineage != 0
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return caps, nil
}

// RemoteState is a domain's current operating point as reported by STATE.
type RemoteState struct {
	ClockHz      float64
	SupplyV      float64
	PoweredCores int
}

// State queries a domain's current setpoints.
func (c *Client) State(domain string) (*RemoteState, error) {
	st := &RemoteState{}
	err := c.do(command{
		verb: "STATE",
		line: "STATE " + domain,
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			var err error
			if st.ClockHz, err = floatField(fields, 0, "clock"); err != nil {
				return err
			}
			if st.SupplyV, err = floatField(fields, 1, "supply"); err != nil {
				return err
			}
			if st.PoweredCores, err = intField(fields, 2, "powered"); err != nil {
				return err
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// SweepFull runs the fast resonance sweep remotely with an explicit
// per-point sample count and returns the full result, point list
// included — everything a local core.FastResonanceSweep returns, with
// values that round-trip the wire bit-exactly (%g → ParseFloat).
func (c *Client) SweepFull(domain string, cores, samples int) (*core.SweepResult, error) {
	res := &core.SweepResult{}
	err := c.do(command{
		verb: "SWEEPFULL",
		line: fmt.Sprintf("SWEEPFULL %s %d %d", domain, cores, samples),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			var err error
			if res.ResonanceHz, err = floatField(fields, 0, "resonance"); err != nil {
				return err
			}
			if res.PeakLoopHz, err = floatField(fields, 1, "peak loop"); err != nil {
				return err
			}
			if res.PeakDBm, err = floatField(fields, 2, "peak dBm"); err != nil {
				return err
			}
			n, err := intField(fields, 3, "points")
			if err != nil {
				return err
			}
			if n < 0 || len(fields) != 4+3*n {
				return fmt.Errorf("malformed SWEEPFULL reply: %d points, %d fields", n, len(fields))
			}
			res.Points = make([]core.SweepPoint, n)
			for i := 0; i < n; i++ {
				p := &res.Points[i]
				if p.ClockHz, err = floatField(fields, 4+3*i, "clock"); err != nil {
					return err
				}
				if p.LoopHz, err = floatField(fields, 5+3*i, "loop"); err != nil {
					return err
				}
				if p.PeakDBm, err = floatField(fields, 6+3*i, "dBm"); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SweepAt measures one fast-sweep point at an explicit clock setting (the
// protocol-v3 verb behind fleet-sharded sweeps). A nil point with a nil
// error means the probe loop falls outside the daemon bench's search band
// at that clock — the same contract as core.SweepPointAt.
func (c *Client) SweepAt(domain string, cores, samples int, clockHz float64) (*core.SweepPoint, error) {
	var pt *core.SweepPoint
	err := c.do(command{
		verb: "SWEEPAT",
		line: fmt.Sprintf("SWEEPAT %s %d %d %g", domain, cores, samples, clockHz),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			inBand, err := intField(fields, 0, "in-band flag")
			if err != nil {
				return err
			}
			if inBand == 0 {
				pt = nil
				return nil
			}
			p := &core.SweepPoint{}
			if p.ClockHz, err = floatField(fields, 1, "clock"); err != nil {
				return err
			}
			if p.LoopHz, err = floatField(fields, 2, "loop"); err != nil {
				return err
			}
			if p.PeakDBm, err = floatField(fields, 3, "dBm"); err != nil {
				return err
			}
			pt = p
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return pt, nil
}

// RemoteVminFull is a full V_MIN campaign result: the worst run plus every
// per-run V_MIN (Figure 10's distribution data).
type RemoteVminFull struct {
	VminV         float64
	MarginV       float64
	DroopNominalV float64
	Outcome       vmin.FailureKind
	Runs          []float64
}

// VminFull runs a V_MIN campaign on the loaded workload with the
// workstation's tester seed.
func (c *Client) VminFull(seed int64, repeats int) (*RemoteVminFull, error) {
	out := &RemoteVminFull{}
	err := c.do(command{
		verb: "VMINFULL",
		line: fmt.Sprintf("VMINFULL %d %d", seed, repeats),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			var err error
			if out.VminV, err = floatField(fields, 0, "vmin"); err != nil {
				return err
			}
			if out.MarginV, err = floatField(fields, 1, "margin"); err != nil {
				return err
			}
			if out.DroopNominalV, err = floatField(fields, 2, "droop"); err != nil {
				return err
			}
			if len(fields) < 5 {
				return fmt.Errorf("malformed VMINFULL reply %q", payload)
			}
			if out.Outcome, err = vmin.ParseKind(fields[3]); err != nil {
				return err
			}
			n, err := intField(fields, 4, "runs")
			if err != nil {
				return err
			}
			if n < 0 || len(fields) != 5+n {
				return fmt.Errorf("malformed VMINFULL reply: %d runs, %d fields", n, len(fields))
			}
			out.Runs = make([]float64, n)
			for i := 0; i < n; i++ {
				if out.Runs[i], err = floatField(fields, 5+i, "run"); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Shmoo runs the loaded workload's frequency/voltage shmoo at the given
// clock settings with the workstation's tester seed.
func (c *Client) Shmoo(seed int64, clocks []float64) ([]vmin.ShmooPoint, error) {
	if len(clocks) == 0 {
		return nil, fmt.Errorf("lab: no shmoo clocks")
	}
	var line strings.Builder
	fmt.Fprintf(&line, "SHMOO %d", seed)
	for _, hz := range clocks {
		fmt.Fprintf(&line, " %g", hz)
	}
	var points []vmin.ShmooPoint
	err := c.do(command{
		verb: "SHMOO",
		line: line.String(),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			n, err := intField(fields, 0, "points")
			if err != nil {
				return err
			}
			if n < 0 || len(fields) != 1+4*n {
				return fmt.Errorf("malformed SHMOO reply: %d points, %d fields", n, len(fields))
			}
			points = make([]vmin.ShmooPoint, n)
			for i := 0; i < n; i++ {
				p := &points[i]
				if p.ClockHz, err = floatField(fields, 1+4*i, "clock"); err != nil {
					return err
				}
				if p.VminV, err = floatField(fields, 2+4*i, "vmin"); err != nil {
					return err
				}
				if p.MarginV, err = floatField(fields, 3+4*i, "margin"); err != nil {
					return err
				}
				if p.Outcome, err = vmin.ParseKind(fields[4+4*i]); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// VMeasure measures the running workload under the given metric ("em",
// "droop" or "ptp") and returns the GA observable: fitness and dominant
// frequency. dsoSeed fixes the target-side scope noise stream for the
// droop/ptp metrics (ignored for em).
func (c *Client) VMeasure(metric string, samples int, dsoSeed int64) (fitness, domHz float64, err error) {
	err = c.do(command{
		verb: "VMEASURE",
		line: fmt.Sprintf("VMEASURE %s %d %d", metric, samples, dsoSeed),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			var err error
			if fitness, err = floatField(fields, 0, "fitness"); err != nil {
				return err
			}
			if domHz, err = floatField(fields, 1, "dominant Hz"); err != nil {
				return err
			}
			return nil
		},
	})
	if err != nil {
		return 0, 0, err
	}
	return fitness, domHz, nil
}

// MonitorPart is one domain's workload in a multi-domain Monitor capture.
type MonitorPart struct {
	Domain string
	Cores  int
	Pool   *isa.Pool
	Seq    []isa.Inst
	Phases []float64
}

// Monitor captures one combined spectrum over several domains' loads
// (Figure 15's one-antenna multi-domain observation). The reply carries
// only (n, startHz, rbwHz, dBm...); the frequency axis is reconstructed
// with instrument.BinCenters, the same expression the analyzer itself
// uses, so the sweep equals a local MonitorAll bit-for-bit.
func (c *Client) Monitor(parts []MonitorPart) (*instrument.Sweep, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("lab: no monitor parts")
	}
	var body strings.Builder
	for _, part := range parts {
		text := isa.FormatProgram(part.Pool, part.Seq)
		lines := strings.Count(text, "\n")
		fmt.Fprintf(&body, "%s %d %d %d", part.Domain, part.Cores, lines, len(part.Phases))
		for _, ph := range part.Phases {
			fmt.Fprintf(&body, " %g", ph)
		}
		body.WriteByte('\n')
		body.WriteString(text)
	}
	var sw *instrument.Sweep
	err := c.do(command{
		verb: "MONITOR",
		line: fmt.Sprintf("MONITOR %d", len(parts)),
		body: body.String(),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			n, err := intField(fields, 0, "bins")
			if err != nil {
				return err
			}
			startHz, err := floatField(fields, 1, "start Hz")
			if err != nil {
				return err
			}
			rbwHz, err := floatField(fields, 2, "RBW")
			if err != nil {
				return err
			}
			if n < 0 || len(fields) != 3+n {
				return fmt.Errorf("malformed MONITOR reply: %d bins, %d fields", n, len(fields))
			}
			out := &instrument.Sweep{
				Freqs: instrument.BinCenters(startHz, rbwHz, n),
				DBm:   make([]float64, n),
			}
			for i := 0; i < n; i++ {
				if out.DBm[i], err = floatField(fields, 3+i, "dBm"); err != nil {
					return err
				}
			}
			sw = out
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return sw, nil
}

// DomainStats fetches a domain's evaluation-cache counters (the string a
// local Domain.EvalStats returns, i.e. the -v output).
func (c *Client) DomainStats(domain string) (string, error) {
	var stats string
	err := c.do(command{
		verb: "STATS",
		line: "STATS " + domain,
		parse: func(payload string) error {
			s, err := strconv.Unquote(strings.TrimSpace(payload))
			if err != nil {
				return fmt.Errorf("malformed STATS reply: %v", err)
			}
			stats = s
			return nil
		},
	})
	if err != nil {
		return "", err
	}
	return stats, nil
}
