package lab

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/lab/chaos"
	"repro/internal/platform"
	"repro/internal/vmin"
	"repro/internal/workload"
)

// TestHelloNegotiation: a v2 daemon answers HELLO with its version and
// platform; the negotiated version is the minimum of both sides.
func TestHelloNegotiation(t *testing.T) {
	addr, b := startServer(t)
	c := dial(t, addr)
	defer c.Close()

	ver, name, err := c.Hello(ProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	if ver != ProtocolVersion {
		t.Fatalf("negotiated %d, want %d", ver, ProtocolVersion)
	}
	if name != b.Platform.Name {
		t.Fatalf("platform %q, want %q", name, b.Platform.Name)
	}
	// A future client is negotiated down to the server's version.
	if ver, _, err = c.Hello(99); err != nil || ver != ProtocolVersion {
		t.Fatalf("Hello(99) = %d, %v; want %d", ver, err, ProtocolVersion)
	}
}

// TestCapsAndState: CAPS must mirror the domain spec exactly and STATE the
// live operating point, with every float round-tripping the wire.
func TestCapsAndState(t *testing.T) {
	addr, b := startServer(t)
	c := dial(t, addr)
	defer c.Close()

	d, err := b.Platform.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := c.Caps(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	spec := d.Spec
	if caps.TotalCores != spec.TotalCores || caps.Arch != spec.ISA ||
		caps.MaxClockHz != spec.MaxClockHz || caps.ClockStepHz != spec.ClockStepHz ||
		caps.VoltageVisibility != spec.VoltageVisibility || caps.DSOKind != "oc-dso" {
		t.Fatalf("caps %+v do not mirror spec %+v", caps, spec)
	}
	if caps.Lineage {
		t.Fatal("remote caps claim lineage support; checkpoints cannot cross the wire")
	}

	if err := c.SetClock(platform.DomainA72, 600e6); err != nil {
		t.Fatal(err)
	}
	st, err := c.State(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	if st.ClockHz != 600e6 || st.SupplyV != d.Spec.PDN.VNominal || st.PoweredCores != spec.TotalCores {
		t.Fatalf("state %+v after SETCLOCK 600e6", st)
	}
	if _, err := c.Caps("no-such-domain"); err == nil || !IsTargetError(err) {
		t.Fatalf("CAPS on unknown domain: %v", err)
	}
	if _, err := c.State("no-such-domain"); err == nil || !IsTargetError(err) {
		t.Fatalf("STATE on unknown domain: %v", err)
	}
}

// TestV2ProtocolErrors drives the new verbs with malformed arguments over
// a raw connection; each must produce a single ERR line and leave the
// session aligned.
func TestV2ProtocolErrors(t *testing.T) {
	addr, _ := startServer(t)
	rc := rawDial(t, addr)

	cases := []string{
		"HELLO",
		"HELLO zero",
		"CAPS",
		"STATE",
		"SWEEPFULL cortex-a72 2",
		"SWEEPFULL cortex-a72 2 0",
		"SWEEPFULL cortex-a72 2 1001",
		"VMINFULL 1",      // missing repeats
		"VMINFULL 1 3",    // nothing loaded
		"SHMOO 1 6e8",     // nothing loaded
		"VMEASURE em 3 1", // nothing running
		"VMEASURE what 3 1",
		"MONITOR",
		"MONITOR 0",
		"MONITOR 17",
		"STATS",
		"STATS no-such-domain",
	}
	for _, cmd := range cases {
		if reply := rc.send(cmd); !strings.HasPrefix(reply, "ERR") {
			t.Fatalf("%q -> %q, want ERR", cmd, reply)
		}
	}
	// The session survived every rejection.
	if reply := rc.send("INFO"); !strings.HasPrefix(reply, "OK juno") {
		t.Fatalf("session desynced: INFO -> %q", reply)
	}
}

// TestChaosSweepAndShmooMatchDirect is the satellite acceptance test: the
// fast resonance sweep and a short V_MIN shmoo executed through a chaos
// proxy injecting seeded drops and garbles must be bit-identical to the
// same operations on a clean in-process bench.
func TestChaosSweepAndShmooMatchDirect(t *testing.T) {
	// Direct references.
	db, dd := directBench(t)
	want, err := db.FastResonanceSweep(dd, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool := dd.Spec.Pool()
	seq, err := workload.Probe().Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	load := platform.Load{Seq: seq, ActiveCores: 2}
	steps := dd.ClockSteps()
	clocks := []float64{steps[len(steps)-1], steps[len(steps)/2], steps[0]}
	tester := vmin.NewTester(dd, 7)
	wantShmoo, err := tester.Shmoo(load, clocks)
	if err != nil {
		t.Fatal(err)
	}
	wantVmin, wantRuns, err := vmin.NewTester(dd, 7).Repeat(load, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Remote run through seeded chaos.
	addr, _ := startServer(t)
	// Higher fault rates than the GA test: this exchange is only a
	// handful of commands, so mild rates can pass it untouched and make
	// the vacuity check below flaky.
	proxy, err := chaos.New(addr, chaos.Config{
		Seed:       42,
		DropRate:   0.25,
		GarbleRate: 0.2,
		DelayRate:  0.01,
		Delay:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// SHMOO and VMIN compute a whole search server-side before the first
	// reply byte; under -race instrumentation that can exceed the harsh
	// 500ms fast-test budget, so this test alone gets a roomier I/O window
	// (retries are still exercised by the drop/garble rates above).
	opts := fastOpts()
	opts.IOTimeout = 5 * time.Second
	c, err := DialOptions(proxy.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.SweepFull(platform.DomainA72, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos sweep diverged:\n got %+v\nwant %+v", got, want)
	}

	if err := c.Load(platform.DomainA72, 2, pool, seq); err != nil {
		t.Fatal(err)
	}
	gotShmoo, err := c.Shmoo(7, clocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotShmoo, wantShmoo) {
		t.Fatalf("chaos shmoo diverged:\n got %+v\nwant %+v", gotShmoo, wantShmoo)
	}

	full, err := c.VminFull(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if full.VminV != wantVmin.VminV || full.MarginV != wantVmin.MarginV ||
		full.DroopNominalV != wantVmin.DroopNominalV || full.Outcome != wantVmin.Outcome {
		t.Fatalf("chaos vmin %+v != direct %+v", full, wantVmin)
	}
	if !reflect.DeepEqual(full.Runs, wantRuns) {
		t.Fatalf("chaos vmin runs %v != direct %v", full.Runs, wantRuns)
	}

	cs := proxy.Stats()
	if cs.Drops+cs.Garbles+cs.Delays == 0 {
		t.Fatal("chaos proxy injected no faults; test is vacuous")
	}
}

// TestMonitorMatchesDirect: a remote MONITOR over both Juno domains must
// reproduce the local MonitorAll spectrum exactly, frequency grid
// included.
func TestMonitorMatchesDirect(t *testing.T) {
	db, dd := directBench(t)
	pool := dd.Spec.Pool()
	probe, err := workload.Probe().Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := workload.ByName("idle")
	if err != nil {
		t.Fatal(err)
	}
	idleSeq, err := idle.Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	loads := map[string]platform.Load{
		platform.DomainA72: {Seq: probe, ActiveCores: 2, PhaseCycles: []float64{10, 10}},
		platform.DomainA53: {Seq: idleSeq, ActiveCores: 4},
	}
	want, err := db.MonitorAll(loads)
	if err != nil {
		t.Fatal(err)
	}

	addr, _ := startServer(t)
	c := dial(t, addr)
	defer c.Close()
	got, err := c.Monitor([]MonitorPart{
		{Domain: platform.DomainA53, Cores: 4, Pool: pool, Seq: idleSeq},
		{Domain: platform.DomainA72, Cores: 2, Pool: pool, Seq: probe, Phases: []float64{10, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("remote MONITOR spectrum diverged from local MonitorAll")
	}
}

// TestStatsRoundTrip: STATS must return the exact multi-line counter block
// the domain renders locally (strconv quoting preserves the newlines).
func TestStatsRoundTrip(t *testing.T) {
	addr, b := startServer(t)
	c := dial(t, addr)
	defer c.Close()

	// Drive one measurement so the counters are non-trivial.
	d, err := b.Platform.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	pool := d.Spec.Pool()
	seq, err := workload.Probe().Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(platform.DomainA72, 2, pool, seq); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Measure(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}

	stats, err := c.DomainStats(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	if stats != d.EvalStats() {
		t.Fatalf("remote stats:\n%s\nlocal:\n%s", stats, d.EvalStats())
	}
	if !strings.Contains(stats, "\n") {
		t.Fatal("stats lost its line structure on the wire")
	}
}
