package lab

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/ga"
	"repro/internal/isa"
)

// Client is the workstation side: it drives a remote lab daemon over TCP
// and exposes the measurement loop the GA needs.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a lab daemon.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("lab: dialing %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close ends the session politely and closes the connection.
func (c *Client) Close() error {
	_ = writeLine(c.w, "QUIT")
	return c.conn.Close()
}

// roundTrip sends one command line and parses the reply payload.
func (c *Client) roundTrip(format string, args ...any) (string, error) {
	if err := writeLine(c.w, format, args...); err != nil {
		return "", fmt.Errorf("lab: send: %w", err)
	}
	return c.readReply()
}

func (c *Client) readReply() (string, error) {
	line, err := readLine(c.r)
	if err != nil {
		return "", fmt.Errorf("lab: receive: %w", err)
	}
	ok, payload, err := parseReply(line)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("lab: target error: %s", payload)
	}
	return payload, nil
}

// Info returns the target's platform name and domain inventory.
func (c *Client) Info() (string, []string, error) {
	payload, err := c.roundTrip("INFO")
	if err != nil {
		return "", nil, err
	}
	fields := strings.Fields(payload)
	if len(fields) < 1 {
		return "", nil, fmt.Errorf("lab: malformed INFO reply %q", payload)
	}
	return fields[0], fields[1:], nil
}

// Load ships an individual's source to the target, which assembles it.
func (c *Client) Load(domain string, cores int, pool *isa.Pool, seq []isa.Inst) error {
	text := isa.FormatProgram(pool, seq)
	lines := strings.Count(text, "\n")
	if err := writeLine(c.w, "LOAD %s %d %d", domain, cores, lines); err != nil {
		return fmt.Errorf("lab: send: %w", err)
	}
	if _, err := c.w.WriteString(text); err != nil {
		return fmt.Errorf("lab: send program: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("lab: send program: %w", err)
	}
	_, err := c.readReply()
	return err
}

// Run starts the loaded workload on the target.
func (c *Client) Run() error {
	_, err := c.roundTrip("RUN")
	return err
}

// Stop terminates the running workload.
func (c *Client) Stop() error {
	_, err := c.roundTrip("STOP")
	return err
}

// RemoteMeasurement is the target's analyzer reading.
type RemoteMeasurement struct {
	PeakDBm  float64
	PeakHz   float64
	StdevDBm float64
}

// Measure asks the target bench for an averaged EM peak measurement.
func (c *Client) Measure(samples int) (*RemoteMeasurement, error) {
	payload, err := c.roundTrip("MEASURE %d", samples)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(payload)
	m := &RemoteMeasurement{}
	if m.PeakDBm, err = floatField(fields, 0, "peak dBm"); err != nil {
		return nil, err
	}
	if m.PeakHz, err = floatField(fields, 1, "peak Hz"); err != nil {
		return nil, err
	}
	if m.StdevDBm, err = floatField(fields, 2, "stdev"); err != nil {
		return nil, err
	}
	return m, nil
}

// Sweep runs the fast resonance sweep remotely.
func (c *Client) Sweep(domain string, cores int) (resonanceHz, peakDBm float64, points int, err error) {
	payload, err := c.roundTrip("SWEEP %s %d", domain, cores)
	if err != nil {
		return 0, 0, 0, err
	}
	fields := strings.Fields(payload)
	if resonanceHz, err = floatField(fields, 0, "resonance"); err != nil {
		return 0, 0, 0, err
	}
	if peakDBm, err = floatField(fields, 1, "peak"); err != nil {
		return 0, 0, 0, err
	}
	if points, err = intField(fields, 2, "points"); err != nil {
		return 0, 0, 0, err
	}
	return resonanceHz, peakDBm, points, nil
}

// RemoteVmin is a V_MIN search outcome from the target.
type RemoteVmin struct {
	VminV   float64
	MarginV float64
	Outcome string
}

// Vmin runs a V_MIN campaign on the currently loaded workload remotely.
func (c *Client) Vmin(repeats int) (*RemoteVmin, error) {
	payload, err := c.roundTrip("VMIN %d", repeats)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(payload)
	out := &RemoteVmin{}
	if out.VminV, err = floatField(fields, 0, "vmin"); err != nil {
		return nil, err
	}
	if out.MarginV, err = floatField(fields, 1, "margin"); err != nil {
		return nil, err
	}
	if len(fields) < 3 {
		return nil, fmt.Errorf("lab: malformed VMIN reply %q", payload)
	}
	out.Outcome = fields[2]
	return out, nil
}

// SetClock adjusts the target's DVFS point.
func (c *Client) SetClock(domain string, hz float64) error {
	_, err := c.roundTrip("SETCLOCK %s %g", domain, hz)
	return err
}

// SetVolts adjusts the target's supply setpoint.
func (c *Client) SetVolts(domain string, v float64) error {
	_, err := c.roundTrip("SETVOLTS %s %g", domain, v)
	return err
}

// SetCores power-gates cores on the target.
func (c *Client) SetCores(domain string, n int) error {
	_, err := c.roundTrip("SETCORES %s %d", domain, n)
	return err
}

// Reset restores a domain to nominal state.
func (c *Client) Reset(domain string) error {
	_, err := c.roundTrip("RESET %s", domain)
	return err
}

// Measurer returns a GA fitness function that evaluates each individual on
// the remote target: load, run, measure, stop — the paper's per-individual
// loop.
func (c *Client) Measurer(domain string, cores, samples int, pool *isa.Pool) ga.Measurer {
	return ga.MeasurerFunc(func(seq []isa.Inst) (float64, float64, error) {
		if err := c.Load(domain, cores, pool, seq); err != nil {
			return 0, 0, err
		}
		if err := c.Run(); err != nil {
			return 0, 0, err
		}
		m, err := c.Measure(samples)
		if err != nil {
			_ = c.Stop()
			return 0, 0, err
		}
		if err := c.Stop(); err != nil {
			return 0, 0, err
		}
		return m.PeakDBm, m.PeakHz, nil
	})
}
