package lab

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"repro/internal/ga"
	"repro/internal/isa"
)

// Options tunes the client's resilience envelope. The zero value of any
// field selects the default noted on it.
type Options struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// IOTimeout is the per-command read/write deadline (default 10s). A
	// command whose reply does not arrive in time is treated as a
	// transport fault: the connection is dropped and the command retried
	// on a fresh one.
	IOTimeout time.Duration
	// MaxAttempts bounds how often one command is tried, the first attempt
	// included (default 4). Target ERR replies are never retried.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff slept
	// before each reconnect: base<<(attempt-1), capped at max (defaults
	// 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 10 * time.Second
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	return o
}

// sessionState is everything the client has established on the target that
// a fresh connection would lack: domain setpoints and the loaded/running
// workload. It is replayed verbatim after every reconnect, so a mid-cycle
// connection drop (say between RUN and MEASURE) is invisible to callers.
type sessionState struct {
	clocks map[string]float64
	volts  map[string]float64
	cores  map[string]int
	load   *loadState
	run    bool
}

type loadState struct {
	domain string
	cores  int
	text   string // formatted program body
	lines  int
}

// Client is the workstation side: it drives a remote lab daemon over TCP
// and exposes the measurement loop the GA needs. Every command runs under
// Options.IOTimeout; transport faults trigger reconnect + state replay +
// retry with exponential backoff. A Client serves one goroutine at a time;
// use Pool for concurrent evaluation.
type Client struct {
	addr string
	opts Options

	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	state  sessionState
	stats  statsCollector
	closed bool
}

// Dial connects to a lab daemon with default resilience options and the
// given dial timeout (kept for compatibility; see DialOptions).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, Options{DialTimeout: timeout})
}

// DialOptions connects to a lab daemon with explicit resilience options.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{
		addr: addr,
		opts: opts.withDefaults(),
		state: sessionState{
			clocks: make(map[string]float64),
			volts:  make(map[string]float64),
			cores:  make(map[string]int),
		},
	}
	if err := c.connect(false); err != nil {
		return nil, err
	}
	return c, nil
}

// connect establishes (or re-establishes) the TCP session.
func (c *Client) connect(reconnect bool) error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return &transportError{op: "dialing " + c.addr, err: err}
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	c.stats.dial(reconnect)
	return nil
}

// dropConn abandons the current connection after a transport fault.
func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// Close ends the session politely — QUIT is sent and its reply read, so
// the daemon sees an orderly teardown rather than a reset — and closes the
// connection. Safe to call on an already-broken session.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	start := time.Now()
	_, err := c.exchange(command{verb: "QUIT", line: "QUIT"})
	c.stats.done("QUIT", time.Since(start), err != nil)
	cerr := c.conn.Close()
	c.conn = nil
	if err != nil {
		return err
	}
	return cerr
}

// Stats returns a snapshot of the client's transport counters.
func (c *Client) Stats() Stats { return c.stats.snapshot() }

// command is one protocol exchange: a request line, an optional body (the
// LOAD program text), a payload parser run on the OK reply, and a recorder
// that captures the session-state effect of a successful execution.
type command struct {
	verb   string
	line   string
	body   string
	parse  func(payload string) error
	record func(st *sessionState)
}

// do runs one command through the resilience loop: attempt, classify,
// back off, reconnect (replaying session state), retry. Target ERR
// replies return immediately; only stream-integrity faults are retried.
func (c *Client) do(cmd command) error {
	if c.closed {
		return ErrClosed
	}
	start := time.Now()
	err := c.attemptLoop(cmd)
	c.stats.done(cmd.verb, time.Since(start), err != nil)
	return err
}

func (c *Client) attemptLoop(cmd command) error {
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.stats.retry(cmd.verb)
			c.sleepBackoff(attempt)
		}
		if c.conn == nil {
			if err := c.reconnect(); err != nil {
				if IsTargetError(err) {
					return err // replay rejected by the target: not transient
				}
				lastErr = err
				continue
			}
		}
		payload, err := c.exchange(cmd)
		if err == nil {
			if cmd.parse != nil {
				if perr := cmd.parse(payload); perr != nil {
					// An OK reply whose payload does not parse means the
					// stream is desynced or corrupted: transport fault.
					lastErr = &transportError{op: cmd.verb, err: perr}
					c.dropConn()
					continue
				}
			}
			if cmd.record != nil {
				cmd.record(&c.state)
			}
			return nil
		}
		if IsTargetError(err) {
			return err
		}
		lastErr = err
		c.dropConn()
	}
	return fmt.Errorf("lab: %s failed after %d attempt(s): %w",
		cmd.verb, c.opts.MaxAttempts, lastErr)
}

func (c *Client) sleepBackoff(attempt int) {
	d := c.opts.BackoffBase << uint(attempt-1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	time.Sleep(d)
}

// exchange performs one raw request/reply round trip under the I/O
// deadline. It returns a *TargetError for ERR replies and a transport
// error for anything else that goes wrong.
func (c *Client) exchange(cmd command) (string, error) {
	if c.conn == nil {
		return "", &transportError{op: cmd.verb, err: fmt.Errorf("no connection")}
	}
	_ = c.conn.SetDeadline(time.Now().Add(c.opts.IOTimeout))
	defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	if _, err := c.w.WriteString(cmd.line + "\n"); err != nil {
		return "", &transportError{op: cmd.verb + " send", err: err}
	}
	if cmd.body != "" {
		if _, err := c.w.WriteString(cmd.body); err != nil {
			return "", &transportError{op: cmd.verb + " send body", err: err}
		}
	}
	if err := c.w.Flush(); err != nil {
		return "", &transportError{op: cmd.verb + " send", err: err}
	}
	line, err := readLineN(c.r, maxReplyLen)
	if err != nil {
		return "", &transportError{op: cmd.verb + " receive", err: err}
	}
	ok, payload, err := parseReply(line)
	if err != nil {
		return "", &transportError{op: cmd.verb + " receive", err: err}
	}
	if !ok {
		return "", &TargetError{Msg: payload}
	}
	return payload, nil
}

// reconnect re-dials and replays the recorded session state so the fresh
// connection is indistinguishable from the broken one: per-domain
// SETCORES/SETCLOCK/SETVOLTS, then LOAD, then RUN if a workload was
// running.
func (c *Client) reconnect() error {
	if err := c.connect(true); err != nil {
		return err
	}
	if err := c.replay(); err != nil {
		c.dropConn()
		return err
	}
	return nil
}

func (c *Client) replay() error {
	st := &c.state
	if len(st.cores) == 0 && len(st.clocks) == 0 && len(st.volts) == 0 &&
		st.load == nil {
		return nil
	}
	c.stats.replay()
	for _, dom := range sortedKeys(st.cores) {
		if _, err := c.exchange(command{verb: "SETCORES",
			line: fmt.Sprintf("SETCORES %s %d", dom, st.cores[dom])}); err != nil {
			return err
		}
	}
	for _, dom := range sortedKeys(st.clocks) {
		if _, err := c.exchange(command{verb: "SETCLOCK",
			line: fmt.Sprintf("SETCLOCK %s %g", dom, st.clocks[dom])}); err != nil {
			return err
		}
	}
	for _, dom := range sortedKeys(st.volts) {
		if _, err := c.exchange(command{verb: "SETVOLTS",
			line: fmt.Sprintf("SETVOLTS %s %g", dom, st.volts[dom])}); err != nil {
			return err
		}
	}
	if st.load != nil {
		if _, err := c.exchange(command{
			verb: "LOAD",
			line: fmt.Sprintf("LOAD %s %d %d", st.load.domain, st.load.cores, st.load.lines),
			body: st.load.text,
		}); err != nil {
			return err
		}
		if st.run {
			if _, err := c.exchange(command{verb: "RUN", line: "RUN"}); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Info returns the target's platform name and domain inventory.
func (c *Client) Info() (string, []string, error) {
	var name string
	var domains []string
	err := c.do(command{verb: "INFO", line: "INFO", parse: func(payload string) error {
		fields := strings.Fields(payload)
		if len(fields) < 1 {
			return fmt.Errorf("malformed INFO reply %q", payload)
		}
		name, domains = fields[0], fields[1:]
		return nil
	}})
	return name, domains, err
}

// Load ships an individual's source to the target, which assembles it.
func (c *Client) Load(domain string, cores int, pool *isa.Pool, seq []isa.Inst) error {
	text := isa.FormatProgram(pool, seq)
	lines := strings.Count(text, "\n")
	return c.do(command{
		verb: "LOAD",
		line: fmt.Sprintf("LOAD %s %d %d", domain, cores, lines),
		body: text,
		record: func(st *sessionState) {
			st.load = &loadState{domain: domain, cores: cores, text: text, lines: lines}
			st.run = false
		},
	})
}

// Run starts the loaded workload on the target.
func (c *Client) Run() error {
	return c.do(command{verb: "RUN", line: "RUN",
		record: func(st *sessionState) { st.run = true }})
}

// Stop terminates the running workload.
func (c *Client) Stop() error {
	return c.do(command{verb: "STOP", line: "STOP",
		record: func(st *sessionState) { st.run = false }})
}

// RemoteMeasurement is the target's analyzer reading.
type RemoteMeasurement struct {
	PeakDBm  float64
	PeakHz   float64
	StdevDBm float64
}

// Measure asks the target bench for an averaged EM peak measurement.
func (c *Client) Measure(samples int) (*RemoteMeasurement, error) {
	m := &RemoteMeasurement{}
	err := c.do(command{
		verb: "MEASURE",
		line: fmt.Sprintf("MEASURE %d", samples),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			var err error
			if m.PeakDBm, err = floatField(fields, 0, "peak dBm"); err != nil {
				return err
			}
			if m.PeakHz, err = floatField(fields, 1, "peak Hz"); err != nil {
				return err
			}
			if m.StdevDBm, err = floatField(fields, 2, "stdev"); err != nil {
				return err
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Sweep runs the fast resonance sweep remotely.
func (c *Client) Sweep(domain string, cores int) (resonanceHz, peakDBm float64, points int, err error) {
	err = c.do(command{
		verb: "SWEEP",
		line: fmt.Sprintf("SWEEP %s %d", domain, cores),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			var err error
			if resonanceHz, err = floatField(fields, 0, "resonance"); err != nil {
				return err
			}
			if peakDBm, err = floatField(fields, 1, "peak"); err != nil {
				return err
			}
			if points, err = intField(fields, 2, "points"); err != nil {
				return err
			}
			return nil
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return resonanceHz, peakDBm, points, nil
}

// RemoteVmin is a V_MIN search outcome from the target.
type RemoteVmin struct {
	VminV   float64
	MarginV float64
	Outcome string
}

// Vmin runs a V_MIN campaign on the currently loaded workload remotely.
func (c *Client) Vmin(repeats int) (*RemoteVmin, error) {
	out := &RemoteVmin{}
	err := c.do(command{
		verb: "VMIN",
		line: fmt.Sprintf("VMIN %d", repeats),
		parse: func(payload string) error {
			fields := strings.Fields(payload)
			var err error
			if out.VminV, err = floatField(fields, 0, "vmin"); err != nil {
				return err
			}
			if out.MarginV, err = floatField(fields, 1, "margin"); err != nil {
				return err
			}
			if len(fields) < 3 {
				return fmt.Errorf("malformed VMIN reply %q", payload)
			}
			out.Outcome = fields[2]
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetClock adjusts the target's DVFS point.
func (c *Client) SetClock(domain string, hz float64) error {
	return c.do(command{
		verb:   "SETCLOCK",
		line:   fmt.Sprintf("SETCLOCK %s %g", domain, hz),
		record: func(st *sessionState) { st.clocks[domain] = hz },
	})
}

// SetVolts adjusts the target's supply setpoint.
func (c *Client) SetVolts(domain string, v float64) error {
	return c.do(command{
		verb:   "SETVOLTS",
		line:   fmt.Sprintf("SETVOLTS %s %g", domain, v),
		record: func(st *sessionState) { st.volts[domain] = v },
	})
}

// SetCores power-gates cores on the target.
func (c *Client) SetCores(domain string, n int) error {
	return c.do(command{
		verb:   "SETCORES",
		line:   fmt.Sprintf("SETCORES %s %d", domain, n),
		record: func(st *sessionState) { st.cores[domain] = n },
	})
}

// Reset restores a domain to nominal state.
func (c *Client) Reset(domain string) error {
	return c.do(command{
		verb: "RESET",
		line: "RESET " + domain,
		record: func(st *sessionState) {
			delete(st.clocks, domain)
			delete(st.volts, domain)
			delete(st.cores, domain)
		},
	})
}

// measureOn runs the paper's per-individual loop — load, run, measure,
// stop — on one client. Shared by Client.Measurer and Pool.Measurer.
func measureOn(c *Client, domain string, cores, samples int, pool *isa.Pool, seq []isa.Inst) (float64, float64, error) {
	if err := c.Load(domain, cores, pool, seq); err != nil {
		return 0, 0, err
	}
	if err := c.Run(); err != nil {
		return 0, 0, err
	}
	m, err := c.Measure(samples)
	if err != nil {
		_ = c.Stop()
		return 0, 0, err
	}
	if err := c.Stop(); err != nil {
		return 0, 0, err
	}
	return m.PeakDBm, m.PeakHz, nil
}

// Measurer returns a GA fitness function that evaluates each individual on
// the remote target: load, run, measure, stop — the paper's per-individual
// loop. For parallel evaluation use Pool.Measurer.
func (c *Client) Measurer(domain string, cores, samples int, pool *isa.Pool) ga.Measurer {
	return ga.MeasurerFunc(func(seq []isa.Inst) (float64, float64, error) {
		return measureOn(c, domain, cores, samples, pool, seq)
	})
}
