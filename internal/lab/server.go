package lab

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// Server is the target-machine daemon: it owns the platform under test and
// the instruments physically attached to the bench, and executes the
// workstation's commands.
type Server struct {
	Bench *core.Bench

	mu      sync.Mutex
	current *loaded // the workload currently loaded/running
	running bool
}

type loaded struct {
	domain *platform.Domain
	load   platform.Load
}

// NewServer wraps a bench as a lab daemon.
func NewServer(b *core.Bench) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("lab: nil bench")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &Server{Bench: b}, nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		quit, err := s.dispatch(r, w, line)
		if err != nil {
			if werr := writeLine(w, "%s %v", replyErr, err); werr != nil {
				return
			}
			continue
		}
		if quit {
			return
		}
	}
}

// dispatch executes one command; successful commands write their own OK.
func (s *Server) dispatch(r *bufio.Reader, w *bufio.Writer, line string) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, fmt.Errorf("empty command")
	}
	switch fields[0] {
	case "QUIT":
		_ = writeLine(w, "%s bye", replyOK)
		return true, nil
	case "INFO":
		return false, s.cmdInfo(w)
	case "LOAD":
		return false, s.cmdLoad(r, w, fields)
	case "RUN":
		return false, s.cmdRun(w)
	case "STOP":
		return false, s.cmdStop(w)
	case "MEASURE":
		return false, s.cmdMeasure(w, fields)
	case "SWEEP":
		return false, s.cmdSweep(w, fields)
	case "VMIN":
		return false, s.cmdVmin(w, fields)
	case "SETCLOCK":
		return false, s.cmdSet(w, fields, func(d *platform.Domain, v float64) error {
			return d.SetClockHz(v)
		})
	case "SETVOLTS":
		return false, s.cmdSet(w, fields, func(d *platform.Domain, v float64) error {
			return d.SetSupplyVolts(v)
		})
	case "SETCORES":
		return false, s.cmdSetCores(w, fields)
	case "RESET":
		return false, s.cmdReset(w, fields)
	default:
		return false, fmt.Errorf("unknown command %q", fields[0])
	}
}

func (s *Server) domain(name string) (*platform.Domain, error) {
	return s.Bench.Platform.Domain(name)
}

func (s *Server) cmdInfo(w *bufio.Writer) error {
	var names []string
	for _, d := range s.Bench.Platform.Domains() {
		names = append(names, fmt.Sprintf("%s/%d", d.Spec.Name, d.Spec.TotalCores))
	}
	return writeLine(w, "%s %s %s", replyOK, s.Bench.Platform.Name, strings.Join(names, " "))
}

func (s *Server) cmdLoad(r *bufio.Reader, w *bufio.Writer, fields []string) error {
	if len(fields) != 4 {
		return fmt.Errorf("usage: LOAD <domain> <cores> <lines>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	cores, err := intField(fields, 2, "cores")
	if err != nil {
		return err
	}
	lines, err := intField(fields, 3, "lines")
	if err != nil {
		return err
	}
	if lines < 1 || lines > 10000 {
		return fmt.Errorf("line count %d out of range", lines)
	}
	var body strings.Builder
	for i := 0; i < lines; i++ {
		ln, err := readLine(r)
		if err != nil {
			return fmt.Errorf("reading program: %v", err)
		}
		body.WriteString(ln)
		body.WriteByte('\n')
	}
	seq, err := isa.ParseProgram(d.Spec.Pool(), body.String())
	if err != nil {
		return err
	}
	if len(seq) == 0 {
		return fmt.Errorf("program has no instructions")
	}
	s.mu.Lock()
	s.current = &loaded{domain: d, load: platform.Load{Seq: seq, ActiveCores: cores}}
	s.running = false
	s.mu.Unlock()
	return writeLine(w, "%s loaded %d", replyOK, len(seq))
}

func (s *Server) cmdRun(w *bufio.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.current == nil {
		return fmt.Errorf("nothing loaded")
	}
	s.running = true
	return writeLine(w, "%s running", replyOK)
}

func (s *Server) cmdStop(w *bufio.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running = false
	return writeLine(w, "%s stopped", replyOK)
}

func (s *Server) cmdMeasure(w *bufio.Writer, fields []string) error {
	samples := s.Bench.Samples
	if len(fields) > 1 {
		var err error
		samples, err = intField(fields, 1, "samples")
		if err != nil {
			return err
		}
		if samples < 1 || samples > 1000 {
			return fmt.Errorf("sample count %d out of range", samples)
		}
	}
	s.mu.Lock()
	cur, running := s.current, s.running
	s.mu.Unlock()
	if cur == nil || !running {
		return fmt.Errorf("no workload running")
	}
	b := *s.Bench
	b.Samples = samples
	m, err := b.EMMeasure(cur.domain, cur.load)
	if err != nil {
		return err
	}
	return writeLine(w, "%s %g %g %g", replyOK, m.PeakDBm, m.PeakHz, m.StdevDBm)
}

func (s *Server) cmdSweep(w *bufio.Writer, fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("usage: SWEEP <domain> <cores>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	cores, err := intField(fields, 2, "cores")
	if err != nil {
		return err
	}
	res, err := s.Bench.FastResonanceSweep(d, cores)
	if err != nil {
		return err
	}
	return writeLine(w, "%s %g %g %d", replyOK, res.ResonanceHz, res.PeakDBm, len(res.Points))
}

// cmdVmin runs a V_MIN search (optionally repeated) on the currently
// loaded workload and reports the worst observed V_MIN.
func (s *Server) cmdVmin(w *bufio.Writer, fields []string) error {
	repeats := 1
	if len(fields) > 1 {
		var err error
		repeats, err = intField(fields, 1, "repeats")
		if err != nil {
			return err
		}
		if repeats < 1 || repeats > 100 {
			return fmt.Errorf("repeat count %d out of range", repeats)
		}
	}
	s.mu.Lock()
	cur := s.current
	s.mu.Unlock()
	if cur == nil {
		return fmt.Errorf("nothing loaded")
	}
	tester := vmin.NewTester(cur.domain, 1)
	res, _, err := tester.Repeat(cur.load, repeats)
	if err != nil {
		return err
	}
	return writeLine(w, "%s %g %g %s", replyOK, res.VminV, res.MarginV, res.Outcome)
}

func (s *Server) cmdSet(w *bufio.Writer, fields []string, set func(*platform.Domain, float64) error) error {
	if len(fields) != 3 {
		return fmt.Errorf("usage: %s <domain> <value>", fields[0])
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	v, err := floatField(fields, 2, "value")
	if err != nil {
		return err
	}
	if err := set(d, v); err != nil {
		return err
	}
	return writeLine(w, "%s", replyOK)
}

func (s *Server) cmdSetCores(w *bufio.Writer, fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("usage: SETCORES <domain> <n>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	n, err := intField(fields, 2, "cores")
	if err != nil {
		return err
	}
	if err := d.SetPoweredCores(n); err != nil {
		return err
	}
	return writeLine(w, "%s", replyOK)
}

func (s *Server) cmdReset(w *bufio.Writer, fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("usage: RESET <domain>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	d.Reset()
	return writeLine(w, "%s", replyOK)
}
