package lab

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// Server is the target-machine daemon: it owns the platform under test and
// the instruments physically attached to the bench, and executes the
// workstation's commands.
//
// Each connection is an independent session with its own loaded/running
// workload slot, so pooled workstation clients can interleave
// LOAD/RUN/MEASURE cycles freely (the daemon time-slices the one physical
// target; the simulated instruments are content-deterministic, so the
// interleaving cannot change any reading). Domain state is guarded by a
// per-domain reader/writer lock: measurements (MEASURE/SWEEP/VMIN) share
// the domain, setpoint changes (SETCLOCK/SETVOLTS/SETCORES/RESET) take it
// exclusively — a setpoint can never change in the middle of a
// measurement.
type Server struct {
	Bench *core.Bench

	mu        sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	domLocks  map[string]*sync.RWMutex
	stats     map[string]*ServerCommandStats
}

// ServerCommandStats counts executions of one protocol verb.
type ServerCommandStats struct {
	Calls  int64
	Errors int64
}

// session is the per-connection state: the workload slot this client owns.
type session struct {
	current *loaded
	running bool
}

type loaded struct {
	domain *platform.Domain
	load   platform.Load
}

// NewServer wraps a bench as a lab daemon.
func NewServer(b *core.Bench) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("lab: nil bench")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		Bench:     b,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		domLocks:  make(map[string]*sync.RWMutex),
		stats:     make(map[string]*ServerCommandStats),
	}, nil
}

// Serve accepts connections until the listener is closed or Shutdown is
// called. Transient Accept errors are retried with backoff rather than
// tearing the daemon down; after Shutdown, Serve returns nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()

	consecutive := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			consecutive++
			if consecutive > 5 {
				return fmt.Errorf("lab: accept: %w", err)
			}
			time.Sleep(time.Duration(consecutive) * 10 * time.Millisecond)
			continue
		}
		consecutive = 0
		if !s.trackConn(conn) {
			_ = conn.Close()
			return nil
		}
		go s.handle(conn)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// Shutdown stops the daemon: no new connections are accepted, every
// listener passed to Serve is closed, and all live handler connections are
// severed. Serve returns nil after Shutdown.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()

	var firstErr error
	for _, ln := range lns {
		if err := ln.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, conn := range conns {
		_ = conn.Close()
	}
	return firstErr
}

// Stats returns a snapshot of the per-command execution counters.
func (s *Server) Stats() map[string]ServerCommandStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ServerCommandStats, len(s.stats))
	for verb, cs := range s.stats {
		out[verb] = *cs
	}
	return out
}

// StatsString renders the command counters as a small table.
func (s *Server) StatsString() string {
	stats := s.Stats()
	verbs := make([]string, 0, len(stats))
	for v := range stats {
		verbs = append(verbs, v)
	}
	sort.Strings(verbs)
	var b strings.Builder
	b.WriteString("lab server command counters:")
	if len(verbs) == 0 {
		b.WriteString(" (none)")
	}
	for _, v := range verbs {
		cs := stats[v]
		fmt.Fprintf(&b, "\n  %-8s %6d calls  %3d errors", v, cs.Calls, cs.Errors)
	}
	return b.String()
}

func (s *Server) countCmd(verb string, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.stats[verb]
	if cs == nil {
		cs = &ServerCommandStats{}
		s.stats[verb] = cs
	}
	cs.Calls++
	if failed {
		cs.Errors++
	}
}

// domLock returns the reader/writer lock guarding one domain's state.
func (s *Server) domLock(name string) *sync.RWMutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.domLocks[name]
	if l == nil {
		l = &sync.RWMutex{}
		s.domLocks[name] = l
	}
	return l
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.untrackConn(conn)
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	sess := &session{}
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		quit, err := s.dispatch(sess, r, w, line)
		if err != nil {
			if werr := writeLine(w, "%s %v", replyErr, err); werr != nil {
				return
			}
			continue
		}
		if quit {
			return
		}
	}
}

// dispatch executes one command; successful commands write their own OK.
func (s *Server) dispatch(sess *session, r *bufio.Reader, w *bufio.Writer, line string) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, fmt.Errorf("empty command")
	}
	verb := fields[0]
	defer func() { s.countCmd(verb, err != nil) }()
	switch verb {
	case "QUIT":
		_ = writeLine(w, "%s bye", replyOK)
		return true, nil
	case "INFO":
		return false, s.cmdInfo(w)
	case "LOAD":
		return false, s.cmdLoad(sess, r, w, fields)
	case "RUN":
		return false, s.cmdRun(sess, w)
	case "STOP":
		return false, s.cmdStop(sess, w)
	case "MEASURE":
		return false, s.cmdMeasure(sess, w, fields)
	case "SWEEP":
		return false, s.cmdSweep(w, fields)
	case "VMIN":
		return false, s.cmdVmin(sess, w, fields)
	case "SETCLOCK":
		return false, s.cmdSet(w, fields, func(d *platform.Domain, v float64) error {
			return d.SetClockHz(v)
		})
	case "SETVOLTS":
		return false, s.cmdSet(w, fields, func(d *platform.Domain, v float64) error {
			return d.SetSupplyVolts(v)
		})
	case "SETCORES":
		return false, s.cmdSetCores(w, fields)
	case "RESET":
		return false, s.cmdReset(w, fields)
	case "HELLO":
		return false, s.cmdHello(w, fields)
	case "CAPS":
		return false, s.cmdCaps(w, fields)
	case "STATE":
		return false, s.cmdState(w, fields)
	case "SWEEPFULL":
		return false, s.cmdSweepFull(w, fields)
	case "SWEEPAT":
		return false, s.cmdSweepAt(w, fields)
	case "VMINFULL":
		return false, s.cmdVminFull(sess, w, fields)
	case "SHMOO":
		return false, s.cmdShmoo(sess, w, fields)
	case "VMEASURE":
		return false, s.cmdVMeasure(sess, w, fields)
	case "MONITOR":
		return false, s.cmdMonitor(r, w, fields)
	case "STATS":
		return false, s.cmdStats(w, fields)
	default:
		return false, fmt.Errorf("unknown command %q", verb)
	}
}

func (s *Server) domain(name string) (*platform.Domain, error) {
	return s.Bench.Platform.Domain(name)
}

func (s *Server) cmdInfo(w *bufio.Writer) error {
	var names []string
	for _, d := range s.Bench.Platform.Domains() {
		names = append(names, fmt.Sprintf("%s/%d", d.Spec.Name, d.Spec.TotalCores))
	}
	return writeLine(w, "%s %s %s", replyOK, s.Bench.Platform.Name, strings.Join(names, " "))
}

// cmdLoad reads a LOAD header and its program body. The client flushes the
// body together with the header, so on any validation error detected
// before the body has been consumed the declared lines MUST still be
// drained — otherwise the daemon would dispatch assembly lines as commands
// and the session would desync permanently.
func (s *Server) cmdLoad(sess *session, r *bufio.Reader, w *bufio.Writer, fields []string) error {
	if len(fields) != 4 {
		return fmt.Errorf("usage: LOAD <domain> <cores> <lines>")
	}
	lines, linesErr := intField(fields, 3, "lines")
	canDrain := linesErr == nil && lines >= 1 && lines <= maxProgramLines
	// drain consumes the program body the client already sent, keeping the
	// stream in sync while the command itself fails. Only possible when
	// the declared line count is sane.
	drain := func() {
		if !canDrain {
			return
		}
		for i := 0; i < lines; i++ {
			if _, err := readLine(r); err != nil {
				return
			}
		}
	}
	d, err := s.domain(fields[1])
	if err != nil {
		drain()
		return err
	}
	cores, err := intField(fields, 2, "cores")
	if err != nil {
		drain()
		return err
	}
	if cores < 1 || cores > d.Spec.TotalCores {
		drain()
		return fmt.Errorf("core count %d out of range [1, %d]", cores, d.Spec.TotalCores)
	}
	if linesErr != nil {
		return linesErr
	}
	if !canDrain {
		return fmt.Errorf("line count %d out of range", lines)
	}
	var body strings.Builder
	for i := 0; i < lines; i++ {
		ln, err := readLine(r)
		if err != nil {
			return fmt.Errorf("reading program: %v", err)
		}
		body.WriteString(ln)
		body.WriteByte('\n')
	}
	seq, err := isa.ParseProgram(d.Spec.Pool(), body.String())
	if err != nil {
		return err
	}
	if len(seq) == 0 {
		return fmt.Errorf("program has no instructions")
	}
	sess.current = &loaded{domain: d, load: platform.Load{Seq: seq, ActiveCores: cores}}
	sess.running = false
	return writeLine(w, "%s loaded %d", replyOK, len(seq))
}

func (s *Server) cmdRun(sess *session, w *bufio.Writer) error {
	if sess.current == nil {
		return fmt.Errorf("nothing loaded")
	}
	sess.running = true
	return writeLine(w, "%s running", replyOK)
}

func (s *Server) cmdStop(sess *session, w *bufio.Writer) error {
	sess.running = false
	return writeLine(w, "%s stopped", replyOK)
}

func (s *Server) cmdMeasure(sess *session, w *bufio.Writer, fields []string) error {
	samples := s.Bench.Samples
	if len(fields) > 1 {
		var err error
		samples, err = intField(fields, 1, "samples")
		if err != nil {
			return err
		}
		if samples < 1 || samples > 1000 {
			return fmt.Errorf("sample count %d out of range", samples)
		}
	}
	if sess.current == nil || !sess.running {
		return fmt.Errorf("no workload running")
	}
	cur := sess.current
	l := s.domLock(cur.domain.Spec.Name)
	l.RLock()
	m, err := s.Bench.EMMeasureN(cur.domain, cur.load, samples)
	l.RUnlock()
	if err != nil {
		return err
	}
	return writeLine(w, "%s %g %g %g", replyOK, m.PeakDBm, m.PeakHz, m.StdevDBm)
}

func (s *Server) cmdSweep(w *bufio.Writer, fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("usage: SWEEP <domain> <cores>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	cores, err := intField(fields, 2, "cores")
	if err != nil {
		return err
	}
	l := s.domLock(d.Spec.Name)
	l.RLock()
	res, err := s.Bench.FastResonanceSweep(d, cores)
	l.RUnlock()
	if err != nil {
		return err
	}
	return writeLine(w, "%s %g %g %d", replyOK, res.ResonanceHz, res.PeakDBm, len(res.Points))
}

// cmdVmin runs a V_MIN search (optionally repeated) on the currently
// loaded workload and reports the worst observed V_MIN.
func (s *Server) cmdVmin(sess *session, w *bufio.Writer, fields []string) error {
	repeats := 1
	if len(fields) > 1 {
		var err error
		repeats, err = intField(fields, 1, "repeats")
		if err != nil {
			return err
		}
		if repeats < 1 || repeats > 100 {
			return fmt.Errorf("repeat count %d out of range", repeats)
		}
	}
	if sess.current == nil {
		return fmt.Errorf("nothing loaded")
	}
	cur := sess.current
	l := s.domLock(cur.domain.Spec.Name)
	l.RLock()
	tester := vmin.NewTester(cur.domain, 1)
	res, _, err := tester.Repeat(cur.load, repeats)
	l.RUnlock()
	if err != nil {
		return err
	}
	return writeLine(w, "%s %g %g %s", replyOK, res.VminV, res.MarginV, res.Outcome)
}

func (s *Server) cmdSet(w *bufio.Writer, fields []string, set func(*platform.Domain, float64) error) error {
	if len(fields) != 3 {
		return fmt.Errorf("usage: %s <domain> <value>", fields[0])
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	v, err := floatField(fields, 2, "value")
	if err != nil {
		return err
	}
	l := s.domLock(d.Spec.Name)
	l.Lock()
	err = set(d, v)
	l.Unlock()
	if err != nil {
		return err
	}
	return writeLine(w, "%s", replyOK)
}

func (s *Server) cmdSetCores(w *bufio.Writer, fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("usage: SETCORES <domain> <n>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	n, err := intField(fields, 2, "cores")
	if err != nil {
		return err
	}
	l := s.domLock(d.Spec.Name)
	l.Lock()
	err = d.SetPoweredCores(n)
	l.Unlock()
	if err != nil {
		return err
	}
	return writeLine(w, "%s", replyOK)
}

func (s *Server) cmdReset(w *bufio.Writer, fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("usage: RESET <domain>")
	}
	d, err := s.domain(fields[1])
	if err != nil {
		return err
	}
	l := s.domLock(d.Spec.Name)
	l.Lock()
	d.Reset()
	l.Unlock()
	return writeLine(w, "%s", replyOK)
}
