package chaos

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer is a minimal line server: every request line gets "OK <line>".
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := fmt.Fprintf(conn, "OK %s", line); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// runSession sends n pings over one proxied connection and reports how
// many replies came back garbled and how many were received before the
// connection died.
func runSession(t *testing.T, addr string, n int) (garbled, received int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(conn, "ping %d\n", i); err != nil {
			return garbled, received
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		line, err := r.ReadString('\n')
		if err != nil {
			return garbled, received
		}
		received++
		if !strings.HasPrefix(line, "OK ping") {
			garbled++
		}
	}
	return garbled, received
}

// TestDeterministicFaults: the same seed must produce the same fault
// sequence on the same connection index — and a different seed a
// (generally) different one.
func TestDeterministicFaults(t *testing.T) {
	upstream := echoServer(t)
	run := func(seed int64) (int, int) {
		p, err := New(upstream, Config{Seed: seed, GarbleRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		g, rec := runSession(t, p.Addr(), 60)
		if rec != 60 {
			t.Fatalf("lost replies without drops configured: %d/60", rec)
		}
		if int(p.Stats().Garbles) != g {
			t.Fatalf("proxy counted %d garbles, client saw %d", p.Stats().Garbles, g)
		}
		return g, rec
	}
	g1, _ := run(7)
	g2, _ := run(7)
	if g1 != g2 {
		t.Fatalf("same seed, different garble counts: %d vs %d", g1, g2)
	}
	if g1 == 0 {
		t.Fatal("garble rate 0.3 over 60 replies produced nothing")
	}
}

// TestDrop: with certain drop probability the first reply never arrives
// and the connection dies.
func TestDrop(t *testing.T) {
	upstream := echoServer(t)
	p, err := New(upstream, Config{Seed: 1, DropRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, received := runSession(t, p.Addr(), 3)
	if received != 0 {
		t.Fatalf("received %d replies through a 100%% drop proxy", received)
	}
	if p.Stats().Drops < 1 {
		t.Fatalf("drop not counted: %+v", p.Stats())
	}
}

// TestDelay: delayed replies arrive late but intact.
func TestDelay(t *testing.T) {
	upstream := echoServer(t)
	p, err := New(upstream, Config{Seed: 3, DelayRate: 1, Delay: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	garbled, received := runSession(t, p.Addr(), 2)
	if received != 2 || garbled != 0 {
		t.Fatalf("received %d (garbled %d)", received, garbled)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("two certain delays of 150ms took only %v", elapsed)
	}
	if p.Stats().Delays != 2 {
		t.Fatalf("delays = %d, want 2", p.Stats().Delays)
	}
}

// TestKillActive severs live connections on demand.
func TestKillActive(t *testing.T) {
	upstream := echoServer(t)
	p, err := New(upstream, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if _, err := fmt.Fprintf(conn, "ping\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	p.KillActive()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "ping\n"); err == nil {
		if _, err := r.ReadString('\n'); err == nil {
			t.Fatal("connection survived KillActive")
		}
	}
}
