// Package chaos is a fault-injection TCP proxy for the lab protocol: it
// sits between a workstation client and a labtarget daemon and
// deterministically injects the failure modes a distributed measurement
// loop must tolerate — connections dropped mid-command (the reply is
// consumed and never delivered), replies delayed past the client's I/O
// deadline, and garbled reply lines. Fault decisions are drawn from
// deterministic streams (internal/detrand) keyed by the proxy seed and the
// connection's accept index, so a given connection always sees the same
// fault sequence and test runs are reproducible.
//
// Faults are injected only on the server-to-client reply path, one
// decision per reply line: the request always reaches the target, which is
// the hard case for the client — it must assume the command may have
// executed and rely on idempotent retry. Garbling prepends a byte that can
// never start a valid reply, so a corrupted line is always detectable
// (silently altering a measurement value would break the determinism
// contract the GA relies on).
package chaos

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detrand"
)

// Config sets the per-reply fault probabilities. Probabilities are
// evaluated in order garble, delay, drop — at most one fault fires per
// reply.
type Config struct {
	// Seed roots the deterministic fault streams.
	Seed int64
	// GarbleRate is the probability a reply line is corrupted in a way the
	// client is guaranteed to detect as a malformed reply.
	GarbleRate float64
	// DelayRate is the probability a reply is held back for Delay before
	// being forwarded (use a Delay beyond the client's IOTimeout to force
	// deadline expiries).
	DelayRate float64
	Delay     time.Duration
	// DropRate is the probability the connection is severed instead of
	// forwarding a reply: the target executed the command, the client
	// never hears back.
	DropRate float64
}

// Stats counts injected faults and proxied connections.
type Stats struct {
	Conns   int64
	Drops   int64
	Delays  int64
	Garbles int64
}

// Proxy is a running fault-injection proxy.
type Proxy struct {
	cfg      Config
	upstream string
	ln       net.Listener

	conns, drops, delays, garbles atomic.Int64

	mu     sync.Mutex
	active map[net.Conn]struct{} // client-side conns, for KillActive
	closed bool
}

// New starts a proxy on a fresh loopback port forwarding to upstream.
func New(upstream string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		cfg:      cfg,
		upstream: upstream,
		ln:       ln,
		active:   make(map[net.Conn]struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns a snapshot of the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:   p.conns.Load(),
		Drops:   p.drops.Load(),
		Delays:  p.delays.Load(),
		Garbles: p.garbles.Load(),
	}
}

// KillActive severs every connection currently flowing through the proxy —
// a deterministic way for tests to force a mid-session reconnect without
// relying on probabilistic drops.
func (p *Proxy) KillActive() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.active))
	for c := range p.active {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Close stops accepting and severs all active connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.KillActive()
	return err
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.conns.Add(1)
		go p.proxy(client, n-1)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.active[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.active, c)
}

// proxy shuttles one session. The request direction is copied verbatim;
// the reply direction is read line-by-line with one fault decision each,
// drawn from the connection's private deterministic stream.
func (p *Proxy) proxy(client net.Conn, index int64) {
	defer client.Close()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)

	server, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		return
	}
	defer server.Close()

	// Requests: verbatim copy until either side dies.
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if _, werr := server.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		// Stop the reply loop too: a half-dead session is of no use to
		// the line protocol.
		_ = server.Close()
		_ = client.Close()
	}()

	rng := detrand.Stream(p.cfg.Seed, uint64(index))
	r := bufio.NewReader(server)
	w := bufio.NewWriter(client)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		switch p.roll(rng) {
		case faultGarble:
			p.garbles.Add(1)
			// 0x15 (NAK) can never begin "OK"/"ERR", so the client always
			// classifies the line as malformed and retries.
			line = "\x15" + line
		case faultDelay:
			p.delays.Add(1)
			time.Sleep(p.cfg.Delay)
		case faultDrop:
			p.drops.Add(1)
			_ = server.Close()
			return
		}
		if _, err := w.WriteString(line); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

type fault int

const (
	faultNone fault = iota
	faultGarble
	faultDelay
	faultDrop
)

// roll makes one fault decision. A single uniform draw per reply keeps the
// stream advance rate fixed, so the decision sequence depends only on the
// seed and connection index — not on which faults fired earlier.
func (p *Proxy) roll(rng *rand.Rand) fault {
	x := rng.Float64()
	switch {
	case x < p.cfg.GarbleRate:
		return faultGarble
	case x < p.cfg.GarbleRate+p.cfg.DelayRate:
		return faultDelay
	case x < p.cfg.GarbleRate+p.cfg.DelayRate+p.cfg.DropRate:
		return faultDrop
	default:
		return faultNone
	}
}
