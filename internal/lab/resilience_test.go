package lab

import (
	"bufio"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/lab/chaos"
	"repro/internal/platform"
	"repro/internal/workload"
)

// fastOpts is a resilience envelope tuned for tests: short deadlines,
// aggressive retry, minimal backoff.
func fastOpts() Options {
	return Options{
		DialTimeout: 2 * time.Second,
		IOTimeout:   500 * time.Millisecond,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

// directBench builds an independent bench identical to startServer's, for
// computing the exact measurement a remote client must observe (the
// instruments are content-deterministic).
func directBench(t *testing.T) (*core.Bench, *platform.Domain) {
	t.Helper()
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBench(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 3
	d, err := p.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	return b, d
}

// TestLoadDesyncRegression is the satellite regression: a LOAD rejected
// before its body was read (unknown domain here) must still drain the
// declared body lines — otherwise the server dispatches assembly as
// commands and every later reply is off by the body length. On the old
// server the INFO below reads back "ERR unknown command ..." instead of
// the platform inventory.
func TestLoadDesyncRegression(t *testing.T) {
	addr, _ := startServer(t)
	rc := rawDial(t, addr)
	// Header plus the three body lines a well-behaved client flushes
	// together; the domain does not exist.
	if err := writeLine(rc.w, "LOAD no-such-domain 2 3\nADD R1, R2\nMUL R3, R4\nADD R5, R6"); err != nil {
		t.Fatal(err)
	}
	reply, err := readLine(rc.r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("bad LOAD accepted: %q", reply)
	}
	// The very next command must round-trip: its reply must be the INFO
	// payload, not a leftover complaint about a swallowed assembly line.
	reply = rc.send("INFO")
	if !strings.HasPrefix(reply, "OK juno") {
		t.Fatalf("session desynced after rejected LOAD: INFO -> %q", reply)
	}
	// Same for a LOAD rejected on the cores argument.
	if err := writeLine(rc.w, "LOAD cortex-a72 99 2\nADD R1, R2\nMUL R3, R4"); err != nil {
		t.Fatal(err)
	}
	if reply, err = readLine(rc.r); err != nil || !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("bad-cores LOAD -> %q, %v", reply, err)
	}
	if reply = rc.send("INFO"); !strings.HasPrefix(reply, "OK juno") {
		t.Fatalf("session desynced after bad-cores LOAD: INFO -> %q", reply)
	}
}

// TestReconnectReplay severs the connection between RUN and MEASURE and
// checks the client transparently reconnects, replays the session
// (setpoints + LOAD + RUN) and completes the measurement with the exact
// value a fault-free session yields.
func TestReconnectReplay(t *testing.T) {
	addr, _ := startServer(t)
	proxy, err := chaos.New(addr, chaos.Config{Seed: 1}) // no probabilistic faults
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := DialOptions(proxy.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	db, dd := directBench(t)
	pool := dd.Spec.Pool()
	seq, err := workload.Probe().Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetClock(platform.DomainA72, 600e6); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(platform.DomainA72, 2, pool, seq); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	// Kill the live connection: the next command must reconnect and
	// replay SETCORES + LOAD + RUN before retrying, or the target answers
	// "no workload running".
	proxy.KillActive()
	m, err := c.Measure(3)
	if err != nil {
		t.Fatalf("measure after severed connection: %v", err)
	}

	// SETCLOCK was replayed too, so the measurement must equal a direct
	// one at the same DVFS point.
	if err := dd.SetClockHz(600e6); err != nil {
		t.Fatal(err)
	}
	want, err := db.EMMeasureN(dd, platform.Load{Seq: seq, ActiveCores: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakDBm != want.PeakDBm || m.PeakHz != want.PeakHz {
		t.Fatalf("replayed measurement (%v, %v) != direct (%v, %v)",
			m.PeakDBm, m.PeakHz, want.PeakDBm, want.PeakHz)
	}

	st := c.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("stats: %d reconnects, want >= 1", st.Reconnects)
	}
	if st.Replays < 1 {
		t.Fatalf("stats: %d replays, want >= 1", st.Replays)
	}
	if st.Commands["MEASURE"].Retries < 1 {
		t.Fatalf("stats: MEASURE retries = %d, want >= 1", st.Commands["MEASURE"].Retries)
	}
}

// TestDeadlineExpiry points a client at a listener that never replies: the
// per-command deadline must fire and the command fail after MaxAttempts,
// quickly, instead of hanging forever.
func TestDeadlineExpiry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, never reply
		}
	}()

	opts := fastOpts()
	opts.IOTimeout = 100 * time.Millisecond
	opts.MaxAttempts = 2
	c, err := DialOptions(ln.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, _, err = c.Info()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("INFO against a mute server succeeded")
	}
	if IsTargetError(err) {
		t.Fatalf("deadline expiry classified as target error: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline path took %v", elapsed)
	}
	st := c.Stats()
	if st.Commands["INFO"].Retries != 1 || st.Commands["INFO"].Errors != 1 {
		t.Fatalf("INFO stats = %+v, want 1 retry, 1 error", st.Commands["INFO"])
	}
}

// TestTargetErrorNotRetried: an ERR reply is a healthy transport carrying
// a rejected command — it must surface immediately, not burn retries.
func TestTargetErrorNotRetried(t *testing.T) {
	addr, _ := startServer(t)
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.SetCores(platform.DomainA72, 99)
	if err == nil {
		t.Fatal("bad core count accepted")
	}
	if !IsTargetError(err) {
		t.Fatalf("ERR reply not classified as target error: %v", err)
	}
	st := c.Stats()
	if st.Commands["SETCORES"].Retries != 0 {
		t.Fatalf("target error was retried: %+v", st.Commands["SETCORES"])
	}
	// The session is still healthy.
	if _, _, err := c.Info(); err != nil {
		t.Fatalf("session dead after target error: %v", err)
	}
}

// TestGarbledPayloadRetried: an OK reply whose payload does not parse
// means the stream is suspect; the client must reconnect and retry rather
// than surface a parse error. A scripted fake server returns a truncated
// MEASURE payload once, then a well-formed one.
func TestGarbledPayloadRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conns := make(chan int, 16)
	go func() {
		n := 0
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n++
			conns <- n
			go func(conn net.Conn, id int) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				for {
					if _, err := readLine(r); err != nil {
						return
					}
					reply := "OK -40.5 7e+07 0.25"
					if id == 1 {
						reply = "OK -40.5" // truncated payload
					}
					if err := writeLine(w, "%s", reply); err != nil {
						return
					}
				}
			}(conn, n)
		}
	}()

	c, err := DialOptions(ln.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.Measure(3)
	if err != nil {
		t.Fatalf("measure through garbled payload: %v", err)
	}
	if m.PeakDBm != -40.5 || m.PeakHz != 7e7 || m.StdevDBm != 0.25 {
		t.Fatalf("measurement %+v", m)
	}
	st := c.Stats()
	if st.Commands["MEASURE"].Retries < 1 || st.Reconnects < 1 {
		t.Fatalf("garbled payload did not force retry+reconnect: %+v", st)
	}
}

// TestCloseReadsQuitReply: Close must round-trip QUIT (send and read the
// "OK bye") so the daemon sees an orderly teardown.
func TestCloseReadsQuitReply(t *testing.T) {
	addr, _ := startServer(t)
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := c.Stats()
	cs := st.Commands["QUIT"]
	if cs.Calls != 1 || cs.Errors != 0 {
		t.Fatalf("QUIT stats %+v: reply was not read back", cs)
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestServerShutdown: Shutdown must close the listener (Serve returns
// nil, not an accept error) and sever live handler connections.
func TestServerShutdown(t *testing.T) {
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBench(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(b)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	rc := rawDial(t, ln.Addr().String())
	if reply := rc.send("INFO"); !strings.HasPrefix(reply, "OK") {
		t.Fatalf("INFO -> %q", reply)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after Shutdown, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// The live session was severed.
	_ = rc.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if err := writeLine(rc.w, "INFO"); err == nil {
		if _, err := readLine(rc.r); err == nil {
			t.Fatal("handler still answering after Shutdown")
		}
	}
	// Serving again on a closed server refuses immediately.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if err := srv.Serve(ln2); err != ErrServerClosed {
		t.Fatalf("Serve after Shutdown = %v, want ErrServerClosed", err)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestPoolBasics: checkout/return, stats aggregation, close semantics.
func TestPoolBasics(t *testing.T) {
	addr, _ := startServer(t)
	pool, err := NewPool(addr, 3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 3 {
		t.Fatalf("size %d", pool.Size())
	}
	for i := 0; i < 5; i++ {
		if err := pool.Do(func(c *Client) error {
			_, _, err := c.Info()
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.Dials != 3 {
		t.Fatalf("pool dials = %d, want 3", st.Dials)
	}
	if st.Commands["INFO"].Calls != 5 {
		t.Fatalf("pooled INFO calls = %d, want 5", st.Commands["INFO"].Calls)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := pool.Do(func(*Client) error { return nil }); err != ErrClosed {
		t.Fatalf("Do after close = %v, want ErrClosed", err)
	}
	if _, err := NewPool("127.0.0.1:1", 2, Options{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("pool to closed port succeeded")
	}
}

// TestPoolChaosGAMatchesDirect is the PR's acceptance gate: a full GA run
// over 8 pooled clients, through a chaos proxy injecting seeded drops,
// delays past the I/O deadline and garbled replies, must produce exactly
// the result of a serial, fault-free, in-process run — faults and
// parallelism may cost wall-clock, never fidelity.
func TestPoolChaosGAMatchesDirect(t *testing.T) {
	// Direct, serial reference run.
	db, dd := directBench(t)
	ipool := dd.Spec.Pool()
	cfg := ga.DefaultConfig(ipool)
	cfg.PopulationSize = 8
	cfg.Generations = 4
	cfg.Parallelism = 1
	want, err := ga.Run(cfg, db.EMMeasurer(dd, 2), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Remote run: pool of 8 through the chaos proxy.
	addr, _ := startServer(t)
	proxy, err := chaos.New(addr, chaos.Config{
		Seed:       42,
		DropRate:   0.05,
		GarbleRate: 0.04,
		DelayRate:  0.005,
		Delay:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	pool, err := NewPool(proxy.Addr(), 8, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rcfg := cfg
	rcfg.Parallelism = 8
	got, err := ga.Run(rcfg, pool.Measurer(platform.DomainA72, 2, 3, ipool), nil)
	if err != nil {
		t.Fatal(err)
	}

	if got.Best.Fitness != want.Best.Fitness {
		t.Fatalf("remote best fitness %v != direct %v", got.Best.Fitness, want.Best.Fitness)
	}
	if !reflect.DeepEqual(got.History, want.History) {
		t.Fatal("remote GA history diverged from direct run")
	}
	cs := proxy.Stats()
	if cs.Drops+cs.Garbles+cs.Delays == 0 {
		t.Fatal("chaos proxy injected no faults; test is vacuous")
	}
	st := pool.Stats()
	if st.Reconnects == 0 {
		t.Fatal("transport never reconnected; test is vacuous")
	}
	t.Logf("chaos: %+v; transport: %d dials, %d reconnects, %d replays",
		cs, st.Dials, st.Reconnects, st.Replays)
}
