package lab

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// CommandStats aggregates the client-side view of one protocol verb.
type CommandStats struct {
	Calls   int64         // commands issued (counting each retried command once)
	Errors  int64         // commands that ultimately failed
	Retries int64         // extra attempts beyond the first
	Total   time.Duration // wall-clock across all calls, retries included
}

// Avg returns the mean wall-clock latency per call.
func (c CommandStats) Avg() time.Duration {
	if c.Calls == 0 {
		return 0
	}
	return c.Total / time.Duration(c.Calls)
}

// Stats is a snapshot of a Client's (or a Pool's aggregated) transport
// counters: how often it dialed, how often a fault forced a reconnect, how
// many setpoint replays those reconnects performed, and per-command
// latency/retry/error tallies. Surfaced by `gahunt -v`.
type Stats struct {
	Dials      int64 // connections established (including the first)
	Reconnects int64 // connections re-established after a transport fault
	Replays    int64 // setpoint/workload replay passes run on reconnect
	Commands   map[string]CommandStats
}

// merge folds other into s.
func (s *Stats) merge(other Stats) {
	s.Dials += other.Dials
	s.Reconnects += other.Reconnects
	s.Replays += other.Replays
	if s.Commands == nil {
		s.Commands = make(map[string]CommandStats)
	}
	for verb, cs := range other.Commands {
		cur := s.Commands[verb]
		cur.Calls += cs.Calls
		cur.Errors += cs.Errors
		cur.Retries += cs.Retries
		cur.Total += cs.Total
		s.Commands[verb] = cur
	}
}

// String renders the snapshot as a small human-readable table.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lab transport: %d dial(s), %d reconnect(s), %d replay(s)",
		s.Dials, s.Reconnects, s.Replays)
	verbs := make([]string, 0, len(s.Commands))
	for v := range s.Commands {
		verbs = append(verbs, v)
	}
	sort.Strings(verbs)
	for _, v := range verbs {
		cs := s.Commands[v]
		fmt.Fprintf(&b, "\n  %-8s %6d calls  %3d retries  %3d errors  avg %v",
			v, cs.Calls, cs.Retries, cs.Errors, cs.Avg().Round(time.Microsecond))
	}
	return b.String()
}

// statsCollector is the mutable counter set behind Stats. It has its own
// lock so the Pool can snapshot clients without stopping them.
type statsCollector struct {
	mu sync.Mutex
	s  Stats
}

func (sc *statsCollector) dial(reconnect bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.s.Dials++
	if reconnect {
		sc.s.Reconnects++
	}
}

func (sc *statsCollector) replay() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.s.Replays++
}

func (sc *statsCollector) retry(verb string) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.ensure(verb)
	cs := sc.s.Commands[verb]
	cs.Retries++
	sc.s.Commands[verb] = cs
}

func (sc *statsCollector) done(verb string, elapsed time.Duration, failed bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.ensure(verb)
	cs := sc.s.Commands[verb]
	cs.Calls++
	cs.Total += elapsed
	if failed {
		cs.Errors++
	}
	sc.s.Commands[verb] = cs
}

func (sc *statsCollector) ensure(verb string) {
	if sc.s.Commands == nil {
		sc.s.Commands = make(map[string]CommandStats)
	}
}

// snapshot returns a deep copy of the counters.
func (sc *statsCollector) snapshot() Stats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := sc.s
	out.Commands = make(map[string]CommandStats, len(sc.s.Commands))
	for v, cs := range sc.s.Commands {
		out.Commands[v] = cs
	}
	return out
}
