package lab

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ga"
	"repro/internal/isa"
)

// Pool is a fixed-size set of lab clients to one daemon. Each concurrent
// evaluation checks a client out, runs its command cycle on it, and
// returns it — so N GA workers drive N independent sessions instead of
// serializing on one stateful connection. Every client carries the full
// resilience envelope (deadlines, retry, reconnect, replay), and because
// the daemon's workload slot is per session, interleaved LOAD/RUN/MEASURE
// cycles from different clients cannot clobber each other.
type Pool struct {
	free chan *Client
	// done is closed by Close before the free channel is drained, so a Do
	// blocked on checkout wakes with ErrClosed instead of sleeping forever
	// on a channel Close has emptied.
	done chan struct{}

	mu      sync.Mutex
	clients []*Client
	closed  bool
}

// NewPool dials size concurrent clients (size < 1 is treated as 1). If any
// dial fails, the already-connected clients are closed and the error
// returned.
func NewPool(addr string, size int, opts Options) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{free: make(chan *Client, size), done: make(chan struct{})}
	for i := 0; i < size; i++ {
		c, err := DialOptions(addr, opts)
		if err != nil {
			_ = p.Close()
			return nil, fmt.Errorf("lab: pool client %d: %w", i, err)
		}
		p.clients = append(p.clients, c)
		p.free <- c
	}
	return p, nil
}

// Size returns the number of pooled clients.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.clients)
}

// Do checks a client out of the pool, runs fn on it, and returns it. A Do
// racing Close either completes normally (Close waits for the client to
// come back) or returns ErrClosed; it can never block forever — checkout
// selects against the pool's closed signal, so a Close that drains the
// free channel between Do's admission check and its receive wakes the
// blocked checkout instead of stranding it.
func (p *Pool) Do(fn func(*Client) error) error {
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case c := <-p.free:
		defer func() { p.free <- c }()
		return fn(c)
	case <-p.done:
		return ErrClosed
	}
}

// Measurer returns a concurrency-safe GA fitness function: each evaluation
// borrows a pooled client for its load/run/measure/stop cycle. Fitness is
// content-deterministic on the target (internal/detrand), so which client
// measures which individual — and any retries in between — cannot change
// the result, and a pooled run is bit-identical to a serial one.
func (p *Pool) Measurer(domain string, cores, samples int, pool *isa.Pool) ga.Measurer {
	return ga.MeasurerFunc(func(seq []isa.Inst) (float64, float64, error) {
		var fit, dom float64
		err := p.Do(func(c *Client) error {
			var err error
			fit, dom, err = measureOn(c, domain, cores, samples, pool, seq)
			return err
		})
		return fit, dom, err
	})
}

// Stats aggregates the transport counters of every pooled client.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out Stats
	for _, c := range p.clients {
		out.merge(c.Stats())
	}
	return out
}

// Close closes every pooled client (waiting for checked-out clients to be
// returned) and marks the pool unusable.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	clients := p.clients
	p.mu.Unlock()

	// Drain the free channel so in-flight Do calls finish first.
	var firstErr error
	deadline := time.After(30 * time.Second)
	for range clients {
		select {
		case <-p.free:
		case <-deadline:
			firstErr = fmt.Errorf("lab: pool close timed out waiting for busy clients")
		}
		if firstErr != nil {
			break
		}
	}
	for _, c := range clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
