// Package slab provides the grow-only scratch arena behind generation-
// batched evaluation: one Arena per batch worker hands out structure-of-
// arrays rows (current waveforms, half spectra, FFT scratch, received-power
// bins) from contiguous backing blocks, and a Reset rewinds the whole arena
// in O(1) instead of returning each row to a sync.Pool.
//
// Lifetime rules (see DESIGN.md §13): a row is valid until the next Reset of
// the arena that produced it, and must never escape into a cache or result —
// long-lived values (memoized spectra, measurements) are allocated normally.
// An Arena is not safe for concurrent use; batch paths keep one per worker.
package slab

// Arena is a grow-only bump allocator for float64 and complex128 rows.
// The zero value is ready to use.
type Arena struct {
	f    []float64
	c    []complex128
	fOff int
	cOff int
	// fNeed/cNeed accumulate the demand since the last Reset, so a block
	// that overflows mid-batch is regrown to the full batch footprint and
	// later batches of the same shape allocate nothing.
	fNeed int
	cNeed int
	used  int64 // bytes handed out since the last Reset
	high  int64 // high-water mark of used, across the arena's lifetime
}

// Floats returns a zeroed row of n float64s from the arena.
func (a *Arena) Floats(n int) []float64 {
	row := a.FloatsUninit(n)
	clear(row)
	return row
}

// FloatsUninit is Floats without the zeroing pass: the row may carry stale
// values from before the last Reset, so the caller must overwrite every
// element before reading any. Destinations that are filled wholesale
// (current waveforms, CombineInto outputs) use this to skip a memclr the
// fill would immediately overwrite.
func (a *Arena) FloatsUninit(n int) []float64 {
	if n <= 0 {
		return nil
	}
	a.fNeed += n
	if a.fOff+n > len(a.f) {
		// Earlier rows keep the old block alive through their own slice
		// headers; new rows come from a block sized for the whole batch.
		size := 2 * len(a.f)
		if size < a.fNeed {
			size = a.fNeed
		}
		a.f = make([]float64, size)
		a.fOff = 0
	}
	row := a.f[a.fOff : a.fOff+n : a.fOff+n]
	a.fOff += n
	a.account(int64(n) * 8)
	return row
}

// Complexes returns a zeroed row of n complex128s from the arena.
func (a *Arena) Complexes(n int) []complex128 {
	row := a.ComplexesUninit(n)
	clear(row)
	return row
}

// ComplexesUninit is Complexes without the zeroing pass; the same
// overwrite-before-read contract as FloatsUninit applies (FFT outputs and
// scratch are filled wholesale).
func (a *Arena) ComplexesUninit(n int) []complex128 {
	if n <= 0 {
		return nil
	}
	a.cNeed += n
	if a.cOff+n > len(a.c) {
		size := 2 * len(a.c)
		if size < a.cNeed {
			size = a.cNeed
		}
		a.c = make([]complex128, size)
		a.cOff = 0
	}
	row := a.c[a.cOff : a.cOff+n : a.cOff+n]
	a.cOff += n
	a.account(int64(n) * 16)
	return row
}

func (a *Arena) account(bytes int64) {
	a.used += bytes
	if a.used > a.high {
		a.high = a.used
	}
}

// Reset rewinds the arena: every outstanding row is invalidated and the
// backing capacity is retained for the next batch.
func (a *Arena) Reset() {
	a.fOff, a.cOff = 0, 0
	a.fNeed, a.cNeed = 0, 0
	a.used = 0
}

// HighWater returns the largest number of bytes the arena ever had handed
// out between Resets.
func (a *Arena) HighWater() int64 { return a.high }
