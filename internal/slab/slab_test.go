package slab

import "testing"

func TestArenaRowsDisjointAndZeroed(t *testing.T) {
	var a Arena
	r1 := a.Floats(100)
	r2 := a.Floats(50)
	for i := range r1 {
		r1[i] = 1
	}
	for _, v := range r2 {
		if v != 0 {
			t.Fatal("row not zeroed")
		}
	}
	r1[99] = 7
	if r2[0] != 0 {
		t.Fatal("rows overlap")
	}
	c1 := a.Complexes(8)
	c2 := a.Complexes(8)
	c1[7] = 1
	if c2[0] != 0 {
		t.Fatal("complex rows overlap")
	}
	// Appending to a full-capacity row must not bleed into its neighbour.
	r1 = append(r1, 5)
	if r2[0] != 0 {
		t.Fatal("append to a row clobbered the next row")
	}
}

func TestArenaResetReusesAndRezeroes(t *testing.T) {
	var a Arena
	r := a.Floats(64)
	for i := range r {
		r[i] = 3
	}
	p := &r[0]
	a.Reset()
	r2 := a.Floats(64)
	if &r2[0] != p {
		t.Fatal("reset did not reuse the backing block")
	}
	for _, v := range r2 {
		if v != 0 {
			t.Fatal("recycled row not zeroed")
		}
	}
}

func TestArenaGrowKeepsOldRowsValid(t *testing.T) {
	var a Arena
	r1 := a.Floats(10)
	for i := range r1 {
		r1[i] = float64(i)
	}
	// Force growth past the first block several times.
	for n := 1; n < 1000; n *= 3 {
		a.Floats(n)
	}
	for i, v := range r1 {
		if v != float64(i) {
			t.Fatalf("row written before growth corrupted at %d: %v", i, v)
		}
	}
}

func TestArenaHighWater(t *testing.T) {
	var a Arena
	a.Floats(100)    // 800 bytes
	a.Complexes(100) // +1600 bytes
	if got := a.HighWater(); got != 2400 {
		t.Fatalf("high-water %d bytes, want 2400", got)
	}
	a.Reset()
	a.Floats(10)
	if got := a.HighWater(); got != 2400 {
		t.Fatalf("high-water shrank to %d after reset", got)
	}
	a.Reset()
	// A batch after reset allocates nothing new when the shape repeats.
	r := a.Floats(100)
	if cap(r) != 100 {
		t.Fatalf("row capacity %d, want exactly 100", cap(r))
	}
}
