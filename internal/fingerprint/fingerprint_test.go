package fingerprint

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

// tamperedJuno builds a Juno with an interposer between package and board —
// the classic hardware-implant scenario. The shim adds series inductance to
// the power path, which drags the first-order resonance down.
func tamperedJuno(t *testing.T) *platform.Platform {
	t.Helper()
	ref, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	a72 := ref.Domains()[0].Spec
	a53 := ref.Domains()[1].Spec
	a72.PDN.LPkg *= 1.35
	p, err := platform.NewPlatform("juno-r2-tampered", ref.Antenna, a72, a53)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bench(t *testing.T, p *platform.Platform, seed int64) *core.Bench {
	t.Helper()
	b, err := core.NewBench(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 5
	return b
}

func TestGenuineBoardPasses(t *testing.T) {
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	// Reference at provisioning, re-check in the field (different noise).
	ref, err := Capture(bench(t, p, 1), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Capture(bench(t, p, 99), d, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare(ref, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tampered {
		t.Fatalf("genuine board flagged: %+v", rep)
	}
	if math.Abs(rep.ShiftHz) > 4e6 {
		t.Fatalf("benign re-sweep shifted %v Hz", rep.ShiftHz)
	}
}

func TestTamperedBoardCaught(t *testing.T) {
	genuine, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	dRef, err := genuine.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Capture(bench(t, genuine, 1), dRef, 2)
	if err != nil {
		t.Fatal(err)
	}

	tampered := tamperedJuno(t)
	dCur, err := tampered.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Capture(bench(t, tampered, 2), dCur, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare(ref, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tampered {
		t.Fatalf("tampered board passed: %+v", rep)
	}
	// Added series inductance -> resonance moved down.
	if rep.ShiftHz >= 0 {
		t.Fatalf("expected downward shift, got %v", rep.ShiftHz)
	}
}

func TestCompareValidation(t *testing.T) {
	fp := &Fingerprint{Domain: "x", CurveHz: []float64{1e6}, CurveDB: []float64{0}}
	other := &Fingerprint{Domain: "y", CurveHz: []float64{1e6}, CurveDB: []float64{0}}
	if _, err := Compare(nil, fp, DefaultThresholds()); err == nil {
		t.Error("nil reference accepted")
	}
	if _, err := Compare(fp, other, DefaultThresholds()); err == nil {
		t.Error("cross-domain comparison accepted")
	}
	if _, err := Compare(fp, fp, Thresholds{}); err == nil {
		t.Error("zero thresholds accepted")
	}
	disjoint := &Fingerprint{Domain: "x", CurveHz: []float64{9e6}, CurveDB: []float64{0}}
	if _, err := Compare(fp, disjoint, DefaultThresholds()); err == nil {
		t.Error("disjoint curves accepted")
	}
}

func TestCurveDeviationDetection(t *testing.T) {
	// Same resonance but a deformed curve must also trip the check.
	ref := &Fingerprint{
		Domain:      "x",
		ResonanceHz: 70e6,
		CurveHz:     []float64{60e6, 65e6, 70e6, 75e6},
		CurveDB:     []float64{-6, -2, 0, -3},
	}
	cur := &Fingerprint{
		Domain:      "x",
		ResonanceHz: 70.5e6,
		CurveHz:     []float64{60e6, 65e6, 70e6, 75e6},
		CurveDB:     []float64{-1, -8, 0, -9},
	}
	rep, err := Compare(ref, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tampered || rep.CurveRMSDB < 1.5 {
		t.Fatalf("curve deformation missed: %+v", rep)
	}
}

// A hot board is not a tampered board: the fingerprint must tolerate the
// resistance/capacitance drift of a 40 K temperature rise.
func TestTemperatureDriftPasses(t *testing.T) {
	cold, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	dCold, err := cold.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Capture(bench(t, cold, 1), dCold, 2)
	if err != nil {
		t.Fatal(err)
	}

	base, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	a72 := base.Domains()[0].Spec
	a53 := base.Domains()[1].Spec
	a72.PDN = a72.PDN.AtTemperature(40)
	hot, err := platform.NewPlatform("juno-hot", base.Antenna, a72, a53)
	if err != nil {
		t.Fatal(err)
	}
	dHot, err := hot.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Capture(bench(t, hot, 3), dHot, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare(ref, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tampered {
		t.Fatalf("hot board flagged as tampered: %+v", rep)
	}
}
