// Package fingerprint implements the tamper-detection use the paper
// motivates for its fast resonance sweep (Section 5.3: "post-production
// purposes like PDN simulation validation, tampering detection etc.").
//
// The idea: a board's first-order resonance and the shape of its EM sweep
// curve form an electrical fingerprint of the die-package-PCB assembly.
// Physical modifications — an implant drawing power from the rail, removed
// or added decoupling capacitors, a swapped board revision — change the
// capacitance or inductance and therefore shift the resonance or deform
// the curve, without any software-visible trace. Capturing a reference
// fingerprint at provisioning time and re-sweeping in the field detects
// such changes with nothing but the antenna.
package fingerprint

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/platform"
)

// Fingerprint is one captured electrical identity of a domain.
type Fingerprint struct {
	Domain      string
	ResonanceHz float64
	// Curve is the sweep amplitude (dBm) sampled at the loop frequencies
	// of the sweep, normalized so the maximum is 0 dB.
	CurveHz []float64
	CurveDB []float64
}

// Capture sweeps the domain and records its fingerprint. Fingerprinting is
// a provisioning-time operation, so the sweep always uses at least the
// paper's 30-sample averaging regardless of the bench's day-to-day setting:
// the comparison thresholds assume that noise level.
func Capture(b *core.Bench, d *platform.Domain, activeCores int) (*Fingerprint, error) {
	bb := *b
	if bb.Samples < 30 {
		bb.Samples = 30
	}
	sweep, err := bb.FastResonanceSweep(d, activeCores)
	if err != nil {
		return nil, err
	}
	fp := &Fingerprint{Domain: d.Spec.Name, ResonanceHz: sweep.ResonanceHz}
	maxDBm := math.Inf(-1)
	for _, pt := range sweep.Points {
		if pt.PeakDBm > maxDBm {
			maxDBm = pt.PeakDBm
		}
	}
	for _, pt := range sweep.Points {
		fp.CurveHz = append(fp.CurveHz, pt.LoopHz)
		fp.CurveDB = append(fp.CurveDB, pt.PeakDBm-maxDBm)
	}
	return fp, nil
}

// Thresholds configures the comparison sensitivity.
type Thresholds struct {
	// MaxShiftHz is the allowed resonance drift (aging and temperature
	// move it a little; tampering moves it a lot).
	MaxShiftHz float64
	// MaxCurveRMSDB is the allowed RMS deviation between the normalized
	// sweep curves.
	MaxCurveRMSDB float64
}

// DefaultThresholds returns limits loose enough for benign drift — sweep
// noise at 30-sample averaging alone puts ~1.3 dB RMS between two benign
// curves (with tails above 2 dB), and a ~40 K temperature swing moves the
// estimate by up to ~4.5 MHz on top — and tight enough to catch board
// rework (an interposer shifts the A72 resonance by ~10 MHz, and genuine
// curve deformations run ~5 dB RMS).
func DefaultThresholds() Thresholds {
	return Thresholds{MaxShiftHz: 5e6, MaxCurveRMSDB: 2.6}
}

// Report is the outcome of a fingerprint comparison.
type Report struct {
	ShiftHz    float64 // current - reference resonance
	CurveRMSDB float64 // RMS curve deviation at matching loop frequencies
	Tampered   bool
	Reason     string
}

// Compare checks a fresh fingerprint against the reference.
func Compare(reference, current *Fingerprint, th Thresholds) (*Report, error) {
	if reference == nil || current == nil {
		return nil, fmt.Errorf("fingerprint: nil fingerprint")
	}
	if reference.Domain != current.Domain {
		return nil, fmt.Errorf("fingerprint: comparing %s against %s",
			current.Domain, reference.Domain)
	}
	if th.MaxShiftHz <= 0 || th.MaxCurveRMSDB <= 0 {
		return nil, fmt.Errorf("fingerprint: invalid thresholds %+v", th)
	}
	rep := &Report{ShiftHz: current.ResonanceHz - reference.ResonanceHz}

	// Curve deviation: compare at loop frequencies present in both curves
	// (the clock grid is identical across sweeps of the same domain, but a
	// shifted resonance changes which points survive band filtering).
	refAt := make(map[int]float64, len(reference.CurveHz))
	for i, f := range reference.CurveHz {
		refAt[int(f/1e3)] = reference.CurveDB[i]
	}
	var acc float64
	n := 0
	for i, f := range current.CurveHz {
		ref, ok := refAt[int(f/1e3)]
		if !ok {
			continue
		}
		dv := current.CurveDB[i] - ref
		acc += dv * dv
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("fingerprint: no overlapping sweep points")
	}
	rep.CurveRMSDB = math.Sqrt(acc / float64(n))

	switch {
	case math.Abs(rep.ShiftHz) > th.MaxShiftHz:
		rep.Tampered = true
		rep.Reason = fmt.Sprintf("resonance shifted %+.2f MHz (limit ±%.2f)",
			rep.ShiftHz/1e6, th.MaxShiftHz/1e6)
	case rep.CurveRMSDB > th.MaxCurveRMSDB:
		rep.Tampered = true
		rep.Reason = fmt.Sprintf("sweep curve deviates %.2f dB RMS (limit %.2f)",
			rep.CurveRMSDB, th.MaxCurveRMSDB)
	default:
		rep.Reason = "within thresholds"
	}
	return rep, nil
}
