package instrument

import (
	"math"
	"testing"

	"repro/internal/detrand"
	"repro/internal/dsp"
	"repro/internal/pdn"
)

func a72Model(t *testing.T, cores int) *pdn.Model {
	t.Helper()
	p := pdn.Params{
		Name: "test-a72", VNominal: 1.0,
		CDieCore: 12e-9, CDieUncore: 7.3e-9, RDie: 0.020,
		LPkg: 138e-12, RPkgTrace: 0.4e-3,
		CPkg: 1e-6, ESRPkg: 10e-3, ESLPkg: 50e-12,
		LPcb: 2e-9, RPcbTrace: 1e-3,
		CPcb: 300e-6, ESRPcb: 2e-3, ESLPcb: 1e-9,
		LVrm: 20e-9, RVrm: 0.5e-3,
	}
	m, err := pdn.NewModel(p, cores)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewSpectrumAnalyzerValidation(t *testing.T) {
	if _, err := NewSpectrumAnalyzer("x", 100, 50, 1, 1); err == nil {
		t.Error("stop<start accepted")
	}
	if _, err := NewSpectrumAnalyzer("x", 0, 100, 0, 1); err == nil {
		t.Error("rbw=0 accepted")
	}
	if _, err := NewSpectrumAnalyzer("x", -5, 100, 1, 1); err == nil {
		t.Error("negative start accepted")
	}
}

func TestCaptureFindsTone(t *testing.T) {
	sa, err := NewSpectrumAnalyzer("e4402b", 9e3, 1.5e9, 1e6, 42)
	if err != nil {
		t.Fatal(err)
	}
	freqs := []float64{50e6, 67e6, 90e6}
	watts := []float64{0, 1e-6, 0} // -30 dBm at 67 MHz
	sweep, err := sa.Capture(freqs, watts)
	if err != nil {
		t.Fatal(err)
	}
	f, dbm := sweep.Peak()
	if math.Abs(f-67e6) > sa.RBWHz {
		t.Fatalf("peak at %v, want ~67 MHz", f)
	}
	if math.Abs(dbm-(-30)) > 3 {
		t.Fatalf("peak %v dBm, want ~-30", dbm)
	}
	if _, err := sa.Capture(freqs, watts[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCaptureNoiseFloor(t *testing.T) {
	sa, _ := NewSpectrumAnalyzer("x", 1e6, 100e6, 1e6, 7)
	sweep, err := sa.Capture(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, dbm := range sweep.DBm {
		if dbm > sa.NoiseFloorDBm+10 || dbm < sa.NoiseFloorDBm-20 {
			t.Fatalf("noise floor bin at %v dBm", dbm)
		}
	}
}

func TestPeakInBand(t *testing.T) {
	s := &Sweep{Freqs: []float64{10, 20, 30}, DBm: []float64{-10, -50, -5}}
	f, dbm, ok := s.PeakInBand(15, 25)
	if !ok || f != 20 || dbm != -50 {
		t.Fatalf("PeakInBand = %v %v %v", f, dbm, ok)
	}
	if _, _, ok := s.PeakInBand(100, 200); ok {
		t.Error("out-of-span band returned a peak")
	}
	empty := &Sweep{}
	if _, dbm := empty.Peak(); !math.IsInf(dbm, -1) {
		t.Error("empty sweep peak not -inf")
	}
}

func TestMeasurePeakAveragesNoise(t *testing.T) {
	sa, _ := NewSpectrumAnalyzer("x", 9e3, 1.5e9, 1e6, 99)
	freqs := []float64{67e6}
	watts := []float64{1e-6}
	m30, err := sa.MeasurePeak(freqs, watts, 50e6, 200e6, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m30.PeakDBm-(-30)) > 2 {
		t.Fatalf("averaged peak %v dBm, want ~-30", m30.PeakDBm)
	}
	if math.Abs(m30.PeakHz-67e6) > sa.RBWHz {
		t.Fatalf("dominant freq %v", m30.PeakHz)
	}
	if m30.Samples != 30 || m30.StdevDBm <= 0 {
		t.Fatalf("measurement metadata %+v", m30)
	}
	if _, err := sa.MeasurePeak(freqs, watts, 50e6, 200e6, 0); err == nil {
		t.Error("0 samples accepted")
	}
	if _, err := sa.MeasurePeak(freqs, watts, 2e9, 3e9, 3); err == nil {
		t.Error("band outside span accepted")
	}
}

func TestDSOValidate(t *testing.T) {
	if err := NewOCDSO(1).Validate(); err != nil {
		t.Errorf("OC-DSO invalid: %v", err)
	}
	if err := NewBenchScope(1).Validate(); err != nil {
		t.Errorf("bench scope invalid: %v", err)
	}
	bad := NewOCDSO(1)
	bad.Bits = 0
	if err := bad.Validate(); err == nil {
		t.Error("0-bit DSO accepted")
	}
}

func TestDSOCaptureTracksSignal(t *testing.T) {
	// A 10 MHz, 50 mV sine rides on 1 V; the OC-DSO must report its
	// peak-to-peak within quantization + noise error.
	const (
		f0  = 10e6
		amp = 0.025
	)
	n := 4096
	dt := 0.25e-9
	resp := &pdn.Response{Dt: dt, VDie: make([]float64, n), IDie: make([]float64, n)}
	for i := range resp.VDie {
		resp.VDie[i] = 1.0 + amp*math.Sin(2*math.Pi*f0*float64(i)*dt)
	}
	dso := NewOCDSO(5)
	trace, err := dso.Capture(resp)
	if err != nil {
		t.Fatal(err)
	}
	ptp := trace.PeakToPeak()
	if math.Abs(ptp-2*amp) > 0.008 {
		t.Fatalf("captured p2p %v, want ~%v", ptp, 2*amp)
	}
	droop := trace.MaxDroop(1.0)
	if math.Abs(droop-amp) > 0.006 {
		t.Fatalf("captured droop %v, want ~%v", droop, amp)
	}
	// The spectrum should spike at 10 MHz.
	freqs, amps := trace.Spectrum()
	pf, pa, ok := dsp.MaxInBand(freqs, amps, 1e6, 100e6)
	if !ok || pa < amp/2 {
		t.Fatalf("spectrum peak %v at %v", pa, pf)
	}
	if math.Abs(pf-f0) > 2e6 {
		t.Fatalf("spectrum peak at %v, want ~10 MHz", pf)
	}
}

func TestDSOCaptureErrors(t *testing.T) {
	dso := NewOCDSO(1)
	if _, err := dso.Capture(nil); err == nil {
		t.Error("nil response accepted")
	}
	if _, err := dso.Capture(&pdn.Response{Dt: 1e-12, VDie: []float64{1, 1, 1}}); err == nil {
		t.Error("too-short response accepted")
	}
}

func TestDSOBandwidthLimits(t *testing.T) {
	// A tone far above the scope bandwidth should be attenuated.
	mk := func(f0 float64) float64 {
		n := 8192
		dt := 0.05e-9
		resp := &pdn.Response{Dt: dt, VDie: make([]float64, n), IDie: make([]float64, n)}
		for i := range resp.VDie {
			resp.VDie[i] = 1.0 + 0.05*math.Sin(2*math.Pi*f0*float64(i)*dt)
		}
		dso := NewOCDSO(9)
		dso.NoiseSigmaV = 0 // isolate the filter
		trace, err := dso.Capture(resp)
		if err != nil {
			t.Fatal(err)
		}
		return trace.PeakToPeak()
	}
	low := mk(20e6)
	high := mk(3e9)
	if high > low/2 {
		t.Fatalf("no bandwidth roll-off: p2p %v at 3 GHz vs %v at 20 MHz", high, low)
	}
}

func TestSCLValidate(t *testing.T) {
	if err := NewSCL(0.5).Validate(); err != nil {
		t.Errorf("default SCL invalid: %v", err)
	}
	if err := (&SCL{AmpA: 0, Harmonics: 3, SamplesPerPeriod: 64}).Validate(); err == nil {
		t.Error("zero amplitude accepted")
	}
	if err := (&SCL{AmpA: 1, Harmonics: 0, SamplesPerPeriod: 64}).Validate(); err == nil {
		t.Error("0 harmonics accepted")
	}
	if err := (&SCL{AmpA: 1, Harmonics: 3, SamplesPerPeriod: 2}).Validate(); err == nil {
		t.Error("2 samples accepted")
	}
}

func TestSCLSweepFindsResonance(t *testing.T) {
	m := a72Model(t, 2)
	scl := NewSCL(0.5)
	dso := NewOCDSO(11)
	points, err := scl.Sweep(m, dso, 50e6, 90e6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 41 {
		t.Fatalf("got %d sweep points", len(points))
	}
	peak, err := PeakOfSweep(points)
	if err != nil {
		t.Fatal(err)
	}
	// The A72 PDN peak is calibrated at ~67 MHz; the paper reports a
	// flat-ish 66-72 MHz response, so allow that band.
	if peak.Freq < 63e6 || peak.Freq > 73e6 {
		t.Fatalf("SCL resonance at %v MHz, want 63-73", peak.Freq/1e6)
	}
	if peak.PtpV <= 0 {
		t.Fatal("zero swing at resonance")
	}
}

func TestSCLSweepWithOneCoreShiftsUp(t *testing.T) {
	scl := NewSCL(0.5)
	dso := NewOCDSO(13)
	p2, err := scl.Sweep(a72Model(t, 2), dso, 50e6, 110e6, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := scl.Sweep(a72Model(t, 1), dso, 50e6, 110e6, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	peak2, _ := PeakOfSweep(p2)
	peak1, _ := PeakOfSweep(p1)
	if peak1.Freq <= peak2.Freq {
		t.Fatalf("power-gating did not raise SCL resonance: %v vs %v", peak1.Freq, peak2.Freq)
	}
}

func TestSCLSweepErrors(t *testing.T) {
	m := a72Model(t, 2)
	scl := NewSCL(0.5)
	dso := NewOCDSO(1)
	if _, err := scl.Sweep(m, dso, 0, 1e6, 1e5); err == nil {
		t.Error("fLo=0 accepted")
	}
	if _, err := scl.Sweep(m, dso, 2e6, 1e6, 1e5); err == nil {
		t.Error("fHi<fLo accepted")
	}
	if _, err := scl.Sweep(m, dso, 1e6, 2e6, 0); err == nil {
		t.Error("step=0 accepted")
	}
	if _, err := PeakOfSweep(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	bad := &SCL{AmpA: -1, Harmonics: 3, SamplesPerPeriod: 64}
	if _, err := bad.Excite(m, 1e6); err == nil {
		t.Error("invalid SCL excite accepted")
	}
}

// TestMeasurePeakMatchesFullCapture: the banded fast path inside
// MeasurePeak must reproduce, bit for bit, what a full capture followed by
// PeakInBand yields for every sample — the skipped out-of-band work must
// not perturb the noise stream.
func TestMeasurePeakMatchesFullCapture(t *testing.T) {
	sa, err := NewSpectrumAnalyzer("ref", 1e6, 500e6, 1e6, 42)
	if err != nil {
		t.Fatal(err)
	}
	n := 300
	freqs := make([]float64, n)
	watts := make([]float64, n)
	for i := range freqs {
		freqs[i] = 1e6 + float64(i)*1.7e6
		watts[i] = 1e-9 * math.Abs(math.Sin(float64(i)))
	}
	watts[40] = 2e-6 // a clear in-band tone
	lo, hi := 50e6, 120e6
	const samples = 7

	m, err := sa.MeasurePeak(freqs, watts, lo, hi, samples)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: full sweeps via the unbanded capture path.
	h := detrand.HashFloats(freqs, watts)
	peaks := make([]float64, 0, samples)
	votes := map[float64]int{}
	for s := 0; s < samples; s++ {
		sweep := sa.capture(freqs, watts, detrand.Stream(sa.seed, h, uint64(s)))
		f, dbm, ok := sweep.PeakInBand(lo, hi)
		if !ok {
			t.Fatal("reference sweep found no in-band bin")
		}
		peaks = append(peaks, dbm)
		votes[f]++
	}
	var sum float64
	for _, dbm := range peaks {
		w := dsp.FromDBm(dbm)
		sum += w * w
	}
	wantPeak := dsp.DBm(math.Sqrt(sum / samples))
	if m.PeakDBm != wantPeak {
		t.Fatalf("banded PeakDBm %v != reference %v", m.PeakDBm, wantPeak)
	}
	var wantFreq float64
	best := -1
	for f, nv := range votes {
		if nv > best || (nv == best && f < wantFreq) {
			wantFreq, best = f, nv
		}
	}
	if m.PeakHz != wantFreq {
		t.Fatalf("banded PeakHz %v != reference %v", m.PeakHz, wantFreq)
	}

	// Out-of-band request still errors like the reference path.
	if _, err := sa.MeasurePeak(freqs, watts, 600e6, 700e6, 2); err == nil {
		t.Fatal("expected out-of-span error")
	}
}
