package instrument

import (
	"math"
	"testing"
)

func TestSDRValidateAndTune(t *testing.T) {
	s := NewRTLSDR(1)
	if err := s.Validate(); err != nil {
		t.Fatalf("default SDR invalid: %v", err)
	}
	bad := NewRTLSDR(1)
	bad.Bits = 0
	if err := bad.Validate(); err == nil {
		t.Error("0-bit SDR accepted")
	}
	if err := s.Tune(-1); err == nil {
		t.Error("negative centre accepted")
	}
	if err := s.Tune(70e6); err != nil {
		t.Fatal(err)
	}
	if s.Center() != 70e6 {
		t.Fatalf("centre %v", s.Center())
	}
}

func TestSDRCaptureErrors(t *testing.T) {
	s := NewRTLSDR(1)
	if _, err := s.CaptureIQ(nil, nil, 64); err == nil {
		t.Error("untuned capture accepted")
	}
	if err := s.Tune(70e6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CaptureIQ([]float64{1}, nil, 64); err == nil {
		t.Error("mismatched spectrum accepted")
	}
	if _, err := s.CaptureIQ(nil, nil, 1); err == nil {
		t.Error("1-sample capture accepted")
	}
}

func TestSDRSliceFindsInBandTone(t *testing.T) {
	s := NewRTLSDR(3)
	if err := s.Tune(70e6); err != nil {
		t.Fatal(err)
	}
	// -35 dBm tone at 70.5 MHz: inside the 2.4 MHz slice around 70 MHz.
	freqs := []float64{60e6, 70.5e6, 90e6}
	watts := []float64{1e-5, 3.16e-7, 1e-5}
	sweep, err := s.SliceSpectrum(freqs, watts, 2048)
	if err != nil {
		t.Fatal(err)
	}
	f, dbm := sweep.Peak()
	if math.Abs(f-70.5e6) > 5e3 {
		t.Fatalf("peak at %v, want 70.5 MHz", f)
	}
	if math.Abs(dbm-(-35)) > 3 {
		t.Fatalf("peak %v dBm, want ~-35", dbm)
	}
	// Frequencies must be ascending after the shift.
	for i := 1; i < len(sweep.Freqs); i++ {
		if sweep.Freqs[i] <= sweep.Freqs[i-1] {
			t.Fatal("slice frequencies not ascending")
		}
	}
}

func TestSDROutOfSliceToneInvisible(t *testing.T) {
	s := NewRTLSDR(5)
	if err := s.Tune(70e6); err != nil {
		t.Fatal(err)
	}
	// Strong tone 20 MHz away: completely outside the slice.
	sweep, err := s.SliceSpectrum([]float64{90e6}, []float64{1e-3}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	_, dbm := sweep.Peak()
	if dbm > -45 {
		t.Fatalf("out-of-slice tone leaked: %v dBm", dbm)
	}
}

func TestSDRScanCoversBandAndFindsPeak(t *testing.T) {
	s := NewRTLSDR(7)
	freqs := []float64{67e6, 120e6, 190e6}
	watts := []float64{1e-6, 1e-8, 1e-8} // -30, -50, -50 dBm
	sweep, err := s.Scan(freqs, watts, 50e6, 200e6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	f, dbm, ok := sweep.PeakInBand(50e6, 200e6)
	if !ok {
		t.Fatal("no in-band peak")
	}
	if math.Abs(f-67e6) > 10e3 {
		t.Fatalf("scan peak at %v, want 67 MHz", f)
	}
	if math.Abs(dbm-(-30)) > 3 {
		t.Fatalf("scan peak %v dBm, want ~-30", dbm)
	}
	// The secondary tones must also be visible above the scan floor.
	for _, target := range []float64{120e6, 190e6} {
		_, p, ok := sweep.PeakInBand(target-1e6, target+1e6)
		if !ok || p < -55 {
			t.Fatalf("tone at %v not visible: %v dBm", target, p)
		}
	}
	if _, err := s.Scan(freqs, watts, 0, 1e6, 256); err == nil {
		t.Error("invalid span accepted")
	}
}

func TestSDRAgreesWithAnalyzer(t *testing.T) {
	// The cheap receiver and the bench analyzer must identify the same
	// dominant frequency on the same incident spectrum.
	freqs := []float64{55e6, 67e6, 80e6, 150e6}
	watts := []float64{2e-8, 8e-7, 5e-8, 1e-8}

	sa, err := NewSpectrumAnalyzer("ref", 9e3, 1.5e9, 1e6, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sa.MeasurePeak(freqs, watts, 50e6, 200e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	sdr := NewRTLSDR(13)
	sweep, err := sdr.Scan(freqs, watts, 50e6, 200e6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	f, _, ok := sweep.PeakInBand(50e6, 200e6)
	if !ok {
		t.Fatal("no SDR peak")
	}
	if math.Abs(f-m.PeakHz) > 1.5e6 {
		t.Fatalf("SDR peak %v vs analyzer %v", f, m.PeakHz)
	}
}
