package instrument

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/pdn"
)

// SCL models the Juno's synthetic current load block: a configurable
// square-wave current sink on the Cortex-A72 rail, used in the paper
// (Figure 8) to locate the PDN resonance by sweeping the stimulus frequency
// and recording the peak-to-peak rail swing with the OC-DSO.
type SCL struct {
	// AmpA is the square-wave amplitude in amps (switching between 0 and
	// AmpA at 50% duty).
	AmpA float64
	// Harmonics bounds the Fourier synthesis of the stimulus.
	Harmonics int
	// SamplesPerPeriod sets the time resolution of the synthesized
	// response.
	SamplesPerPeriod int
	// Parallelism bounds the worker count of Sweep; 0 or 1 runs serially.
	// The sweep result is identical at any setting: points are collected
	// by index and every frequency's scope noise depends only on the
	// captured waveform (see package doc).
	Parallelism int
}

// NewSCL returns the default synthetic-current-load configuration.
func NewSCL(ampA float64) *SCL {
	return &SCL{AmpA: ampA, Harmonics: 63, SamplesPerPeriod: 256}
}

// Validate reports the first problem with the configuration.
func (s *SCL) Validate() error {
	if s.AmpA <= 0 || s.Harmonics < 1 || s.SamplesPerPeriod < 8 {
		return fmt.Errorf("instrument: invalid SCL config %+v", s)
	}
	return nil
}

// SweepPoint is one frequency step of an SCL sweep.
type SweepPoint struct {
	Freq float64 // stimulus frequency, Hz
	PtpV float64 // peak-to-peak rail voltage as captured by the DSO
}

// Excite drives the PDN model with the square wave at frequency f and
// returns the steady-state response over one period.
func (s *SCL) Excite(m *pdn.Model, f float64) (*pdn.Response, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	coeffs := pdn.SquareWaveCoeffs(s.AmpA, s.Harmonics)
	return m.HarmonicResponse(f, coeffs, s.SamplesPerPeriod)
}

// Sweep steps the stimulus from fLo to fHi and records the peak-to-peak
// voltage at each step through the given scope (paper Figure 8: 1 MHz
// steps around the resonance).
func (s *SCL) Sweep(m *pdn.Model, dso *DSO, fLo, fHi, stepHz float64) ([]SweepPoint, error) {
	if fLo <= 0 || fHi <= fLo || stepHz <= 0 {
		return nil, fmt.Errorf("instrument: invalid SCL sweep [%v, %v] step %v", fLo, fHi, stepHz)
	}
	var steps []float64
	for f := fLo; f <= fHi+stepHz/2; f += stepHz {
		steps = append(steps, f)
	}
	out := make([]SweepPoint, len(steps))
	err := par.ForEach(s.Parallelism, len(steps), func(i int) error {
		resp, err := s.Excite(m, steps[i])
		if err != nil {
			return err
		}
		trace, err := dso.Capture(tile(resp, 8))
		if err != nil {
			return err
		}
		out[i] = SweepPoint{Freq: steps[i], PtpV: trace.PeakToPeak()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// tile repeats a one-period response k times so scopes with coarser sample
// clocks see enough cycles to catch the extrema.
func tile(resp *pdn.Response, k int) *pdn.Response {
	n := len(resp.VDie)
	out := &pdn.Response{Dt: resp.Dt, VDie: make([]float64, n*k), IDie: make([]float64, n*k)}
	for i := 0; i < k; i++ {
		copy(out.VDie[i*n:], resp.VDie)
		copy(out.IDie[i*n:], resp.IDie)
	}
	return out
}

// PeakOfSweep returns the sweep point with the largest swing.
func PeakOfSweep(points []SweepPoint) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("instrument: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.PtpV > best.PtpV {
			best = p
		}
	}
	return best, nil
}
