package instrument

import (
	"fmt"
	"math"

	"repro/internal/detrand"
	"repro/internal/dsp"
	"repro/internal/pdn"
)

// DSO models a digital storage oscilloscope sampling a voltage rail: the
// Juno's on-chip power-supply monitor (OC-DSO, 1.6 GS/s) or a bench scope
// on differential probes at the AMD Kelvin pads.
type DSO struct {
	Model        string
	SampleRateHz float64
	BandwidthHz  float64 // single-pole analog bandwidth limit
	Bits         int     // ADC resolution
	FullScaleV   float64 // ADC full-scale range
	NoiseSigmaV  float64 // input-referred noise

	seed int64 // base of the per-capture noise streams
}

// NewOCDSO returns the Juno on-chip power-delivery monitor configuration
// (up to 1.6 GHz sampling of the Cortex-A72 rail).
func NewOCDSO(seed int64) *DSO {
	return &DSO{
		Model:        "juno-oc-dso",
		SampleRateHz: 1.6e9,
		BandwidthHz:  800e6,
		Bits:         10,
		FullScaleV:   1.6,
		NoiseSigmaV:  0.8e-3,
		seed:         seed,
	}
}

// NewBenchScope returns a bench oscilloscope with a differential probe on
// package Kelvin pads (more noise, lower usable bandwidth).
func NewBenchScope(seed int64) *DSO {
	return &DSO{
		Model:        "bench-scope-diff-probe",
		SampleRateHz: 2.0e9,
		BandwidthHz:  500e6,
		Bits:         8,
		FullScaleV:   2.0,
		NoiseSigmaV:  2.5e-3,
		seed:         seed,
	}
}

// Validate reports the first problem with the scope configuration.
func (d *DSO) Validate() error {
	if d.SampleRateHz <= 0 || d.BandwidthHz <= 0 || d.Bits < 1 || d.Bits > 24 ||
		d.FullScaleV <= 0 || d.NoiseSigmaV < 0 {
		return fmt.Errorf("instrument: invalid DSO config %+v", d)
	}
	return nil
}

// VoltageTrace is a captured rail-voltage record.
type VoltageTrace struct {
	Dt float64
	V  []float64
}

// Capture samples the die-voltage of a PDN response: band-limit with a
// single-pole filter, resample onto the scope clock, add noise, quantize.
func (d *DSO) Capture(resp *pdn.Response) (*VoltageTrace, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if resp == nil || len(resp.VDie) < 2 {
		return nil, fmt.Errorf("instrument: empty response")
	}
	// Single-pole low-pass at BandwidthHz on the source grid.
	alpha := 1 - math.Exp(-2*math.Pi*d.BandwidthHz*resp.Dt)
	filtered := make([]float64, len(resp.VDie))
	acc := resp.VDie[0]
	for i, v := range resp.VDie {
		acc += alpha * (v - acc)
		filtered[i] = acc
	}
	dtOut := 1 / d.SampleRateHz
	n := int(float64(len(filtered)) * resp.Dt / dtOut)
	if n < 2 {
		return nil, fmt.Errorf("instrument: response too short for %v GS/s", d.SampleRateHz/1e9)
	}
	out := dsp.Resample(filtered, resp.Dt, dtOut, n)
	h := detrand.NewHash()
	h.Float64(resp.Dt)
	h.Floats(resp.VDie)
	rng := detrand.Stream(d.seed, h.Sum())
	lsb := d.FullScaleV / float64(int(1)<<uint(d.Bits))
	for i := range out {
		v := out[i] + rng.NormFloat64()*d.NoiseSigmaV
		out[i] = math.Round(v/lsb) * lsb
	}
	return &VoltageTrace{Dt: dtOut, V: out}, nil
}

// MaxDroop returns the worst droop below vnom seen in the trace.
func (vt *VoltageTrace) MaxDroop(vnom float64) float64 {
	var worst float64
	for _, v := range vt.V {
		if droop := vnom - v; droop > worst {
			worst = droop
		}
	}
	return worst
}

// PeakToPeak returns the trace's peak-to-peak swing.
func (vt *VoltageTrace) PeakToPeak() float64 { return dsp.PeakToPeak(vt.V) }

// Spectrum returns the single-sided amplitude spectrum of the trace with
// the DC bin removed (the paper's Figure 9 compares this FFT view against
// the spectrum analyzer).
func (vt *VoltageTrace) Spectrum() (freqs, amps []float64) {
	freqs, amps = dsp.AmplitudeSpectrum(vt.V, 1/vt.Dt)
	if len(amps) > 0 {
		amps[0] = 0
	}
	return freqs, amps
}
