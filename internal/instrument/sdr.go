package instrument

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/detrand"
	"repro/internal/dsp"
)

// SDR models a cheap software-defined radio receiver (the paper notes that
// "cheaper commercial software-defined radio receivers should also work" as
// the sensing front end). Unlike the swept analyzer it digitizes a narrow
// complex-baseband slice around its tuned centre; covering the 50-200 MHz
// search band means hopping across it (Scan), which is slower and noisier
// but orders of magnitude cheaper — an RTL-SDR versus a bench analyzer.
type SDR struct {
	Model         string
	SampleRateHz  float64 // complex sample rate = usable bandwidth
	Bits          int     // ADC resolution (8 for RTL-SDR-class parts)
	NoiseFloorDBm float64 // equivalent noise power per capture bandwidth
	FullScaleV    float64 // ADC full-scale at the antenna port
	GainDB        float64 // front-end LNA gain ahead of the ADC

	centerHz float64
	seed     int64 // base of the per-capture noise streams
}

// NewRTLSDR returns an RTL-SDR-class receiver: 2.4 MS/s, 8 bits, a mediocre
// noise floor.
func NewRTLSDR(seed int64) *SDR {
	return &SDR{
		Model:         "rtl-sdr",
		SampleRateHz:  2.4e6,
		Bits:          8,
		NoiseFloorDBm: -80,
		FullScaleV:    0.5,
		GainDB:        30,
		seed:          seed,
	}
}

// Validate reports the first problem with the receiver configuration.
func (s *SDR) Validate() error {
	if s.SampleRateHz <= 0 || s.Bits < 1 || s.Bits > 16 || s.FullScaleV <= 0 {
		return fmt.Errorf("instrument: invalid SDR config %+v", s)
	}
	return nil
}

// Tune sets the receiver centre frequency.
func (s *SDR) Tune(centerHz float64) error {
	if centerHz <= 0 {
		return fmt.Errorf("instrument: invalid SDR centre %v", centerHz)
	}
	s.centerHz = centerHz
	return nil
}

// Center returns the tuned centre frequency.
func (s *SDR) Center() float64 { return s.centerHz }

// CaptureIQ digitizes n complex baseband samples of the incident power
// spectrum (freqs in Hz, powers in watts into 50 ohm). Spectral lines
// within ±SampleRate/2 of the centre appear as complex tones; thermal noise
// and quantization are added.
func (s *SDR) CaptureIQ(freqs, watts []float64, n int) ([]complex128, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.centerHz <= 0 {
		return nil, fmt.Errorf("instrument: SDR not tuned")
	}
	if len(freqs) != len(watts) {
		return nil, fmt.Errorf("instrument: spectrum length mismatch %d vs %d", len(freqs), len(watts))
	}
	if n < 2 {
		return nil, fmt.Errorf("instrument: need at least 2 IQ samples")
	}
	ch := detrand.NewHash()
	ch.Float64(s.centerHz)
	ch.Int(n)
	ch.Floats(freqs)
	ch.Floats(watts)
	rng := detrand.Stream(s.seed, ch.Sum())
	iq := make([]complex128, n)
	half := s.SampleRateHz / 2
	for i, f := range freqs {
		off := f - s.centerHz
		if off < -half || off >= half || watts[i] <= 0 {
			continue
		}
		// Amplitude of a tone of power P into 50 ohm: V = sqrt(2*P*50).
		amp := math.Sqrt(2 * watts[i] * 50)
		phase := rng.Float64() * 2 * math.Pi
		w := 2 * math.Pi * off / s.SampleRateHz
		for k := 0; k < n; k++ {
			iq[k] += complex(amp, 0) * cmplx.Exp(complex(0, w*float64(k)+phase))
		}
	}
	// Thermal noise spread across the capture bandwidth, then the LNA,
	// then quantization at the ADC. The recorded samples are referred back
	// to the antenna port (divided by the gain) so power readings stay
	// absolute.
	noiseV := math.Sqrt(dsp.FromDBm(s.NoiseFloorDBm) * 50)
	gain := math.Pow(10, s.GainDB/20)
	lsb := s.FullScaleV / float64(int(1)<<uint(s.Bits))
	for k := range iq {
		re := (real(iq[k]) + rng.NormFloat64()*noiseV) * gain
		im := (imag(iq[k]) + rng.NormFloat64()*noiseV) * gain
		iq[k] = complex(math.Round(re/lsb)*lsb/gain, math.Round(im/lsb)*lsb/gain)
	}
	return iq, nil
}

// SliceSpectrum captures one IQ buffer and returns the power spectrum of
// the tuned slice: absolute frequencies and dBm per bin.
func (s *SDR) SliceSpectrum(freqs, watts []float64, n int) (*Sweep, error) {
	iq, err := s.CaptureIQ(freqs, watts, n)
	if err != nil {
		return nil, err
	}
	spec := dsp.FFT(iq)
	out := &Sweep{Freqs: make([]float64, n), DBm: make([]float64, n)}
	for k := 0; k < n; k++ {
		// FFT bin k maps to baseband offset; shift to centre the slice.
		off := float64(k) / float64(n) * s.SampleRateHz
		if k >= n/2 {
			off -= s.SampleRateHz
		}
		amp := cmplx.Abs(spec[k]) / float64(n)
		p := amp * amp / (2 * 50) // tone power into 50 ohm
		out.Freqs[k] = s.centerHz + off
		out.DBm[k] = dsp.DBm(p)
	}
	// Order bins by ascending absolute frequency.
	ordered := &Sweep{Freqs: make([]float64, n), DBm: make([]float64, n)}
	idx := 0
	for k := n / 2; k < n; k++ {
		ordered.Freqs[idx], ordered.DBm[idx] = out.Freqs[k], out.DBm[k]
		idx++
	}
	for k := 0; k < n/2; k++ {
		ordered.Freqs[idx], ordered.DBm[idx] = out.Freqs[k], out.DBm[k]
		idx++
	}
	return ordered, nil
}

// Scan hops the receiver across [lo, hi] and stitches the slice spectra
// into one sweep, the way cheap SDR spectrum tools cover wide spans.
func (s *SDR) Scan(freqs, watts []float64, lo, hi float64, samplesPerSlice int) (*Sweep, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("instrument: invalid scan span [%v, %v]", lo, hi)
	}
	usable := s.SampleRateHz * 0.8 // skip slice edges (filter roll-off)
	out := &Sweep{}
	for center := lo + usable/2; center-usable/2 < hi; center += usable {
		if err := s.Tune(center); err != nil {
			return nil, err
		}
		slice, err := s.SliceSpectrum(freqs, watts, samplesPerSlice)
		if err != nil {
			return nil, err
		}
		for i, f := range slice.Freqs {
			if f < center-usable/2 || f >= center+usable/2 || f < lo || f > hi {
				continue
			}
			out.Freqs = append(out.Freqs, f)
			out.DBm = append(out.DBm, slice.DBm[i])
		}
	}
	if len(out.Freqs) == 0 {
		return nil, fmt.Errorf("instrument: scan produced no bins")
	}
	return out, nil
}
