package instrument

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/pdn"
)

// The order-independence contract: a measurement's noise depends only on the
// instrument seed and the measured content, never on what was measured
// before it. These tests interleave unrelated measurements and check the
// readings are unchanged — the property the parallel evaluation engine
// rests on.

func TestSpectrumCaptureOrderIndependent(t *testing.T) {
	sa, _ := NewSpectrumAnalyzer("x", 9e3, 1.5e9, 1e6, 42)
	freqsA, wattsA := []float64{67e6}, []float64{1e-6}
	freqsB, wattsB := []float64{120e6, 130e6}, []float64{2e-7, 3e-7}

	alone, err := sa.Capture(freqsA, wattsA)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave other work, then repeat the same capture.
	if _, err := sa.Capture(freqsB, wattsB); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.MeasurePeak(freqsB, wattsB, 100e6, 150e6, 7); err != nil {
		t.Fatal(err)
	}
	again, err := sa.Capture(freqsA, wattsA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alone, again) {
		t.Fatal("capture changed after unrelated measurements")
	}

	// Different content and different seeds must still differ.
	other, _ := sa.Capture(freqsB, wattsB)
	if reflect.DeepEqual(alone, other) {
		t.Fatal("different spectra produced identical traces")
	}
	sa2, _ := NewSpectrumAnalyzer("x", 9e3, 1.5e9, 1e6, 43)
	reseeded, _ := sa2.Capture(freqsA, wattsA)
	if reflect.DeepEqual(alone, reseeded) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestMeasurePeakSamplesAreIndependent(t *testing.T) {
	sa, _ := NewSpectrumAnalyzer("x", 9e3, 1.5e9, 1e6, 7)
	freqs, watts := []float64{67e6}, []float64{1e-6}
	m1, err := sa.MeasurePeak(freqs, watts, 50e6, 200e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sa.MeasurePeak(freqs, watts, 50e6, 200e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("repeated MeasurePeak of the same content differs")
	}
	// The per-sample streams vary with the sample index, so the sweeps
	// averaged inside one measurement must actually spread.
	if m1.StdevDBm <= 0 {
		t.Fatalf("samples identical within a measurement: %+v", m1)
	}
}

func TestDSOCaptureOrderIndependent(t *testing.T) {
	mkResp := func(amp float64) *pdn.Response {
		n := 256
		resp := &pdn.Response{Dt: 1e-9, VDie: make([]float64, n)}
		for i := range resp.VDie {
			resp.VDie[i] = 0.9 + amp*math.Sin(2*math.Pi*float64(i)/32)
		}
		return resp
	}
	d := NewOCDSO(5)
	alone, err := d.Capture(mkResp(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Capture(mkResp(0.05)); err != nil {
		t.Fatal(err)
	}
	again, err := d.Capture(mkResp(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alone, again) {
		t.Fatal("DSO capture changed after an unrelated capture")
	}
}

func TestSDRCaptureOrderIndependent(t *testing.T) {
	s := NewRTLSDR(9)
	if err := s.Tune(67e6); err != nil {
		t.Fatal(err)
	}
	freqs, watts := []float64{67e6}, []float64{1e-7}
	alone, err := s.CaptureIQ(freqs, watts, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CaptureIQ([]float64{66e6}, []float64{1e-8}, 512); err != nil {
		t.Fatal(err)
	}
	again, err := s.CaptureIQ(freqs, watts, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alone, again) {
		t.Fatal("SDR capture changed after an unrelated capture")
	}
}
