// Package instrument simulates the measurement equipment of the paper's
// Section 4: spectrum analyzers (Agilent E4402B / N9342C class) fed by the
// loop antenna, the Juno's on-chip digital storage oscilloscope (OC-DSO),
// a bench oscilloscope with differential probes on the AMD Kelvin pads,
// and the synthetic current load (SCL) block.
//
// Instruments are intentionally imperfect: they re-bin onto their
// resolution bandwidth, add a noise floor and per-sweep measurement noise,
// band-limit, and quantize — so measurement-driven loops (the GA) face the
// same jitter the real methodology does, and the paper's 30-sample
// averaging is actually necessary.
//
// Noise model: every instrument draws its measurement noise from a
// deterministic stream derived from (instrument seed, content hash of the
// request, sample index) — see internal/detrand. Measuring the same signal
// always yields the same reading no matter how many other measurements ran
// before it or on which goroutine, which makes the instruments lock-free
// and lets the GA and the sweeps evaluate concurrently with bit-identical
// results at any parallelism setting.
package instrument

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/detrand"
	"repro/internal/dsp"
)

// SpectrumAnalyzer models a swept-tuned analyzer.
type SpectrumAnalyzer struct {
	Model         string
	StartHz       float64
	StopHz        float64
	RBWHz         float64 // resolution bandwidth: power integrates per RBW bin
	NoiseFloorDBm float64
	NoiseSigmaDB  float64 // per-bin Gaussian measurement noise, in dB

	seed int64 // base of the per-request noise streams
}

// NewSpectrumAnalyzer returns an analyzer spanning [startHz, stopHz] with
// the given resolution bandwidth. The seed fixes the measurement-noise
// stream so experiments are reproducible.
func NewSpectrumAnalyzer(model string, startHz, stopHz, rbwHz float64, seed int64) (*SpectrumAnalyzer, error) {
	if startHz < 0 || stopHz <= startHz || rbwHz <= 0 {
		return nil, fmt.Errorf("instrument: invalid span [%v, %v] rbw %v", startHz, stopHz, rbwHz)
	}
	return &SpectrumAnalyzer{
		Model:         model,
		StartHz:       startHz,
		StopHz:        stopHz,
		RBWHz:         rbwHz,
		NoiseFloorDBm: -90,
		NoiseSigmaDB:  0.8,
		seed:          seed,
	}, nil
}

// ContentHash identifies the analyzer's complete measurement behaviour:
// every reading is a deterministic function of (signal, these parameters,
// seed), so two analyzers with equal hashes produce bit-identical readings
// and a persisted measurement may be replayed for either. The unexported
// noise seed is included — two analyzers differing only in seed measure
// different values.
func (sa *SpectrumAnalyzer) ContentHash() uint64 {
	h := detrand.NewHash()
	h.String(sa.Model)
	h.Float64(sa.StartHz)
	h.Float64(sa.StopHz)
	h.Float64(sa.RBWHz)
	h.Float64(sa.NoiseFloorDBm)
	h.Float64(sa.NoiseSigmaDB)
	h.Uint64(uint64(sa.seed))
	return h.Sum()
}

// Sweep is one analyzer trace.
type Sweep struct {
	Freqs []float64 // RBW bin centres, Hz
	DBm   []float64 // measured power per bin
}

// Peak returns the marker peak of the sweep.
func (s *Sweep) Peak() (freq, dbm float64) {
	if len(s.DBm) == 0 {
		return 0, math.Inf(-1)
	}
	best := 0
	for i, v := range s.DBm {
		if v > s.DBm[best] {
			best = i
		}
	}
	return s.Freqs[best], s.DBm[best]
}

// PeakInBand returns the strongest bin within [lo, hi].
func (s *Sweep) PeakInBand(lo, hi float64) (freq, dbm float64, ok bool) {
	dbm = math.Inf(-1)
	for i, f := range s.Freqs {
		if f < lo || f > hi {
			continue
		}
		if s.DBm[i] > dbm {
			freq, dbm, ok = f, s.DBm[i], true
		}
	}
	return freq, dbm, ok
}

// Capture performs one sweep over an incident power spectrum (freqs in Hz,
// powers in watts, e.g. from em.CombinedSpectrum): incident power is summed
// into RBW bins, the noise floor is added, and per-bin measurement noise is
// applied. The noise is a deterministic function of the analyzer seed and
// the spectrum content, so capturing the same signal twice gives the same
// trace; MeasurePeak varies the sample index to model sweep-to-sweep noise.
func (sa *SpectrumAnalyzer) Capture(freqs, watts []float64) (*Sweep, error) {
	if len(freqs) != len(watts) {
		return nil, fmt.Errorf("instrument: spectrum length mismatch %d vs %d", len(freqs), len(watts))
	}
	return sa.capture(freqs, watts, detrand.Stream(sa.seed, detrand.HashFloats(freqs, watts), 0)), nil
}

// nBins returns the analyzer's RBW bin count.
func (sa *SpectrumAnalyzer) nBins() int {
	n := int(math.Ceil((sa.StopHz - sa.StartHz) / sa.RBWHz))
	if n < 1 {
		n = 1
	}
	return n
}

// rebin sums the incident spectrum into the analyzer's RBW bins. The
// result depends only on the spectrum, not on any noise draw, so repeated
// sweeps over the same signal share one re-binning pass.
func (sa *SpectrumAnalyzer) rebin(freqs, watts []float64) []float64 {
	acc := make([]float64, sa.nBins())
	sa.rebinInto(acc, freqs, watts)
	return acc
}

// rebinInto is rebin onto a caller-provided (zeroed) prefix of the bin
// grid; incident power falling past len(acc) is dropped, which is exact
// when the caller never reads those bins.
func (sa *SpectrumAnalyzer) rebinInto(acc, freqs, watts []float64) {
	for i, f := range freqs {
		if f < sa.StartHz || f >= sa.StopHz {
			continue
		}
		bin := int((f - sa.StartHz) / sa.RBWHz)
		if bin >= 0 && bin < len(acc) {
			acc[bin] += watts[i]
		}
	}
}

// freqVote is one per-sweep peak-bin tally. A short slice replaces the
// map: samples is small (3–30), so a linear scan is cheaper than hashing
// and the winner — highest count, ties to the lowest frequency — is the
// same either way.
type freqVote struct {
	f float64
	n int
}

// peakScratch carries MeasurePeak's per-call accumulators — the re-binned
// power buffer, the per-sweep peaks, and the peak-bin votes — between
// calls, so a sweep campaign's measurement loop allocates only its
// Measurement. The acc buffer grows monotonically toward the widest band
// measured, after which every call reuses it.
type peakScratch struct {
	acc   []float64
	peaks []float64
	votes []freqVote
}

func (sc *peakScratch) accFor(n int) []float64 {
	if cap(sc.acc) < n {
		sc.acc = make([]float64, n)
		return sc.acc
	}
	sc.acc = sc.acc[:n]
	clear(sc.acc)
	return sc.acc
}

var peakScratchPool = sync.Pool{New: func() any { return new(peakScratch) }}

// BinCenters returns the center frequencies of n RBW bins starting at
// startHz. It is the single definition of the analyzer's frequency grid:
// capture uses it to label sweeps, and the lab client uses it to
// reconstruct a remote sweep's Freqs from (n, startHz, rbwHz) alone —
// bit-identically, because both sides evaluate the same expression on the
// same operands.
func BinCenters(startHz, rbwHz float64, n int) []float64 {
	freqs := make([]float64, n)
	for b := 0; b < n; b++ {
		freqs[b] = startHz + (float64(b)+0.5)*rbwHz
	}
	return freqs
}

// capture is the noise-source-explicit sweep used by Capture and MeasurePeak.
func (sa *SpectrumAnalyzer) capture(freqs, watts []float64, rng *rand.Rand) *Sweep {
	acc := sa.rebin(freqs, watts)
	nBins := len(acc)
	sweep := &Sweep{Freqs: BinCenters(sa.StartHz, sa.RBWHz, nBins), DBm: make([]float64, nBins)}
	floor := dsp.FromDBm(sa.NoiseFloorDBm)
	for b := 0; b < nBins; b++ {
		p := acc[b] + floor*(0.5+rng.Float64())
		sweep.DBm[b] = dsp.DBm(p) + rng.NormFloat64()*sa.NoiseSigmaDB
	}
	return sweep
}

// Measurement is the paper's GA fitness observable: the peak amplitude in a
// band, averaged over repeated sweeps ("the metric used for maximum EM
// amplitude is the mean root square of 30 samples", Section 3.1).
type Measurement struct {
	PeakDBm  float64 // RMS-averaged peak power
	PeakHz   float64 // dominant frequency (mode of the per-sweep peaks)
	Samples  int
	StdevDBm float64
}

// MeasurePeak takes samples sweeps over the incident spectrum and returns
// the averaged in-band peak. The dominant frequency is the most frequent
// per-sweep peak bin, which rejects occasional noise-floor wins.
func (sa *SpectrumAnalyzer) MeasurePeak(freqs, watts []float64, lo, hi float64, samples int) (*Measurement, error) {
	if samples < 1 {
		return nil, fmt.Errorf("instrument: need at least 1 sample, got %d", samples)
	}
	if len(freqs) != len(watts) {
		return nil, fmt.Errorf("instrument: spectrum length mismatch %d vs %d", len(freqs), len(watts))
	}
	// The frequency grid is a long-lived axis shared by every measurement on
	// a platform, so its hash-state prefix is memoized; only the watts fold
	// runs per call.
	h := detrand.HashFloatsFrom(detrand.GridState(freqs), watts)
	// Banded sweep, bit-identical to a full capture + PeakInBand: the noise
	// stream is consumed strictly in bin order, so bins past the band's
	// upper edge — whose draws come after every in-band draw — can be
	// skipped outright (the rebin never even accumulates them), and bins
	// below the lower edge consume their two draws but skip the dBm
	// conversion.
	nBins := sa.nBins()
	bLimit := 0
	for bLimit < nBins && sa.StartHz+(float64(bLimit)+0.5)*sa.RBWHz <= hi {
		bLimit++
	}
	sc := peakScratchPool.Get().(*peakScratch)
	acc := sc.accFor(bLimit) // noise-independent; shared by all samples
	sa.rebinInto(acc, freqs, watts)
	floor := dsp.FromDBm(sa.NoiseFloorDBm)
	peaks := sc.peaks[:0]
	votes := sc.votes[:0]
	for s := 0; s < samples; s++ {
		rng := detrand.PooledStream(sa.seed, h, uint64(s))
		peakF, peakDBm, ok := 0.0, math.Inf(-1), false
		for b := 0; b < len(acc); b++ {
			f := sa.StartHz + (float64(b)+0.5)*sa.RBWHz
			u := rng.Float64()
			g := rng.NormFloat64()
			if f < lo {
				continue
			}
			dbm := dsp.DBm(acc[b]+floor*(0.5+u)) + g*sa.NoiseSigmaDB
			if dbm > peakDBm {
				peakF, peakDBm, ok = f, dbm, true
			}
		}
		detrand.Recycle(rng)
		if !ok {
			sc.peaks, sc.votes = peaks, votes
			peakScratchPool.Put(sc)
			return nil, fmt.Errorf("instrument: band [%v, %v] outside analyzer span", lo, hi)
		}
		peaks = append(peaks, peakDBm)
		voted := false
		for i := range votes {
			if votes[i].f == peakF {
				votes[i].n++
				voted = true
				break
			}
		}
		if !voted {
			votes = append(votes, freqVote{f: peakF, n: 1})
		}
	}
	// RMS in linear power terms, reported in dBm.
	var sum float64
	for _, dbm := range peaks {
		w := dsp.FromDBm(dbm)
		sum += w * w
	}
	rms := math.Sqrt(sum / float64(samples))
	mean := dsp.Mean(peaks)
	var varAcc float64
	for _, dbm := range peaks {
		varAcc += (dbm - mean) * (dbm - mean)
	}
	var domFreq float64
	best := -1
	for _, v := range votes {
		if v.n > best || (v.n == best && v.f < domFreq) {
			domFreq, best = v.f, v.n
		}
	}
	sc.peaks, sc.votes = peaks, votes
	peakScratchPool.Put(sc)
	return &Measurement{
		PeakDBm:  dsp.DBm(rms),
		PeakHz:   domFreq,
		Samples:  samples,
		StdevDBm: math.Sqrt(varAcc / float64(samples)),
	}, nil
}
