package core

// Disk tier under the batch measurement memo. A memoized batch entry is
// two floats — a finished EM measurement (peak dBm, dominant Hz) — but a
// disk hit for one skips the entire pipeline: simulator, PDN, FFT, antenna
// fold and analyzer sweeps. A repeat campaign from a cold process (the
// warm-start benchmark) therefore pays hash lookups where the first run
// paid measurements.
//
// The in-memory batchMemoKey is scoped to one bench over one platform; the
// disk store is shared, so the disk key additionally folds the domain's
// Spec content hash and the analyzer's content hash (model, span, RBW,
// noise parameters and the unexported noise seed — measured values embed
// seeded instrument noise, so two analyzers differing only in seed must
// never share persisted readings).

import (
	"sync/atomic"

	"repro/internal/castore"
	"repro/internal/detrand"
	"repro/internal/platform"
)

// measNS is the store namespace for finished EM measurements.
const measNS = "meas"

// measCodecVersion is bumped whenever the payload layout or any producer
// of the measured values changes meaning; stale entries read as misses.
const measCodecVersion = 1

var measPersist atomic.Pointer[castore.Store]

// SetPersistentStore installs (nil removes) the disk-backed tier under the
// batch measurement memo and returns the previous store.
func SetPersistentStore(s *castore.Store) (prev *castore.Store) {
	return measPersist.Swap(s)
}

// PersistentStore returns the installed disk tier, or nil.
func PersistentStore() *castore.Store { return measPersist.Load() }

// measDiskKey folds the bench identity (domain spec, analyzer) into the
// in-memory memo key.
func measDiskKey(k batchMemoKey, specHash, analyzerHash uint64) uint64 {
	h := detrand.NewHash()
	h.Uint64(specHash)
	h.Uint64(analyzerHash)
	h.Uint64(k.load)
	h.Uint64(k.em)
	h.Int(k.powered)
	h.Float64(k.clock)
	h.Float64(k.supply)
	h.Float64(k.dt)
	h.Int(k.n)
	h.Int(k.samples)
	h.Float64(k.bandLo)
	h.Float64(k.bandHi)
	return h.Sum()
}

// encodeMeas flattens one measurement with its full identity echoed first
// for verification on decode.
func encodeMeas(k batchMemoKey, specHash, analyzerHash uint64, fit, dom float64) []byte {
	enc := castore.NewEnc(14 * 8)
	enc.Uint64(specHash)
	enc.Uint64(analyzerHash)
	enc.Uint64(k.load)
	enc.Uint64(k.em)
	enc.Int(k.powered)
	enc.Float64(k.clock)
	enc.Float64(k.supply)
	enc.Float64(k.dt)
	enc.Int(k.n)
	enc.Int(k.samples)
	enc.Float64(k.bandLo)
	enc.Float64(k.bandHi)
	enc.Float64(fit)
	enc.Float64(dom)
	return enc.Bytes()
}

// decodeMeas parses a stored measurement, returning ok=false on any
// truncation or identity mismatch (a cross-bench key collision).
func decodeMeas(payload []byte, k batchMemoKey, specHash, analyzerHash uint64) (fit, dom float64, ok bool) {
	dec := castore.NewDec(payload)
	sh := dec.Uint64()
	ah := dec.Uint64()
	load := dec.Uint64()
	em := dec.Uint64()
	powered := dec.Int()
	clock := dec.Float64()
	supply := dec.Float64()
	dt := dec.Float64()
	n := dec.Int()
	samples := dec.Int()
	bandLo := dec.Float64()
	bandHi := dec.Float64()
	fit = dec.Float64()
	dom = dec.Float64()
	if dec.Finish() != nil {
		return 0, 0, false
	}
	if sh != specHash || ah != analyzerHash || load != k.load || em != k.em ||
		powered != k.powered || clock != k.clock || supply != k.supply ||
		dt != k.dt || n != k.n || samples != k.samples ||
		bandLo != k.bandLo || bandHi != k.bandHi {
		return 0, 0, false
	}
	return fit, dom, true
}

// measDisk wraps the store with the bench identity so emMeasureBatch's hot
// loop carries one value instead of three.
type measDisk struct {
	s        *castore.Store
	specHash uint64
	anaHash  uint64
}

// newMeasDisk returns the disk view for a batch over domain d, or a zero
// view (get misses, put no-ops) when no store is installed.
func newMeasDisk(b *Bench, d *platform.Domain) measDisk {
	s := measPersist.Load()
	if s == nil {
		return measDisk{}
	}
	return measDisk{s: s, specHash: d.SpecContentHash(), anaHash: b.Analyzer.ContentHash()}
}

func (md measDisk) get(k batchMemoKey) (fit, dom float64, ok bool) {
	if md.s == nil {
		return 0, 0, false
	}
	payload, found := md.s.Get(measNS, measCodecVersion, measDiskKey(k, md.specHash, md.anaHash))
	if !found {
		return 0, 0, false
	}
	return decodeMeas(payload, k, md.specHash, md.anaHash)
}

func (md measDisk) put(k batchMemoKey, fit, dom float64) {
	if md.s == nil {
		return
	}
	_ = md.s.Put(measNS, measCodecVersion, measDiskKey(k, md.specHash, md.anaHash),
		encodeMeas(k, md.specHash, md.anaHash, fit, dom))
}
