// Package core implements the paper's contribution: EM-driven PDN
// characterization. A Bench couples a platform to a loop antenna and a
// spectrum analyzer and provides:
//
//   - EM-driven dI/dt virus generation: a ga.Measurer whose fitness is the
//     peak received EM amplitude in the first-order-resonance band
//     (Sections 3 and 5.1).
//   - Direct-voltage-driven measurers (max droop, peak-to-peak) for the
//     validation viruses on domains that expose voltage (OC-DSO, Kelvin
//     pads).
//   - The fast resonance sweep of Section 5.3: run a fixed two-phase probe
//     loop, sweep the CPU clock to modulate the loop frequency, and read
//     the resonance off the EM spike maximum.
//   - Simultaneous multi-domain monitoring (Section 6.1): all domains
//     radiate into the same antenna, so concurrent viruses show both
//     spectral signatures in one sweep.
package core

import (
	"fmt"
	"sync"

	"repro/internal/em"
	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/uarch"
)

// Band is the frequency band searched for the first-order resonance
// (50-200 MHz per Section 3.1).
type Band struct {
	Lo, Hi float64
}

// DefaultBand returns the paper's 50-200 MHz search band.
func DefaultBand() Band { return Band{Lo: 50e6, Hi: 200e6} }

// Bench is a measurement setup: a platform under test, the antenna above
// it, and the spectrum analyzer.
type Bench struct {
	Platform *platform.Platform
	Analyzer *instrument.SpectrumAnalyzer
	Band     Band
	// Samples is the number of analyzer sweeps averaged per measurement
	// (the paper uses 30).
	Samples int
	// Dt and N define the electrical analysis grid; the FFT bin width
	// 1/(N·Dt) bounds the frequency resolution.
	Dt float64
	N  int
	// Parallelism bounds the worker count of the bench's sweeps
	// (FastResonanceSweep); 0 or 1 runs serially. Results are identical at
	// any setting.
	Parallelism int

	// batch holds the generation-batched evaluation state (measurement memo,
	// worker arenas, counters). A pointer so shallow bench copies — the
	// backends' per-request re-sampled views — share one state; see batch.go.
	batch *batchState
}

// NewBench assembles a bench with the paper's defaults: an E4402B-class
// analyzer spanning 9 kHz-1.5 GHz at 1 MHz RBW, 30-sample averaging, and a
// ~0.5 MHz analysis grid.
func NewBench(p *platform.Platform, seed int64) (*Bench, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil platform")
	}
	sa, err := instrument.NewSpectrumAnalyzer("agilent-e4402b", 9e3, 1.5e9, 1e6, seed)
	if err != nil {
		return nil, err
	}
	return &Bench{
		Platform: p,
		Analyzer: sa,
		Band:     DefaultBand(),
		Samples:  30,
		Dt:       0.25e-9,
		N:        8192,
		batch:    newBatchState(),
	}, nil
}

// Validate reports the first problem with the bench configuration.
func (b *Bench) Validate() error {
	switch {
	case b.Platform == nil:
		return fmt.Errorf("core: bench has no platform")
	case b.Analyzer == nil:
		return fmt.Errorf("core: bench has no analyzer")
	case b.Band.Lo <= 0 || b.Band.Hi <= b.Band.Lo:
		return fmt.Errorf("core: invalid band [%v, %v]", b.Band.Lo, b.Band.Hi)
	case b.Samples < 1:
		return fmt.Errorf("core: %d samples", b.Samples)
	case b.Dt <= 0 || b.N < 16:
		return fmt.Errorf("core: invalid analysis grid dt=%v n=%d", b.Dt, b.N)
	case b.Parallelism < 0:
		return fmt.Errorf("core: negative parallelism %d", b.Parallelism)
	}
	return nil
}

// EMMeasure runs a workload on one domain and measures the received EM
// peak in the bench band: the paper's GA fitness observable.
func (b *Bench) EMMeasure(d *platform.Domain, l platform.Load) (*instrument.Measurement, error) {
	return b.EMMeasureN(d, l, b.Samples)
}

// EMMeasureN is EMMeasure with an explicit averaging count, for callers
// that vary the sample count per request (the lab daemon's MEASURE
// command) without mutating — or copying — the shared bench.
func (b *Bench) EMMeasureN(d *platform.Domain, l platform.Load, samples int) (*instrument.Measurement, error) {
	return b.emMeasure(d, l, samples, nil)
}

// wattsPool recycles the received-power buffer between measurements; the
// measurement itself only retains rebinned analyzer data, never this
// intermediate spectrum.
var wattsPool sync.Pool

func getWatts(n int) []float64 {
	if p, _ := wattsPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putWatts(w []float64) {
	if cap(w) == 0 {
		return
	}
	wattsPool.Put(&w)
}

func (b *Bench) emMeasure(d *platform.Domain, l platform.Load, samples int, lin *uarch.Lineage) (*instrument.Measurement, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: %d samples", samples)
	}
	freqs, _, iAmp, _, err := d.SpectraLineage(l, b.Dt, b.N, lin)
	if err != nil {
		return nil, err
	}
	watts := getWatts(len(freqs))
	_, err = em.CombineInto(watts, b.Platform.Antenna, []em.Emitter{
		{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath},
	})
	if err != nil {
		putWatts(watts)
		return nil, err
	}
	m, err := b.Analyzer.MeasurePeak(freqs, watts, b.Band.Lo, b.Band.Hi, samples)
	putWatts(watts)
	return m, err
}

// uarchLineage converts a GA breeding lineage into the simulator's hint
// form. A nil hint (gen-0 individuals, elites) means no prefix reuse.
func uarchLineage(lin *ga.Lineage) *uarch.Lineage {
	if lin == nil {
		return nil
	}
	return &uarch.Lineage{Diverge: lin.Diverge}
}

// emMeasurer adapts EMMeasure into a GA fitness function: fitness is the
// averaged peak power in dBm (tournament selection only needs ranks, so
// the dB compression is harmless), and the dominant frequency is the
// per-sweep modal peak bin. It implements ga.LineageMeasurer so bred
// children resume the micro-architectural simulation from their parent's
// checkpointed prefix.
type emMeasurer struct {
	b           *Bench
	d           *platform.Domain
	activeCores int
}

// Measure implements ga.Measurer.
func (m emMeasurer) Measure(seq []isa.Inst) (float64, float64, error) {
	return m.MeasureLineage(seq, nil)
}

// MeasureLineage implements ga.LineageMeasurer; results are bit-identical
// to Measure for any lineage value.
func (m emMeasurer) MeasureLineage(seq []isa.Inst, lin *ga.Lineage) (float64, float64, error) {
	meas, err := m.b.emMeasure(m.d, platform.Load{Seq: seq, ActiveCores: m.activeCores}, m.b.Samples, uarchLineage(lin))
	if err != nil {
		return 0, 0, err
	}
	return meas.PeakDBm, meas.PeakHz, nil
}

// EMMeasurer returns the GA fitness measurer for one domain; the returned
// value also implements ga.LineageMeasurer.
func (b *Bench) EMMeasurer(d *platform.Domain, activeCores int) ga.Measurer {
	return emMeasurer{b: b, d: d, activeCores: activeCores}
}

// DroopMeasurer is the validation fitness of Section 5.1: maximum voltage
// droop observed through a scope on a direct-visibility domain (the Juno
// OC-DSO or the AMD Kelvin pads).
func (b *Bench) DroopMeasurer(d *platform.Domain, activeCores int, dso *instrument.DSO) ga.Measurer {
	return b.voltageMeasurer(d, activeCores, dso, func(tr *instrument.VoltageTrace, nominal float64) float64 {
		return tr.MaxDroop(nominal)
	})
}

// PtpMeasurer optimizes peak-to-peak rail swing instead of droop.
func (b *Bench) PtpMeasurer(d *platform.Domain, activeCores int, dso *instrument.DSO) ga.Measurer {
	return b.voltageMeasurer(d, activeCores, dso, func(tr *instrument.VoltageTrace, _ float64) float64 {
		return tr.PeakToPeak()
	})
}

func (b *Bench) voltageMeasurer(d *platform.Domain, activeCores int, dso *instrument.DSO,
	metric func(*instrument.VoltageTrace, float64) float64) ga.Measurer {
	return vMeasurer{b: b, d: d, activeCores: activeCores, dso: dso, metric: metric}
}

// vMeasurer is the direct-voltage fitness backend; like emMeasurer it
// implements ga.LineageMeasurer so bred children reuse their parent's
// checkpointed simulation prefix.
type vMeasurer struct {
	b           *Bench
	d           *platform.Domain
	activeCores int
	dso         *instrument.DSO
	metric      func(*instrument.VoltageTrace, float64) float64
}

// Measure implements ga.Measurer.
func (m vMeasurer) Measure(seq []isa.Inst) (float64, float64, error) {
	return m.MeasureLineage(seq, nil)
}

// MeasureLineage implements ga.LineageMeasurer; results are bit-identical
// to Measure for any lineage value.
func (m vMeasurer) MeasureLineage(seq []isa.Inst, lin *ga.Lineage) (float64, float64, error) {
	if m.d.Spec.VoltageVisibility == "none" {
		return 0, 0, fmt.Errorf("core: domain %s has no voltage visibility", m.d.Spec.Name)
	}
	l := platform.Load{Seq: seq, ActiveCores: m.activeCores}
	resp, _, err := m.d.SteadyResponseLineage(l, m.b.Dt, m.b.N, uarchLineage(lin))
	if err != nil {
		return 0, 0, err
	}
	trace, err := m.dso.Capture(resp)
	if err != nil {
		return 0, 0, err
	}
	freqs, amps := trace.Spectrum()
	var domHz, domAmp float64
	for i, f := range freqs {
		if f < m.b.Band.Lo || f > m.b.Band.Hi {
			continue
		}
		if amps[i] > domAmp {
			domHz, domAmp = f, amps[i]
		}
	}
	return m.metric(trace, m.d.SupplyVolts()), domHz, nil
}

// GenerateVirus runs the GA against the EM fitness on one domain and
// returns the evolved dI/dt virus.
func (b *Bench) GenerateVirus(d *platform.Domain, cfg ga.Config, activeCores int,
	progress func(ga.GenerationStats)) (*ga.Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return ga.Run(cfg, b.EMMeasurer(d, activeCores), progress)
}
