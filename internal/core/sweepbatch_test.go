package core

import (
	"reflect"
	"testing"

	"repro/internal/em"
	"repro/internal/platform"
	"repro/internal/uarch"
)

// scalarSweepPointAt is the pre-batch reference implementation of one
// sweep point — the exact per-point pipeline SweepPointAt ran before it
// was rebased onto SweepBatch — kept here as the bit-identity baseline.
func scalarSweepPointAt(t *testing.T, b *Bench, d *platform.Domain, activeCores int, clockHz float64) *SweepPoint {
	t.Helper()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	probe, err := buildProbe(d)
	if err != nil {
		t.Fatal(err)
	}
	clock, err := d.SnapClock(clockHz)
	if err != nil {
		t.Fatal(err)
	}
	l := platform.Load{Seq: probe, ActiveCores: activeCores}
	loopHz, _, err := d.LoopHzAt(l, b.Dt, b.N, clock)
	if err != nil {
		t.Fatal(err)
	}
	if loopHz <= 0 {
		t.Fatalf("probe loop frequency unresolved at %v Hz", clock)
	}
	if loopHz < b.Band.Lo || loopHz > b.Band.Hi {
		return nil
	}
	freqs, _, iAmp, _, err := d.SpectraAt(l, b.Dt, b.N, clock)
	if err != nil {
		t.Fatal(err)
	}
	_, watts, err := em.CombinedSpectrum(b.Platform.Antenna, []em.Emitter{
		{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	binW := 1 / (float64(b.N) * b.Dt)
	half := b.Analyzer.RBWHz + 2*binW
	m, err := b.Analyzer.MeasurePeak(freqs, watts, loopHz-half, loopHz+half, b.Samples)
	if err != nil {
		t.Fatal(err)
	}
	return &SweepPoint{ClockHz: clock, LoopHz: loopHz, PeakDBm: m.PeakDBm}
}

// TestSweepBatchMatchesScalar is the whole-campaign pin: the batched sweep
// must reproduce the per-point reference pipeline point for point — same
// in-band set, same bits — at serial and wide parallelism, with the trace
// cache on and off. The scalar reference runs on a separate platform
// instance so the batch cannot be served by caches the reference warmed.
func TestSweepBatchMatchesScalar(t *testing.T) {
	refBench, refPlat := testBench(t)
	refDom := dom(t, refPlat, platform.DomainA72)
	steps := SweepClockSteps(refDom)
	want := make([]*SweepPoint, len(steps))
	for i, clock := range steps {
		want[i] = scalarSweepPointAt(t, refBench, refDom, 2, clock)
	}
	inBand := 0
	for _, pt := range want {
		if pt != nil {
			inBand++
		}
	}
	if inBand == 0 || inBand == len(want) {
		t.Fatalf("degenerate grid: %d/%d in band", inBand, len(want))
	}

	for _, cache := range []bool{true, false} {
		for _, workers := range []int{1, 8} {
			uarch.ResetTraceCache()
			prev := uarch.SetTraceCacheEnabled(cache)
			b, p := testBench(t)
			b.Parallelism = workers
			got, err := b.SweepBatch(dom(t, p, platform.DomainA72), 2, steps)
			uarch.SetTraceCacheEnabled(prev)
			if err != nil {
				t.Fatalf("cache=%v workers=%d: %v", cache, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cache=%v workers=%d: batched sweep diverges from scalar reference", cache, workers)
			}
		}
	}
	uarch.ResetTraceCache()
}

// TestSweepBatchSizesSpectraCache: a campaign wider than the configured
// memo cap must raise the cap so one grid pass cannot thrash itself.
func TestSweepBatchSizesSpectraCache(t *testing.T) {
	b, p := testBench(t)
	d := dom(t, p, platform.DomainA72)
	d.SetSpectraCacheCap(2)
	steps := SweepClockSteps(d)
	if _, err := b.SweepBatch(d, 2, steps); err != nil {
		t.Fatal(err)
	}
	if got := d.SpectraCacheCap(); got < len(steps) {
		t.Fatalf("campaign of %d points left cap at %d", len(steps), got)
	}
}

// TestSweepBatchEmptyAndSinglePoint: the degenerate shapes the fleet layer
// leans on — an empty grid and the one-point SWEEPAT shard form.
func TestSweepBatchEmptyAndSinglePoint(t *testing.T) {
	b, p := testBench(t)
	d := dom(t, p, platform.DomainA72)
	pts, err := b.SweepBatch(d, 2, nil)
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty grid: %v, %d points", err, len(pts))
	}
	steps := SweepClockSteps(d)
	whole, err := b.SweepBatch(d, 2, steps)
	if err != nil {
		t.Fatal(err)
	}
	for i, clock := range steps {
		pt, err := b.SweepPointAt(d, 2, clock)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pt, whole[i]) {
			t.Fatalf("single-point batch at %v diverges from whole-grid batch", clock)
		}
	}
}
