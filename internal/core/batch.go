package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/detrand"
	"repro/internal/em"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/par"
	"repro/internal/platform"
	"repro/internal/slab"
)

// BatchStats summarizes the bench's generation-batched EM evaluations for
// the CLIs' -v output.
type BatchStats struct {
	Batches    uint64 // MeasureBatch calls
	Items      uint64 // individuals across all batches
	Measured   uint64 // individuals actually measured after dedup + memo
	DedupHits  uint64 // individuals served by an identical batchmate
	MemoHits   uint64 // individuals served by the cross-generation memo
	ArenaBytes uint64 // high-water slab bytes across one batch's workers
	Workers    uint64 // distinct worker slots exercised by the widest batch
}

// String renders the stats as the one-line summary the CLIs print.
func (s BatchStats) String() string {
	return fmt.Sprintf("batch eval: %d batches / %d items (%d measured), %d dedup hits / %d memo hits, arena high-water %d B, %d worker slots",
		s.Batches, s.Items, s.Measured, s.DedupHits, s.MemoHits, s.ArenaBytes, s.Workers)
}

// batchMemoCap bounds the cross-generation measurement memo (mirrors the
// spectra cache's sizing: a few generations of a large population).
const batchMemoCap = 512

// batchMemoKey identifies a finished EM measurement by content, exactly the
// way the spectra cache keys its entries: the load's content hash plus
// everything else the measured value depends on. Entries are tiny (two
// floats), so memoized repeats — elites re-measured every generation,
// converged clones — skip the whole pipeline, including the simulator.
type batchMemoKey struct {
	load uint64
	// em is the content hash of the receive chain (antenna parameters and
	// the domain's coupling path): a shallow bench copy with a retuned
	// antenna shares batchState, and without this field it would be served
	// another antenna's memoized fitness.
	em             uint64
	powered        int
	clock, supply  float64
	dt             float64
	n, samples     int
	bandLo, bandHi float64
}

// emIdentity content-hashes everything between the domain's feed current
// and the analyzer input: the antenna's response parameters and the
// domain's radiating path. Together with the key's band and sample fields
// it pins the memoized value to the full receive chain.
func emIdentity(ant em.Antenna, path em.Path) uint64 {
	h := detrand.NewHash()
	h.Float64(ant.SelfResonanceHz)
	h.Float64(ant.Q)
	h.Float64(ant.FeedOhms)
	h.Float64(ant.SystemOhms)
	h.Float64(path.DistanceM)
	h.Float64(path.CouplingK)
	h.Float64(path.RefHz)
	h.Float64(path.RefDistanceM)
	return h.Sum()
}

type batchMemoEnt struct {
	key      batchMemoKey
	fit, dom float64
}

// batchState is the per-bench state behind MeasureBatch: the measurement
// memo, the recycled worker arenas, and the stats counters. It hangs off
// the Bench as a pointer so re-sampled shallow bench copies share it (the
// memo key carries the sample count).
type batchState struct {
	mu        sync.Mutex
	memo      map[batchMemoKey]*list.Element
	order     list.List // front = most recently used *batchMemoEnt
	arenaPool sync.Pool // *slab.Arena

	// probeMu guards probes, the per-domain memo of the built probe loop
	// (deterministic in the domain spec, so sweep campaigns skip rebuilding
	// the ISA pool and chaining the sequence on every call).
	probeMu sync.Mutex
	probes  map[*platform.Domain][]isa.Inst

	batches, items, measured, dedup, memoHits atomic.Uint64
	arenaBytes, workerSlots                   atomic.Uint64
}

func newBatchState() *batchState {
	return &batchState{memo: make(map[batchMemoKey]*list.Element)}
}

// benchBatchMu guards lazy batch-state creation for benches that were not
// built by NewBench (zero-value literals in tests).
var benchBatchMu sync.Mutex

func (b *Bench) batchSt() *batchState {
	benchBatchMu.Lock()
	defer benchBatchMu.Unlock()
	if b.batch == nil {
		b.batch = newBatchState()
	}
	return b.batch
}

// BatchStats returns the bench's generation-batched evaluation counters.
func (b *Bench) BatchStats() BatchStats {
	st := b.batchSt()
	return BatchStats{
		Batches:    st.batches.Load(),
		Items:      st.items.Load(),
		Measured:   st.measured.Load(),
		DedupHits:  st.dedup.Load(),
		MemoHits:   st.memoHits.Load(),
		ArenaBytes: st.arenaBytes.Load(),
		Workers:    st.workerSlots.Load(),
	}
}

func (st *batchState) memoGet(k batchMemoKey) (fit, dom float64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.memo[k]
	if !ok {
		return 0, 0, false
	}
	st.order.MoveToFront(el)
	ent := el.Value.(*batchMemoEnt)
	return ent.fit, ent.dom, true
}

func (st *batchState) memoAdd(k batchMemoKey, fit, dom float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.memo[k]; ok {
		// A concurrent worker measured the same pure value; keep the first.
		st.order.MoveToFront(el)
		return
	}
	st.memo[k] = st.order.PushFront(&batchMemoEnt{key: k, fit: fit, dom: dom})
	for len(st.memo) > batchMemoCap {
		back := st.order.Back()
		st.order.Remove(back)
		delete(st.memo, back.Value.(*batchMemoEnt).key)
	}
}

func (st *batchState) getArena() *slab.Arena {
	if ar, _ := st.arenaPool.Get().(*slab.Arena); ar != nil {
		return ar
	}
	return &slab.Arena{}
}

func (st *batchState) putArena(ar *slab.Arena) {
	ar.Reset()
	st.arenaPool.Put(ar)
}

// MeasureBatch implements ga.BatchMeasurer: one call evaluates the whole
// generation with intra-batch dedup, the cross-generation memo and slab
// arenas, bit-identical to per-individual Measure calls at any parallelism.
func (m emMeasurer) MeasureBatch(items []ga.BatchItem, parallelism int) ([]ga.BatchResult, error) {
	return m.b.emMeasureBatch(m.d, items, m.activeCores, m.b.Samples, parallelism)
}

func (b *Bench) emMeasureBatch(d *platform.Domain, items []ga.BatchItem, activeCores, samples, parallelism int) ([]ga.BatchResult, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: %d samples", samples)
	}
	st := b.batchSt()
	results := make([]ga.BatchResult, len(items))
	if len(items) == 0 {
		return results, nil
	}

	// One operating-point snapshot keys the whole batch. The GA holds the
	// domain fixed across a generation; re-tuning it mid-batch is outside
	// the contract, just as it is for a half-measured scalar generation.
	clock, supply, powered := d.ClockHz(), d.SupplyVolts(), d.PoweredCores()

	// Dedup identical post-mutation children by content hash: at a fixed
	// operating point the measured value is a pure function of the sequence
	// (instrument noise is content-derived, never order- or index-derived),
	// so one measurement fans out to every duplicate bit-identically. The
	// memo then carries results across generations — elites re-measured
	// every generation, clones of already-measured parents — under the same
	// 64-bit content key the spectra cache already trusts.
	emID := emIdentity(b.Platform.Antenna, d.Spec.EMPath)
	disk := newMeasDisk(b, d)
	firstOf := make(map[uint64]int, len(items))
	dupOf := make([]int, len(items))
	keys := make([]batchMemoKey, len(items))
	work := make([]int, 0, len(items))
	var dedup, memoHits uint64
	for i := range items {
		h := platform.Load{Seq: items[i].Seq, ActiveCores: activeCores}.Hash()
		keys[i] = batchMemoKey{load: h, em: emID, powered: powered, clock: clock, supply: supply,
			dt: b.Dt, n: b.N, samples: samples, bandLo: b.Band.Lo, bandHi: b.Band.Hi}
		if j, ok := firstOf[h]; ok {
			dupOf[i] = j
			dedup++
			continue
		}
		firstOf[h] = i
		dupOf[i] = -1
		if fit, dom, ok := st.memoGet(keys[i]); ok {
			results[i] = ga.BatchResult{Fitness: fit, DominantHz: dom}
			memoHits++
			continue
		}
		// The persistent tier holds measurements from earlier processes (or
		// concurrent ones sharing the cache directory); a hit feeds the
		// in-memory memo so the rest of the campaign never re-reads disk.
		if fit, dom, ok := disk.get(keys[i]); ok {
			results[i] = ga.BatchResult{Fitness: fit, DominantHz: dom}
			st.memoAdd(keys[i], fit, dom)
			memoHits++
			continue
		}
		work = append(work, i)
	}

	// Each worker slot owns one arena for the whole batch: rows live for a
	// single individual and the per-item Reset rewinds them in O(1), so the
	// arena's footprint is one individual's slab set, retained across
	// batches via the pool.
	//
	// The parallelism setting is resolved exactly once: ForEachWorker takes
	// a literal worker count and never maps <=0 to "all CPUs" itself, so the
	// resolved value must be what reaches it — passing the raw setting would
	// run the whole batch inline on one worker while the arenas are sized
	// for par.Workers(parallelism) slots.
	workers := par.Workers(parallelism)
	if workers > len(work) {
		workers = len(work)
	}
	arenas := make([]*slab.Arena, workers)
	used := make([]atomic.Bool, workers)
	for w := range arenas {
		arenas[w] = st.getArena()
	}
	err := par.ForEachWorker(workers, len(work), func(w, k int) error {
		i := work[k]
		used[w].Store(true)
		ar := arenas[w]
		ar.Reset()
		l := platform.Load{Seq: items[i].Seq, ActiveCores: activeCores}
		freqs, _, iAmp, _, err := d.SpectraLineageArena(l, b.Dt, b.N, uarchLineage(items[i].Lin), ar)
		if err != nil {
			return err
		}
		watts := ar.FloatsUninit(len(freqs)) // CombineInto clears before folding
		if _, err := em.CombineInto(watts, b.Platform.Antenna, []em.Emitter{
			{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath},
		}); err != nil {
			return err
		}
		meas, err := b.Analyzer.MeasurePeak(freqs, watts, b.Band.Lo, b.Band.Hi, samples)
		if err != nil {
			return err
		}
		results[i] = ga.BatchResult{Fitness: meas.PeakDBm, DominantHz: meas.PeakHz}
		st.memoAdd(keys[i], meas.PeakDBm, meas.PeakHz)
		disk.put(keys[i], meas.PeakDBm, meas.PeakHz)
		return nil
	})
	var arenaTotal uint64
	for _, ar := range arenas {
		arenaTotal += uint64(ar.HighWater())
		st.putArena(ar)
	}
	var slotsUsed uint64
	for w := range used {
		if used[w].Load() {
			slotsUsed++
		}
	}
	for {
		cur := st.workerSlots.Load()
		if slotsUsed <= cur || st.workerSlots.CompareAndSwap(cur, slotsUsed) {
			break
		}
	}
	st.batches.Add(1)
	st.items.Add(uint64(len(items)))
	st.measured.Add(uint64(len(work)))
	st.dedup.Add(dedup)
	st.memoHits.Add(memoHits)
	for {
		cur := st.arenaBytes.Load()
		if arenaTotal <= cur || st.arenaBytes.CompareAndSwap(cur, arenaTotal) {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	for i := range items {
		if j := dupOf[i]; j >= 0 {
			results[i] = results[j]
		}
	}
	return results, nil
}
