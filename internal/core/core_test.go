package core

import (
	"math"
	"testing"

	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/platform"
	"repro/internal/workload"
)

func testBench(t *testing.T) (*Bench, *platform.Platform) {
	t.Helper()
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBench(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 5 // keep tests fast; the paper's 30 is for the benches
	return b, p
}

func dom(t *testing.T, p *platform.Platform, name string) *platform.Domain {
	t.Helper()
	d, err := p.Domain(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func buildLoad(t *testing.T, d *platform.Domain, name string, cores int) platform.Load {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	return platform.Load{Seq: seq, ActiveCores: cores}
}

func TestNewBenchValidation(t *testing.T) {
	if _, err := NewBench(nil, 1); err == nil {
		t.Fatal("nil platform accepted")
	}
	b, _ := testBench(t)
	if err := b.Validate(); err != nil {
		t.Fatalf("default bench invalid: %v", err)
	}
	cases := []func(*Bench){
		func(b *Bench) { b.Platform = nil },
		func(b *Bench) { b.Analyzer = nil },
		func(b *Bench) { b.Band = Band{Lo: 0, Hi: 1} },
		func(b *Bench) { b.Band = Band{Lo: 2, Hi: 1} },
		func(b *Bench) { b.Samples = 0 },
		func(b *Bench) { b.Dt = 0 },
		func(b *Bench) { b.N = 4 },
	}
	for i, mut := range cases {
		bb, _ := testBench(t)
		mut(bb)
		if err := bb.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEMMeasureOrdersWorkloadsByNoise(t *testing.T) {
	b, p := testBench(t)
	d := dom(t, p, platform.DomainA72)
	idle, err := b.EMMeasure(d, buildLoad(t, d, "idle", 2))
	if err != nil {
		t.Fatal(err)
	}
	probe, err := b.EMMeasure(d, buildLoad(t, d, "probe", 2))
	if err != nil {
		t.Fatal(err)
	}
	// The two-phase probe loop radiates far more in-band than idle.
	if probe.PeakDBm < idle.PeakDBm+10 {
		t.Fatalf("probe %v dBm not clearly above idle %v dBm", probe.PeakDBm, idle.PeakDBm)
	}
}

func TestFastResonanceSweepA72(t *testing.T) {
	b, p := testBench(t)
	d := dom(t, p, platform.DomainA72)
	res, err := b.FastResonanceSweep(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 11: amplitude maximized around 70 MHz with both cores.
	if res.ResonanceHz < 63e6 || res.ResonanceHz > 75e6 {
		t.Fatalf("resonance estimate %.2f MHz, want ~66-72", res.ResonanceHz/1e6)
	}
	if len(res.Points) < 10 {
		t.Fatalf("only %d sweep points", len(res.Points))
	}
	// Clock restored.
	if d.ClockHz() != d.Spec.MaxClockHz {
		t.Fatalf("sweep left clock at %v", d.ClockHz())
	}
}

func TestFastSweepPeakIsArgmax(t *testing.T) {
	b, p := testBench(t)
	d := dom(t, p, platform.DomainA72)
	res, err := b.FastResonanceSweep(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	// PeakLoopHz/PeakDBm must be exactly the argmax over the recorded
	// points (the loop frequency used to be dropped from the result).
	bestDBm := math.Inf(-1)
	bestHz := 0.0
	for _, pt := range res.Points {
		if pt.PeakDBm > bestDBm {
			bestDBm, bestHz = pt.PeakDBm, pt.LoopHz
		}
	}
	if res.PeakDBm != bestDBm || res.PeakLoopHz != bestHz {
		t.Fatalf("peak (%v Hz, %v dBm) != argmax of points (%v Hz, %v dBm)",
			res.PeakLoopHz, res.PeakDBm, bestHz, bestDBm)
	}
	if res.PeakLoopHz < b.Band.Lo || res.PeakLoopHz > b.Band.Hi {
		t.Fatalf("peak loop frequency %v outside the search band", res.PeakLoopHz)
	}
}

func TestFastResonanceSweepSingleCoreShiftsUp(t *testing.T) {
	b, p := testBench(t)
	d := dom(t, p, platform.DomainA72)
	both, err := b.FastResonanceSweep(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetPoweredCores(1); err != nil {
		t.Fatal(err)
	}
	defer d.Reset()
	one, err := b.FastResonanceSweep(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 11: ~70 MHz (C0C1) vs ~85 MHz (C0).
	if one.ResonanceHz <= both.ResonanceHz+5e6 {
		t.Fatalf("power-gating shift missing: %v vs %v", one.ResonanceHz, both.ResonanceHz)
	}
	if one.ResonanceHz < 78e6 || one.ResonanceHz > 92e6 {
		t.Fatalf("single-core resonance %.2f MHz, want ~85", one.ResonanceHz/1e6)
	}
}

func TestGenerateVirusConvergesToResonance(t *testing.T) {
	b, p := testBench(t)
	d := dom(t, p, platform.DomainA72)
	cfg := ga.DefaultConfig(d.Spec.Pool())
	cfg.PopulationSize = 20
	cfg.Generations = 15
	res, err := b.GenerateVirus(d, cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[0].BestFitness
	last := res.History[len(res.History)-1].BestFitness
	if last <= first {
		t.Fatalf("GA did not improve EM amplitude: %v -> %v dBm", first, last)
	}
	// Dominant frequency near the (flat-topped) resonance region.
	if res.Best.DominantHz < 55e6 || res.Best.DominantHz > 90e6 {
		t.Fatalf("virus dominant frequency %.2f MHz, want near 67", res.Best.DominantHz/1e6)
	}
}

func TestDroopAndPtpMeasurers(t *testing.T) {
	b, p := testBench(t)
	d := dom(t, p, platform.DomainA72)
	dso := instrument.NewOCDSO(3)
	probe := buildLoad(t, d, "probe", 2)
	idle := buildLoad(t, d, "idle", 2)

	droop := b.DroopMeasurer(d, 2, dso)
	fProbe, domHz, err := droop.Measure(probe.Seq)
	if err != nil {
		t.Fatal(err)
	}
	fIdle, _, err := droop.Measure(idle.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if fProbe <= fIdle {
		t.Fatalf("droop fitness ordering broken: probe %v <= idle %v", fProbe, fIdle)
	}
	if domHz <= 0 {
		t.Fatal("no dominant frequency from DSO spectrum")
	}

	ptp := b.PtpMeasurer(d, 2, dso)
	pProbe, _, err := ptp.Measure(probe.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if pProbe < fProbe {
		t.Fatalf("peak-to-peak %v below droop %v", pProbe, fProbe)
	}
}

func TestVoltageMeasurerRequiresVisibility(t *testing.T) {
	b, p := testBench(t)
	a53 := dom(t, p, platform.DomainA53)
	m := b.DroopMeasurer(a53, 4, instrument.NewOCDSO(1))
	if _, _, err := m.Measure(buildLoad(t, a53, "probe", 4).Seq); err == nil {
		t.Fatal("droop measurement on a no-visibility domain succeeded")
	}
}

func TestMonitorAllShowsBothDomains(t *testing.T) {
	b, p := testBench(t)
	a72 := dom(t, p, platform.DomainA72)
	a53 := dom(t, p, platform.DomainA53)
	loads := map[string]platform.Load{
		platform.DomainA72: buildLoad(t, a72, "probe", 2),
		platform.DomainA53: buildLoad(t, a53, "probe", 4),
	}
	sweep, err := b.MonitorAll(loads)
	if err != nil {
		t.Fatal(err)
	}
	// Both domains run their probe loops at different clocks, so their
	// loop fundamentals appear as separate in-band spikes. Find the two
	// strongest distinct peaks above the noise floor.
	_, topDbm := sweep.Peak()
	if topDbm < -60 {
		t.Fatalf("no emission visible: top peak %v dBm", topDbm)
	}
	if _, err := b.MonitorAll(nil); err == nil {
		t.Fatal("empty load map accepted")
	}
	if _, err := b.MonitorAll(map[string]platform.Load{"nope": {}}); err == nil {
		t.Fatal("unknown domain accepted")
	}
}

func TestDefaultBand(t *testing.T) {
	band := DefaultBand()
	if band.Lo != 50e6 || band.Hi != 200e6 {
		t.Fatalf("default band %+v", band)
	}
}

func TestSweepResolutionSanity(t *testing.T) {
	b, _ := testBench(t)
	binW := 1 / (float64(b.N) * b.Dt)
	if binW > 1e6 {
		t.Fatalf("analysis bin width %v Hz too coarse to resolve MHz features", binW)
	}
	if math.Abs(binW-488281.25) > 1 {
		t.Fatalf("unexpected bin width %v", binW)
	}
}
