package core

import (
	"fmt"

	"repro/internal/em"
	"repro/internal/par"
	"repro/internal/platform"
	"repro/internal/slab"
)

// SweepBatch evaluates a set of sweep clock steps as one batched campaign,
// bit-identical to calling SweepPointAt per clock at any parallelism. The
// clock-invariant work is hoisted out of the per-point loop:
//
//   - the bench validates once and the probe loop builds once, not per point;
//   - the workload's cycle-domain trace is primed once, sized for the
//     largest snapped clock, and every point synthesizes from it;
//   - the whole grid band-prefilters in one loop-frequency pass, so
//     out-of-band steps never pay for resample + FFT + instruments;
//   - surviving points stream their spectra through per-worker slab arenas
//     (the MeasureBatch discipline), touching the heap only for the
//     returned SweepPoint values.
//
// points[i] corresponds to clocks[i] and stays nil when that step's loop
// frequency falls outside the search band. Callers shard this exact grid
// (internal/fleet) and reassemble with AssembleSweep; because every point
// is a pure function of its snapped clock, any shard layout reproduces the
// local result bit for bit.
func (b *Bench) SweepBatch(d *platform.Domain, activeCores int, clocks []float64) ([]*SweepPoint, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	points := make([]*SweepPoint, len(clocks))
	if len(clocks) == 0 {
		return points, nil
	}
	probe, err := b.cachedProbe(d)
	if err != nil {
		return nil, err
	}
	l := platform.Load{Seq: probe, ActiveCores: activeCores}

	snapped := make([]float64, len(clocks))
	var maxClock float64
	for i, hz := range clocks {
		snapped[i], err = d.SnapClock(hz)
		if err != nil {
			return nil, err
		}
		if snapped[i] > maxClock {
			maxClock = snapped[i]
		}
	}

	// Size the domain's spectra cache to the campaign so a grid wider than
	// the default cap cannot thrash its own warm entries (grow-only: a small
	// sweep never shrinks a cap a bigger campaign already established).
	d.EnsureSpectraCacheCap(len(clocks))

	// Prime the clock-invariant trace once at the largest clock; every
	// other point's window is a covered prefix. A nil trace (priming
	// failed) just means each point falls back to its own sizing and
	// reproduces the scalar path's error.
	tr := d.PrimeTraceAt(l, b.Dt, b.N, maxClock)

	// Band-prefilter the whole grid in one loop-frequency pass. The sized
	// simulation is kept per point, so in-band survivors reuse it for the
	// spectra instead of sizing twice.
	evals := make([]platform.PointEval, len(snapped))
	err = par.ForEach(b.Parallelism, len(snapped), func(i int) error {
		pe, err := d.PreparePointAt(l, b.Dt, b.N, snapped[i], tr)
		if err != nil {
			return err
		}
		if pe.LoopHz <= 0 {
			return fmt.Errorf("core: probe loop frequency unresolved at %v Hz clock", snapped[i])
		}
		evals[i] = pe
		return nil
	})
	if err != nil {
		return nil, err
	}
	work := make([]int, 0, len(snapped))
	for i := range evals {
		if hz := evals[i].LoopHz; hz >= b.Band.Lo && hz <= b.Band.Hi {
			work = append(work, i)
		}
	}
	if len(work) == 0 {
		return points, nil
	}

	// One operating-point snapshot serves the whole batch, exactly as in
	// MeasureBatch: the campaign holds the domain's supply and power state
	// fixed; re-tuning it mid-sweep is outside the contract.
	supply, powered := d.SupplyVolts(), d.PoweredCores()

	st := b.batchSt()
	workers := par.Workers(b.Parallelism)
	if workers > len(work) {
		workers = len(work)
	}
	// One backing array for every in-band point: the campaign's only
	// per-point heap traffic is this single allocation.
	backing := make([]SweepPoint, len(work))
	arenas := make([]*slab.Arena, workers)
	for w := range arenas {
		arenas[w] = st.getArena()
	}
	binW := 1 / (float64(b.N) * b.Dt)
	halfBand := b.Analyzer.RBWHz + 2*binW
	err = par.ForEachWorker(workers, len(work), func(w, k int) error {
		i := work[k]
		ar := arenas[w]
		ar.Reset()
		pe := &evals[i]
		freqs, _, iAmp, err := pe.SpectraArena(supply, powered, ar)
		if err != nil {
			return err
		}
		watts := ar.FloatsUninit(len(freqs)) // CombineInto clears before folding
		if _, err := em.CombineInto(watts, b.Platform.Antenna, []em.Emitter{
			{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath},
		}); err != nil {
			return err
		}
		m, err := b.Analyzer.MeasurePeak(freqs, watts, pe.LoopHz-halfBand, pe.LoopHz+halfBand, b.Samples)
		if err != nil {
			return err
		}
		backing[k] = SweepPoint{ClockHz: snapped[i], LoopHz: pe.LoopHz, PeakDBm: m.PeakDBm}
		points[i] = &backing[k]
		return nil
	})
	for _, ar := range arenas {
		st.putArena(ar)
	}
	if err != nil {
		return nil, err
	}
	return points, nil
}
