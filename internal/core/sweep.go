package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/em"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/workload"
)

// SweepPoint is one step of the fast resonance sweep: the CPU clock
// setting, the probe loop frequency it produces, and the received EM
// amplitude at that loop frequency.
type SweepPoint struct {
	ClockHz float64
	LoopHz  float64
	PeakDBm float64
}

// SweepResult is a completed Section 5.3 fast sweep.
type SweepResult struct {
	Points []SweepPoint
	// ResonanceHz is the refined first-order resonance estimate: the
	// power-weighted centroid of the strongest normalized points (see
	// FastResonanceSweep).
	ResonanceHz float64
	// PeakLoopHz and PeakDBm are the raw argmax: the loop frequency of the
	// sweep point with the strongest received amplitude.
	PeakLoopHz float64
	PeakDBm    float64
}

// SweepClockSteps returns the clock grid FastResonanceSweep walks for the
// domain: every DVFS step, descending like the paper (1.2 GHz down to
// 120 MHz). Campaign coordinators shard this exact grid so a distributed
// sweep visits the same operating points a local one does.
func SweepClockSteps(d *platform.Domain) []float64 {
	steps := d.ClockSteps()
	sort.Sort(sort.Reverse(sort.Float64Slice(steps)))
	return steps
}

// buildProbe materializes the fixed two-phase probe loop against the
// domain's instruction pool. Campaign paths call it once per campaign; the
// per-point path below pays it once per point, which is why pre-batch rigs
// (the fleet's SWEEPFULL fallback) route whole grids through SweepBatch.
func buildProbe(d *platform.Domain) ([]isa.Inst, error) {
	return workload.Probe().Build(d.Spec.Pool())
}

// cachedProbe is buildProbe memoized per domain on the bench's batch
// state. The probe is a pure function of the domain spec, so fleet shard
// handlers issuing many single-point SweepBatch calls against one domain
// build the ISA pool and chain the sequence exactly once.
func (b *Bench) cachedProbe(d *platform.Domain) ([]isa.Inst, error) {
	st := b.batchSt()
	st.probeMu.Lock()
	probe, ok := st.probes[d]
	st.probeMu.Unlock()
	if ok {
		return probe, nil
	}
	probe, err := buildProbe(d)
	if err != nil {
		return nil, err
	}
	st.probeMu.Lock()
	if st.probes == nil {
		st.probes = make(map[*platform.Domain][]isa.Inst)
	}
	st.probes[d] = probe
	st.probeMu.Unlock()
	return probe, nil
}

// SweepPointAt evaluates one step of the Section 5.3 fast sweep at an
// explicit clock setting: the probe loop's frequency at that clock, and
// the received EM amplitude at the loop fundamental. It returns nil (and
// no error) when the loop frequency falls outside the bench's search band
// — only in-band points can reveal the resonance. It is the single-point
// form of SweepBatch (the fleet's SWEEPAT shard handler measures assigned
// grid slices through it), so the evaluation is stateless — the domain's
// live clock setting is never touched and concurrent points cannot
// interfere — and bit-identical to any batched or sharded layout that
// includes the same snapped clock.
func (b *Bench) SweepPointAt(d *platform.Domain, activeCores int, clockHz float64) (*SweepPoint, error) {
	pts, err := b.SweepBatch(d, activeCores, []float64{clockHz})
	if err != nil {
		return nil, err
	}
	return pts[0], nil
}

// FastResonanceSweep implements the Section 5.3 method: run the fixed
// two-phase probe loop on activeCores cores, step the CPU clock across its
// full range (which modulates the loop frequency proportionally), and at
// each step record the EM amplitude near the loop fundamental. The loop
// frequency with the strongest emission is the first-order resonance.
// The whole grid goes through SweepBatch — one bench validation, one probe
// build, one primed trace, one band prefilter pass, arena-backed spectra on
// up to b.Parallelism workers — and results are collected by step index, so
// serial and parallel sweeps are identical — as are sweeps whose points
// were measured on different rigs of a fleet, which is what lets
// internal/fleet shard this grid and reassemble via AssembleSweep.
func (b *Bench) FastResonanceSweep(d *platform.Domain, activeCores int) (*SweepResult, error) {
	// points[i] stays nil when step i's loop frequency falls outside the
	// search band (only in-band loop frequencies can reveal the resonance).
	points, err := b.SweepBatch(d, activeCores, SweepClockSteps(d))
	if err != nil {
		return nil, err
	}
	return AssembleSweep(points)
}

// AssembleSweep merges a sweep's per-point measurements (in clock-grid
// order; nil entries are out-of-band steps) into a SweepResult, applying
// the same argmax and power-weighted centroid refinement a monolithic
// sweep computes. Keeping the merge here — and iterating strictly in grid
// order — is what makes a fleet-sharded sweep bit-identical to a local one
// at any shard layout.
func AssembleSweep(points []*SweepPoint) (*SweepResult, error) {
	res := &SweepResult{PeakDBm: math.Inf(-1)}
	for _, pt := range points {
		if pt == nil {
			continue
		}
		res.Points = append(res.Points, *pt)
		if pt.PeakDBm > res.PeakDBm {
			res.PeakDBm = pt.PeakDBm
			res.PeakLoopHz = pt.LoopHz
		}
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("core: no clock step put the probe loop inside the band")
	}
	// Resonance estimate. Two refinements over a bare argmax:
	//
	//   - The received power carries a known (f_loop·f_clk)² scaling — the
	//     radiated field grows with frequency and the probe current with
	//     clock. Dividing it out leaves the PDN transfer shape, whose
	//     maximum is the resonance, without the upward bias of the raw
	//     curve.
	//   - The impedance peak can be flat-topped (the paper sees a flat
	//     66-72 MHz response on the A72), so the estimate is the
	//     power-weighted centroid of the points within 3 dB of the
	//     normalized maximum rather than a single noisy winner.
	norm := make([]float64, len(res.Points))
	maxNorm := math.Inf(-1)
	for i, pt := range res.Points {
		fp := pt.LoopHz * pt.ClockHz
		norm[i] = math.Pow(10, pt.PeakDBm/10) / fp
		if norm[i] > maxNorm {
			maxNorm = norm[i]
		}
	}
	var wsum, fsum float64
	for i, pt := range res.Points {
		if norm[i] < maxNorm/2 { // within 3 dB
			continue
		}
		wsum += norm[i]
		fsum += norm[i] * pt.LoopHz
	}
	res.ResonanceHz = fsum / wsum
	return res, nil
}

// MonitorAll runs one workload per domain simultaneously and captures a
// single analyzer sweep of the combined radiation — the Section 6.1
// demonstration that one antenna observes voltage emergencies on several
// voltage domains at once.
func (b *Bench) MonitorAll(loads map[string]platform.Load) (*instrument.Sweep, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("core: no loads to monitor")
	}
	// Iterate domains in sorted-name order: combined power is a float sum
	// over emitters, so a fixed order keeps the result bit-identical from
	// run to run (and equal between the local and remote backends, which
	// serialize the same order over the wire).
	names := make([]string, 0, len(loads))
	for name := range loads {
		names = append(names, name)
	}
	sort.Strings(names)
	var emitters []em.Emitter
	for _, name := range names {
		l := loads[name]
		d, err := b.Platform.Domain(name)
		if err != nil {
			return nil, err
		}
		freqs, _, iAmp, _, err := d.Spectra(l, b.Dt, b.N)
		if err != nil {
			return nil, err
		}
		emitters = append(emitters, em.Emitter{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath})
	}
	freqs, watts, err := em.CombinedSpectrum(b.Platform.Antenna, emitters)
	if err != nil {
		return nil, err
	}
	return b.Analyzer.Capture(freqs, watts)
}
