package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/em"
	"repro/internal/instrument"
	"repro/internal/par"
	"repro/internal/platform"
	"repro/internal/workload"
)

// SweepPoint is one step of the fast resonance sweep: the CPU clock
// setting, the probe loop frequency it produces, and the received EM
// amplitude at that loop frequency.
type SweepPoint struct {
	ClockHz float64
	LoopHz  float64
	PeakDBm float64
}

// SweepResult is a completed Section 5.3 fast sweep.
type SweepResult struct {
	Points []SweepPoint
	// ResonanceHz is the refined first-order resonance estimate: the
	// power-weighted centroid of the strongest normalized points (see
	// FastResonanceSweep).
	ResonanceHz float64
	// PeakLoopHz and PeakDBm are the raw argmax: the loop frequency of the
	// sweep point with the strongest received amplitude.
	PeakLoopHz float64
	PeakDBm    float64
}

// SweepClockSteps returns the clock grid FastResonanceSweep walks for the
// domain: every DVFS step, descending like the paper (1.2 GHz down to
// 120 MHz). Campaign coordinators shard this exact grid so a distributed
// sweep visits the same operating points a local one does.
func SweepClockSteps(d *platform.Domain) []float64 {
	steps := d.ClockSteps()
	sort.Sort(sort.Reverse(sort.Float64Slice(steps)))
	return steps
}

// SweepPointAt evaluates one step of the Section 5.3 fast sweep at an
// explicit clock setting: the probe loop's frequency at that clock, and
// the received EM amplitude at the loop fundamental. It returns nil (and
// no error) when the loop frequency falls outside the bench's search band
// — only in-band points can reveal the resonance. The evaluation goes
// through the stateless SpectraAt path, so the domain's live clock setting
// is never touched and concurrent points cannot interfere.
func (b *Bench) SweepPointAt(d *platform.Domain, activeCores int, clockHz float64) (*SweepPoint, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	probe, err := workload.Probe().Build(d.Spec.Pool())
	if err != nil {
		return nil, err
	}
	clock, err := d.SnapClock(clockHz)
	if err != nil {
		return nil, err
	}
	l := platform.Load{Seq: probe, ActiveCores: activeCores}
	// Band-filter on the loop frequency before paying for the full
	// spectra pipeline: LoopHzAt shares SpectraAt's simulation sizing
	// (with the trace cache warm it is nearly free), so out-of-band
	// clock steps skip the resample + FFT + analyzer entirely and the
	// in-band point set is unchanged.
	loopHz, _, err := d.LoopHzAt(l, b.Dt, b.N, clock)
	if err != nil {
		return nil, err
	}
	if loopHz <= 0 {
		return nil, fmt.Errorf("core: probe loop frequency unresolved at %v Hz clock", clock)
	}
	if loopHz < b.Band.Lo || loopHz > b.Band.Hi {
		return nil, nil
	}
	freqs, _, iAmp, _, err := d.SpectraAt(l, b.Dt, b.N, clock)
	if err != nil {
		return nil, err
	}
	_, watts, err := em.CombinedSpectrum(b.Platform.Antenna, []em.Emitter{
		{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath},
	})
	if err != nil {
		return nil, err
	}
	// Measure the spike at the loop fundamental. The band must cover
	// the analyzer's RBW re-binning: a spike within one FFT bin of the
	// loop frequency can land in an RBW bin whose centre is up to
	// RBW/2 + binW away.
	binW := 1 / (float64(b.N) * b.Dt)
	half := b.Analyzer.RBWHz + 2*binW
	m, err := b.Analyzer.MeasurePeak(freqs, watts, loopHz-half, loopHz+half, b.Samples)
	if err != nil {
		return nil, err
	}
	return &SweepPoint{ClockHz: clock, LoopHz: loopHz, PeakDBm: m.PeakDBm}, nil
}

// FastResonanceSweep implements the Section 5.3 method: run the fixed
// two-phase probe loop on activeCores cores, step the CPU clock across its
// full range (which modulates the loop frequency proportionally), and at
// each step record the EM amplitude near the loop fundamental. The loop
// frequency with the strongest emission is the first-order resonance.
// Clock steps are independent operating points evaluated through the
// stateless SweepPointAt path on up to b.Parallelism workers; the domain's
// clock setting is never touched and results are collected by step index,
// so serial and parallel sweeps are identical — as are sweeps whose points
// were measured on different rigs of a fleet, which is what lets
// internal/fleet shard this grid and reassemble via AssembleSweep.
func (b *Bench) FastResonanceSweep(d *platform.Domain, activeCores int) (*SweepResult, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	steps := SweepClockSteps(d)

	// points[i] stays nil when step i's loop frequency falls outside the
	// search band (only in-band loop frequencies can reveal the resonance).
	points := make([]*SweepPoint, len(steps))
	err := par.ForEach(b.Parallelism, len(steps), func(i int) error {
		pt, err := b.SweepPointAt(d, activeCores, steps[i])
		if err != nil {
			return err
		}
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return AssembleSweep(points)
}

// AssembleSweep merges a sweep's per-point measurements (in clock-grid
// order; nil entries are out-of-band steps) into a SweepResult, applying
// the same argmax and power-weighted centroid refinement a monolithic
// sweep computes. Keeping the merge here — and iterating strictly in grid
// order — is what makes a fleet-sharded sweep bit-identical to a local one
// at any shard layout.
func AssembleSweep(points []*SweepPoint) (*SweepResult, error) {
	res := &SweepResult{PeakDBm: math.Inf(-1)}
	for _, pt := range points {
		if pt == nil {
			continue
		}
		res.Points = append(res.Points, *pt)
		if pt.PeakDBm > res.PeakDBm {
			res.PeakDBm = pt.PeakDBm
			res.PeakLoopHz = pt.LoopHz
		}
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("core: no clock step put the probe loop inside the band")
	}
	// Resonance estimate. Two refinements over a bare argmax:
	//
	//   - The received power carries a known (f_loop·f_clk)² scaling — the
	//     radiated field grows with frequency and the probe current with
	//     clock. Dividing it out leaves the PDN transfer shape, whose
	//     maximum is the resonance, without the upward bias of the raw
	//     curve.
	//   - The impedance peak can be flat-topped (the paper sees a flat
	//     66-72 MHz response on the A72), so the estimate is the
	//     power-weighted centroid of the points within 3 dB of the
	//     normalized maximum rather than a single noisy winner.
	norm := make([]float64, len(res.Points))
	maxNorm := math.Inf(-1)
	for i, pt := range res.Points {
		fp := pt.LoopHz * pt.ClockHz
		norm[i] = math.Pow(10, pt.PeakDBm/10) / fp
		if norm[i] > maxNorm {
			maxNorm = norm[i]
		}
	}
	var wsum, fsum float64
	for i, pt := range res.Points {
		if norm[i] < maxNorm/2 { // within 3 dB
			continue
		}
		wsum += norm[i]
		fsum += norm[i] * pt.LoopHz
	}
	res.ResonanceHz = fsum / wsum
	return res, nil
}

// MonitorAll runs one workload per domain simultaneously and captures a
// single analyzer sweep of the combined radiation — the Section 6.1
// demonstration that one antenna observes voltage emergencies on several
// voltage domains at once.
func (b *Bench) MonitorAll(loads map[string]platform.Load) (*instrument.Sweep, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("core: no loads to monitor")
	}
	// Iterate domains in sorted-name order: combined power is a float sum
	// over emitters, so a fixed order keeps the result bit-identical from
	// run to run (and equal between the local and remote backends, which
	// serialize the same order over the wire).
	names := make([]string, 0, len(loads))
	for name := range loads {
		names = append(names, name)
	}
	sort.Strings(names)
	var emitters []em.Emitter
	for _, name := range names {
		l := loads[name]
		d, err := b.Platform.Domain(name)
		if err != nil {
			return nil, err
		}
		freqs, _, iAmp, _, err := d.Spectra(l, b.Dt, b.N)
		if err != nil {
			return nil, err
		}
		emitters = append(emitters, em.Emitter{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath})
	}
	freqs, watts, err := em.CombinedSpectrum(b.Platform.Antenna, emitters)
	if err != nil {
		return nil, err
	}
	return b.Analyzer.Capture(freqs, watts)
}
