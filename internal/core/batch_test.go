package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/ga"
)

// TestMeasureBatchParallelismZero is the -j 0 regression: the raw
// parallelism setting used to reach par.ForEachWorker unresolved, and
// since ForEachWorker treats its worker argument literally, `-j 0` — the
// documented "use every CPU" setting — ran the whole batch inline on one
// worker. The fix resolves the setting once and passes the resolved count
// through, so a zero-parallelism batch must (a) exercise more than one
// worker slot on a multi-core host and (b) stay bit-identical to the
// serial run.
func TestMeasureBatchParallelismZero(t *testing.T) {
	b1, p1 := testBench(t)
	d1 := dom(t, p1, "cortex-a72")
	rng := rand.New(rand.NewSource(9))
	pool := d1.Spec.Pool()
	var items []ga.BatchItem
	for i := 0; i < 24; i++ {
		items = append(items, ga.BatchItem{Seq: pool.RandomSequence(rng, 30)})
	}

	m1 := b1.EMMeasurer(d1, 2)
	bm1, ok := m1.(ga.BatchMeasurer)
	if !ok {
		t.Fatal("EMMeasurer is not a BatchMeasurer")
	}
	got, err := bm1.MeasureBatch(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cpus := runtime.GOMAXPROCS(0); cpus > 1 {
		if w := b1.BatchStats().Workers; w < 2 {
			t.Fatalf("parallelism=0 exercised %d worker slot(s) on a %d-CPU host; the setting was not resolved", w, cpus)
		}
	}

	// Fresh bench, same content: serial run must agree bit for bit.
	b2, p2 := testBench(t)
	d2 := dom(t, p2, "cortex-a72")
	bm2 := b2.EMMeasurer(d2, 2).(ga.BatchMeasurer)
	want, err := bm2.MeasureBatch(items, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w := b2.BatchStats().Workers; w != 1 {
		t.Fatalf("parallelism=1 exercised %d worker slots, want 1", w)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallelism=0 batch differs from serial batch")
	}
}

// TestBatchMemoKeyedByReceiveChain is the stale-memo regression: a shallow
// bench copy with a retuned antenna shares the batch state (that sharing
// is the point — re-sampled copies reuse the memo), and before the em
// field joined the memo key, the copy was served the original antenna's
// fitness values verbatim.
func TestBatchMemoKeyedByReceiveChain(t *testing.T) {
	b1, p1 := testBench(t)
	d1 := dom(t, p1, "cortex-a72")
	rng := rand.New(rand.NewSource(17))
	pool := d1.Spec.Pool()
	var items []ga.BatchItem
	for i := 0; i < 8; i++ {
		items = append(items, ga.BatchItem{Seq: pool.RandomSequence(rng, 30)})
	}
	first, err := b1.EMMeasurer(d1, 2).(ga.BatchMeasurer).MeasureBatch(items, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Shallow copy sharing b1's batch state, with a retuned antenna.
	retune := func(b *Bench) *Bench {
		b2 := *b
		plat := *b.Platform
		plat.Antenna.SelfResonanceHz *= 1.25
		plat.Antenna.Q *= 0.8
		b2.Platform = &plat
		return &b2
	}
	b2 := retune(b1)
	got, err := b2.EMMeasurer(d1, 2).(ga.BatchMeasurer).MeasureBatch(items, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: a fresh bench (private batch state) with the same
	// retuned antenna.
	b3, p3 := testBench(t)
	d3 := dom(t, p3, "cortex-a72")
	b3r := retune(b3)
	want, err := b3r.EMMeasurer(d3, 2).(ga.BatchMeasurer).MeasureBatch(items, 2)
	if err != nil {
		t.Fatal(err)
	}

	if reflect.DeepEqual(first, want) {
		t.Fatal("retuning the antenna did not change any measured value; the regression is unobservable")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shared batch state served the original antenna's memoized results to the retuned bench")
	}
}
