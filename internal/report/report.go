// Package report renders experiment results as aligned ASCII tables and
// simple bar-annotated series, the output format of the cmd/repro binary
// and EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series renders an x/y series with proportional ASCII bars, useful for
// eyeballing sweeps and GA progressions in a terminal.
func Series(title, xLabel, yLabel string, xs, ys []float64) string {
	if len(xs) != len(ys) {
		panic("report: series length mismatch")
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if len(xs) == 0 {
		b.WriteString("(empty series)\n")
		return b.String()
	}
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	span := max - min
	const barWidth = 40
	fmt.Fprintf(&b, "%14s  %12s\n", xLabel, yLabel)
	for i := range xs {
		bar := 0
		if span > 0 {
			bar = int(math.Round((ys[i] - min) / span * barWidth))
		}
		fmt.Fprintf(&b, "%14.6g  %12.6g  %s\n", xs[i], ys[i], strings.Repeat("#", bar))
	}
	return b.String()
}

// MHz formats a frequency in megahertz.
func MHz(hz float64) string { return fmt.Sprintf("%.2f MHz", hz/1e6) }

// MV formats a voltage in millivolts.
func MV(v float64) string { return fmt.Sprintf("%.1f mV", v*1e3) }

// Volts formats a voltage with millivolt precision.
func Volts(v float64) string { return fmt.Sprintf("%.4g V", v) }

// DBm formats a power level.
func DBm(v float64) string { return fmt.Sprintf("%.1f dBm", v) }

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
