package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("verylongname", "22")
	tb.AddRow("short") // padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator line %q", lines[2])
	}
	// Columns aligned: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "value")
	if got := strings.Index(lines[3], "1"); got != idx {
		t.Fatalf("column misaligned: %d vs %d\n%s", got, idx, out)
	}
	if len(lines) != 6 {
		t.Fatalf("line count %d\n%s", len(lines), out)
	}
}

func TestSeriesRendering(t *testing.T) {
	out := Series("sweep", "freq", "amp", []float64{1, 2, 3}, []float64{0, 5, 10})
	if !strings.Contains(out, "sweep") || !strings.Contains(out, "freq") {
		t.Fatalf("missing labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, strings.Repeat("#", 40)) {
		t.Fatalf("max bar not full width: %q", last)
	}
	first := lines[2]
	if strings.Contains(first, "#") {
		t.Fatalf("min bar should be empty: %q", first)
	}
	// Flat series: no panic, zero-length bars.
	flat := Series("", "x", "y", []float64{1, 2}, []float64{3, 3})
	if strings.Contains(flat, "#") {
		t.Fatalf("flat series produced bars:\n%s", flat)
	}
	empty := Series("t", "x", "y", nil, nil)
	if !strings.Contains(empty, "empty") {
		t.Fatalf("empty series output %q", empty)
	}
}

func TestSeriesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched series")
		}
	}()
	Series("", "x", "y", []float64{1}, []float64{1, 2})
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{MHz(67e6), "67.00 MHz"},
		{MV(0.150), "150.0 mV"},
		{Volts(1.3625), "1.363 V"},
		{DBm(-30.25), "-30.2 dBm"},
		{Pct(0.32), "32%"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}
