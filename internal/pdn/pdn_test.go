package pdn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/dsp"
)

// testParams is an A72-like PDN used throughout the package tests.
func testParams() Params {
	return Params{
		Name:       "test-a72",
		VNominal:   1.0,
		CDieCore:   12e-9,
		CDieUncore: 7.3e-9,
		RDie:       0.020,
		LPkg:       180e-12,
		RPkgTrace:  0.4e-3,
		CPkg:       1e-6,
		ESRPkg:     10e-3,
		ESLPkg:     50e-12,
		LPcb:       2e-9,
		RPcbTrace:  1e-3,
		CPcb:       300e-6,
		ESRPcb:     2e-3,
		ESLPcb:     1e-9,
		LVrm:       20e-9,
		RVrm:       0.5e-3,
	}
}

func newTestModel(t *testing.T, cores int) *Model {
	t.Helper()
	m, err := NewModel(testParams(), cores)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestValidateRejectsEachField(t *testing.T) {
	base := testParams()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.VNominal = 0 },
		func(p *Params) { p.CDieCore = -1 },
		func(p *Params) { p.CDieUncore = math.NaN() },
		func(p *Params) { p.RDie = 0 },
		func(p *Params) { p.LPkg = math.Inf(1) },
		func(p *Params) { p.RPkgTrace = 0 },
		func(p *Params) { p.CPkg = 0 },
		func(p *Params) { p.ESRPkg = 0 },
		func(p *Params) { p.ESLPkg = 0 },
		func(p *Params) { p.LPcb = 0 },
		func(p *Params) { p.RPcbTrace = 0 },
		func(p *Params) { p.CPcb = 0 },
		func(p *Params) { p.ESRPcb = 0 },
		func(p *Params) { p.ESLPcb = 0 },
		func(p *Params) { p.LVrm = 0 },
		func(p *Params) { p.RVrm = 0 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestNewModelRejectsBadCores(t *testing.T) {
	if _, err := NewModel(testParams(), 0); err == nil {
		t.Fatal("0 cores accepted")
	}
	if _, err := NewModel(Params{}, 1); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestCDieScalesWithCores(t *testing.T) {
	p := testParams()
	m1 := newTestModel(t, 1)
	m2 := newTestModel(t, 2)
	if got, want := m1.CDie(), p.CDieCore+p.CDieUncore; math.Abs(got-want) > 1e-18 {
		t.Fatalf("CDie(1) = %v, want %v", got, want)
	}
	if got, want := m2.CDie(), 2*p.CDieCore+p.CDieUncore; math.Abs(got-want) > 1e-18 {
		t.Fatalf("CDie(2) = %v, want %v", got, want)
	}
}

func TestFirstOrderResonanceRisesWithPowerGating(t *testing.T) {
	m1 := newTestModel(t, 1)
	m2 := newTestModel(t, 2)
	f1, f2 := m1.FirstOrderResonance(), m2.FirstOrderResonance()
	if f1 <= f2 {
		t.Fatalf("power-gating did not raise resonance: f(1 core)=%v <= f(2 cores)=%v", f1, f2)
	}
	// The calibration targets the A72: ~67 MHz dual-core, ~85 MHz single.
	if f2 < 60e6 || f2 > 75e6 {
		t.Errorf("dual-core resonance %v Hz outside 60-75 MHz", f2)
	}
	if f1 < 78e6 || f1 > 92e6 {
		t.Errorf("single-core resonance %v Hz outside 78-92 MHz", f1)
	}
}

func TestImpedanceProfileShowsThreePeaks(t *testing.T) {
	m := newTestModel(t, 2)
	peaks, err := m.ResonancePeaks(1e3, 1e9, 600)
	if err != nil {
		t.Fatalf("ResonancePeaks: %v", err)
	}
	if len(peaks) < 3 {
		t.Fatalf("found %d impedance peaks, want >= 3: %+v", len(peaks), peaks)
	}
	// The strongest peak must be the first-order (highest-frequency) one.
	top := peaks[0]
	if top.Freq < 50e6 || top.Freq > 200e6 {
		t.Fatalf("strongest peak at %v Hz, want in 50-200 MHz (first-order)", top.Freq)
	}
	// Expect lower-frequency tanks at ~1-10 MHz and ~10-100 kHz.
	var has2nd, has3rd bool
	for _, p := range peaks[1:] {
		if p.Freq > 1e6 && p.Freq < 10e6 {
			has2nd = true
		}
		if p.Freq > 1e4 && p.Freq < 1e6 {
			has3rd = true
		}
	}
	if !has2nd || !has3rd {
		t.Fatalf("missing 2nd/3rd order peaks: %+v", peaks)
	}
}

func TestResonancePeakMatchesAnalyticEstimate(t *testing.T) {
	m := newTestModel(t, 2)
	f, z, err := m.ResonancePeak(30e6, 200e6)
	if err != nil {
		t.Fatalf("ResonancePeak: %v", err)
	}
	analytic := m.FirstOrderResonance()
	if math.Abs(f-analytic) > 0.15*analytic {
		t.Fatalf("peak %v Hz vs analytic %v Hz", f, analytic)
	}
	if z <= 0 {
		t.Fatalf("peak impedance %v", z)
	}
}

func TestImpedanceProfileErrors(t *testing.T) {
	m := newTestModel(t, 2)
	if _, err := m.ImpedanceProfile(0, 1e6, 10); err == nil {
		t.Error("fLo=0 accepted")
	}
	if _, err := m.ImpedanceProfile(1e6, 1e3, 10); err == nil {
		t.Error("fHi<fLo accepted")
	}
	if _, err := m.ImpedanceProfile(1e3, 1e6, 1); err == nil {
		t.Error("points=1 accepted")
	}
}

func TestStepResponseRingsAndSettles(t *testing.T) {
	m := newTestModel(t, 2)
	dt := 0.25e-9
	resp, err := m.StepResponse(1.0, dt, 8000) // 2 us
	if err != nil {
		t.Fatalf("StepResponse: %v", err)
	}
	vnom := m.Params.VNominal
	if resp.VDie[0] != vnom {
		t.Fatalf("initial die voltage %v, want %v (quiescent)", resp.VDie[0], vnom)
	}
	droop := resp.MaxDroop(vnom)
	if droop <= 0 {
		t.Fatal("step produced no droop")
	}
	// First-order ringing: the minimum should occur within ~1.5 resonance
	// periods of the step.
	f0 := m.FirstOrderResonance()
	minIdx := 0
	for i, v := range resp.VDie {
		if v < resp.VDie[minIdx] {
			minIdx = i
		}
	}
	if tMin := float64(minIdx) * dt; tMin > 1.5/f0 {
		t.Errorf("worst droop at %v s, want within %v s", tMin, 1.5/f0)
	}
	if resp.MinVoltage() >= vnom {
		t.Error("MinVoltage not below nominal")
	}
	if resp.PeakToPeak() <= 0 {
		t.Error("PeakToPeak not positive")
	}
}

func TestResponseMetrics(t *testing.T) {
	r := &Response{Dt: 1, VDie: []float64{1.0, 0.9, 1.05}, IDie: []float64{0, 0, 0}}
	if d := r.MaxDroop(1.0); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("MaxDroop = %v", d)
	}
	if p := r.PeakToPeak(); math.Abs(p-0.15) > 1e-12 {
		t.Fatalf("PeakToPeak = %v", p)
	}
	if v := r.MinVoltage(); v != 0.9 {
		t.Fatalf("MinVoltage = %v", v)
	}
}

func TestTransfersValidation(t *testing.T) {
	m := newTestModel(t, 2)
	if _, err := m.Transfers(0, 1e-9); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := m.Transfers(16, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	ts, err := m.Transfers(64, 1e-9)
	if err != nil {
		t.Fatalf("Transfers: %v", err)
	}
	if len(ts.HV) != 33 || len(ts.HI) != 33 {
		t.Fatalf("transfer lengths %d/%d, want 33", len(ts.HV), len(ts.HI))
	}
	if ts.RSeries() <= 0 {
		t.Fatalf("RSeries = %v", ts.RSeries())
	}
	if _, err := ts.SteadyState(make([]float64, 10)); err == nil {
		t.Error("wrong-length load accepted by SteadyState")
	}
	if _, _, _, err := ts.Spectra(make([]float64, 10)); err == nil {
		t.Error("wrong-length load accepted by Spectra")
	}
}

func TestSteadyStateDCLoad(t *testing.T) {
	// A constant load should produce a pure IR drop and a DC inductor
	// current equal to the load.
	m := newTestModel(t, 2)
	const n = 256
	dt := 1e-9
	ts, err := m.Transfers(n, dt)
	if err != nil {
		t.Fatalf("Transfers: %v", err)
	}
	load := make([]float64, n)
	for i := range load {
		load[i] = 2.0
	}
	resp, err := ts.SteadyState(load)
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	wantV := m.Params.VNominal - 2.0*ts.RSeries()
	for i, v := range resp.VDie {
		if math.Abs(v-wantV) > 1e-9 {
			t.Fatalf("VDie[%d] = %v, want %v", i, v, wantV)
		}
	}
	for i, iv := range resp.IDie {
		if math.Abs(iv-2.0) > 1e-9 {
			t.Fatalf("IDie[%d] = %v, want 2", i, iv)
		}
	}
}

func TestSpectraPureSineLoad(t *testing.T) {
	m := newTestModel(t, 2)
	const n = 1024
	dt := 1e-9
	fs := 1 / dt
	ts, err := m.Transfers(n, dt)
	if err != nil {
		t.Fatalf("Transfers: %v", err)
	}
	// Put the tone exactly on bin 70 (~68.4 MHz).
	k := 70
	f := float64(k) * fs / n
	const amp = 0.5
	load := make([]float64, n)
	for i := range load {
		load[i] = 1.0 + amp*math.Sin(2*math.Pi*f*float64(i)*dt)
	}
	freqs, vAmp, iAmp, err := ts.Spectra(load)
	if err != nil {
		t.Fatalf("Spectra: %v", err)
	}
	if math.Abs(freqs[k]-f) > 1 {
		t.Fatalf("bin freq %v, want %v", freqs[k], f)
	}
	z, err := m.Impedance(f)
	if err != nil {
		t.Fatalf("Impedance: %v", err)
	}
	wantV := amp * cmodAbs(z)
	if math.Abs(vAmp[k]-wantV) > 1e-6*(1+wantV) {
		t.Fatalf("vAmp = %v, want %v", vAmp[k], wantV)
	}
	if iAmp[k] <= 0 {
		t.Fatal("iAmp at tone is zero")
	}
	// Other AC bins are empty for a pure tone.
	for i := 1; i < len(vAmp); i++ {
		if i == k {
			continue
		}
		if vAmp[i] > 1e-9 {
			t.Fatalf("leakage at bin %d: %v", i, vAmp[i])
		}
	}
}

func cmodAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

// Property: periodic steady state from TransferSet matches the tail of a
// long transient for random square-wave loads near resonance.
func TestSteadyStateMatchesTransientProperty(t *testing.T) {
	m := newTestModel(t, 2)
	f0 := m.FirstOrderResonance()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := f0 * (0.7 + 0.6*rng.Float64())
		amp := 0.2 + 0.8*rng.Float64()
		period := 1 / f
		dt := period / 64
		n := 4096
		load := make([]float64, n)
		wave := func(tm float64) float64 {
			if math.Mod(tm, period) < period/2 {
				return amp
			}
			return 0
		}
		for i := range load {
			load[i] = wave(float64(i) * dt)
		}
		ts, err := m.Transfers(n, dt)
		if err != nil {
			return false
		}
		ss, err := ts.SteadyState(load)
		if err != nil {
			return false
		}
		// The square wave does not tile the FFT window exactly, so compare
		// only the coarse peak-to-peak over matching windows.
		tr, err := m.Transient(wave, dt, 3*n)
		if err != nil {
			return false
		}
		tail := tr.VDie[len(tr.VDie)-n:]
		ptpTr := ptp(tail)
		ptpSS := ptp(ss.VDie[n/4 : 3*n/4])
		return math.Abs(ptpTr-ptpSS) < 0.15*ptpTr+1e-6
	}
	cfg := &quick.Config{MaxCount: 5, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func ptp(x []float64) float64 {
	min, max := x[0], x[0]
	for _, v := range x {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

func TestTransientUsesLoadWaveform(t *testing.T) {
	m := newTestModel(t, 2)
	resp, err := m.Transient(circuit.DC(1.0), 1e-9, 100)
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	// DC 1A load from the operating point: flat at Vnom - IR.
	last := resp.VDie[len(resp.VDie)-1]
	if last >= m.Params.VNominal {
		t.Fatalf("no IR drop under DC load: %v", last)
	}
	first := resp.VDie[0]
	if math.Abs(first-last) > 1e-6 {
		t.Fatalf("DC load not quiescent from OP: %v vs %v", first, last)
	}
}

// TestSteadyStateIntoBitIdentical: the slab-row steady-state solver must
// reproduce SteadyStateAt bit for bit — both time series, at several
// lengths and supplies — since the V_MIN ladder's per-supply remainder is
// exactly this call.
func TestSteadyStateIntoBitIdentical(t *testing.T) {
	m := newTestModel(t, 2)
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{256, 1000, 1024} {
		dt := 0.5e-9
		ts, err := m.Transfers(n, dt)
		if err != nil {
			t.Fatal(err)
		}
		load := make([]float64, n)
		for i := range load {
			load[i] = math.Abs(rng.NormFloat64())
		}
		for _, supply := range []float64{1.0, 0.91, 0.785} {
			want, err := ts.SteadyStateAt(load, supply)
			if err != nil {
				t.Fatal(err)
			}
			vdie := make([]float64, n)
			idie := make([]float64, n)
			half := n/2 + 1
			spec := make([]complex128, half)
			prod := make([]complex128, half)
			scratch := make([]complex128, dsp.RFFTScratchLen(n))
			if err := ts.SteadyStateInto(vdie, idie, load, supply, spec, prod, scratch); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if math.Float64bits(vdie[i]) != math.Float64bits(want.VDie[i]) {
					t.Fatalf("n=%d supply=%v: VDie[%d] %v != %v", n, supply, i, vdie[i], want.VDie[i])
				}
				if math.Float64bits(idie[i]) != math.Float64bits(want.IDie[i]) {
					t.Fatalf("n=%d supply=%v: IDie[%d] %v != %v", n, supply, i, idie[i], want.IDie[i])
				}
			}
		}
	}
}

// TestSteadyStateIntoValidation: every mis-sized row is rejected before any
// write.
func TestSteadyStateIntoValidation(t *testing.T) {
	m := newTestModel(t, 2)
	n := 256
	ts, err := m.Transfers(n, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, n)
	half := n/2 + 1
	good := func() ([]float64, []float64, []complex128, []complex128, []complex128) {
		return make([]float64, n), make([]float64, n),
			make([]complex128, half), make([]complex128, half),
			make([]complex128, dsp.RFFTScratchLen(n))
	}
	vdie, idie, spec, prod, scratch := good()
	if err := ts.SteadyStateInto(vdie, idie, load[:n-1], 1.0, spec, prod, scratch); err == nil {
		t.Fatal("short load accepted")
	}
	if err := ts.SteadyStateInto(vdie[:n-1], idie, load, 1.0, spec, prod, scratch); err == nil {
		t.Fatal("short vdie accepted")
	}
	if err := ts.SteadyStateInto(vdie, idie, load, 1.0, spec[:half-1], prod, scratch); err == nil {
		t.Fatal("short spec accepted")
	}
	if err := ts.SteadyStateInto(vdie, idie, load, 1.0, spec, prod, scratch[:0]); err == nil {
		t.Fatal("short scratch accepted")
	}
}
