// Package pdn models the die-package-PCB power-delivery network of Figure 1
// in the paper: a chain of LC tanks whose highest-frequency ("first-order")
// resonance is formed by the on-die capacitance and the package inductance.
//
// The model is parameterized per platform and per number of powered cores:
// power-gating a core removes its contribution to the die capacitance, which
// raises the first-order resonance frequency (Section 6 of the paper).
//
// Two analysis paths are provided on top of the internal/circuit solver:
//
//   - Transient: exact trapezoidal integration under an arbitrary load
//     current waveform (used by the simulated OC-DSO).
//   - TransferSet: precomputed complex transfer functions H_V(f) and H_I(f)
//     (die voltage and package-inductor current per unit load current) at
//     FFT bin frequencies. Because the network is linear, the periodic
//     steady state under any load is obtained by multiplying the load's
//     spectrum by these transfers — orders of magnitude faster than a
//     transient and exact in steady state. The GA fitness path uses this.
package pdn

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/dsp"
)

// Params describes a PDN electrically. All values are SI units.
type Params struct {
	Name     string  `json:"name"`      // human-readable PDN name, e.g. "juno-a72"
	VNominal float64 `json:"v_nominal"` // nominal supply voltage at the regulator (volts)

	// Die: switching load plus per-core decoupling capacitance in series
	// with the power-grid resistance.
	CDieCore   float64 `json:"c_die_core"`   // on-die capacitance contributed by each powered core
	CDieUncore float64 `json:"c_die_uncore"` // always-on die capacitance (uncore, L2, grid)
	RDie       float64 `json:"r_die"`        // lumped on-die grid resistance in series with CDie

	// Package: trace inductance/resistance feeding the die (the 1st-order
	// tank inductance) plus package decap with its parasitics.
	LPkg      float64 `json:"l_pkg"`
	RPkgTrace float64 `json:"r_pkg_trace"`
	CPkg      float64 `json:"c_pkg"`
	ESRPkg    float64 `json:"esr_pkg"`
	ESLPkg    float64 `json:"esl_pkg"`

	// PCB: trace inductance/resistance feeding the package plus bulk decap.
	LPcb      float64 `json:"l_pcb"`
	RPcbTrace float64 `json:"r_pcb_trace"`
	CPcb      float64 `json:"c_pcb"`
	ESRPcb    float64 `json:"esr_pcb"`
	ESLPcb    float64 `json:"esl_pcb"`

	// Regulator output impedance.
	LVrm float64 `json:"l_vrm"`
	RVrm float64 `json:"r_vrm"`
}

// Validate reports the first problem with the parameter set, or nil.
func (p Params) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"VNominal", p.VNominal},
		{"CDieCore", p.CDieCore},
		{"CDieUncore", p.CDieUncore},
		{"RDie", p.RDie},
		{"LPkg", p.LPkg},
		{"RPkgTrace", p.RPkgTrace},
		{"CPkg", p.CPkg},
		{"ESRPkg", p.ESRPkg},
		{"ESLPkg", p.ESLPkg},
		{"LPcb", p.LPcb},
		{"RPcbTrace", p.RPcbTrace},
		{"CPcb", p.CPcb},
		{"ESRPcb", p.ESRPcb},
		{"ESLPcb", p.ESLPcb},
		{"LVrm", p.LVrm},
		{"RVrm", p.RVrm},
	}
	for _, c := range checks {
		if c.v <= 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("pdn: parameter %s = %v is not a positive finite value", c.name, c.v)
		}
	}
	return nil
}

// Node and element names used in the generated netlist.
const (
	NodeDie = "die"
	NodePkg = "pkg"
	NodePcb = "pcb"
	NodeVrm = "vrm"

	ElemLoad = "iload" // the CPU current source, die -> ground
	ElemLPkg = "lpkg"  // package trace inductor; its current is I_DIE
	ElemVrm  = "vs"    // supply source
)

// Model is a PDN instance for a specific powered-core count.
type Model struct {
	Params Params
	Cores  int // number of powered cores contributing CDieCore each

	load circuit.Waveform // current program load; swapped per analysis
}

// NewModel validates p and returns a model with cores powered cores.
func NewModel(p Params, cores int) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		return nil, fmt.Errorf("pdn: cores = %d, need at least 1", cores)
	}
	return &Model{Params: p, Cores: cores}, nil
}

// CDie returns the total die capacitance for the model's powered-core count.
func (m *Model) CDie() float64 {
	return float64(m.Cores)*m.Params.CDieCore + m.Params.CDieUncore
}

// FirstOrderResonance returns the analytic estimate of the first-order
// resonance frequency, 1/(2π·sqrt(LPkg·CDie)). The true impedance peak is
// slightly shifted by damping; use ResonancePeak for the simulated value.
func (m *Model) FirstOrderResonance() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(m.Params.LPkg*m.CDie()))
}

// build constructs the netlist with the given load waveform.
func (m *Model) build(load circuit.Waveform) *circuit.Circuit {
	p := m.Params
	c := circuit.New()
	c.V(ElemVrm, NodeVrm, circuit.Ground, p.VNominal)
	// Regulator output impedance to the PCB plane.
	c.R("rvrm", NodeVrm, "vrm1", p.RVrm)
	c.L("lvrm", "vrm1", NodePcb, p.LVrm)
	// Bulk decap on the PCB.
	c.L("eslpcb", NodePcb, "pcbx", p.ESLPcb)
	c.R("esrpcb", "pcbx", "pcby", p.ESRPcb)
	c.C("cpcb", "pcby", circuit.Ground, p.CPcb)
	// PCB traces to the package.
	c.R("rpcb", NodePcb, "pcb1", p.RPcbTrace)
	c.L("lpcb", "pcb1", NodePkg, p.LPcb)
	// Package decap.
	c.L("eslpkg", NodePkg, "pkgx", p.ESLPkg)
	c.R("esrpkg", "pkgx", "pkgy", p.ESRPkg)
	c.C("cpkg", "pkgy", circuit.Ground, p.CPkg)
	// Package traces to the die: the first-order tank inductance.
	c.R("rpkg", NodePkg, "pkg1", p.RPkgTrace)
	c.L(ElemLPkg, "pkg1", NodeDie, p.LPkg)
	// Die capacitance behind the grid resistance.
	c.R("rdie", NodeDie, "diex", p.RDie)
	c.C("cdie", "diex", circuit.Ground, m.CDie())
	// The program's current demand.
	c.I(ElemLoad, NodeDie, circuit.Ground, load)
	return c
}

// Impedance returns the driving-point impedance seen by the die at f.
func (m *Model) Impedance(f float64) (complex128, error) {
	ckt := m.build(circuit.DC(0))
	return ckt.Impedance(f, ElemLoad, NodeDie)
}

// ImpedancePoint pairs a frequency with an impedance magnitude.
type ImpedancePoint struct {
	Freq float64 // Hz
	Z    float64 // ohms, |Z(f)|
}

// ImpedanceProfile samples |Z(f)| at points log-spaced frequencies between
// fLo and fHi inclusive.
func (m *Model) ImpedanceProfile(fLo, fHi float64, points int) ([]ImpedancePoint, error) {
	if fLo <= 0 || fHi <= fLo || points < 2 {
		return nil, fmt.Errorf("pdn: invalid impedance sweep [%v, %v] x%d", fLo, fHi, points)
	}
	ckt := m.build(circuit.DC(0))
	out := make([]ImpedancePoint, points)
	ratio := math.Pow(fHi/fLo, 1/float64(points-1))
	f := fLo
	for i := 0; i < points; i++ {
		z, err := ckt.Impedance(f, ElemLoad, NodeDie)
		if err != nil {
			return nil, err
		}
		out[i] = ImpedancePoint{Freq: f, Z: cmplx.Abs(z)}
		f *= ratio
	}
	return out, nil
}

// ResonancePeak numerically locates the impedance maximum within [fLo, fHi]
// by a coarse log sweep followed by golden-section refinement.
func (m *Model) ResonancePeak(fLo, fHi float64) (freq, zmag float64, err error) {
	prof, err := m.ImpedanceProfile(fLo, fHi, 200)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	for i, p := range prof {
		if p.Z > prof[best].Z {
			best = i
		}
	}
	lo, hi := fLo, fHi
	if best > 0 {
		lo = prof[best-1].Freq
	}
	if best < len(prof)-1 {
		hi = prof[best+1].Freq
	}
	zAt := func(f float64) float64 {
		z, zerr := m.Impedance(f)
		if zerr != nil {
			err = zerr
			return 0
		}
		return cmplx.Abs(z)
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	c1 := b - phi*(b-a)
	c2 := a + phi*(b-a)
	f1, f2 := zAt(c1), zAt(c2)
	for i := 0; i < 60 && err == nil; i++ {
		if f1 < f2 {
			a, c1, f1 = c1, c2, f2
			c2 = a + phi*(b-a)
			f2 = zAt(c2)
		} else {
			b, c2, f2 = c2, c1, f1
			c1 = b - phi*(b-a)
			f1 = zAt(c1)
		}
	}
	if err != nil {
		return 0, 0, err
	}
	mid := (a + b) / 2
	return mid, zAt(mid), err
}

// ResonancePeaks returns all local impedance maxima between fLo and fHi,
// strongest first, using a dense log sweep.
func (m *Model) ResonancePeaks(fLo, fHi float64, points int) ([]dsp.Peak, error) {
	prof, err := m.ImpedanceProfile(fLo, fHi, points)
	if err != nil {
		return nil, err
	}
	freqs := make([]float64, len(prof))
	zs := make([]float64, len(prof))
	for i, p := range prof {
		freqs[i], zs[i] = p.Freq, p.Z
	}
	peaks := dsp.FindPeaks(freqs, zs, 0)
	// Drop endpoint artifacts: a peak at the sweep edge is not a resonance.
	out := peaks[:0]
	for _, p := range peaks {
		if p.Bin == 0 || p.Bin == len(zs)-1 {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}
