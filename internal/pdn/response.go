package pdn

import (
	"fmt"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/dsp"
)

// Response holds a time-domain PDN response.
type Response struct {
	Dt   float64   // sample spacing, seconds
	VDie []float64 // die voltage including DC level
	IDie []float64 // package-inductor current (the EM-radiating feed current)
}

// MaxDroop returns the largest drop of VDie below the nominal voltage.
func (r *Response) MaxDroop(vnom float64) float64 {
	var worst float64
	for _, v := range r.VDie {
		if d := vnom - v; d > worst {
			worst = d
		}
	}
	return worst
}

// PeakToPeak returns the peak-to-peak die-voltage swing.
func (r *Response) PeakToPeak() float64 { return dsp.PeakToPeak(r.VDie) }

// MinVoltage returns the lowest die voltage in the response.
func (r *Response) MinVoltage() float64 {
	min, _ := dsp.MinMax(r.VDie)
	return min
}

// Transient integrates the PDN under the given load-current waveform,
// starting from the DC operating point with the load's t=0 value.
func (m *Model) Transient(load circuit.Waveform, dt float64, steps int) (*Response, error) {
	ckt := m.build(load)
	tr, err := ckt.RunTransient(circuit.TransientOptions{Dt: dt, Steps: steps, FromOP: true})
	if err != nil {
		return nil, err
	}
	v, err := tr.Voltage(NodeDie)
	if err != nil {
		return nil, err
	}
	i, err := tr.Current(ElemLPkg)
	if err != nil {
		return nil, err
	}
	return &Response{Dt: dt, VDie: v, IDie: i}, nil
}

// StepResponse integrates the response to a load-current step of the given
// amplitude applied at t=0+ (Figure 1c of the paper).
func (m *Model) StepResponse(amps, dt float64, steps int) (*Response, error) {
	step := func(t float64) float64 {
		if t > 0 {
			return amps
		}
		return 0
	}
	return m.Transient(step, dt, steps)
}

// TransferSet holds the precomputed complex transfers at the bin frequencies
// of an N-point FFT with sample spacing Dt: for bin k (0..N/2),
// HV[k] is the die-voltage phasor and HI[k] the package-inductor-current
// phasor per unit load current at frequency k/(N·Dt).
//
// A TransferSet depends only on the model, N and Dt, so callers evaluating
// many load waveforms (the GA) compute it once and reuse it.
type TransferSet struct {
	N  int
	Dt float64
	HV []complex128 // len N/2+1
	HI []complex128 // len N/2+1

	// freqs, absHV and absHI are per-bin values that depend only on (N, Dt)
	// and the model: the bin frequencies and transfer magnitudes. They are
	// computed once here rather than on every Spectra call, and shared
	// read-only with every caller.
	freqs []float64
	absHV []float64
	absHI []float64

	vnominal float64
	rSeries  float64 // total DC series resistance, for the DC droop term
}

// Transfers computes the transfer set for n samples at spacing dt.
func (m *Model) Transfers(n int, dt float64) (*TransferSet, error) {
	if err := dsp.Validate(n, 1/dt); err != nil {
		return nil, err
	}
	ckt := m.build(circuit.DC(0))
	half := n/2 + 1
	ts := &TransferSet{
		N: n, Dt: dt,
		HV:       make([]complex128, half),
		HI:       make([]complex128, half),
		freqs:    make([]float64, half),
		absHV:    make([]float64, half),
		absHI:    make([]float64, half),
		vnominal: m.Params.VNominal,
	}
	fs := 1 / dt
	for k := 0; k < half; k++ {
		f := dsp.BinFreq(k, n, fs)
		res, err := ckt.SolveAC(f, circuit.ACStimulus{ElemLoad: 1})
		if err != nil {
			return nil, fmt.Errorf("pdn: transfer at bin %d (%g Hz): %w", k, f, err)
		}
		hv, err := res.Voltage(NodeDie)
		if err != nil {
			return nil, err
		}
		hi, err := res.Current(ElemLPkg)
		if err != nil {
			return nil, err
		}
		ts.HV[k] = hv
		ts.HI[k] = hi
		ts.freqs[k] = f
		ts.absHV[k] = cmplx.Abs(hv)
		ts.absHI[k] = cmplx.Abs(hi)
	}
	// At DC, HV is -R_series; remember it for reporting.
	ts.rSeries = -real(ts.HV[0])
	return ts, nil
}

// SteadyState returns the exact periodic steady-state response to the load
// waveform (len must be N): VDie includes the nominal DC level, IDie is the
// package-inductor current including its DC component.
func (ts *TransferSet) SteadyState(load []float64) (*Response, error) {
	return ts.SteadyStateAt(load, ts.vnominal)
}

// SteadyStateAt is SteadyState with an explicit regulator setpoint. The
// transfer functions themselves are independent of the supply (the network
// is linear), so one TransferSet serves every voltage step of a V_MIN
// search.
func (ts *TransferSet) SteadyStateAt(load []float64, vnominal float64) (*Response, error) {
	if len(load) != ts.N {
		return nil, fmt.Errorf("pdn: steady-state load length %d, want %d", len(load), ts.N)
	}
	spec := dsp.RFFT(load)
	n := ts.N
	half := n/2 + 1
	vspec := dsp.GetSpectrum(half)
	ispec := dsp.GetSpectrum(half)
	for k := 0; k < half; k++ {
		vspec[k] = spec[k] * ts.HV[k]
		ispec[k] = spec[k] * ts.HI[k]
	}
	dsp.PutSpectrum(spec)
	// The load is real and the transfers are evaluated on the half grid, so
	// the responses are real too: invert on the half spectrum directly.
	vt := dsp.IRFFT(vspec, n)
	it := dsp.IRFFT(ispec, n)
	dsp.PutSpectrum(vspec)
	dsp.PutSpectrum(ispec)
	// Lift the voltage perturbation to the DC level in place; vt is freshly
	// allocated by IRFFT, so the Response owns it.
	for i := 0; i < n; i++ {
		vt[i] = vnominal + vt[i]
	}
	out := &Response{Dt: ts.Dt, VDie: vt, IDie: it}
	// IDie from the transfer is the *perturbation*; its DC component equals
	// the load's mean already via HI[0] (at DC all load current flows
	// through the inductor), so nothing more to add.
	return out, nil
}

// SteadyStateInto is SteadyStateAt writing the time-domain responses into
// caller-provided rows, for batched V_MIN campaigns: vdie and idie must
// have length N, spec and prod length N/2+1, and fftScratch at least
// dsp.RFFTScratchLen(N) entries (all batch slab rows; every element is
// overwritten before any read). The load spectrum computes once; the
// voltage and current responses then derive per bin from it, so one
// product row serves both inversions in turn — each per-bin value is the
// same arithmetic SteadyStateAt performs, so the filled responses are
// bit-identical.
func (ts *TransferSet) SteadyStateInto(vdie, idie, load []float64, vnominal float64, spec, prod, fftScratch []complex128) error {
	n := ts.N
	if len(load) != n {
		return fmt.Errorf("pdn: steady-state load length %d, want %d", len(load), n)
	}
	if len(vdie) != n || len(idie) != n {
		return fmt.Errorf("pdn: steady-state destinations %d/%d samples, want %d", len(vdie), len(idie), n)
	}
	half := n/2 + 1
	if len(spec) != half || len(prod) != half {
		return fmt.Errorf("pdn: steady-state spectra %d/%d bins, want %d", len(spec), len(prod), half)
	}
	if len(fftScratch) < dsp.RFFTScratchLen(n) {
		return fmt.Errorf("pdn: FFT scratch %d, want %d", len(fftScratch), dsp.RFFTScratchLen(n))
	}
	dsp.RFFTInto(spec, load, fftScratch)
	for k := 0; k < half; k++ {
		prod[k] = spec[k] * ts.HV[k]
	}
	dsp.IRFFTInto(vdie, prod, n, fftScratch)
	for k := 0; k < half; k++ {
		prod[k] = spec[k] * ts.HI[k]
	}
	dsp.IRFFTInto(idie, prod, n, fftScratch)
	for i := 0; i < n; i++ {
		vdie[i] = vnominal + vdie[i]
	}
	return nil
}

// Spectra returns the single-sided amplitude spectra of the die voltage and
// inductor current under the given load waveform (len N): freqs[k] in Hz,
// amplitudes in volts and amps. The returned freqs slice is shared across
// calls (it depends only on the transfer set) and must not be modified.
func (ts *TransferSet) Spectra(load []float64) (freqs, vAmp, iAmp []float64, err error) {
	if len(load) != ts.N {
		return nil, nil, nil, fmt.Errorf("pdn: spectra load length %d, want %d", len(load), ts.N)
	}
	spec := dsp.RFFT(load)
	half := ts.N/2 + 1
	vAmp = make([]float64, half)
	iAmp = make([]float64, half)
	ts.foldAmp(vAmp, iAmp, spec)
	dsp.PutSpectrum(spec)
	return ts.freqs, vAmp, iAmp, nil
}

// SpectraInto is Spectra with caller-provided destinations and FFT scratch,
// for generation-batched evaluation: vAmp, iAmp and spec must have length
// N/2+1 and fftScratch at least dsp.RFFTScratchLen(N) (batch slab rows).
// The FFT and the per-bin fold run the same arithmetic in the same order as
// Spectra, so the filled amplitudes are bit-identical. The returned freqs
// slice is shared across calls and must not be modified.
func (ts *TransferSet) SpectraInto(vAmp, iAmp, load []float64, spec, fftScratch []complex128) (freqs []float64, err error) {
	if len(load) != ts.N {
		return nil, fmt.Errorf("pdn: spectra load length %d, want %d", len(load), ts.N)
	}
	half := ts.N/2 + 1
	if len(vAmp) != half || len(iAmp) != half || len(spec) != half {
		return nil, fmt.Errorf("pdn: spectra destinations %d/%d/%d bins, want %d",
			len(vAmp), len(iAmp), len(spec), half)
	}
	if len(fftScratch) < dsp.RFFTScratchLen(ts.N) {
		return nil, fmt.Errorf("pdn: FFT scratch %d, want %d", len(fftScratch), dsp.RFFTScratchLen(ts.N))
	}
	ts.foldAmp(vAmp, iAmp, dsp.RFFTInto(spec, load, fftScratch))
	return ts.freqs, nil
}

// foldAmp folds a half spectrum into single-sided voltage and current
// amplitudes; the one shared body keeps Spectra and SpectraInto bit-identical.
func (ts *TransferSet) foldAmp(vAmp, iAmp []float64, spec []complex128) {
	n := ts.N
	scale0 := 1 / float64(n)
	s2 := scale0 * 2
	for k := 0; k < len(spec); k++ {
		scale := s2
		if k == 0 || (n%2 == 0 && k == n/2) {
			scale = scale0
		}
		mag := dsp.CAbs(spec[k]) * scale
		vAmp[k] = mag * ts.absHV[k]
		iAmp[k] = mag * ts.absHI[k]
	}
}

// RSeries returns the total DC series resistance of the network as seen by
// the die (used for IR-drop reporting).
func (ts *TransferSet) RSeries() float64 { return ts.rSeries }
