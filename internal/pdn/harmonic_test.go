package pdn

import (
	"math"
	"testing"
)

func TestSquareWaveCoeffs(t *testing.T) {
	c := SquareWaveCoeffs(2.0, 7)
	if len(c) != 8 {
		t.Fatalf("got %d coefficients", len(c))
	}
	// DC level is amp/2.
	if real(c[0]) != 1.0 || imag(c[0]) != 0 {
		t.Fatalf("DC coefficient %v", c[0])
	}
	// Even harmonics vanish.
	for _, k := range []int{2, 4, 6} {
		if c[k] != 0 {
			t.Fatalf("even harmonic %d = %v", k, c[k])
		}
	}
	// Odd harmonic magnitudes are amp/(pi*k).
	for _, k := range []int{1, 3, 5, 7} {
		want := 2.0 / (math.Pi * float64(k))
		got := math.Hypot(real(c[k]), imag(c[k]))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("harmonic %d magnitude %v, want %v", k, got, want)
		}
	}
}

func TestSquareWaveCoeffsReconstruct(t *testing.T) {
	// Summing the series at sample points approximates the square wave.
	const amp = 1.0
	coeffs := SquareWaveCoeffs(amp, 199)
	const samples = 64
	for s := 0; s < samples; s++ {
		x := real(coeffs[0])
		for k := 1; k < len(coeffs); k++ {
			angle := 2 * math.Pi * float64(k) * float64(s) / samples
			x += 2 * (real(coeffs[k])*math.Cos(angle) - imag(coeffs[k])*math.Sin(angle))
		}
		var want float64
		if s < samples/2 {
			want = amp
		}
		// Skip the discontinuity neighbourhoods (Gibbs).
		if s%32 < 3 || s%32 > 29 {
			continue
		}
		if math.Abs(x-want) > 0.05 {
			t.Fatalf("sample %d: reconstructed %v, want %v", s, x, want)
		}
	}
}

func TestHarmonicResponseValidation(t *testing.T) {
	m := newTestModel(t, 2)
	coeffs := SquareWaveCoeffs(0.5, 9)
	if _, err := m.HarmonicResponse(0, coeffs, 64); err == nil {
		t.Error("f0=0 accepted")
	}
	if _, err := m.HarmonicResponse(1e6, nil, 64); err == nil {
		t.Error("no coefficients accepted")
	}
	if _, err := m.HarmonicResponse(1e6, coeffs, 1); err == nil {
		t.Error("1 sample accepted")
	}
}

func TestHarmonicResponseDCOnly(t *testing.T) {
	// A pure DC load through the harmonic path must match the IR drop.
	m := newTestModel(t, 2)
	resp, err := m.HarmonicResponse(50e6, []complex128{complex(1.0, 0)}, 32)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := m.Transfers(16, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Params.VNominal - ts.RSeries()
	for i, v := range resp.VDie {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("sample %d: %v, want %v", i, v, want)
		}
	}
	for _, iv := range resp.IDie {
		if math.Abs(iv-1.0) > 1e-9 {
			t.Fatalf("DC inductor current %v, want 1", iv)
		}
	}
}

func TestHarmonicResponseMatchesSteadyState(t *testing.T) {
	// A square wave synthesized via HarmonicResponse must agree with the
	// FFT-based SteadyState path on peak-to-peak swing.
	m := newTestModel(t, 2)
	f0 := m.FirstOrderResonance()
	coeffs := SquareWaveCoeffs(0.5, 63)
	hr, err := m.HarmonicResponse(f0, coeffs, 256)
	if err != nil {
		t.Fatal(err)
	}

	const n = 4096
	dt := 1 / (f0 * 64)
	ts, err := m.Transfers(n, dt)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, n)
	period := 1 / f0
	for i := range load {
		if math.Mod(float64(i)*dt, period) < period/2 {
			load[i] = 0.5
		}
	}
	ss, err := ts.SteadyState(load)
	if err != nil {
		t.Fatal(err)
	}
	hrPtp := hr.PeakToPeak()
	ssPtp := ss.PeakToPeak()
	if math.Abs(hrPtp-ssPtp) > 0.1*hrPtp {
		t.Fatalf("harmonic p2p %v vs steady-state p2p %v", hrPtp, ssPtp)
	}
}

func TestHarmonicResponsePeaksAtResonance(t *testing.T) {
	m := newTestModel(t, 2)
	fRes, _, err := m.ResonancePeak(30e6, 150e6)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := SquareWaveCoeffs(0.5, 31)
	swing := func(f float64) float64 {
		resp, err := m.HarmonicResponse(f, coeffs, 128)
		if err != nil {
			t.Fatal(err)
		}
		return resp.PeakToPeak()
	}
	at := swing(fRes)
	below := swing(fRes * 0.6)
	above := swing(fRes * 1.6)
	if at <= below || at <= above {
		t.Fatalf("no resonant maximum: %v below, %v at, %v above", below, at, above)
	}
}
