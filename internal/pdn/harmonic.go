package pdn

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
)

// HarmonicResponse computes the exact periodic steady-state die voltage and
// package-inductor current when the load current is given by a Fourier
// series: i(t) = sum_k coeffs[k]·exp(j·k·2π·f0·t) + conjugate terms, where
// coeffs[0] is the (real) DC level and coeffs[k] for k>=1 is the complex
// coefficient of the positive-frequency term. The response is sampled at
// samples points over one fundamental period.
//
// This is the natural analysis for the synthetic current load (SCL), whose
// square-wave stimulus has a closed-form series (see SquareWaveCoeffs).
func (m *Model) HarmonicResponse(f0 float64, coeffs []complex128, samples int) (*Response, error) {
	if f0 <= 0 || math.IsNaN(f0) {
		return nil, fmt.Errorf("pdn: invalid fundamental %v", f0)
	}
	if len(coeffs) == 0 || samples < 2 {
		return nil, fmt.Errorf("pdn: need coefficients and >=2 samples")
	}
	ckt := m.build(circuit.DC(0))
	type hk struct{ hv, hi complex128 }
	hs := make([]hk, len(coeffs))
	for k := range coeffs {
		res, err := ckt.SolveAC(float64(k)*f0, circuit.ACStimulus{ElemLoad: 1})
		if err != nil {
			return nil, err
		}
		hv, err := res.Voltage(NodeDie)
		if err != nil {
			return nil, err
		}
		hi, err := res.Current(ElemLPkg)
		if err != nil {
			return nil, err
		}
		hs[k] = hk{hv, hi}
	}
	period := 1 / f0
	dt := period / float64(samples)
	out := &Response{Dt: dt, VDie: make([]float64, samples), IDie: make([]float64, samples)}
	for s := 0; s < samples; s++ {
		// DC terms are real by construction.
		v := m.Params.VNominal + real(hs[0].hv*coeffs[0])
		i := real(hs[0].hi * coeffs[0])
		for k := 1; k < len(coeffs); k++ {
			if coeffs[k] == 0 {
				continue
			}
			rot := cmplx.Exp(complex(0, 2*math.Pi*float64(k)*float64(s)/float64(samples)))
			v += 2 * real(hs[k].hv*coeffs[k]*rot)
			i += 2 * real(hs[k].hi*coeffs[k]*rot)
		}
		out.VDie[s] = v
		out.IDie[s] = i
	}
	return out, nil
}

// SquareWaveCoeffs returns the Fourier coefficients (through harmonic K) of
// a 50% duty-cycle square wave switching between 0 and amp.
func SquareWaveCoeffs(amp float64, k int) []complex128 {
	coeffs := make([]complex128, k+1)
	coeffs[0] = complex(amp/2, 0)
	for n := 1; n <= k; n++ {
		if n%2 == 1 {
			// c_n = amp/(j·π·n)
			coeffs[n] = complex(0, -amp/(math.Pi*float64(n)))
		}
	}
	return coeffs
}
