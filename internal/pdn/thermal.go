package pdn

// Thermal adjustment. The paper's margining footnote lists temperature
// hot-spots among the variation effects margins must absorb; for the EM
// methodology the practical question is how much the electrical fingerprint
// drifts between a cold and a hot board. Copper resistance rises ~0.39%/K
// and on-die MOS capacitance creeps up slightly with temperature; reactances
// (L) are essentially athermal. The net effect on the first-order resonance
// is small — mostly a damping change — which is why fingerprint thresholds
// can be tight.

// Temperature coefficients used by AtTemperature.
const (
	// CopperTempCo is the fractional resistance change per kelvin.
	CopperTempCo = 0.0039
	// DieCapTempCo is the fractional die-capacitance change per kelvin.
	DieCapTempCo = 0.0003
)

// AtTemperature returns the parameters adjusted from the calibration
// temperature by deltaC kelvin: all resistive elements scale with the
// copper coefficient, the die capacitance with the (small) MOS coefficient,
// inductances stay put.
func (p Params) AtTemperature(deltaC float64) Params {
	r := 1 + CopperTempCo*deltaC
	if r < 0.1 {
		r = 0.1 // clamp: far outside any operating range
	}
	c := 1 + DieCapTempCo*deltaC
	if c < 0.5 {
		c = 0.5
	}
	out := p
	out.RDie *= r
	out.RPkgTrace *= r
	out.ESRPkg *= r
	out.RPcbTrace *= r
	out.ESRPcb *= r
	out.RVrm *= r
	out.CDieCore *= c
	out.CDieUncore *= c
	return out
}
