package pdn

import (
	"math"
	"testing"
)

func TestAtTemperatureScalesResistances(t *testing.T) {
	p := testParams()
	hot := p.AtTemperature(50)
	wantR := 1 + CopperTempCo*50
	if math.Abs(hot.RDie/p.RDie-wantR) > 1e-12 {
		t.Fatalf("RDie ratio %v, want %v", hot.RDie/p.RDie, wantR)
	}
	if math.Abs(hot.ESRPkg/p.ESRPkg-wantR) > 1e-12 {
		t.Fatalf("ESRPkg not scaled")
	}
	if hot.LPkg != p.LPkg || hot.LPcb != p.LPcb {
		t.Fatal("inductance changed with temperature")
	}
	wantC := 1 + DieCapTempCo*50
	if math.Abs(hot.CDieCore/p.CDieCore-wantC) > 1e-12 {
		t.Fatalf("CDieCore ratio %v, want %v", hot.CDieCore/p.CDieCore, wantC)
	}
	// Package/PCB ceramics treated as athermal here.
	if hot.CPkg != p.CPkg {
		t.Fatal("package capacitance changed")
	}
}

func TestAtTemperatureClamps(t *testing.T) {
	p := testParams()
	frozen := p.AtTemperature(-1000)
	if frozen.RDie <= 0 {
		t.Fatal("resistance went non-positive")
	}
	if err := frozen.Validate(); err != nil {
		t.Fatalf("clamped params invalid: %v", err)
	}
}

func TestResonanceDriftWithTemperatureIsSmall(t *testing.T) {
	cold, err := NewModel(testParams().AtTemperature(-20), 2)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewModel(testParams().AtTemperature(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	fc, _, err := cold.ResonancePeak(30e6, 150e6)
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := hot.ResonancePeak(30e6, 150e6)
	if err != nil {
		t.Fatal(err)
	}
	drift := math.Abs(fh - fc)
	if drift > 3e6 {
		t.Fatalf("resonance drifted %v Hz over 80 K — fingerprint thresholds assume < 3 MHz", drift)
	}
	// Damping, however, visibly changes: hot boards have lower Q.
	_, zc, err := cold.ResonancePeak(30e6, 150e6)
	if err != nil {
		t.Fatal(err)
	}
	_, zh, err := hot.ResonancePeak(30e6, 150e6)
	if err != nil {
		t.Fatal(err)
	}
	if zh >= zc {
		t.Fatalf("hot impedance peak %v not below cold %v", zh, zc)
	}
}
