// Package session records characterization results as versioned JSON
// documents — the artifact a margining campaign actually ships: which
// board, which domain, at what operating point, what the resonance was,
// which virus was evolved (as assembly, re-runnable anywhere), and the
// V_MIN table it produced.
package session

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// Version is the current report schema version.
const Version = 1

// Report is one characterization session.
type Report struct {
	Version   int    `json:"version"`
	CreatedAt string `json:"created_at"` // RFC 3339
	Platform  string `json:"platform"`
	Domain    string `json:"domain"`

	// Operating point at capture time.
	ClockHz      float64 `json:"clock_hz"`
	SupplyV      float64 `json:"supply_v"`
	PoweredCores int     `json:"powered_cores"`

	Resonance *ResonanceRecord `json:"resonance,omitempty"`
	Virus     *VirusRecord     `json:"virus,omitempty"`
	Vmin      []VminRecord     `json:"vmin,omitempty"`
	Notes     string           `json:"notes,omitempty"`
}

// ResonanceRecord stores a fast-sweep outcome.
type ResonanceRecord struct {
	Method      string       `json:"method"` // "em-fast-sweep", "scl", "ga"
	ResonanceHz float64      `json:"resonance_hz"`
	PeakDBm     float64      `json:"peak_dbm"`
	Points      []SweepPoint `json:"points,omitempty"`
}

// SweepPoint is one sweep sample.
type SweepPoint struct {
	ClockHz float64 `json:"clock_hz"`
	LoopHz  float64 `json:"loop_hz"`
	PeakDBm float64 `json:"peak_dbm"`
}

// VirusRecord stores an evolved stress test: the program itself travels as
// assembly text so any tool (or the lab daemon) can re-run it.
type VirusRecord struct {
	Program     string             `json:"program"`
	FitnessDBm  float64            `json:"fitness_dbm"`
	DominantHz  float64            `json:"dominant_hz"`
	Generations int                `json:"generations"`
	Mix         map[string]float64 `json:"mix,omitempty"`
}

// VminRecord is one row of a V_MIN campaign.
type VminRecord struct {
	Workload string  `json:"workload"`
	VminV    float64 `json:"vmin_v"`
	MarginV  float64 `json:"margin_v"`
	DroopV   float64 `json:"droop_v"`
	Outcome  string  `json:"outcome"`
}

// New starts a report for a domain's current state as observed through a
// backend — local bench or remote lab alike, and with identical bytes:
// the identity and operating-point fields all round-trip the wire
// losslessly.
func New(be backend.Backend, domain string, now time.Time) (*Report, error) {
	st, err := be.State(domain)
	if err != nil {
		return nil, err
	}
	return &Report{
		Version:      Version,
		CreatedAt:    now.UTC().Format(time.RFC3339),
		Platform:     be.PlatformName(),
		Domain:       domain,
		ClockHz:      st.ClockHz,
		SupplyV:      st.SupplyV,
		PoweredCores: st.PoweredCores,
	}, nil
}

// NewLocal starts a report directly from an in-process platform/domain
// pair; it is New over a Local backend without needing one constructed.
func NewLocal(p *platform.Platform, d *platform.Domain, now time.Time) *Report {
	return &Report{
		Version:      Version,
		CreatedAt:    now.UTC().Format(time.RFC3339),
		Platform:     p.Name,
		Domain:       d.Spec.Name,
		ClockHz:      d.ClockHz(),
		SupplyV:      d.SupplyVolts(),
		PoweredCores: d.PoweredCores(),
	}
}

// SetSweep records a fast-sweep result.
func (r *Report) SetSweep(res *core.SweepResult) {
	rec := &ResonanceRecord{
		Method:      "em-fast-sweep",
		ResonanceHz: res.ResonanceHz,
		PeakDBm:     res.PeakDBm,
	}
	for _, pt := range res.Points {
		rec.Points = append(rec.Points, SweepPoint{
			ClockHz: pt.ClockHz, LoopHz: pt.LoopHz, PeakDBm: pt.PeakDBm,
		})
	}
	r.Resonance = rec
}

// SetVirus records a GA result, serializing the winning loop as assembly.
func (r *Report) SetVirus(pool *isa.Pool, res *ga.Result) {
	mix := make(map[string]float64)
	for class, frac := range isa.MixBreakdown(res.Best.Seq) {
		mix[class.String()] = frac
	}
	r.Virus = &VirusRecord{
		Program:     isa.FormatProgram(pool, res.Best.Seq),
		FitnessDBm:  res.Best.Fitness,
		DominantHz:  res.Best.DominantHz,
		Generations: len(res.History),
		Mix:         mix,
	}
}

// AddVmin appends one V_MIN campaign row.
func (r *Report) AddVmin(workload string, res *vmin.Result) {
	r.Vmin = append(r.Vmin, VminRecord{
		Workload: workload,
		VminV:    res.VminV,
		MarginV:  res.MarginV,
		DroopV:   res.DroopNominalV,
		Outcome:  res.Outcome.String(),
	})
}

// VirusProgram parses the stored virus back into an instruction sequence.
func (r *Report) VirusProgram(pool *isa.Pool) ([]isa.Inst, error) {
	if r.Virus == nil {
		return nil, fmt.Errorf("session: report has no virus")
	}
	return isa.ParseProgram(pool, r.Virus.Program)
}

// Save writes the report as indented JSON.
func (r *Report) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("session: encoding report: %w", err)
	}
	return nil
}

// Load parses a report and checks its schema version.
func Load(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("session: decoding report: %w", err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("session: unsupported report version %d (want %d)", r.Version, Version)
	}
	if r.Platform == "" || r.Domain == "" {
		return nil, fmt.Errorf("session: report missing platform/domain identity")
	}
	return &r, nil
}
