package session

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/platform"
	"repro/internal/vmin"
	"repro/internal/workload"
)

func buildReport(t *testing.T) (*Report, *platform.Domain) {
	t.Helper()
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBench(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 3
	d, err := p.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewLocal(p, d, time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC))

	sweep, err := b.FastResonanceSweep(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep.SetSweep(sweep)

	cfg := ga.DefaultConfig(d.Spec.Pool())
	cfg.PopulationSize, cfg.Generations = 10, 4
	res, err := b.GenerateVirus(d, cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep.SetVirus(d.Spec.Pool(), res)

	w, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	tester := vmin.NewTester(d, 2)
	vres, err := tester.Search(platform.Load{Seq: seq, ActiveCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep.AddVmin("lbm", vres)
	return rep, d
}

func TestReportRoundTrip(t *testing.T) {
	rep, d := buildReport(t)
	var buf bytes.Buffer
	if err := rep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Platform != rep.Platform || back.Domain != rep.Domain {
		t.Fatalf("identity lost: %+v", back)
	}
	if back.Resonance == nil || back.Resonance.ResonanceHz != rep.Resonance.ResonanceHz {
		t.Fatal("resonance record lost")
	}
	if len(back.Resonance.Points) != len(rep.Resonance.Points) {
		t.Fatal("sweep points lost")
	}
	if back.Virus == nil || back.Virus.DominantHz != rep.Virus.DominantHz {
		t.Fatal("virus record lost")
	}
	if len(back.Vmin) != 1 || back.Vmin[0].Workload != "lbm" {
		t.Fatalf("vmin rows %+v", back.Vmin)
	}
	// The stored virus is re-runnable.
	seq, err := back.VirusProgram(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("virus program empty after round trip")
	}
	if back.CreatedAt != "2026-07-04T12:00:00Z" {
		t.Fatalf("timestamp %q", back.CreatedAt)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 999, "platform": "x", "domain": "y"}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Error("report without identity accepted")
	}
}

func TestVirusProgramMissing(t *testing.T) {
	r := &Report{Version: Version}
	if _, err := r.VirusProgram(nil); err == nil {
		t.Error("missing virus accepted")
	}
}

func TestVirusMixRecorded(t *testing.T) {
	rep, _ := buildReport(t)
	if len(rep.Virus.Mix) == 0 {
		t.Fatal("no instruction mix recorded")
	}
	var total float64
	for _, f := range rep.Virus.Mix {
		total += f
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("mix fractions sum to %v", total)
	}
}
