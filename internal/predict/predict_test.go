package predict

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

func testSetup(t *testing.T) (*core.Bench, *platform.Domain) {
	t.Helper()
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBench(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 3
	d, err := p.Domain(platform.DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	return b, d
}

func buildLoad(t *testing.T, d *platform.Domain, name string) platform.Load {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	return platform.Load{Seq: seq, ActiveCores: 2}
}

func TestExtractFeatures(t *testing.T) {
	b, d := testSetup(t)
	idle, err := Extract(b, d, buildLoad(t, d, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	lbm, err := Extract(b, d, buildLoad(t, d, "lbm"))
	if err != nil {
		t.Fatal(err)
	}
	if lbm.PeakW <= idle.PeakW || lbm.TotalW <= idle.TotalW {
		t.Fatalf("lbm features %+v not above idle %+v", lbm, idle)
	}
	if lbm.PeakHz < b.Band.Lo || lbm.PeakHz > b.Band.Hi {
		t.Fatalf("peak frequency %v outside band", lbm.PeakHz)
	}
}

func TestCollectSample(t *testing.T) {
	b, d := testSetup(t)
	s, err := Collect(b, d, "lbm", buildLoad(t, d, "lbm"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "lbm" || s.DroopV <= 0 || s.Features.TotalW <= 0 {
		t.Fatalf("sample %+v", s)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train(make([]Sample, 2)); err == nil {
		t.Error("undersized training set accepted")
	}
}

// The headline capability: train on ordinary benchmarks, predict the droop
// of held-out workloads from EM features alone.
func TestTrainPredictHeldOut(t *testing.T) {
	b, d := testSetup(t)
	trainNames := []string{"idle", "mcf", "povray", "hmmer", "namd", "gcc", "h264ref", "prime95", "milc", "bzip2"}
	var train []Sample
	for _, n := range trainNames {
		s, err := Collect(b, d, n, buildLoad(t, d, n))
		if err != nil {
			t.Fatal(err)
		}
		train = append(train, s)
	}
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainRMSE > 0.02 {
		t.Errorf("training RMSE %v V too large", m.TrainRMSE)
	}
	// Held out: lbm (the noisiest benchmark) and soplex.
	var test []Sample
	for _, n := range []string{"lbm", "soplex"} {
		s, err := Collect(b, d, n, buildLoad(t, d, n))
		if err != nil {
			t.Fatal(err)
		}
		test = append(test, s)
	}
	rmse, worst := m.Evaluate(test)
	if rmse > 0.02 {
		t.Errorf("held-out RMSE %v V", rmse)
	}
	if worst > 0.035 {
		t.Errorf("held-out worst error %v V", worst)
	}
	// Relative accuracy on the interesting (high-droop) case.
	lbm := test[0]
	pred := m.PredictDroop(lbm.Features)
	if math.Abs(pred-lbm.DroopV) > 0.5*lbm.DroopV {
		t.Errorf("lbm droop predicted %v, actual %v", pred, lbm.DroopV)
	}
}

func TestPredictMargin(t *testing.T) {
	b, d := testSetup(t)
	var train []Sample
	for _, n := range []string{"idle", "mcf", "povray", "lbm", "prime95", "namd"} {
		s, err := Collect(b, d, n, buildLoad(t, d, n))
		if err != nil {
			t.Fatal(err)
		}
		train = append(train, s)
	}
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	lbmFeats := train[3].Features
	idleFeats := train[0].Features
	mLbm := m.PredictMargin(d, lbmFeats)
	mIdle := m.PredictMargin(d, idleFeats)
	if mLbm <= 0 || mIdle <= 0 {
		t.Fatalf("margins %v %v not positive", mLbm, mIdle)
	}
	// Noisier workload -> higher V_MIN -> smaller usable margin.
	if mLbm >= mIdle {
		t.Fatalf("lbm margin %v not below idle margin %v", mLbm, mIdle)
	}
	// Sanity against the true V_MIN model: prediction within 40 mV.
	trueVmin := d.Spec.Failure.VCritAtMax / (1 - train[3].DroopV/d.Spec.PDN.VNominal)
	trueMargin := d.Spec.PDN.VNominal - trueVmin
	if math.Abs(mLbm-trueMargin) > 0.04 {
		t.Errorf("predicted margin %v vs analytic %v", mLbm, trueMargin)
	}
}

func TestPredictDroopNonNegative(t *testing.T) {
	m := &Model{Coef: [nFeatures]float64{-1, 0, 0}}
	if got := m.PredictDroop(Features{PeakW: 1e-9, TotalW: 1e-9}); got != 0 {
		t.Fatalf("negative prediction not clamped: %v", got)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := &Model{}
	if r, w := m.Evaluate(nil); r != 0 || w != 0 {
		t.Fatal("empty evaluation not zero")
	}
}
