// Package predict implements one of the paper's proposed future directions
// (Section 10c): predicting a workload's voltage droop — and hence its
// V_MIN margin — from EM emanations alone, during conventional execution.
//
// The physics gives the feature set: received EM power at a frequency is
// quadratic in the oscillating feed current, and droop is linear in that
// current, so droop should be (approximately) linear in the *square roots*
// of in-band EM power features. A model is trained once on an instrumented
// reference platform (where a scope provides ground-truth droop) and then
// applied to any workload using only the antenna — including on platforms
// with no voltage visibility at all.
package predict

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/linalg"
	"repro/internal/platform"
)

// Features are the EM observables extracted from one workload run.
type Features struct {
	// PeakW is the strongest in-band received power (watts).
	PeakW float64
	// TotalW is the total in-band received power (watts).
	TotalW float64
	// PeakHz is the frequency of the strongest in-band component.
	PeakHz float64
}

// vector returns the regression design row for the features:
// [1, sqrt(peak), sqrt(total)] — square roots because droop is linear in
// current while received power is quadratic.
func (f Features) vector() []float64 {
	return []float64{1, math.Sqrt(f.PeakW), math.Sqrt(f.TotalW)}
}

const nFeatures = 3

// Extract measures a workload's EM features through the bench antenna.
func Extract(b *core.Bench, d *platform.Domain, l platform.Load) (Features, error) {
	if err := b.Validate(); err != nil {
		return Features{}, err
	}
	freqs, _, iAmp, _, err := d.Spectra(l, b.Dt, b.N)
	if err != nil {
		return Features{}, err
	}
	_, watts, err := em.CombinedSpectrum(b.Platform.Antenna, []em.Emitter{
		{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath},
	})
	if err != nil {
		return Features{}, err
	}
	var out Features
	for i, f := range freqs {
		if f < b.Band.Lo || f > b.Band.Hi {
			continue
		}
		out.TotalW += watts[i]
		if watts[i] > out.PeakW {
			out.PeakW = watts[i]
			out.PeakHz = f
		}
	}
	// A workload with flat current (idle) legitimately has no in-band
	// emission; zero features predict the model's intercept.
	return out, nil
}

// Sample pairs EM features with ground-truth droop for training.
type Sample struct {
	Name     string
	Features Features
	DroopV   float64
}

// Collect runs a workload on an instrumented reference domain and records
// both the EM features and the true droop (from the electrical response —
// on real hardware this is the OC-DSO reading).
func Collect(b *core.Bench, d *platform.Domain, name string, l platform.Load) (Sample, error) {
	feats, err := Extract(b, d, l)
	if err != nil {
		return Sample{}, err
	}
	resp, _, err := d.SteadyResponse(l, b.Dt, b.N)
	if err != nil {
		return Sample{}, err
	}
	return Sample{
		Name:     name,
		Features: feats,
		DroopV:   resp.MaxDroop(d.SupplyVolts()),
	}, nil
}

// Model is a fitted droop predictor.
type Model struct {
	// Coef are the regression coefficients for Features.vector().
	Coef [nFeatures]float64
	// TrainRMSE is the residual error on the training set (volts).
	TrainRMSE float64
}

// Train fits the droop model by ordinary least squares (normal equations).
// At least nFeatures+1 samples with some variety are required.
func Train(samples []Sample) (*Model, error) {
	n := len(samples)
	if n < nFeatures+1 {
		return nil, fmt.Errorf("predict: need at least %d samples, got %d", nFeatures+1, n)
	}
	// Normal equations: (X^T X) beta = X^T y.
	xtx := linalg.NewMatrix(nFeatures, nFeatures)
	xty := make([]float64, nFeatures)
	for _, s := range samples {
		row := s.Features.vector()
		for i := 0; i < nFeatures; i++ {
			for j := 0; j < nFeatures; j++ {
				xtx.Add(i, j, row[i]*row[j])
			}
			xty[i] += row[i] * s.DroopV
		}
	}
	// Tiny ridge term guards against degenerate training sets.
	for i := 0; i < nFeatures; i++ {
		xtx.Add(i, i, 1e-12)
	}
	f, err := linalg.Factor(xtx)
	if err != nil {
		return nil, fmt.Errorf("predict: singular design matrix: %w", err)
	}
	beta, err := f.Solve(xty)
	if err != nil {
		return nil, err
	}
	m := &Model{}
	copy(m.Coef[:], beta)
	var acc float64
	for _, s := range samples {
		r := s.DroopV - m.PredictDroop(s.Features)
		acc += r * r
	}
	m.TrainRMSE = math.Sqrt(acc / float64(n))
	return m, nil
}

// PredictDroop estimates a workload's worst droop from its EM features.
func (m *Model) PredictDroop(f Features) float64 {
	row := f.vector()
	var y float64
	for i, c := range m.Coef {
		y += c * row[i]
	}
	if y < 0 {
		y = 0
	}
	return y
}

// PredictMargin estimates the workload's V_MIN margin below nominal on the
// given domain: the supply can drop until the (supply-scaled) droop meets
// the domain's critical voltage.
//
// vmin satisfies vmin = vcrit + droop·(vmin/vnominal), so
// vmin = vcrit / (1 - droop/vnominal).
func (m *Model) PredictMargin(d *platform.Domain, f Features) float64 {
	spec := d.Spec
	vcrit := spec.Failure.VCritAtMax - spec.Failure.SlackPerHz*(spec.MaxClockHz-d.ClockHz())
	vnom := spec.PDN.VNominal
	droop := m.PredictDroop(f)
	frac := droop / vnom
	if frac >= 1 {
		return 0
	}
	vmin := vcrit / (1 - frac)
	if vmin >= vnom {
		return 0
	}
	return vnom - vmin
}

// Evaluate reports the prediction error on held-out samples: RMSE and the
// worst absolute error, both in volts.
func (m *Model) Evaluate(samples []Sample) (rmse, worst float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var acc float64
	for _, s := range samples {
		e := math.Abs(s.DroopV - m.PredictDroop(s.Features))
		acc += e * e
		if e > worst {
			worst = e
		}
	}
	return math.Sqrt(acc / float64(len(samples))), worst
}
