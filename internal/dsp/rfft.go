package dsp

// Real-input FFT. Every signal in the pipeline — current waveforms, rail
// voltage, EM amplitude — is real, so the full complex transform wastes
// half its work on the conjugate-symmetric upper half. RFFT packs the N
// reals into an N/2-point complex transform and untangles the two
// interleaved half-spectra:
//
//	z[j] = x[2j] + i·x[2j+1],  Z = FFT_{m}(z),  m = N/2
//	E[k] = (Z[k] + conj(Z[m−k]))/2        (spectrum of the even samples)
//	O[k] = −i/2 · (Z[k] − conj(Z[m−k]))   (spectrum of the odd samples)
//	X[k] = E[k] + w^k·O[k],  w = exp(−2πi/N),  k = 0..m (indices mod m)
//
// IRFFT inverts the untangling exactly: conj(X[m−k]) = E[k] − w^k·O[k], so
// E and O recover by half-sum/half-difference and z = IFFT_m(E + i·O).
// Odd lengths fall back to the full complex transform (Bluestein underneath)
// and return the same half-spectrum shape.

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// rfftPlan caches the length-dependent setup for a real transform of length
// n: the untangle twiddles w^k (k = 0..n/2) and a scratch pool for the
// packed n/2-point work buffer.
type rfftPlan struct {
	n       int
	w       []complex128 // w[k] = exp(-2πi·k/n), read-only
	scratch sync.Pool    // *[]complex128 of length n/2
}

var (
	rfftMu    sync.Mutex
	rfftPlans = map[int]*rfftPlan{}
)

// specPools recycles half-spectrum buffers per length; RFFT draws from it
// and callers that consume a spectrum locally hand it back via PutSpectrum.
var specPools sync.Map // int (len) -> *sync.Pool of *[]complex128

func specPoolFor(n int) *sync.Pool {
	if p, ok := specPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := specPools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// GetSpectrum returns an uninitialized half-spectrum buffer of length n,
// recycled when possible. Callers must overwrite every element.
func GetSpectrum(n int) []complex128 {
	if n == 0 {
		return nil
	}
	if ptr, _ := specPoolFor(n).Get().(*[]complex128); ptr != nil {
		return *ptr
	}
	return make([]complex128, n)
}

// PutSpectrum recycles a half-spectrum previously returned by RFFT or
// GetSpectrum. The caller must not touch the slice afterwards; spectra that
// escaped into a cache or result must never be recycled.
func PutSpectrum(spec []complex128) {
	if len(spec) == 0 || len(spec) != cap(spec) {
		return
	}
	specPoolFor(len(spec)).Put(&spec)
}

func rfftPlanFor(n int) *rfftPlan {
	rfftMu.Lock()
	p, ok := rfftPlans[n]
	rfftMu.Unlock()
	if ok {
		return p
	}
	m := n / 2
	w := make([]complex128, m+1)
	for k := 0; k <= m; k++ {
		w[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}
	p = &rfftPlan{n: n, w: w}
	p.scratch.New = func() any {
		buf := make([]complex128, m)
		return &buf
	}
	rfftMu.Lock()
	if prior, ok := rfftPlans[n]; ok {
		p = prior // concurrent builders produce identical plans; keep one
	} else {
		rfftPlans[n] = p
	}
	rfftMu.Unlock()
	return p
}

// rfftEven is the even-length transform core shared by RFFT and RFFTInto:
// pack x into the m-point work buffer z, transform, untangle into out
// (length m+1). The untangle loop is written without the modular indexing of
// the textbook formulation — bins 0 and m both read Z[0], interior bins read
// Z[k] and Z[m-k] directly — with arithmetic identical operation for
// operation, so the results are bit-identical.
func rfftEven(out []complex128, x []float64, z []complex128, p *rfftPlan) {
	m := len(x) / 2
	for j := 0; j < m; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	Z := z
	if m&(m-1) == 0 {
		fftRadix2(Z, false)
	} else {
		Z = bluestein(Z, false)
	}
	w := p.w
	z0 := Z[0]
	c0 := cmplx.Conj(z0)
	e0 := (z0 + c0) * 0.5
	o0 := (z0 - c0) * complex(0, -0.5)
	out[0] = e0 + w[0]*o0
	for k := 1; k < m; k++ {
		zk := Z[k]
		zmk := cmplx.Conj(Z[m-k])
		e := (zk + zmk) * 0.5
		o := (zk - zmk) * complex(0, -0.5)
		out[k] = e + w[k]*o
	}
	out[m] = e0 + w[m]*o0
}

// RFFT transforms a real signal and returns the non-redundant half spectrum,
// bins 0..N/2 inclusive (the remaining bins of the full transform are the
// conjugate mirror). Even lengths cost one N/2-point complex transform; odd
// lengths fall back to the full transform.
func RFFT(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	half := n/2 + 1
	if n%2 != 0 {
		spec := FFTReal(x)
		return spec[:half:half]
	}
	p := rfftPlanFor(n)
	zptr := p.scratch.Get().(*[]complex128)
	out := GetSpectrum(half)
	rfftEven(out, x, *zptr, p)
	p.scratch.Put(zptr)
	return out
}

// RFFTScratchLen returns the scratch length RFFTInto needs for a real
// transform of length n (zero for odd lengths, which use the fallback path).
func RFFTScratchLen(n int) int {
	if n%2 != 0 {
		return 0
	}
	return n / 2
}

// RFFTInto is RFFT writing the half spectrum into dst — len(dst) must be
// n/2+1 — using a caller-provided work buffer of at least RFFTScratchLen(n)
// entries. Batch pipelines use it to keep whole generations of spectra in
// one contiguous slab with per-worker scratch instead of drawing both from
// pools per call. Results are bit-identical to RFFT; dst is returned.
func RFFTInto(dst []complex128, x []float64, scratch []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return dst[:0]
	}
	half := n/2 + 1
	if len(dst) != half {
		panic(fmt.Sprintf("dsp: RFFTInto dst of %d bins for length %d (want %d)", len(dst), n, half))
	}
	if n%2 != 0 {
		spec := FFTReal(x)
		copy(dst, spec[:half])
		return dst
	}
	m := n / 2
	if len(scratch) < m {
		panic(fmt.Sprintf("dsp: RFFTInto scratch of %d for length %d (want %d)", len(scratch), n, m))
	}
	rfftEven(dst, x, scratch[:m], rfftPlanFor(n))
	return dst
}

// IRFFT inverts RFFT: given the half spectrum of a real signal of length n
// (len(spec) must be n/2+1) it returns the time-domain signal, normalized
// by 1/n to match IFFT.
func IRFFT(spec []complex128, n int) []float64 {
	if n == 0 {
		return nil
	}
	half := n/2 + 1
	if len(spec) != half {
		panic(fmt.Sprintf("dsp: IRFFT of %d bins for length %d (want %d)", len(spec), n, half))
	}
	if n%2 != 0 {
		full := make([]complex128, n)
		copy(full, spec)
		for k := half; k < n; k++ {
			full[k] = cmplx.Conj(spec[n-k])
		}
		t := IFFT(full)
		out := make([]float64, n)
		for i, c := range t {
			out[i] = real(c)
		}
		return out
	}
	m := n / 2
	p := rfftPlanFor(n)
	zptr := p.scratch.Get().(*[]complex128)
	z := *zptr
	for k := 0; k < m; k++ {
		xk := spec[k]
		xmk := cmplx.Conj(spec[m-k])
		e := (xk + xmk) * 0.5
		o := (xk - xmk) * 0.5 * cmplx.Conj(p.w[k])
		z[k] = e + complex(0, 1)*o
	}
	Z := z
	if m&(m-1) == 0 {
		fftRadix2(Z, true)
	} else {
		Z = bluestein(Z, true)
	}
	out := make([]float64, n)
	inv := 1 / float64(m)
	for j := 0; j < m; j++ {
		out[2*j] = real(Z[j]) * inv
		out[2*j+1] = imag(Z[j]) * inv
	}
	p.scratch.Put(zptr)
	return out
}

// IRFFTInto is IRFFT writing the time-domain signal into dst — len(dst)
// must be n — using a caller-provided work buffer of at least
// RFFTScratchLen(n) entries instead of the plan's scratch pool. Batched
// response paths (the V_MIN ladder) use it to keep every per-supply
// inversion in per-worker slab rows. The untangle, transform and
// deinterleave run the same arithmetic in the same order as IRFFT, so the
// filled signal is bit-identical; dst is returned.
func IRFFTInto(dst []float64, spec []complex128, n int, scratch []complex128) []float64 {
	if n == 0 {
		return dst[:0]
	}
	half := n/2 + 1
	if len(spec) != half {
		panic(fmt.Sprintf("dsp: IRFFTInto of %d bins for length %d (want %d)", len(spec), n, half))
	}
	if len(dst) != n {
		panic(fmt.Sprintf("dsp: IRFFTInto dst of %d for length %d", len(dst), n))
	}
	if n%2 != 0 {
		// Odd lengths use the full-transform fallback either way.
		copy(dst, IRFFT(spec, n))
		return dst
	}
	m := n / 2
	if len(scratch) < m {
		panic(fmt.Sprintf("dsp: IRFFTInto scratch of %d for length %d (want %d)", len(scratch), n, m))
	}
	p := rfftPlanFor(n)
	z := scratch[:m]
	for k := 0; k < m; k++ {
		xk := spec[k]
		xmk := cmplx.Conj(spec[m-k])
		e := (xk + xmk) * 0.5
		o := (xk - xmk) * 0.5 * cmplx.Conj(p.w[k])
		z[k] = e + complex(0, 1)*o
	}
	Z := z
	if m&(m-1) == 0 {
		fftRadix2(Z, true)
	} else {
		Z = bluestein(Z, true)
	}
	inv := 1 / float64(m)
	for j := 0; j < m; j++ {
		dst[2*j] = real(Z[j]) * inv
		dst[2*j+1] = imag(Z[j]) * inv
	}
	return dst
}

// CAbs returns |c| without the overflow/underflow guards of cmplx.Abs —
// appropriate for spectra whose magnitudes are nowhere near the float64
// range limits, and measurably cheaper in per-bin loops.
func CAbs(c complex128) float64 {
	re, im := real(c), imag(c)
	return math.Sqrt(re*re + im*im)
}
