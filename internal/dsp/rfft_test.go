package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// rfftLengths covers the shapes the pipeline produces: powers of two (the
// analysis grid), even non-powers (scope resamples), odd lengths (Bluestein
// fallback) and the degenerate edges.
var rfftLengths = []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 17, 64, 96, 100, 101, 255, 256, 1000, 1024, 4096}

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
	}
	return x
}

// TestRFFTMatchesFFTReal: the half spectrum must agree with the reference
// full complex transform to within a few ulps of the spectrum scale.
func TestRFFTMatchesFFTReal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range rfftLengths {
		for trial := 0; trial < 3; trial++ {
			x := randSignal(rng, n)
			want := FFTReal(x)
			got := RFFT(x)
			if len(got) != n/2+1 {
				t.Fatalf("n=%d: %d bins, want %d", n, len(got), n/2+1)
			}
			// Tolerance relative to the largest magnitude: the packed and
			// full transforms associate additions differently.
			scale := 0.0
			for _, c := range want {
				if a := CAbs(c); a > scale {
					scale = a
				}
			}
			tol := 1e-12 * (scale + 1)
			for k, g := range got {
				if d := CAbs(g - want[k]); d > tol {
					t.Fatalf("n=%d bin %d: RFFT %v vs FFTReal %v (|Δ|=%g > %g)", n, k, g, want[k], d, tol)
				}
			}
		}
	}
}

// TestIRFFTRoundTrip: IRFFT(RFFT(x), n) must reproduce x.
func TestIRFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range rfftLengths {
		x := randSignal(rng, n)
		scale := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		y := IRFFT(RFFT(x), n)
		if len(y) != n {
			t.Fatalf("n=%d: round trip length %d", n, len(y))
		}
		tol := 1e-12 * (scale + 1)
		for i := range x {
			if d := math.Abs(y[i] - x[i]); d > tol {
				t.Fatalf("n=%d sample %d: %v -> %v (|Δ|=%g > %g)", n, i, x[i], y[i], d, tol)
			}
		}
	}
}

// TestIRFFTMatchesIFFT: IRFFT must agree with the reference inverse of the
// reconstructed full conjugate-symmetric spectrum.
func TestIRFFTMatchesIFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range rfftLengths {
		x := randSignal(rng, n)
		half := RFFT(x)
		full := FFTReal(x)
		ref := IFFT(full)
		got := IRFFT(half, n)
		tol := 1e-12
		for _, v := range x {
			if a := math.Abs(v); a*1e-12 > tol {
				tol = a * 1e-12
			}
		}
		for i := range got {
			if d := math.Abs(got[i] - real(ref[i])); d > tol {
				t.Fatalf("n=%d sample %d: IRFFT %v vs IFFT %v", n, i, got[i], real(ref[i]))
			}
		}
	}
}

// TestRFFTDeterministic: repeated transforms of the same input are
// bit-identical (the pooled scratch buffers must not leak state).
func TestRFFTDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{64, 100, 101, 1024} {
		x := randSignal(rng, n)
		a := RFFT(x)
		// Transform unrelated signals in between to dirty the pools.
		RFFT(randSignal(rng, n))
		IRFFT(a, n)
		b := RFFT(x)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("n=%d bin %d: %v != %v across calls", n, k, a[k], b[k])
			}
		}
	}
}

// TestCAbs: the unguarded magnitude agrees with the naive definition.
func TestCAbs(t *testing.T) {
	for _, c := range []complex128{0, 1, -2i, complex(3, -4), complex(1e-30, 2e-30), complex(-1e20, 5e19)} {
		want := math.Sqrt(real(c)*real(c) + imag(c)*imag(c))
		if got := CAbs(c); got != want {
			t.Fatalf("CAbs(%v) = %v, want %v", c, got, want)
		}
	}
	if CAbs(complex(3, 4)) != 5 {
		t.Fatal("CAbs(3+4i) != 5")
	}
}

func BenchmarkRFFT8192(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randSignal(rng, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RFFT(x)
	}
}

func BenchmarkFFTReal8192(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randSignal(rng, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFTReal(x)
	}
}

// TestRFFTIntoBitIdentical: the slab-row variant must reproduce RFFT bit for
// bit at every length — the batch evaluation path's bit-identity to the
// per-individual path rests on it.
func TestRFFTIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range rfftLengths {
		x := randSignal(rng, n)
		want := RFFT(x)
		dst := make([]complex128, n/2+1)
		scratch := make([]complex128, RFFTScratchLen(n))
		got := RFFTInto(dst, x, scratch)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d bins, want %d", n, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("n=%d bin %d: RFFTInto %v != RFFT %v", n, k, got[k], want[k])
			}
		}
	}
}

// TestIRFFTIntoBitIdentical: the slab-row inverse must reproduce IRFFT bit
// for bit at every length — the V_MIN ladder's bit-identity to the scalar
// SteadyState path rests on it.
func TestIRFFTIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range rfftLengths {
		spec := RFFT(randSignal(rng, n))
		want := IRFFT(spec, n)
		dst := make([]float64, n)
		scratch := make([]complex128, RFFTScratchLen(n))
		got := IRFFTInto(dst, spec, n, scratch)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d samples, want %d", n, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d sample %d: IRFFTInto %v != IRFFT %v", n, i, got[i], want[i])
			}
		}
	}
}
