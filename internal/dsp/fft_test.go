package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func randomSignal(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Fatalf("FFT(nil) = %v", got)
	}
	got := FFT([]complex128{3 + 4i})
	if len(got) != 1 || got[0] != 3+4i {
		t.Fatalf("FFT single = %v", got)
	}
}

func TestFFTMatchesNaivePowersOfTwo(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randomSignal(r, n)
		if e := maxErr(FFT(x), naiveDFT(x)); e > 1e-8 {
			t.Fatalf("n=%d: FFT differs from naive DFT by %g", n, e)
		}
	}
}

func TestFFTMatchesNaiveArbitraryLengths(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 12, 30, 100, 101} {
		x := randomSignal(r, n)
		if e := maxErr(FFT(x), naiveDFT(x)); e > 1e-7 {
			t.Fatalf("n=%d: Bluestein FFT differs from naive DFT by %g", n, e)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randomSignal(r, 33)
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT modified its input")
		}
	}
}

// Property: IFFT(FFT(x)) == x for arbitrary lengths.
func TestFFTInverseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		x := randomSignal(r, n)
		y := IFFT(FFT(x))
		return maxErr(x, y) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval's theorem, sum |x|^2 == sum |X|^2 / N.
func TestParsevalProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(128)
		x := randomSignal(r, n)
		var te float64
		for _, v := range x {
			te += real(v)*real(v) + imag(v)*imag(v)
		}
		var fe float64
		for _, v := range FFT(x) {
			fe += real(v)*real(v) + imag(v)*imag(v)
		}
		fe /= float64(n)
		return math.Abs(te-fe) < 1e-6*(1+te)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: FFT is linear.
func TestFFTLinearityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(64)
		a := randomSignal(r, n)
		b := randomSignal(r, n)
		alpha := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+alpha*fb[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAmplitudeSpectrumPureTone(t *testing.T) {
	const fs = 1000.0
	const n = 1000
	const f0 = 50.0 // exactly bin 50
	const amp = 2.5
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Sin(2*math.Pi*f0*float64(i)/fs)
	}
	freqs, amps := AmplitudeSpectrum(x, fs)
	k := FreqBin(f0, n, fs)
	if math.Abs(freqs[k]-f0) > 1e-9 {
		t.Fatalf("bin %d freq = %v, want %v", k, freqs[k], f0)
	}
	if math.Abs(amps[k]-amp) > 1e-6 {
		t.Fatalf("amplitude at f0 = %v, want %v", amps[k], amp)
	}
	// All other bins should be near zero.
	for i := range amps {
		if i == k {
			continue
		}
		if amps[i] > 1e-6 {
			t.Fatalf("leakage at bin %d: %v", i, amps[i])
		}
	}
}

func TestAmplitudeSpectrumDC(t *testing.T) {
	x := []float64{3, 3, 3, 3}
	_, amps := AmplitudeSpectrum(x, 4)
	if math.Abs(amps[0]-3) > 1e-12 {
		t.Fatalf("DC amplitude = %v, want 3", amps[0])
	}
}

func TestAmplitudeSpectrumEmpty(t *testing.T) {
	f, a := AmplitudeSpectrum(nil, 1)
	if f != nil || a != nil {
		t.Fatal("empty input should give nil spectra")
	}
}

func TestFreqBinClamps(t *testing.T) {
	if k := FreqBin(-5, 100, 100); k != 0 {
		t.Fatalf("negative freq bin = %d", k)
	}
	if k := FreqBin(1e9, 100, 100); k != 50 {
		t.Fatalf("over-Nyquist bin = %d, want 50", k)
	}
}

func TestBinFreq(t *testing.T) {
	if f := BinFreq(10, 100, 1000); f != 100 {
		t.Fatalf("BinFreq = %v, want 100", f)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(0, 1); err == nil {
		t.Fatal("Validate(0, 1) passed")
	}
	if err := Validate(4, 0); err == nil {
		t.Fatal("Validate(4, 0) passed")
	}
	if err := Validate(4, math.NaN()); err == nil {
		t.Fatal("Validate with NaN fs passed")
	}
	if err := Validate(4, 1); err != nil {
		t.Fatalf("Validate(4, 1) failed: %v", err)
	}
}
