package dsp

import (
	"math"
	"sort"
)

// Window identifies a window function applied before a transform.
type Window int

// Supported windows.
const (
	Rectangular Window = iota
	Hann
	Hamming
	BlackmanHarris
)

// String returns the window's name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case BlackmanHarris:
		return "blackman-harris"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients for w.
func (w Window) Coefficients(n int) []float64 {
	c := make([]float64, n)
	if n == 1 {
		c[0] = 1
		return c
	}
	for i := 0; i < n; i++ {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		switch w {
		case Hann:
			c[i] = 0.5 * (1 - math.Cos(x))
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(x)
		case BlackmanHarris:
			c[i] = 0.35875 - 0.48829*math.Cos(x) + 0.14128*math.Cos(2*x) - 0.01168*math.Cos(3*x)
		default:
			c[i] = 1
		}
	}
	return c
}

// CoherentGain returns the mean of the window coefficients; amplitude
// spectra are divided by this to recover sinusoid amplitudes.
func (w Window) CoherentGain(n int) float64 {
	c := w.Coefficients(n)
	var s float64
	for _, v := range c {
		s += v
	}
	return s / float64(n)
}

// Apply returns x multiplied elementwise by the window. x is not modified.
func (w Window) Apply(x []float64) []float64 {
	c := w.Coefficients(len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v * c[i]
	}
	return out
}

// RMS returns the root-mean-square of x; 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Mean returns the arithmetic mean of x; 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// MinMax returns the smallest and largest values of x.
// It panics on an empty slice.
func MinMax(x []float64) (min, max float64) {
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// PeakToPeak returns max(x) - min(x); 0 for slices shorter than 2.
func PeakToPeak(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	min, max := MinMax(x)
	return max - min
}

// DBm converts power in watts to dBm. Non-positive inputs map to -inf.
func DBm(watts float64) float64 {
	if watts <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(watts/1e-3)
}

// FromDBm converts dBm back to watts.
func FromDBm(dbm float64) float64 {
	return 1e-3 * math.Pow(10, dbm/10)
}

// DB20 converts an amplitude ratio to decibels (20·log10).
func DB20(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ratio)
}

// Peak describes a local maximum in a spectrum.
type Peak struct {
	Bin  int
	Freq float64
	Amp  float64
}

// FindPeaks returns local maxima of amps (with freqs as the x-axis) whose
// amplitude is at least minAmp, sorted by descending amplitude. Endpoints
// qualify if they exceed their single neighbour.
func FindPeaks(freqs, amps []float64, minAmp float64) []Peak {
	if len(amps) != len(freqs) {
		panic("dsp: FindPeaks length mismatch")
	}
	var peaks []Peak
	for i := range amps {
		if amps[i] < minAmp {
			continue
		}
		left := i == 0 || amps[i] > amps[i-1]
		right := i == len(amps)-1 || amps[i] >= amps[i+1]
		if left && right {
			peaks = append(peaks, Peak{Bin: i, Freq: freqs[i], Amp: amps[i]})
		}
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].Amp > peaks[b].Amp })
	return peaks
}

// MaxInBand returns the highest amplitude (and its frequency) among bins
// with lo <= freq <= hi. ok is false if no bin falls in the band.
func MaxInBand(freqs, amps []float64, lo, hi float64) (freq, amp float64, ok bool) {
	amp = math.Inf(-1)
	for i, f := range freqs {
		if f < lo || f > hi {
			continue
		}
		if amps[i] > amp {
			freq, amp, ok = f, amps[i], true
		}
	}
	if !ok {
		return 0, 0, false
	}
	return freq, amp, true
}

// Resample linearly interpolates the samples y (uniformly spaced with step
// dtIn starting at t=0) onto a new uniform grid with step dtOut and n points.
// Points beyond the input range hold the final value.
func Resample(y []float64, dtIn, dtOut float64, n int) []float64 {
	out := make([]float64, n)
	if len(y) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		t := float64(i) * dtOut
		pos := t / dtIn
		k := int(pos)
		if k >= len(y)-1 {
			out[i] = y[len(y)-1]
			continue
		}
		frac := pos - float64(k)
		out[i] = y[k]*(1-frac) + y[k+1]*frac
	}
	return out
}
