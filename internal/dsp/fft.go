// Package dsp provides the signal-processing primitives used by the
// simulated instruments: FFT (radix-2 and Bluestein for arbitrary lengths),
// window functions, amplitude spectra, RMS and dB helpers, and spectral peak
// finding.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Any length is accepted: powers of two use an in-place radix-2
// algorithm, other lengths use Bluestein's chirp-z transform.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x (normalized by
// 1/N). The input is not modified.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal transforms a real signal, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if len(c) == 0 {
		return nil
	}
	if len(c)&(len(c)-1) == 0 {
		fftRadix2(c, false)
		return c
	}
	return bluestein(c, false)
}

// fftRadix2 performs an in-place iterative radix-2 Cooley-Tukey FFT.
// len(x) must be a power of two. inverse selects conjugated twiddles
// (without the 1/N normalization).
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := stageTwiddles(size, inverse)[:half]
		for start := 0; start < n; start += size {
			// Split the block into its two halves so the inner loop indexes
			// three equal-length slices by k alone; the compiler then proves
			// every access in bounds and drops the checks. The butterfly
			// arithmetic is unchanged operation for operation.
			lo := x[start : start+half : start+half]
			hi := x[start+half : start+size : start+size]
			for k := range tw {
				a := lo[k]
				b := hi[k] * tw[k]
				lo[k] = a + b
				hi[k] = a - b
			}
		}
	}
}

// bluestein computes the DFT of arbitrary length via the chirp-z transform,
// using radix-2 FFTs of length m >= 2n-1. The chirp and filter spectrum
// come from a cached per-length plan (see plan.go).
func bluestein(x []complex128, inverse bool) []complex128 {
	return bluesteinPlanFor(len(x), inverse).transform(x)
}

// AmplitudeSpectrum returns single-sided amplitude estimates for a real
// signal sampled at rate fs: bin k corresponds to frequency k*fs/N for
// k in [0, N/2]. Non-DC (and non-Nyquist) bins are doubled so a pure
// sinusoid of amplitude A reports A at its bin.
func AmplitudeSpectrum(x []float64, fs float64) (freqs, amps []float64) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	spec := RFFT(x)
	half := n/2 + 1
	freqs = make([]float64, half)
	amps = make([]float64, half)
	for k := 0; k < half; k++ {
		freqs[k] = float64(k) * fs / float64(n)
		a := cmplx.Abs(spec[k]) / float64(n)
		if k != 0 && !(n%2 == 0 && k == n/2) {
			a *= 2
		}
		amps[k] = a
	}
	return freqs, amps
}

// BinFreq returns the frequency of bin k for an N-point transform of a
// signal sampled at fs.
func BinFreq(k, n int, fs float64) float64 {
	return float64(k) * fs / float64(n)
}

// FreqBin returns the nearest bin index for frequency f in an N-point
// transform at sample rate fs, clamped to [0, n/2].
func FreqBin(f float64, n int, fs float64) int {
	k := int(math.Round(f * float64(n) / fs))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}

// Validate panics unless the sample rate and length form a usable spectrum;
// used by instruments to catch configuration errors early.
func Validate(n int, fs float64) error {
	if n <= 0 {
		return fmt.Errorf("dsp: non-positive length %d", n)
	}
	if fs <= 0 || math.IsNaN(fs) || math.IsInf(fs, 0) {
		return fmt.Errorf("dsp: invalid sample rate %v", fs)
	}
	return nil
}
