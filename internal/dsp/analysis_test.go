package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowString(t *testing.T) {
	cases := map[Window]string{
		Rectangular:    "rectangular",
		Hann:           "hann",
		Hamming:        "hamming",
		BlackmanHarris: "blackman-harris",
		Window(99):     "unknown",
	}
	for w, want := range cases {
		if got := w.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", w, got, want)
		}
	}
}

func TestWindowCoefficients(t *testing.T) {
	// Hann endpoints are zero, midpoint is 1 for odd n.
	c := Hann.Coefficients(9)
	if math.Abs(c[0]) > 1e-12 || math.Abs(c[8]) > 1e-12 {
		t.Fatalf("Hann endpoints = %v, %v", c[0], c[8])
	}
	if math.Abs(c[4]-1) > 1e-12 {
		t.Fatalf("Hann midpoint = %v", c[4])
	}
	// Rectangular is all ones.
	for _, v := range Rectangular.Coefficients(5) {
		if v != 1 {
			t.Fatal("rectangular window not all ones")
		}
	}
	// n == 1 edge case.
	if c := Hann.Coefficients(1); c[0] != 1 {
		t.Fatalf("Hann n=1 = %v", c[0])
	}
}

func TestWindowApplyAndGain(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1}
	y := Hann.Apply(x)
	if len(y) != len(x) {
		t.Fatal("Apply changed length")
	}
	if x[0] != 1 {
		t.Fatal("Apply modified input")
	}
	g := Hann.CoherentGain(1024)
	if math.Abs(g-0.5) > 0.01 {
		t.Fatalf("Hann coherent gain = %v, want ~0.5", g)
	}
	if g := Rectangular.CoherentGain(64); g != 1 {
		t.Fatalf("rectangular gain = %v", g)
	}
}

func TestRMSAndMean(t *testing.T) {
	if RMS(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty RMS/Mean not 0")
	}
	x := []float64{3, -3, 3, -3}
	if got := RMS(x); math.Abs(got-3) > 1e-12 {
		t.Fatalf("RMS = %v, want 3", got)
	}
	if got := Mean(x); got != 0 {
		t.Fatalf("Mean = %v, want 0", got)
	}
}

func TestMinMaxPeakToPeak(t *testing.T) {
	x := []float64{1, -2, 5, 0}
	min, max := MinMax(x)
	if min != -2 || max != 5 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
	if p := PeakToPeak(x); p != 7 {
		t.Fatalf("PeakToPeak = %v", p)
	}
	if p := PeakToPeak([]float64{1}); p != 0 {
		t.Fatalf("PeakToPeak single = %v", p)
	}
}

func TestDBConversions(t *testing.T) {
	if got := DBm(1e-3); math.Abs(got) > 1e-12 {
		t.Fatalf("DBm(1mW) = %v, want 0", got)
	}
	if got := DBm(1); math.Abs(got-30) > 1e-12 {
		t.Fatalf("DBm(1W) = %v, want 30", got)
	}
	if !math.IsInf(DBm(0), -1) {
		t.Fatal("DBm(0) not -inf")
	}
	if got := FromDBm(30); math.Abs(got-1) > 1e-12 {
		t.Fatalf("FromDBm(30) = %v, want 1", got)
	}
	if got := DB20(10); math.Abs(got-20) > 1e-12 {
		t.Fatalf("DB20(10) = %v, want 20", got)
	}
	if !math.IsInf(DB20(0), -1) {
		t.Fatal("DB20(0) not -inf")
	}
}

// Property: DBm and FromDBm are inverses on positive powers.
func TestDBmRoundTripProperty(t *testing.T) {
	prop := func(p float64) bool {
		// Constrain to a physically plausible power range (fW to kW);
		// extreme magnitudes lose precision in the pow/log round trip.
		w := math.Mod(math.Abs(p), 18)
		w = math.Pow(10, w-15) * 1e3
		back := FromDBm(DBm(w))
		return math.Abs(back-w) < 1e-9*w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFindPeaks(t *testing.T) {
	freqs := []float64{0, 1, 2, 3, 4, 5}
	amps := []float64{0, 5, 1, 7, 2, 3}
	peaks := FindPeaks(freqs, amps, 2)
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks, want 3: %v", len(peaks), peaks)
	}
	if peaks[0].Freq != 3 || peaks[0].Amp != 7 {
		t.Fatalf("top peak = %+v, want freq 3 amp 7", peaks[0])
	}
	if peaks[1].Freq != 1 {
		t.Fatalf("second peak = %+v", peaks[1])
	}
	// Endpoint peak (index 5, amp 3) must be included.
	if peaks[2].Freq != 5 {
		t.Fatalf("endpoint peak missing: %+v", peaks)
	}
}

func TestFindPeaksMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	FindPeaks([]float64{1}, []float64{1, 2}, 0)
}

func TestMaxInBand(t *testing.T) {
	freqs := []float64{10, 20, 30, 40}
	amps := []float64{1, 9, 4, 100}
	f, a, ok := MaxInBand(freqs, amps, 15, 35)
	if !ok || f != 20 || a != 9 {
		t.Fatalf("MaxInBand = %v %v %v", f, a, ok)
	}
	if _, _, ok := MaxInBand(freqs, amps, 50, 60); ok {
		t.Fatal("MaxInBand found a value outside the band")
	}
}

func TestResample(t *testing.T) {
	y := []float64{0, 1, 2, 3}
	// Same rate round-trip.
	out := Resample(y, 1, 1, 4)
	for i := range y {
		if out[i] != y[i] {
			t.Fatalf("identity resample differs at %d", i)
		}
	}
	// Interpolate midpoints.
	out = Resample(y, 1, 0.5, 7)
	if out[1] != 0.5 || out[3] != 1.5 {
		t.Fatalf("midpoint resample = %v", out)
	}
	// Beyond the end holds the last value.
	out = Resample(y, 1, 1, 6)
	if out[5] != 3 {
		t.Fatalf("extrapolation = %v, want 3", out[5])
	}
	// Empty input yields zeros.
	out = Resample(nil, 1, 1, 3)
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty input resample not zero")
		}
	}
}

// Property: resampling a linear ramp at any finer step stays on the ramp.
func TestResampleLinearProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slope := r.NormFloat64()
		n := 10 + r.Intn(50)
		y := make([]float64, n)
		for i := range y {
			y[i] = slope * float64(i)
		}
		dtOut := 0.1 + r.Float64()
		m := int(float64(n-1) / dtOut)
		if m < 2 {
			return true
		}
		out := Resample(y, 1, dtOut, m)
		for i := 0; i < m; i++ {
			want := slope * float64(i) * dtOut
			if math.Abs(out[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
