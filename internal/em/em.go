// Package em models the radiated-emission side channel the paper measures:
// the CPU's package and power grid act as a distributed transmitting
// antenna whose radiated power at a frequency varies quadratically with the
// amplitude of the oscillating feed current at that frequency (Section 2.2,
// Hertzian-dipole argument), and a small loop antenna a few centimetres
// from the die receives it.
//
// The feed current is the package-inductor current I_DIE computed by the
// PDN model; this package turns its spectrum into received power at the
// antenna, including the antenna's own frequency response (flat far below
// its 2.95 GHz self-resonance, Figure 6) and near-field distance roll-off.
package em

import (
	"fmt"
	"math"
	"sync"
)

// Antenna models the square-loop receiver used in the paper: a flat
// response across the 50-200 MHz band of interest with a self-resonance
// near 2.95 GHz.
type Antenna struct {
	SelfResonanceHz float64 `json:"self_resonance_hz"` // self-resonance frequency (2.95 GHz in Fig. 6)
	Q               float64 `json:"q"`                 // resonance quality factor
	FeedOhms        float64 `json:"feed_ohms"`         // feed-point resistance at resonance
	SystemOhms      float64 `json:"system_ohms"`       // reference impedance of the analyzer (50 ohm)
}

// DefaultLoopAntenna returns the 3 cm square-loop antenna of the paper.
func DefaultLoopAntenna() Antenna {
	return Antenna{SelfResonanceHz: 2.95e9, Q: 8, FeedOhms: 30, SystemOhms: 50}
}

// Validate reports the first problem with the antenna parameters.
func (a Antenna) Validate() error {
	if a.SelfResonanceHz <= 0 || a.Q <= 0 || a.FeedOhms <= 0 || a.SystemOhms <= 0 {
		return fmt.Errorf("em: invalid antenna parameters %+v", a)
	}
	return nil
}

// Gain returns the antenna's power-gain factor at f: ~1 well below the
// self-resonance, peaking at the resonance, rolling off above.
func (a Antenna) Gain(f float64) float64 {
	if f <= 0 {
		return 0
	}
	// Second-order resonator magnitude response normalized to unity at DC.
	x := f / a.SelfResonanceHz
	den := (1-x*x)*(1-x*x) + (x/a.Q)*(x/a.Q)
	return 1 / den
}

// S11 returns the magnitude (linear, 0..1) of the antenna's input
// reflection coefficient, reproducing the shape of Figure 6: near total
// reflection at low frequency with a deep dip at the self-resonance.
func (a Antenna) S11(f float64) float64 {
	if f <= 0 {
		return 1
	}
	// Series-RLC feed model: X = Z0*Q*(f/fr - fr/f) around resonance.
	x := a.SystemOhms * a.Q * (f/a.SelfResonanceHz - a.SelfResonanceHz/f)
	re := a.FeedOhms - a.SystemOhms
	reP := a.FeedOhms + a.SystemOhms
	num := math.Hypot(re, x)
	den := math.Hypot(reP, x)
	return num / den
}

// Path is the radiating/coupling path from one voltage domain's package to
// the receiver antenna.
type Path struct {
	// DistanceM is the antenna standoff (the paper uses 5-10 cm).
	DistanceM float64 `json:"distance_m"`
	// CouplingK is the lumped radiation/coupling constant at RefDistanceM,
	// in watts per (amp² · (f/RefHz)²).
	CouplingK float64 `json:"coupling_k"`
	// RefHz normalizes the quadratic frequency dependence of radiated
	// power (radiated power of a small loop scales as (f·I)²).
	RefHz float64 `json:"ref_hz"`
	// RefDistanceM is the distance at which CouplingK is specified.
	RefDistanceM float64 `json:"ref_distance_m"`
}

// DefaultPath returns a coupling path calibrated for a mobile SoC measured
// at 7 cm: a dI/dt virus's ~0.5 A resonant current at ~70 MHz lands around
// -30 dBm, well above the analyzer noise floor.
func DefaultPath() Path {
	return Path{DistanceM: 0.07, CouplingK: 1e-5, RefHz: 100e6, RefDistanceM: 0.07}
}

// Validate reports the first problem with the path parameters.
func (p Path) Validate() error {
	if p.DistanceM <= 0 || p.CouplingK <= 0 || p.RefHz <= 0 || p.RefDistanceM <= 0 {
		return fmt.Errorf("em: invalid path parameters %+v", p)
	}
	return nil
}

// ReceivedPower returns the power in watts the antenna receives at
// frequency f when the feed (package-inductor) current oscillates with
// amplitude iAmp at that frequency.
func (p Path) ReceivedPower(ant Antenna, f, iAmp float64) float64 {
	if f <= 0 || iAmp <= 0 {
		return 0
	}
	// Near-field magnetic coupling rolls off as 1/d^6 in power (1/d^3 in
	// field) for a small loop.
	d := p.RefDistanceM / p.DistanceM
	dist := d * d * d
	fr := f / p.RefHz
	return p.CouplingK * fr * fr * iAmp * iAmp * dist * dist * ant.Gain(f)
}

// ReceivedSpectrum converts a feed-current amplitude spectrum into a
// received-power spectrum in watts, bin by bin.
func (p Path) ReceivedSpectrum(ant Antenna, freqs, iAmp []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ant.Validate(); err != nil {
		return nil, err
	}
	if len(freqs) != len(iAmp) {
		return nil, fmt.Errorf("em: spectrum length mismatch %d vs %d", len(freqs), len(iAmp))
	}
	out := make([]float64, len(freqs))
	for i := range freqs {
		out[i] = p.ReceivedPower(ant, freqs[i], iAmp[i])
	}
	return out, nil
}

// Emitter is one radiating voltage domain: a current spectrum with its own
// coupling path. Several emitters (e.g. the Cortex-A72 and Cortex-A53
// domains of a big.LITTLE SoC) can radiate into the same antenna; their
// powers add incoherently per bin (Section 6.1's simultaneous monitoring).
type Emitter struct {
	Freqs []float64
	IAmp  []float64
	Path  Path
}

// CombinedSpectrum sums the received power of all emitters onto the bin
// grid of the first emitter. All emitters must share the same grid.
func CombinedSpectrum(ant Antenna, emitters []Emitter) (freqs, watts []float64, err error) {
	if len(emitters) == 0 {
		return nil, nil, fmt.Errorf("em: no emitters")
	}
	total := make([]float64, len(emitters[0].Freqs))
	freqs, err = CombineInto(total, ant, emitters)
	if err != nil {
		return nil, nil, err
	}
	return freqs, total, nil
}

// pathCoeff holds the current-independent per-bin factors of ReceivedPower
// for one (antenna, path, frequency grid) combination: pre[i] is
// CouplingK·(f/RefHz)² and gain[i] the antenna gain, both folded in the
// exact multiplication order ReceivedPower uses.
type pathCoeff struct {
	pre  []float64
	gain []float64
}

// pathCoeffKey identifies a coefficient table. The grid is keyed by backing
// array identity; holding the pointer in the key pins the array, so a
// recycled allocation can never alias a stale entry. Grids are the
// long-lived freqs slices of cached PDN transfer sets, so the cache stays
// small.
type pathCoeffKey struct {
	ant  Antenna
	path Path
	ptr  *float64
	n    int
}

var pathCoeffs sync.Map // pathCoeffKey -> *pathCoeff

func coeffsFor(ant Antenna, p Path, freqs []float64) *pathCoeff {
	key := pathCoeffKey{ant: ant, path: p, ptr: &freqs[0], n: len(freqs)}
	if v, ok := pathCoeffs.Load(key); ok {
		return v.(*pathCoeff)
	}
	c := &pathCoeff{pre: make([]float64, len(freqs)), gain: make([]float64, len(freqs))}
	for i, f := range freqs {
		fr := f / p.RefHz
		c.pre[i] = p.CouplingK * fr * fr
		c.gain[i] = ant.Gain(f)
	}
	v, _ := pathCoeffs.LoadOrStore(key, c)
	return v.(*pathCoeff)
}

// CombineInto is CombinedSpectrum writing into a caller-provided buffer of
// the grid length, so hot paths can recycle it. dst is fully overwritten.
func CombineInto(dst []float64, ant Antenna, emitters []Emitter) (freqs []float64, err error) {
	if len(emitters) == 0 {
		return nil, fmt.Errorf("em: no emitters")
	}
	base := emitters[0].Freqs
	if len(dst) != len(base) {
		return nil, fmt.Errorf("em: destination has %d bins, want %d", len(dst), len(base))
	}
	clear(dst)
	for ei, e := range emitters {
		if len(e.Freqs) != len(base) {
			return nil, fmt.Errorf("em: emitter %d has %d bins, want %d", ei, len(e.Freqs), len(base))
		}
		for i := range base {
			if e.Freqs[i] != base[i] {
				return nil, fmt.Errorf("em: emitter %d bin %d frequency %v differs from %v", ei, i, e.Freqs[i], base[i])
			}
		}
		// Fold the emitter's received power into the total directly rather
		// than materializing a per-emitter spectrum; the validation and the
		// per-bin arithmetic match ReceivedSpectrum exactly.
		if err := e.Path.Validate(); err != nil {
			return nil, fmt.Errorf("em: emitter %d: %w", ei, err)
		}
		if err := ant.Validate(); err != nil {
			return nil, fmt.Errorf("em: emitter %d: %w", ei, err)
		}
		if len(e.Freqs) != len(e.IAmp) {
			return nil, fmt.Errorf("em: emitter %d: %w", ei,
				fmt.Errorf("em: spectrum length mismatch %d vs %d", len(e.Freqs), len(e.IAmp)))
		}
		if len(base) == 0 {
			continue
		}
		// The distance factor and the per-bin coefficients hoist everything
		// current-independent out of the loop; the remaining multiplications
		// run in ReceivedPower's exact left-to-right order, so the folded
		// values are bit-identical to calling it per bin.
		d := e.Path.RefDistanceM / e.Path.DistanceM
		dist := d * d * d
		c := coeffsFor(ant, e.Path, e.Freqs)
		for i := range base {
			f, iAmp := e.Freqs[i], e.IAmp[i]
			if f <= 0 || iAmp <= 0 {
				continue
			}
			dst[i] += c.pre[i] * iAmp * iAmp * dist * dist * c.gain[i]
		}
	}
	return base, nil
}
