package em

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAntennaValidate(t *testing.T) {
	if err := DefaultLoopAntenna().Validate(); err != nil {
		t.Fatalf("default antenna invalid: %v", err)
	}
	bad := DefaultLoopAntenna()
	bad.Q = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Q=0 accepted")
	}
}

func TestAntennaGainFlatInBandPeakAtResonance(t *testing.T) {
	a := DefaultLoopAntenna()
	// 50-200 MHz: response within a few percent of unity (paper: flat to
	// 1.2 GHz).
	for _, f := range []float64{50e6, 100e6, 200e6, 500e6} {
		g := a.Gain(f)
		if math.Abs(g-1) > 0.1 {
			t.Errorf("Gain(%v) = %v, want ~1", f, g)
		}
	}
	gRes := a.Gain(a.SelfResonanceHz)
	if gRes < 10*a.Gain(100e6) {
		t.Errorf("no resonance peak: Gain(fr) = %v", gRes)
	}
	if a.Gain(0) != 0 {
		t.Error("Gain(0) != 0")
	}
	// Roll-off above resonance.
	if a.Gain(3*a.SelfResonanceHz) >= 1 {
		t.Error("no roll-off above resonance")
	}
}

func TestAntennaS11Shape(t *testing.T) {
	a := DefaultLoopAntenna()
	low := a.S11(10e6)
	inBand := a.S11(100e6)
	dip := a.S11(a.SelfResonanceHz)
	if low < 0.9 {
		t.Errorf("S11 at 10 MHz = %v, want near 1 (mismatched small loop)", low)
	}
	if inBand < 0.9 {
		t.Errorf("S11 at 100 MHz = %v, want near 1", inBand)
	}
	// Deep dip at self-resonance: |S11| = |R-Z0|/(R+Z0) = 20/80 = 0.25.
	if math.Abs(dip-0.25) > 1e-9 {
		t.Errorf("S11 at resonance = %v, want 0.25", dip)
	}
	if a.S11(0) != 1 {
		t.Error("S11(0) != 1")
	}
}

func TestPathValidate(t *testing.T) {
	if err := DefaultPath().Validate(); err != nil {
		t.Fatalf("default path invalid: %v", err)
	}
	bad := DefaultPath()
	bad.DistanceM = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero distance accepted")
	}
}

func TestReceivedPowerQuadraticInCurrent(t *testing.T) {
	p := DefaultPath()
	a := DefaultLoopAntenna()
	p1 := p.ReceivedPower(a, 70e6, 0.5)
	p2 := p.ReceivedPower(a, 70e6, 1.0)
	if math.Abs(p2/p1-4) > 1e-9 {
		t.Fatalf("doubling current gave power ratio %v, want 4", p2/p1)
	}
}

func TestReceivedPowerQuadraticInFrequency(t *testing.T) {
	p := DefaultPath()
	a := DefaultLoopAntenna()
	// In the flat antenna band, power scales ~f^2.
	p1 := p.ReceivedPower(a, 50e6, 1)
	p2 := p.ReceivedPower(a, 100e6, 1)
	ratio := p2 / p1
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("frequency doubling power ratio %v, want ~4", ratio)
	}
}

func TestReceivedPowerDistanceRollOff(t *testing.T) {
	near := DefaultPath()
	far := DefaultPath()
	far.DistanceM = 2 * near.DistanceM
	a := DefaultLoopAntenna()
	pNear := near.ReceivedPower(a, 70e6, 1)
	pFar := far.ReceivedPower(a, 70e6, 1)
	if pFar >= pNear {
		t.Fatal("no distance roll-off")
	}
	if ratio := pNear / pFar; math.Abs(ratio-64) > 1 {
		t.Fatalf("distance ratio %v, want 64 (1/d^6 power)", ratio)
	}
}

func TestReceivedPowerEdgeCases(t *testing.T) {
	p := DefaultPath()
	a := DefaultLoopAntenna()
	if p.ReceivedPower(a, 0, 1) != 0 {
		t.Error("nonzero power at f=0")
	}
	if p.ReceivedPower(a, 1e8, 0) != 0 {
		t.Error("nonzero power at zero current")
	}
}

func TestReceivedSpectrum(t *testing.T) {
	p := DefaultPath()
	a := DefaultLoopAntenna()
	freqs := []float64{50e6, 70e6, 90e6}
	amps := []float64{0.1, 0.5, 0.2}
	spec, err := p.ReceivedSpectrum(a, freqs, amps)
	if err != nil {
		t.Fatalf("ReceivedSpectrum: %v", err)
	}
	if len(spec) != 3 {
		t.Fatalf("spectrum length %d", len(spec))
	}
	// Strongest current bin dominates.
	if !(spec[1] > spec[0] && spec[1] > spec[2]) {
		t.Fatalf("expected bin 1 dominant: %v", spec)
	}
	if _, err := p.ReceivedSpectrum(a, freqs, amps[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := p
	bad.CouplingK = 0
	if _, err := bad.ReceivedSpectrum(a, freqs, amps); err == nil {
		t.Error("invalid path accepted")
	}
	badAnt := a
	badAnt.FeedOhms = -1
	if _, err := p.ReceivedSpectrum(badAnt, freqs, amps); err == nil {
		t.Error("invalid antenna accepted")
	}
}

func TestCombinedSpectrumAddsEmitters(t *testing.T) {
	a := DefaultLoopAntenna()
	freqs := []float64{60e6, 70e6, 80e6}
	e1 := Emitter{Freqs: freqs, IAmp: []float64{0, 0.5, 0}, Path: DefaultPath()}
	e2 := Emitter{Freqs: freqs, IAmp: []float64{0.3, 0, 0}, Path: DefaultPath()}
	got, watts, err := CombinedSpectrum(a, []Emitter{e1, e2})
	if err != nil {
		t.Fatalf("CombinedSpectrum: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("freqs %v", got)
	}
	if watts[0] <= 0 || watts[1] <= 0 {
		t.Fatalf("missing emitter contributions: %v", watts)
	}
	if watts[2] != 0 {
		t.Fatalf("phantom power: %v", watts)
	}
	// Both signatures visible simultaneously (Fig. 15 behaviour).
	single1, _ := e1.Path.ReceivedSpectrum(a, freqs, e1.IAmp)
	if math.Abs(watts[1]-single1[1]) > 1e-18 {
		t.Fatal("emitter 1 signature distorted by emitter 2")
	}
}

func TestCombinedSpectrumErrors(t *testing.T) {
	a := DefaultLoopAntenna()
	if _, _, err := CombinedSpectrum(a, nil); err == nil {
		t.Error("no emitters accepted")
	}
	e1 := Emitter{Freqs: []float64{1e6}, IAmp: []float64{1}, Path: DefaultPath()}
	e2 := Emitter{Freqs: []float64{1e6, 2e6}, IAmp: []float64{1, 1}, Path: DefaultPath()}
	if _, _, err := CombinedSpectrum(a, []Emitter{e1, e2}); err == nil {
		t.Error("mismatched grids accepted")
	}
	e3 := Emitter{Freqs: []float64{2e6}, IAmp: []float64{1}, Path: DefaultPath()}
	if _, _, err := CombinedSpectrum(a, []Emitter{e1, e3}); err == nil {
		t.Error("different bin frequencies accepted")
	}
}

// Property: received power is monotone in current amplitude at any fixed
// frequency in the band.
func TestPowerMonotoneProperty(t *testing.T) {
	p := DefaultPath()
	a := DefaultLoopAntenna()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := 50e6 + 150e6*rng.Float64()
		i1 := rng.Float64()
		i2 := i1 + rng.Float64() + 1e-6
		return p.ReceivedPower(a, f, i2) > p.ReceivedPower(a, f, i1)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
