package backend

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/lab"
	"repro/internal/par"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// Remote drives a lab daemon over TCP through a client pool, presenting
// it as a Backend. One HELLO negotiation at construction decides the
// protocol version: a v2 daemon unlocks the full surface; a v1 daemon
// still serves the EM measurement loop (Measurer with the em metric,
// EMMeasure, setpoints) while the v2-only operations fail with a clear
// upgrade message.
//
// Everything the daemon measures is content-deterministic and every value
// crosses the wire as %g (which ParseFloat round-trips exactly), so a
// Remote against a daemon whose bench has the same platform and seed is
// bit-identical to a Local on that bench — dropped connections, retries
// and pool scheduling included.
type Remote struct {
	// Samples is the default analyzer averaging for EMMeasure and for
	// Measurer specs that leave Samples zero (default 30, matching
	// core.NewBench).
	Samples int

	addr         string
	pool         *lab.Pool
	platformName string
	version      int
	domains      []string

	mu   sync.Mutex
	caps map[string]Caps
}

// NewRemote dials a lab daemon with a pool of `jobs` sessions (jobs<=0
// selects GOMAXPROCS) and negotiates the protocol version.
func NewRemote(addr string, jobs int, opts lab.Options) (*Remote, error) {
	pool, err := lab.NewPool(addr, par.Workers(jobs), opts)
	if err != nil {
		return nil, err
	}
	r := &Remote{
		Samples: 30,
		addr:    addr,
		pool:    pool,
		caps:    make(map[string]Caps),
	}
	err = pool.Do(func(c *lab.Client) error {
		ver, name, err := c.Hello(lab.ProtocolVersion)
		switch {
		case err == nil:
			r.version, r.platformName = ver, name
		case lab.IsTargetError(err):
			// Pre-HELLO daemon: protocol v1.
			r.version = 1
		default:
			return err
		}
		name, doms, err := c.Info()
		if err != nil {
			return err
		}
		r.platformName = name
		for _, d := range doms {
			// INFO reports "name/totalCores".
			r.domains = append(r.domains, strings.SplitN(d, "/", 2)[0])
		}
		return nil
	})
	if err != nil {
		pool.Close()
		return nil, err
	}
	return r, nil
}

// ProtocolVersion reports the negotiated protocol version.
func (r *Remote) ProtocolVersion() int { return r.version }

// Addr reports the daemon address this backend drives.
func (r *Remote) Addr() string { return r.addr }

// TransportStats snapshots the pool's transport counters (latency,
// retries, reconnects) for -v output.
func (r *Remote) TransportStats() lab.Stats { return r.pool.Stats() }

func (r *Remote) requireV2(what string) error {
	if r.version >= 2 {
		return nil
	}
	return fmt.Errorf("backend: lab daemon at %s speaks protocol v1 and lacks %s; redeploy cmd/labtarget from this tree", r.addr, what)
}

// PlatformName identifies the remote rig.
func (r *Remote) PlatformName() string { return r.platformName }

// Domains lists the remote rig's voltage domains.
func (r *Remote) Domains() []string {
	out := make([]string, len(r.domains))
	copy(out, r.domains)
	return out
}

// builtinCaps reconstructs a capability record from the built-in platform
// catalogue, for v1 daemons that predate CAPS. Every v1 daemon in the
// field serves one of the built-in boards, so the catalogue is
// authoritative for them; custom-spec daemons need protocol v2.
func builtinCaps(platformName, domain string) (Caps, error) {
	if !platform.Builtin().Has(platformName) {
		return Caps{}, fmt.Errorf("backend: v1 daemon serves unknown platform %q; CAPS needs protocol v2", platformName)
	}
	p, err := platform.Build(platformName)
	if err != nil {
		return Caps{}, err
	}
	d, err := p.Domain(domain)
	if err != nil {
		return Caps{}, err
	}
	spec := d.Spec
	return Caps{
		Domain:            spec.Name,
		TotalCores:        spec.TotalCores,
		Arch:              spec.ISA,
		MaxClockHz:        spec.MaxClockHz,
		ClockStepHz:       spec.ClockStepHz,
		VoltageVisibility: spec.VoltageVisibility,
		DSOKind:           dsoKindFor(spec.VoltageVisibility),
		Lineage:           false,
	}, nil
}

// NoPoolError reports that a rig's architecture was only interned from
// the wire (a data-defined ISA whose spec this process never loaded), so
// loads cannot be assembled for it. It is deterministic — retrying or
// failing over cannot help; the fix is to load the rig's spec locally.
type NoPoolError struct {
	Arch isa.Arch
}

func (e *NoPoolError) Error() string {
	return fmt.Sprintf("backend: no instruction pool for architecture %s is loaded in this process; pass -platform with the rig's spec file so loads can be assembled", e.Arch)
}

// IsNoPoolError reports whether err is a NoPoolError.
func IsNoPoolError(err error) bool {
	var npe *NoPoolError
	return errors.As(err, &npe)
}

// capsPool resolves the instruction pool for a capability record.
func capsPool(caps Caps) (*isa.Pool, error) {
	if p := caps.Pool(); p != nil {
		return p, nil
	}
	return nil, &NoPoolError{Arch: caps.Arch}
}

// Caps returns a domain's capability record (cached after the first
// query; capabilities are static for the life of a daemon).
func (r *Remote) Caps(domain string) (Caps, error) {
	r.mu.Lock()
	if caps, ok := r.caps[domain]; ok {
		r.mu.Unlock()
		return caps, nil
	}
	r.mu.Unlock()

	var caps Caps
	if r.version >= 2 {
		err := r.pool.Do(func(c *lab.Client) error {
			rc, err := c.Caps(domain)
			if err != nil {
				return err
			}
			caps = Caps{
				Domain:            domain,
				TotalCores:        rc.TotalCores,
				Arch:              rc.Arch,
				MaxClockHz:        rc.MaxClockHz,
				ClockStepHz:       rc.ClockStepHz,
				VoltageVisibility: rc.VoltageVisibility,
				DSOKind:           rc.DSOKind,
				Lineage:           rc.Lineage,
			}
			return nil
		})
		if err != nil {
			return Caps{}, err
		}
	} else {
		var err error
		caps, err = builtinCaps(r.platformName, domain)
		if err != nil {
			return Caps{}, err
		}
	}
	r.mu.Lock()
	r.caps[domain] = caps
	r.mu.Unlock()
	return caps, nil
}

// State queries a domain's current operating point.
func (r *Remote) State(domain string) (DomainState, error) {
	if err := r.requireV2("STATE"); err != nil {
		return DomainState{}, err
	}
	var st DomainState
	err := r.pool.Do(func(c *lab.Client) error {
		rs, err := c.State(domain)
		if err != nil {
			return err
		}
		st = DomainState{ClockHz: rs.ClockHz, SupplyV: rs.SupplyV, PoweredCores: rs.PoweredCores}
		return nil
	})
	return st, err
}

// SetClock adjusts the remote domain's DVFS point.
func (r *Remote) SetClock(domain string, hz float64) error {
	return r.pool.Do(func(c *lab.Client) error { return c.SetClock(domain, hz) })
}

// SetSupply adjusts the remote domain's supply setpoint.
func (r *Remote) SetSupply(domain string, volts float64) error {
	return r.pool.Do(func(c *lab.Client) error { return c.SetVolts(domain, volts) })
}

// SetPoweredCores power-gates cores on the remote domain.
func (r *Remote) SetPoweredCores(domain string, n int) error {
	return r.pool.Do(func(c *lab.Client) error { return c.SetCores(domain, n) })
}

// Reset restores the remote domain's nominal operating point.
func (r *Remote) Reset(domain string) error {
	return r.pool.Do(func(c *lab.Client) error { return c.Reset(domain) })
}

// loadable rejects loads the LOAD verb cannot express.
func loadable(load platform.Load) error {
	if len(load.PhaseCycles) > 0 {
		return fmt.Errorf("backend: remote EM measurement cannot carry phase annotations; use MonitorAll")
	}
	return nil
}

// EMMeasure measures a load's EM peak at the backend's default averaging.
func (r *Remote) EMMeasure(domain string, load platform.Load) (*instrument.Measurement, error) {
	return r.EMMeasureN(domain, load, r.Samples)
}

// EMMeasureN measures a load's EM peak with explicit averaging via the
// paper's load/run/measure/stop cycle.
func (r *Remote) EMMeasureN(domain string, load platform.Load, samples int) (*instrument.Measurement, error) {
	if err := loadable(load); err != nil {
		return nil, err
	}
	caps, err := r.Caps(domain)
	if err != nil {
		return nil, err
	}
	ipool, err := capsPool(caps)
	if err != nil {
		return nil, err
	}
	var m *instrument.Measurement
	err = r.pool.Do(func(c *lab.Client) error {
		if err := c.Load(domain, load.ActiveCores, ipool, load.Seq); err != nil {
			return err
		}
		if err := c.Run(); err != nil {
			return err
		}
		rm, err := c.Measure(samples)
		if err != nil {
			_ = c.Stop()
			return err
		}
		if err := c.Stop(); err != nil {
			return err
		}
		m = &instrument.Measurement{
			PeakDBm:  rm.PeakDBm,
			PeakHz:   rm.PeakHz,
			Samples:  samples,
			StdevDBm: rm.StdevDBm,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Measurer builds a GA fitness function that evaluates each individual on
// the remote target. The em metric uses the v1 MEASURE loop (so it works
// against old daemons); droop/ptp need the v2 VMEASURE verb and fail
// client-side with a *CapabilityError when the domain is voltage-blind.
func (r *Remote) Measurer(spec MeasurerSpec) (ga.Measurer, error) {
	caps, err := r.Caps(spec.Domain)
	if err != nil {
		return nil, err
	}
	samples := spec.Samples
	if samples <= 0 {
		samples = r.Samples
	}
	switch spec.Metric {
	case MetricEM:
	case MetricDroop, MetricPtp:
		if caps.DSOKind == "" {
			return nil, &CapabilityError{Domain: spec.Domain, Metric: spec.Metric, Visibility: caps.VoltageVisibility}
		}
		if err := r.requireV2("the VMEASURE verb (droop/ptp metrics)"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("backend: unknown metric %q", spec.Metric)
	}
	ipool, err := capsPool(caps)
	if err != nil {
		return nil, err
	}
	return ga.MeasurerFunc(func(seq []isa.Inst) (float64, float64, error) {
		var fitness, domHz float64
		err := r.pool.Do(func(c *lab.Client) error {
			if err := c.Load(spec.Domain, spec.ActiveCores, ipool, seq); err != nil {
				return err
			}
			if err := c.Run(); err != nil {
				return err
			}
			var merr error
			if spec.Metric == MetricEM {
				m, err := c.Measure(samples)
				if err == nil {
					fitness, domHz = m.PeakDBm, m.PeakHz
				}
				merr = err
			} else {
				fitness, domHz, merr = c.VMeasure(string(spec.Metric), samples, spec.DSOSeed)
			}
			if merr != nil {
				_ = c.Stop()
				return merr
			}
			return c.Stop()
		})
		if err != nil {
			return 0, 0, err
		}
		return fitness, domHz, nil
	}), nil
}

// ResonanceSweep runs the fast resonance sweep on the daemon.
func (r *Remote) ResonanceSweep(domain string, activeCores, samples int) (*core.SweepResult, error) {
	if err := r.requireV2("the SWEEPFULL verb"); err != nil {
		return nil, err
	}
	if samples <= 0 {
		samples = r.Samples
	}
	var res *core.SweepResult
	err := r.pool.Do(func(c *lab.Client) error {
		var err error
		res, err = c.SweepFull(domain, activeCores, samples)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SweepPointCapable reports whether the daemon speaks the protocol-v3
// SWEEPAT verb. Fleet coordinators consult this at placement time so a
// pre-v3 rig is excluded from point-sharded sweeps instead of failing
// mid-campaign.
func (r *Remote) SweepPointCapable() bool { return r.version >= 3 }

// SweepPoint measures one fast-sweep point at an explicit clock setting on
// the daemon.
func (r *Remote) SweepPoint(domain string, activeCores, samples int, clockHz float64) (*core.SweepPoint, error) {
	if r.version < 3 {
		return nil, fmt.Errorf("backend: lab daemon at %s speaks protocol v%d and lacks the SWEEPAT verb (per-point sweep sharding); redeploy cmd/labtarget from this tree", r.addr, r.version)
	}
	if samples <= 0 {
		samples = r.Samples
	}
	var pt *core.SweepPoint
	err := r.pool.Do(func(c *lab.Client) error {
		var err error
		pt, err = c.SweepAt(domain, activeCores, samples, clockHz)
		return err
	})
	if err != nil {
		return nil, err
	}
	return pt, nil
}

// MonitorAll captures one combined spectrum over several domains' loads.
// Parts are sent in sorted domain order — the same order the bench's
// MonitorAll iterates — so the target's float summation matches a local
// capture exactly.
func (r *Remote) MonitorAll(loads map[string]platform.Load) (*instrument.Sweep, error) {
	if err := r.requireV2("the MONITOR verb"); err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("backend: no loads to monitor")
	}
	names := make([]string, 0, len(loads))
	for name := range loads {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]lab.MonitorPart, 0, len(names))
	for _, name := range names {
		caps, err := r.Caps(name)
		if err != nil {
			return nil, err
		}
		ipool, err := capsPool(caps)
		if err != nil {
			return nil, err
		}
		l := loads[name]
		parts = append(parts, lab.MonitorPart{
			Domain: name,
			Cores:  l.ActiveCores,
			Pool:   ipool,
			Seq:    l.Seq,
			Phases: l.PhaseCycles,
		})
	}
	var sw *instrument.Sweep
	err := r.pool.Do(func(c *lab.Client) error {
		var err error
		sw, err = c.Monitor(parts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sw, nil
}

// Vmin runs a repeated V_MIN search on the daemon with the workstation's
// tester seed. The returned Result carries no Trials (the descent log
// stays on the target).
func (r *Remote) Vmin(domain string, load platform.Load, seed int64, repeats int) (*vmin.Result, []float64, error) {
	if err := r.requireV2("the VMINFULL verb"); err != nil {
		return nil, nil, err
	}
	if err := loadable(load); err != nil {
		return nil, nil, err
	}
	caps, err := r.Caps(domain)
	if err != nil {
		return nil, nil, err
	}
	ipool, err := capsPool(caps)
	if err != nil {
		return nil, nil, err
	}
	var res *vmin.Result
	var runs []float64
	err = r.pool.Do(func(c *lab.Client) error {
		if err := c.Load(domain, load.ActiveCores, ipool, load.Seq); err != nil {
			return err
		}
		full, err := c.VminFull(seed, repeats)
		if err != nil {
			return err
		}
		res = &vmin.Result{
			VminV:         full.VminV,
			Outcome:       full.Outcome,
			MarginV:       full.MarginV,
			DroopNominalV: full.DroopNominalV,
		}
		runs = full.Runs
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return res, runs, nil
}

// VminShmoo traces the frequency/voltage failure boundary on the daemon.
func (r *Remote) VminShmoo(domain string, load platform.Load, seed int64, clocks []float64) ([]vmin.ShmooPoint, error) {
	if err := r.requireV2("the SHMOO verb"); err != nil {
		return nil, err
	}
	if err := loadable(load); err != nil {
		return nil, err
	}
	caps, err := r.Caps(domain)
	if err != nil {
		return nil, err
	}
	ipool, err := capsPool(caps)
	if err != nil {
		return nil, err
	}
	var points []vmin.ShmooPoint
	err = r.pool.Do(func(c *lab.Client) error {
		if err := c.Load(domain, load.ActiveCores, ipool, load.Seq); err != nil {
			return err
		}
		var err error
		points, err = c.Shmoo(seed, clocks)
		return err
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// EvalStats fetches the daemon-side evaluation-cache counters.
func (r *Remote) EvalStats(domain string) (string, error) {
	if err := r.requireV2("the STATS verb"); err != nil {
		return "", err
	}
	var stats string
	err := r.pool.Do(func(c *lab.Client) error {
		var err error
		stats, err = c.DomainStats(domain)
		return err
	})
	return stats, err
}

// Close drains and closes the client pool.
func (r *Remote) Close() error { return r.pool.Close() }
