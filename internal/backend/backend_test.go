package backend_test

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/lab"
	"repro/internal/platform"
	"repro/internal/session"
	"repro/internal/workload"
)

// newBench builds the reference bench: Juno, seed 1, 3-sample averaging.
// The in-process daemon and the local backend both use one of these, so
// every comparison below is against the same instrument state.
func newBench(t *testing.T) *core.Bench {
	t.Helper()
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBench(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 3
	return b
}

// startDaemon serves a reference bench on a loopback port.
func startDaemon(t *testing.T) string {
	t.Helper()
	srv, err := lab.NewServer(newBench(t))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { _ = srv.Shutdown() })
	return ln.Addr().String()
}

func fastOpts() lab.Options {
	return lab.Options{
		DialTimeout: 2 * time.Second,
		IOTimeout:   500 * time.Millisecond,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

func backends(t *testing.T, jobs int) (*backend.Local, *backend.Remote) {
	t.Helper()
	lb := newBench(t)
	lb.Parallelism = jobs
	local, err := backend.NewLocal(lb)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := backend.NewRemote(startDaemon(t), jobs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	remote.Samples = lb.Samples
	t.Cleanup(func() { _ = remote.Close() })
	return local, remote
}

func probeLoad(t *testing.T, be backend.Backend, domain string, cores int) platform.Load {
	t.Helper()
	caps, err := be.Caps(domain)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := workload.Probe().Build(caps.Pool())
	if err != nil {
		t.Fatal(err)
	}
	return platform.Load{Seq: seq, ActiveCores: cores}
}

// TestLocalRemoteEquivalence drives the whole Backend surface against a
// Local and a Remote built from identical benches and requires
// bit-identical answers: identity, capabilities, state, EM measurement,
// sweeps, V_MIN campaigns, shmoos, multi-domain monitoring and the
// evaluation counters.
func TestLocalRemoteEquivalence(t *testing.T) {
	local, remote := backends(t, 4)

	if remote.ProtocolVersion() != lab.ProtocolVersion {
		t.Fatalf("negotiated v%d, want v%d", remote.ProtocolVersion(), lab.ProtocolVersion)
	}
	if local.PlatformName() != remote.PlatformName() {
		t.Fatalf("platform %q != %q", local.PlatformName(), remote.PlatformName())
	}
	if !reflect.DeepEqual(local.Domains(), remote.Domains()) {
		t.Fatalf("domains %v != %v", local.Domains(), remote.Domains())
	}
	for _, dom := range local.Domains() {
		lc, err := local.Caps(dom)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := remote.Caps(dom)
		if err != nil {
			t.Fatal(err)
		}
		// Lineage is the one deliberate difference: GA checkpoints cannot
		// cross the wire.
		if !lc.Lineage || rc.Lineage {
			t.Fatalf("%s lineage: local %v remote %v", dom, lc.Lineage, rc.Lineage)
		}
		lc.Lineage, rc.Lineage = false, false
		if lc != rc {
			t.Fatalf("%s caps diverge:\nlocal  %+v\nremote %+v", dom, lc, rc)
		}
		if !reflect.DeepEqual(lc.ClockSteps(), rc.ClockSteps()) {
			t.Fatalf("%s clock grids diverge", dom)
		}
		ls, err := local.State(dom)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := remote.State(dom)
		if err != nil {
			t.Fatal(err)
		}
		if ls != rs {
			t.Fatalf("%s state: local %+v remote %+v", dom, ls, rs)
		}
	}

	// Setpoints propagate identically.
	for _, be := range []backend.Backend{local, remote} {
		if err := be.SetClock(platform.DomainA72, 600e6); err != nil {
			t.Fatal(err)
		}
		if err := be.SetPoweredCores(platform.DomainA53, 2); err != nil {
			t.Fatal(err)
		}
	}
	ls, _ := local.State(platform.DomainA53)
	rs, _ := remote.State(platform.DomainA53)
	if ls != rs || ls.PoweredCores != 2 {
		t.Fatalf("post-setpoint state: local %+v remote %+v", ls, rs)
	}
	for _, be := range []backend.Backend{local, remote} {
		if err := be.Reset(platform.DomainA72); err != nil {
			t.Fatal(err)
		}
		if err := be.Reset(platform.DomainA53); err != nil {
			t.Fatal(err)
		}
	}

	load := probeLoad(t, local, platform.DomainA72, 2)

	lm, err := local.EMMeasureN(platform.DomainA72, load, 3)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := remote.EMMeasureN(platform.DomainA72, load, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lm, rm) {
		t.Fatalf("EM measurement: local %+v remote %+v", lm, rm)
	}

	lsw, err := local.ResonanceSweep(platform.DomainA72, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rsw, err := remote.ResonanceSweep(platform.DomainA72, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lsw, rsw) {
		t.Fatal("resonance sweeps diverge")
	}

	lv, lruns, err := local.Vmin(platform.DomainA72, load, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	rv, rruns, err := remote.Vmin(platform.DomainA72, load, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lv.VminV != rv.VminV || lv.MarginV != rv.MarginV ||
		lv.DroopNominalV != rv.DroopNominalV || lv.Outcome != rv.Outcome {
		t.Fatalf("vmin: local %+v remote %+v", lv, rv)
	}
	if !reflect.DeepEqual(lruns, rruns) {
		t.Fatalf("vmin runs: local %v remote %v", lruns, rruns)
	}

	caps, _ := local.Caps(platform.DomainA72)
	steps := caps.ClockSteps()
	clocks := []float64{steps[len(steps)-1], steps[0]}
	lsh, err := local.VminShmoo(platform.DomainA72, load, 9, clocks)
	if err != nil {
		t.Fatal(err)
	}
	rsh, err := remote.VminShmoo(platform.DomainA72, load, 9, clocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lsh, rsh) {
		t.Fatal("shmoos diverge")
	}

	a53 := probeLoad(t, local, platform.DomainA53, 4)
	loads := map[string]platform.Load{
		platform.DomainA72: load,
		platform.DomainA53: a53,
	}
	lmon, err := local.MonitorAll(loads)
	if err != nil {
		t.Fatal(err)
	}
	rmon, err := remote.MonitorAll(loads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lmon, rmon) {
		t.Fatal("monitor spectra diverge")
	}

	// The daemon ran the same operations the local bench did (in this
	// order), so the per-domain counters agree too.
	lstats, err := local.EvalStats(platform.DomainA53)
	if err != nil {
		t.Fatal(err)
	}
	rstats, err := remote.EvalStats(platform.DomainA53)
	if err != nil {
		t.Fatal(err)
	}
	if lstats != rstats {
		t.Fatalf("eval stats diverge:\nlocal:\n%s\nremote:\n%s", lstats, rstats)
	}
}

// TestMeasurerEquivalence runs a small GA under every metric through both
// backends: em on the voltage-blind A53 (the paper's whole point) and
// droop/ptp on the OC-DSO A72. Histories must match generation by
// generation.
func TestMeasurerEquivalence(t *testing.T) {
	local, remote := backends(t, 8)
	cases := []struct {
		name   string
		spec   backend.MeasurerSpec
		seqLen int
	}{
		{"em-a53", backend.MeasurerSpec{Domain: platform.DomainA53, Metric: backend.MetricEM, ActiveCores: 4, Samples: 3}, 12},
		{"droop-a72", backend.MeasurerSpec{Domain: platform.DomainA72, Metric: backend.MetricDroop, ActiveCores: 2, Samples: 3, DSOSeed: 5}, 12},
		{"ptp-a72", backend.MeasurerSpec{Domain: platform.DomainA72, Metric: backend.MetricPtp, ActiveCores: 2, Samples: 3, DSOSeed: 5}, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			caps, err := local.Caps(tc.spec.Domain)
			if err != nil {
				t.Fatal(err)
			}
			cfg := ga.DefaultConfig(caps.Pool())
			cfg.PopulationSize = 6
			cfg.Generations = 3
			cfg.SeqLen = tc.seqLen
			cfg.Parallelism = 8

			lmes, err := local.Measurer(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			rmes, err := remote.Measurer(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			lres, err := ga.Run(cfg, lmes, nil)
			if err != nil {
				t.Fatal(err)
			}
			rres, err := ga.Run(cfg, rmes, nil)
			if err != nil {
				t.Fatal(err)
			}
			if lres.Best.Fitness != rres.Best.Fitness || !reflect.DeepEqual(lres.History, rres.History) {
				t.Fatalf("%s GA diverged: local best %v remote best %v",
					tc.name, lres.Best.Fitness, rres.Best.Fitness)
			}
		})
	}
}

// TestCapabilityError: droop on the voltage-blind A53 must fail with the
// typed error on both backends, before any measurement is attempted.
func TestCapabilityError(t *testing.T) {
	local, remote := backends(t, 1)
	for _, tc := range []struct {
		name string
		be   backend.Backend
	}{{"local", local}, {"remote", remote}} {
		spec := backend.MeasurerSpec{Domain: platform.DomainA53, Metric: backend.MetricDroop, ActiveCores: 4}
		_, err := tc.be.Measurer(spec)
		if err == nil {
			t.Fatalf("%s: droop on a voltage-blind domain succeeded", tc.name)
		}
		if !backend.IsCapabilityError(err) {
			t.Fatalf("%s: error not a *CapabilityError: %v", tc.name, err)
		}
	}
}

// sessionBytes runs the report flow every CLI shares — capture state,
// record a sweep and a V_MIN row — and serializes it with a pinned
// timestamp.
func sessionBytes(t *testing.T, be backend.Backend) []byte {
	t.Helper()
	rep, err := session.New(be, platform.DomainA72, time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := be.ResonanceSweep(platform.DomainA72, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep.SetSweep(sw)
	res, _, err := be.Vmin(platform.DomainA72, probeLoad(t, be, platform.DomainA72, 2), 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep.AddVmin("probe", res)
	var buf bytes.Buffer
	if err := rep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSessionReportDeterminism is the satellite acceptance test: the same
// seed and workload must yield byte-identical session.Report JSON from a
// local backend and a remote one, at parallelism 1 and 8.
func TestSessionReportDeterminism(t *testing.T) {
	var reference []byte
	for _, jobs := range []int{1, 8} {
		local, remote := backends(t, jobs)
		lb := sessionBytes(t, local)
		rb := sessionBytes(t, remote)
		if !bytes.Equal(lb, rb) {
			t.Fatalf("-j %d: local and remote reports differ:\n%s\n---\n%s", jobs, lb, rb)
		}
		if reference == nil {
			reference = lb
		} else if !bytes.Equal(reference, lb) {
			t.Fatalf("-j %d report differs from -j 1 report", jobs)
		}
	}
}
