package backend

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// Local adapts an in-process core.Bench to the Backend interface. It adds
// no behavior of its own: every method delegates to the bench (or the
// domain), so code rebased from *core.Bench onto Backend produces the
// same bytes it did before.
type Local struct {
	bench *core.Bench
}

// NewLocal wraps a validated bench.
func NewLocal(b *core.Bench) (*Local, error) {
	if b == nil {
		return nil, fmt.Errorf("backend: nil bench")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &Local{bench: b}, nil
}

// Bench exposes the wrapped bench for callers that need local-only
// surfaces (analytic PDN paths, lineage experiments).
func (l *Local) Bench() *core.Bench { return l.bench }

func (l *Local) domain(name string) (*platform.Domain, error) {
	return l.bench.Platform.Domain(name)
}

// PlatformName identifies the wrapped platform.
func (l *Local) PlatformName() string { return l.bench.Platform.Name }

// Domains lists the platform's voltage domains.
func (l *Local) Domains() []string {
	ds := l.bench.Platform.Domains()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Spec.Name
	}
	return names
}

// dsoKindFor mirrors the lab server's visibility→scope mapping so both
// backends report identical capability records.
func dsoKindFor(visibility string) string {
	switch visibility {
	case "oc-dso":
		return "oc-dso"
	case "kelvin-pads":
		return "bench-scope"
	default:
		return ""
	}
}

// Caps returns a domain's capability record.
func (l *Local) Caps(name string) (Caps, error) {
	d, err := l.domain(name)
	if err != nil {
		return Caps{}, err
	}
	spec := d.Spec
	return Caps{
		Domain:            spec.Name,
		TotalCores:        spec.TotalCores,
		Arch:              spec.ISA,
		MaxClockHz:        spec.MaxClockHz,
		ClockStepHz:       spec.ClockStepHz,
		VoltageVisibility: spec.VoltageVisibility,
		DSOKind:           dsoKindFor(spec.VoltageVisibility),
		Lineage:           true,
	}, nil
}

// State returns a domain's current operating point.
func (l *Local) State(name string) (DomainState, error) {
	d, err := l.domain(name)
	if err != nil {
		return DomainState{}, err
	}
	return DomainState{
		ClockHz:      d.ClockHz(),
		SupplyV:      d.SupplyVolts(),
		PoweredCores: d.PoweredCores(),
	}, nil
}

// SetClock adjusts a domain's DVFS point.
func (l *Local) SetClock(name string, hz float64) error {
	d, err := l.domain(name)
	if err != nil {
		return err
	}
	return d.SetClockHz(hz)
}

// SetSupply adjusts a domain's supply setpoint.
func (l *Local) SetSupply(name string, volts float64) error {
	d, err := l.domain(name)
	if err != nil {
		return err
	}
	return d.SetSupplyVolts(volts)
}

// SetPoweredCores power-gates cores.
func (l *Local) SetPoweredCores(name string, n int) error {
	d, err := l.domain(name)
	if err != nil {
		return err
	}
	return d.SetPoweredCores(n)
}

// Reset restores a domain's nominal operating point.
func (l *Local) Reset(name string) error {
	d, err := l.domain(name)
	if err != nil {
		return err
	}
	d.Reset()
	return nil
}

// benchWithSamples returns the bench, re-sampled via a shallow copy when
// the caller wants a different analyzer averaging depth (the copy shares
// platform, analyzer and caches; Samples is read per call).
func (l *Local) benchWithSamples(samples int) *core.Bench {
	if samples <= 0 || samples == l.bench.Samples {
		return l.bench
	}
	b2 := *l.bench
	b2.Samples = samples
	return &b2
}

// EMMeasure measures a load's EM peak at the bench's default averaging.
func (l *Local) EMMeasure(name string, load platform.Load) (*instrument.Measurement, error) {
	d, err := l.domain(name)
	if err != nil {
		return nil, err
	}
	return l.bench.EMMeasure(d, load)
}

// EMMeasureN measures a load's EM peak with explicit averaging.
func (l *Local) EMMeasureN(name string, load platform.Load, samples int) (*instrument.Measurement, error) {
	d, err := l.domain(name)
	if err != nil {
		return nil, err
	}
	return l.bench.EMMeasureN(d, load, samples)
}

// Measurer builds a GA fitness function on the local bench. The em metric
// returns the bench's lineage-capable measurer unchanged, so checkpoint
// resume keeps working through the backend layer.
func (l *Local) Measurer(spec MeasurerSpec) (ga.Measurer, error) {
	d, err := l.domain(spec.Domain)
	if err != nil {
		return nil, err
	}
	b := l.benchWithSamples(spec.Samples)
	switch spec.Metric {
	case MetricEM:
		return b.EMMeasurer(d, spec.ActiveCores), nil
	case MetricDroop, MetricPtp:
		vis := d.Spec.VoltageVisibility
		kind := dsoKindFor(vis)
		if kind == "" {
			return nil, &CapabilityError{Domain: spec.Domain, Metric: spec.Metric, Visibility: vis}
		}
		var dso *instrument.DSO
		if kind == "bench-scope" {
			dso = instrument.NewBenchScope(spec.DSOSeed)
		} else {
			dso = instrument.NewOCDSO(spec.DSOSeed)
		}
		if spec.Metric == MetricDroop {
			return b.DroopMeasurer(d, spec.ActiveCores, dso), nil
		}
		return b.PtpMeasurer(d, spec.ActiveCores, dso), nil
	default:
		return nil, fmt.Errorf("backend: unknown metric %q", spec.Metric)
	}
}

// ResonanceSweep runs the fast resonance sweep. The whole clock grid goes
// through core.Bench.SweepBatch: one probe build, one primed trace, one
// band-prefilter pass, arena-backed spectra — bit-identical to the
// per-point path a fleet shard handler drives via SweepPoint.
func (l *Local) ResonanceSweep(name string, activeCores, samples int) (*core.SweepResult, error) {
	d, err := l.domain(name)
	if err != nil {
		return nil, err
	}
	return l.benchWithSamples(samples).FastResonanceSweep(d, activeCores)
}

// SweepPoint measures one fast-sweep point at an explicit clock setting
// (the single-point form of the batched sweep, so a sharded grid and a
// local batch agree bit for bit).
func (l *Local) SweepPoint(name string, activeCores, samples int, clockHz float64) (*core.SweepPoint, error) {
	d, err := l.domain(name)
	if err != nil {
		return nil, err
	}
	return l.benchWithSamples(samples).SweepPointAt(d, activeCores, clockHz)
}

// MonitorAll captures one combined spectrum over several domains' loads.
func (l *Local) MonitorAll(loads map[string]platform.Load) (*instrument.Sweep, error) {
	return l.bench.MonitorAll(loads)
}

// Vmin runs a repeated V_MIN search. All repeats descend one batched
// supply ladder (vmin.Tester.Repeat), so the electrical evaluation of
// revisited voltage steps amortizes across runs.
func (l *Local) Vmin(name string, load platform.Load, seed int64, repeats int) (*vmin.Result, []float64, error) {
	d, err := l.domain(name)
	if err != nil {
		return nil, nil, err
	}
	tester := vmin.NewTester(d, seed)
	tester.Parallelism = l.bench.Parallelism
	return tester.Repeat(load, repeats)
}

// VminShmoo traces the frequency/voltage failure boundary. The batched
// shmoo primes the workload trace once, dedups clocks that snap onto the
// same DVFS step, and descends per-column supply ladders — results are
// bit-identical to per-clock searches, which is what the fleet's one-cell
// ShmooGrid shards rely on.
func (l *Local) VminShmoo(name string, load platform.Load, seed int64, clocks []float64) ([]vmin.ShmooPoint, error) {
	d, err := l.domain(name)
	if err != nil {
		return nil, err
	}
	tester := vmin.NewTester(d, seed)
	tester.Parallelism = l.bench.Parallelism
	return tester.Shmoo(load, clocks)
}

// EvalStats returns the domain's evaluation-cache counters, plus the
// bench's generation-batched evaluation line once any batch has run.
func (l *Local) EvalStats(name string) (string, error) {
	d, err := l.domain(name)
	if err != nil {
		return "", err
	}
	stats := d.EvalStats()
	if bs := l.bench.BatchStats(); bs.Batches > 0 {
		stats += "\n" + bs.String()
	}
	return stats, nil
}

// Close is a no-op: the bench lives in-process.
func (l *Local) Close() error { return nil }
