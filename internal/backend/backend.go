// Package backend defines the one measurement surface every layer above
// the rig speaks: domain enumeration and control, EM measurement, GA
// measurer factories, V_MIN campaigns and evaluation statistics. Two
// implementations exist — Local wraps a core.Bench in-process, Remote
// drives a lab daemon over TCP — and they are observationally equivalent:
// the same seeds and workloads produce bit-identical results on either
// (see DESIGN.md §12 for the argument), so backend choice is purely a
// deployment decision, exactly the paper's workstation/target split.
//
// Capabilities replace implicit assumptions: a caller asks Caps() whether
// a domain has direct voltage visibility (and which scope provides it)
// instead of measuring garbage; requesting a droop/ptp measurer on a
// blind domain fails with a typed *CapabilityError.
package backend

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// Metric names a GA fitness observable: the EM peak (the paper's default,
// works on every domain), the DSO droop depth, or the peak-to-peak swing.
type Metric string

// The three measurer metrics.
const (
	MetricEM    Metric = "em"
	MetricDroop Metric = "droop"
	MetricPtp   Metric = "ptp"
)

// ParseMetric validates a metric name (e.g. from a -metric flag).
func ParseMetric(s string) (Metric, error) {
	switch Metric(s) {
	case MetricEM, MetricDroop, MetricPtp:
		return Metric(s), nil
	default:
		return "", fmt.Errorf("backend: unknown metric %q (want em, droop or ptp)", s)
	}
}

// Caps is a domain's capability record: what the rig can do, not what it
// is currently set to (that is State).
type Caps struct {
	Domain      string
	TotalCores  int
	Arch        isa.Arch
	MaxClockHz  float64
	ClockStepHz float64
	// VoltageVisibility is the domain's direct voltage measurement support:
	// "oc-dso", "kelvin-pads" or "none". The droop/ptp metrics need it; EM
	// does not — that asymmetry is the paper's thesis.
	VoltageVisibility string
	// DSOKind names the scope the visibility implies ("oc-dso",
	// "bench-scope") or is empty when there is none.
	DSOKind string
	// Lineage reports whether em measurers support checkpoint-resume
	// evaluation (ga.LineageMeasurer). True locally; false over the wire,
	// where checkpoints cannot leave the target process.
	Lineage bool
}

// Pool returns the ISA instruction pool matching the domain's
// architecture.
func (c Caps) Pool() *isa.Pool { return isa.PoolFor(c.Arch) }

// ClockSteps lists the domain's clock grid from low to high, identical to
// the local Domain.ClockSteps (both evaluate platform.ClockStepsFor on the
// same two floats).
func (c Caps) ClockSteps() []float64 {
	return platform.ClockStepsFor(c.ClockStepHz, c.MaxClockHz)
}

// DomainState is a domain's current operating point.
type DomainState struct {
	ClockHz      float64
	SupplyV      float64
	PoweredCores int
}

// MeasurerSpec configures a GA measurer factory call.
type MeasurerSpec struct {
	Domain      string
	Metric      Metric
	ActiveCores int
	// Samples is the analyzer averaging depth per evaluation (0 = backend
	// default).
	Samples int
	// DSOSeed fixes the scope noise stream for the droop/ptp metrics, so
	// historical experiment seeds reproduce on any backend. Ignored for em
	// (the analyzer seed is rig-owned).
	DSOSeed int64
}

// CapabilityError reports a measurement request a domain cannot satisfy,
// with enough context to act on.
type CapabilityError struct {
	Domain     string
	Metric     Metric
	Visibility string
}

func (e *CapabilityError) Error() string {
	return fmt.Sprintf(
		"backend: metric %q needs direct voltage visibility, but domain %s has %q — use the em metric (no voltage access required), or target a domain with an OC-DSO or Kelvin pads",
		e.Metric, e.Domain, e.Visibility)
}

// IsCapabilityError reports whether err is (or wraps) a *CapabilityError.
func IsCapabilityError(err error) bool {
	var ce *CapabilityError
	return errors.As(err, &ce)
}

// Backend is one measurement rig: a platform with one or more voltage
// domains, the instruments attached to it, and the controls the paper's
// methodology needs. Implementations must be content-deterministic — the
// same (seed, workload, operating point) always yields the same bytes —
// and safe for concurrent use by multiple goroutines.
type Backend interface {
	// PlatformName identifies the rig ("juno-r2", "amd-desktop", ...).
	PlatformName() string
	// Domains lists the rig's voltage domains.
	Domains() []string
	// Caps returns a domain's capability record.
	Caps(domain string) (Caps, error)

	// State returns a domain's current operating point.
	State(domain string) (DomainState, error)
	// SetClock, SetSupply and SetPoweredCores write absolute setpoints;
	// Reset restores the nominal operating point.
	SetClock(domain string, hz float64) error
	SetSupply(domain string, volts float64) error
	SetPoweredCores(domain string, n int) error
	Reset(domain string) error

	// EMMeasure takes an averaged EM peak measurement of a load at the
	// backend's default sample count; EMMeasureN makes the count explicit.
	EMMeasure(domain string, load platform.Load) (*instrument.Measurement, error)
	EMMeasureN(domain string, load platform.Load, samples int) (*instrument.Measurement, error)
	// Measurer builds a GA fitness function for the spec's metric. A
	// droop/ptp request on a domain without voltage visibility returns a
	// *CapabilityError.
	Measurer(spec MeasurerSpec) (ga.Measurer, error)

	// ResonanceSweep runs the Section 5.3 fast resonance sweep with the
	// given per-point analyzer averaging.
	ResonanceSweep(domain string, activeCores, samples int) (*core.SweepResult, error)
	// SweepPoint measures one fast-sweep point at an explicit clock
	// setting without touching the domain's live clock (nil point, nil
	// error = the probe loop is out of band at that clock). Fleet
	// coordinators shard core.SweepClockSteps over this; a pre-v3 remote
	// daemon lacks the verb and returns an error (see Remote.
	// SweepPointCapable for the placement-time check).
	SweepPoint(domain string, activeCores, samples int, clockHz float64) (*core.SweepPoint, error)
	// MonitorAll captures one spectrum with every given domain's load
	// emitting simultaneously (Figure 15).
	MonitorAll(loads map[string]platform.Load) (*instrument.Sweep, error)

	// Vmin runs a repeated V_MIN search and returns the worst result plus
	// every per-run V_MIN; repeats=1 is a single search. The Trials field
	// of the result is populated locally only.
	Vmin(domain string, load platform.Load, seed int64, repeats int) (*vmin.Result, []float64, error)
	// VminShmoo traces the frequency/voltage failure boundary at the given
	// clocks.
	VminShmoo(domain string, load platform.Load, seed int64, clocks []float64) ([]vmin.ShmooPoint, error)

	// EvalStats returns the rig-side evaluation-cache counters for -v
	// output.
	EvalStats(domain string) (string, error)
	// Close releases the rig (network sessions, pools). The local backend
	// is a no-op.
	Close() error
}
