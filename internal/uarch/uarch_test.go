package uarch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// mk builds an instruction instance from a mnemonic with explicit operands.
func mk(t *testing.T, p *isa.Pool, mnemonic string, dest int, srcs ...int) isa.Inst {
	t.Helper()
	d, ok := p.DefByMnemonic(mnemonic)
	if !ok {
		t.Fatalf("no mnemonic %q", mnemonic)
	}
	in := isa.Inst{Def: d, Dest: dest}
	for i, s := range srcs {
		in.Srcs[i] = s
	}
	return in
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{CortexA72(), CortexA53(), AthlonII()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
	}
	bad := CortexA72()
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = CortexA72()
	bad.WindowSize = 1
	if err := bad.Validate(); err == nil {
		t.Error("window < width accepted")
	}
	bad = CortexA72()
	bad.ChargeScale = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero charge scale accepted")
	}
	bad = CortexA72()
	bad.BaseCharge = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative base charge accepted")
	}
	bad = CortexA72()
	bad.Units[isa.UnitFP] = 0
	if err := bad.Validate(); err == nil {
		t.Error("missing FP unit accepted")
	}
}

func TestRunErrors(t *testing.T) {
	p := isa.ARM64Pool()
	seq := []isa.Inst{mk(t, p, "add", 1, 2, 3)}
	if _, err := Run(CortexA72(), nil, 100); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := Run(CortexA72(), seq, 0); err == nil {
		t.Error("zero steady cycles accepted")
	}
	bad := CortexA72()
	bad.IssueWidth = 0
	if _, err := Run(bad, seq, 100); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// add x1 <- x1: a serial chain, one per cycle on any width.
	p := isa.ARM64Pool()
	seq := []isa.Inst{
		mk(t, p, "add", 1, 1, 1),
		mk(t, p, "add", 1, 1, 1),
		mk(t, p, "add", 1, 1, 1),
		mk(t, p, "add", 1, 1, 1),
	}
	for _, cfg := range []Config{CortexA53(), CortexA72()} {
		res, err := Run(cfg, seq, 2000)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.IPC < 0.85 || res.IPC > 1.15 {
			t.Errorf("%s: dependent-chain IPC = %v, want ~1", cfg.Name, res.IPC)
		}
	}
}

func TestIndependentAddsDualIssueInOrder(t *testing.T) {
	// Independent adds on distinct registers: the A53 model has 2 ALUs and
	// width 2, so IPC should approach 2.
	p := isa.ARM64Pool()
	var seq []isa.Inst
	for i := 0; i < 8; i++ {
		seq = append(seq, mk(t, p, "add", i+1, 0, 0))
	}
	res, err := Run(CortexA53(), seq, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC < 1.8 {
		t.Errorf("independent adds IPC = %v, want ~2", res.IPC)
	}
}

func TestMixedIssueReachesWidth3OutOfOrder(t *testing.T) {
	// A mix across units lets the A72 model sustain its full width.
	p := isa.ARM64Pool()
	var seq []isa.Inst
	for i := 0; i < 6; i++ {
		seq = append(seq,
			mk(t, p, "add", i+1, 0, 0),
			mk(t, p, "fadd", i+1, 0, 0),
			mk(t, p, "vadd", i+8, 0, 0),
		)
	}
	res, err := Run(CortexA72(), seq, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC < 2.7 {
		t.Errorf("mixed IPC = %v, want ~3", res.IPC)
	}
}

func TestUnpipelinedDivideBlocks(t *testing.T) {
	// Dependent sdivs occupy the single muldiv unit for Block cycles each.
	p := isa.ARM64Pool()
	d, _ := p.DefByMnemonic("sdiv")
	seq := []isa.Inst{
		mk(t, p, "sdiv", 1, 1, 1),
		mk(t, p, "sdiv", 1, 1, 1),
	}
	res, err := Run(CortexA72(), seq, 3000)
	if err != nil {
		t.Fatal(err)
	}
	wantCPI := float64(d.Latency)
	gotCPI := 1 / res.IPC
	if math.Abs(gotCPI-wantCPI) > 1.5 {
		t.Errorf("divide CPI = %v, want ~%v", gotCPI, wantCPI)
	}
}

func TestOutOfOrderHidesLatency(t *testing.T) {
	// A long divide followed by independent adds: the OoO core keeps
	// issuing adds under the divide, the in-order core stalls.
	p := isa.ARM64Pool()
	var seq []isa.Inst
	seq = append(seq, mk(t, p, "sdiv", 15, 15, 15))
	for i := 0; i < 12; i++ {
		seq = append(seq, mk(t, p, "add", i+1, 0, 0))
	}
	ooo, err := Run(CortexA72(), seq, 3000)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := Run(CortexA53(), seq, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if ooo.IPC <= ino.IPC*1.2 {
		t.Errorf("OoO IPC %v not clearly above in-order IPC %v", ooo.IPC, ino.IPC)
	}
}

func TestChargeTraceHasHighAndLowPhases(t *testing.T) {
	// The paper's probe loop: a burst of adds then a divide. The steady
	// charge trace must show distinct high- and low-current phases.
	p := isa.ARM64Pool()
	var seq []isa.Inst
	for i := 0; i < 8; i++ {
		seq = append(seq, mk(t, p, "add", i+1, 0, 0))
	}
	seq = append(seq, mk(t, p, "sdiv", 15, 15, 15))
	res, err := Run(CortexA53(), seq, 4000)
	if err != nil {
		t.Fatal(err)
	}
	steady := res.SteadyCharge()
	min, max := steady[0], steady[0]
	for _, q := range steady {
		if q < min {
			min = q
		}
		if q > max {
			max = q
		}
	}
	if max < 2*min {
		t.Errorf("charge swing too small: min %v max %v", min, max)
	}
	if res.LoopCycles <= 0 {
		t.Error("LoopCycles not positive")
	}
}

func TestSteadyStateIsPeriodic(t *testing.T) {
	// After warmup the machine state repeats every iteration, so the
	// steady charge trace must be periodic with the loop period.
	p := isa.ARM64Pool()
	var seq []isa.Inst
	for i := 0; i < 5; i++ {
		seq = append(seq, mk(t, p, "add", i+1, 0, 0))
		seq = append(seq, mk(t, p, "fmul", i+1, i, i))
	}
	seq = append(seq, mk(t, p, "sdiv", 15, 15, 15))
	res, err := Run(CortexA53(), seq, 5000)
	if err != nil {
		t.Fatal(err)
	}
	period := int(math.Round(res.LoopCycles))
	if period <= 0 {
		t.Fatalf("bad period %v", res.LoopCycles)
	}
	steady := res.SteadyCharge()
	if len(steady) < 3*period {
		t.Fatalf("steady trace too short: %d", len(steady))
	}
	for i := period; i < 2*period; i++ {
		if math.Abs(steady[i]-steady[i+period]) > 1e-15 {
			t.Fatalf("trace not periodic at %d: %v vs %v", i, steady[i], steady[i+period])
		}
	}
}

// Property: the simulator is deterministic — identical runs give identical
// traces and metrics.
func TestDeterminismProperty(t *testing.T) {
	pools := map[bool]*isa.Pool{false: isa.ARM64Pool(), true: isa.X86Pool()}
	cfgs := map[bool]Config{false: CortexA72(), true: AthlonII()}
	prop := func(seed int64, x86 bool) bool {
		p := pools[x86]
		cfg := cfgs[x86]
		rng := rand.New(rand.NewSource(seed))
		seq := p.RandomSequence(rng, 10+rng.Intn(50))
		a, err := Run(cfg, seq, 1500)
		if err != nil {
			return false
		}
		b, err := Run(cfg, seq, 1500)
		if err != nil {
			return false
		}
		if a.IPC != b.IPC || a.LoopCycles != b.LoopCycles || len(a.Charge) != len(b.Charge) {
			return false
		}
		for i := range a.Charge {
			if a.Charge[i] != b.Charge[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: charge is always positive and IPC within machine width.
func TestChargeAndIPCBoundsProperty(t *testing.T) {
	p := isa.ARM64Pool()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := p.RandomSequence(rng, 5+rng.Intn(60))
		for _, cfg := range []Config{CortexA72(), CortexA53()} {
			res, err := Run(cfg, seq, 1200)
			if err != nil {
				return false
			}
			if res.IPC <= 0 || res.IPC > float64(cfg.IssueWidth)+1e-9 {
				return false
			}
			for _, q := range res.Charge {
				if q <= 0 {
					return false
				}
			}
			if res.Warmup <= 0 || res.Warmup >= len(res.Charge) {
				return false
			}
		}
		return true
	}
	qc := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}

func TestStoresAndBranchesExecute(t *testing.T) {
	p := isa.ARM64Pool()
	str, _ := p.DefByMnemonic("str")
	ldr, _ := p.DefByMnemonic("ldr")
	b, _ := p.DefByMnemonic("b")
	seq := []isa.Inst{
		{Def: ldr, Dest: 1, Addr: 0},
		{Def: str, Srcs: [2]int{1}, Addr: 1},
		{Def: b},
		mk(t, p, "add", 2, 1, 1),
	}
	res, err := Run(CortexA53(), seq, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("IPC not positive")
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	// With a window of 4 and long-latency producers, a tiny window
	// throttles an out-of-order core down toward in-order behaviour.
	p := isa.ARM64Pool()
	var seq []isa.Inst
	for i := 0; i < 8; i++ {
		seq = append(seq, mk(t, p, "fmul", i+1, 0, 0))
		seq = append(seq, mk(t, p, "add", i+1, 0, 0))
	}
	wide := CortexA72()
	narrow := CortexA72()
	narrow.WindowSize = 4
	rWide, err := Run(wide, seq, 2000)
	if err != nil {
		t.Fatal(err)
	}
	rNarrow, err := Run(narrow, seq, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rNarrow.IPC >= rWide.IPC {
		t.Fatalf("narrow window IPC %v not below wide %v", rNarrow.IPC, rWide.IPC)
	}
}

func TestGPUConfigValid(t *testing.T) {
	// The GPU SM lives in internal/platform but is a uarch.Config; make
	// sure an SM-like config (wide SIMD, in-order) executes sanely here.
	cfg := CortexA53()
	cfg.Units[isa.UnitSIMD] = 2
	cfg.WindowSize = 12 // as in the GPU SM config; 8 starves the 4-cycle vmuls
	cfg.Name = "sm-like"
	p := isa.ARM64Pool()
	var seq []isa.Inst
	for i := 0; i < 8; i++ {
		seq = append(seq, mk(t, p, "vmul", i+1, 0, 0))
	}
	res, err := Run(cfg, seq, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// Two SIMD units and width 2: independent vmuls should dual-issue.
	if res.IPC < 1.8 {
		t.Fatalf("SIMD dual-issue IPC %v", res.IPC)
	}
}

func TestLoopCyclesStableAcrossWindowLengths(t *testing.T) {
	// LoopCycles must not depend on how long we simulate.
	p := isa.ARM64Pool()
	var seq []isa.Inst
	for i := 0; i < 10; i++ {
		seq = append(seq, mk(t, p, "add", i+1, 0, 0))
	}
	seq = append(seq, mk(t, p, "sdiv", 15, 15, 15))
	a, err := Run(CortexA53(), seq, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(CortexA53(), seq, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LoopCycles-b.LoopCycles) > 0.25 {
		t.Fatalf("LoopCycles drifted with simulation length: %v vs %v", a.LoopCycles, b.LoopCycles)
	}
}
