package uarch

// Lineage-aware checkpointed replay.
//
// A GA child bred by one-point crossover and per-gene mutation is identical
// to its first parent up to the first divergent instruction, so the
// simulator keeps re-executing prefixes it has already seen. This file
// snapshots the complete simulator state at fixed instruction boundaries
// within the first loop iteration — deeper boundaries are useless because
// the loop wraps and every later dynamic instruction depends on the whole
// sequence — and stores the snapshots in a content-hash prefix store. A new
// simulation probes the store deepest-first and resumes from the deepest
// snapshot whose sequence prefix matches its own, skipping the shared
// prefix entirely.
//
// The bit-identity argument mirrors the trace cache's prefix lemma: the
// simulator is deterministic and processes the program in fetch order, so
// its state at the moment instruction j has just been renamed is a pure
// function of (Config, seq[:j]) — nothing fetched later can influence it
// (for j within the first iteration, where the cyclic fetch has not yet
// wrapped). A snapshot captures that state completely (window, rename map,
// unit reservations, charge difference array, cumulative issue counts,
// cycle/fetch counters and the split cycle's slot and issue count), so a
// resumed run replays the remaining instructions into exactly the state a
// fresh run would have reached, and every downstream value is bit-identical.
// Checkpoint hits are verified by content comparison against the stored
// prefix, never by hash alone.
//
// Concurrency: the store is a mutex-guarded map with an intrusive LRU list
// bounded by total snapshot cycles. Store-if-absent under the mutex
// deduplicates concurrent writers of the same prefix (the whole population
// shares a handful of elite parents), and entries are immutable once
// published, so hits need no copying.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/detrand"
	"repro/internal/isa"
)

const (
	// ckptInterval is the instruction spacing of snapshot boundaries within
	// the first loop iteration. 16 keeps the store small (at most
	// len(seq)/16 snapshots per distinct prefix) while landing within a few
	// instructions of typical GA divergence points.
	ckptInterval = 16
	// ckptMaxCycles bounds the total prefix cycles held across snapshots.
	// A snapshot costs a few hundred words per prefix cycle recorded, so
	// this is a budget of a few MiB.
	ckptMaxCycles = 1 << 16
	// ckptSeenMax bounds the prefix-keys-requested filter (see probe). When
	// full it is cleared wholesale: the only cost of forgetting is one extra
	// probe-and-miss before a shared prefix becomes store-eligible again.
	ckptSeenMax = 1 << 15
)

// ckptEntry is one stored snapshot: the simulator state immediately after
// renaming instruction `depth` of any sequence beginning with `prefix`,
// flat-encoded into a single word slice. Entries are immutable once stored.
type ckptEntry struct {
	key    uint64
	cfg    Config
	prefix []isa.Inst // the first depth instructions, content-verified on hit
	depth  int
	cycles int // cycles covered by the snapshot; the LRU budget unit
	flat   []uint64

	prev, next *ckptEntry // intrusive LRU list; head = most recently used
}

type ckptStore struct {
	mu      sync.Mutex
	entries map[uint64]*ckptEntry
	// seen records prefix keys that some earlier simulation probed for.
	// Snapshots are stored only for prefixes already in seen: a prefix is
	// snapshot-worthy once a *second* simulation has asked for it, so the
	// endless stream of never-repeated random sequences a GA evaluates
	// stores nothing, while a shared parent prefix is stored by the second
	// child and hit by every later one.
	seen   map[uint64]struct{}
	head   *ckptEntry
	tail   *ckptEntry
	cycles int

	hits         atomic.Uint64
	misses       atomic.Uint64
	stored       atomic.Uint64
	evictions    atomic.Uint64
	resumedInsts atomic.Uint64
}

var (
	globalCkptStore = newCkptStore()
	ckptOn          atomic.Bool
)

func init() { ckptOn.Store(true) }

func newCkptStore() *ckptStore {
	return &ckptStore{
		entries: make(map[uint64]*ckptEntry),
		seen:    make(map[uint64]struct{}),
	}
}

// Lineage is an optional hint that a sequence shares its first Diverge
// instructions with a previously simulated one (a GA child's divergence
// from its parent). It caps how deep the checkpoint store probes; it can
// never change results, because every checkpoint hit is verified against
// the candidate's actual prefix content.
type Lineage struct {
	Diverge int
}

// simulate is the single entry point for running the simulator: it probes
// the checkpoint store, runs the (possibly resumed) simulation, stores any
// newly crossed boundaries as snapshots, and recycles the sim shell.
func simulate(cfg *Config, seq []isa.Inst, minSteadyCycles int, lin *Lineage) (*traceHist, error) {
	s := newSim(cfg, seq, simHint(minSteadyCycles))
	if ckptOn.Load() && len(seq) >= ckptInterval {
		st := globalCkptStore
		s.ckpt = st
		s.boundaries, s.keys = prefixKeys(cfg, seq, s.boundaries[:0], s.keys[:0])
		if cap(s.ckptWant) < len(s.boundaries) {
			s.ckptWant = make([]bool, len(s.boundaries))
		} else {
			s.ckptWant = s.ckptWant[:len(s.boundaries)]
		}
		maxDepth := len(seq)
		if lin != nil && lin.Diverge < maxDepth {
			maxDepth = lin.Diverge
		}
		if e := st.probe(cfg, seq, maxDepth, s.boundaries, s.keys, s.ckptWant); e != nil {
			st.hits.Add(1)
			st.resumedInsts.Add(uint64(e.depth))
			s.restore(e)
		} else {
			st.misses.Add(1)
		}
	}
	h, err := s.run(minSteadyCycles)
	s.release()
	return h, err
}

// prefixKeys returns the snapshot boundaries for a sequence (multiples of
// ckptInterval up to its length) and the content hash of each prefix,
// appending into the caller's (typically pooled) slices. The hash folds the
// config and the prefix instructions only — deliberately not the sequence
// length, since the simulator's state after j instructions is identical for
// any sequence of length >= j sharing that prefix.
func prefixKeys(cfg *Config, seq []isa.Inst, bounds []int, keys []uint64) ([]int, []uint64) {
	h := detrand.NewHash()
	hashCfg(h, cfg)
	for i, in := range seq {
		hashInst(h, in)
		if (i+1)%ckptInterval == 0 {
			bounds = append(bounds, i+1)
			keys = append(keys, h.Sum())
		}
	}
	return bounds, keys
}

// probe returns the deepest stored snapshot matching a prefix of seq, no
// deeper than maxDepth, bumping it in the LRU order. A key match with
// different content (hash collision) is skipped, never resumed.
//
// As a side effect it fills want: want[i] reports whether this run should
// store a snapshot when it crosses boundary i. A boundary qualifies only if
// an earlier simulation already probed for the same prefix (it is in the
// seen filter) and no entry holds it yet — so snapshot encoding is paid only
// for prefixes with demonstrated reuse, at the cost of one warm-up miss per
// shared prefix. Boundaries beyond maxDepth were not requested by anyone
// and never qualify.
func (st *ckptStore) probe(cfg *Config, seq []isa.Inst, maxDepth int, bounds []int, keys []uint64, want []bool) *ckptEntry {
	var hit *ckptEntry
	st.mu.Lock()
	for i := len(bounds) - 1; i >= 0; i-- {
		want[i] = false
		if bounds[i] > maxDepth {
			continue
		}
		e, present := st.entries[keys[i]]
		if _, seen := st.seen[keys[i]]; seen {
			want[i] = !present
		} else {
			if len(st.seen) >= ckptSeenMax {
				clear(st.seen)
			}
			st.seen[keys[i]] = struct{}{}
		}
		if hit == nil && present &&
			e.cfg == *cfg && e.depth == bounds[i] && sameSeq(e.prefix, seq[:e.depth]) {
			st.unlink(e)
			st.pushFront(e)
			hit = e
		}
	}
	st.mu.Unlock()
	return hit
}

// store inserts a snapshot if its key is absent (concurrent writers of the
// same prefix collapse to one entry) and evicts least-recently-used entries
// past the cycle budget, never the entry just inserted.
func (st *ckptStore) store(e *ckptEntry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.entries[e.key]; dup {
		return
	}
	st.entries[e.key] = e
	st.pushFront(e)
	st.cycles += e.cycles
	st.stored.Add(1)
	for st.cycles > ckptMaxCycles && st.tail != nil && st.tail != e {
		ev := st.tail
		st.unlink(ev)
		delete(st.entries, ev.key)
		st.cycles -= ev.cycles
		st.evictions.Add(1)
	}
}

func (st *ckptStore) pushFront(e *ckptEntry) {
	e.prev, e.next = nil, st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
}

func (st *ckptStore) unlink(e *ckptEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if st.head == e {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if st.tail == e {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// snapshot captures the simulator state immediately after renaming the
// instruction at the current boundary. fetchSlot is the issue slot the
// in-progress fetch stage resumes from. Encoding is paid only for
// boundaries probe marked store-worthy — prefixes some earlier simulation
// also asked for; stores of racing writers are deduplicated in store.
func (s *sim) snapshot(fetchSlot int) {
	if !s.ckptWant[s.nextCk] {
		return
	}
	st := s.ckpt
	key := s.keys[s.nextCk]
	depth := s.boundaries[s.nextCk]
	if s.prefix == nil {
		// One copy of the deepest boundary's prefix serves every snapshot of
		// this run; shallower snapshots hold subslices of it.
		maxB := s.boundaries[len(s.boundaries)-1]
		s.prefix = append([]isa.Inst(nil), s.seq[:maxB]...)
	}
	st.store(&ckptEntry{
		key:    key,
		cfg:    *s.cfg,
		prefix: s.prefix[:depth:depth],
		depth:  depth,
		cycles: s.cycle + 1,
		flat:   encodeSim(s, fetchSlot),
	})
}

// encodeSim flattens the sim state into one word slice. Layout: a 9-word
// header (cycle, fetched, issued, issuedThis, fetchSlot, winLen and the
// chargeDiff/cumIssued/iterStarts lengths), the rename map, the unit
// reservations, the window entries oldest-first (7 words each), completeAt
// (fetched words), then chargeDiff as raw float bits, cumIssued and
// iterStarts. Ints pass through int64 so -1 sentinels round-trip.
func encodeSim(s *sim, fetchSlot int) []uint64 {
	nUnits := 0
	for u := range s.unitBusyUntil {
		nUnits += len(s.unitBusyUntil[u])
	}
	n := 9 + 2*64 + nUnits + 7*s.winLen + s.fetched +
		len(s.chargeDiff) + len(s.cumIssued) + len(s.iterStarts)
	f := make([]uint64, 0, n)
	put := func(v int) { f = append(f, uint64(int64(v))) }
	put(s.cycle)
	put(s.fetched)
	put(s.issued)
	put(s.issuedThis)
	put(fetchSlot)
	put(s.winLen)
	put(len(s.chargeDiff))
	put(len(s.cumIssued))
	put(len(s.iterStarts))
	for fi := range s.lastWriter {
		for _, w := range s.lastWriter[fi] {
			put(w)
		}
	}
	for u := range s.unitBusyUntil {
		for _, b := range s.unitBusyUntil[u] {
			put(b)
		}
	}
	for i := 0; i < s.winLen; i++ {
		e := &s.win[(s.winHead+i)&s.winMask]
		put(e.d.pos)
		put(e.dyn)
		put(e.prods[0])
		put(e.prods[1])
		put(e.prods[2])
		put(e.readyAt)
		flags := uint64(e.nProds)
		if e.issued {
			flags |= 1 << 8
		}
		f = append(f, flags)
	}
	for _, c := range s.completeAt {
		put(c)
	}
	for _, q := range s.chargeDiff {
		f = append(f, math.Float64bits(q))
	}
	for _, c := range s.cumIssued {
		f = append(f, uint64(c))
	}
	for _, c := range s.iterStarts {
		put(c)
	}
	return f
}

// restore loads a snapshot into a freshly initialized sim, rebuilding the
// window (re-based to slot 0) and the unissued chain, and positions the
// boundary cursor past the resumed depth.
func (s *sim) restore(e *ckptEntry) {
	f := e.flat
	idx := 0
	geti := func() int { v := int64(f[idx]); idx++; return int(v) }
	s.cycle = geti()
	s.fetched = geti()
	s.issued = geti()
	s.resumeIssued = geti()
	s.resumeSlot = geti()
	s.issuedThis = s.resumeIssued
	winLen := geti()
	nCharge := geti()
	nCum := geti()
	nIter := geti()
	for fi := range s.lastWriter {
		lw := s.lastWriter[fi]
		for i := range lw {
			lw[i] = geti()
		}
	}
	for u := range s.unitBusyUntil {
		b := s.unitBusyUntil[u]
		for i := range b {
			b[i] = geti()
		}
	}
	s.winHead, s.winLen = 0, winLen
	s.unissuedHead, s.unissuedTail = -1, -1
	for i := 0; i < winLen; i++ {
		en := &s.win[i]
		en.d = &s.dec[geti()]
		en.dyn = geti()
		en.prods[0] = geti()
		en.prods[1] = geti()
		en.prods[2] = geti()
		en.readyAt = geti()
		flags := f[idx]
		idx++
		en.nProds = int(flags & 0xff)
		en.issued = flags&(1<<8) != 0
		if !en.issued {
			s.unissuedNext[i] = -1
			if s.unissuedTail >= 0 {
				s.unissuedNext[s.unissuedTail] = int32(i)
			} else {
				s.unissuedHead = int32(i)
			}
			s.unissuedTail = int32(i)
		}
	}
	for i := 0; i < s.fetched; i++ {
		s.completeAt = append(s.completeAt, geti())
	}
	for i := 0; i < nCharge; i++ {
		s.chargeDiff = append(s.chargeDiff, math.Float64frombits(f[idx]))
		idx++
	}
	for i := 0; i < nCum; i++ {
		s.cumIssued = append(s.cumIssued, int64(f[idx]))
		idx++
	}
	for i := 0; i < nIter; i++ {
		s.iterStarts = append(s.iterStarts, geti())
	}
	s.nextCk = 0
	for s.nextCk < len(s.boundaries) && s.boundaries[s.nextCk] <= e.depth {
		s.nextCk++
	}
}

// CheckpointStats is a snapshot of the checkpoint store counters. Hits and
// Misses count probing simulations; MeanResumeDepth is the average number
// of instructions a hit skipped re-executing.
type CheckpointStats struct {
	Hits            uint64
	Misses          uint64
	Stored          uint64
	Evictions       uint64
	Entries         int
	Cycles          int
	MeanResumeDepth float64
}

// CheckpointStoreStats returns the global checkpoint store counters.
func CheckpointStoreStats() CheckpointStats {
	st := globalCkptStore
	st.mu.Lock()
	entries, cycles := len(st.entries), st.cycles
	st.mu.Unlock()
	cs := CheckpointStats{
		Hits:      st.hits.Load(),
		Misses:    st.misses.Load(),
		Stored:    st.stored.Load(),
		Evictions: st.evictions.Load(),
		Entries:   entries,
		Cycles:    cycles,
	}
	if cs.Hits > 0 {
		cs.MeanResumeDepth = float64(st.resumedInsts.Load()) / float64(cs.Hits)
	}
	return cs
}

// SetCheckpointsEnabled turns checkpointed replay on or off (it is on by
// default) and returns the previous setting. Results are bit-identical
// either way; disabling exists for benchmarks and determinism tests.
func SetCheckpointsEnabled(on bool) (prev bool) {
	return ckptOn.Swap(on)
}

// CheckpointsEnabled reports whether simulations use the checkpoint store.
func CheckpointsEnabled() bool { return ckptOn.Load() }

// ResetCheckpointStore drops all snapshots, the prefix-reuse filter and the
// counters.
func ResetCheckpointStore() {
	st := globalCkptStore
	st.mu.Lock()
	st.entries = make(map[uint64]*ckptEntry)
	st.seen = make(map[uint64]struct{})
	st.head, st.tail = nil, nil
	st.cycles = 0
	st.mu.Unlock()
	st.hits.Store(0)
	st.misses.Store(0)
	st.stored.Store(0)
	st.evictions.Store(0)
	st.resumedInsts.Store(0)
}
