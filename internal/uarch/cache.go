package uarch

// Clock-invariant trace caching.
//
// The simulator works purely in the cycle domain: the charge trace, the
// iteration timestamps and the issue counts depend only on (Config, Seq,
// steady-window length). The clock frequency, the supply voltage, the
// sampling grid and the powered-core count all enter downstream, in the
// power and PDN layers. A clock sweep or a clock×voltage shmoo therefore
// asks for the *identical* simulation at every operating point — only the
// steady-window length varies (proportionally to the clock).
//
// The cache keys on a content hash of the config and the sequence
// (internal/detrand) and stores the longest history simulated for each key.
// Any request covered by the stored history is synthesized from it
// (traceHist.synth), bit-identical to a fresh run; a longer request
// re-simulates with doubling headroom and replaces the entry, so an
// ascending sequence of window lengths costs O(log) simulations instead of
// one per request. Entries are LRU-evicted past a total-cycles budget.
//
// Concurrency: parallel sweep workers all miss the same key at the start of
// a sweep; a per-entry mutex serializes the simulation so the loop runs
// once and the other workers wait for (and share) the result.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/detrand"
	"repro/internal/isa"
)

// traceCacheMaxCycles bounds the total cycles held across all cached
// histories (each cycle costs 16 bytes of charge + issue history, so this
// is roughly a 32 MiB budget).
const traceCacheMaxCycles = 2 << 20

type traceCache struct {
	mu      sync.Mutex
	entries map[uint64]*traceEntry
	lru     *list.List // front = most recently used; values are *traceEntry
	cycles  int        // total cycles held across resident histories

	hits       atomic.Uint64
	misses     atomic.Uint64
	extensions atomic.Uint64
	evictions  atomic.Uint64
}

type traceEntry struct {
	key  uint64
	cfg  Config // stable copy; shared as Config pointer of synthesized Results
	seq  []isa.Inst
	elem *list.Element

	// simMu serializes simulation and extension for this key; hist is
	// immutable once published and read without the lock on the fast path.
	simMu sync.Mutex
	hist  atomic.Pointer[traceHist]
}

var (
	globalTraceCache = newTraceCache()
	traceCacheOn     atomic.Bool
)

func init() { traceCacheOn.Store(true) }

func newTraceCache() *traceCache {
	return &traceCache{entries: make(map[uint64]*traceEntry), lru: list.New()}
}

// traceKey hashes the full content a simulation depends on: every config
// field and, per instruction, the complete definition and operands.
func traceKey(cfg *Config, seq []isa.Inst) uint64 {
	h := detrand.NewHash()
	hashCfg(h, cfg)
	h.Int(len(seq))
	for _, in := range seq {
		hashInst(h, in)
	}
	return h.Sum()
}

// hashCfg folds every config field a simulation depends on. Shared between
// the trace cache key and the checkpoint store's prefix keys.
func hashCfg(h *detrand.Hash, cfg *Config) {
	h.String(cfg.Name)
	h.Int(boolBit(cfg.OutOfOrder))
	h.Int(cfg.IssueWidth)
	h.Int(cfg.WindowSize)
	for _, n := range cfg.Units {
		h.Int(n)
	}
	h.Float64(cfg.ChargeScale)
	h.Float64(cfg.BaseCharge)
	h.Float64(cfg.IdleSlotCharge)
	h.Float64(cfg.CurrentSlewTau)
}

// hashInst folds one instruction's complete definition and operands.
func hashInst(h *detrand.Hash, in isa.Inst) {
	d := in.Def
	h.String(d.Mnemonic)
	h.Int(int(d.Class))
	h.Int(int(d.Unit))
	h.Int(d.Latency)
	h.Int(d.Block)
	h.Float64(d.Charge)
	h.Int(int(d.RegFile))
	h.Int(d.NSrc)
	h.Int(boolBit(d.DestIsSrc))
	h.Int(int(d.Mem))
	h.Int(boolBit(d.NoDest))
	h.Int(in.Dest)
	h.Int(in.Srcs[0])
	h.Int(in.Srcs[1])
	h.Int(in.Addr)
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sameSeq reports whether two sequences are identical in content (the hash
// covers the full content, but equality is still verified on every lookup
// so a hash collision can never mix up two workloads).
func sameSeq(a, b []isa.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dest != b[i].Dest || a[i].Srcs != b[i].Srcs || a[i].Addr != b[i].Addr {
			return false
		}
		if a[i].Def != b[i].Def && *a[i].Def != *b[i].Def {
			return false
		}
	}
	return true
}

// lookup returns the entry for (cfg, seq), creating it if absent, and bumps
// it in the LRU order. ok is false on a hash collision with different
// content, in which case the caller simulates uncached.
func (c *traceCache) lookup(key uint64, cfg *Config, seq []isa.Inst) (e *traceEntry, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, found := c.entries[key]; found {
		if e.cfg != *cfg || !sameSeq(e.seq, seq) {
			return nil, false
		}
		c.lru.MoveToFront(e.elem)
		return e, true
	}
	e = &traceEntry{key: key, cfg: *cfg, seq: append([]isa.Inst(nil), seq...)}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	return e, true
}

// install publishes a new (or extended) history for an entry and evicts the
// least-recently-used entries past the cycle budget. prev is the history
// the caller observed under e.simMu (nil on a first fill).
func (c *traceCache) install(e *traceEntry, prev, h *traceHist) {
	e.hist.Store(h)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, resident := c.entries[e.key]; !resident || cur != e {
		// Evicted while we were simulating; the result is still returned to
		// the caller but no longer accounted for.
		return
	}
	if prev != nil {
		c.cycles -= len(prev.charge)
	}
	c.cycles += len(h.charge)
	for c.cycles > traceCacheMaxCycles && c.lru.Len() > 1 {
		back := c.lru.Back()
		ev := back.Value.(*traceEntry)
		if ev == e {
			break // never evict the entry just refreshed
		}
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		if hh := ev.hist.Load(); hh != nil {
			c.cycles -= len(hh.charge)
		}
		c.evictions.Add(1)
	}
}

// run serves one Run request through the cache.
func (c *traceCache) run(cfg Config, seq []isa.Inst, minSteadyCycles int, lin *Lineage) (*Result, error) {
	return c.runWindow(cfg, seq, minSteadyCycles, minSteadyCycles, lin)
}

// runWindow serves a Run request sized for minSteadyCycles while ensuring
// the cached history covers ensureSteady cycles in the same transaction —
// one key hash, one lookup, one simulation — so a caller that knows it may
// come back for a slightly longer window (period snapping warps the sample
// window by at most 5%) never pays a second simulation or a second probe.
func (c *traceCache) runWindow(cfg Config, seq []isa.Inst, minSteadyCycles, ensureSteady int, lin *Lineage) (*Result, error) {
	if ensureSteady < minSteadyCycles {
		ensureSteady = minSteadyCycles
	}
	key := traceKey(&cfg, seq)
	e, ok := c.lookup(key, &cfg, seq)
	if !ok {
		// Hash collision with different content: simulate uncached rather
		// than fight over the slot (counted as a miss). Priming headroom is
		// pointless without a cache slot, so size for the request alone.
		c.misses.Add(1)
		hist, err := simulate(&cfg, seq, minSteadyCycles, lin)
		if err != nil {
			return nil, err
		}
		return hist.synth(minSteadyCycles)
	}
	if h := e.hist.Load(); h != nil && h.covers(ensureSteady) {
		c.hits.Add(1)
		return h.synth(minSteadyCycles)
	}
	h, err := c.fill(e, ensureSteady, lin)
	if err != nil {
		// Failure to reach steady state is monotone in the window length,
		// so a fresh run at the requested window fails too; report the
		// error it would have produced.
		return nil, steadyStateErr(minSteadyCycles)
	}
	return h.synth(minSteadyCycles)
}

// fill ensures, under the entry's simulation lock, that the entry's history
// covers ensureSteady cycles — simulating on first fill, extending with
// doubling headroom otherwise — and returns the (possibly pre-existing)
// covering history.
func (c *traceCache) fill(e *traceEntry, ensureSteady int, lin *Lineage) (*traceHist, error) {
	e.simMu.Lock()
	defer e.simMu.Unlock()
	h := e.hist.Load()
	if h != nil && h.covers(ensureSteady) {
		// Another worker simulated while we waited for the lock.
		c.hits.Add(1)
		return h, nil
	}
	simSteady := ensureSteady
	if h != nil {
		// Extension: double the stored window so a sweep asking for
		// progressively longer steady windows re-simulates O(log) times
		// instead of at every step.
		c.extensions.Add(1)
		if d := 2 * h.steady; d > simSteady {
			simSteady = d
		}
	} else {
		c.misses.Add(1)
		// First fill in this process: the disk tier may hold the history
		// from an earlier process (or a concurrent one sharing the cache
		// directory). A covering entry is installed as-is — synthesis from
		// it is bit-identical to re-simulating. A shorter entry still sets
		// the floor for the simulation window, so the write-through below
		// never shrinks what the store already holds.
		if dh := diskLoad(e); dh != nil {
			if dh.covers(ensureSteady) {
				c.install(e, nil, dh)
				return dh, nil
			}
			if d := 2 * dh.steady; d > simSteady {
				simSteady = d
			}
		}
	}
	h2, err := simulate(&e.cfg, e.seq, simSteady, lin)
	if err != nil {
		return nil, err
	}
	c.install(e, h, h2)
	diskStore(e, h2)
	return h2, nil
}

// CacheStats is a snapshot of the trace cache counters: lookups served from
// a stored history (hits), simulations for never-seen content (misses),
// re-simulations to extend a stored history (extensions), LRU evictions,
// and the current residency.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Extensions uint64
	Evictions  uint64
	Entries    int
	Cycles     int
}

// TraceCacheStats returns the global trace cache counters.
func TraceCacheStats() CacheStats {
	c := globalTraceCache
	c.mu.Lock()
	entries, cycles := len(c.entries), c.cycles
	c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Extensions: c.extensions.Load(),
		Evictions:  c.evictions.Load(),
		Entries:    entries,
		Cycles:     cycles,
	}
}

// SetTraceCacheEnabled turns the trace cache on or off (it is on by
// default) and returns the previous setting. Disabling is intended for
// benchmarks and determinism tests; results are bit-identical either way.
func SetTraceCacheEnabled(on bool) (prev bool) {
	return traceCacheOn.Swap(on)
}

// TraceCacheEnabled reports whether Run consults the trace cache.
func TraceCacheEnabled() bool { return traceCacheOn.Load() }

// ResetTraceCache drops all cached histories and zeroes the counters.
func ResetTraceCache() {
	c := globalTraceCache
	c.mu.Lock()
	c.entries = make(map[uint64]*traceEntry)
	c.lru.Init()
	c.cycles = 0
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.extensions.Store(0)
	c.evictions.Store(0)
}
