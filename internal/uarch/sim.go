package uarch

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// entry is an in-flight dynamic instruction in the scheduler window.
type entry struct {
	inst   isa.Inst
	prods  [3]int // dynamic indices of producing instructions, -1 if ready
	nProds int
	issued bool
	dyn    int
}

type sim struct {
	cfg *Config
	seq []isa.Inst

	window []entry // oldest first
	// completeAt[dyn] is the cycle the instruction's result is ready;
	// -1 while not yet issued.
	completeAt []int
	// lastWriter[regfile][reg] is the dynamic index of the latest writer.
	lastWriter [2][]int
	// unitBusyUntil[unit][instance] is the first free cycle of that unit.
	unitBusyUntil [isa.NumUnits][]int

	// chargeDiff is a difference array: addCharge records a charge span as
	// two endpoint updates and run folds it into the per-cycle trace with a
	// single prefix-sum pass, instead of touching Block cycles per issue.
	chargeDiff []float64
	// cumIssued[c] is the total instruction count issued through cycle c
	// (recorded after that cycle's issue stage); it lets a cached history
	// reproduce the IPC of any shorter run exactly.
	cumIssued []int64
	cycle     int
	fetched   int
	issued    int

	iterStarts []int // fetch cycle of each iteration's first instruction
}

// newSim prepares a simulation. steadyHint sizes the per-cycle buffers for
// an expected run of roughly warmup+steady cycles; it only affects
// allocation, never results.
func newSim(cfg *Config, seq []isa.Inst, steadyHint int) *sim {
	s := &sim{
		cfg:        cfg,
		seq:        seq,
		completeAt: make([]int, 0, 4096),
		chargeDiff: make([]float64, 0, steadyHint),
		cumIssued:  make([]int64, 0, steadyHint),
		iterStarts: make([]int, 0, 256),
	}
	for f := range s.lastWriter {
		s.lastWriter[f] = make([]int, 64)
		for i := range s.lastWriter[f] {
			s.lastWriter[f][i] = -1
		}
	}
	for u := range s.unitBusyUntil {
		s.unitBusyUntil[u] = make([]int, cfg.Units[u])
	}
	return s
}

// simHint estimates the total cycle count of a run with the given steady
// window, leaving room for the warmup iterations.
func simHint(minSteadyCycles int) int {
	return minSteadyCycles + minSteadyCycles/4 + 2048
}

// addCharge accumulates q coulombs per cycle over [from, from+cycles).
func (s *sim) addCharge(from, cycles int, q float64) {
	if need := from + cycles + 1; need > len(s.chargeDiff) {
		if need <= cap(s.chargeDiff) {
			s.chargeDiff = s.chargeDiff[:need]
		} else {
			grown := make([]float64, need, need+need/2)
			copy(grown, s.chargeDiff)
			s.chargeDiff = grown
		}
	}
	s.chargeDiff[from] += q
	s.chargeDiff[from+cycles] -= q
}

// fetch renames and inserts up to IssueWidth instructions into the window.
func (s *sim) fetch() {
	for n := 0; n < s.cfg.IssueWidth && len(s.window) < s.cfg.WindowSize; n++ {
		pos := s.fetched % len(s.seq)
		if pos == 0 {
			s.iterStarts = append(s.iterStarts, s.cycle)
		}
		in := s.seq[pos]
		e := entry{inst: in, dyn: s.fetched}
		rf := int(in.Def.RegFile)
		for _, src := range in.Sources() {
			if w := s.lastWriter[rf][src]; w >= 0 {
				e.prods[e.nProds] = w
				e.nProds++
			}
		}
		if !in.Def.NoDest {
			s.lastWriter[rf][in.Dest] = s.fetched
		}
		s.completeAt = append(s.completeAt, -1)
		s.window = append(s.window, e)
		s.fetched++
	}
}

// ready reports whether all producers of e have completed by cycle.
func (s *sim) ready(e *entry) bool {
	for i := 0; i < e.nProds; i++ {
		c := s.completeAt[e.prods[i]]
		if c < 0 || c > s.cycle {
			return false
		}
	}
	return true
}

// claimUnit finds a free instance of unit u and marks it busy for block
// cycles; it reports whether one was available.
func (s *sim) claimUnit(u isa.Unit, block int) bool {
	for i, busyUntil := range s.unitBusyUntil[u] {
		if busyUntil <= s.cycle {
			s.unitBusyUntil[u][i] = s.cycle + block
			return true
		}
	}
	return false
}

// issue dispatches up to IssueWidth ready instructions and returns how many
// it issued.
func (s *sim) issue() int {
	issued := 0
	for i := range s.window {
		if issued >= s.cfg.IssueWidth {
			break
		}
		e := &s.window[i]
		if e.issued {
			continue
		}
		canIssue := s.ready(e) && s.claimUnitProbe(e.inst.Def.Unit)
		if !canIssue {
			if s.cfg.OutOfOrder {
				continue
			}
			break // in-order: a stalled instruction blocks younger ones
		}
		d := e.inst.Def
		if !s.claimUnit(d.Unit, d.Block) {
			if s.cfg.OutOfOrder {
				continue
			}
			break
		}
		e.issued = true
		s.completeAt[e.dyn] = s.cycle + d.Latency
		s.addCharge(s.cycle, d.Block, d.Charge*s.cfg.ChargeScale)
		s.issued++
		issued++
	}
	return issued
}

// claimUnitProbe reports whether a unit instance is free without claiming.
func (s *sim) claimUnitProbe(u isa.Unit) bool {
	for _, busyUntil := range s.unitBusyUntil[u] {
		if busyUntil <= s.cycle {
			return true
		}
	}
	return false
}

// retire removes completed instructions from the head of the window.
func (s *sim) retire() {
	n := 0
	for n < len(s.window) && n < 2*s.cfg.IssueWidth {
		e := &s.window[n]
		if !e.issued || s.completeAt[e.dyn] > s.cycle {
			break
		}
		n++
	}
	if n > 0 {
		s.window = s.window[n:]
	}
}

// run simulates until minSteadyCycles of steady state have elapsed and
// returns the full recorded history. The Result of the run — or of any run
// with a shorter steady window — is synthesized from the history by
// traceHist.synth.
func (s *sim) run(minSteadyCycles int) (*traceHist, error) {
	warmupCycle := -1
	limit := minSteadyCycles*64 + 100000
	for {
		if s.cycle > limit {
			return nil, steadyStateErr(minSteadyCycles)
		}
		s.retire()
		issued := s.issue()
		s.fetch()
		if warmupCycle < 0 && len(s.iterStarts) > warmupIters {
			warmupCycle = s.iterStarts[warmupIters]
		}
		s.addCharge(s.cycle, 1, s.cfg.BaseCharge+float64(s.cfg.IssueWidth-issued)*s.cfg.IdleSlotCharge)
		s.cumIssued = append(s.cumIssued, int64(s.issued))
		s.cycle++
		if warmupCycle >= 0 && s.cycle-warmupCycle >= minSteadyCycles {
			break
		}
	}
	// Fold the difference array into the per-cycle trace, dropping the
	// in-flight charge beyond the final simulated cycle so the trace length
	// equals the cycle count.
	charge := make([]float64, s.cycle)
	var acc float64
	for i := range charge {
		acc += s.chargeDiff[i]
		charge[i] = acc
	}
	return &traceHist{
		cfg:        s.cfg,
		charge:     charge,
		cumIssued:  s.cumIssued,
		iterStarts: s.iterStarts,
		warmup:     warmupCycle,
		steady:     s.cycle - warmupCycle,
	}, nil
}

func steadyStateErr(minSteadyCycles int) error {
	return fmt.Errorf("uarch: simulation did not reach steady state within %d cycles", minSteadyCycles*64+100000)
}

// traceHist is the recorded history of one simulation: everything needed to
// synthesize the Result of a run with the same or a shorter steady window.
// All slices are immutable once built and shared read-only.
type traceHist struct {
	cfg        *Config
	charge     []float64 // per-cycle switching charge for the whole run
	cumIssued  []int64   // cumIssued[c]: instructions issued through cycle c
	iterStarts []int     // fetch cycle of each iteration's first instruction
	warmup     int       // first steady-state cycle
	steady     int       // steady cycles simulated; len(charge) == warmup+steady
}

// covers reports whether the history is long enough to synthesize a run
// with the given steady window.
func (h *traceHist) covers(minSteadyCycles int) bool {
	return h.warmup+minSteadyCycles <= len(h.charge)
}

// synth reconstructs the exact Result a fresh Run with the given steady
// window would produce. The simulator is deterministic and charge spans
// only extend forward in time, so a shorter run is a strict prefix of a
// longer one: its trace is a slice of the recorded trace, its iteration
// count is the number of recorded iteration starts before its end cycle,
// and its loop/IPC statistics recompute from the recorded prefix — all
// bit-identical to re-simulating.
func (h *traceHist) synth(minSteadyCycles int) (*Result, error) {
	end := h.warmup + minSteadyCycles
	if limit := minSteadyCycles*64 + 100000; end-1 > limit {
		// A fresh run would hit its cycle limit before reaching this much
		// steady state; reproduce its failure.
		return nil, steadyStateErr(minSteadyCycles)
	}
	iters := sort.SearchInts(h.iterStarts, end)
	res := &Result{
		Config:     h.cfg,
		Charge:     h.charge[:end:end],
		Warmup:     h.warmup,
		Iterations: iters,
	}
	// Steady-state cycles per iteration from fetch timestamps. The last
	// few iterations are excluded: fetch runs ahead of issue by the window
	// occupancy, and occupancy drift at the very end of the run would bias
	// the average.
	last := iters - 1
	if last-4 > warmupIters {
		last -= 4
	}
	if last > warmupIters {
		res.LoopCycles = float64(h.iterStarts[last]-h.iterStarts[warmupIters]) / float64(last-warmupIters)
	} else {
		res.LoopCycles = float64(end) / float64(iters)
	}
	res.IPC = float64(h.cumIssued[end-1]-h.cumIssued[h.warmup]) / float64(minSteadyCycles)
	return res, nil
}
