package uarch

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/isa"
)

// dinst is one statically decoded instruction of the loop body: everything
// fetch and issue need, resolved once per simulation instead of once per
// dynamic instruction. The decoded source list replicates isa.Inst.Sources
// exactly (the NSrc register operands, then the destination when it is also
// read), and the charge is pre-scaled by the core's ChargeScale.
type dinst struct {
	pos     int // index in the loop body
	unit    isa.Unit
	latency int
	block   int
	charge  float64 // Def.Charge * cfg.ChargeScale
	rf      int
	srcs    [3]int
	nSrc    int
	dest    int
	noDest  bool
}

// entry is an in-flight dynamic instruction in the scheduler window. prods
// holds only producers that have not issued yet; once a producer's
// completion cycle is known it is folded into readyAt (the latest known
// producer completion) and dropped, so repeated wakeup checks never rescan
// resolved dependencies.
type entry struct {
	d       *dinst
	prods   [3]int // dynamic indices of still-unissued producers
	nProds  int
	readyAt int // max completion cycle over resolved producers
	issued  bool
	dyn     int
}

type sim struct {
	cfg *Config
	seq []isa.Inst
	dec []dinst

	// The window is a ring buffer of power-of-two capacity: win[(winHead+i)
	// &winMask] for i in [0, winLen) is the i-th oldest in-flight
	// instruction. Fetch writes at the tail, retire advances the head, and
	// neither ever moves an entry or reallocates.
	win     []entry
	winMask int
	winHead int
	winLen  int

	// unissuedNext chains the window slots holding unissued instructions in
	// age order (-1 terminated), so issue walks exactly the dispatch
	// candidates instead of rescanning slots that already issued.
	unissuedNext []int32
	unissuedHead int32
	unissuedTail int32

	// completeAt[dyn] is the cycle the instruction's result is ready;
	// -1 while not yet issued.
	completeAt []int
	// lastWriter[regfile][reg] is the dynamic index of the latest writer.
	lastWriter [2][]int
	// unitBusyUntil[unit][instance] is the first free cycle of that unit.
	unitBusyUntil [isa.NumUnits][]int

	// chargeDiff is a difference array: addCharge records a charge span as
	// two endpoint updates and run folds it into the per-cycle trace with a
	// single prefix-sum pass, instead of touching Block cycles per issue.
	// Invariant: every element beyond len and within cap is zero, so the
	// reslice in addCharge never exposes stale data.
	chargeDiff []float64
	// cumIssued[c] is the total instruction count issued through cycle c
	// (recorded after that cycle's issue stage); it lets a cached history
	// reproduce the IPC of any shorter run exactly.
	cumIssued  []int64
	cycle      int
	fetched    int
	issued     int
	issuedThis int // instructions issued in the cycle currently executing

	iterStarts []int // fetch cycle of each iteration's first instruction

	// Checkpointing (see checkpoint.go). boundaries[i] is an instruction
	// count at which a snapshot is taken mid-fetch; keys[i] is the content
	// hash of the corresponding sequence prefix. nextCk indexes the next
	// boundary to snapshot; prefix is the shared copy of the sequence prefix
	// handed to stored snapshots. A resumed sim starts with resumeSlot >= 0:
	// the slot of the fetch stage to continue from, with resumeIssued
	// holding the split cycle's issue count.
	ckpt         *ckptStore
	boundaries   []int
	keys         []uint64
	ckptWant     []bool // per boundary: store a snapshot when crossing it
	nextCk       int
	prefix       []isa.Inst
	resumeSlot   int
	resumeIssued int

	// Steady-state extrapolation (see extrapolate): anchor signatures are
	// taken at the first cycle boundary after each post-warmup iteration
	// start and kept in a small ring, so periods spanning several loop
	// iterations are still recognized. One signature match proves the
	// pipeline repeats with the anchors' cycle distance as its period; the
	// fast-forward fires one period later, once the template's inflow
	// mirrors the previous period's.
	sigs      [sigRing][]uint64
	sigCycles [sigRing]int
	sigCount  int
	pendingP  int // proven period; 0 = still searching, -1 = disabled
	pendingAt int
	seenIters int
	maxBlock  int
}

// sigRing is how many recent anchors extrapolation compares against: steady
// patterns with periods up to sigRing-1 loop iterations are detected.
const sigRing = 8

// simPool recycles sim shells between runs. Everything a published
// traceHist retains (the folded charge trace, cumIssued, iterStarts) is
// either freshly allocated per run or ownership-transferred out of the sim
// before release, so pooling can never alias cached state.
var simPool sync.Pool

// newSim prepares a simulation. steadyHint sizes the per-cycle buffers for
// an expected run of roughly warmup+steady cycles; it only affects
// allocation, never results.
func newSim(cfg *Config, seq []isa.Inst, steadyHint int) *sim {
	s, _ := simPool.Get().(*sim)
	if s == nil {
		s = new(sim)
	}
	s.cfg = cfg
	s.seq = seq
	s.decode(seq)

	wcap := 1
	for wcap < cfg.WindowSize {
		wcap <<= 1
	}
	if len(s.win) < wcap {
		s.win = make([]entry, wcap)
		s.unissuedNext = make([]int32, wcap)
	}
	s.winMask = len(s.win) - 1
	s.winHead, s.winLen = 0, 0
	s.unissuedHead, s.unissuedTail = -1, -1

	if s.completeAt == nil {
		s.completeAt = make([]int, 0, 4096)
	} else {
		s.completeAt = s.completeAt[:0]
	}
	if s.chargeDiff == nil {
		s.chargeDiff = make([]float64, 0, steadyHint)
	} else {
		s.chargeDiff = s.chargeDiff[:0]
	}
	// cumIssued and iterStarts are transferred into the traceHist at the end
	// of every run, so they always start fresh.
	s.cumIssued = make([]int64, 0, steadyHint)
	s.iterStarts = make([]int, 0, 256)

	for f := range s.lastWriter {
		if s.lastWriter[f] == nil {
			s.lastWriter[f] = make([]int, 64)
		}
		lw := s.lastWriter[f]
		for i := range lw {
			lw[i] = -1
		}
	}
	for u := range s.unitBusyUntil {
		n := cfg.Units[u]
		if cap(s.unitBusyUntil[u]) < n {
			s.unitBusyUntil[u] = make([]int, n)
		} else {
			s.unitBusyUntil[u] = s.unitBusyUntil[u][:n]
			b := s.unitBusyUntil[u]
			for i := range b {
				b[i] = 0
			}
		}
	}

	s.cycle, s.fetched, s.issued, s.issuedThis = 0, 0, 0, 0
	s.sigCount, s.pendingP, s.pendingAt = 0, 0, 0
	s.seenIters = 0
	s.ckpt = nil
	// boundaries, keys and ckptWant keep their capacity across pooled runs;
	// simulate refills them from scratch (or leaves them empty when
	// checkpointing is off — fetch only consults them behind s.ckpt).
	s.boundaries, s.keys, s.ckptWant = s.boundaries[:0], s.keys[:0], s.ckptWant[:0]
	s.nextCk = 0
	s.prefix = nil
	s.resumeSlot = -1
	s.resumeIssued = 0
	return s
}

// release returns the sim shell to the pool. chargeDiff is zeroed over its
// final length to restore the zero-beyond-len invariant for the next run.
func (s *sim) release() {
	clear(s.chargeDiff)
	s.chargeDiff = s.chargeDiff[:0]
	s.cfg, s.seq = nil, nil
	s.ckpt = nil
	s.prefix = nil
	s.cumIssued, s.iterStarts = nil, nil
	simPool.Put(s)
}

// decode builds the per-position instruction table.
func (s *sim) decode(seq []isa.Inst) {
	if cap(s.dec) < len(seq) {
		s.dec = make([]dinst, len(seq))
	} else {
		s.dec = s.dec[:len(seq)]
	}
	s.maxBlock = 1
	for i := range seq {
		in := &seq[i]
		d := in.Def
		if d.Block > s.maxBlock {
			s.maxBlock = d.Block
		}
		di := &s.dec[i]
		di.pos = i
		di.unit = d.Unit
		di.latency = d.Latency
		di.block = d.Block
		di.charge = d.Charge * s.cfg.ChargeScale
		di.rf = int(d.RegFile)
		di.dest = in.Dest
		di.noDest = d.NoDest
		n := 0
		for k := 0; k < d.NSrc; k++ {
			di.srcs[n] = in.Srcs[k]
			n++
		}
		if d.DestIsSrc && !d.NoDest {
			di.srcs[n] = in.Dest
			n++
		}
		di.nSrc = n
	}
}

// simHint estimates the total cycle count of a run with the given steady
// window, leaving room for the warmup iterations.
func simHint(minSteadyCycles int) int {
	return minSteadyCycles + minSteadyCycles/4 + 2048
}

// addCharge accumulates q coulombs per cycle over [from, from+cycles).
func (s *sim) addCharge(from, cycles int, q float64) {
	if need := from + cycles + 1; need > len(s.chargeDiff) {
		if need <= cap(s.chargeDiff) {
			s.chargeDiff = s.chargeDiff[:need]
		} else {
			grown := make([]float64, need, need+need/2)
			copy(grown, s.chargeDiff)
			s.chargeDiff = grown
		}
	}
	s.chargeDiff[from] += q
	s.chargeDiff[from+cycles] -= q
}

// fetch renames and inserts instructions into the window, filling issue
// slots [slot, IssueWidth). A fresh cycle fetches from slot 0; a resumed
// simulation re-enters mid-cycle at the slot its checkpoint recorded.
func (s *sim) fetch(slot int) {
	for n := slot; n < s.cfg.IssueWidth && s.winLen < s.cfg.WindowSize; n++ {
		pos := s.fetched % len(s.seq)
		if pos == 0 {
			s.iterStarts = append(s.iterStarts, s.cycle)
		}
		d := &s.dec[pos]
		sl := (s.winHead + s.winLen) & s.winMask
		e := &s.win[sl]
		e.d = d
		e.nProds = 0
		e.readyAt = 0
		e.issued = false
		e.dyn = s.fetched
		lw := s.lastWriter[d.rf]
		for i := 0; i < d.nSrc; i++ {
			if w := lw[d.srcs[i]]; w >= 0 {
				if c := s.completeAt[w]; c >= 0 {
					if c > e.readyAt {
						e.readyAt = c
					}
				} else {
					e.prods[e.nProds] = w
					e.nProds++
				}
			}
		}
		if !d.noDest {
			lw[d.dest] = s.fetched
		}
		s.completeAt = append(s.completeAt, -1)
		s.winLen++
		s.unissuedNext[sl] = -1
		if s.unissuedTail >= 0 {
			s.unissuedNext[s.unissuedTail] = int32(sl)
		} else {
			s.unissuedHead = int32(sl)
		}
		s.unissuedTail = int32(sl)
		s.fetched++
		if s.ckpt != nil && s.nextCk < len(s.boundaries) && s.fetched == s.boundaries[s.nextCk] {
			s.snapshot(n + 1)
			s.nextCk++
		}
	}
}

// ready reports whether all producers of e have completed by cycle.
// Producers whose completion cycle became known since the last check are
// folded into readyAt and dropped, so an entry that stays in the window for
// many cycles settles to a single integer comparison.
func (s *sim) ready(e *entry) bool {
	n := 0
	for i := 0; i < e.nProds; i++ {
		w := e.prods[i]
		if c := s.completeAt[w]; c >= 0 {
			if c > e.readyAt {
				e.readyAt = c
			}
			continue
		}
		e.prods[n] = w
		n++
	}
	e.nProds = n
	return n == 0 && e.readyAt <= s.cycle
}

// freeUnit returns the index of a free instance of unit u, or -1.
func (s *sim) freeUnit(u isa.Unit) int {
	for i, busyUntil := range s.unitBusyUntil[u] {
		if busyUntil <= s.cycle {
			return i
		}
	}
	return -1
}

// issue dispatches up to IssueWidth ready instructions and returns how many
// it issued. It walks the unissued chain in age order — the same visit
// order as scanning the whole window and skipping issued entries — and
// unlinks instructions as they dispatch.
func (s *sim) issue() int {
	issued := 0
	width := s.cfg.IssueWidth
	prev := int32(-1)
	for sl := s.unissuedHead; sl >= 0; {
		if issued >= width {
			break
		}
		e := &s.win[sl]
		next := s.unissuedNext[sl]
		d := e.d
		if s.ready(e) {
			if k := s.freeUnit(d.unit); k >= 0 {
				s.unitBusyUntil[d.unit][k] = s.cycle + d.block
				e.issued = true
				s.completeAt[e.dyn] = s.cycle + d.latency
				s.addCharge(s.cycle, d.block, d.charge)
				s.issued++
				issued++
				if prev >= 0 {
					s.unissuedNext[prev] = next
				} else {
					s.unissuedHead = next
				}
				if next < 0 {
					s.unissuedTail = prev
				}
				sl = next
				continue
			}
		}
		if !s.cfg.OutOfOrder {
			break // in-order: a stalled instruction blocks younger ones
		}
		prev = sl
		sl = next
	}
	return issued
}

// retire removes completed instructions from the head of the window.
func (s *sim) retire() {
	n := 0
	lim := 2 * s.cfg.IssueWidth
	for n < s.winLen && n < lim {
		e := &s.win[(s.winHead+n)&s.winMask]
		if !e.issued || s.completeAt[e.dyn] > s.cycle {
			break
		}
		n++
	}
	if n > 0 {
		s.winHead = (s.winHead + n) & s.winMask
		s.winLen -= n
	}
}

// run simulates until minSteadyCycles of steady state have elapsed and
// returns the full recorded history. The Result of the run — or of any run
// with a shorter steady window — is synthesized from the history by
// traceHist.synth. A sim restored from a checkpoint first completes the
// cycle its snapshot split — the retire and issue stages already ran, so
// only the tail of the fetch stage and the cycle's bookkeeping remain —
// then proceeds exactly like a fresh run.
func (s *sim) run(minSteadyCycles int) (*traceHist, error) {
	warmupCycle := -1
	limit := minSteadyCycles*64 + 100000
	done := false
	if s.resumeSlot >= 0 {
		s.issuedThis = s.resumeIssued
		s.fetch(s.resumeSlot)
		if warmupCycle < 0 && len(s.iterStarts) > warmupIters {
			warmupCycle = s.iterStarts[warmupIters]
		}
		s.addCharge(s.cycle, 1, s.cfg.BaseCharge+float64(s.cfg.IssueWidth-s.resumeIssued)*s.cfg.IdleSlotCharge)
		s.cumIssued = append(s.cumIssued, int64(s.issued))
		s.cycle++
		done = warmupCycle >= 0 && s.cycle-warmupCycle >= minSteadyCycles
	}
	for !done {
		if s.cycle > limit {
			return nil, steadyStateErr(minSteadyCycles)
		}
		if warmupCycle >= 0 && steadyExtrapOn.Load() &&
			s.extrapolate(warmupCycle, minSteadyCycles, limit) {
			break
		}
		s.retire()
		issued := s.issue()
		s.issuedThis = issued
		s.fetch(0)
		if warmupCycle < 0 && len(s.iterStarts) > warmupIters {
			warmupCycle = s.iterStarts[warmupIters]
		}
		s.addCharge(s.cycle, 1, s.cfg.BaseCharge+float64(s.cfg.IssueWidth-issued)*s.cfg.IdleSlotCharge)
		s.cumIssued = append(s.cumIssued, int64(s.issued))
		s.cycle++
		if warmupCycle >= 0 && s.cycle-warmupCycle >= minSteadyCycles {
			break
		}
	}
	// Fold the difference array into the per-cycle trace, dropping the
	// in-flight charge beyond the final simulated cycle so the trace length
	// equals the cycle count.
	charge := make([]float64, s.cycle)
	var acc float64
	for i := range charge {
		acc += s.chargeDiff[i]
		charge[i] = acc
	}
	h := &traceHist{
		cfg:        s.cfg,
		charge:     charge,
		cumIssued:  s.cumIssued,
		iterStarts: s.iterStarts,
		warmup:     warmupCycle,
		steady:     s.cycle - warmupCycle,
	}
	// The history owns cumIssued and iterStarts from here on; detach them so
	// a pooled sim can never scribble over a cached trace.
	s.cumIssued, s.iterStarts = nil, nil
	return h, nil
}

// steadyExtrapOn gates steady-state extrapolation. It is on by default;
// results are bit-identical either way (pinned by
// TestSteadyExtrapolationBitIdentical), the toggle exists for that test and
// for benchmarking the full simulation.
var steadyExtrapOn atomic.Bool

// extrapolatedCycles counts simulation cycles skipped by extrapolation.
var extrapolatedCycles atomic.Uint64

func init() { steadyExtrapOn.Store(true) }

// SetSteadyExtrapolationEnabled turns steady-state extrapolation on or off
// and returns the previous setting.
func SetSteadyExtrapolationEnabled(on bool) (prev bool) {
	return steadyExtrapOn.Swap(on)
}

// ExtrapolatedCycles returns the total simulation cycles skipped by
// steady-state extrapolation since process start.
func ExtrapolatedCycles() uint64 { return extrapolatedCycles.Load() }

// signature appends a normalized encoding of the complete scheduler state
// to sig and returns it. Two cycle boundaries with equal signatures evolve
// identically from there on (shifted in time by their cycle distance and in
// dynamic indices by their fetch distance): the encoding covers everything
// the per-cycle stages read — fetch phase, window contents with unresolved
// producers as window-relative ages, wakeup watermarks, the rename map and
// unit reservations — with every cycle count rebased to the boundary and
// every already-elapsed count collapsed to one value, since values in the
// past compare identically against all future cycles.
func (s *sim) signature(sig []uint64) []uint64 {
	c, fetched := s.cycle, s.fetched
	put := func(v int) { sig = append(sig, uint64(int64(v))) }
	put(fetched % len(s.seq))
	put(s.winLen)
	for i := 0; i < s.winLen; i++ {
		e := &s.win[(s.winHead+i)&s.winMask]
		put(e.d.pos)
		if e.issued {
			put(-1)
			if ca := s.completeAt[e.dyn]; ca > c {
				put(ca - c)
			} else {
				put(0)
			}
			continue
		}
		put(e.nProds)
		if e.readyAt > c {
			put(e.readyAt - c)
		} else {
			put(0)
		}
		for j := 0; j < e.nProds; j++ {
			put(fetched - e.prods[j])
		}
	}
	for f := range s.lastWriter {
		for _, w := range s.lastWriter[f] {
			if w < 0 {
				put(-2)
				continue
			}
			if ca := s.completeAt[w]; ca < 0 {
				put(fetched - w + 1<<30) // unissued: window-relative identity
			} else if ca > c {
				put(ca - c + 1<<40) // completes in the future
			} else {
				put(-1) // completed in the past: interchangeable
			}
		}
	}
	for u := range s.unitBusyUntil {
		for _, b := range s.unitBusyUntil[u] {
			if b > c {
				put(b - c)
			} else {
				put(0)
			}
		}
	}
	return sig
}

// extrapolate fast-forwards an exactly periodic steady state. At the first
// cycle boundary after each iteration start it compares the normalized
// scheduler state against the recent anchors in the signature ring; a match
// at cycle distance p proves cycles will repeat with period p. One period
// later the remaining trace is synthesized by replicating the last p cycles
// and the per-cycle simulation stops.
//
// Bit-identity: signature equality at (c0, c1 = c0+p) means every cycle
// t >= c1 issues the same instructions with the same charges in the same
// order as cycle t-p. Firing at cycle >= c1+p with p covering the longest
// charge span makes every addend into both the template [cycle-p, cycle)
// and the replicated region come from issues at t >= c1 — mirrored ones —
// so each chargeDiff slot past the anchor receives the same addends in the
// same order as its template counterpart, the template itself is final,
// and issue counts and iteration starts repeat with integer period
// arithmetic. The folded trace, and every Result synthesized from it, is
// bit-identical to continued simulation.
func (s *sim) extrapolate(warmupCycle, minSteadyCycles, limit int) bool {
	if s.pendingP < 0 {
		return false
	}
	end := warmupCycle + minSteadyCycles
	if s.pendingP > 0 {
		if s.cycle < s.pendingAt || end <= s.cycle {
			return false
		}
		return s.fastForward(end, s.pendingP)
	}
	if len(s.iterStarts) == s.seenIters {
		return false
	}
	s.seenIters = len(s.iterStarts)
	if end-1 > limit {
		// A fresh run would hit its cycle limit before reaching this much
		// steady state; simulate into that error instead of skipping it.
		s.pendingP = -1
		return false
	}
	slot := s.sigCount % sigRing
	sig := s.signature(s.sigs[slot][:0])
	s.sigs[slot] = sig
	s.sigCycles[slot] = s.cycle
	s.sigCount++
	limitBack := s.sigCount
	if limitBack > sigRing {
		limitBack = sigRing
	}
	for back := 1; back < limitBack; back++ {
		j := (slot - back + sigRing) % sigRing
		p := s.cycle - s.sigCycles[j]
		if p < s.maxBlock {
			// Periods shorter than the longest charge span would let
			// pre-template spans leak into the replicated region; a longer
			// (older-anchor) period may still qualify.
			continue
		}
		if slices.Equal(sig, s.sigs[j]) {
			s.pendingP = p
			s.pendingAt = s.cycle + p
			break
		}
	}
	return false
}

// fastForward synthesizes the trace from s.cycle to end given proven period
// p, leaving the sim positioned exactly where continued simulation would
// have ended.
func (s *sim) fastForward(end, p int) bool {
	if len(s.chargeDiff) < end {
		if end <= cap(s.chargeDiff) {
			s.chargeDiff = s.chargeDiff[:end]
		} else {
			grown := make([]float64, end, end+end/2)
			copy(grown, s.chargeDiff)
			s.chargeDiff = grown
		}
	}
	for c := s.cycle; c < end; c++ {
		s.chargeDiff[c] = s.chargeDiff[c-p]
	}
	dI := s.cumIssued[s.cycle-1] - s.cumIssued[s.cycle-1-p]
	for c := s.cycle; c < end; c++ {
		s.cumIssued = append(s.cumIssued, s.cumIssued[c-p]+dI)
	}
	lo := sort.SearchInts(s.iterStarts, s.cycle-p)
	n0 := len(s.iterStarts)
	for m := 1; ; m++ {
		added := false
		for i := lo; i < n0; i++ {
			if nt := s.iterStarts[i] + m*p; nt < end {
				s.iterStarts = append(s.iterStarts, nt)
				added = true
			}
		}
		if !added {
			break
		}
	}
	extrapolatedCycles.Add(uint64(end - s.cycle))
	s.issued = int(s.cumIssued[end-1])
	s.cycle = end
	return true
}

func steadyStateErr(minSteadyCycles int) error {
	return fmt.Errorf("uarch: simulation did not reach steady state within %d cycles", minSteadyCycles*64+100000)
}

// traceHist is the recorded history of one simulation: everything needed to
// synthesize the Result of a run with the same or a shorter steady window.
// All slices are immutable once built and shared read-only.
type traceHist struct {
	cfg        *Config
	charge     []float64 // per-cycle switching charge for the whole run
	cumIssued  []int64   // cumIssued[c]: instructions issued through cycle c
	iterStarts []int     // fetch cycle of each iteration's first instruction
	warmup     int       // first steady-state cycle
	steady     int       // steady cycles simulated; len(charge) == warmup+steady
}

// covers reports whether the history is long enough to synthesize a run
// with the given steady window.
func (h *traceHist) covers(minSteadyCycles int) bool {
	return h.warmup+minSteadyCycles <= len(h.charge)
}

// synth reconstructs the exact Result a fresh Run with the given steady
// window would produce. The simulator is deterministic and charge spans
// only extend forward in time, so a shorter run is a strict prefix of a
// longer one: its trace is a slice of the recorded trace, its iteration
// count is the number of recorded iteration starts before its end cycle,
// and its loop/IPC statistics recompute from the recorded prefix — all
// bit-identical to re-simulating.
func (h *traceHist) synth(minSteadyCycles int) (*Result, error) {
	end := h.warmup + minSteadyCycles
	if limit := minSteadyCycles*64 + 100000; end-1 > limit {
		// A fresh run would hit its cycle limit before reaching this much
		// steady state; reproduce its failure.
		return nil, steadyStateErr(minSteadyCycles)
	}
	iters := sort.SearchInts(h.iterStarts, end)
	res := &Result{
		Config:     h.cfg,
		Charge:     h.charge[:end:end],
		Warmup:     h.warmup,
		Iterations: iters,
	}
	res.LoopCycles = h.loopCyclesAt(end, iters)
	res.IPC = float64(h.cumIssued[end-1]-h.cumIssued[h.warmup]) / float64(minSteadyCycles)
	return res, nil
}

// loopCyclesAt computes the steady-state cycles-per-iteration statistic of
// a prefix run ending at cycle end with iters recorded iteration starts —
// the LoopCycles field synth fills. The last few iterations are excluded:
// fetch runs ahead of issue by the window occupancy, and occupancy drift at
// the very end of the run would bias the average. Shared between synth and
// Trace.LoopCyclesAt so a batched sizing pass that needs only the period
// reads the identical value without materializing a Result.
func (h *traceHist) loopCyclesAt(end, iters int) float64 {
	last := iters - 1
	if last-4 > warmupIters {
		last -= 4
	}
	if last > warmupIters {
		return float64(h.iterStarts[last]-h.iterStarts[warmupIters]) / float64(last-warmupIters)
	}
	return float64(end) / float64(iters)
}
