package uarch

import (
	"fmt"

	"repro/internal/isa"
)

// entry is an in-flight dynamic instruction in the scheduler window.
type entry struct {
	inst   isa.Inst
	prods  [3]int // dynamic indices of producing instructions, -1 if ready
	nProds int
	issued bool
	dyn    int
}

type sim struct {
	cfg *Config
	seq []isa.Inst

	window []entry // oldest first
	// completeAt[dyn] is the cycle the instruction's result is ready;
	// -1 while not yet issued.
	completeAt []int
	// lastWriter[regfile][reg] is the dynamic index of the latest writer.
	lastWriter [2][]int
	// unitBusyUntil[unit][instance] is the first free cycle of that unit.
	unitBusyUntil [isa.NumUnits][]int

	charge  []float64
	cycle   int
	fetched int
	issued  int

	iterStarts []int // fetch cycle of each iteration's first instruction
}

func newSim(cfg *Config, seq []isa.Inst) *sim {
	s := &sim{cfg: cfg, seq: seq, completeAt: make([]int, 0, 4096)}
	for f := range s.lastWriter {
		s.lastWriter[f] = make([]int, 64)
		for i := range s.lastWriter[f] {
			s.lastWriter[f][i] = -1
		}
	}
	for u := range s.unitBusyUntil {
		s.unitBusyUntil[u] = make([]int, cfg.Units[u])
	}
	return s
}

// addCharge accumulates q coulombs per cycle over [from, from+cycles).
func (s *sim) addCharge(from, cycles int, q float64) {
	for len(s.charge) < from+cycles {
		s.charge = append(s.charge, 0)
	}
	for c := from; c < from+cycles; c++ {
		s.charge[c] += q
	}
}

// fetch renames and inserts up to IssueWidth instructions into the window.
func (s *sim) fetch() {
	for n := 0; n < s.cfg.IssueWidth && len(s.window) < s.cfg.WindowSize; n++ {
		pos := s.fetched % len(s.seq)
		if pos == 0 {
			s.iterStarts = append(s.iterStarts, s.cycle)
		}
		in := s.seq[pos]
		e := entry{inst: in, dyn: s.fetched}
		rf := int(in.Def.RegFile)
		for _, src := range in.Sources() {
			if w := s.lastWriter[rf][src]; w >= 0 {
				e.prods[e.nProds] = w
				e.nProds++
			}
		}
		if !in.Def.NoDest {
			s.lastWriter[rf][in.Dest] = s.fetched
		}
		s.completeAt = append(s.completeAt, -1)
		s.window = append(s.window, e)
		s.fetched++
	}
}

// ready reports whether all producers of e have completed by cycle.
func (s *sim) ready(e *entry) bool {
	for i := 0; i < e.nProds; i++ {
		c := s.completeAt[e.prods[i]]
		if c < 0 || c > s.cycle {
			return false
		}
	}
	return true
}

// claimUnit finds a free instance of unit u and marks it busy for block
// cycles; it reports whether one was available.
func (s *sim) claimUnit(u isa.Unit, block int) bool {
	for i, busyUntil := range s.unitBusyUntil[u] {
		if busyUntil <= s.cycle {
			s.unitBusyUntil[u][i] = s.cycle + block
			return true
		}
	}
	return false
}

// issue dispatches up to IssueWidth ready instructions and returns how many
// it issued.
func (s *sim) issue() int {
	issued := 0
	for i := range s.window {
		if issued >= s.cfg.IssueWidth {
			break
		}
		e := &s.window[i]
		if e.issued {
			continue
		}
		canIssue := s.ready(e) && s.claimUnitProbe(e.inst.Def.Unit)
		if !canIssue {
			if s.cfg.OutOfOrder {
				continue
			}
			break // in-order: a stalled instruction blocks younger ones
		}
		d := e.inst.Def
		if !s.claimUnit(d.Unit, d.Block) {
			if s.cfg.OutOfOrder {
				continue
			}
			break
		}
		e.issued = true
		s.completeAt[e.dyn] = s.cycle + d.Latency
		s.addCharge(s.cycle, d.Block, d.Charge*s.cfg.ChargeScale)
		s.issued++
		issued++
	}
	return issued
}

// claimUnitProbe reports whether a unit instance is free without claiming.
func (s *sim) claimUnitProbe(u isa.Unit) bool {
	for _, busyUntil := range s.unitBusyUntil[u] {
		if busyUntil <= s.cycle {
			return true
		}
	}
	return false
}

// retire removes completed instructions from the head of the window.
func (s *sim) retire() {
	n := 0
	for n < len(s.window) && n < 2*s.cfg.IssueWidth {
		e := &s.window[n]
		if !e.issued || s.completeAt[e.dyn] > s.cycle {
			break
		}
		n++
	}
	if n > 0 {
		s.window = s.window[n:]
	}
}

func (s *sim) run(minSteadyCycles int) (*Result, error) {
	warmupCycle := -1
	issuedAtWarmup := 0
	limit := minSteadyCycles*64 + 100000
	for {
		if s.cycle > limit {
			return nil, fmt.Errorf("uarch: simulation did not reach steady state within %d cycles", limit)
		}
		s.retire()
		issued := s.issue()
		s.fetch()
		if warmupCycle < 0 && len(s.iterStarts) > warmupIters {
			warmupCycle = s.iterStarts[warmupIters]
			issuedAtWarmup = s.issued
		}
		s.addCharge(s.cycle, 1, s.cfg.BaseCharge+float64(s.cfg.IssueWidth-issued)*s.cfg.IdleSlotCharge)
		s.cycle++
		if warmupCycle >= 0 && s.cycle-warmupCycle >= minSteadyCycles {
			break
		}
	}
	// Truncate in-flight charge beyond the final simulated cycle so the
	// trace length equals the cycle count.
	if len(s.charge) > s.cycle {
		s.charge = s.charge[:s.cycle]
	}
	iters := len(s.iterStarts)
	res := &Result{
		Config:     s.cfg,
		Charge:     s.charge,
		Warmup:     warmupCycle,
		Iterations: iters,
	}
	// Steady-state cycles per iteration from fetch timestamps. The last
	// few iterations are excluded: fetch runs ahead of issue by the window
	// occupancy, and occupancy drift at the very end of the run would bias
	// the average.
	last := len(s.iterStarts) - 1
	if last-4 > warmupIters {
		last -= 4
	}
	if last > warmupIters {
		res.LoopCycles = float64(s.iterStarts[last]-s.iterStarts[warmupIters]) / float64(last-warmupIters)
	} else {
		res.LoopCycles = float64(s.cycle) / float64(iters)
	}
	steadyCycles := s.cycle - warmupCycle
	if steadyCycles > 0 {
		res.IPC = float64(s.issued-issuedAtWarmup) / float64(steadyCycles)
	}
	return res, nil
}
