package uarch

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/isa"
)

// requireSameResult compares two Results bit-for-bit: the determinism
// contract is that cached, synthesized and fresh runs are indistinguishable.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Warmup != want.Warmup || got.Iterations != want.Iterations {
		t.Fatalf("%s: warmup/iterations (%d, %d) != (%d, %d)",
			label, got.Warmup, got.Iterations, want.Warmup, want.Iterations)
	}
	if math.Float64bits(got.LoopCycles) != math.Float64bits(want.LoopCycles) {
		t.Fatalf("%s: LoopCycles %v != %v", label, got.LoopCycles, want.LoopCycles)
	}
	if math.Float64bits(got.IPC) != math.Float64bits(want.IPC) {
		t.Fatalf("%s: IPC %v != %v", label, got.IPC, want.IPC)
	}
	if len(got.Charge) != len(want.Charge) {
		t.Fatalf("%s: charge length %d != %d", label, len(got.Charge), len(want.Charge))
	}
	for i := range got.Charge {
		if math.Float64bits(got.Charge[i]) != math.Float64bits(want.Charge[i]) {
			t.Fatalf("%s: charge[%d] = %v != %v", label, i, got.Charge[i], want.Charge[i])
		}
	}
}

// uncachedRun simulates exactly the window requested, bypassing the cache.
func uncachedRun(t *testing.T, cfg Config, seq []isa.Inst, minSteady int) *Result {
	t.Helper()
	hist, err := newSim(&cfg, seq, simHint(minSteady)).run(minSteady)
	if err != nil {
		t.Fatalf("uncached run: %v", err)
	}
	res, err := hist.synth(minSteady)
	if err != nil {
		t.Fatalf("uncached synth: %v", err)
	}
	return res
}

// TestShorterRunIsPrefix checks the lemma the whole cache rests on: a run
// with a shorter steady window is a strict prefix of a longer one — same
// charge bits, same iteration starts, same cumulative issue counts.
func TestShorterRunIsPrefix(t *testing.T) {
	pools := map[string]*isa.Pool{"arm64": isa.ARM64Pool(), "x86": isa.X86Pool()}
	for _, cfg := range []Config{CortexA72(), CortexA53(), AthlonII()} {
		for pname, pool := range pools {
			rng := rand.New(rand.NewSource(41))
			for trial := 0; trial < 4; trial++ {
				seq := pool.RandomSequence(rng, 5+rng.Intn(60))
				short, err := newSim(&cfg, seq, simHint(200)).run(200)
				if err != nil {
					t.Fatal(err)
				}
				long, err := newSim(&cfg, seq, simHint(1500)).run(1500)
				if err != nil {
					t.Fatal(err)
				}
				if short.warmup != long.warmup {
					t.Fatalf("%s/%s: warmup %d != %d", cfg.Name, pname, short.warmup, long.warmup)
				}
				for i, q := range short.charge {
					if math.Float64bits(q) != math.Float64bits(long.charge[i]) {
						t.Fatalf("%s/%s: charge[%d] diverges: %v != %v", cfg.Name, pname, i, q, long.charge[i])
					}
				}
				for i, c := range short.cumIssued {
					if c != long.cumIssued[i] {
						t.Fatalf("%s/%s: cumIssued[%d] diverges: %d != %d", cfg.Name, pname, i, c, long.cumIssued[i])
					}
				}
				for i, c := range short.iterStarts {
					if c != long.iterStarts[i] {
						t.Fatalf("%s/%s: iterStarts[%d] diverges: %d != %d", cfg.Name, pname, i, c, long.iterStarts[i])
					}
				}
			}
		}
	}
}

// TestCachedRunBitIdentical drives Run through the cache with windows in
// every order — descending (sweep order), ascending (forces extensions) and
// mixed — and requires bit-identical Results versus exact-window
// simulations.
func TestCachedRunBitIdentical(t *testing.T) {
	pool := isa.ARM64Pool()
	windows := []int{900, 300, 1700, 50, 1700, 4200, 128, 4200}
	for _, cfg := range []Config{CortexA72(), CortexA53(), AthlonII()} {
		rng := rand.New(rand.NewSource(97))
		for trial := 0; trial < 3; trial++ {
			seq := pool.RandomSequence(rng, 8+rng.Intn(50))
			ResetTraceCache()
			prev := SetTraceCacheEnabled(true)
			for _, m := range windows {
				got, err := Run(cfg, seq, m)
				if err != nil {
					t.Fatalf("%s: cached Run(%d): %v", cfg.Name, m, err)
				}
				requireSameResult(t, fmt.Sprintf("%s M=%d", cfg.Name, m), got, uncachedRun(t, cfg, seq, m))
			}
			SetTraceCacheEnabled(prev)
		}
	}
	ResetTraceCache()
}

// TestDisabledCacheBitIdentical checks that Run with the cache disabled
// matches Run with it enabled.
func TestDisabledCacheBitIdentical(t *testing.T) {
	pool := isa.X86Pool()
	rng := rand.New(rand.NewSource(7))
	seq := pool.RandomSequence(rng, 40)
	cfg := AthlonII()

	ResetTraceCache()
	prev := SetTraceCacheEnabled(true)
	defer func() { SetTraceCacheEnabled(prev); ResetTraceCache() }()
	cached, err := Run(cfg, seq, 2500)
	if err != nil {
		t.Fatal(err)
	}
	SetTraceCacheEnabled(false)
	plain, err := Run(cfg, seq, 2500)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "disabled vs enabled", plain, cached)
}

// TestTraceCacheStats exercises the counters: a first request misses, a
// shorter one hits, a longer one extends.
func TestTraceCacheStats(t *testing.T) {
	pool := isa.ARM64Pool()
	rng := rand.New(rand.NewSource(3))
	seq := pool.RandomSequence(rng, 20)
	cfg := CortexA72()

	ResetTraceCache()
	prev := SetTraceCacheEnabled(true)
	defer func() { SetTraceCacheEnabled(prev); ResetTraceCache() }()

	if _, err := Run(cfg, seq, 1000); err != nil {
		t.Fatal(err)
	}
	if st := TraceCacheStats(); st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after first run: %+v", st)
	}
	if _, err := Run(cfg, seq, 400); err != nil {
		t.Fatal(err)
	}
	if st := TraceCacheStats(); st.Hits != 1 {
		t.Fatalf("shorter window should hit: %+v", st)
	}
	if _, err := Run(cfg, seq, 5000); err != nil {
		t.Fatal(err)
	}
	if st := TraceCacheStats(); st.Extensions != 1 {
		t.Fatalf("longer window should extend: %+v", st)
	}
	if _, err := Run(cfg, seq, 4000); err != nil {
		t.Fatal(err)
	}
	if st := TraceCacheStats(); st.Hits != 2 {
		t.Fatalf("extended window should cover 4000: %+v", st)
	}
	if st := TraceCacheStats(); st.Cycles <= 0 || st.Cycles > traceCacheMaxCycles {
		t.Fatalf("cycle accounting out of range: %+v", st)
	}
}

// fakeHist fabricates a minimal history of the given total length so
// eviction accounting can be tested without running simulations.
func fakeHist(cfg *Config, n int) *traceHist {
	return &traceHist{cfg: cfg, charge: make([]float64, n), cumIssued: make([]int64, n), warmup: 1, steady: n - 1}
}

// TestTraceCacheEviction fills a private cache past its cycle budget and
// checks that old entries are dropped, recently used ones survive, and the
// accounting matches residency.
func TestTraceCacheEviction(t *testing.T) {
	cfg := CortexA72()
	pool := isa.ARM64Pool()
	rng := rand.New(rand.NewSource(11))
	c := newTraceCache()

	const chunk = traceCacheMaxCycles / 4
	var keys []uint64
	for i := 0; i < 6; i++ {
		seq := pool.RandomSequence(rng, 10)
		key := traceKey(&cfg, seq)
		keys = append(keys, key)
		e, ok := c.lookup(key, &cfg, seq)
		if !ok {
			t.Fatalf("entry %d: unexpected collision", i)
		}
		c.install(e, nil, fakeHist(&cfg, chunk))
	}
	if c.evictions.Load() == 0 {
		t.Fatal("no evictions past the cycle budget")
	}
	c.mu.Lock()
	cycles, entries := c.cycles, len(c.entries)
	_, newestResident := c.entries[keys[len(keys)-1]]
	_, oldestResident := c.entries[keys[0]]
	c.mu.Unlock()
	if cycles > traceCacheMaxCycles {
		t.Fatalf("cycle budget exceeded: %d > %d", cycles, traceCacheMaxCycles)
	}
	if cycles != entries*chunk {
		t.Fatalf("accounting drift: %d cycles for %d entries of %d", cycles, entries, chunk)
	}
	if !newestResident {
		t.Fatal("most recently installed entry was evicted")
	}
	if oldestResident {
		t.Fatal("least recently used entry survived past the budget")
	}
}

// TestSynthErrorMatchesFreshRun: synthesizing a window that a fresh run
// could never reach must reproduce the fresh run's error text.
func TestSynthErrorMatchesFreshRun(t *testing.T) {
	cfg := CortexA72()
	// A fresh Run(1) fails if steady state needs more than 1*64+100000
	// cycles; fabricate a history whose warmup alone exceeds that.
	h := fakeHist(&cfg, 200002)
	h.warmup = 200000
	h.steady = 2
	if _, err := h.synth(1); err == nil || err.Error() != steadyStateErr(1).Error() {
		t.Fatalf("synth error = %v, want %v", err, steadyStateErr(1))
	}
	if _, err := h.synth(2); err == nil {
		t.Fatal("expected limit error for M=2")
	}
}

// TestTraceCacheConcurrent hammers one key from many goroutines with mixed
// window lengths (the parallel-sweep access pattern) and checks every
// result against an exact-window simulation. Run under -race this also
// proves the lock discipline.
func TestTraceCacheConcurrent(t *testing.T) {
	pool := isa.ARM64Pool()
	rng := rand.New(rand.NewSource(23))
	seq := pool.RandomSequence(rng, 30)
	cfg := CortexA72()
	windows := []int{200, 800, 3000, 500, 1200}
	want := make(map[int]*Result)
	for _, m := range windows {
		want[m] = uncachedRun(t, cfg, seq, m)
	}

	ResetTraceCache()
	prev := SetTraceCacheEnabled(true)
	defer func() { SetTraceCacheEnabled(prev); ResetTraceCache() }()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(windows); i++ {
				m := windows[(g+i)%len(windows)]
				got, err := Run(cfg, seq, m)
				if err != nil {
					errs <- err
					return
				}
				w := want[m]
				if len(got.Charge) != len(w.Charge) ||
					math.Float64bits(got.LoopCycles) != math.Float64bits(w.LoopCycles) ||
					math.Float64bits(got.IPC) != math.Float64bits(w.IPC) {
					errs <- fmt.Errorf("goroutine %d: window %d diverged", g, m)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
