package uarch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// TestPrimeTraceSynthMatchesRun pins the campaign-priming contract: a trace
// primed once at a large steady window synthesizes, for every smaller
// window, the exact Result a fresh Run at that window produces — same
// charge bits, same loop cycles — with the cache on or off.
func TestPrimeTraceSynthMatchesRun(t *testing.T) {
	cfg := CortexA72()
	pool := isa.ARM64Pool()
	rng := rand.New(rand.NewSource(17))
	seq := pool.RandomSequence(rng, 24)

	for _, cache := range []bool{true, false} {
		ResetTraceCache()
		prev := SetTraceCacheEnabled(cache)
		tr, err := PrimeTrace(cfg, seq, 2000)
		if err != nil {
			t.Fatalf("cache=%v: prime: %v", cache, err)
		}
		for _, ms := range []int{150, 700, 2000} {
			if !tr.Covers(ms) {
				t.Fatalf("cache=%v: primed trace does not cover %d", cache, ms)
			}
			got, err := tr.Synth(ms)
			if err != nil {
				t.Fatalf("cache=%v: synth(%d): %v", cache, ms, err)
			}
			requireSameResult(t, "synth", got, uncachedRun(t, cfg, seq, ms))
			lc, err := tr.LoopCyclesAt(ms)
			if err != nil {
				t.Fatalf("cache=%v: loop cycles at %d: %v", cache, ms, err)
			}
			if math.Float64bits(lc) != math.Float64bits(got.LoopCycles) {
				t.Fatalf("cache=%v: LoopCyclesAt(%d) = %v, synth says %v", cache, ms, lc, got.LoopCycles)
			}
		}
		if tr.Covers(2001) {
			t.Fatalf("cache=%v: trace claims to cover beyond its primed window", cache)
		}
		SetTraceCacheEnabled(prev)
	}
	ResetTraceCache()
}

// TestPrimeTraceValidation checks that priming rejects the same degenerate
// inputs RunLineageWindow does, and that a nil trace is inert.
func TestPrimeTraceValidation(t *testing.T) {
	cfg := CortexA72()
	seq := isa.ARM64Pool().RandomSequence(rand.New(rand.NewSource(3)), 10)
	if _, err := PrimeTrace(cfg, nil, 100); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := PrimeTrace(cfg, seq, 0); err == nil {
		t.Fatal("zero steady window accepted")
	}
	var tr *Trace
	if tr.Covers(100) {
		t.Fatal("nil trace claims coverage")
	}
}
