package uarch

// Campaign-scoped trace priming.
//
// A sweep, shmoo or V_MIN campaign evaluates one workload at many operating
// points, and the simulator is purely cycle-domain: every point asks for the
// identical simulation, only the steady-window length varies (with the
// clock). The global trace cache already exploits this when it is enabled,
// but batched campaigns want the same amortization unconditionally — cold
// benchmarks and cache-off determinism runs included — without routing every
// point through the shared cache's locks. PrimeTrace runs (or looks up) the
// one backing simulation sized for the campaign's largest demand and hands
// back a Trace: an immutable history handle whose Synth reconstructs the
// Result of any covered window bit-identically to a fresh Run, by the same
// prefix lemma the cache relies on (see traceHist.synth).

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Trace is a primed, immutable charge history for one (Config, Seq) pair,
// covering at least the steady window it was primed with. The zero of the
// type is not useful; a nil *Trace is a valid "no priming" value (Covers
// reports false) so callers can thread an optional trace unconditionally.
type Trace struct {
	hist *traceHist
}

// PrimeTrace simulates the loop once, covering steadyCycles of steady
// state, and returns the history handle. When the global trace cache is
// enabled the simulation goes through it — sharing a covering entry or
// installing the freshly simulated one, so scalar traffic benefits too;
// when disabled (or on a key collision) the history is private to the
// handle, which is what lets a batched campaign keep its one-simulation
// cost even in cache-off runs.
func PrimeTrace(cfg Config, seq []isa.Inst, steadyCycles int) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("uarch: empty instruction sequence")
	}
	if steadyCycles < 1 {
		return nil, fmt.Errorf("uarch: minSteadyCycles = %d", steadyCycles)
	}
	if traceCacheOn.Load() {
		c := globalTraceCache
		key := traceKey(&cfg, seq)
		if e, ok := c.lookup(key, &cfg, seq); ok {
			if h := e.hist.Load(); h != nil && h.covers(steadyCycles) {
				c.hits.Add(1)
				return &Trace{hist: h}, nil
			}
			h, err := c.fill(e, steadyCycles, nil)
			if err != nil {
				// Failure to reach steady state is monotone in the window
				// length; report the error a run at this window produces.
				return nil, steadyStateErr(steadyCycles)
			}
			return &Trace{hist: h}, nil
		}
		// Hash collision with different content: simulate uncached, as the
		// cache itself does.
		c.misses.Add(1)
	}
	h, err := simulate(&cfg, seq, steadyCycles, nil)
	if err != nil {
		return nil, err
	}
	return &Trace{hist: h}, nil
}

// Covers reports whether the primed history can serve a run with the given
// steady window. A nil trace covers nothing.
func (t *Trace) Covers(minSteadyCycles int) bool {
	return t != nil && minSteadyCycles >= 1 && t.hist.covers(minSteadyCycles)
}

// Synth reconstructs the exact Result a fresh Run with the given steady
// window would produce (the window must be covered; see Covers). The error
// case reproduces the cycle-limit failure a fresh run would report.
func (t *Trace) Synth(minSteadyCycles int) (*Result, error) {
	return t.hist.synth(minSteadyCycles)
}

// LoopCyclesAt returns the LoopCycles statistic Synth(minSteadyCycles)
// would report — or the error it would produce — without materializing the
// Result. Batched sizing passes use it to pick the snapped window before
// synthesizing the one Result the point actually keeps.
func (t *Trace) LoopCyclesAt(minSteadyCycles int) (float64, error) {
	h := t.hist
	end := h.warmup + minSteadyCycles
	if limit := minSteadyCycles*64 + 100000; end-1 > limit {
		return 0, steadyStateErr(minSteadyCycles)
	}
	return h.loopCyclesAt(end, sort.SearchInts(h.iterStarts, end)), nil
}
