package uarch

import (
	"math/rand"
	"testing"

	"repro/internal/castore"
	"repro/internal/isa"
)

// withStore installs a fresh disk tier rooted in a test tempdir and resets
// the in-memory cache around fn, restoring both afterwards.
func withStore(t *testing.T, s *castore.Store, fn func()) {
	t.Helper()
	prev := SetPersistentStore(s)
	ResetTraceCache()
	defer func() {
		SetPersistentStore(prev)
		ResetTraceCache()
	}()
	fn()
}

func openStore(t *testing.T) *castore.Store {
	t.Helper()
	s, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDiskWarmTraceBitIdentical pins the trace tier's contract: a run
// served from a populated store in a "new process" (empty in-memory cache)
// is bit-identical to a fresh simulation, and actually comes from disk.
func TestDiskWarmTraceBitIdentical(t *testing.T) {
	cfg := CortexA72()
	seq := isa.ARM64Pool().RandomSequence(rand.New(rand.NewSource(7)), 40)
	const steady = 3000
	want := uncachedRun(t, cfg, seq, steady)

	s := openStore(t)
	withStore(t, s, func() {
		if _, err := Run(cfg, seq, steady); err != nil {
			t.Fatal(err)
		}
	})
	if s.Stats().Puts == 0 {
		t.Fatal("first run wrote nothing through to disk")
	}

	// Fresh in-memory cache over the same store: the history must come back
	// from disk without simulating.
	withStore(t, s, func() {
		got, err := Run(cfg, seq, steady)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "disk-warm", got, want)
	})
	if s.Stats().Hits == 0 {
		t.Fatal("second run never hit the disk tier")
	}
}

// TestDiskPartialEntryExtends covers the short-entry path: a store holding
// a shorter history than requested must not be trusted as-is — the fill
// re-simulates (with the doubling floor) and the longer history replaces
// the disk entry, never shrinking it.
func TestDiskPartialEntryExtends(t *testing.T) {
	cfg := CortexA72()
	seq := isa.ARM64Pool().RandomSequence(rand.New(rand.NewSource(8)), 40)

	s := openStore(t)
	withStore(t, s, func() {
		if _, err := Run(cfg, seq, 500); err != nil {
			t.Fatal(err)
		}
	})

	const longer = 6000
	want := uncachedRun(t, cfg, seq, longer)
	withStore(t, s, func() {
		got, err := Run(cfg, seq, longer)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "extended-past-disk", got, want)
	})

	// The store entry now covers the longer window: a third cold start must
	// serve it from disk alone.
	hitsBefore := s.Stats().Hits
	withStore(t, s, func() {
		got, err := Run(cfg, seq, longer)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "disk-warm-after-extension", got, want)
	})
	if s.Stats().Hits == hitsBefore {
		t.Fatal("extended entry was not served from disk")
	}
}

// TestDiskEntryVerifiedAgainstContent: an entry stored under a key must
// never be served for different content — decode verifies the full
// (Config, Seq) echo, so a forged or mis-keyed payload degrades to a miss.
func TestDiskEntryVerifiedAgainstContent(t *testing.T) {
	cfg := CortexA72()
	pool := isa.ARM64Pool()
	seqA := pool.RandomSequence(rand.New(rand.NewSource(9)), 40)
	seqB := pool.RandomSequence(rand.New(rand.NewSource(10)), 40)
	const steady = 1000

	s := openStore(t)
	withStore(t, s, func() {
		if _, err := Run(cfg, seqA, steady); err != nil {
			t.Fatal(err)
		}
	})

	// Copy A's payload under B's key, simulating a (cosmically unlikely)
	// 64-bit hash collision between two workloads.
	keyA := traceKey(&cfg, seqA)
	keyB := traceKey(&cfg, seqB)
	payload, ok := s.Get(traceNS, traceCodecVersion, keyA)
	if !ok {
		t.Fatal("stored payload unreadable")
	}
	if err := s.Put(traceNS, traceCodecVersion, keyB, payload); err != nil {
		t.Fatal(err)
	}

	want := uncachedRun(t, cfg, seqB, steady)
	withStore(t, s, func() {
		got, err := Run(cfg, seqB, steady)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "collision-fallback", got, want)
	})
}

// TestCacheOffSkipsDisk: with the trace cache disabled, the disk tier must
// not be consulted or written — determinism baselines and cold benchmarks
// stay genuinely cold.
func TestCacheOffSkipsDisk(t *testing.T) {
	cfg := CortexA72()
	seq := isa.ARM64Pool().RandomSequence(rand.New(rand.NewSource(11)), 40)

	s := openStore(t)
	prevOn := SetTraceCacheEnabled(false)
	defer SetTraceCacheEnabled(prevOn)
	withStore(t, s, func() {
		if _, err := Run(cfg, seq, 1000); err != nil {
			t.Fatal(err)
		}
	})
	st := s.Stats()
	if st.Hits+st.Misses+st.Puts != 0 {
		t.Fatalf("cache-off run touched the disk tier: %+v", st)
	}
}

// TestTraceEntryCodecRoundtrip exercises encode/decode directly, including
// the truncation discipline: every strict prefix of a valid payload must
// decode to nil, never to a wrong history.
func TestTraceEntryCodecRoundtrip(t *testing.T) {
	cfg := CortexA72()
	seq := isa.ARM64Pool().RandomSequence(rand.New(rand.NewSource(12)), 25)
	hist, err := simulate(&cfg, seq, 800, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := &traceEntry{key: traceKey(&cfg, seq), cfg: cfg, seq: seq}
	payload := encodeTraceEntry(e, hist)

	got := decodeTraceEntry(payload, e)
	if got == nil {
		t.Fatal("decode of a fresh encode failed")
	}
	if got.warmup != hist.warmup || got.steady != hist.steady {
		t.Fatalf("window (%d, %d) != (%d, %d)", got.warmup, got.steady, hist.warmup, hist.steady)
	}
	wantRes, _ := hist.synth(800)
	gotRes, err := got.synth(800)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "codec-roundtrip", gotRes, wantRes)
	if got.cfg != &e.cfg {
		t.Error("decoded history does not share the entry's config pointer")
	}

	for n := 0; n < len(payload); n += 97 {
		if decodeTraceEntry(payload[:n], e) != nil {
			t.Fatalf("truncated payload (len %d) decoded", n)
		}
	}

	// Content mismatch: different sequence under the same payload.
	other := &traceEntry{key: e.key, cfg: cfg, seq: seq[:len(seq)-1]}
	if decodeTraceEntry(payload, other) != nil {
		t.Fatal("payload decoded for an entry with different content")
	}
}
