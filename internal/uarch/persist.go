package uarch

// Disk tier under the trace cache. When a store is installed
// (SetPersistentStore), a first-fill miss consults the store before
// simulating, and every simulation writes its history through — so a
// restarted process, or a second process sharing the cache directory,
// replays charge histories instead of re-simulating them.
//
// Keying reuses traceKey, the same 64-bit content hash the in-memory cache
// trusts, but the stored payload carries the full (Config, Seq) content and
// every decode verifies it against the request — a hash collision or a
// mis-filed entry degrades to a miss, never to a wrong trace. Payload
// floats travel as IEEE-754 bits, so a disk-warm synthesis is bit-identical
// to a fresh simulation.
//
// The disk tier rides the cached path only: it is consulted under the
// entry's simMu (one disk probe per key per process), and the cache-off
// path (SetTraceCacheEnabled(false)) never touches it, keeping determinism
// baselines and cold benchmarks genuinely cold.

import (
	"sync/atomic"

	"repro/internal/castore"
	"repro/internal/isa"
)

// traceNS is the store namespace for charge histories.
const traceNS = "trace"

// traceCodecVersion is bumped whenever the payload layout or any upstream
// producer of the stored arrays changes meaning; stale-version entries read
// as plain misses and are overwritten in place.
const traceCodecVersion = 1

var tracePersist atomic.Pointer[castore.Store]

// SetPersistentStore installs (nil removes) the disk-backed tier under the
// trace cache and returns the previous store.
func SetPersistentStore(s *castore.Store) (prev *castore.Store) {
	return tracePersist.Swap(s)
}

// PersistentStore returns the installed disk tier, or nil.
func PersistentStore() *castore.Store { return tracePersist.Load() }

// encodeTraceEntry flattens the full simulation content (for collision
// verification on decode) plus the history arrays.
func encodeTraceEntry(e *traceEntry, h *traceHist) []byte {
	enc := castore.NewEnc(26*8 + 16*8*len(e.seq) + 8*(len(h.charge)+len(h.cumIssued)+len(h.iterStarts)+8))
	encodeCfg(enc, &e.cfg)
	enc.Int(len(e.seq))
	for _, in := range e.seq {
		encodeInst(enc, in)
	}
	enc.Int(h.warmup)
	enc.Int(h.steady)
	enc.Floats(h.charge)
	enc.Int64s(h.cumIssued)
	enc.Ints(h.iterStarts)
	return enc.Bytes()
}

func encodeCfg(enc *castore.Enc, cfg *Config) {
	enc.String(cfg.Name)
	enc.Bool(cfg.OutOfOrder)
	enc.Int(cfg.IssueWidth)
	enc.Int(cfg.WindowSize)
	for _, n := range cfg.Units {
		enc.Int(n)
	}
	enc.Float64(cfg.ChargeScale)
	enc.Float64(cfg.BaseCharge)
	enc.Float64(cfg.IdleSlotCharge)
	enc.Float64(cfg.CurrentSlewTau)
}

func encodeInst(enc *castore.Enc, in isa.Inst) {
	d := in.Def
	enc.String(d.Mnemonic)
	enc.Int(int(d.Class))
	enc.Int(int(d.Unit))
	enc.Int(d.Latency)
	enc.Int(d.Block)
	enc.Float64(d.Charge)
	enc.Int(int(d.RegFile))
	enc.Int(d.NSrc)
	enc.Bool(d.DestIsSrc)
	enc.Int(int(d.Mem))
	enc.Bool(d.NoDest)
	enc.Int(in.Dest)
	enc.Int(in.Srcs[0])
	enc.Int(in.Srcs[1])
	enc.Int(in.Addr)
}

func decodeCfg(dec *castore.Dec) Config {
	var cfg Config
	cfg.Name = dec.String()
	cfg.OutOfOrder = dec.Bool()
	cfg.IssueWidth = dec.Int()
	cfg.WindowSize = dec.Int()
	for i := range cfg.Units {
		cfg.Units[i] = dec.Int()
	}
	cfg.ChargeScale = dec.Float64()
	cfg.BaseCharge = dec.Float64()
	cfg.IdleSlotCharge = dec.Float64()
	cfg.CurrentSlewTau = dec.Float64()
	return cfg
}

func decodeInst(dec *castore.Dec) isa.Inst {
	d := &isa.Def{}
	d.Mnemonic = dec.String()
	d.Class = isa.Class(dec.Int())
	d.Unit = isa.Unit(dec.Int())
	d.Latency = dec.Int()
	d.Block = dec.Int()
	d.Charge = dec.Float64()
	d.RegFile = isa.RegFile(dec.Int())
	d.NSrc = dec.Int()
	d.DestIsSrc = dec.Bool()
	d.Mem = isa.MemMode(dec.Int())
	d.NoDest = dec.Bool()
	var in isa.Inst
	in.Def = d
	in.Dest = dec.Int()
	in.Srcs[0] = dec.Int()
	in.Srcs[1] = dec.Int()
	in.Addr = dec.Int()
	return in
}

// maxSeqLen bounds a decoded sequence length so a payload that passed the
// frame checksum but carries garbage cannot drive a huge allocation.
const maxSeqLen = 1 << 20

// decodeTraceEntry parses a stored payload and verifies it against the
// entry's content; any mismatch, truncation, or violated simulator
// invariant returns nil (a miss).
func decodeTraceEntry(payload []byte, e *traceEntry) *traceHist {
	dec := castore.NewDec(payload)
	cfg := decodeCfg(dec)
	n := dec.Int()
	if dec.Err() != nil || n < 0 || n > maxSeqLen {
		return nil
	}
	seq := make([]isa.Inst, n)
	for i := range seq {
		seq[i] = decodeInst(dec)
	}
	h := &traceHist{}
	h.warmup = dec.Int()
	h.steady = dec.Int()
	h.charge = dec.Floats()
	h.cumIssued = dec.Int64s()
	h.iterStarts = dec.Ints()
	if dec.Finish() != nil {
		return nil
	}
	// Content verification: a hash collision (or an entry written by a
	// subtly different producer) must never masquerade as this workload.
	if cfg != e.cfg || !sameSeq(seq, e.seq) {
		return nil
	}
	// Structural invariants synth relies on.
	if h.warmup < 0 || h.steady <= 0 || len(h.charge) != h.warmup+h.steady || len(h.cumIssued) != len(h.charge) {
		return nil
	}
	for i := 1; i < len(h.iterStarts); i++ {
		if h.iterStarts[i] < h.iterStarts[i-1] {
			return nil
		}
	}
	h.cfg = &e.cfg
	return h
}

// AppendConfig persists a Config's full content. Exported so downstream
// artifacts that embed a core config (the platform spectra tier's Result)
// share one layout with the trace namespace.
func AppendConfig(enc *castore.Enc, cfg *Config) { encodeCfg(enc, cfg) }

// ReadConfig is the inverse of AppendConfig. Check the decoder's Finish
// before trusting the value.
func ReadConfig(dec *castore.Dec) Config { return decodeCfg(dec) }

// AppendResult persists a Result, config content inline.
func AppendResult(enc *castore.Enc, r *Result) {
	encodeCfg(enc, r.Config)
	enc.Floats(r.Charge)
	enc.Int(r.Warmup)
	enc.Float64(r.LoopCycles)
	enc.Float64(r.IPC)
	enc.Int(r.Iterations)
}

// ReadResult is the inverse of AppendResult; the returned Result points at
// a fresh Config copy with content equal to the encoded one.
func ReadResult(dec *castore.Dec) *Result {
	cfg := decodeCfg(dec)
	r := &Result{Config: &cfg}
	r.Charge = dec.Floats()
	r.Warmup = dec.Int()
	r.LoopCycles = dec.Float64()
	r.IPC = dec.Float64()
	r.Iterations = dec.Int()
	return r
}

// diskLoad probes the disk tier for the entry's history. Called under
// e.simMu with no in-memory history yet.
func diskLoad(e *traceEntry) *traceHist {
	s := tracePersist.Load()
	if s == nil {
		return nil
	}
	payload, ok := s.Get(traceNS, traceCodecVersion, e.key)
	if !ok {
		return nil
	}
	return decodeTraceEntry(payload, e)
}

// diskStore writes a freshly simulated history through to the disk tier.
// Called under e.simMu; errors degrade to a slower next start.
func diskStore(e *traceEntry, h *traceHist) {
	s := tracePersist.Load()
	if s == nil {
		return
	}
	_ = s.Put(traceNS, traceCodecVersion, e.key, encodeTraceEntry(e, h))
}
