// Package uarch provides deterministic, cycle-approximate models of the
// three CPU cores the paper characterizes: an out-of-order core in the
// style of the Cortex-A72 and Athlon II, and an in-order dual-issue core in
// the style of the Cortex-A53.
//
// The model executes a stress loop (a GA individual) repeatedly and records
// the per-cycle switching charge. That charge trace is the only interface
// the electrical layers need: at clock frequency f a cycle that moved
// charge Q contributes current Q·f. Determinism matters — the paper
// deliberately excludes cache misses because measurement jitter stalls GA
// convergence (Section 3.3) — so all loads hit L1 with a fixed latency and
// no structure in the model is randomized.
package uarch

import (
	"fmt"

	"repro/internal/isa"
)

// Config describes a core model.
type Config struct {
	Name       string
	OutOfOrder bool
	IssueWidth int
	// WindowSize bounds in-flight instructions (the scheduler window for
	// out-of-order cores, the scoreboard depth for in-order ones).
	WindowSize int
	// Units gives the number of functional units of each kind.
	Units [isa.NumUnits]int
	// ChargeScale multiplies every instruction charge, modelling core size
	// and process node (a 45nm desktop core moves far more charge per
	// operation than a 16nm LITTLE core).
	ChargeScale float64
	// BaseCharge is moved every cycle regardless of activity (clock tree
	// and leakage surrogate), in coulombs.
	BaseCharge float64
	// IdleSlotCharge is moved per unused issue slot per cycle; stalled
	// cycles therefore draw close to BaseCharge only.
	IdleSlotCharge float64
	// CurrentSlewTau is the time constant (seconds) of the core's current
	// ramp: clock distribution and pipeline depth prevent the rail current
	// from stepping instantaneously, which attenuates load-current
	// harmonics well above the PDN resonance.
	CurrentSlewTau float64
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.IssueWidth < 1:
		return fmt.Errorf("uarch: %s: issue width %d", c.Name, c.IssueWidth)
	case c.WindowSize < c.IssueWidth:
		return fmt.Errorf("uarch: %s: window %d smaller than issue width %d", c.Name, c.WindowSize, c.IssueWidth)
	case c.ChargeScale <= 0:
		return fmt.Errorf("uarch: %s: charge scale %v", c.Name, c.ChargeScale)
	case c.BaseCharge < 0 || c.IdleSlotCharge < 0:
		return fmt.Errorf("uarch: %s: negative charge parameters", c.Name)
	case c.CurrentSlewTau < 0:
		return fmt.Errorf("uarch: %s: negative current slew time constant", c.Name)
	}
	for u, n := range c.Units {
		if n < 1 {
			return fmt.Errorf("uarch: %s: no %v units", c.Name, isa.Unit(u))
		}
	}
	return nil
}

// CortexA72 returns a dual-issue-per-pipe out-of-order big-core model in
// the style of the Cortex-A72 (3-wide, moderate window).
func CortexA72() Config {
	var units [isa.NumUnits]int
	units[isa.UnitALU] = 2
	units[isa.UnitMulDiv] = 1
	units[isa.UnitFP] = 2
	units[isa.UnitSIMD] = 2
	units[isa.UnitLS] = 2
	units[isa.UnitBranch] = 1
	return Config{
		Name:           "cortex-a72",
		OutOfOrder:     true,
		IssueWidth:     3,
		WindowSize:     64,
		Units:          units,
		ChargeScale:    0.65,
		BaseCharge:     0.08e-9,
		IdleSlotCharge: 0.01e-9,
		CurrentSlewTau: 1.5e-9,
	}
}

// CortexA53 returns an in-order dual-issue LITTLE-core model in the style
// of the Cortex-A53.
func CortexA53() Config {
	var units [isa.NumUnits]int
	units[isa.UnitALU] = 2
	units[isa.UnitMulDiv] = 1
	units[isa.UnitFP] = 1
	units[isa.UnitSIMD] = 1
	units[isa.UnitLS] = 1
	units[isa.UnitBranch] = 1
	return Config{
		Name:           "cortex-a53",
		OutOfOrder:     false,
		IssueWidth:     2,
		WindowSize:     8,
		Units:          units,
		ChargeScale:    0.45,
		BaseCharge:     0.05e-9,
		IdleSlotCharge: 0.006e-9,
		CurrentSlewTau: 1.5e-9,
	}
}

// AthlonII returns a 45nm desktop out-of-order core model in the style of
// the Athlon II (K10): 3-wide with generous integer resources and a much
// larger per-operation charge.
func AthlonII() Config {
	var units [isa.NumUnits]int
	units[isa.UnitALU] = 3
	units[isa.UnitMulDiv] = 1
	units[isa.UnitFP] = 2
	units[isa.UnitSIMD] = 2
	units[isa.UnitLS] = 2
	units[isa.UnitBranch] = 1
	return Config{
		Name:           "athlon-ii-x4",
		OutOfOrder:     true,
		IssueWidth:     3,
		WindowSize:     72,
		Units:          units,
		ChargeScale:    0.30,
		BaseCharge:     0.35e-9,
		IdleSlotCharge: 0.04e-9,
		CurrentSlewTau: 1.5e-9,
	}
}

// Result is the outcome of executing a stress loop on a core model.
type Result struct {
	Config *Config
	// Charge is the per-cycle switching charge in coulombs, from cycle 0.
	Charge []float64
	// Warmup is the index into Charge where steady state begins (the first
	// cycle of the first post-warmup iteration).
	Warmup int
	// LoopCycles is the average steady-state cycle count per loop
	// iteration (including the loop-closing branch overhead).
	LoopCycles float64
	// IPC is the steady-state instructions per cycle.
	IPC float64
	// Iterations is the number of loop iterations executed in total.
	Iterations int
}

// SteadyCharge returns the steady-state portion of the charge trace.
func (r *Result) SteadyCharge() []float64 { return r.Charge[r.Warmup:] }

const warmupIters = 8

// Run executes the loop body seq on the core model until at least
// minSteadyCycles of steady-state execution have elapsed after the warmup
// iterations, finishing the iteration in flight.
func Run(cfg Config, seq []isa.Inst, minSteadyCycles int) (*Result, error) {
	return RunLineage(cfg, seq, minSteadyCycles, nil)
}

// RunLineage is Run with an optional lineage hint: when the caller knows
// the sequence shares a prefix with a previously simulated one (a bred GA
// child and its parent), the hint bounds how deep the checkpoint store
// probes for a resumable snapshot. Results are bit-identical to Run for any
// hint value, including nil.
func RunLineage(cfg Config, seq []isa.Inst, minSteadyCycles int, lin *Lineage) (*Result, error) {
	return RunLineageWindow(cfg, seq, minSteadyCycles, 0, lin)
}

// RunLineageWindow is RunLineage with a cache-priming window: when the trace
// cache is enabled and primeSteadyCycles exceeds minSteadyCycles, the one
// simulation backing this request is sized to cover primeSteadyCycles, so a
// follow-up request for any steady window up to that bound is served as a
// pure cache hit instead of a second simulation. The returned Result is
// bit-identical to RunLineage(cfg, seq, minSteadyCycles, lin) for any
// priming window; with the cache disabled the priming window is ignored.
func RunLineageWindow(cfg Config, seq []isa.Inst, minSteadyCycles, primeSteadyCycles int, lin *Lineage) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("uarch: empty instruction sequence")
	}
	if minSteadyCycles < 1 {
		return nil, fmt.Errorf("uarch: minSteadyCycles = %d", minSteadyCycles)
	}
	if traceCacheOn.Load() {
		return globalTraceCache.runWindow(cfg, seq, minSteadyCycles, primeSteadyCycles, lin)
	}
	hist, err := simulate(&cfg, seq, minSteadyCycles, lin)
	if err != nil {
		return nil, err
	}
	return hist.synth(minSteadyCycles)
}
