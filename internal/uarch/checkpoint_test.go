package uarch

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/isa"
)

// ckptTestEnv disables the trace cache (so RunLineage exercises the
// checkpointed simulate path directly), resets the checkpoint store and
// restores everything on cleanup.
func ckptTestEnv(t *testing.T) {
	t.Helper()
	prevTC := SetTraceCacheEnabled(false)
	prevCk := SetCheckpointsEnabled(true)
	ResetCheckpointStore()
	t.Cleanup(func() {
		SetTraceCacheEnabled(prevTC)
		SetCheckpointsEnabled(prevCk)
		ResetCheckpointStore()
		ResetTraceCache()
	})
}

// childAt breeds a deterministic child sharing exactly the first d
// instructions with the parent (the tail is drawn fresh, like a crossover
// suffix plus mutations).
func childAt(rng *rand.Rand, pool *isa.Pool, parent []isa.Inst, d int) []isa.Inst {
	child := append([]isa.Inst(nil), parent[:d]...)
	if d < len(parent) {
		child = append(child, pool.RandomSequence(rng, len(parent)-d)...)
	}
	return child
}

// TestCheckpointResumeBitIdentical is the tentpole property test: resuming
// a child from its parent's checkpoints produces results bit-identical to
// a fresh, checkpoint-free simulation — across configs, ISAs, divergence
// points below/at/between/above the snapshot interval, and lineage hints
// that overstate the shared prefix.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	ckptTestEnv(t)
	pools := map[string]*isa.Pool{"arm64": isa.ARM64Pool(), "x86": isa.X86Pool()}
	const steady = 700
	for _, cfg := range []Config{CortexA72(), CortexA53(), AthlonII()} {
		for pname, pool := range pools {
			rng := rand.New(rand.NewSource(97))
			parent := pool.RandomSequence(rng, 50)
			for _, d := range []int{3, 16, 17, 31, 32, 48, 50} {
				label := fmt.Sprintf("%s/%s d=%d", cfg.Name, pname, d)
				sibling := childAt(rng, pool, parent, d)
				child := childAt(rng, pool, parent, d)
				wantSibling := uncachedRun(t, cfg, sibling, steady)
				want := uncachedRun(t, cfg, child, steady)

				// Snapshots are stored only for prefixes with demonstrated
				// reuse: the parent's run marks its prefixes as requested, a
				// first sibling sharing the prefix stores the snapshots, and
				// the child under test resumes from them.
				ResetCheckpointStore()
				if _, err := RunLineage(cfg, parent, steady, nil); err != nil {
					t.Fatalf("%s: parent: %v", label, err)
				}
				gotSibling, err := RunLineage(cfg, sibling, steady, &Lineage{Diverge: d})
				if err != nil {
					t.Fatalf("%s: sibling: %v", label, err)
				}
				requireSameResult(t, label+" (sibling)", gotSibling, wantSibling)
				before := CheckpointStoreStats()
				got, err := RunLineage(cfg, child, steady, &Lineage{Diverge: d})
				if err != nil {
					t.Fatalf("%s: child: %v", label, err)
				}
				requireSameResult(t, label, got, want)
				after := CheckpointStoreStats()
				wantDepth := uint64(d - d%ckptInterval)
				if gotHits := after.Hits - before.Hits; d >= ckptInterval && gotHits != 1 {
					t.Fatalf("%s: %d checkpoint hits, want 1", label, gotHits)
				} else if d < ckptInterval && gotHits != 0 {
					t.Fatalf("%s: %d checkpoint hits for shallow divergence, want 0", label, gotHits)
				}
				if d >= ckptInterval && after.Hits == 1 && uint64(after.MeanResumeDepth) != wantDepth {
					t.Fatalf("%s: resume depth %.0f, want %d", label, after.MeanResumeDepth, wantDepth)
				}

				// A hint overstating the shared prefix must be harmless: hits
				// are content-verified, so the store can only resume from
				// boundaries that genuinely match.
				got2, err := RunLineage(cfg, child, steady, &Lineage{Diverge: len(child)})
				if err != nil {
					t.Fatalf("%s: overstated lineage: %v", label, err)
				}
				requireSameResult(t, label+" (overstated)", got2, want)

				// And so must no hint at all (probe uncapped).
				got3, err := RunLineage(cfg, child, steady, nil)
				if err != nil {
					t.Fatalf("%s: nil lineage: %v", label, err)
				}
				requireSameResult(t, label+" (nil hint)", got3, want)
			}
		}
	}
}

// TestCheckpointStatsCounters pins the counter semantics the CLIs report:
// a first run only marks its prefixes as requested (storing nothing, so
// one-shot random sequences never pay the snapshot cost), a second
// encounter of the same prefixes stores the snapshots, a resumed child
// hits, and the mean resume depth reflects the instructions skipped.
func TestCheckpointStatsCounters(t *testing.T) {
	ckptTestEnv(t)
	cfg := CortexA72()
	pool := isa.ARM64Pool()
	rng := rand.New(rand.NewSource(5))
	parent := pool.RandomSequence(rng, 48)
	if _, err := RunLineage(cfg, parent, 600, nil); err != nil {
		t.Fatal(err)
	}
	cs := CheckpointStoreStats()
	if cs.Misses != 1 || cs.Hits != 0 {
		t.Fatalf("after parent: hits=%d misses=%d, want 0/1", cs.Hits, cs.Misses)
	}
	if cs.Stored != 0 || cs.Entries != 0 { // first encounter only marks reuse
		t.Fatalf("after parent: stored=%d entries=%d, want 0/0", cs.Stored, cs.Entries)
	}
	if _, err := RunLineage(cfg, parent, 600, nil); err != nil {
		t.Fatal(err)
	}
	cs = CheckpointStoreStats()
	if cs.Stored != 3 || cs.Entries != 3 { // boundaries at 16, 32, 48
		t.Fatalf("after warm-up rerun: stored=%d entries=%d, want 3/3", cs.Stored, cs.Entries)
	}
	if cs.Cycles <= 0 {
		t.Fatalf("after warm-up rerun: %d cycles held", cs.Cycles)
	}
	child := childAt(rng, pool, parent, 37)
	if _, err := RunLineage(cfg, child, 600, &Lineage{Diverge: 37}); err != nil {
		t.Fatal(err)
	}
	cs = CheckpointStoreStats()
	if cs.Hits != 1 {
		t.Fatalf("after child: %d hits, want 1", cs.Hits)
	}
	if cs.MeanResumeDepth != 32 {
		t.Fatalf("mean resume depth %.1f, want 32", cs.MeanResumeDepth)
	}
	// Re-running the parent hits its own deepest snapshot.
	if _, err := RunLineage(cfg, parent, 600, nil); err != nil {
		t.Fatal(err)
	}
	cs = CheckpointStoreStats()
	if cs.Hits != 2 {
		t.Fatalf("after parent rerun: %d hits, want 2", cs.Hits)
	}
}

// TestCheckpointStoreEviction exercises the LRU budget directly: inserts
// past ckptMaxCycles evict the oldest entries, never the newest, and
// duplicate keys collapse.
func TestCheckpointStoreEviction(t *testing.T) {
	st := newCkptStore()
	per := ckptMaxCycles / 4
	for i := 0; i < 10; i++ {
		st.store(&ckptEntry{key: uint64(i), depth: ckptInterval, cycles: per})
	}
	if st.cycles > ckptMaxCycles {
		t.Fatalf("budget exceeded: %d cycles held > %d", st.cycles, ckptMaxCycles)
	}
	if st.evictions.Load() == 0 {
		t.Fatal("no evictions past the budget")
	}
	if _, ok := st.entries[9]; !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := st.entries[0]; ok {
		t.Fatal("oldest entry survived past the budget")
	}
	st.store(&ckptEntry{key: 9, depth: ckptInterval, cycles: per})
	if st.stored.Load() != 10 {
		t.Fatalf("stored=%d, want 10 (duplicate store is a no-op)", st.stored.Load())
	}
	n := 0
	for e := st.head; e != nil; e = e.next {
		n++
	}
	if n != len(st.entries) {
		t.Fatalf("LRU list has %d nodes for %d entries", n, len(st.entries))
	}
}

// TestCheckpointConcurrentResume runs many lineage-hinted children against
// a shared warm store concurrently; every result must match its serial
// reference (run under -race by the race target).
func TestCheckpointConcurrentResume(t *testing.T) {
	ckptTestEnv(t)
	cfg := CortexA72()
	pool := isa.ARM64Pool()
	rng := rand.New(rand.NewSource(11))
	parent := pool.RandomSequence(rng, 48)
	const steady = 600
	const nChildren = 16
	children := make([][]isa.Inst, nChildren)
	divs := make([]int, nChildren)
	want := make([]*Result, nChildren)
	for i := range children {
		divs[i] = 1 + rng.Intn(len(parent))
		children[i] = childAt(rng, pool, parent, divs[i])
		want[i] = uncachedRun(t, cfg, children[i], steady)
	}
	if _, err := RunLineage(cfg, parent, steady, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]*Result, nChildren)
	errs := make([]error, nChildren)
	var wg sync.WaitGroup
	for i := range children {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = RunLineage(cfg, children[i], steady, &Lineage{Diverge: divs[i]})
		}(i)
	}
	wg.Wait()
	for i := range children {
		if errs[i] != nil {
			t.Fatalf("child %d: %v", i, errs[i])
		}
		requireSameResult(t, fmt.Sprintf("concurrent child %d (d=%d)", i, divs[i]), got[i], want[i])
	}
}

// TestSteadyExtrapolationBitIdentical pins that fast-forwarding an exactly
// periodic steady state replicates what per-cycle simulation would have
// produced, bit for bit — across cores, ISAs, sequence lengths and steady
// windows — and that the fast path actually engages on GA-shaped runs.
func TestSteadyExtrapolationBitIdentical(t *testing.T) {
	ckptTestEnv(t)
	SetCheckpointsEnabled(false)
	pools := map[string]*isa.Pool{"arm64": isa.ARM64Pool(), "x86": isa.X86Pool()}
	fired := false
	for _, cfg := range []Config{CortexA72(), CortexA53(), AthlonII()} {
		for pname, pool := range pools {
			rng := rand.New(rand.NewSource(41))
			for _, seqLen := range []int{2, 5, 17, 50} {
				for _, steady := range []int{120, 700, 2500} {
					label := fmt.Sprintf("%s/%s len=%d steady=%d", cfg.Name, pname, seqLen, steady)
					seq := pool.RandomSequence(rng, seqLen)

					prev := SetSteadyExtrapolationEnabled(false)
					want := uncachedRun(t, cfg, seq, steady)
					SetSteadyExtrapolationEnabled(true)
					before := ExtrapolatedCycles()
					got := uncachedRun(t, cfg, seq, steady)
					if ExtrapolatedCycles() > before {
						fired = true
					}
					SetSteadyExtrapolationEnabled(prev)
					requireSameResult(t, label, got, want)
				}
			}
		}
	}
	if !fired {
		t.Fatal("steady-state extrapolation never engaged")
	}
}

// TestCheckpointDisabled pins that a lineage hint is inert while the store
// is off: same results, untouched counters.
func TestCheckpointDisabled(t *testing.T) {
	ckptTestEnv(t)
	SetCheckpointsEnabled(false)
	cfg := CortexA53()
	pool := isa.ARM64Pool()
	rng := rand.New(rand.NewSource(17))
	seq := pool.RandomSequence(rng, 40)
	want := uncachedRun(t, cfg, seq, 500)
	got, err := RunLineage(cfg, seq, 500, &Lineage{Diverge: 32})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "checkpoints off", got, want)
	cs := CheckpointStoreStats()
	if cs.Hits != 0 || cs.Misses != 0 || cs.Stored != 0 {
		t.Fatalf("disabled store touched: %+v", cs)
	}
}
