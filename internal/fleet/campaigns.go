package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// sweepShard is one fast-sweep grid point in checkpoint/JSON form. A nil
// core.SweepPoint (probe loop out of band at that clock) journals as
// InBand=false, so out-of-band points replay without re-measurement too.
type sweepShard struct {
	InBand  bool    `json:"in_band"`
	ClockHz float64 `json:"clock_hz,omitempty"`
	LoopHz  float64 `json:"loop_hz,omitempty"`
	PeakDBm float64 `json:"peak_dbm,omitempty"`
}

// ResonanceSweep runs the Section 5.3 fast sweep with the clock grid
// sharded across the fleet: each DVFS step is one campaign item, measured
// on whichever rig gets to it first, then assembled in grid order — the
// same argmax/centroid reduction FastResonanceSweep applies locally, so
// the fleet sweep is bit-identical to a single-rig sweep. Both sides of
// the shard boundary run core.Bench.SweepBatch — the rig handler as a
// single-point batch per SWEEPAT item, the SWEEPFULL fallback as one
// whole-grid batch — so every point is the same pure function of its
// snapped clock regardless of layout. Rigs without the per-point verb
// (pre-v3 daemons) are excluded at placement time; if no rig has it, the
// whole sweep routes to one rig unsharded.
func (f *Fleet) ResonanceSweep(domain string, activeCores, samples int) (*core.SweepResult, error) {
	caps, err := f.Caps(domain)
	if err != nil {
		return nil, err
	}
	steps := caps.ClockSteps()
	// Descending like core.SweepClockSteps: the paper sweeps 1.2 GHz down.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}

	anyCapable := false
	for _, r := range f.rigs {
		if !r.dead.Load() && sweepPointCapable(r.be) {
			anyCapable = true
			break
		}
	}
	if !anyCapable {
		// Whole-sweep fallback: one rig runs it exactly as a single-backend
		// caller would.
		return single(f, func(r *rig) (*core.SweepResult, error) {
			return r.be.ResonanceSweep(domain, activeCores, samples)
		})
	}

	st, err := f.State(domain)
	if err != nil {
		return nil, err
	}
	key := f.keyHash("sweep", func(h *detrand.Hash) {
		h.String(domain)
		h.Int(activeCores)
		h.Int(samples)
		h.Float64(st.SupplyV)
		h.Int(st.PoweredCores)
	})
	items := make([]uint64, len(steps))
	for i, clock := range steps {
		h := detrand.NewHash()
		h.Float64(clock)
		items[i] = h.Sum()
	}

	c := &campaign[sweepShard]{
		kind:     "sweep",
		key:      key,
		items:    items,
		eligible: func(r *rig) bool { return sweepPointCapable(r.be) },
		run: func(r *rig, i int) (sweepShard, error) {
			pt, err := r.be.SweepPoint(domain, activeCores, samples, steps[i])
			if err != nil {
				return sweepShard{}, err
			}
			if pt == nil {
				return sweepShard{}, nil
			}
			return sweepShard{InBand: true, ClockHz: pt.ClockHz, LoopHz: pt.LoopHz, PeakDBm: pt.PeakDBm}, nil
		},
	}
	shards, err := runCampaign(f, c)
	if err != nil {
		return nil, err
	}
	points := make([]*core.SweepPoint, len(shards))
	for i, sh := range shards {
		if sh.InBand {
			points[i] = &core.SweepPoint{ClockHz: sh.ClockHz, LoopHz: sh.LoopHz, PeakDBm: sh.PeakDBm}
		}
	}
	return core.AssembleSweep(points)
}

// vminShard is one V_MIN search result in checkpoint/JSON form. Trials are
// deliberately absent: the backend contract already populates them locally
// only, so a layout-independent fleet result must not carry them.
type vminShard struct {
	VminV         float64          `json:"vmin_v"`
	Outcome       vmin.FailureKind `json:"outcome"`
	MarginV       float64          `json:"margin_v"`
	DroopNominalV float64          `json:"droop_nominal_v"`
	Runs          []float64        `json:"runs"`
}

func (s vminShard) result() (*vmin.Result, []float64) {
	return &vmin.Result{
		VminV:         s.VminV,
		Outcome:       s.Outcome,
		MarginV:       s.MarginV,
		DroopNominalV: s.DroopNominalV,
	}, s.Runs
}

// Vmin runs one repeated V_MIN search as a single-item campaign: it lands
// on one rig, but inherits failover and checkpoint replay. The result's
// Trials field is always nil — fleet results must not depend on whether
// the shard happened to land on a Local rig.
func (f *Fleet) Vmin(domain string, load platform.Load, seed int64, repeats int) (*vmin.Result, []float64, error) {
	res, err := f.vminMany("vmin", domain, []platform.Load{load}, seed, repeats)
	if err != nil {
		return nil, nil, err
	}
	r, runs := res[0].result()
	return r, runs, nil
}

// VminMany runs an independent V_MIN search per workload, sharded across
// the fleet. Results are index-aligned with loads.
func (f *Fleet) VminMany(domain string, loads []platform.Load, seed int64, repeats int) ([]*vmin.Result, [][]float64, error) {
	shards, err := f.vminMany("vmin", domain, loads, seed, repeats)
	if err != nil {
		return nil, nil, err
	}
	results := make([]*vmin.Result, len(shards))
	runs := make([][]float64, len(shards))
	for i, sh := range shards {
		results[i], runs[i] = sh.result()
	}
	return results, runs, nil
}

func (f *Fleet) vminMany(kind, domain string, loads []platform.Load, seed int64, repeats int) ([]vminShard, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("fleet: no workloads")
	}
	st, err := f.State(domain)
	if err != nil {
		return nil, err
	}
	key := f.keyHash(kind, func(h *detrand.Hash) {
		h.String(domain)
		h.Uint64(uint64(seed))
		h.Int(repeats)
		h.Float64(st.ClockHz)
		h.Float64(st.SupplyV)
		h.Int(st.PoweredCores)
	})
	items := make([]uint64, len(loads))
	for i, l := range loads {
		items[i] = l.Hash()
	}
	c := &campaign[vminShard]{
		kind:  kind,
		key:   key,
		items: items,
		run: func(r *rig, i int) (vminShard, error) {
			res, runs, err := r.be.Vmin(domain, loads[i], seed, repeats)
			if err != nil {
				return vminShard{}, err
			}
			return vminShard{
				VminV:         res.VminV,
				Outcome:       res.Outcome,
				MarginV:       res.MarginV,
				DroopNominalV: res.DroopNominalV,
				Runs:          runs,
			}, nil
		},
	}
	return runCampaign(f, c)
}

// shmooShard is one shmoo lattice point in checkpoint/JSON form.
type shmooShard struct {
	ClockHz float64          `json:"clock_hz"`
	VminV   float64          `json:"vmin_v"`
	MarginV float64          `json:"margin_v"`
	Outcome vmin.FailureKind `json:"outcome"`
}

// VminShmoo traces the frequency/voltage boundary with the clock axis
// sharded across the fleet: each clock is one campaign item (a shmoo
// point's search is independent of its neighbours — same trial nonce,
// same jitter stream — so single-clock shards are exactly the lattice
// columns), merged in input order.
func (f *Fleet) VminShmoo(domain string, load platform.Load, seed int64, clocks []float64) ([]vmin.ShmooPoint, error) {
	grid, err := f.ShmooGrid(domain, []platform.Load{load}, seed, clocks)
	if err != nil {
		return nil, err
	}
	return grid[0], nil
}

// ShmooGrid shards a full workloads × clocks shmoo lattice across the
// fleet, one campaign item per (load, clock) cell. The result is
// index-aligned: grid[i][j] is loads[i] at clocks[j].
func (f *Fleet) ShmooGrid(domain string, loads []platform.Load, seed int64, clocks []float64) ([][]vmin.ShmooPoint, error) {
	if len(loads) == 0 || len(clocks) == 0 {
		return nil, fmt.Errorf("fleet: shmoo needs at least one workload and one clock")
	}
	st, err := f.State(domain)
	if err != nil {
		return nil, err
	}
	key := f.keyHash("shmoo", func(h *detrand.Hash) {
		h.String(domain)
		h.Uint64(uint64(seed))
		h.Float64(st.SupplyV)
		h.Int(st.PoweredCores)
	})
	type cell struct {
		load  platform.Load
		clock float64
	}
	cells := make([]cell, 0, len(loads)*len(clocks))
	items := make([]uint64, 0, len(loads)*len(clocks))
	for _, l := range loads {
		lh := l.Hash()
		for _, clk := range clocks {
			cells = append(cells, cell{load: l, clock: clk})
			h := detrand.NewHash()
			h.Uint64(lh)
			h.Float64(clk)
			items = append(items, h.Sum())
		}
	}
	c := &campaign[shmooShard]{
		kind:  "shmoo",
		key:   key,
		items: items,
		run: func(r *rig, i int) (shmooShard, error) {
			pts, err := r.be.VminShmoo(domain, cells[i].load, seed, []float64{cells[i].clock})
			if err != nil {
				return shmooShard{}, err
			}
			p := pts[0]
			return shmooShard{ClockHz: p.ClockHz, VminV: p.VminV, MarginV: p.MarginV, Outcome: p.Outcome}, nil
		},
	}
	shards, err := runCampaign(f, c)
	if err != nil {
		return nil, err
	}
	grid := make([][]vmin.ShmooPoint, len(loads))
	for i := range loads {
		row := make([]vmin.ShmooPoint, len(clocks))
		for j := range clocks {
			sh := shards[i*len(clocks)+j]
			row[j] = vmin.ShmooPoint{ClockHz: sh.ClockHz, VminV: sh.VminV, MarginV: sh.MarginV, Outcome: sh.Outcome}
		}
		grid[i] = row
	}
	return grid, nil
}
