package fleet

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/detrand"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/platform"
)

// fleetMeasurer shards GA fitness evaluation across the fleet. Each
// individual is one campaign item keyed by its load content hash (the same
// key the rig-side spectra cache and batch memo use), deduplicated before
// placement so identical post-mutation children cost one measurement
// fleet-wide. Breeding lineage hints are forwarded to rigs whose measurers
// can exploit them; the contract that lineage is a pure performance hint
// (same bytes either way) is what lets a hinted shard land on a
// lineage-blind remote without changing the result.
type fleetMeasurer struct {
	f    *Fleet
	spec backend.MeasurerSpec
	ms   map[*rig]ga.Measurer
}

// Measurer builds the fleet's GA fitness function. Capability is checked
// per rig at construction: a droop/ptp request on a voltage-blind domain
// fails here with the rig's own *backend.CapabilityError (the fleet never
// routes such shards), and a rig that cannot even answer is condemned
// rather than fatal.
func (f *Fleet) Measurer(spec backend.MeasurerSpec) (ga.Measurer, error) {
	ms := make(map[*rig]ga.Measurer, len(f.rigs))
	var lastErr error
	for _, r := range f.rigs {
		if r.dead.Load() {
			continue
		}
		m, err := r.be.Measurer(spec)
		if err != nil {
			if isDeterministicError(err) {
				return nil, err
			}
			r.failed.Add(1)
			if !r.dead.Swap(true) {
				f.failovers.Add(1)
			}
			lastErr = err
			continue
		}
		ms[r] = m
	}
	if len(ms) == 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("fleet: no rig could build a measurer: %w", lastErr)
		}
		return nil, fmt.Errorf("fleet: no live rigs")
	}
	return &fleetMeasurer{f: f, spec: spec, ms: ms}, nil
}

// Measure evaluates one sequence through the batch path, so the scalar GA
// driver inherits failover and checkpoint replay unchanged.
func (m *fleetMeasurer) Measure(seq []isa.Inst) (float64, float64, error) {
	res, err := m.MeasureBatch([]ga.BatchItem{{Seq: seq}}, 1)
	if err != nil {
		return 0, 0, err
	}
	return res[0].Fitness, res[0].DominantHz, nil
}

// MeasureLineage is Measure with the breeding hint attached.
func (m *fleetMeasurer) MeasureLineage(seq []isa.Inst, lin *ga.Lineage) (float64, float64, error) {
	res, err := m.MeasureBatch([]ga.BatchItem{{Seq: seq, Lin: lin}}, 1)
	if err != nil {
		return 0, 0, err
	}
	return res[0].Fitness, res[0].DominantHz, nil
}

// MeasureBatch evaluates a whole generation as one campaign: dedup by
// content, shard across rigs, merge by index. Identical to a single
// backend's MeasureBatch bit-for-bit at any rig count, slot count or
// steal schedule.
func (m *fleetMeasurer) MeasureBatch(items []ga.BatchItem, parallelism int) ([]ga.BatchResult, error) {
	if len(items) == 0 {
		return nil, nil
	}
	st, err := m.f.State(m.spec.Domain)
	if err != nil {
		return nil, err
	}
	key := m.f.keyHash("ga", func(h *detrand.Hash) {
		h.String(m.spec.Domain)
		h.String(string(m.spec.Metric))
		h.Int(m.spec.ActiveCores)
		h.Int(m.spec.Samples)
		h.Uint64(uint64(m.spec.DSOSeed))
		h.Float64(st.ClockHz)
		h.Float64(st.SupplyV)
		h.Int(st.PoweredCores)
	})

	// Dedup identical children: one shard per distinct sequence, every
	// duplicate index fans the shared result back out.
	hashes := make([]uint64, len(items))
	uniqOf := make(map[uint64]int, len(items))
	var uniq []int
	for i, it := range items {
		load := platform.Load{Seq: it.Seq, ActiveCores: m.spec.ActiveCores}
		hashes[i] = load.Hash()
		if _, ok := uniqOf[hashes[i]]; !ok {
			uniqOf[hashes[i]] = len(uniq)
			uniq = append(uniq, i)
		}
	}
	campaignItems := make([]uint64, len(uniq))
	for k, i := range uniq {
		campaignItems[k] = hashes[i]
	}

	c := &campaign[ga.BatchResult]{
		kind:     "ga",
		key:      key,
		items:    campaignItems,
		slots:    parallelism,
		eligible: func(r *rig) bool { return m.ms[r] != nil },
		run: func(r *rig, k int) (ga.BatchResult, error) {
			it := items[uniq[k]]
			rm := m.ms[r]
			var fit, hz float64
			var err error
			if lm, ok := rm.(ga.LineageMeasurer); ok && it.Lin != nil {
				fit, hz, err = lm.MeasureLineage(it.Seq, it.Lin)
			} else {
				fit, hz, err = rm.Measure(it.Seq)
			}
			if err != nil {
				return ga.BatchResult{}, err
			}
			return ga.BatchResult{Fitness: fit, DominantHz: hz}, nil
		},
	}
	uniqRes, err := runCampaign(m.f, c)
	if err != nil {
		return nil, err
	}
	out := make([]ga.BatchResult, len(items))
	for i := range items {
		out[i] = uniqRes[uniqOf[hashes[i]]]
	}
	return out, nil
}
