package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint is the fleet coordinator's durable campaign journal: one JSON
// line per completed shard, keyed by content exactly like PR 4's lineage
// checkpoints. A record names the campaign (a 64-bit hash of everything the
// result depends on except the item itself: kind, platform, domain,
// operating point, seeds, sample depth) and the item (the same 64-bit
// content key the spectra cache and batch memo already trust), so a resumed
// coordinator replays a hit only when both hashes match — a changed
// operating point or a mutated workload misses cleanly and re-measures.
//
// The journal is append-only. A torn final line (coordinator killed
// mid-write) is detected by JSON validity and dropped; every intact line
// stays usable. Because items are keyed by content rather than position,
// a GA elite that survives into the next generation replays for free, and
// two campaigns over overlapping grids share hits.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	done map[ckptKey]json.RawMessage

	hits, misses, dropped uint64
}

type ckptKey struct {
	campaign uint64
	item     uint64
}

type ckptRecord struct {
	Campaign string          `json:"campaign"`
	Item     string          `json:"item"`
	Result   json.RawMessage `json:"result"`
}

// OpenCheckpoint opens (creating if needed) a campaign journal and loads
// every intact record into the in-memory index.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: open checkpoint: %w", err)
	}
	c := &Checkpoint{f: f, done: make(map[ckptKey]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec ckptRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			c.dropped++ // torn or corrupt line: ignore, re-measure covers it
			continue
		}
		var key ckptKey
		if _, err := fmt.Sscanf(rec.Campaign, "%x", &key.campaign); err != nil {
			c.dropped++
			continue
		}
		if _, err := fmt.Sscanf(rec.Item, "%x", &key.item); err != nil {
			c.dropped++
			continue
		}
		c.done[key] = append(json.RawMessage(nil), rec.Result...)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: read checkpoint: %w", err)
	}
	c.w = bufio.NewWriter(f)
	return c, nil
}

// Lookup returns the stored result for (campaign, item) if present,
// unmarshalled into out.
func (c *Checkpoint) Lookup(campaign, item uint64, out any) bool {
	c.mu.Lock()
	raw, ok := c.done[ckptKey{campaign, item}]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false // unreadable payload: treat as a miss
	}
	return true
}

// Add journals one completed shard and flushes it to disk, so a coordinator
// killed right after sees the record on restart.
func (c *Checkpoint) Add(campaign, item uint64, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint result: %w", err)
	}
	rec := ckptRecord{
		Campaign: fmt.Sprintf("%016x", campaign),
		Item:     fmt.Sprintf("%016x", item),
		Result:   raw,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint record: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := ckptKey{campaign, item}
	if _, ok := c.done[key]; ok {
		return nil // already journaled (speculative duplicate finished twice)
	}
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("fleet: checkpoint write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("fleet: checkpoint flush: %w", err)
	}
	c.done[key] = raw
	return nil
}

// Len reports the number of journaled shards.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Stats returns hit/miss/dropped counters for -v output.
func (c *Checkpoint) Stats() (hits, misses, dropped uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.dropped
}

// Close flushes and releases the journal file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	ferr := c.w.Flush()
	cerr := c.f.Close()
	c.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
