package fleet_test

import (
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/lab"
	"repro/internal/lab/chaos"
	"repro/internal/platform"
	"repro/internal/vmin"
)

// newBench builds the reference bench: Juno, seed 1, 3-sample averaging —
// the same instrument state behind every rig, local or remote, so a fleet
// of them is observationally one rig.
func newBench(t *testing.T) *core.Bench {
	t.Helper()
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBench(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 3
	return b
}

func localRig(t *testing.T) *backend.Local {
	t.Helper()
	b := newBench(t)
	b.Parallelism = 2
	l, err := backend.NewLocal(b)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func fastOpts() lab.Options {
	return lab.Options{
		DialTimeout: 2 * time.Second,
		IOTimeout:   500 * time.Millisecond,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

// startDaemon serves a reference bench on a loopback port.
func startDaemon(t *testing.T) (string, *lab.Server) {
	t.Helper()
	srv, err := lab.NewServer(newBench(t))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { _ = srv.Shutdown() })
	return ln.Addr().String(), srv
}

// remoteRig dials a fresh daemon through a chaos proxy (fault-free unless
// the test injects) and returns the backend plus the proxy for later
// killing.
func remoteRig(t *testing.T) (*backend.Remote, *chaos.Proxy) {
	t.Helper()
	addr, _ := startDaemon(t)
	proxy, err := chaos.New(addr, chaos.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })
	r, err := backend.NewRemote(proxy.Addr(), 2, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	r.Samples = 3
	t.Cleanup(func() { _ = r.Close() })
	return r, proxy
}

func newFleet(t *testing.T, opts fleet.Options, rigs ...fleet.Rig) *fleet.Fleet {
	t.Helper()
	f, err := fleet.New(rigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const testDomain = "cortex-a72"

// population builds GA batch items with duplicates mixed in, the shape a
// generation hands MeasureBatch.
func population(t *testing.T, be backend.Backend, n int) []ga.BatchItem {
	t.Helper()
	caps, err := be.Caps(testDomain)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	items := make([]ga.BatchItem, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, ga.BatchItem{Seq: caps.Pool().RandomSequence(rng, 24)})
	}
	// Exact duplicates: converged clones.
	items[n-1] = ga.BatchItem{Seq: items[0].Seq}
	items[n-2] = ga.BatchItem{Seq: items[1].Seq}
	return items
}

func emSpec() backend.MeasurerSpec {
	return backend.MeasurerSpec{Domain: testDomain, Metric: backend.MetricEM, ActiveCores: 2, Samples: 3}
}

func batchMeasurer(t *testing.T, be backend.Backend) ga.BatchMeasurer {
	t.Helper()
	m, err := be.Measurer(emSpec())
	if err != nil {
		t.Fatal(err)
	}
	bm, ok := m.(ga.BatchMeasurer)
	if !ok {
		t.Fatalf("%T measurer is not a BatchMeasurer", be)
	}
	return bm
}

// TestFleetRejectsMixedPlatforms pins the homogeneity check: the
// determinism argument needs interchangeable rigs, so a juno/amd mix is a
// configuration error at construction, not a placement puzzle at runtime.
func TestFleetRejectsMixedPlatforms(t *testing.T) {
	juno := localRig(t)
	amdPlat, err := platform.AMDDesktop()
	if err != nil {
		t.Fatal(err)
	}
	amdBench, err := core.NewBench(amdPlat, 1)
	if err != nil {
		t.Fatal(err)
	}
	amd, err := backend.NewLocal(amdBench)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.New([]fleet.Rig{{Name: "a", Backend: juno}, {Name: "b", Backend: amd}}, fleet.Options{}); err == nil {
		t.Fatal("mixed-platform fleet accepted")
	}
}

// TestFleetGAMatchesSingle is the tentpole determinism property for the
// GA path: a generation evaluated by a fleet — any rig mix, any slot
// count, any steal schedule — is bit-identical to the same generation on
// one local backend.
func TestFleetGAMatchesSingle(t *testing.T) {
	single := localRig(t)
	items := population(t, single, 16)
	want, err := batchMeasurer(t, single).MeasureBatch(items, 2)
	if err != nil {
		t.Fatal(err)
	}

	remote, _ := remoteRig(t)
	layouts := []struct {
		name  string
		slots int
		rigs  []fleet.Rig
	}{
		{"two-local-slots1", 1, []fleet.Rig{{Name: "l0", Backend: localRig(t)}, {Name: "l1", Backend: localRig(t)}}},
		{"two-local-slots4", 4, []fleet.Rig{{Name: "l0", Backend: localRig(t)}, {Name: "l1", Backend: localRig(t)}}},
		{"local+remote", 2, []fleet.Rig{{Name: "local", Backend: localRig(t)}, {Name: "remote", Backend: remote}}},
	}
	for _, lay := range layouts {
		t.Run(lay.name, func(t *testing.T) {
			f := newFleet(t, fleet.Options{Slots: lay.slots}, lay.rigs...)
			got, err := batchMeasurer(t, f).MeasureBatch(items, lay.slots)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("fleet generation differs from single-backend generation")
			}
		})
	}
}

// noPointRig hides per-point sweep capability, standing in for a pre-v3
// daemon.
type noPointRig struct{ backend.Backend }

func (noPointRig) SweepPointCapable() bool { return false }

// TestFleetSweepMatchesSingle checks the sharded fast sweep (and its
// whole-sweep fallback for fleets without the per-point verb) against the
// single-backend sweep, bit for bit.
func TestFleetSweepMatchesSingle(t *testing.T) {
	single := localRig(t)
	want, err := single.ResonanceSweep(testDomain, 2, 0)
	if err != nil {
		t.Fatal(err)
	}

	remote, _ := remoteRig(t)
	f := newFleet(t, fleet.Options{Slots: 2},
		fleet.Rig{Name: "local", Backend: localRig(t)},
		fleet.Rig{Name: "remote", Backend: remote})
	got, err := f.ResonanceSweep(testDomain, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded fleet sweep differs from single-backend sweep")
	}

	// No rig point-capable: the fleet must fall back to routing the whole
	// sweep to one rig, with the same answer.
	fb := newFleet(t, fleet.Options{Slots: 2},
		fleet.Rig{Name: "old", Backend: noPointRig{localRig(t)}})
	got2, err := fb.ResonanceSweep(testDomain, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("whole-sweep fallback differs from single-backend sweep")
	}
}

// TestFleetVminAndShmooMatchSingle checks the V_MIN surfaces: sharded
// shmoo lattices and workload campaigns agree with the single-backend
// answers (modulo Trials, which the fleet strips for layout independence).
func TestFleetVminAndShmooMatchSingle(t *testing.T) {
	single := localRig(t)
	caps, err := single.Caps(testDomain)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	loads := []platform.Load{
		{Seq: caps.Pool().RandomSequence(rng, 24), ActiveCores: 2},
		{Seq: caps.Pool().RandomSequence(rng, 24), ActiveCores: 2},
	}
	steps := caps.ClockSteps()
	clocks := []float64{steps[len(steps)-1], steps[len(steps)/2]}

	remote, _ := remoteRig(t)
	f := newFleet(t, fleet.Options{Slots: 2},
		fleet.Rig{Name: "local", Backend: localRig(t)},
		fleet.Rig{Name: "remote", Backend: remote})

	wantShmoo, err := single.VminShmoo(testDomain, loads[0], 3, clocks)
	if err != nil {
		t.Fatal(err)
	}
	gotShmoo, err := f.VminShmoo(testDomain, loads[0], 3, clocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotShmoo, wantShmoo) {
		t.Fatal("fleet shmoo differs from single-backend shmoo")
	}

	grid, err := f.ShmooGrid(testDomain, loads, 3, clocks)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range loads {
		want, err := single.VminShmoo(testDomain, l, 3, clocks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(grid[i], want) {
			t.Fatalf("shmoo grid row %d differs from single-backend shmoo", i)
		}
	}

	results, runs, err := f.VminMany(testDomain, loads, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range loads {
		wres, wruns, err := single.Vmin(testDomain, l, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		wres.Trials = nil // fleet results are layout-independent
		if !reflect.DeepEqual(results[i], wres) || !reflect.DeepEqual(runs[i], wruns) {
			t.Fatalf("fleet vmin of load %d differs from single-backend search", i)
		}
	}
}

// killerRig forwards to the wrapped backend until its countdown reaches
// zero, then assassinates the rig's transport (closing the chaos proxy, so
// reconnects are refused) and lets the in-flight call fail naturally.
type killerRig struct {
	backend.Backend
	countdown atomic.Int64
	kill      func()
}

func (k *killerRig) tick() {
	if k.countdown.Add(-1) == 0 {
		k.kill()
	}
}

func (k *killerRig) SweepPointCapable() bool { return true }

func (k *killerRig) SweepPoint(domain string, cores, samples int, clockHz float64) (*core.SweepPoint, error) {
	k.tick()
	return k.Backend.SweepPoint(domain, cores, samples, clockHz)
}

type killerMeasurer struct {
	k *killerRig
	m ga.Measurer
}

func (km killerMeasurer) Measure(seq []isa.Inst) (float64, float64, error) {
	km.k.tick()
	return km.m.Measure(seq)
}

func (k *killerRig) Measurer(spec backend.MeasurerSpec) (ga.Measurer, error) {
	m, err := k.Backend.Measurer(spec)
	if err != nil {
		return nil, err
	}
	return killerMeasurer{k: k, m: m}, nil
}

// TestFleetChaosKillMidGeneration is the acceptance gate: a rig dies
// partway through a GA generation (its proxy closed and daemon shut down
// after a few measurements), and the campaign must fail over — requeueing
// the dead rig's shards onto the survivor — and still produce the exact
// single-backend result.
func TestFleetChaosKillMidGeneration(t *testing.T) {
	single := localRig(t)
	items := population(t, single, 16)
	want, err := batchMeasurer(t, single).MeasureBatch(items, 2)
	if err != nil {
		t.Fatal(err)
	}

	remote, proxy := remoteRig(t)
	// Both of the doomed rig's slots acquire an item the moment the
	// campaign opens (the queue is far deeper than the slot count), so a
	// countdown of 2 is guaranteed to fire while shards are in flight.
	killer := &killerRig{Backend: remote, kill: func() { _ = proxy.Close() }}
	killer.countdown.Store(2)

	f := newFleet(t, fleet.Options{Slots: 2},
		fleet.Rig{Name: "local", Backend: localRig(t)},
		fleet.Rig{Name: "doomed", Backend: killer})
	got, err := batchMeasurer(t, f).MeasureBatch(items, 2)
	if err != nil {
		t.Fatalf("campaign failed instead of failing over: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-failover generation differs from single-backend generation")
	}
	if f.LiveRigs() != 1 {
		t.Fatalf("%d live rigs after the kill, want 1", f.LiveRigs())
	}
}

// TestFleetChaosKillMidSweep kills a rig partway through a sharded clock
// grid; the surviving rig must finish the sweep with the single-backend
// answer.
func TestFleetChaosKillMidSweep(t *testing.T) {
	single := localRig(t)
	want, err := single.ResonanceSweep(testDomain, 2, 0)
	if err != nil {
		t.Fatal(err)
	}

	remote, proxy := remoteRig(t)
	killer := &killerRig{Backend: remote, kill: func() { _ = proxy.Close() }}
	killer.countdown.Store(2)

	f := newFleet(t, fleet.Options{Slots: 2},
		fleet.Rig{Name: "local", Backend: localRig(t)},
		fleet.Rig{Name: "doomed", Backend: killer})
	got, err := f.ResonanceSweep(testDomain, 2, 0)
	if err != nil {
		t.Fatalf("sweep failed instead of failing over: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-failover sweep differs from single-backend sweep")
	}
	if f.LiveRigs() != 1 {
		t.Fatalf("%d live rigs after the kill, want 1", f.LiveRigs())
	}
}

// countingRig counts the measurements that actually reach the wrapped
// backend, so resume tests can prove shards were replayed, not re-run.
type countingRig struct {
	backend.Backend
	calls atomic.Int64
}

type countingMeasurer struct {
	c *countingRig
	m ga.Measurer
}

func (cm countingMeasurer) Measure(seq []isa.Inst) (float64, float64, error) {
	cm.c.calls.Add(1)
	return cm.m.Measure(seq)
}

func (c *countingRig) Measurer(spec backend.MeasurerSpec) (ga.Measurer, error) {
	m, err := c.Backend.Measurer(spec)
	if err != nil {
		return nil, err
	}
	return countingMeasurer{c: c, m: m}, nil
}

func (c *countingRig) Vmin(domain string, load platform.Load, seed int64, repeats int) (*vmin.Result, []float64, error) {
	c.calls.Add(1)
	return c.Backend.Vmin(domain, load, seed, repeats)
}

// TestFleetCheckpointResume restarts the coordinator between two identical
// campaigns sharing a journal: the second run must replay every shard —
// zero new measurements — and return byte-identical results, proving the
// JSON round-trip is exact and the content keys match.
func TestFleetCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	items := population(t, localRig(t), 12)
	const salt = 42

	run := func() ([]ga.BatchResult, *vmin.Result, int64) {
		ckpt, err := fleet.OpenCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		rig := &countingRig{Backend: localRig(t)}
		f := newFleet(t, fleet.Options{Slots: 2, Salt: salt, Checkpoint: ckpt},
			fleet.Rig{Name: "local", Backend: rig})
		defer f.Close()
		res, err := batchMeasurer(t, f).MeasureBatch(items, 2)
		if err != nil {
			t.Fatal(err)
		}
		load := platform.Load{Seq: items[0].Seq, ActiveCores: 2}
		vres, _, err := f.Vmin(testDomain, load, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res, vres, rig.calls.Load()
	}

	first, firstVmin, firstCalls := run()
	if firstCalls == 0 {
		t.Fatal("first run measured nothing; the journal cannot have content")
	}
	second, secondVmin, secondCalls := run()
	if secondCalls != 0 {
		t.Fatalf("resumed run re-measured %d shards, want 0 (checkpoint replay)", secondCalls)
	}
	if !reflect.DeepEqual(second, first) || !reflect.DeepEqual(secondVmin, firstVmin) {
		t.Fatal("replayed results differ from measured results")
	}

	// A different salt (different run identity: other seed) must miss.
	ckpt, err := fleet.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rig := &countingRig{Backend: localRig(t)}
	f := newFleet(t, fleet.Options{Slots: 2, Salt: salt + 1, Checkpoint: ckpt},
		fleet.Rig{Name: "local", Backend: rig})
	defer f.Close()
	if _, err := batchMeasurer(t, f).MeasureBatch(items, 2); err != nil {
		t.Fatal(err)
	}
	if rig.calls.Load() == 0 {
		t.Fatal("campaign with a different salt replayed another run's shards")
	}
}

// TestCheckpointToleratesTornTail pins crash recovery: a journal whose
// final line was cut mid-write must load every intact record and drop the
// torn one.
func TestCheckpointToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	ckpt, err := fleet.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Add(1, 2, map[string]float64{"x": 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Add(1, 3, map[string]float64{"x": 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString(`{"campaign":"0000000000000001","item":"00000000000`); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	re, err := fleet.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reloaded %d records, want 2 (torn tail dropped)", re.Len())
	}
	var out map[string]float64
	if !re.Lookup(1, 2, &out) || out["x"] != 1.5 {
		t.Fatal("intact record did not replay")
	}
	if re.Lookup(1, 4, &out) {
		t.Fatal("phantom record replayed")
	}
}

// TestFleetCapabilityPlacement pins capability-aware placement at its
// root: a droop measurer request on a voltage-blind domain fails with the
// typed *CapabilityError instead of being routed anywhere.
func TestFleetCapabilityPlacement(t *testing.T) {
	single := localRig(t)
	f := newFleet(t, fleet.Options{Slots: 1}, fleet.Rig{Name: "local", Backend: localRig(t)})
	blind := ""
	for _, dom := range single.Domains() {
		caps, err := single.Caps(dom)
		if err != nil {
			t.Fatal(err)
		}
		if caps.DSOKind == "" {
			blind = dom
			break
		}
	}
	if blind == "" {
		t.Skip("no voltage-blind domain on this platform")
	}
	_, err := f.Measurer(backend.MeasurerSpec{Domain: blind, Metric: backend.MetricDroop, ActiveCores: 1, Samples: 3})
	if !backend.IsCapabilityError(err) {
		t.Fatalf("droop on voltage-blind domain: %v, want *CapabilityError", err)
	}
}

// TestFleetThreeRigShardLayout pins the batched campaign paths through a
// wider shard surface: three rigs (two local, one remote daemon behind a
// chaos proxy) carve up the sweep grid and a shmoo lattice with duplicate
// clock requests. Every rig-side point runs the batched evaluators
// (single-point SweepBatch, one-cell Shmoo), so this is the end-to-end
// check that batch economics never leak into values at any shard layout.
func TestFleetThreeRigShardLayout(t *testing.T) {
	single := localRig(t)
	wantSweep, err := single.ResonanceSweep(testDomain, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := single.Caps(testDomain)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	load := platform.Load{Seq: caps.Pool().RandomSequence(rng, 24), ActiveCores: 2}
	steps := caps.ClockSteps()
	// Duplicates included: the lattice dedup must survive sharding.
	clocks := []float64{steps[len(steps)-1], steps[len(steps)/2], steps[len(steps)-1]}
	wantShmoo, err := single.VminShmoo(testDomain, load, 3, clocks)
	if err != nil {
		t.Fatal(err)
	}
	wantVmin, wantRuns, err := single.Vmin(testDomain, load, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantVmin.Trials = nil // fleet results are layout-independent

	remote, _ := remoteRig(t)
	f := newFleet(t, fleet.Options{Slots: 2},
		fleet.Rig{Name: "l0", Backend: localRig(t)},
		fleet.Rig{Name: "l1", Backend: localRig(t)},
		fleet.Rig{Name: "remote", Backend: remote})

	gotSweep, err := f.ResonanceSweep(testDomain, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSweep, wantSweep) {
		t.Fatal("3-rig sweep differs from single-backend sweep")
	}
	gotShmoo, err := f.VminShmoo(testDomain, load, 3, clocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotShmoo, wantShmoo) {
		t.Fatal("3-rig shmoo differs from single-backend shmoo")
	}
	if !reflect.DeepEqual(gotShmoo[0], gotShmoo[2]) {
		t.Fatal("duplicate clock requests diverged across the shard layout")
	}
	results, runs, err := f.VminMany(testDomain, []platform.Load{load}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0], wantVmin) || !reflect.DeepEqual(runs[0], wantRuns) {
		t.Fatal("3-rig vmin differs from single-backend search")
	}
}
