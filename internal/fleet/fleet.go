// Package fleet shards measurement campaigns — GA generations, fast-sweep
// grids, shmoo lattices, V_MIN workload lists — across a set of
// backend.Backends: in-process benches and remote lab daemons, mixed
// freely. The coordinator places shards capability-aware (a rig that
// cannot satisfy a shard never sees it), steals work dynamically so a slow
// rig never gates a campaign, replaces the shards of a dying rig through
// the surviving ones, and journals completed shards to a content-hashed
// checkpoint so a killed coordinator resumes by replay. Because every rig
// is observationally equivalent (same platform, same seeds — the backend
// layer's contract) and results merge by item index, a fleet run is
// bit-identical to a single-backend run at any shard layout.
//
// Fleet itself implements backend.Backend, so everything above the backend
// seam — the GA driver, the sweep and V_MIN campaign code, the CLIs — runs
// unchanged whether it is handed one bench or twelve rigs.
package fleet

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/instrument"
	"repro/internal/lab"
	"repro/internal/par"
	"repro/internal/platform"
)

// Fleet is a Backend: everything above the seam runs unchanged.
var _ backend.Backend = (*Fleet)(nil)

// Rig names one member backend. The name appears in -v statistics and
// error messages ("local", "juno-a:9000", ...).
type Rig struct {
	Name    string
	Backend backend.Backend
}

// Options configures a Fleet.
type Options struct {
	// Slots is the number of concurrent shards per rig (<= 0 resolves to
	// GOMAXPROCS, like every other parallelism knob in the repo).
	Slots int
	// Salt folds coordinator-side run identity that the Backend surface
	// cannot observe — the bench seed behind a Local rig, the daemon seed
	// behind a Remote one — into every campaign key, so checkpoints from
	// runs with different seeds never alias.
	Salt uint64
	// Checkpoint, when non-nil, journals completed shards. The fleet takes
	// ownership and closes it with Close.
	Checkpoint *Checkpoint
}

// rig is the coordinator's view of one member: the backend, its death flag
// (a rig once declared dead stays dead for the coordinator's lifetime; a
// recovered target needs a coordinator restart), and its work counters.
type rig struct {
	name string
	be   backend.Backend

	dead      atomic.Bool
	completed atomic.Uint64
	stolen    atomic.Uint64
	failed    atomic.Uint64
}

// Fleet is a set of observationally equivalent rigs behind one
// backend.Backend face.
type Fleet struct {
	rigs  []*rig
	slots int
	salt  uint64
	ckpt  *Checkpoint

	platformName string
	domains      []string

	campaigns  atomic.Uint64
	itemsTotal atomic.Uint64
	measured   atomic.Uint64
	replayed   atomic.Uint64
	steals     atomic.Uint64
	requeues   atomic.Uint64
	failovers  atomic.Uint64
}

// New validates the member set and builds a fleet. Every rig must present
// the same platform (name and domain list): the determinism story rests on
// rigs being interchangeable, so a mixed fleet is a configuration error,
// not a placement problem.
func New(rigs []Rig, opts Options) (*Fleet, error) {
	if len(rigs) == 0 {
		return nil, fmt.Errorf("fleet: need at least one rig")
	}
	f := &Fleet{
		slots: par.Workers(opts.Slots),
		salt:  opts.Salt,
		ckpt:  opts.Checkpoint,
	}
	for i, r := range rigs {
		if r.Backend == nil {
			return nil, fmt.Errorf("fleet: rig %d (%s) has no backend", i, r.Name)
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("rig%d", i)
		}
		f.rigs = append(f.rigs, &rig{name: name, be: r.Backend})
	}
	f.platformName = f.rigs[0].be.PlatformName()
	f.domains = f.rigs[0].be.Domains()
	for _, r := range f.rigs[1:] {
		if p := r.be.PlatformName(); p != f.platformName {
			return nil, fmt.Errorf("fleet: rig %s runs platform %q, rig %s runs %q — a fleet must be homogeneous",
				f.rigs[0].name, f.platformName, r.name, p)
		}
		if ds := r.be.Domains(); !reflect.DeepEqual(ds, f.domains) {
			return nil, fmt.Errorf("fleet: rig %s exposes domains %v, rig %s exposes %v",
				f.rigs[0].name, f.domains, r.name, ds)
		}
	}
	return f, nil
}

// Size reports the number of member rigs (dead or alive).
func (f *Fleet) Size() int { return len(f.rigs) }

// LiveRigs reports how many rigs are still accepting work.
func (f *Fleet) LiveRigs() int {
	n := 0
	for _, r := range f.rigs {
		if !r.dead.Load() {
			n++
		}
	}
	return n
}

// firstLive returns the first rig still accepting work. Single-shot
// operations (EMMeasure, MonitorAll, State) route here: any live rig gives
// the same bytes, so "first live" is both deterministic and failover-safe.
func (f *Fleet) firstLive() (*rig, error) {
	for _, r := range f.rigs {
		if !r.dead.Load() {
			return r, nil
		}
	}
	return nil, fmt.Errorf("fleet: no live rigs")
}

// single runs fn against live rigs in order until one succeeds, condemning
// rigs that fail with transport-class errors along the way. Deterministic
// errors (capability, target-rejected) propagate immediately.
func single[T any](f *Fleet, fn func(r *rig) (T, error)) (T, error) {
	var zero T
	for {
		r, err := f.firstLive()
		if err != nil {
			return zero, err
		}
		v, err := fn(r)
		if err == nil {
			return v, nil
		}
		if isDeterministicError(err) {
			return zero, err
		}
		r.failed.Add(1)
		if !r.dead.Swap(true) {
			f.failovers.Add(1)
		}
	}
}

// keyHash builds a campaign key: the campaign kind, the platform, the
// coordinator salt, then whatever the caller folds in (domain, operating
// point, seeds, sample depth).
func (f *Fleet) keyHash(kind string, fold func(h *detrand.Hash)) uint64 {
	h := detrand.NewHash()
	h.String("fleet:" + kind)
	h.String(f.platformName)
	h.Uint64(f.salt)
	if fold != nil {
		fold(h)
	}
	return h.Sum()
}

// PlatformName identifies the (shared) platform.
func (f *Fleet) PlatformName() string { return f.platformName }

// Domains lists the (shared) voltage domains.
func (f *Fleet) Domains() []string {
	return append([]string(nil), f.domains...)
}

// Caps returns the fleet's capability record for a domain: the first live
// rig's record, with Lineage reported only when every live rig supports it
// (a capability the fleet advertises must hold wherever a shard lands).
func (f *Fleet) Caps(domain string) (backend.Caps, error) {
	r, err := f.firstLive()
	if err != nil {
		return backend.Caps{}, err
	}
	caps, err := r.be.Caps(domain)
	if err != nil {
		return backend.Caps{}, err
	}
	for _, o := range f.rigs {
		if o.dead.Load() || o == r || !caps.Lineage {
			continue
		}
		oc, err := o.be.Caps(domain)
		if err != nil {
			return backend.Caps{}, err
		}
		caps.Lineage = caps.Lineage && oc.Lineage
	}
	return caps, nil
}

// State returns the domain's operating point (identical on every rig, so
// the first live one answers).
func (f *Fleet) State(domain string) (backend.DomainState, error) {
	return single(f, func(r *rig) (backend.DomainState, error) {
		return r.be.State(domain)
	})
}

// broadcast applies a setter to every live rig, so the fleet's operating
// point moves in lockstep. The first error wins but every rig is still
// attempted; a transport failure condemns that rig rather than desyncing
// the survivors.
func (f *Fleet) broadcast(op string, fn func(be backend.Backend) error) error {
	var firstErr error
	any := false
	for _, r := range f.rigs {
		if r.dead.Load() {
			continue
		}
		any = true
		err := fn(r.be)
		if err == nil {
			continue
		}
		if !isDeterministicError(err) {
			r.failed.Add(1)
			if !r.dead.Swap(true) {
				f.failovers.Add(1)
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("fleet: %s on rig %s: %w", op, r.name, err)
		}
	}
	if !any {
		return fmt.Errorf("fleet: no live rigs")
	}
	return firstErr
}

// SetClock adjusts the domain's DVFS point on every rig.
func (f *Fleet) SetClock(domain string, hz float64) error {
	return f.broadcast("set clock", func(be backend.Backend) error { return be.SetClock(domain, hz) })
}

// SetSupply adjusts the domain's supply setpoint on every rig.
func (f *Fleet) SetSupply(domain string, volts float64) error {
	return f.broadcast("set supply", func(be backend.Backend) error { return be.SetSupply(domain, volts) })
}

// SetPoweredCores power-gates cores on every rig.
func (f *Fleet) SetPoweredCores(domain string, n int) error {
	return f.broadcast("set powered cores", func(be backend.Backend) error { return be.SetPoweredCores(domain, n) })
}

// Reset restores the nominal operating point on every rig.
func (f *Fleet) Reset(domain string) error {
	return f.broadcast("reset", func(be backend.Backend) error { return be.Reset(domain) })
}

// EMMeasure takes one averaged EM measurement on the first live rig.
func (f *Fleet) EMMeasure(domain string, load platform.Load) (*instrument.Measurement, error) {
	return single(f, func(r *rig) (*instrument.Measurement, error) {
		return r.be.EMMeasure(domain, load)
	})
}

// EMMeasureN is EMMeasure with explicit averaging.
func (f *Fleet) EMMeasureN(domain string, load platform.Load, samples int) (*instrument.Measurement, error) {
	return single(f, func(r *rig) (*instrument.Measurement, error) {
		return r.be.EMMeasureN(domain, load, samples)
	})
}

// SweepPoint measures one fast-sweep point on the first live rig that has
// the per-point verb.
func (f *Fleet) SweepPoint(domain string, activeCores, samples int, clockHz float64) (*core.SweepPoint, error) {
	for _, r := range f.rigs {
		if r.dead.Load() || !sweepPointCapable(r.be) {
			continue
		}
		return r.be.SweepPoint(domain, activeCores, samples, clockHz)
	}
	return nil, fmt.Errorf("fleet: no live rig supports per-point sweeps (redeploy labd at protocol v3+)")
}

// MonitorAll captures one combined spectrum on the first live rig.
func (f *Fleet) MonitorAll(loads map[string]platform.Load) (*instrument.Sweep, error) {
	return single(f, func(r *rig) (*instrument.Sweep, error) {
		return r.be.MonitorAll(loads)
	})
}

// EvalStats aggregates the fleet scheduler's counters, the checkpoint
// journal's counters, and every live rig's own statistics (prefixed by rig
// name).
func (f *Fleet) EvalStats(domain string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d rigs (%d live), %d campaigns, %d items: %d measured, %d replayed, %d stolen, %d requeued, %d failovers",
		len(f.rigs), f.LiveRigs(), f.campaigns.Load(), f.itemsTotal.Load(),
		f.measured.Load(), f.replayed.Load(), f.steals.Load(), f.requeues.Load(), f.failovers.Load())
	if f.ckpt != nil {
		hits, misses, dropped := f.ckpt.Stats()
		fmt.Fprintf(&b, "\nfleet checkpoint: %d shards journaled, %d hits, %d misses, %d dropped lines",
			f.ckpt.Len(), hits, misses, dropped)
	}
	for _, r := range f.rigs {
		state := "live"
		if r.dead.Load() {
			state = "dead"
		}
		fmt.Fprintf(&b, "\nfleet rig %s (%s): %d completed, %d stolen, %d failed",
			r.name, state, r.completed.Load(), r.stolen.Load(), r.failed.Load())
		if rem, ok := r.be.(*backend.Remote); ok {
			fmt.Fprintf(&b, "\n  %s: %s", r.name, rem.TransportStats().String())
		}
		if r.dead.Load() {
			continue
		}
		stats, err := r.be.EvalStats(domain)
		if err != nil {
			continue
		}
		for _, line := range strings.Split(stats, "\n") {
			fmt.Fprintf(&b, "\n  %s: %s", r.name, line)
		}
	}
	return b.String(), nil
}

// Close releases every rig (dead ones included: their pools still hold
// sockets) and the checkpoint journal. The first error wins.
func (f *Fleet) Close() error {
	var firstErr error
	for _, r := range f.rigs {
		if err := r.be.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if f.ckpt != nil {
		if err := f.ckpt.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// isDeterministicError reports whether the error is a property of the
// request rather than of the rig that served it — every rig would return
// it, so failover is pointless and misleading.
func isDeterministicError(err error) bool {
	return backend.IsCapabilityError(err) || backend.IsNoPoolError(err) || lab.IsTargetError(err)
}

// sweepPointCapable reports whether a backend can serve SweepPoint:
// remotes say so via SweepPointCapable (protocol v3+), everything else
// (Local, future wrappers) is assumed capable.
func sweepPointCapable(be backend.Backend) bool {
	type capable interface{ SweepPointCapable() bool }
	if c, ok := be.(capable); ok {
		return c.SweepPointCapable()
	}
	return true
}
