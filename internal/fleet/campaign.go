package fleet

import (
	"fmt"
	"sync"
)

// campaign is one shardable unit of fleet work: a GA generation, a sweep
// grid, a shmoo lattice, or a workload list. Its identity is content, not
// position — key hashes everything a shard's result depends on except the
// item itself (kind, platform, domain, operating point, seeds, averaging
// depth, coordinator salt), and items[i] hashes shard i's own content. The
// run function must be a pure function of (rig equivalence class, item):
// every live rig returns the same bytes for the same item, which is what
// makes work stealing, speculative replication and failover invisible in
// the merged result.
type campaign[R any] struct {
	kind  string
	key   uint64
	items []uint64
	// eligible filters rigs at placement time (nil = every rig). A rig
	// excluded here never sees the campaign's items — this is where
	// capability-aware placement happens (e.g. pre-v3 daemons cannot run
	// point-sharded sweeps).
	eligible func(r *rig) bool
	// slots overrides the fleet's per-rig worker count for this campaign
	// (<= 0 uses the fleet default).
	slots int
	run   func(r *rig, item int) (R, error)
}

// sched is the mutable state of one running campaign: a pending queue, a
// per-item replica set, and first-writer-wins results. All fields are
// guarded by mu; cond wakes idle workers when items complete, fail, or
// requeue.
type sched[R any] struct {
	f *Fleet
	c *campaign[R]

	mu      sync.Mutex
	cond    *sync.Cond
	pending []int
	running []map[*rig]bool
	done    []bool
	results []R
	remain  int
	live    int
	err     error
}

// runCampaign executes a campaign across every eligible live rig and
// returns one result per item, merged by index. The schedule is dynamic —
// idle rigs pull from a shared queue, and once the queue drains they
// speculatively replicate in-flight items (the classic straggler cure: a
// slow or silently dying rig never gates the tail, because the first
// finisher wins and all finishers agree bit-for-bit). A rig whose shard
// fails with a transport-class error is declared dead and its orphaned
// items requeue; a *backend.CapabilityError or *lab.TargetError is the
// campaign's fault, not the rig's, and fails the whole campaign
// immediately. Completed shards journal to the fleet checkpoint before
// they are needed again, so a killed coordinator resumes by replay instead
// of re-measurement.
func runCampaign[R any](f *Fleet, c *campaign[R]) ([]R, error) {
	n := len(c.items)
	s := &sched[R]{
		f:       f,
		c:       c,
		running: make([]map[*rig]bool, n),
		done:    make([]bool, n),
		results: make([]R, n),
	}
	s.cond = sync.NewCond(&s.mu)
	f.campaigns.Add(1)
	f.itemsTotal.Add(uint64(n))

	// Replay journaled shards before any rig lifts a finger.
	for i := 0; i < n; i++ {
		if f.ckpt != nil && f.ckpt.Lookup(c.key, c.items[i], &s.results[i]) {
			s.done[i] = true
			f.replayed.Add(1)
			continue
		}
		s.pending = append(s.pending, i)
	}
	s.remain = len(s.pending)
	if s.remain == 0 {
		return s.results, nil
	}

	var workers []*rig
	for _, r := range f.rigs {
		if r.dead.Load() {
			continue
		}
		if c.eligible != nil && !c.eligible(r) {
			continue
		}
		workers = append(workers, r)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("fleet: campaign %s: no live rig is eligible", c.kind)
	}
	s.live = len(workers)

	slots := c.slots
	if slots <= 0 {
		slots = f.slots
	}
	var wg sync.WaitGroup
	for _, r := range workers {
		for k := 0; k < slots; k++ {
			wg.Add(1)
			go func(r *rig) {
				defer wg.Done()
				s.work(r)
			}(r)
		}
	}
	wg.Wait()

	if s.err != nil {
		return nil, s.err
	}
	return s.results, nil
}

// work is one rig slot's loop: acquire, measure, report, repeat.
func (s *sched[R]) work(r *rig) {
	for {
		i := s.acquire(r)
		if i < 0 {
			return
		}
		res, err := s.c.run(r, i)
		if err != nil {
			s.fail(r, i, err)
			continue
		}
		s.complete(r, i, res)
	}
}

// acquire hands the rig its next item: the head of the pending queue when
// there is one, otherwise the least-replicated in-flight item the rig is
// not already running (speculative steal). Returns -1 when the campaign is
// over, has failed, or the rig has died.
func (s *sched[R]) acquire(r *rig) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.remain == 0 || r.dead.Load() {
			return -1
		}
		for len(s.pending) > 0 {
			i := s.pending[0]
			s.pending = s.pending[1:]
			if s.done[i] {
				continue // requeued, then a replica finished first
			}
			s.mark(i, r)
			return i
		}
		best, bestN := -1, int(^uint(0)>>1)
		for i, rs := range s.running {
			if s.done[i] || len(rs) == 0 || rs[r] {
				continue
			}
			if len(rs) < bestN {
				best, bestN = i, len(rs)
			}
		}
		if best >= 0 {
			r.stolen.Add(1)
			s.f.steals.Add(1)
			s.mark(best, r)
			return best
		}
		s.cond.Wait()
	}
}

func (s *sched[R]) mark(i int, r *rig) {
	if s.running[i] == nil {
		s.running[i] = make(map[*rig]bool, 2)
	}
	s.running[i][r] = true
}

// complete records a finished shard. The first writer wins; later
// speculative replicas are discarded — by construction they carry the same
// bytes, so which rig "won" is unobservable in the merged result.
func (s *sched[R]) complete(r *rig, i int, res R) {
	first := false
	s.mu.Lock()
	delete(s.running[i], r)
	if !s.done[i] {
		s.done[i] = true
		s.results[i] = res
		s.remain--
		first = true
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	r.completed.Add(1)
	if first {
		s.f.measured.Add(1)
		if s.f.ckpt != nil {
			if err := s.f.ckpt.Add(s.c.key, s.c.items[i], res); err != nil {
				s.mu.Lock()
				if s.err == nil {
					s.err = err
				}
				s.cond.Broadcast()
				s.mu.Unlock()
			}
		}
	}
}

// fail classifies a shard error. Capability and target-rejected errors are
// deterministic — every rig would say the same — so they fail the campaign.
// Anything else (dial/IO timeouts after the client's own retry budget,
// closed pools) condemns the rig: it is marked dead fleet-wide, its item
// requeues if no other replica is in flight, and the campaign only fails
// if that was the last live rig.
func (s *sched[R]) fail(r *rig, i int, err error) {
	fatal := isDeterministicError(err)
	s.mu.Lock()
	if s.running[i] != nil {
		delete(s.running[i], r)
	}
	r.failed.Add(1)
	if fatal {
		if s.err == nil {
			s.err = fmt.Errorf("fleet: campaign %s shard %d: %w", s.c.kind, i, err)
		}
	} else {
		if !r.dead.Swap(true) {
			s.live--
			s.f.failovers.Add(1)
		}
		if !s.done[i] && len(s.running[i]) == 0 {
			s.pending = append(s.pending, i)
			s.f.requeues.Add(1)
		}
		if s.live == 0 && s.remain > 0 && s.err == nil {
			s.err = fmt.Errorf("fleet: campaign %s: every rig failed; last error from rig %s: %w",
				s.c.kind, r.name, err)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}
