package circuit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDCVoltageDivider(t *testing.T) {
	c := New()
	c.V("vs", "in", Ground, 10)
	c.R("r1", "in", "mid", 1e3)
	c.R("r2", "mid", Ground, 1e3)
	op, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	v, err := op.Voltage("mid")
	if err != nil {
		t.Fatalf("Voltage: %v", err)
	}
	if math.Abs(v-5) > 1e-9 {
		t.Fatalf("divider mid = %v, want 5", v)
	}
	// Source delivers 5mA; branch current flows a->b through the circuit.
	i, err := op.Current("vs")
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	if math.Abs(math.Abs(i)-5e-3) > 1e-9 {
		t.Fatalf("source current = %v, want ±5mA", i)
	}
	// Ground voltage is zero by definition.
	if v, _ := op.Voltage(Ground); v != 0 {
		t.Fatalf("ground voltage = %v", v)
	}
}

func TestDCInductorIsShort(t *testing.T) {
	c := New()
	c.V("vs", "in", Ground, 2)
	c.R("r1", "in", "a", 100)
	c.L("l1", "a", "b", 1e-6)
	c.R("r2", "b", Ground, 100)
	op, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	va, _ := op.Voltage("a")
	vb, _ := op.Voltage("b")
	if math.Abs(va-vb) > 1e-9 {
		t.Fatalf("inductor not a DC short: %v vs %v", va, vb)
	}
	il, err := op.Current("l1")
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	if math.Abs(il-0.01) > 1e-9 {
		t.Fatalf("inductor current = %v, want 10mA", il)
	}
}

func TestDCCapacitorIsOpen(t *testing.T) {
	c := New()
	c.V("vs", "in", Ground, 3)
	c.R("r1", "in", "a", 1e3)
	c.C("c1", "a", Ground, 1e-9)
	// With the cap open no current flows, so node a sits at the supply.
	op, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	va, _ := op.Voltage("a")
	if math.Abs(va-3) > 1e-9 {
		t.Fatalf("cap node = %v, want 3", va)
	}
}

func TestRCStepResponse(t *testing.T) {
	// 1V step into R=1k, C=1uF from zero state: v(t) = 1 - exp(-t/tau).
	const tau = 1e-3
	c := New()
	c.V("vs", "in", Ground, 1)
	c.R("r", "in", "out", 1e3)
	c.C("c", "out", Ground, 1e-6)
	dt := tau / 1000
	tr, err := c.RunTransient(TransientOptions{Dt: dt, Steps: 3000})
	if err != nil {
		t.Fatalf("RunTransient: %v", err)
	}
	v, err := tr.Voltage("out")
	if err != nil {
		t.Fatalf("Voltage: %v", err)
	}
	for _, chk := range []struct{ mult, want float64 }{
		{1, 1 - math.Exp(-1)},
		{2, 1 - math.Exp(-2)},
		{3, 1 - math.Exp(-3)},
	} {
		idx := int(chk.mult * tau / dt)
		if math.Abs(v[idx]-chk.want) > 2e-3 {
			t.Errorf("v(%v*tau) = %v, want %v", chk.mult, v[idx], chk.want)
		}
	}
}

func TestTransientFromOPIsQuiescent(t *testing.T) {
	// Starting from the operating point with constant sources, nothing
	// should move.
	c := New()
	c.V("vs", "in", Ground, 1)
	c.R("r", "in", "out", 50)
	c.C("c", "out", Ground, 1e-9)
	c.L("l", "out", "o2", 1e-9)
	c.R("rl", "o2", Ground, 100)
	tr, err := c.RunTransient(TransientOptions{Dt: 1e-11, Steps: 200, FromOP: true})
	if err != nil {
		t.Fatalf("RunTransient: %v", err)
	}
	v, _ := tr.Voltage("out")
	for i, x := range v {
		if math.Abs(x-v[0]) > 1e-9 {
			t.Fatalf("quiescent drifted at step %d: %v vs %v", i, x, v[0])
		}
	}
}

func TestLCRingingFrequency(t *testing.T) {
	// Parallel LC tank excited by a current step rings at 1/(2*pi*sqrt(LC)).
	const (
		lVal = 100e-12 // 100 pH
		cVal = 40e-9   // 40 nF -> f0 ~ 79.6 MHz
	)
	f0 := 1 / (2 * math.Pi * math.Sqrt(lVal*cVal))
	c := New()
	c.V("vs", "sup", Ground, 1)
	c.L("l", "sup", "die", lVal)
	c.C("c", "die", Ground, cVal)
	c.R("rdamp", "die", Ground, 100) // light damping
	step := func(t float64) float64 {
		if t > 0 {
			return 1
		}
		return 0
	}
	c.I("iload", "die", Ground, step)
	dt := 1.0 / (f0 * 200)
	tr, err := c.RunTransient(TransientOptions{Dt: dt, Steps: 4000, FromOP: true})
	if err != nil {
		t.Fatalf("RunTransient: %v", err)
	}
	v, _ := tr.Voltage("die")
	// Count zero crossings of the AC part to estimate ring frequency.
	mean := 0.0
	for _, x := range v[len(v)/2:] {
		mean += x
	}
	mean /= float64(len(v) - len(v)/2)
	crossings := 0
	first, last := -1, -1
	for i := 1; i < len(v); i++ {
		if (v[i-1]-mean)*(v[i]-mean) < 0 {
			crossings++
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if crossings < 6 {
		t.Fatalf("too few ring crossings: %d", crossings)
	}
	period := 2 * float64(last-first) * dt / float64(crossings-1)
	fMeasured := 1 / period
	if math.Abs(fMeasured-f0) > 0.05*f0 {
		t.Fatalf("ring frequency = %v, want ~%v", fMeasured, f0)
	}
}

func TestACSeriesRLImpedance(t *testing.T) {
	// Z(f) = R + jwL seen into a series RL to ground.
	const r, l = 10.0, 1e-6
	c := New()
	c.I("probe", "n", Ground, DC(0))
	c.R("r", "n", "m", r)
	c.L("l", "m", Ground, l)
	f := 1e6
	z, err := c.Impedance(f, "probe", "n")
	if err != nil {
		t.Fatalf("Impedance: %v", err)
	}
	want := complex(r, 2*math.Pi*f*l)
	if cmplx.Abs(z-want) > 1e-6*cmplx.Abs(want) {
		t.Fatalf("Z = %v, want %v", z, want)
	}
}

func TestACParallelRLCResonance(t *testing.T) {
	// At resonance a parallel RLC has purely real impedance equal to R.
	const (
		r = 1e3
		l = 1e-6
		ć = 1e-9
	)
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*ć))
	c := New()
	c.I("probe", "n", Ground, DC(0))
	c.R("r", "n", Ground, r)
	c.L("l", "n", Ground, l)
	c.C("c", "n", Ground, ć)
	z, err := c.Impedance(f0, "probe", "n")
	if err != nil {
		t.Fatalf("Impedance: %v", err)
	}
	if math.Abs(real(z)-r) > 1e-3*r || math.Abs(imag(z)) > 1e-3*r {
		t.Fatalf("Z(f0) = %v, want %v+0i", z, r)
	}
	// Off resonance the magnitude must be lower.
	zLow, _ := c.Impedance(f0/3, "probe", "n")
	zHigh, _ := c.Impedance(f0*3, "probe", "n")
	if cmplx.Abs(zLow) >= cmplx.Abs(z) || cmplx.Abs(zHigh) >= cmplx.Abs(z) {
		t.Fatalf("resonance not a peak: |Z(f0/3)|=%v |Z(f0)|=%v |Z(3f0)|=%v",
			cmplx.Abs(zLow), cmplx.Abs(z), cmplx.Abs(zHigh))
	}
}

// Property: transient steady-state sinusoid amplitude matches |H(f)| from AC
// analysis, for a randomly damped parallel RLC driven by a sine current.
func TestACMatchesTransientProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lVal := 50e-12 * (1 + rng.Float64()) // 50-100 pH
		cVal := 20e-9 * (1 + rng.Float64())  // 20-40 nF
		rVal := 0.2 + 0.4*rng.Float64()      // strong damping for fast settling
		f := (40e6 + 80e6*rng.Float64())
		w := 2 * math.Pi * f

		build := func(wave Waveform) *Circuit {
			c := New()
			c.V("vs", "sup", Ground, 1)
			c.L("l", "sup", "die", lVal)
			c.C("c", "die", Ground, cVal)
			c.R("r", "die", Ground, rVal)
			c.I("iload", "die", Ground, wave)
			return c
		}

		ac := build(DC(0))
		res, err := ac.SolveAC(f, ACStimulus{"iload": 1})
		if err != nil {
			return false
		}
		h, err := res.Voltage("die")
		if err != nil {
			return false
		}
		wantAmp := cmplx.Abs(h) * 0.01 // 10 mA drive

		trc := build(func(t float64) float64 { return 0.01 * math.Sin(w*t) })
		dt := 1 / (f * 400)
		cycles := 150.0
		steps := int(cycles / (f * dt))
		tr, err := trc.RunTransient(TransientOptions{Dt: dt, Steps: steps, FromOP: true})
		if err != nil {
			return false
		}
		v, _ := tr.Voltage("die")
		tail := v[len(v)*3/4:]
		min, max := tail[0], tail[0]
		for _, x := range tail {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		gotAmp := (max - min) / 2
		return math.Abs(gotAmp-wantAmp) < 0.05*wantAmp+1e-9
	}
	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(c *Circuit)
	}{
		{"negative R", func(c *Circuit) { c.R("r", "a", "b", -1) }},
		{"zero C", func(c *Circuit) { c.C("c", "a", "b", 0) }},
		{"NaN L", func(c *Circuit) { c.L("l", "a", "b", math.NaN()) }},
		{"inf V", func(c *Circuit) { c.V("v", "a", "b", math.Inf(1)) }},
		{"nil wave", func(c *Circuit) { c.I("i", "a", "b", nil) }},
		{"empty name", func(c *Circuit) { c.R("", "a", "b", 1) }},
		{"duplicate", func(c *Circuit) { c.R("x", "a", "b", 1); c.C("x", "a", "b", 1e-9) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.f(New())
		})
	}
}

func TestErrorPaths(t *testing.T) {
	c := New()
	c.V("vs", "in", Ground, 1)
	c.R("r", "in", Ground, 1)
	op, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	if _, err := op.Voltage("nope"); err == nil {
		t.Error("Voltage of unknown node succeeded")
	}
	if _, err := op.Current("nope"); err == nil {
		t.Error("Current of unknown branch succeeded")
	}
	if _, err := c.RunTransient(TransientOptions{Dt: 0, Steps: 10}); err == nil {
		t.Error("zero-dt transient succeeded")
	}
	if _, err := c.RunTransient(TransientOptions{Dt: 1e-9, Steps: 0}); err == nil {
		t.Error("zero-step transient succeeded")
	}
	if _, err := c.SolveAC(-1, nil); err == nil {
		t.Error("negative-frequency AC succeeded")
	}
	if _, err := c.SolveAC(1e6, ACStimulus{"ghost": 1}); err == nil {
		t.Error("AC with unknown stimulus succeeded")
	}
	if _, err := New().OperatingPoint(); err == nil {
		t.Error("empty circuit OP succeeded")
	}
	if _, err := New().RunTransient(TransientOptions{Dt: 1e-9, Steps: 1}); err == nil {
		t.Error("empty circuit transient succeeded")
	}
	if _, err := New().SolveAC(1, nil); err == nil {
		t.Error("empty circuit AC succeeded")
	}
}

func TestTransientCurrentsAndTimes(t *testing.T) {
	c := New()
	c.V("vs", "in", Ground, 1)
	c.R("r", "in", Ground, 100)
	tr, err := c.RunTransient(TransientOptions{Dt: 1e-9, Steps: 4, FromOP: true})
	if err != nil {
		t.Fatalf("RunTransient: %v", err)
	}
	ts := tr.Times()
	if len(ts) != 5 || ts[4] != 4e-9 {
		t.Fatalf("Times = %v", ts)
	}
	i, err := tr.Current("vs")
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	// 10 mA magnitude through the source at every step.
	for _, x := range i {
		if math.Abs(math.Abs(x)-0.01) > 1e-9 {
			t.Fatalf("source current = %v", x)
		}
	}
	if _, err := tr.Current("r"); err == nil {
		t.Error("Current of a resistor should fail (no branch unknown)")
	}
	if v, err := tr.Voltage(Ground); err != nil || v[0] != 0 {
		t.Errorf("ground transient voltage: %v, %v", v, err)
	}
	if _, err := tr.Voltage("nope"); err == nil {
		t.Error("Voltage of unknown node succeeded")
	}
}

func TestNumNodes(t *testing.T) {
	c := New()
	c.R("r1", "a", "b", 1)
	c.R("r2", "b", Ground, 1)
	if n := c.NumNodes(); n != 2 {
		t.Fatalf("NumNodes = %d, want 2", n)
	}
}
