// Package circuit implements a small linear circuit simulator in the style
// of SPICE, sufficient for power-delivery-network analysis: resistors,
// capacitors, inductors, DC voltage sources and time-varying current
// sources, with DC operating point, fixed-step trapezoidal transient
// analysis and complex AC (frequency-domain) analysis via modified nodal
// analysis (MNA).
//
// The unknown vector contains the node voltages of every non-ground node
// followed by one branch current per voltage source and per inductor.
// Because the circuits are linear and the transient step is fixed, the MNA
// matrix is assembled and LU-factored once and only the right-hand side is
// rebuilt each step, making long transients cheap.
package circuit

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Ground is the reference node name. Its voltage is identically zero and it
// carries no unknown.
const Ground = "0"

// Waveform is a time-varying source value in SI units (amps or volts).
type Waveform func(t float64) float64

// DC returns a constant waveform.
func DC(v float64) Waveform { return func(float64) float64 { return v } }

// element kinds (for name lookup and error messages).
type elemKind int

const (
	kindR elemKind = iota
	kindC
	kindL
	kindV
	kindI
)

// String returns the element-kind name for error messages.
func (k elemKind) String() string {
	return [...]string{"resistor", "capacitor", "inductor", "vsource", "isource"}[k]
}

type resistor struct {
	name string
	a, b int
	ohms float64
}

type capacitor struct {
	name   string
	a, b   int
	farads float64
}

type inductor struct {
	name   string
	a, b   int
	henrys float64
	branch int // index of its branch-current unknown
}

type vsource struct {
	name   string
	a, b   int // + and - terminals
	volts  float64
	branch int
}

type isource struct {
	name string
	a, b int // current flows from a to b through the source
	wave Waveform
}

// Circuit is a netlist under construction. The zero value is not usable;
// call New.
type Circuit struct {
	nodes    map[string]int // name -> index; Ground maps to -1
	nodeName []string       // index -> name
	names    map[string]elemKind

	rs []resistor
	cs []capacitor
	ls []inductor
	vs []vsource
	is []isource
}

// New returns an empty circuit containing only the ground node.
func New() *Circuit {
	return &Circuit{
		nodes: map[string]int{Ground: -1, "gnd": -1, "GND": -1},
		names: make(map[string]elemKind),
	}
}

// node interns a node name, allocating an index for new non-ground nodes.
func (c *Circuit) node(name string) int {
	if idx, ok := c.nodes[name]; ok {
		return idx
	}
	idx := len(c.nodeName)
	c.nodes[name] = idx
	c.nodeName = append(c.nodeName, name)
	return idx
}

func (c *Circuit) register(name string, kind elemKind) {
	if name == "" {
		panic("circuit: element name must not be empty")
	}
	if prev, dup := c.names[name]; dup {
		panic(fmt.Sprintf("circuit: duplicate element name %q (already a %v)", name, prev))
	}
	c.names[name] = kind
}

func checkValue(what, name string, v float64) {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("circuit: %s %q has invalid value %v", what, name, v))
	}
}

// R adds a resistor of the given resistance between nodes a and b.
func (c *Circuit) R(name, a, b string, ohms float64) {
	checkValue("resistor", name, ohms)
	c.register(name, kindR)
	c.rs = append(c.rs, resistor{name, c.node(a), c.node(b), ohms})
}

// C adds a capacitor of the given capacitance between nodes a and b.
func (c *Circuit) C(name, a, b string, farads float64) {
	checkValue("capacitor", name, farads)
	c.register(name, kindC)
	c.cs = append(c.cs, capacitor{name, c.node(a), c.node(b), farads})
}

// L adds an inductor of the given inductance between nodes a and b.
// Its branch current (available from results by name) flows from a to b.
func (c *Circuit) L(name, a, b string, henrys float64) {
	checkValue("inductor", name, henrys)
	c.register(name, kindL)
	c.ls = append(c.ls, inductor{name: name, a: c.node(a), b: c.node(b), henrys: henrys})
}

// V adds a DC voltage source with + terminal a and - terminal b.
// Its branch current flows from a to b through the external circuit
// (i.e. a positive value means the source is delivering current from +).
func (c *Circuit) V(name, a, b string, volts float64) {
	if math.IsNaN(volts) || math.IsInf(volts, 0) {
		panic(fmt.Sprintf("circuit: vsource %q has invalid value %v", name, volts))
	}
	c.register(name, kindV)
	c.vs = append(c.vs, vsource{name: name, a: c.node(a), b: c.node(b), volts: volts})
}

// I adds a current source driving the waveform's current from node a to
// node b through the source (a positive value pulls current out of node a).
func (c *Circuit) I(name, a, b string, wave Waveform) {
	if wave == nil {
		panic(fmt.Sprintf("circuit: isource %q has nil waveform", name))
	}
	c.register(name, kindI)
	c.is = append(c.is, isource{name, c.node(a), c.node(b), wave})
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeName) }

// size returns the dimension of the MNA system and assigns branch indices.
func (c *Circuit) size() int {
	n := len(c.nodeName)
	b := n
	for i := range c.vs {
		c.vs[i].branch = b
		b++
	}
	for i := range c.ls {
		c.ls[i].branch = b
		b++
	}
	return b
}

// nodeIndex returns the unknown index of a node, or an error for unknown names.
func (c *Circuit) nodeIndex(name string) (int, error) {
	idx, ok := c.nodes[name]
	if !ok {
		return 0, fmt.Errorf("circuit: unknown node %q", name)
	}
	return idx, nil
}

// addNode accumulates v at (i, j) skipping ground rows/columns.
func addNode(m *linalg.Matrix, i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	m.Add(i, j, v)
}

func addRHS(rhs []float64, i int, v float64) {
	if i < 0 {
		return
	}
	rhs[i] += v
}
