package circuit

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ACResult holds the complex phasor solution at one frequency.
type ACResult struct {
	circuit *Circuit
	Freq    float64
	x       []complex128
}

// Voltage returns the complex node-voltage phasor of the named node.
func (r *ACResult) Voltage(node string) (complex128, error) {
	idx, err := r.circuit.nodeIndex(node)
	if err != nil {
		return 0, err
	}
	if idx < 0 {
		return 0, nil
	}
	return r.x[idx], nil
}

// Current returns the complex branch-current phasor of the named inductor
// or voltage source.
func (r *ACResult) Current(name string) (complex128, error) {
	for _, l := range r.circuit.ls {
		if l.name == name {
			return r.x[l.branch], nil
		}
	}
	for _, v := range r.circuit.vs {
		if v.name == name {
			return r.x[v.branch], nil
		}
	}
	return 0, fmt.Errorf("circuit: no inductor or vsource named %q", name)
}

// ACStimulus gives the small-signal amplitude of each stimulated source by
// element name. Sources not listed are quiet (DC supplies become AC shorts,
// current sources open), which is the standard small-signal treatment.
type ACStimulus map[string]complex128

// SolveAC solves the small-signal phasor system at frequency f (Hz).
func (c *Circuit) SolveAC(f float64, stim ACStimulus) (*ACResult, error) {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("circuit: invalid AC frequency %v", f)
	}
	for name := range stim {
		if _, ok := c.names[name]; !ok {
			return nil, fmt.Errorf("circuit: AC stimulus references unknown element %q", name)
		}
	}
	n := c.size()
	if n == 0 {
		return nil, fmt.Errorf("circuit: empty circuit")
	}
	w := 2 * math.Pi * f
	m := linalg.NewCMatrix(n, n)
	rhs := make([]complex128, n)

	cadd := func(i, j int, v complex128) {
		if i < 0 || j < 0 {
			return
		}
		m.Add(i, j, v)
	}
	caddRHS := func(i int, v complex128) {
		if i < 0 {
			return
		}
		rhs[i] += v
	}

	for _, r := range c.rs {
		g := complex(1/r.ohms, 0)
		cadd(r.a, r.a, g)
		cadd(r.b, r.b, g)
		cadd(r.a, r.b, -g)
		cadd(r.b, r.a, -g)
	}
	for _, cp := range c.cs {
		y := complex(0, w*cp.farads)
		cadd(cp.a, cp.a, y)
		cadd(cp.b, cp.b, y)
		cadd(cp.a, cp.b, -y)
		cadd(cp.b, cp.a, -y)
	}
	for _, l := range c.ls {
		cadd(l.a, l.branch, 1)
		cadd(l.b, l.branch, -1)
		cadd(l.branch, l.a, 1)
		cadd(l.branch, l.b, -1)
		cadd(l.branch, l.branch, complex(0, -w*l.henrys))
	}
	for _, v := range c.vs {
		cadd(v.a, v.branch, 1)
		cadd(v.b, v.branch, -1)
		cadd(v.branch, v.a, 1)
		cadd(v.branch, v.b, -1)
		rhs[v.branch] = stim[v.name] // quiet supplies are AC shorts (0)
	}
	for _, s := range c.is {
		amp := stim[s.name]
		caddRHS(s.a, -amp)
		caddRHS(s.b, amp)
	}
	x, err := linalg.CSolve(m, rhs)
	if err != nil {
		return nil, fmt.Errorf("circuit: AC solve at %g Hz: %w", f, err)
	}
	return &ACResult{circuit: c, Freq: f, x: x}, nil
}

// Impedance returns the driving-point impedance magnitude seen from the
// named node to ground at frequency f, by injecting a unit AC current
// through the named current source (which must connect that node).
func (c *Circuit) Impedance(f float64, isrcName, node string) (complex128, error) {
	res, err := c.SolveAC(f, ACStimulus{isrcName: 1})
	if err != nil {
		return 0, err
	}
	v, err := res.Voltage(node)
	if err != nil {
		return 0, err
	}
	// The source pulls current out of the node, so the driving-point
	// impedance is -V/I with I = 1.
	return -v, nil
}
