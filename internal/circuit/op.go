package circuit

import (
	"fmt"

	"repro/internal/linalg"
)

// OP holds a DC operating point: node voltages and source/inductor branch
// currents.
type OP struct {
	circuit *Circuit
	x       []float64
}

// OperatingPoint solves the DC operating point: capacitors open, inductors
// short, current sources at their t=0 value.
func (c *Circuit) OperatingPoint() (*OP, error) {
	n := c.size()
	if n == 0 {
		return nil, fmt.Errorf("circuit: empty circuit")
	}
	m := linalg.NewMatrix(n, n)
	rhs := make([]float64, n)

	for _, r := range c.rs {
		g := 1 / r.ohms
		addNode(m, r.a, r.a, g)
		addNode(m, r.b, r.b, g)
		addNode(m, r.a, r.b, -g)
		addNode(m, r.b, r.a, -g)
	}
	// Capacitors are open at DC: no stamp.
	for _, l := range c.ls {
		// Short: va - vb = 0 with a free branch current.
		addNode(m, l.a, l.branch, 1)
		addNode(m, l.b, l.branch, -1)
		addNode(m, l.branch, l.a, 1)
		addNode(m, l.branch, l.b, -1)
	}
	for _, v := range c.vs {
		addNode(m, v.a, v.branch, 1)
		addNode(m, v.b, v.branch, -1)
		addNode(m, v.branch, v.a, 1)
		addNode(m, v.branch, v.b, -1)
		rhs[v.branch] = v.volts
	}
	for _, s := range c.is {
		i0 := s.wave(0)
		addRHS(rhs, s.a, -i0)
		addRHS(rhs, s.b, i0)
	}
	f, err := linalg.Factor(m)
	if err != nil {
		return nil, fmt.Errorf("circuit: DC operating point: %w", err)
	}
	x, err := f.Solve(rhs)
	if err != nil {
		return nil, fmt.Errorf("circuit: DC operating point: %w", err)
	}
	return &OP{circuit: c, x: x}, nil
}

// Voltage returns the DC voltage of the named node.
func (op *OP) Voltage(node string) (float64, error) {
	idx, err := op.circuit.nodeIndex(node)
	if err != nil {
		return 0, err
	}
	if idx < 0 {
		return 0, nil // ground
	}
	return op.x[idx], nil
}

// Current returns the DC branch current of the named inductor or voltage
// source.
func (op *OP) Current(name string) (float64, error) {
	for _, l := range op.circuit.ls {
		if l.name == name {
			return op.x[l.branch], nil
		}
	}
	for _, v := range op.circuit.vs {
		if v.name == name {
			return op.x[v.branch], nil
		}
	}
	return 0, fmt.Errorf("circuit: no inductor or vsource named %q", name)
}
