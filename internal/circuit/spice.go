package circuit

import (
	"fmt"
	"io"
	"sort"
)

// WriteSpice emits the netlist in SPICE format so a PDN model built here
// can be cross-checked in ngspice/HSPICE (the paper validates its Figure 1
// model with HSPICE). Time-varying current sources are emitted as DC
// sources at their t=0 value with a comment, since arbitrary Go waveforms
// have no SPICE equivalent.
func (c *Circuit) WriteSpice(w io.Writer, title string) error {
	if title == "" {
		title = "netlist"
	}
	pr := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format+"\n", args...)
		return err
	}
	if err := pr("* %s", title); err != nil {
		return err
	}
	node := func(idx int) string {
		if idx < 0 {
			return "0"
		}
		return c.nodeName[idx]
	}
	for _, r := range c.rs {
		if err := pr("R%s %s %s %g", r.name, node(r.a), node(r.b), r.ohms); err != nil {
			return err
		}
	}
	for _, cp := range c.cs {
		if err := pr("C%s %s %s %g", cp.name, node(cp.a), node(cp.b), cp.farads); err != nil {
			return err
		}
	}
	for _, l := range c.ls {
		if err := pr("L%s %s %s %g", l.name, node(l.a), node(l.b), l.henrys); err != nil {
			return err
		}
	}
	for _, v := range c.vs {
		if err := pr("V%s %s %s DC %g", v.name, node(v.a), node(v.b), v.volts); err != nil {
			return err
		}
	}
	for _, s := range c.is {
		if err := pr("* I%s carries a program-defined waveform; emitted at its t=0 value", s.name); err != nil {
			return err
		}
		if err := pr("I%s %s %s DC %g", s.name, node(s.a), node(s.b), s.wave(0)); err != nil {
			return err
		}
	}
	return pr(".end")
}

// Nodes returns the non-ground node names in deterministic order.
func (c *Circuit) Nodes() []string {
	out := make([]string, len(c.nodeName))
	copy(out, c.nodeName)
	sort.Strings(out)
	return out
}
