package circuit

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Transient holds the result of a fixed-step transient analysis.
type Transient struct {
	// Dt is the time step; sample i is at time i*Dt, including t=0.
	Dt float64
	// Steps is the number of samples (len of each series).
	Steps int

	circuit  *Circuit
	nodeV    [][]float64 // [nodeIdx][step]
	branchI  [][]float64 // [branch-local idx][step], inductors then vsources
	branches map[string]int
}

// Voltage returns the voltage series of the named node. The returned slice
// is owned by the result; callers must not modify it.
func (tr *Transient) Voltage(node string) ([]float64, error) {
	idx, err := tr.circuit.nodeIndex(node)
	if err != nil {
		return nil, err
	}
	if idx < 0 {
		return make([]float64, tr.Steps), nil
	}
	return tr.nodeV[idx], nil
}

// Current returns the branch-current series of the named inductor or
// voltage source.
func (tr *Transient) Current(name string) ([]float64, error) {
	li, ok := tr.branches[name]
	if !ok {
		return nil, fmt.Errorf("circuit: no inductor or vsource named %q", name)
	}
	return tr.branchI[li], nil
}

// Times returns the sample instants.
func (tr *Transient) Times() []float64 {
	ts := make([]float64, tr.Steps)
	for i := range ts {
		ts[i] = float64(i) * tr.Dt
	}
	return ts
}

// TransientOptions configures RunTransient.
type TransientOptions struct {
	Dt    float64 // time step, seconds; must be > 0
	Steps int     // number of steps after t=0; result has Steps+1 samples
	// FromOP initializes state from the DC operating point (default when
	// true); otherwise all capacitor voltages and inductor currents start
	// at zero.
	FromOP bool
}

// RunTransient integrates the circuit with the trapezoidal rule at a fixed
// step. The MNA matrix is factored once; each step solves a new RHS.
func (c *Circuit) RunTransient(opt TransientOptions) (*Transient, error) {
	if opt.Dt <= 0 || math.IsNaN(opt.Dt) {
		return nil, fmt.Errorf("circuit: invalid time step %v", opt.Dt)
	}
	if opt.Steps <= 0 {
		return nil, fmt.Errorf("circuit: invalid step count %d", opt.Steps)
	}
	n := c.size()
	if n == 0 {
		return nil, fmt.Errorf("circuit: empty circuit")
	}
	dt := opt.Dt

	// Assemble the constant MNA matrix with trapezoidal companion stamps.
	m := linalg.NewMatrix(n, n)
	for _, r := range c.rs {
		g := 1 / r.ohms
		addNode(m, r.a, r.a, g)
		addNode(m, r.b, r.b, g)
		addNode(m, r.a, r.b, -g)
		addNode(m, r.b, r.a, -g)
	}
	for _, cp := range c.cs {
		g := 2 * cp.farads / dt
		addNode(m, cp.a, cp.a, g)
		addNode(m, cp.b, cp.b, g)
		addNode(m, cp.a, cp.b, -g)
		addNode(m, cp.b, cp.a, -g)
	}
	for _, l := range c.ls {
		addNode(m, l.a, l.branch, 1)
		addNode(m, l.b, l.branch, -1)
		addNode(m, l.branch, l.a, 1)
		addNode(m, l.branch, l.b, -1)
		addNode(m, l.branch, l.branch, -2*l.henrys/dt)
	}
	for _, v := range c.vs {
		addNode(m, v.a, v.branch, 1)
		addNode(m, v.b, v.branch, -1)
		addNode(m, v.branch, v.a, 1)
		addNode(m, v.branch, v.b, -1)
	}
	f, err := linalg.Factor(m)
	if err != nil {
		return nil, fmt.Errorf("circuit: transient matrix: %w", err)
	}

	// Element state: capacitor (v, i), inductor (v, i).
	capV := make([]float64, len(c.cs))
	capI := make([]float64, len(c.cs))
	indV := make([]float64, len(c.ls))
	indI := make([]float64, len(c.ls))

	steps := opt.Steps + 1
	tr := &Transient{
		Dt:       dt,
		Steps:    steps,
		circuit:  c,
		nodeV:    make([][]float64, len(c.nodeName)),
		branches: make(map[string]int, len(c.ls)+len(c.vs)),
	}
	for i := range tr.nodeV {
		tr.nodeV[i] = make([]float64, steps)
	}
	tr.branchI = make([][]float64, len(c.ls)+len(c.vs))
	for i := range tr.branchI {
		tr.branchI[i] = make([]float64, steps)
	}
	for i, l := range c.ls {
		tr.branches[l.name] = i
	}
	for i, v := range c.vs {
		tr.branches[v.name] = len(c.ls) + i
	}

	nodeAt := func(x []float64, idx int) float64 {
		if idx < 0 {
			return 0
		}
		return x[idx]
	}

	// Initial state at t=0.
	var x0 []float64
	if opt.FromOP {
		op, err := c.OperatingPoint()
		if err != nil {
			return nil, err
		}
		x0 = op.x[:len(c.nodeName)]
		for i, cp := range c.cs {
			capV[i] = nodeAt(x0, cp.a) - nodeAt(x0, cp.b)
			capI[i] = 0
		}
		for i, l := range c.ls {
			indV[i] = 0
			indI[i] = op.x[l.branch]
		}
		for i := range c.nodeName {
			tr.nodeV[i][0] = x0[i]
		}
		for i := range c.ls {
			tr.branchI[i][0] = op.x[c.ls[i].branch]
		}
		for i := range c.vs {
			tr.branchI[len(c.ls)+i][0] = op.x[c.vs[i].branch]
		}
	}

	rhs := make([]float64, n)
	x := make([]float64, n)
	scratch := make([]float64, n)

	for step := 1; step < steps; step++ {
		t := float64(step) * dt
		for i := range rhs {
			rhs[i] = 0
		}
		for i, cp := range c.cs {
			g := 2 * cp.farads / dt
			ieq := g*capV[i] + capI[i]
			addRHS(rhs, cp.a, ieq)
			addRHS(rhs, cp.b, -ieq)
		}
		for i, l := range c.ls {
			rhs[l.branch] = -2*l.henrys/dt*indI[i] - indV[i]
		}
		for _, v := range c.vs {
			rhs[v.branch] = v.volts
		}
		for _, s := range c.is {
			iv := s.wave(t)
			addRHS(rhs, s.a, -iv)
			addRHS(rhs, s.b, iv)
		}
		if err := f.SolveInto(x, rhs, scratch); err != nil {
			return nil, fmt.Errorf("circuit: transient step %d: %w", step, err)
		}
		// Update element state.
		for i, cp := range c.cs {
			g := 2 * cp.farads / dt
			vNew := nodeAt(x, cp.a) - nodeAt(x, cp.b)
			iNew := g*vNew - (g*capV[i] + capI[i])
			capV[i], capI[i] = vNew, iNew
		}
		for i, l := range c.ls {
			iNew := x[l.branch]
			vNew := 2*l.henrys/dt*(iNew-indI[i]) - indV[i]
			indV[i], indI[i] = vNew, iNew
		}
		// Record.
		for i := range c.nodeName {
			tr.nodeV[i][step] = x[i]
		}
		for i, l := range c.ls {
			tr.branchI[i][step] = x[l.branch]
		}
		for i, v := range c.vs {
			tr.branchI[len(c.ls)+i][step] = x[v.branch]
		}
	}
	return tr, nil
}
