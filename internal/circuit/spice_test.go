package circuit

import (
	"strings"
	"testing"
)

func TestWriteSpice(t *testing.T) {
	c := New()
	c.V("vs", "in", Ground, 1.0)
	c.R("r1", "in", "mid", 1e3)
	c.C("c1", "mid", Ground, 1e-9)
	c.L("l1", "mid", "out", 1e-9)
	c.I("load", "out", Ground, DC(0.5))

	var b strings.Builder
	if err := c.WriteSpice(&b, "test circuit"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"* test circuit",
		"Rr1 in mid 1000",
		"Cc1 mid 0 1e-09",
		"Ll1 mid out 1e-09",
		"Vvs in 0 DC 1",
		"Iload out 0 DC 0.5",
		".end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("netlist missing %q:\n%s", want, out)
		}
	}
	// Default title.
	var b2 strings.Builder
	if err := c.WriteSpice(&b2, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b2.String(), "* netlist") {
		t.Errorf("default title missing: %q", b2.String()[:20])
	}
}

func TestNodes(t *testing.T) {
	c := New()
	c.R("r1", "b", "a", 1)
	c.R("r2", "a", Ground, 1)
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("Nodes = %v", nodes)
	}
}
