package linalg

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func cApproxEq(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol*(1+cmplx.Abs(a)+cmplx.Abs(b))
}

func TestCMatrixAtSetAddZero(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Set(0, 0, 1+2i)
	m.Add(0, 0, 3i)
	if got := m.At(0, 0); got != 1+5i {
		t.Fatalf("At = %v, want 1+5i", got)
	}
	m.Zero()
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("after Zero, At = %v", got)
	}
}

func TestNewCMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCMatrix(-1, 2) did not panic")
		}
	}()
	NewCMatrix(-1, 2)
}

func TestCSolveKnown(t *testing.T) {
	// (1+i)x = 2i  =>  x = 2i/(1+i) = 1+i
	m := NewCMatrix(1, 1)
	m.Set(0, 0, 1+1i)
	x, err := CSolve(m, []complex128{2i})
	if err != nil {
		t.Fatalf("CSolve: %v", err)
	}
	if !cApproxEq(x[0], 1+1i, 1e-12) {
		t.Fatalf("x = %v, want 1+1i", x[0])
	}
}

func TestCSolveSingular(t *testing.T) {
	m := NewCMatrix(2, 2) // all zeros
	if _, err := CSolve(m, []complex128{1, 1}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCSolveDimensionErrors(t *testing.T) {
	if _, err := CSolve(NewCMatrix(2, 3), make([]complex128, 2)); err == nil {
		t.Fatal("non-square CSolve succeeded")
	}
	m := NewCMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	if _, err := CSolve(m, make([]complex128, 3)); err == nil {
		t.Fatal("mismatched RHS CSolve succeeded")
	}
}

func TestCSolveDoesNotModifyInputs(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1i)
	m.Set(1, 0, -1i)
	m.Set(1, 1, 3)
	b := []complex128{1, 2}
	orig := make([]complex128, len(m.Data))
	copy(orig, m.Data)
	if _, err := CSolve(m, b); err != nil {
		t.Fatalf("CSolve: %v", err)
	}
	for i := range orig {
		if m.Data[i] != orig[i] {
			t.Fatal("CSolve modified the input matrix")
		}
	}
	if b[0] != 1 || b[1] != 2 {
		t.Fatal("CSolve modified the RHS")
	}
}

// Property: random diagonally dominant complex systems round-trip.
func TestCSolveRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		m := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, complex(r.NormFloat64(), r.NormFloat64()))
			}
			m.Add(i, i, complex(float64(2*n), 0))
		}
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += m.At(i, j) * want[j]
			}
			b[i] = s
		}
		got, err := CSolve(m, b)
		if err != nil {
			return false
		}
		for i := range got {
			if !cApproxEq(got[i], want[i], 1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
