// Package linalg provides the small dense linear-algebra kernels used by the
// circuit solver: real and complex LU factorization with partial pivoting,
// linear-system solves, and a few vector helpers.
//
// The matrices involved in modified nodal analysis of PDN models are tiny
// (typically fewer than 20 unknowns), so the implementation favours clarity
// and numerical robustness over blocking or parallelism.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular to working precision.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense row-major real matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the element at row i, column j. MNA stamping is a
// sequence of such accumulations, so this is the hot write path.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = m·x. It panics if dimensions disagree.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vector", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// LU is an LU factorization with partial pivoting of a square real matrix,
// suitable for repeated solves against different right-hand sides (the
// fixed-step transient solver factors once per time-step size).
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above diagonal)
	piv  []int     // row permutation
	sign int       // permutation parity, for Det
}

// Factor computes the LU factorization of m. The input is not modified.
func Factor(m *Matrix) (*LU, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: cannot factor non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, m.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below diagonal.
		p, pmax := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax == 0 || math.IsNaN(pmax) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivVal := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivVal
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve returns x such that A·x = b for the factored A. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.n
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch: %d vs %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		d := f.lu[i*n+i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveInto is like Solve but writes the solution into x (len n) and uses
// scratch (len n) to avoid allocation. x and b may alias.
func (f *LU) SolveInto(x, b, scratch []float64) error {
	n := f.n
	if len(b) != n || len(x) != n || len(scratch) < n {
		return fmt.Errorf("linalg: SolveInto dimension mismatch")
	}
	t := scratch[:n]
	for i := 0; i < n; i++ {
		t[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := t[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * t[j]
		}
		t[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := t[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * t[j]
		}
		d := f.lu[i*n+i]
		if d == 0 {
			return ErrSingular
		}
		t[i] = s / d
	}
	copy(x, t)
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}
