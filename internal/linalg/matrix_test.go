package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatrixAtSetAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Fatalf("At(0,1) = %v, want 7", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Fatalf("At(1,2) = %v, want 0", got)
	}
	m.Zero()
	if got := m.At(0, 1); got != 0 {
		t.Fatalf("after Zero, At(0,1) = %v", got)
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 3) did not panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", y)
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong length did not panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestFactorSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	f, err := Factor(m)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	x, err := f.Solve([]float64{5, 10})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !approxEq(x[0], 1, 1e-12) || !approxEq(x[1], 3, 1e-12) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestFactorSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := Factor(m); err != ErrSingular {
		t.Fatalf("Factor of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("Factor of non-square matrix succeeded")
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	f, err := Factor(m)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("Solve with short RHS succeeded")
	}
}

func TestDetIdentityAndSwap(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	f, err := Factor(m)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if d := f.Det(); !approxEq(d, 1, 1e-12) {
		t.Fatalf("Det(I) = %v", d)
	}
	// Known 2x2 determinant.
	m2 := NewMatrix(2, 2)
	m2.Set(0, 0, 3)
	m2.Set(0, 1, 8)
	m2.Set(1, 0, 4)
	m2.Set(1, 1, 6)
	f2, err := Factor(m2)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if d := f2.Det(); !approxEq(d, -14, 1e-12) {
		t.Fatalf("Det = %v, want -14", d)
	}
}

// Property: for random well-conditioned matrices, Solve recovers a known x.
func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, r.NormFloat64())
			}
			m.Add(i, i, float64(n)) // diagonal dominance keeps it well conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := m.MulVec(want)
		f, err := Factor(m)
		if err != nil {
			return false
		}
		got, err := f.Solve(b)
		if err != nil {
			return false
		}
		for i := range got {
			if !approxEq(got[i], want[i], 1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSolveIntoMatchesSolve(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 6
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.NormFloat64())
		}
		m.Add(i, i, 10)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	f, err := Factor(m)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	want, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	got := make([]float64, n)
	scratch := make([]float64, n)
	if err := f.SolveInto(got, b, scratch); err != nil {
		t.Fatalf("SolveInto: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SolveInto[%d] = %v, Solve = %v", i, got[i], want[i])
		}
	}
	// Aliased x and b must also work.
	alias := make([]float64, n)
	copy(alias, b)
	if err := f.SolveInto(alias, alias, scratch); err != nil {
		t.Fatalf("SolveInto aliased: %v", err)
	}
	for i := range alias {
		if alias[i] != want[i] {
			t.Fatalf("aliased SolveInto[%d] = %v, want %v", i, alias[i], want[i])
		}
	}
}

func TestSolveIntoBadLengths(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	f, _ := Factor(m)
	if err := f.SolveInto(make([]float64, 2), make([]float64, 2), nil); err == nil {
		t.Fatal("SolveInto with nil scratch succeeded")
	}
}

func TestClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone shares storage with original")
	}
}
