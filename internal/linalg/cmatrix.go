package linalg

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, used by the AC (frequency
// domain) analysis where element stamps are complex admittances.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the element at row i, column j.
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero resets every element to 0 in place.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CSolve solves A·x = b by Gaussian elimination with partial pivoting.
// A and b are not modified. The matrices are small, so a fresh elimination
// per frequency point is cheap and keeps the AC path simple.
func CSolve(a *CMatrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: CSolve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: CSolve dimension mismatch: %d vs %d", len(b), n)
	}
	m := make([]complex128, n*n)
	copy(m, a.Data)
	x := make([]complex128, n)
	copy(x, b)

	for k := 0; k < n; k++ {
		p, pmax := k, cmplx.Abs(m[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(m[i*n+k]); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := k; j < n; j++ {
				m[p*n+j], m[k*n+j] = m[k*n+j], m[p*n+j]
			}
			x[p], x[k] = x[k], x[p]
		}
		pv := m[k*n+k]
		for i := k + 1; i < n; i++ {
			l := m[i*n+k] / pv
			if l == 0 {
				continue
			}
			m[i*n+k] = 0
			for j := k + 1; j < n; j++ {
				m[i*n+j] -= l * m[k*n+j]
			}
			x[i] -= l * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m[i*n+j] * x[j]
		}
		x[i] = s / m[i*n+i]
	}
	return x, nil
}
