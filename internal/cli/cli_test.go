package cli

import (
	"flag"
	"strconv"
	"testing"

	"repro/internal/platform"
)

// flagNames collects the registered flag names of a set.
func flagNames(fs *flag.FlagSet) map[string]*flag.Flag {
	out := make(map[string]*flag.Flag)
	fs.VisitAll(func(f *flag.Flag) { out[f.Name] = f })
	return out
}

// TestFlagInventory walks every command profile and checks that the
// universal block is registered on all of them and the per-command flags
// appear exactly when the profile declares them. This is the drift guard:
// a command that grows a private -remote or loses -j fails here.
func TestFlagInventory(t *testing.T) {
	for name, spec := range Profiles {
		t.Run(name, func(t *testing.T) {
			fs := flag.NewFlagSet(name, flag.ContinueOnError)
			app := New(name, fs)
			flags := flagNames(fs)

			for _, u := range UniversalFlags {
				if _, ok := flags[u]; !ok {
					t.Errorf("%s is missing universal flag -%s", name, u)
				}
			}
			conditional := map[string]bool{
				"platform": spec.Platform,
				"domain":   spec.Platform,
				"cores":    spec.Cores,
				"samples":  spec.Samples,
				"session":  spec.Session,
			}
			for fname, want := range conditional {
				if _, got := flags[fname]; got != want {
					t.Errorf("%s: -%s registered=%v, profile says %v", name, fname, got, want)
				}
			}

			if got := flags["seed"].DefValue; got != strconv.FormatInt(spec.SeedDefault, 10) {
				t.Errorf("%s: -seed default %s, want %d", name, got, spec.SeedDefault)
			}
			if spec.Cores {
				if got := flags["cores"].DefValue; got != strconv.Itoa(spec.CoresDefault) {
					t.Errorf("%s: -cores default %s, want %d", name, got, spec.CoresDefault)
				}
			}
			if spec.Platform {
				if got := flags["domain"].DefValue; got != spec.DomainDefault {
					t.Errorf("%s: -domain default %q, want %q", name, got, spec.DomainDefault)
				}
			}

			// The App handles mirror the registration.
			if app.Seed == nil || app.Jobs == nil || app.Verbose == nil ||
				app.Remote == nil || app.Backends == nil || app.Checkpoint == nil ||
				app.CacheDir == nil || app.CPUProfile == nil || app.MemProfile == nil {
				t.Errorf("%s: universal flag pointer is nil", name)
			}
			if (app.Platform != nil) != spec.Platform || (app.Cores != nil) != spec.Cores ||
				(app.Samples != nil) != spec.Samples || (app.Session != nil) != spec.Session {
				t.Errorf("%s: App pointers disagree with profile %+v", name, spec)
			}
		})
	}
}

// TestProfileDefaults pins the command-specific defaults users depend on.
func TestProfileDefaults(t *testing.T) {
	if Profiles["repro"].SeedDefault != 7 {
		t.Error("repro's historical -seed default is 7")
	}
	g := Profiles["gahunt"]
	if g.DomainDefault != platform.DomainA72 || g.CoresDefault != 2 {
		t.Errorf("gahunt defaults drifted: %+v", g)
	}
	for _, name := range []string{"sweep", "vmin", "characterize", "gahunt"} {
		if !Profiles[name].Platform {
			t.Errorf("%s must carry -platform/-domain", name)
		}
	}
}

// TestNewPanicsOnUnknownCommand: a command not in Profiles is a programming
// error, caught at startup.
func TestNewPanicsOnUnknownCommand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(\"nope\") did not panic")
		}
	}()
	New("nope", flag.NewFlagSet("nope", flag.ContinueOnError))
}

// TestBuildPlatform covers the CLI platform names.
func TestBuildPlatform(t *testing.T) {
	for name, want := range map[string]string{"juno": "juno-r2", "amd": "amd-desktop", "gpu": "gpu-card"} {
		p, err := BuildPlatform(name)
		if err != nil {
			t.Fatalf("BuildPlatform(%q): %v", name, err)
		}
		if p.Name != want {
			t.Errorf("BuildPlatform(%q).Name = %q, want %q", name, p.Name, want)
		}
	}
	if _, err := BuildPlatform("vax"); err == nil {
		t.Error("unknown platform accepted")
	}
}
