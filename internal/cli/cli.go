// Package cli is the shared wiring of the measurement commands (sweep,
// vmin, characterize, gahunt, repro): one flag vocabulary, one platform
// builder, one backend construction path. Every command gets the same
// universal block — -seed, -j, -v, -remote, -backends, -checkpoint,
// -cpuprofile, -memprofile — plus the per-command flags its profile
// declares, so `-remote ADDR` means exactly the same thing everywhere and
// a new command cannot drift.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/fleet"
	"repro/internal/lab"
	"repro/internal/platform"
	"repro/internal/prof"
	"repro/internal/session"
	"repro/internal/uarch"
)

// Spec declares which per-command flags a command carries on top of the
// universal block.
type Spec struct {
	// Platform/domain selection (-platform, -domain).
	Platform        bool
	PlatformDefault string // default for -platform; "" = no default (repro's slot-override semantics)
	DomainDefault   string // default for -domain; "" = platform's first
	// Cores adds -cores (active cores; 0 = all powered unless CoresDefault).
	Cores        bool
	CoresDefault int
	// Samples adds -samples (analyzer averaging; default 30).
	Samples bool
	// Session adds -session (write a JSON session report).
	Session bool
	// SeedDefault is the -seed default (repro historically uses 7).
	SeedDefault int64
}

// Profiles is the flag inventory of every measurement command. The
// flag-parity test in this package walks it, so adding a command here is
// what keeps the inventory honest.
var Profiles = map[string]Spec{
	"sweep":        {Platform: true, PlatformDefault: "juno", Samples: true, Session: true, SeedDefault: 1},
	"vmin":         {Platform: true, PlatformDefault: "juno", Cores: true, Session: true, SeedDefault: 1},
	"characterize": {Platform: true, PlatformDefault: "juno", Cores: true, SeedDefault: 1},
	"gahunt":       {Platform: true, PlatformDefault: "juno", DomainDefault: platform.DomainA72, Cores: true, CoresDefault: 2, Samples: true, Session: true, SeedDefault: 1},
	"repro":        {Platform: true, SeedDefault: 7},
}

// UniversalFlags is the block every command registers.
var UniversalFlags = []string{"seed", "j", "v", "remote", "backends", "checkpoint", "cache-dir", "cpuprofile", "memprofile"}

// App is one command's parsed flag set plus the construction helpers that
// turn it into a Backend.
type App struct {
	Name string
	Spec Spec

	Seed       *int64
	Jobs       *int
	Verbose    *bool
	Remote     *string
	Backends   *string
	Checkpoint *string
	CacheDir   *string
	CPUProfile *string
	MemProfile *string

	Platform   *string // nil unless Spec.Platform
	DomainFlag *string
	Cores      *int    // nil unless Spec.Cores
	Samples    *int    // nil unless Spec.Samples
	Session    *string // nil unless Spec.Session

	// BenchSamples overrides the bench's analyzer averaging when the
	// command has no -samples flag (characterize -quick). Set it before
	// calling Backend.
	BenchSamples int

	fs    *flag.FlagSet
	cache *castore.Store
}

// New registers the command's flag profile on fs (flag.CommandLine in the
// real commands, a scratch set in tests). The command name must appear in
// Profiles.
func New(name string, fs *flag.FlagSet) *App {
	spec, ok := Profiles[name]
	if !ok {
		panic(fmt.Sprintf("cli: no flag profile for command %q", name))
	}
	a := &App{Name: name, Spec: spec, fs: fs}
	a.Seed = fs.Int64("seed", spec.SeedDefault, "random seed")
	a.Jobs = fs.Int("j", runtime.NumCPU(), "parallel evaluations (results are identical at any setting)")
	a.Verbose = fs.Bool("v", false, "print evaluation statistics (transport counters when -remote, cache counters otherwise)")
	a.Remote = fs.String("remote", "", "labtarget address for remote measurement (host:port)")
	a.Backends = fs.String("backends", "", "comma-separated rig fleet: labtarget addresses and/or \"local\" (host1:port,host2:port,local)")
	a.Checkpoint = fs.String("checkpoint", "", "journal completed fleet shards to this file; a restarted campaign replays them instead of re-measuring")
	a.CacheDir = fs.String("cache-dir", os.Getenv("REPRO_CACHE_DIR"),
		"directory of the persistent result cache shared across runs and processes (default $REPRO_CACHE_DIR; empty disables)")
	a.CPUProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
	a.MemProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	if spec.Platform {
		platformHelp := "platform: " + strings.Join(platform.BuiltinNames(), ", ") + ", or a .json platform spec"
		if spec.PlatformDefault == "" {
			platformHelp = "substitute this platform (registry name or .json spec) for the experiment slot its ISA matches"
		}
		a.Platform = fs.String("platform", spec.PlatformDefault, platformHelp)
		domainHelp := "voltage domain (defaults to the platform's first)"
		if spec.DomainDefault != "" {
			domainHelp = "voltage domain"
		}
		a.DomainFlag = fs.String("domain", spec.DomainDefault, domainHelp)
	}
	if spec.Cores {
		coresHelp := "active cores (default: all powered)"
		if spec.CoresDefault > 0 {
			coresHelp = "active cores"
		}
		a.Cores = fs.Int("cores", spec.CoresDefault, coresHelp)
	}
	if spec.Samples {
		a.Samples = fs.Int("samples", 30, "analyzer sweeps averaged per measurement")
	}
	if spec.Session {
		a.Session = fs.String("session", "", "write a JSON session report to this file")
	}
	return a
}

// StartProfiling starts the pprof writers the universal flags request;
// call the returned stop function at exit.
func (a *App) StartProfiling() (func(), error) {
	return prof.Start(*a.CPUProfile, *a.MemProfile)
}

// BuildPlatform constructs a platform from its CLI name: a spec-registry
// entry (or one of the historical aliases juno/amd/gpu), or a .json
// platform-spec file of any supported schema version.
func BuildPlatform(name string) (*platform.Platform, error) {
	return platform.Resolve(name)
}

// InstallCache opens the persistent result store named by -cache-dir (or
// $REPRO_CACHE_DIR) and installs it as the disk tier under every
// evaluation cache — the uarch trace cache, the platform spectra memo and
// the bench measurement memo — so this process warm-starts from earlier
// runs and co-located processes share each other's work. A no-op when no
// directory is configured; idempotent otherwise. Backend calls it, and
// commands that construct their own benches (repro) call it before
// building an experiment context.
func (a *App) InstallCache() (*castore.Store, error) {
	if a.cache != nil {
		return a.cache, nil
	}
	s, err := InstallCacheDir(*a.CacheDir)
	if err != nil {
		return nil, err
	}
	a.cache = s
	return s, nil
}

// InstallCacheDir opens a persistent store at dir and installs it under
// the process's evaluation caches; an empty dir is a no-op returning nil.
// Shared by App.InstallCache and commands with their own flag sets
// (labtarget), so every entry point installs the tier the same way.
func InstallCacheDir(dir string) (*castore.Store, error) {
	dir = strings.TrimSpace(dir)
	if dir == "" {
		return nil, nil
	}
	s, err := castore.Open(dir, castore.Options{})
	if err != nil {
		return nil, fmt.Errorf("-cache-dir: %w", err)
	}
	uarch.SetPersistentStore(s)
	platform.SetPersistentStore(s)
	core.SetPersistentStore(s)
	return s, nil
}

// platformSet reports whether -platform was given explicitly.
func (a *App) platformSet() bool {
	set := false
	a.fs.Visit(func(f *flag.Flag) {
		if f.Name == "platform" {
			set = true
		}
	})
	return set
}

// Backend builds the measurement backend the flags select: a local bench
// seeded by -seed, a pool of -j sessions against a lab daemon (with
// -remote), or a fleet of rigs (with -backends). An explicit -platform
// combined with -remote is verified against the daemon's identity, so
// pointing a juno campaign at an amd daemon fails up front instead of
// producing a confusing report.
func (a *App) Backend() (backend.Backend, error) {
	if _, err := a.InstallCache(); err != nil {
		return nil, err
	}
	if *a.Backends != "" {
		if *a.Remote != "" {
			return nil, fmt.Errorf("-remote and -backends are mutually exclusive; list the daemon in -backends instead")
		}
		return a.fleetBackend()
	}
	if *a.Checkpoint != "" {
		return nil, fmt.Errorf("-checkpoint needs a fleet (-backends)")
	}
	if *a.Remote != "" {
		be, err := backend.NewRemote(*a.Remote, *a.Jobs, lab.Options{})
		if err != nil {
			return nil, err
		}
		if s := a.samples(); s > 0 {
			be.Samples = s
		}
		if a.Platform != nil && a.platformSet() {
			p, err := BuildPlatform(*a.Platform)
			if err != nil {
				be.Close()
				return nil, err
			}
			if p.Name != be.PlatformName() {
				be.Close()
				return nil, fmt.Errorf("remote daemon at %s serves %s, but -platform %s (%s) was requested",
					*a.Remote, be.PlatformName(), *a.Platform, p.Name)
			}
		}
		return be, nil
	}
	platName := "juno"
	if a.Platform != nil && *a.Platform != "" {
		platName = *a.Platform
	}
	p, err := BuildPlatform(platName)
	if err != nil {
		return nil, err
	}
	bench, err := core.NewBench(p, *a.Seed)
	if err != nil {
		return nil, err
	}
	if s := a.samples(); s > 0 {
		bench.Samples = s
	}
	bench.Parallelism = *a.Jobs
	return backend.NewLocal(bench)
}

// fleetBackend builds one rig per -backends entry — "local" is a bench
// seeded by -seed in this process, anything else a labtarget address —
// and hands them to the fleet coordinator. The campaign salt folds the
// seed and platform choice, so checkpoints journaled under one seed never
// replay into a run with another.
func (a *App) fleetBackend() (backend.Backend, error) {
	var rigs []fleet.Rig
	closeAll := func() {
		for _, r := range rigs {
			r.Backend.Close()
		}
	}
	platName := "juno"
	if a.Platform != nil && *a.Platform != "" {
		platName = *a.Platform
	}
	for _, entry := range strings.Split(*a.Backends, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if entry == "local" {
			p, err := BuildPlatform(platName)
			if err != nil {
				closeAll()
				return nil, err
			}
			bench, err := core.NewBench(p, *a.Seed)
			if err != nil {
				closeAll()
				return nil, err
			}
			if s := a.samples(); s > 0 {
				bench.Samples = s
			}
			bench.Parallelism = *a.Jobs
			be, err := backend.NewLocal(bench)
			if err != nil {
				closeAll()
				return nil, err
			}
			rigs = append(rigs, fleet.Rig{Name: "local", Backend: be})
			continue
		}
		be, err := backend.NewRemote(entry, *a.Jobs, lab.Options{})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("rig %s: %w", entry, err)
		}
		if s := a.samples(); s > 0 {
			be.Samples = s
		}
		rigs = append(rigs, fleet.Rig{Name: entry, Backend: be})
	}
	if len(rigs) == 0 {
		return nil, fmt.Errorf("-backends lists no rigs")
	}
	opts := fleet.Options{Slots: *a.Jobs, Salt: fleetSalt(*a.Seed, platName)}
	if *a.Checkpoint != "" {
		ckpt, err := fleet.OpenCheckpoint(*a.Checkpoint)
		if err != nil {
			closeAll()
			return nil, err
		}
		opts.Checkpoint = ckpt
	}
	f, err := fleet.New(rigs, opts)
	if err != nil {
		closeAll()
		if opts.Checkpoint != nil {
			opts.Checkpoint.Close()
		}
		return nil, err
	}
	return f, nil
}

// fleetSalt derives the campaign-key salt from the run identity the
// backend surface cannot observe.
func fleetSalt(seed int64, platName string) uint64 {
	h := detrand.NewHash()
	h.Uint64(uint64(seed))
	h.String(platName)
	return h.Sum()
}

// samples resolves the effective analyzer averaging override: the
// -samples flag when present, else BenchSamples, else 0 (backend
// default).
func (a *App) samples() int {
	if a.Samples != nil {
		return *a.Samples
	}
	return a.BenchSamples
}

// Domain resolves the target domain: the -domain flag, or the backend's
// first domain. The choice is validated against the backend's capability
// query.
func (a *App) Domain(be backend.Backend) (string, error) {
	name := ""
	if a.DomainFlag != nil {
		name = *a.DomainFlag
	}
	if name == "" {
		doms := be.Domains()
		if len(doms) == 0 {
			return "", fmt.Errorf("backend reports no domains")
		}
		name = doms[0]
	}
	if _, err := be.Caps(name); err != nil {
		return "", err
	}
	return name, nil
}

// ActiveCores resolves the -cores flag: an explicit value passes through,
// 0 means every currently powered core.
func (a *App) ActiveCores(be backend.Backend, domain string) (int, error) {
	if a.Cores != nil && *a.Cores > 0 {
		return *a.Cores, nil
	}
	st, err := be.State(domain)
	if err != nil {
		return 0, err
	}
	return st.PoweredCores, nil
}

// MaybePrintStats prints the -v diagnostics: the rig's evaluation-cache
// counters for a local backend, the transport counters for a remote one.
func (a *App) MaybePrintStats(be backend.Backend, domain string) {
	if !*a.Verbose {
		return
	}
	if r, ok := be.(*backend.Remote); ok {
		fmt.Println(r.TransportStats().String())
		return
	}
	stats, err := be.EvalStats(domain)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: stats: %v\n", a.Name, err)
		return
	}
	fmt.Println(stats)
}

// NewSession starts a session report for the domain's current state as
// the backend observes it.
func (a *App) NewSession(be backend.Backend, domain string, now time.Time) (*session.Report, error) {
	return session.New(be, domain, now)
}

// SaveSession writes a session report to the -session file when one was
// requested; it is a no-op otherwise.
func (a *App) SaveSession(rep *session.Report) error {
	if a.Session == nil || *a.Session == "" {
		return nil
	}
	f, err := os.Create(*a.Session)
	if err != nil {
		return err
	}
	if err := rep.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("session report written to %s\n", *a.Session)
	return nil
}

// RemoteBackends dials a comma-separated list of labtarget addresses and
// keys the resulting backends by the platform each daemon serves (repro
// drives multiple rigs — one per platform). The returned closer shuts
// down every pool.
func RemoteBackends(addrs string, jobs int) (map[string]backend.Backend, func(), error) {
	out := make(map[string]backend.Backend)
	closeAll := func() {
		for _, be := range out {
			be.Close()
		}
	}
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		be, err := backend.NewRemote(addr, jobs, lab.Options{})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		name := be.PlatformName()
		if prev, dup := out[name]; dup {
			be.Close()
			closeAll()
			_ = prev
			return nil, nil, fmt.Errorf("two daemons serve platform %s (%s and %s)", name, addr, addrs)
		}
		out[name] = be
	}
	return out, closeAll, nil
}

// Fatal prints a command-prefixed error and exits.
func (a *App) Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", a.Name, err)
	os.Exit(1)
}
