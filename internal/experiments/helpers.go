package experiments

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/fleet"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/vmin"
	"repro/internal/workload"
)

// buildLoad constructs a named workload for a domain.
func buildLoad(d *platform.Domain, name string, cores int) (platform.Load, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return platform.Load{}, err
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		return platform.Load{}, err
	}
	return platform.Load{Seq: seq, ActiveCores: cores}, nil
}

// virusLoad wraps a generated virus as a platform load.
func (c *Context) virusLoad(name string) (*platform.Domain, platform.Load, error) {
	res, err := c.Virus(name)
	if err != nil {
		return nil, platform.Load{}, err
	}
	d, cores, err := c.VirusDomain(name)
	if err != nil {
		return nil, platform.Load{}, err
	}
	return d, platform.Load{Seq: res.Best.Seq, ActiveCores: cores}, nil
}

// vminRow is one bar of a V_MIN figure.
type vminRow struct {
	Name   string
	VminV  float64
	DroopV float64
	Kind   vmin.FailureKind
}

// vminCampaign measures V_MIN and nominal droop for a set of loads on one
// domain through its backend. Viruses are repeated per the paper (worst
// of N); plain benchmarks get a single search. The trial RNG is keyed by
// seed and operating point, so per-load backend calls reproduce the old
// shared-tester results exactly. On a fleet, each repeats class becomes
// one sharded campaign instead of per-load serial calls.
func (c *Context) vminCampaign(be backend.Backend, domain string, loads map[string]platform.Load,
	virusNames map[string]bool, order []string) ([]vminRow, error) {
	repeatsOf := make([]int, len(order))
	loadOf := make([]platform.Load, len(order))
	for i, name := range order {
		l, ok := loads[name]
		if !ok {
			return nil, fmt.Errorf("experiments: no load %q in campaign", name)
		}
		loadOf[i] = l
		repeatsOf[i] = 1
		if virusNames[name] {
			repeatsOf[i] = c.vminRepeats()
		}
	}
	results := make([]*vmin.Result, len(order))
	if f, ok := be.(*fleet.Fleet); ok {
		done := make([]bool, len(order))
		for i := range order {
			if done[i] {
				continue
			}
			var idxs []int
			var group []platform.Load
			for j := i; j < len(order); j++ {
				if !done[j] && repeatsOf[j] == repeatsOf[i] {
					done[j] = true
					idxs = append(idxs, j)
					group = append(group, loadOf[j])
				}
			}
			rs, _, err := f.VminMany(domain, group, c.Opts.Seed+30, repeatsOf[i])
			if err != nil {
				return nil, fmt.Errorf("experiments: vmin campaign: %w", err)
			}
			for k, j := range idxs {
				results[j] = rs[k]
			}
		}
	} else {
		for i, name := range order {
			res, _, err := be.Vmin(domain, loadOf[i], c.Opts.Seed+30, repeatsOf[i])
			if err != nil {
				return nil, fmt.Errorf("experiments: vmin of %q: %w", name, err)
			}
			results[i] = res
		}
	}
	rows := make([]vminRow, len(order))
	for i, name := range order {
		res := results[i]
		rows[i] = vminRow{Name: name, VminV: res.VminV, DroopV: res.DroopNominalV, Kind: res.Outcome}
	}
	return rows, nil
}

// gaSeries extracts the per-generation best-amplitude and dominant
// frequency series from a GA history.
func gaSeries(res *ga.Result) (gens, bestDBm, domMHz []float64) {
	for _, g := range res.History {
		gens = append(gens, float64(g.Gen))
		bestDBm = append(bestDBm, g.BestFitness)
		domMHz = append(domMHz, g.BestDominant/1e6)
	}
	return gens, bestDBm, domMHz
}

// mixPct renders an instruction-class share for Table 2.
func mixPct(mix map[isa.Class]float64, classes ...isa.Class) string {
	var total float64
	for _, cl := range classes {
		total += mix[cl]
	}
	return fmt.Sprintf("%.0f%%", total*100)
}
