package experiments

import (
	"math"
	"testing"
)

// extension runs one extension experiment against the shared quick context.
func extension(t *testing.T, id string) *Result {
	t.Helper()
	suite(t) // ensure the shared context (and cached viruses) exist
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res
}

func TestExtensionInventory(t *testing.T) {
	exts := Extensions()
	if len(exts) != 5 {
		t.Fatalf("%d extensions, want 5", len(exts))
	}
	for _, e := range exts {
		if e.Title == "" || e.Run == nil {
			t.Errorf("extension %s incomplete", e.ID)
		}
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
}

func TestExtGPU(t *testing.T) {
	res := extension(t, "ext-gpu")
	all := res.Values["resonance_8sm_hz"]
	gated := res.Values["resonance_2sm_hz"]
	if all < 52e6 || all > 72e6 {
		t.Errorf("GPU resonance %v, want near 56-62 MHz", all)
	}
	if gated < all+10e6 {
		t.Errorf("gating 6 of 8 SMs shifted resonance only %v -> %v", all, gated)
	}
	dom := res.Values["virus_dominant_hz"]
	if dom < 50e6 || dom > 90e6 {
		t.Errorf("GPU virus dominant %v outside the resonance region", dom)
	}
}

func TestExtPredict(t *testing.T) {
	res := extension(t, "ext-predict")
	if rmse := res.Values["heldout_rmse_mv"]; rmse > 25 {
		t.Errorf("held-out droop RMSE %v mV", rmse)
	}
	// The virus (far outside the training distribution) is still predicted
	// within 50%.
	actual := res.Values["emVirus_actual_mv"]
	pred := res.Values["emVirus_pred_mv"]
	if math.Abs(pred-actual) > 0.5*actual {
		t.Errorf("virus droop predicted %v mV, actual %v mV", pred, actual)
	}
}

func TestExtTamper(t *testing.T) {
	res := extension(t, "ext-tamper")
	if res.Values["genuine_flagged"] != 0 {
		t.Error("genuine board flagged as tampered")
	}
	if res.Values["tampered_flagged"] != 1 {
		t.Error("interposer implant not detected")
	}
	if res.Values["tamper_shift_hz"] >= 0 {
		t.Errorf("interposer shift %v, want downward", res.Values["tamper_shift_hz"])
	}
}

func TestExtMitigate(t *testing.T) {
	res := extension(t, "ext-mitigate")
	b4 := res.Values["budget_4cores_ns"]
	b1 := res.Values["budget_1cores_ns"]
	if b4 <= 0 || b1 <= 0 {
		t.Fatalf("latency budgets %v %v", b4, b1)
	}
	if b1 >= b4 {
		t.Errorf("power-gating did not shrink the latency budget: %v ns -> %v ns", b4, b1)
	}
	if res.Values["resonance_1cores_hz"] <= res.Values["resonance_4cores_hz"] {
		t.Error("resonance did not rise with gating")
	}
}

func TestExtSDR(t *testing.T) {
	res := extension(t, "ext-sdr")
	if d := res.Values["agreement_hz"]; d > 2e6 {
		t.Errorf("SDR and analyzer disagree by %v Hz", d)
	}
}
