package experiments

import (
	"fmt"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/fingerprint"
	"repro/internal/instrument"
	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/predict"
	"repro/internal/report"
)

// Extensions returns the experiments that go beyond the paper: its own
// Section 10 future-work items (GPU PDNs, EM-based margin prediction,
// tamper detection) plus studies the text motivates (adaptive-clocking
// latency budgets under power gating, SDR receivers as the front end).
func Extensions() []Experiment {
	return []Experiment{
		{ID: "ext-gpu", Title: "EM methodology on a GPU PDN (Section 10a)", Run: runExtGPU},
		{ID: "ext-predict", Title: "Voltage-margin prediction from EM features (Section 10c)", Run: runExtPredict},
		{ID: "ext-tamper", Title: "Tamper detection via resonance fingerprinting (Section 5.3)", Run: runExtTamper},
		{ID: "ext-mitigate", Title: "Adaptive-clocking latency budget vs power gating (Section 6)", Run: runExtMitigate},
		{ID: "ext-sdr", Title: "RTL-SDR receiver as the sensing front end (Section 4)", Run: runExtSDR},
	}
}

// runExtGPU applies the full methodology to the discrete-GPU platform:
// fast sweep, SM power-gating shifts, and an EM-driven virus.
func runExtGPU(c *Context) (*Result, error) {
	p, err := platform.GPUCard()
	if err != nil {
		return nil, err
	}
	b, err := core.NewBench(p, c.Opts.Seed+70)
	if err != nil {
		return nil, err
	}
	if c.Opts.Quick {
		b.Samples = 5
	}
	d, err := p.Domain(platform.DomainGPU)
	if err != nil {
		return nil, err
	}
	all, err := b.FastResonanceSweep(d, 8)
	if err != nil {
		return nil, err
	}
	if err := d.SetPoweredCores(2); err != nil {
		return nil, err
	}
	gated, err := b.FastResonanceSweep(d, 1)
	d.Reset()
	if err != nil {
		return nil, err
	}
	cfg := c.gaConfig(d.Spec.Pool())
	virus, err := b.GenerateVirus(d, cfg, 8, nil)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("EM methodology on a GPU card (8 SMs)", "measurement", "result")
	tb.AddRow("fast sweep, 8 SMs", report.MHz(all.ResonanceHz))
	tb.AddRow("fast sweep, 2 SMs", report.MHz(gated.ResonanceHz))
	tb.AddRow("GA virus dominant", report.MHz(virus.Best.DominantHz))
	tb.AddRow("GA amplitude gain", fmt.Sprintf("%.1f dB",
		virus.History[len(virus.History)-1].BestFitness-virus.History[0].BestFitness))
	return &Result{
		ID: "ext-gpu", Title: "EM methodology on a GPU PDN", Text: tb.String(),
		Values: map[string]float64{
			"resonance_8sm_hz":  all.ResonanceHz,
			"resonance_2sm_hz":  gated.ResonanceHz,
			"virus_dominant_hz": virus.Best.DominantHz,
		},
	}, nil
}

// runExtPredict trains the EM→droop regression on ordinary benchmarks and
// evaluates it on held-out workloads including the A72 virus.
func runExtPredict(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	trainNames := []string{"idle", "mcf", "povray", "hmmer", "namd", "gcc", "h264ref", "prime95", "milc", "bzip2"}
	var train []predict.Sample
	for _, n := range trainNames {
		l, err := buildLoad(d, n, 2)
		if err != nil {
			return nil, err
		}
		s, err := predict.Collect(c.JunoBench, d, n, l)
		if err != nil {
			return nil, err
		}
		train = append(train, s)
	}
	model, err := predict.Train(train)
	if err != nil {
		return nil, err
	}
	var test []predict.Sample
	for _, n := range []string{"lbm", "soplex"} {
		l, err := buildLoad(d, n, 2)
		if err != nil {
			return nil, err
		}
		s, err := predict.Collect(c.JunoBench, d, n, l)
		if err != nil {
			return nil, err
		}
		test = append(test, s)
	}
	_, virusLoad, err := c.virusLoad(VirusA72EM)
	if err != nil {
		return nil, err
	}
	vs, err := predict.Collect(c.JunoBench, d, "emVirus", virusLoad)
	if err != nil {
		return nil, err
	}
	test = append(test, vs)
	rmse, worst := model.Evaluate(test)

	tb := report.NewTable("Droop prediction from EM features (trained on 10 benchmarks)",
		"workload", "actual droop", "predicted", "predicted margin")
	vals := map[string]float64{
		"train_rmse_mv":   model.TrainRMSE * 1e3,
		"heldout_rmse_mv": rmse * 1e3,
		"worst_err_mv":    worst * 1e3,
	}
	for _, s := range test {
		pred := model.PredictDroop(s.Features)
		tb.AddRow(s.Name, report.MV(s.DroopV), report.MV(pred),
			report.MV(model.PredictMargin(d, s.Features)))
		vals[s.Name+"_actual_mv"] = s.DroopV * 1e3
		vals[s.Name+"_pred_mv"] = pred * 1e3
	}
	return &Result{ID: "ext-predict", Title: "Voltage-margin prediction from EM features",
		Text: tb.String(), Values: vals}, nil
}

// runExtTamper provisions a fingerprint of the genuine Juno A72 rail and
// checks it against (a) the same board re-swept and (b) a board with an
// interposer implant adding package inductance.
func runExtTamper(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	ref, err := fingerprint.Capture(c.JunoBench, d, 2)
	if err != nil {
		return nil, err
	}
	recheck, err := fingerprint.Capture(c.JunoBench, d, 2)
	if err != nil {
		return nil, err
	}
	genuine, err := fingerprint.Compare(ref, recheck, fingerprint.DefaultThresholds())
	if err != nil {
		return nil, err
	}
	// The implant: an interposer adds series inductance to the power path.
	a72 := d.Spec
	a53 := c.Juno.Domains()[1].Spec
	a72.PDN.LPkg *= 1.35
	evil, err := platform.NewPlatform("juno-implant", c.Juno.Antenna, a72, a53)
	if err != nil {
		return nil, err
	}
	evilBench, err := core.NewBench(evil, c.Opts.Seed+71)
	if err != nil {
		return nil, err
	}
	evilBench.Samples = c.JunoBench.Samples
	evilDom, err := evil.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	cur, err := fingerprint.Capture(evilBench, evilDom, 2)
	if err != nil {
		return nil, err
	}
	tampered, err := fingerprint.Compare(ref, cur, fingerprint.DefaultThresholds())
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Resonance fingerprinting", "board", "shift", "curve RMS", "verdict")
	tb.AddRow("genuine (re-sweep)", report.MHz(genuine.ShiftHz),
		fmt.Sprintf("%.2f dB", genuine.CurveRMSDB), verdict(genuine.Tampered))
	tb.AddRow("interposer implant", report.MHz(tampered.ShiftHz),
		fmt.Sprintf("%.2f dB", tampered.CurveRMSDB), verdict(tampered.Tampered))
	return &Result{ID: "ext-tamper", Title: "Tamper detection via resonance fingerprinting",
		Text: tb.String(),
		Values: map[string]float64{
			"genuine_flagged":  boolVal(genuine.Tampered),
			"tampered_flagged": boolVal(tampered.Tampered),
			"tamper_shift_hz":  tampered.ShiftHz,
		},
	}, nil
}

// runExtMitigate measures the adaptive-clocking latency budget on the
// Cortex-A53 rail as cores are power-gated: the resonance climbs and the
// warning-to-emergency lead time shrinks.
func runExtMitigate(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA53)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Adaptive clocking vs power gating (Cortex-A53)",
		"powered cores", "resonance", "max workable latency")
	vals := make(map[string]float64)
	for _, cores := range []int{4, 2, 1} {
		if err := d.SetPoweredCores(cores); err != nil {
			return nil, err
		}
		m, err := d.Model()
		if err != nil {
			d.Reset()
			return nil, err
		}
		fRes, _, err := m.ResonancePeak(40e6, 150e6)
		if err != nil {
			d.Reset()
			return nil, err
		}
		scl := instrument.NewSCL(1.2)
		resp, err := scl.Excite(m, fRes)
		if err != nil {
			d.Reset()
			return nil, err
		}
		ptp := resp.PeakToPeak()
		ac := mitigate.AdaptiveClock{WarnDroopV: ptp * 0.15, EmergencyDroopV: ptp * 0.45}
		var lats []float64
		for l := 0.0; l <= 8e-9; l += 0.05e-9 {
			lats = append(lats, l)
		}
		points, err := mitigate.LatencySweep(ac, resp, m.Params.VNominal, lats)
		if err != nil {
			d.Reset()
			return nil, err
		}
		budget := mitigate.CriticalLatency(points)
		tb.AddRow(fmt.Sprintf("%d", cores), report.MHz(fRes), fmt.Sprintf("%.2f ns", budget*1e9))
		vals[fmt.Sprintf("budget_%dcores_ns", cores)] = budget * 1e9
		vals[fmt.Sprintf("resonance_%dcores_hz", cores)] = fRes
	}
	d.Reset()
	return &Result{ID: "ext-mitigate", Title: "Adaptive-clocking latency budget vs power gating",
		Text: tb.String(), Values: vals}, nil
}

// runExtSDR verifies that a $20 SDR receiver identifies the same dominant
// emission as the bench spectrum analyzer while the A72 virus runs.
func runExtSDR(c *Context) (*Result, error) {
	d, virusLoad, err := c.virusLoad(VirusA72EM)
	if err != nil {
		return nil, err
	}
	// Incident spectrum at the antenna.
	freqs, _, iAmp, _, err := d.Spectra(virusLoad, c.JunoBench.Dt, c.JunoBench.N)
	if err != nil {
		return nil, err
	}
	_, watts, err := em.CombinedSpectrum(c.Juno.Antenna, []em.Emitter{
		{Freqs: freqs, IAmp: iAmp, Path: d.Spec.EMPath},
	})
	if err != nil {
		return nil, err
	}
	analyzer, err := c.JunoBench.Analyzer.MeasurePeak(freqs, watts,
		c.JunoBench.Band.Lo, c.JunoBench.Band.Hi, c.JunoBench.Samples)
	if err != nil {
		return nil, err
	}
	sdr := instrument.NewRTLSDR(c.Opts.Seed + 72)
	scan, err := sdr.Scan(freqs, watts, c.JunoBench.Band.Lo, c.JunoBench.Band.Hi, 2048)
	if err != nil {
		return nil, err
	}
	sdrHz, sdrDBm, ok := scan.PeakInBand(c.JunoBench.Band.Lo, c.JunoBench.Band.Hi)
	if !ok {
		return nil, fmt.Errorf("ext-sdr: no SDR peak")
	}
	tb := report.NewTable("Analyzer vs RTL-SDR on the A72 virus", "receiver", "dominant", "level")
	tb.AddRow("bench analyzer", report.MHz(analyzer.PeakHz), report.DBm(analyzer.PeakDBm))
	tb.AddRow("rtl-sdr scan", report.MHz(sdrHz), report.DBm(sdrDBm))
	return &Result{ID: "ext-sdr", Title: "RTL-SDR receiver as the sensing front end",
		Text: tb.String(),
		Values: map[string]float64{
			"analyzer_hz":  analyzer.PeakHz,
			"sdr_hz":       sdrHz,
			"agreement_hz": absF(analyzer.PeakHz - sdrHz),
		},
	}, nil
}

func verdict(tampered bool) string {
	if tampered {
		return "TAMPERED"
	}
	return "ok"
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
