package experiments

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/ga"
	"repro/internal/platform"
)

// Virus names used across the experiments (Table 2's rows).
const (
	VirusA72EM  = "a72em"  // EM-driven GA on the Cortex-A72
	VirusA72DSO = "a72dso" // OC-DSO droop-driven GA on the Cortex-A72
	VirusA53EM  = "a53em"  // EM-driven GA on the Cortex-A53
	VirusAMDEM  = "amdem"  // EM-driven GA on the Athlon II
	VirusAMDOsc = "amdosc" // Kelvin-pad oscilloscope-driven GA on the Athlon II
)

// VirusNames lists all virus identifiers in Table 2 order.
func VirusNames() []string {
	return []string{VirusA72DSO, VirusA72EM, VirusA53EM, VirusAMDEM, VirusAMDOsc}
}

// virusSpec describes how a virus is generated.
type virusSpec struct {
	be     func(c *Context) backend.Backend
	domain string
	cores  int
	em     bool // EM-driven; otherwise voltage-driven through the scope
}

var virusSpecs = map[string]virusSpec{
	VirusA72EM:  {be: junoBE, domain: platform.DomainA72, cores: 2, em: true},
	VirusA72DSO: {be: junoBE, domain: platform.DomainA72, cores: 2, em: false},
	VirusA53EM:  {be: junoBE, domain: platform.DomainA53, cores: 4, em: true},
	VirusAMDEM:  {be: amdBE, domain: platform.DomainAthlon, cores: 4, em: true},
	VirusAMDOsc: {be: amdBE, domain: platform.DomainAthlon, cores: 4, em: false},
}

func junoBE(c *Context) backend.Backend { return c.JunoBE }
func amdBE(c *Context) backend.Backend  { return c.AMDBE }

// VirusDomain returns the domain a virus targets and its active-core count.
func (c *Context) VirusDomain(name string) (*platform.Domain, int, error) {
	spec, ok := virusSpecs[name]
	if !ok {
		return nil, 0, fmt.Errorf("experiments: unknown virus %q", name)
	}
	p := c.Juno
	if spec.be(c) == c.AMDBE {
		p = c.AMD
	}
	d, err := p.Domain(spec.domain)
	if err != nil {
		return nil, 0, err
	}
	return d, spec.cores, nil
}

// Virus generates (or returns the cached) GA result for the named virus.
// Measurement runs through the platform's backend; the voltage-driven
// viruses seed their scope from the context seed (+20 for the OC-DSO, +21
// for the bench scope) exactly as before, so the cache keys stay stable
// local or remote.
func (c *Context) Virus(name string) (*ga.Result, error) {
	c.mu.Lock()
	if res, ok := c.viruses[name]; ok {
		c.mu.Unlock()
		return res, nil
	}
	c.mu.Unlock()

	spec, ok := virusSpecs[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown virus %q", name)
	}
	be := spec.be(c)
	caps, err := be.Caps(spec.domain)
	if err != nil {
		return nil, err
	}
	cfg := c.gaConfig(caps.Pool())
	mspec := backend.MeasurerSpec{Domain: spec.domain, Metric: backend.MetricEM, ActiveCores: spec.cores}
	if !spec.em {
		mspec.Metric = backend.MetricDroop
		switch caps.VoltageVisibility {
		case "oc-dso":
			mspec.DSOSeed = c.Opts.Seed + 20
		case "kelvin-pads":
			mspec.DSOSeed = c.Opts.Seed + 21
		default:
			return nil, fmt.Errorf("experiments: virus %q needs voltage visibility on %s", name, spec.domain)
		}
	}
	m, err := be.Measurer(mspec)
	if err != nil {
		return nil, err
	}
	res, err := ga.Run(cfg, m, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating virus %q: %w", name, err)
	}
	c.mu.Lock()
	c.viruses[name] = res
	c.mu.Unlock()
	return res, nil
}
