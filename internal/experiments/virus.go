package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/instrument"
	"repro/internal/platform"
)

// Virus names used across the experiments (Table 2's rows).
const (
	VirusA72EM  = "a72em"  // EM-driven GA on the Cortex-A72
	VirusA72DSO = "a72dso" // OC-DSO droop-driven GA on the Cortex-A72
	VirusA53EM  = "a53em"  // EM-driven GA on the Cortex-A53
	VirusAMDEM  = "amdem"  // EM-driven GA on the Athlon II
	VirusAMDOsc = "amdosc" // Kelvin-pad oscilloscope-driven GA on the Athlon II
)

// VirusNames lists all virus identifiers in Table 2 order.
func VirusNames() []string {
	return []string{VirusA72DSO, VirusA72EM, VirusA53EM, VirusAMDEM, VirusAMDOsc}
}

// virusSpec describes how a virus is generated.
type virusSpec struct {
	bench  func(c *Context) *core.Bench
	domain string
	cores  int
	em     bool // EM-driven; otherwise voltage-driven through the scope
}

var virusSpecs = map[string]virusSpec{
	VirusA72EM:  {bench: junoBench, domain: platform.DomainA72, cores: 2, em: true},
	VirusA72DSO: {bench: junoBench, domain: platform.DomainA72, cores: 2, em: false},
	VirusA53EM:  {bench: junoBench, domain: platform.DomainA53, cores: 4, em: true},
	VirusAMDEM:  {bench: amdBench, domain: platform.DomainAthlon, cores: 4, em: true},
	VirusAMDOsc: {bench: amdBench, domain: platform.DomainAthlon, cores: 4, em: false},
}

func junoBench(c *Context) *core.Bench { return c.JunoBench }
func amdBench(c *Context) *core.Bench  { return c.AMDBench }

// VirusDomain returns the domain a virus targets and its active-core count.
func (c *Context) VirusDomain(name string) (*platform.Domain, int, error) {
	spec, ok := virusSpecs[name]
	if !ok {
		return nil, 0, fmt.Errorf("experiments: unknown virus %q", name)
	}
	d, err := spec.bench(c).Platform.Domain(spec.domain)
	if err != nil {
		return nil, 0, err
	}
	return d, spec.cores, nil
}

// Virus generates (or returns the cached) GA result for the named virus.
func (c *Context) Virus(name string) (*ga.Result, error) {
	c.mu.Lock()
	if res, ok := c.viruses[name]; ok {
		c.mu.Unlock()
		return res, nil
	}
	c.mu.Unlock()

	spec, ok := virusSpecs[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown virus %q", name)
	}
	b := spec.bench(c)
	d, err := b.Platform.Domain(spec.domain)
	if err != nil {
		return nil, err
	}
	cfg := c.gaConfig(d)
	var m ga.Measurer
	if spec.em {
		m = b.EMMeasurer(d, spec.cores)
	} else {
		var dso *instrument.DSO
		switch d.Spec.VoltageVisibility {
		case "oc-dso":
			dso = instrument.NewOCDSO(c.Opts.Seed + 20)
		case "kelvin-pads":
			dso = instrument.NewBenchScope(c.Opts.Seed + 21)
		default:
			return nil, fmt.Errorf("experiments: virus %q needs voltage visibility on %s", name, spec.domain)
		}
		m = b.DroopMeasurer(d, spec.cores, dso)
	}
	res, err := ga.Run(cfg, m, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating virus %q: %w", name, err)
	}
	c.mu.Lock()
	c.viruses[name] = res
	c.mu.Unlock()
	return res, nil
}
