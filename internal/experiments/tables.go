package experiments

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/vmin"
)

// runTab1 reproduces Table 1: the experimental platform inventory.
func runTab1(c *Context) (*Result, error) {
	tb := report.NewTable("Experimental platforms (Table 1)",
		"MB", "CPU", "cores", "ISA", "uArch", "max point", "node (nm)", "OS", "voltage visibility")
	vals := make(map[string]float64)
	for _, p := range []*platform.Platform{c.Juno, c.AMD} {
		for _, d := range p.Domains() {
			s := d.Spec
			uarchKind := "in-order"
			if s.Core.OutOfOrder {
				uarchKind = "out-of-order"
			}
			tb.AddRow(
				s.Board, s.Name, fmt.Sprintf("%d", s.TotalCores), s.ISA.String(), uarchKind,
				fmt.Sprintf("%.2g GHz, %.3g V", s.MaxClockHz/1e9, s.PDN.VNominal),
				fmt.Sprintf("%d", s.TechNode), s.OS, s.VoltageVisibility,
			)
			vals[s.Name+"_cores"] = float64(s.TotalCores)
			vals[s.Name+"_max_hz"] = s.MaxClockHz
			vals[s.Name+"_vnom"] = s.PDN.VNominal
		}
	}
	return &Result{ID: "tab1", Title: "Experimental platforms", Text: tb.String(), Values: vals}, nil
}

// runTab2 reproduces Table 2: the generated viruses compared by IPC, loop
// period/frequency, dominant frequency, voltage margin and instruction mix.
func runTab2(c *Context) (*Result, error) {
	tb := report.NewTable("dI/dt virus comparison (Table 2)",
		"virus", "loop instr", "IPC", "loop period (ns)", "loop freq (MHz)",
		"dominant (MHz)", "margin (mV)", "branch", "SL int", "LL int", "int-mem", "float", "SIMD", "mem")
	vals := make(map[string]float64)
	for _, name := range VirusNames() {
		res, err := c.Virus(name)
		if err != nil {
			return nil, err
		}
		d, cores, err := c.VirusDomain(name)
		if err != nil {
			return nil, err
		}
		load := platform.Load{Seq: res.Best.Seq, ActiveCores: cores}
		// Loop metrics from the micro-architectural model at max clock.
		_, ur, err := d.Current(load, c.JunoBench.Dt, 2048)
		if err != nil {
			return nil, err
		}
		clock := d.ClockHz()
		loopHz := power.LoopFrequency(ur, clock)
		periodNs := 1e9 / loopHz
		// Margin from a V_MIN search on the virus.
		tester := vmin.NewTester(d, c.Opts.Seed+60)
		vres, err := tester.Search(load)
		if err != nil {
			return nil, err
		}
		mix := isa.MixBreakdown(res.Best.Seq)
		tb.AddRow(name,
			fmt.Sprintf("%d", len(res.Best.Seq)),
			fmt.Sprintf("%.2f", ur.IPC),
			fmt.Sprintf("%.2f", periodNs),
			fmt.Sprintf("%.2f", loopHz/1e6),
			fmt.Sprintf("%.2f", res.Best.DominantHz/1e6),
			fmt.Sprintf("%.1f", vres.MarginV*1e3),
			mixPct(mix, isa.Branch),
			mixPct(mix, isa.IntShort),
			mixPct(mix, isa.IntLong),
			mixPct(mix, isa.IntShortMem, isa.IntLongMem),
			mixPct(mix, isa.Float),
			mixPct(mix, isa.SIMD),
			mixPct(mix, isa.Mem),
		)
		vals[name+"_ipc"] = ur.IPC
		vals[name+"_loop_hz"] = loopHz
		vals[name+"_dominant_hz"] = res.Best.DominantHz
		vals[name+"_margin_mv"] = vres.MarginV * 1e3
		vals[name+"_mix_simd"] = mix[isa.SIMD]
		vals[name+"_mix_float"] = mix[isa.Float]
	}
	return &Result{ID: "tab2", Title: "dI/dt virus comparison", Text: tb.String(), Values: vals}, nil
}
