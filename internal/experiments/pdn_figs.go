package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dsp"
	"repro/internal/instrument"
	"repro/internal/platform"
	"repro/internal/report"
)

// runFig1b reproduces Figure 1(b): the PDN driving-point impedance seen by
// the die shows three resonance peaks, with the first-order (die cap vs
// package inductance) peak strongest and at the highest frequency.
func runFig1b(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	m, err := d.Model()
	if err != nil {
		return nil, err
	}
	prof, err := m.ImpedanceProfile(10e3, 1e9, 240)
	if err != nil {
		return nil, err
	}
	peaks, err := m.ResonancePeaks(10e3, 1e9, 600)
	if err != nil {
		return nil, err
	}
	if len(peaks) < 3 {
		return nil, fmt.Errorf("fig1b: found only %d resonance peaks", len(peaks))
	}
	xs := make([]float64, 0, len(prof))
	ys := make([]float64, 0, len(prof))
	for i, p := range prof {
		if i%8 != 0 { // thin the plot for terminal output
			continue
		}
		xs = append(xs, p.Freq/1e6)
		ys = append(ys, p.Z*1e3)
	}
	var b strings.Builder
	b.WriteString(report.Series("Cortex-A72 PDN impedance |Z(f)|", "freq (MHz)", "Z (mOhm)", xs, ys))
	tb := report.NewTable("Resonance peaks", "order", "frequency", "impedance (mOhm)")
	for i, p := range peaks {
		if i > 2 {
			break
		}
		tb.AddRow(fmt.Sprintf("%d", i+1), report.MHz(p.Freq), fmt.Sprintf("%.1f", p.Amp*1e3))
	}
	b.WriteString(tb.String())
	return &Result{
		ID: "fig1b", Title: "PDN impedance profile", Text: b.String(),
		Values: map[string]float64{
			"first_order_hz":   peaks[0].Freq,
			"first_order_mohm": peaks[0].Amp * 1e3,
			"num_peaks":        float64(len(peaks)),
		},
	}, nil
}

// runFig1c reproduces Figure 1(c): the time-domain response to a
// step-current excitation rings at the tank frequencies.
func runFig1c(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	m, err := d.Model()
	if err != nil {
		return nil, err
	}
	const (
		dt    = 0.25e-9
		steps = 8000
		amp   = 1.0
	)
	resp, err := m.StepResponse(amp, dt, steps)
	if err != nil {
		return nil, err
	}
	droop := resp.MaxDroop(d.Spec.PDN.VNominal)
	// Dominant ring frequency from the spectrum of the AC part.
	ac := make([]float64, len(resp.VDie))
	for i, v := range resp.VDie {
		ac[i] = v - resp.VDie[len(resp.VDie)-1]
	}
	freqs, amps := dsp.AmplitudeSpectrum(ac, 1/dt)
	ringHz, _, ok := dsp.MaxInBand(freqs, amps, 20e6, 300e6)
	if !ok {
		return nil, fmt.Errorf("fig1c: no ring component found")
	}
	xs := make([]float64, 0, 200)
	ys := make([]float64, 0, 200)
	for i := 0; i <= 2000; i += 25 {
		xs = append(xs, float64(i)*dt*1e9)
		ys = append(ys, resp.VDie[i]*1e3)
	}
	text := report.Series("Step response of V_DIE (1 A step)", "time (ns)", "V_DIE (mV)", xs, ys)
	return &Result{
		ID: "fig1c", Title: "PDN step response", Text: text,
		Values: map[string]float64{
			"max_droop_mv": droop * 1e3,
			"ring_hz":      ringHz,
		},
	}, nil
}

// runFig2 reproduces Figure 2: a load current pulsing at the first-order
// resonance drives V_DIE and I_DIE into large sustained oscillations,
// maximizing radiated EM power; off-resonance pulsing does not.
func runFig2(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	m, err := d.Model()
	if err != nil {
		return nil, err
	}
	fRes, _, err := m.ResonancePeak(30e6, 150e6)
	if err != nil {
		return nil, err
	}
	scl := instrument.NewSCL(0.5)
	at, err := scl.Excite(m, fRes)
	if err != nil {
		return nil, err
	}
	off, err := scl.Excite(m, fRes/3)
	if err != nil {
		return nil, err
	}
	iPtpAt := ptp(at.IDie)
	iPtpOff := ptp(off.IDie)
	tb := report.NewTable("Square-wave excitation at vs off resonance",
		"stimulus", "V_DIE p2p", "I_DIE p2p (A)")
	tb.AddRow(report.MHz(fRes)+" (resonant)", report.MV(at.PeakToPeak()), fmt.Sprintf("%.3f", iPtpAt))
	tb.AddRow(report.MHz(fRes/3)+" (off)", report.MV(off.PeakToPeak()), fmt.Sprintf("%.3f", iPtpOff))
	return &Result{
		ID: "fig2", Title: "Resonant excitation waveforms", Text: tb.String(),
		Values: map[string]float64{
			"resonant_vptp_mv": at.PeakToPeak() * 1e3,
			"off_vptp_mv":      off.PeakToPeak() * 1e3,
			"resonant_iptp_a":  iPtpAt,
			"gain":             at.PeakToPeak() / off.PeakToPeak(),
		},
	}, nil
}

// runFig4 reproduces Figure 4: OC-DSO voltage waveforms for idle, a SPEC
// benchmark and the dI/dt virus; the virus causes by far the largest noise.
func runFig4(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	dso := instrument.NewOCDSO(c.Opts.Seed + 40)
	_, virus, err := c.virusLoad(VirusA72EM)
	if err != nil {
		return nil, err
	}
	loads := map[string]platform.Load{"virus": virus}
	for _, name := range []string{"idle", "lbm"} {
		l, err := buildLoad(d, name, 2)
		if err != nil {
			return nil, err
		}
		loads[name] = l
	}
	tb := report.NewTable("OC-DSO capture per workload", "workload", "p2p", "max droop")
	vals := make(map[string]float64)
	for _, name := range []string{"idle", "lbm", "virus"} {
		resp, _, err := d.SteadyResponse(loads[name], c.JunoBench.Dt, c.JunoBench.N)
		if err != nil {
			return nil, err
		}
		trace, err := dso.Capture(resp)
		if err != nil {
			return nil, err
		}
		tb.AddRow(name, report.MV(trace.PeakToPeak()), report.MV(trace.MaxDroop(d.SupplyVolts())))
		vals[name+"_ptp_mv"] = trace.PeakToPeak() * 1e3
		vals[name+"_droop_mv"] = trace.MaxDroop(d.SupplyVolts()) * 1e3
	}
	return &Result{ID: "fig4", Title: "OC-DSO workload waveforms", Text: tb.String(), Values: vals}, nil
}

// runFig6 reproduces Figure 6: the loop antenna's |S11| is flat (fully
// mismatched but non-resonant) through the band of interest, with a deep
// self-resonance dip at ~2.95 GHz.
func runFig6(c *Context) (*Result, error) {
	ant := c.Juno.Antenna
	var xs, ys []float64
	minS, minF := math.Inf(1), 0.0
	for f := 50e6; f <= 5e9; f *= 1.08 {
		s := ant.S11(f)
		xs = append(xs, f/1e9)
		ys = append(ys, s)
		if s < minS {
			minS, minF = s, f
		}
	}
	text := report.Series("Antenna |S11|", "freq (GHz)", "|S11|", xs, ys)
	inBand := ant.S11(100e6)
	return &Result{
		ID: "fig6", Title: "Antenna |S11| response", Text: text,
		Values: map[string]float64{
			"self_resonance_hz": minF,
			"s11_at_dip":        minS,
			"s11_in_band":       inBand,
		},
	}, nil
}

func ptp(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	min, max := x[0], x[0]
	for _, v := range x {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}
