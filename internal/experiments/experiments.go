// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a named, self-contained function over a
// shared Context (which caches the expensive GA-generated viruses), returns
// a structured Result, and renders a human-readable report. The cmd/repro
// binary, the repository's benchmark harness and the regression tests all
// run the same code.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/platform"
)

// Options scales the experiments.
type Options struct {
	// Quick shrinks the GA runs (smaller populations, fewer generations)
	// and repetition counts so the full suite finishes in seconds. The
	// paper-scale settings are used when false.
	Quick bool
	// Seed makes every stochastic component reproducible.
	Seed int64
	// Parallelism bounds the worker count of the GA runs and sweeps; 0 or
	// 1 runs serially. Results are identical at any setting.
	Parallelism int
	// Backends substitutes remote measurement backends for the local
	// benches, keyed by platform name ("juno-r2", "amd-desktop"). The
	// measurement-driven experiments (sweeps, GAs, V_MIN campaigns,
	// monitoring) run through them; the analytic paths (PDN math, SCL,
	// direct scope captures) always use the local models. A daemon whose
	// bench is seeded Seed+1 (juno) / Seed+2 (amd) reproduces the local
	// results bit for bit.
	Backends map[string]backend.Backend
	// JunoPlatform / AMDPlatform substitute another platform (a registry
	// name or a .json spec path, resolved through platform.Resolve) for
	// the corresponding experiment slot. Best effort: experiments that
	// address the built-in domains by name fail with a clear "no domain"
	// error when the substitute lacks them.
	JunoPlatform string
	AMDPlatform  string
}

// Result is a completed experiment.
type Result struct {
	ID    string
	Title string
	// Text is the rendered report (tables/series).
	Text string
	// Values holds the headline numbers for regression checks and
	// EXPERIMENTS.md, keyed by metric name.
	Values map[string]float64
}

// Experiment is a runnable paper artifact.
type Experiment struct {
	ID    string // e.g. "fig7", "tab2"
	Title string
	Run   func(ctx *Context) (*Result, error)
}

// Context carries the platforms, benches and virus cache shared by the
// experiment suite.
type Context struct {
	Opts Options

	Juno *platform.Platform
	AMD  *platform.Platform

	JunoBench *core.Bench
	AMDBench  *core.Bench

	// JunoBE/AMDBE are the measurement backends the experiments drive —
	// Local wrappers of the benches above unless Options.Backends
	// substitutes remote ones.
	JunoBE backend.Backend
	AMDBE  backend.Backend

	mu      sync.Mutex
	viruses map[string]*ga.Result
}

// NewContext builds the two platforms and their benches.
func NewContext(opts Options) (*Context, error) {
	juno, err := resolveSlot(opts.JunoPlatform, "juno-r2")
	if err != nil {
		return nil, err
	}
	amd, err := resolveSlot(opts.AMDPlatform, "amd-desktop")
	if err != nil {
		return nil, err
	}
	jb, err := core.NewBench(juno, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	ab, err := core.NewBench(amd, opts.Seed+2)
	if err != nil {
		return nil, err
	}
	if opts.Quick {
		jb.Samples = 8
		ab.Samples = 8
	}
	jb.Parallelism = opts.Parallelism
	ab.Parallelism = opts.Parallelism
	jbe, err := backendFor(opts, juno.Name, jb)
	if err != nil {
		return nil, err
	}
	abe, err := backendFor(opts, amd.Name, ab)
	if err != nil {
		return nil, err
	}
	return &Context{
		Opts:      opts,
		Juno:      juno,
		AMD:       amd,
		JunoBench: jb,
		AMDBench:  ab,
		JunoBE:    jbe,
		AMDBE:     abe,
		viruses:   make(map[string]*ga.Result),
	}, nil
}

// resolveSlot builds the platform for an experiment slot: the registry
// default, or the Options override (registry name or spec file).
func resolveSlot(override, def string) (*platform.Platform, error) {
	if override == "" {
		return platform.Build(def)
	}
	return platform.Resolve(override)
}

// backendFor picks the substitute backend for a platform, or wraps the
// local bench. A substituted remote inherits the bench's analyzer
// averaging so Quick mode scales both sides identically.
func backendFor(opts Options, name string, b *core.Bench) (backend.Backend, error) {
	if be, ok := opts.Backends[name]; ok {
		if got := be.PlatformName(); got != name {
			return nil, fmt.Errorf("experiments: backend for %q serves platform %q", name, got)
		}
		if r, ok := be.(*backend.Remote); ok {
			r.Samples = b.Samples
		}
		return be, nil
	}
	return backend.NewLocal(b)
}

// gaConfig returns the GA settings at the current scale.
func (c *Context) gaConfig(pool *isa.Pool) ga.Config {
	cfg := ga.DefaultConfig(pool)
	cfg.Seed = c.Opts.Seed + 10
	cfg.Parallelism = c.Opts.Parallelism
	if c.Opts.Quick {
		cfg.PopulationSize = 20
		cfg.Generations = 30
	}
	return cfg
}

// vminRepeats is the per-virus V_MIN repetition count (paper: 30).
func (c *Context) vminRepeats() int {
	if c.Opts.Quick {
		return 3
	}
	return 30
}

// All returns the experiment inventory in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1b", Title: "PDN impedance profile (Fig. 1b)", Run: runFig1b},
		{ID: "fig1c", Title: "PDN step response (Fig. 1c)", Run: runFig1c},
		{ID: "fig2", Title: "Resonant excitation waveforms (Fig. 2)", Run: runFig2},
		{ID: "fig4", Title: "OC-DSO waveforms: idle vs SPEC vs virus (Fig. 4)", Run: runFig4},
		{ID: "fig6", Title: "Antenna |S11| response (Fig. 6)", Run: runFig6},
		{ID: "fig7", Title: "EM-driven GA on Cortex-A72 (Fig. 7)", Run: runFig7},
		{ID: "fig8", Title: "SCL resonance sweep on Cortex-A72 (Fig. 8)", Run: runFig8},
		{ID: "fig9", Title: "Spectrum analyzer vs OC-DSO FFT (Fig. 9)", Run: runFig9},
		{ID: "fig10", Title: "V_MIN and droop on Cortex-A72 (Fig. 10)", Run: runFig10},
		{ID: "fig11", Title: "Fast EM resonance sweep on Cortex-A72 (Fig. 11)", Run: runFig11},
		{ID: "fig12", Title: "EM-driven GA on Cortex-A53 (Fig. 12)", Run: runFig12},
		{ID: "fig13", Title: "Power-gating resonance shifts on Cortex-A53 (Fig. 13)", Run: runFig13},
		{ID: "fig14", Title: "V_MIN on Cortex-A53 (Fig. 14)", Run: runFig14},
		{ID: "fig15", Title: "Simultaneous multi-domain monitoring (Fig. 15)", Run: runFig15},
		{ID: "fig16", Title: "Fast EM resonance sweep on Athlon II (Fig. 16)", Run: runFig16},
		{ID: "fig17", Title: "EM-driven GA on Athlon II (Fig. 17)", Run: runFig17},
		{ID: "fig18", Title: "V_MIN and noise on Athlon II (Fig. 18)", Run: runFig18},
		{ID: "tab1", Title: "Experimental platforms (Table 1)", Run: runTab1},
		{ID: "tab2", Title: "dI/dt virus comparison (Table 2)", Run: runTab2},
	}
}

// ByID finds one experiment, searching the paper set and the extensions.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	for _, e := range Extensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// sortedKeys gives deterministic iteration over a values map.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
