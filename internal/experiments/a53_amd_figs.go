package experiments

import (
	"fmt"
	"strings"

	"repro/internal/platform"
	"repro/internal/report"
)

// runFig12 reproduces Figure 12: the EM-driven GA on the quad-core
// Cortex-A53, a domain with no voltage visibility at all — the EM side
// channel is the only feedback, and it still converges onto the resonance.
func runFig12(c *Context) (*Result, error) {
	res, err := c.Virus(VirusA53EM)
	if err != nil {
		return nil, err
	}
	gens, bestDBm, domMHz := gaSeries(res)
	var b strings.Builder
	b.WriteString(report.Series("EM peak amplitude (Cortex-A53)", "generation", "peak (dBm)", gens, bestDBm))
	b.WriteString(report.Series("Dominant frequency (Cortex-A53)", "generation", "freq (MHz)", gens, domMHz))
	return &Result{
		ID: "fig12", Title: "EM-driven GA on Cortex-A53", Text: b.String(),
		Values: map[string]float64{
			"amplitude_gain_db":  bestDBm[len(bestDBm)-1] - bestDBm[0],
			"final_dominant_mhz": domMHz[len(domMHz)-1],
		},
	}, nil
}

// runFig13 reproduces Figure 13: fast EM sweeps on the Cortex-A53 with 4,
// 3, 2 and 1 cores powered (one active). Power-gating removes die
// capacitance, so the resonance climbs from ~76.5 MHz to ~97 MHz, and with
// the least capacitance the emission amplitude is largest.
func runFig13(c *Context) (*Result, error) {
	labels := map[int]string{4: "C0C1C2C3", 3: "C0C1C2", 2: "C0C1", 1: "C0"}
	tb := report.NewTable("Resonance vs powered cores (Cortex-A53)",
		"powered", "resonance", "peak EM")
	vals := make(map[string]float64)
	var amp1, amp4 float64
	for cores := 4; cores >= 1; cores-- {
		if err := c.JunoBE.SetPoweredCores(platform.DomainA53, cores); err != nil {
			return nil, err
		}
		res, err := c.JunoBE.ResonanceSweep(platform.DomainA53, 1, 0)
		if err != nil {
			_ = c.JunoBE.Reset(platform.DomainA53)
			return nil, err
		}
		tb.AddRow(labels[cores], report.MHz(res.ResonanceHz), report.DBm(res.PeakDBm))
		vals[fmt.Sprintf("resonance_%dcores_hz", cores)] = res.ResonanceHz
		vals[fmt.Sprintf("peak_%dcores_dbm", cores)] = res.PeakDBm
		if cores == 1 {
			amp1 = res.PeakDBm
		}
		if cores == 4 {
			amp4 = res.PeakDBm
		}
	}
	if err := c.JunoBE.Reset(platform.DomainA53); err != nil {
		return nil, err
	}
	vals["amp_gain_1_vs_4_db"] = amp1 - amp4
	return &Result{ID: "fig13", Title: "Power-gating resonance shifts on Cortex-A53", Text: tb.String(), Values: vals}, nil
}

// fig14Order is the workload order of the Figure 14 bars.
var fig14Order = []string{
	"idle", "mcf", "gcc", "bzip2", "hmmer", "h264ref", "soplex", "milc",
	"namd", "povray", "lbm", "emVirus",
}

// runFig14 reproduces Figure 14: V_MIN on the quad-core Cortex-A53. The EM
// virus stands ~50 mV above every benchmark — obtained without any voltage
// measurement support on that domain.
func runFig14(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA53)
	if err != nil {
		return nil, err
	}
	loads := make(map[string]platform.Load)
	for _, name := range fig14Order[:len(fig14Order)-1] {
		l, err := buildLoad(d, name, 4)
		if err != nil {
			return nil, err
		}
		loads[name] = l
	}
	_, emV, err := c.virusLoad(VirusA53EM)
	if err != nil {
		return nil, err
	}
	loads["emVirus"] = emV
	rows, err := c.vminCampaign(c.JunoBE, platform.DomainA53, loads, map[string]bool{"emVirus": true}, fig14Order)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("V_MIN, Cortex-A53 quad-core", "workload", "Vmin", "first failure")
	vals := make(map[string]float64)
	var bestBench float64
	for _, r := range rows {
		tb.AddRow(r.Name, report.Volts(r.VminV), r.Kind.String())
		vals[r.Name+"_vmin_v"] = r.VminV
		if r.Name != "emVirus" && r.VminV > bestBench {
			bestBench = r.VminV
		}
	}
	vals["virus_above_benchmarks_mv"] = (vals["emVirus_vmin_v"] - bestBench) * 1e3
	vals["margin_mv"] = (d.Spec.PDN.VNominal - vals["emVirus_vmin_v"]) * 1e3
	return &Result{ID: "fig14", Title: "V_MIN on Cortex-A53", Text: tb.String(), Values: vals}, nil
}

// runFig15 reproduces Figure 15: both viruses run simultaneously on their
// voltage domains and the single antenna sees both spectral signatures at
// once — impossible with any physically attached single-rail probe.
func runFig15(c *Context) (*Result, error) {
	_, a72Load, err := c.virusLoad(VirusA72EM)
	if err != nil {
		return nil, err
	}
	_, a53Load, err := c.virusLoad(VirusA53EM)
	if err != nil {
		return nil, err
	}
	sweep, err := c.JunoBE.MonitorAll(map[string]platform.Load{
		platform.DomainA72: a72Load,
		platform.DomainA53: a53Load,
	})
	if err != nil {
		return nil, err
	}
	// The two domains resonate at distinct frequencies; find the strongest
	// bin near each domain's resonance.
	f72, p72, ok72 := sweep.PeakInBand(55e6, 72e6)
	f53, p53, ok53 := sweep.PeakInBand(72e6, 90e6)
	if !ok72 || !ok53 {
		return nil, fmt.Errorf("fig15: band search failed")
	}
	tb := report.NewTable("Simultaneous dual-domain signatures", "domain", "spike", "power")
	tb.AddRow("cortex-a72", report.MHz(f72), report.DBm(p72))
	tb.AddRow("cortex-a53", report.MHz(f53), report.DBm(p53))
	return &Result{
		ID: "fig15", Title: "Simultaneous multi-domain monitoring", Text: tb.String(),
		Values: map[string]float64{
			"a72_spike_hz":  f72,
			"a53_spike_hz":  f53,
			"a72_spike_dbm": p72,
			"a53_spike_dbm": p53,
		},
	}, nil
}

// runFig16 reproduces Figure 16: the fast EM sweep on the Athlon II finds
// the resonance near 78 MHz.
func runFig16(c *Context) (*Result, error) {
	res, err := c.AMDBE.ResonanceSweep(platform.DomainAthlon, 4, 0)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(res.Points))
	ys := make([]float64, len(res.Points))
	for i, p := range res.Points {
		xs[i] = p.LoopHz / 1e6
		ys[i] = p.PeakDBm
	}
	text := report.Series("Fast EM sweep, Athlon II X4 645", "loop freq (MHz)", "peak (dBm)", xs, ys)
	return &Result{
		ID: "fig16", Title: "Fast EM resonance sweep on Athlon II", Text: text,
		Values: map[string]float64{"resonance_hz": res.ResonanceHz},
	}, nil
}

// runFig17 reproduces Figure 17: the EM-driven GA on the AMD CPU converges
// to nearly the same frequency the fast sweep finds.
func runFig17(c *Context) (*Result, error) {
	res, err := c.Virus(VirusAMDEM)
	if err != nil {
		return nil, err
	}
	gens, bestDBm, domMHz := gaSeries(res)
	var b strings.Builder
	b.WriteString(report.Series("EM peak amplitude (Athlon II)", "generation", "peak (dBm)", gens, bestDBm))
	b.WriteString(report.Series("Dominant frequency (Athlon II)", "generation", "freq (MHz)", gens, domMHz))
	return &Result{
		ID: "fig17", Title: "EM-driven GA on Athlon II", Text: b.String(),
		Values: map[string]float64{
			"amplitude_gain_db":  bestDBm[len(bestDBm)-1] - bestDBm[0],
			"final_dominant_mhz": domMHz[len(domMHz)-1],
		},
	}, nil
}

// fig18Order is the workload order of the Figure 18 bars.
var fig18Order = []string{
	"idle", "webxprt", "geekbench", "blender", "cinebench", "euler3d",
	"prime95", "amd-stability", "oscVirus", "emVirus",
}

// runFig18 reproduces Figure 18: V_MIN and voltage noise on the AMD
// desktop. The GA viruses beat the dedicated stability tests (Prime95 and
// AMD's own), and the EM virus on just two cores still beats them on four.
func runFig18(c *Context) (*Result, error) {
	d, err := c.AMD.Domain(platform.DomainAthlon)
	if err != nil {
		return nil, err
	}
	loads := make(map[string]platform.Load)
	for _, name := range fig18Order[:len(fig18Order)-2] {
		l, err := buildLoad(d, name, 4)
		if err != nil {
			return nil, err
		}
		loads[name] = l
	}
	_, emV, err := c.virusLoad(VirusAMDEM)
	if err != nil {
		return nil, err
	}
	_, oscV, err := c.virusLoad(VirusAMDOsc)
	if err != nil {
		return nil, err
	}
	loads["emVirus"] = emV
	loads["oscVirus"] = oscV
	rows, err := c.vminCampaign(c.AMDBE, platform.DomainAthlon, loads,
		map[string]bool{"emVirus": true, "oscVirus": true}, fig18Order)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("V_MIN and noise, Athlon II X4 645 (4 cores)",
		"workload", "Vmin", "droop@nominal", "first failure")
	vals := make(map[string]float64)
	for _, r := range rows {
		tb.AddRow(r.Name, report.Volts(r.VminV), report.MV(r.DroopV), r.Kind.String())
		vals[r.Name+"_vmin_v"] = r.VminV
		vals[r.Name+"_droop_mv"] = r.DroopV * 1e3
	}
	// The paper's striking point: the EM virus on two active cores is
	// still more severe than the stability tests on four.
	twoCore := emV
	twoCore.ActiveCores = 2
	twoRows, err := c.vminCampaign(c.AMDBE, platform.DomainAthlon, map[string]platform.Load{"emVirus2": twoCore},
		map[string]bool{"emVirus2": true}, []string{"emVirus2"})
	if err != nil {
		return nil, err
	}
	tb.AddRow("emVirus (2 cores)", report.Volts(twoRows[0].VminV), report.MV(twoRows[0].DroopV),
		twoRows[0].Kind.String())
	vals["emVirus2_vmin_v"] = twoRows[0].VminV
	vals["margin_mv"] = (d.Spec.PDN.VNominal - vals["emVirus_vmin_v"]) * 1e3
	vals["virus_vs_prime95_mv"] = (vals["emVirus_vmin_v"] - vals["prime95_vmin_v"]) * 1e3
	return &Result{ID: "fig18", Title: "V_MIN and noise on Athlon II", Text: tb.String(), Values: vals}, nil
}
