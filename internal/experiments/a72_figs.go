package experiments

import (
	"math"
	"strings"

	"repro/internal/instrument"
	"repro/internal/platform"
	"repro/internal/report"
)

// runFig7 reproduces Figure 7: the EM-driven GA on the Cortex-A72. The
// per-generation EM peak amplitude rises, the dominant frequency converges
// onto the first-order resonance, and — measured post hoc with the OC-DSO,
// exactly as the paper does — the best individual's voltage droop rises in
// lockstep with the EM amplitude.
func runFig7(c *Context) (*Result, error) {
	res, err := c.Virus(VirusA72EM)
	if err != nil {
		return nil, err
	}
	d, cores, err := c.VirusDomain(VirusA72EM)
	if err != nil {
		return nil, err
	}
	dso := instrument.NewOCDSO(c.Opts.Seed + 50)
	gens, bestDBm, domMHz := gaSeries(res)

	// Re-run each generation's best individual under the OC-DSO (the
	// paper obtains droop by re-running after the GA search finishes).
	droops := make([]float64, len(res.History))
	for i, g := range res.History {
		resp, _, err := d.SteadyResponse(platform.Load{Seq: g.Best.Seq, ActiveCores: cores},
			c.JunoBench.Dt, c.JunoBench.N)
		if err != nil {
			return nil, err
		}
		trace, err := dso.Capture(resp)
		if err != nil {
			return nil, err
		}
		droops[i] = trace.MaxDroop(d.Spec.PDN.VNominal) * 1e3
	}

	var b strings.Builder
	b.WriteString(report.Series("EM peak amplitude of best individual", "generation", "peak (dBm)", gens, bestDBm))
	b.WriteString(report.Series("Max droop of best individual (OC-DSO)", "generation", "droop (mV)", gens, droops))
	b.WriteString(report.Series("Dominant frequency of best individual", "generation", "freq (MHz)", gens, domMHz))

	first, last := bestDBm[0], bestDBm[len(bestDBm)-1]
	corr := pearson(bestDBm, droops)
	return &Result{
		ID: "fig7", Title: "EM-driven GA on Cortex-A72", Text: b.String(),
		Values: map[string]float64{
			"amplitude_gain_db":  last - first,
			"final_dominant_mhz": domMHz[len(domMHz)-1],
			"final_droop_mv":     droops[len(droops)-1],
			"first_droop_mv":     droops[0],
			"em_droop_corr":      corr,
		},
	}, nil
}

// runFig8 reproduces Figure 8: the SCL square-wave sweep on the A72 rail
// locates the resonance at 66-72 MHz with both cores powered and higher
// with one core.
func runFig8(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	scl := instrument.NewSCL(0.5)
	dso := instrument.NewOCDSO(c.Opts.Seed + 51)

	sweepFor := func(cores int) ([]instrument.SweepPoint, instrument.SweepPoint, error) {
		if err := d.SetPoweredCores(cores); err != nil {
			return nil, instrument.SweepPoint{}, err
		}
		defer d.Reset()
		m, err := d.Model()
		if err != nil {
			return nil, instrument.SweepPoint{}, err
		}
		points, err := scl.Sweep(m, dso, 50e6, 110e6, 1e6)
		if err != nil {
			return nil, instrument.SweepPoint{}, err
		}
		peak, err := instrument.PeakOfSweep(points)
		return points, peak, err
	}
	both, peakBoth, err := sweepFor(2)
	if err != nil {
		return nil, err
	}
	_, peakOne, err := sweepFor(1)
	if err != nil {
		return nil, err
	}

	xs := make([]float64, len(both))
	ys := make([]float64, len(both))
	for i, p := range both {
		xs[i] = p.Freq / 1e6
		ys[i] = p.PtpV * 1e3
	}
	var b strings.Builder
	b.WriteString(report.Series("SCL sweep, both cores powered (C0C1)", "freq (MHz)", "p2p (mV)", xs, ys))
	tb := report.NewTable("SCL resonance", "cores", "resonance", "p2p")
	tb.AddRow("C0C1", report.MHz(peakBoth.Freq), report.MV(peakBoth.PtpV))
	tb.AddRow("C0", report.MHz(peakOne.Freq), report.MV(peakOne.PtpV))
	b.WriteString(tb.String())
	return &Result{
		ID: "fig8", Title: "SCL resonance sweep on Cortex-A72", Text: b.String(),
		Values: map[string]float64{
			"resonance_c0c1_hz": peakBoth.Freq,
			"resonance_c0_hz":   peakOne.Freq,
		},
	}, nil
}

// runFig9 reproduces Figure 9: during the EM virus, the spectrum analyzer
// (via the antenna) and the FFT of the OC-DSO voltage samples agree on the
// dominant spike and on secondary spikes such as the loop fundamental.
func runFig9(c *Context) (*Result, error) {
	d, virus, err := c.virusLoad(VirusA72EM)
	if err != nil {
		return nil, err
	}
	// Spectrum analyzer view through the antenna (via the backend, so a
	// remote rig feeds the same comparison).
	m, err := c.JunoBE.EMMeasure(platform.DomainA72, virus)
	if err != nil {
		return nil, err
	}
	// OC-DSO FFT view.
	resp, ur, err := d.SteadyResponse(virus, c.JunoBench.Dt, c.JunoBench.N)
	if err != nil {
		return nil, err
	}
	dso := instrument.NewOCDSO(c.Opts.Seed + 52)
	trace, err := dso.Capture(resp)
	if err != nil {
		return nil, err
	}
	freqs, amps := trace.Spectrum()
	var dsoHz, dsoAmp float64
	for i, f := range freqs {
		if f < c.JunoBench.Band.Lo || f > c.JunoBench.Band.Hi {
			continue
		}
		if amps[i] > dsoAmp {
			dsoHz, dsoAmp = f, amps[i]
		}
	}
	loopHz := d.ClockHz() / ur.LoopCycles

	tb := report.NewTable("Frequency-domain agreement", "instrument", "dominant spike")
	tb.AddRow("spectrum analyzer (antenna)", report.MHz(m.PeakHz))
	tb.AddRow("OC-DSO FFT", report.MHz(dsoHz))
	tb.AddRow("virus loop fundamental", report.MHz(loopHz))
	delta := absF(m.PeakHz - dsoHz)
	return &Result{
		ID: "fig9", Title: "Spectrum analyzer vs OC-DSO FFT", Text: tb.String(),
		Values: map[string]float64{
			"analyzer_hz":  m.PeakHz,
			"dso_fft_hz":   dsoHz,
			"agreement_hz": delta,
			"loop_hz":      loopHz,
		},
	}, nil
}

// fig10Order is the workload order of the Figure 10 bars.
var fig10Order = []string{
	"idle", "mcf", "gcc", "bzip2", "hmmer", "h264ref", "soplex", "milc",
	"namd", "povray", "lbm", "dsoVirus", "emVirus",
}

// runFig10 reproduces Figure 10: V_MIN and maximum droop on the dual-core
// Cortex-A72 for the SPEC proxies and both viruses. The viruses droop
// hardest and have the highest V_MIN.
func runFig10(c *Context) (*Result, error) {
	d, err := c.Juno.Domain(platform.DomainA72)
	if err != nil {
		return nil, err
	}
	loads := make(map[string]platform.Load)
	for _, name := range fig10Order[:len(fig10Order)-2] {
		l, err := buildLoad(d, name, 2)
		if err != nil {
			return nil, err
		}
		loads[name] = l
	}
	_, emV, err := c.virusLoad(VirusA72EM)
	if err != nil {
		return nil, err
	}
	_, dsoV, err := c.virusLoad(VirusA72DSO)
	if err != nil {
		return nil, err
	}
	loads["emVirus"] = emV
	loads["dsoVirus"] = dsoV

	rows, err := c.vminCampaign(c.JunoBE, platform.DomainA72, loads,
		map[string]bool{"emVirus": true, "dsoVirus": true}, fig10Order)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("V_MIN and max droop, Cortex-A72 dual-core",
		"workload", "Vmin", "droop@nominal", "first failure")
	vals := make(map[string]float64)
	var lbmVmin, lbmDroop float64
	for _, r := range rows {
		tb.AddRow(r.Name, report.Volts(r.VminV), report.MV(r.DroopV), r.Kind.String())
		vals[r.Name+"_vmin_v"] = r.VminV
		vals[r.Name+"_droop_mv"] = r.DroopV * 1e3
		if r.Name == "lbm" {
			lbmVmin, lbmDroop = r.VminV, r.DroopV
		}
	}
	vals["em_virus_vs_lbm_vmin_mv"] = (vals["emVirus_vmin_v"] - lbmVmin) * 1e3
	vals["em_virus_vs_lbm_droop_mv"] = vals["emVirus_droop_mv"] - lbmDroop*1e3
	vals["margin_mv"] = (d.Spec.PDN.VNominal - vals["emVirus_vmin_v"]) * 1e3
	return &Result{ID: "fig10", Title: "V_MIN and droop on Cortex-A72", Text: tb.String(), Values: vals}, nil
}

// runFig11 reproduces Figure 11: the fast EM sweep on the A72 peaks around
// 70 MHz with both cores powered and ~85 MHz with one.
func runFig11(c *Context) (*Result, error) {
	both, err := c.JunoBE.ResonanceSweep(platform.DomainA72, 2, 0)
	if err != nil {
		return nil, err
	}
	if err := c.JunoBE.SetPoweredCores(platform.DomainA72, 1); err != nil {
		return nil, err
	}
	one, err := c.JunoBE.ResonanceSweep(platform.DomainA72, 1, 0)
	if rerr := c.JunoBE.Reset(platform.DomainA72); err == nil {
		err = rerr
	}
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(both.Points))
	ys := make([]float64, len(both.Points))
	for i, p := range both.Points {
		xs[i] = p.LoopHz / 1e6
		ys[i] = p.PeakDBm
	}
	var b strings.Builder
	b.WriteString(report.Series("Fast EM sweep, C0C1", "loop freq (MHz)", "peak (dBm)", xs, ys))
	tb := report.NewTable("Fast-sweep resonance estimates", "cores", "resonance")
	tb.AddRow("C0C1", report.MHz(both.ResonanceHz))
	tb.AddRow("C0", report.MHz(one.ResonanceHz))
	b.WriteString(tb.String())
	return &Result{
		ID: "fig11", Title: "Fast EM resonance sweep on Cortex-A72", Text: b.String(),
		Values: map[string]float64{
			"resonance_c0c1_hz": both.ResonanceHz,
			"resonance_c0_hz":   one.ResonanceHz,
		},
	}, nil
}

// pearson computes the correlation coefficient between two equal-length
// series.
func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 || len(a) != len(b) {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}

func absF(x float64) float64 { return math.Abs(x) }
