package castore

// Binary codec for store payloads: little-endian, length-prefixed slices,
// no reflection. Every consumer namespace (trace histories, spectra
// entries, batch measurements) encodes with Enc and decodes with Dec; a
// truncated or malformed payload poisons the decoder instead of panicking,
// so a corrupt entry that slipped past the frame checksum still degrades
// to a cache miss rather than a crash.

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is the sticky error a Dec reports when a read runs past the
// end of the payload.
var ErrTruncated = errors.New("castore: truncated payload")

// ErrTrailing is the error Finish reports when decoding consumed less than
// the full payload (a codec/version mismatch the frame checksum cannot see).
var ErrTrailing = errors.New("castore: trailing bytes after payload")

// maxSliceLen bounds decoded slice lengths so a corrupt length prefix
// cannot drive a multi-gigabyte allocation before the element reads fail.
const maxSliceLen = 1 << 28

// Enc accumulates an encoded payload.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with the given size hint.
func NewEnc(sizeHint int) *Enc {
	return &Enc{buf: make([]byte, 0, sizeHint)}
}

// Uint64 appends one 64-bit word.
func (e *Enc) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Int appends an integer as a 64-bit word.
func (e *Enc) Int(v int) { e.Uint64(uint64(int64(v))) }

// Bool appends a bool as a 64-bit 0/1 word.
func (e *Enc) Bool(b bool) {
	if b {
		e.Uint64(1)
	} else {
		e.Uint64(0)
	}
}

// Float64 appends the IEEE-754 bits of f, so a decode reproduces the value
// bit-exactly (including NaN payloads and signed zeros).
func (e *Enc) Float64(f float64) { e.Uint64(math.Float64bits(f)) }

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Floats appends a length-prefixed []float64.
func (e *Enc) Floats(xs []float64) {
	e.Int(len(xs))
	for _, x := range xs {
		e.Float64(x)
	}
}

// Int64s appends a length-prefixed []int64.
func (e *Enc) Int64s(xs []int64) {
	e.Int(len(xs))
	for _, x := range xs {
		e.Uint64(uint64(x))
	}
}

// Ints appends a length-prefixed []int (as 64-bit words).
func (e *Enc) Ints(xs []int) {
	e.Int(len(xs))
	for _, x := range xs {
		e.Int(x)
	}
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// Dec reads an encoded payload back. The zero value is not useful; build
// with NewDec. After the reads, check Finish: a decode that errored or left
// trailing bytes must be treated as a miss.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over the payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Uint64 reads one 64-bit word.
func (d *Dec) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = ErrTruncated
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Int reads an integer.
func (d *Dec) Int() int { return int(int64(d.Uint64())) }

// Bool reads a bool.
func (d *Dec) Bool() bool { return d.Uint64() != 0 }

// Float64 reads a float bit-exactly.
func (d *Dec) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Int()
	if d.err != nil {
		return ""
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.err = ErrTruncated
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// sliceLen reads and sanity-bounds a slice length prefix.
func (d *Dec) sliceLen() int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > maxSliceLen || n > (len(d.buf)-d.off)/8 {
		d.err = ErrTruncated
		return 0
	}
	return n
}

// Floats reads a length-prefixed []float64.
func (d *Dec) Floats() []float64 {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Float64()
	}
	return out
}

// Int64s reads a length-prefixed []int64.
func (d *Dec) Int64s() []int64 {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.Uint64())
	}
	return out
}

// Ints reads a length-prefixed []int.
func (d *Dec) Ints() []int {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }

// Finish reports whether the decode consumed the payload exactly: no read
// error and no trailing bytes.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return ErrTrailing
	}
	return nil
}
