package castore

import (
	"math"
	"testing"
)

func TestCodecRoundtrip(t *testing.T) {
	e := NewEnc(64)
	e.Uint64(0xdeadbeefcafef00d)
	e.Int(-42)
	e.Bool(true)
	e.Bool(false)
	e.Float64(math.Copysign(0, -1))
	e.Float64(math.NaN())
	e.Float64(1.0 / 3.0)
	e.String("hello, 世界")
	e.String("")
	e.Floats([]float64{1.5, -2.25, math.Inf(1)})
	e.Floats(nil)
	e.Int64s([]int64{math.MinInt64, 0, math.MaxInt64})
	e.Ints([]int{7, -7})

	d := NewDec(e.Bytes())
	if got := d.Uint64(); got != 0xdeadbeefcafef00d {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := d.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool roundtrip failed")
	}
	if got := d.Float64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("negative zero lost: %v (bits %#x)", got, math.Float64bits(got))
	}
	if got := d.Float64(); !math.IsNaN(got) {
		t.Errorf("NaN lost: %v", got)
	}
	if got := d.Float64(); got != 1.0/3.0 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.String(); got != "hello, 世界" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	fs := d.Floats()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.25 || !math.IsInf(fs[2], 1) {
		t.Errorf("Floats = %v", fs)
	}
	if got := d.Floats(); got == nil || len(got) != 0 {
		t.Errorf("nil Floats decoded as %v (want empty non-error)", got)
	}
	is := d.Int64s()
	if len(is) != 3 || is[0] != math.MinInt64 || is[2] != math.MaxInt64 {
		t.Errorf("Int64s = %v", is)
	}
	ns := d.Ints()
	if len(ns) != 2 || ns[0] != 7 || ns[1] != -7 {
		t.Errorf("Ints = %v", ns)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestCodecTruncation(t *testing.T) {
	e := NewEnc(32)
	e.Floats([]float64{1, 2, 3})
	full := e.Bytes()
	// Every strict prefix must decode to a sticky error, never panic.
	for n := 0; n < len(full); n++ {
		d := NewDec(full[:n])
		d.Floats()
		if d.Err() == nil {
			t.Errorf("prefix len %d: no decode error", n)
		}
		if err := d.Finish(); err == nil {
			t.Errorf("prefix len %d: Finish passed", n)
		}
	}
}

func TestCodecTrailingBytes(t *testing.T) {
	e := NewEnc(16)
	e.Uint64(1)
	e.Uint64(2)
	d := NewDec(e.Bytes())
	d.Uint64()
	if err := d.Finish(); err != ErrTrailing {
		t.Fatalf("Finish = %v, want ErrTrailing", err)
	}
}

func TestCodecHugeLengthPrefix(t *testing.T) {
	// A corrupt length prefix must not drive a giant allocation.
	e := NewEnc(8)
	e.Int(maxSliceLen + 1)
	d := NewDec(e.Bytes())
	if got := d.Floats(); got != nil {
		t.Errorf("Floats = %v, want nil", got)
	}
	if d.Err() == nil {
		t.Error("oversized length prefix accepted")
	}
	// Negative length likewise.
	e2 := NewEnc(8)
	e2.Int(-1)
	d2 := NewDec(e2.Bytes())
	d2.Ints()
	if d2.Err() == nil {
		t.Error("negative length prefix accepted")
	}
}

func TestCodecStickyError(t *testing.T) {
	d := NewDec(nil)
	d.Uint64()
	if d.Err() != ErrTruncated {
		t.Fatalf("Err = %v", d.Err())
	}
	// Every subsequent read returns zero values without panicking.
	if d.Int() != 0 || d.Bool() || d.Float64() != 0 || d.String() != "" {
		t.Error("reads after error returned non-zero values")
	}
	if d.Floats() != nil || d.Int64s() != nil || d.Ints() != nil {
		t.Error("slice reads after error returned non-nil")
	}
}
