package castore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func openT(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := openT(t, Options{})
	payload := []byte("the quick brown fox")
	if _, ok := s.Get("ns", 1, 42); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put("ns", 1, 42, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("ns", 1, 42)
	if !ok {
		t.Fatal("miss after put")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
	// Different key, namespace and version all miss.
	if _, ok := s.Get("ns", 1, 43); ok {
		t.Error("hit on a different key")
	}
	if _, ok := s.Get("other", 1, 42); ok {
		t.Error("hit on a different namespace")
	}
	if _, ok := s.Get("ns", 2, 42); ok {
		t.Error("hit on a different version (stale entries must read as misses)")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Errorf("stats %+v, want 1 hit / 1 put / 0 corrupt", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("tracked bytes %d, want > 0", st.Bytes)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := openT(t, Options{})
	if err := s.Put("ns", 1, 7, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("ns", 1, 7)
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload roundtrip: ok=%v len=%d", ok, len(got))
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	s := openT(t, Options{})
	if err := s.Put("ns", 1, 9, []byte("short")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ns", 1, 9, []byte("a longer replacement payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("ns", 1, 9)
	if !ok || string(got) != "a longer replacement payload" {
		t.Fatalf("overwrite not visible: ok=%v got=%q", ok, got)
	}
}

// corruptEntry applies mutate to the single entry file under the store.
func corruptEntry(t *testing.T, s *Store, ns string, key uint64, mutate func([]byte) []byte) {
	t.Helper()
	path := s.entryPath(ns, key)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(buf), 0o644); err != nil {
		t.Fatal(err)
	}
}

func quarantined(t *testing.T, s *Store) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

func TestCorruptionQuarantinedAsMiss(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated-mid-header", func(b []byte) []byte { return b[:headerLen/2] }},
		{"truncated-mid-payload", func(b []byte) []byte { return b[:headerLen+3] }},
		{"truncated-checksum", func(b []byte) []byte { return b[:len(b)-1] }},
		{"garbled-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"garbled-length", func(b []byte) []byte { b[16] ^= 0x10; return b }},
		{"garbled-payload", func(b []byte) []byte { b[headerLen] ^= 0x01; return b }},
		{"garbled-crc", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"empty-file", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openT(t, Options{})
			if err := s.Put("ns", 1, 5, []byte("payload under test")); err != nil {
				t.Fatal(err)
			}
			corruptEntry(t, s, "ns", 5, tc.mutate)
			if _, ok := s.Get("ns", 1, 5); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if got := s.Stats().Corrupt; got != 1 {
				t.Errorf("corrupt counter %d, want 1", got)
			}
			if got := quarantined(t, s); got != 1 {
				t.Errorf("%d quarantined files, want 1", got)
			}
			if _, err := os.Stat(s.entryPath("ns", 5)); !os.IsNotExist(err) {
				t.Error("corrupt entry still present under its published name")
			}
			// The slot is reusable: a fresh put serves again.
			if err := s.Put("ns", 1, 5, []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("ns", 1, 5); !ok || string(got) != "recomputed" {
				t.Fatalf("recomputed entry not served: ok=%v got=%q", ok, got)
			}
		})
	}
}

func TestStaleVersionNotQuarantined(t *testing.T) {
	s := openT(t, Options{})
	if err := s.Put("ns", 1, 5, []byte("v1 entry")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("ns", 2, 5); ok {
		t.Fatal("stale-version entry served")
	}
	if got := s.Stats().Corrupt; got != 0 {
		t.Errorf("stale version counted as corruption (%d)", got)
	}
	// The old-version reader still sees it.
	if _, ok := s.Get("ns", 1, 5); !ok {
		t.Error("v1 entry lost after v2 read")
	}
}

func TestCrossStoreSharing(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("ns", 1, 77, []byte("written by A")); err != nil {
		t.Fatal(err)
	}
	// A second store handle over the same directory (two processes in
	// miniature) sees A's entry, including the size accounting at Open.
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get("ns", 1, 77)
	if !ok || string(got) != "written by A" {
		t.Fatalf("store B missed store A's entry: ok=%v got=%q", ok, got)
	}
	if b.Stats().Bytes <= 0 {
		t.Error("store B did not account pre-existing bytes at Open")
	}
}

func TestGCEvictsOldestFirst(t *testing.T) {
	// Budget that holds only a few of the ~large entries.
	payload := make([]byte, 4096)
	s := openT(t, Options{MaxBytes: 4 * int64(len(payload))})
	for k := uint64(0); k < 8; k++ {
		if err := s.Put("ns", 1, k, payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions past the byte budget")
	}
	if st.Bytes > 4*int64(len(payload)) {
		t.Errorf("residency %d over budget %d after GC", st.Bytes, 4*len(payload))
	}
	// The most recent entry must have survived.
	if _, ok := s.Get("ns", 1, 7); !ok {
		t.Error("most recently written entry was evicted")
	}
}

func TestGCDisabled(t *testing.T) {
	payload := make([]byte, 1024)
	s := openT(t, Options{MaxBytes: -1})
	for k := uint64(0); k < 16; k++ {
		if err := s.Put("ns", 1, k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Evictions; got != 0 {
		t.Errorf("%d evictions with GC disabled", got)
	}
}

func TestDoSingleflight(t *testing.T) {
	s := openT(t, Options{})
	var computes atomic.Int32
	var start, done sync.WaitGroup
	const workers = 8
	start.Add(1)
	done.Add(workers)
	results := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer done.Done()
			start.Wait()
			payload, err := s.Do("ns", 1, 11, func() ([]byte, error) {
				computes.Add(1)
				return []byte("computed once"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[w] = payload
		}(w)
	}
	start.Done()
	done.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("%d concurrent computations, want 1 (singleflight)", got)
	}
	for w, r := range results {
		if string(r) != "computed once" {
			t.Errorf("worker %d got %q", w, r)
		}
	}
	// After the flight lands, Do serves from disk.
	if _, err := s.Do("ns", 1, 11, func() ([]byte, error) {
		t.Error("recompute despite a stored entry")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDoPropagatesComputeError(t *testing.T) {
	s := openT(t, Options{})
	wantErr := fmt.Errorf("compute exploded")
	if _, err := s.Do("ns", 1, 12, func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// A failed compute publishes nothing; the next Do retries.
	payload, err := s.Do("ns", 1, 12, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(payload) != "ok" {
		t.Fatalf("retry after failed compute: %q, %v", payload, err)
	}
}

// TestStoreConcurrentAccess hammers one store from many goroutines mixing
// Get, Put, Do and GC pressure; run under -race (and looped by
// `make cache-stress`) it pins the store's concurrency contract.
func TestStoreConcurrentAccess(t *testing.T) {
	s := openT(t, Options{MaxBytes: 64 * 1024})
	payload := make([]byte, 512)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				key := uint64(i % 16)
				switch i % 3 {
				case 0:
					_ = s.Put("ns", 1, key, payload)
				case 1:
					if got, ok := s.Get("ns", 1, key); ok && len(got) != len(payload) {
						t.Errorf("worker %d: payload len %d, want %d", w, len(got), len(payload))
					}
				case 2:
					if _, err := s.Do("flight", 1, key, func() ([]byte, error) {
						return payload, nil
					}); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
