// Package castore is a crash-safe, disk-backed, content-addressed artifact
// store: the persistent tier under the process-lifetime evaluation caches
// (the uarch trace cache, the platform spectra memo, the bench measurement
// memo). Entries are keyed by the same 64-bit content hashes the in-memory
// caches already trust, laid out in a sharded two-level directory tree, and
// written atomically (temp file + rename) so concurrent processes over one
// directory see only whole entries. A truncated or garbled entry is detected
// by length/checksum framing, quarantined, and treated as a miss — the
// consumer recomputes and overwrites, so corruption can never change a
// result, only cost a re-simulation. The store is size-bounded: past the
// byte budget, the least-recently-used entries (mtime order; hits re-touch)
// are deleted.
//
// Safety model:
//
//   - Atomicity: entries are published by rename, which POSIX guarantees
//     atomic within a filesystem. Readers see either the old entry, the new
//     entry, or none — never a partial write under a published name.
//   - Integrity: every entry carries a magic/version/key/length header and
//     a trailing CRC32-C over header + payload. Any parse or checksum
//     failure quarantines the file (renamed into quarantine/, preserved for
//     inspection) and reads as a miss.
//   - Cross-process sharing: no locks are needed for correctness. Two
//     processes that miss the same key both compute the same pure value and
//     race to publish; either rename winning leaves a valid entry. Within
//     one process, Do collapses concurrent misses onto one computation.
//   - Durability: writes are not fsynced by default (the store is a cache;
//     an entry torn by power loss is quarantined on first read). Opening
//     with Sync true adds an fsync before every publish.
package castore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// magic marks a store entry file ("CAS1" little-endian).
	magic uint32 = 0x31534143
	// headerLen is magic(4) + version(2) + reserved(2) + key(8) + len(8).
	headerLen = 24
	// crcLen is the trailing CRC32-C.
	crcLen = 4
	// quarantineDir collects corrupt entries under the store root.
	quarantineDir = "quarantine"
	// tmpPrefix marks in-flight temp files (skipped by reads, reaped by GC).
	tmpPrefix = ".tmp-"
)

// DefaultMaxBytes is the GC budget when Options.MaxBytes is zero (1 GiB —
// roughly a week of mixed campaign traffic at the default analysis grid).
const DefaultMaxBytes = 1 << 30

// gcLowWater is the fraction of MaxBytes the collector trims down to, so
// each GC pass buys headroom instead of running again on the next put.
const gcLowWater = 0.75

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// MaxBytes bounds the store's total size; 0 means DefaultMaxBytes,
	// negative disables GC.
	MaxBytes int64
	// Sync fsyncs every entry before publishing it. Off by default: the
	// store is a cache, and a torn entry is quarantined on first read.
	Sync bool
}

// Stats is a snapshot of the store's counters. Hits/Misses count Get
// traffic; Puts counts published entries; Corrupt counts quarantined
// entries; Evictions counts GC deletions; Bytes is the tracked residency.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Corrupt   uint64
	Evictions uint64
	Bytes     int64
}

// String renders the stats as the one-line summary the CLIs print.
func (s Stats) String() string {
	total := s.Hits + s.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits) / float64(total)
	}
	return fmt.Sprintf("persistent cache: %d hits / %d misses (%.1f%% hit rate), %d puts, %d corrupt quarantined, %d evicted, %d bytes",
		s.Hits, s.Misses, pct, s.Puts, s.Corrupt, s.Evictions, s.Bytes)
}

// Store is one on-disk cache directory. It is safe for concurrent use by
// multiple goroutines and (without any coordination) multiple processes.
type Store struct {
	dir      string
	maxBytes int64
	sync     bool

	size atomic.Int64 // tracked bytes (exact after Open/GC, advisory between)

	hits, misses, puts, corrupt, evictions atomic.Uint64

	gcMu sync.Mutex // one collector at a time

	flightMu sync.Mutex
	flight   map[flightKey]*flightCall
}

type flightKey struct {
	ns  string
	key uint64
}

type flightCall struct {
	done    chan struct{}
	payload []byte
	err     error
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("castore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		sync:     opts.Sync,
		flight:   make(map[flightKey]*flightCall),
	}
	if s.maxBytes == 0 {
		s.maxBytes = DefaultMaxBytes
	}
	s.size.Store(s.walkSize())
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Corrupt:   s.corrupt.Load(),
		Evictions: s.evictions.Load(),
		Bytes:     s.size.Load(),
	}
}

// entryPath is the sharded location of one entry: ns/<first key byte>/<key>.
// Two levels keep directory fan-out bounded (256 shards per namespace) while
// the full hex key in the leaf name makes entries greppable and collision-
// free by construction.
func (s *Store) entryPath(ns string, key uint64) string {
	return filepath.Join(s.dir, ns, fmt.Sprintf("%02x", byte(key>>56)), fmt.Sprintf("%016x.e", key))
}

// encodeFrame wraps a payload in the store's framing.
func encodeFrame(version uint16, key uint64, payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload)+crcLen)
	putU32 := func(off int, v uint32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	putU64 := func(off int, v uint64) {
		putU32(off, uint32(v))
		putU32(off+4, uint32(v>>32))
	}
	putU32(0, magic)
	buf[4] = byte(version)
	buf[5] = byte(version >> 8)
	// buf[6:8] reserved, zero.
	putU64(8, key)
	putU64(16, uint64(len(payload)))
	copy(buf[headerLen:], payload)
	putU32(headerLen+len(payload), crc32.Checksum(buf[:headerLen+len(payload)], crcTable))
	return buf
}

// frameStatus classifies a read entry.
type frameStatus int

const (
	frameOK frameStatus = iota
	frameStale
	frameCorrupt
)

// decodeFrame validates an entry file's framing and returns its payload.
// frameStale means a structurally valid entry of another codec version
// (a past or future writer): a plain miss, eligible for overwrite, never
// quarantined. Anything else that fails to parse is frameCorrupt.
func decodeFrame(buf []byte, version uint16, key uint64) ([]byte, frameStatus) {
	if len(buf) < headerLen+crcLen {
		return nil, frameCorrupt
	}
	u32 := func(off int) uint32 {
		return uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24
	}
	u64 := func(off int) uint64 {
		return uint64(u32(off)) | uint64(u32(off+4))<<32
	}
	if u32(0) != magic {
		return nil, frameCorrupt
	}
	plen := u64(16)
	if plen != uint64(len(buf)-headerLen-crcLen) {
		return nil, frameCorrupt
	}
	body := buf[:headerLen+int(plen)]
	if u32(len(body)) != crc32.Checksum(body, crcTable) {
		return nil, frameCorrupt
	}
	if v := uint16(buf[4]) | uint16(buf[5])<<8; v != version {
		return nil, frameStale
	}
	if u64(8) != key {
		// A valid frame under the wrong name cannot happen by construction;
		// treat it as corruption rather than serve a mis-filed entry.
		return nil, frameCorrupt
	}
	return body[headerLen:], frameOK
}

// Get returns the payload stored under (ns, version, key), or ok=false on
// a miss. A corrupt entry is quarantined and reads as a miss; a hit
// re-touches the entry's mtime so GC approximates LRU.
func (s *Store) Get(ns string, version uint16, key uint64) ([]byte, bool) {
	path := s.entryPath(ns, key)
	buf, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, st := decodeFrame(buf, version, key)
	switch st {
	case frameCorrupt:
		s.quarantine(path, int64(len(buf)))
		s.misses.Add(1)
		return nil, false
	case frameStale:
		s.misses.Add(1)
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort LRU touch
	s.hits.Add(1)
	return payload, true
}

// Put publishes a payload under (ns, version, key) via an atomic temp-file
// write and rename, then triggers GC if the store is over budget. Errors
// are swallowed after accounting — a cache that cannot write degrades to a
// cache that misses — and reported via the return for tests.
func (s *Store) Put(ns string, version uint16, key uint64, payload []byte) error {
	path := s.entryPath(ns, key)
	shard := filepath.Dir(path)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	buf := encodeFrame(version, key, payload)
	f, err := os.CreateTemp(shard, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	tmp := f.Name()
	if _, err = f.Write(buf); err == nil && s.sync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("castore: %w", err)
	}
	var prev int64
	if st, err := os.Stat(path); err == nil {
		prev = st.Size() // overwriting: don't double-count
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("castore: %w", err)
	}
	s.puts.Add(1)
	if n := s.size.Add(int64(len(buf)) - prev); s.maxBytes > 0 && n > s.maxBytes {
		s.gc()
	}
	return nil
}

// Do returns the payload for (ns, version, key), computing and publishing
// it on a miss. Concurrent callers for the same (ns, key) share one
// computation — the in-process singleflight that keeps a cold sweep's
// parallel workers from simulating the same workload once per worker.
func (s *Store) Do(ns string, version uint16, key uint64, compute func() ([]byte, error)) ([]byte, error) {
	if payload, ok := s.Get(ns, version, key); ok {
		return payload, nil
	}
	k := flightKey{ns: ns, key: key}
	s.flightMu.Lock()
	if c, ok := s.flight[k]; ok {
		s.flightMu.Unlock()
		<-c.done
		return c.payload, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[k] = c
	s.flightMu.Unlock()

	c.payload, c.err = compute()
	if c.err == nil {
		_ = s.Put(ns, version, key, c.payload)
	}
	s.flightMu.Lock()
	delete(s.flight, k)
	s.flightMu.Unlock()
	close(c.done)
	return c.payload, c.err
}

// quarantine moves a corrupt entry aside (unique name, atomic rename) so it
// stops being re-parsed, stays available for inspection, and remains inside
// the GC budget. Failure to quarantine falls back to deletion.
func (s *Store) quarantine(path string, size int64) {
	s.corrupt.Add(1)
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(path)
		s.size.Add(-size)
		return
	}
	f, err := os.CreateTemp(qdir, filepath.Base(path)+".bad-*")
	if err != nil {
		os.Remove(path)
		s.size.Add(-size)
		return
	}
	f.Close()
	if err := os.Rename(path, f.Name()); err != nil {
		os.Remove(f.Name())
		os.Remove(path)
		s.size.Add(-size)
	}
}

// walkSize sums the store's current on-disk bytes.
func (s *Store) walkSize() int64 {
	var total int64
	_ = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// gcFile is one eviction candidate.
type gcFile struct {
	path  string
	size  int64
	mtime time.Time
}

// gc walks the store, recomputes the exact residency (other processes may
// have written entries this store never accounted), and deletes the
// least-recently-touched files until the store is under the low-water mark.
// Orphaned temp files (a writer killed mid-put) older than a minute are
// reaped unconditionally.
func (s *Store) gc() {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	var files []gcFile
	var total int64
	cutoff := time.Now().Add(-time.Minute)
	_ = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		if strings.HasPrefix(d.Name(), tmpPrefix) && info.ModTime().Before(cutoff) {
			os.Remove(path)
			return nil
		}
		files = append(files, gcFile{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	limit := int64(gcLowWater * float64(s.maxBytes))
	if total > limit {
		sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
		for _, f := range files {
			if total <= limit {
				break
			}
			if os.Remove(f.path) == nil {
				total -= f.size
				s.evictions.Add(1)
			}
		}
	}
	s.size.Store(total)
}
