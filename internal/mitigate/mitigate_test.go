package mitigate

import (
	"math"
	"testing"

	"repro/internal/instrument"
	"repro/internal/pdn"
	"repro/internal/platform"
)

func synthetic(vnom, amp, freq, dt float64, n int) *pdn.Response {
	r := &pdn.Response{Dt: dt, VDie: make([]float64, n), IDie: make([]float64, n)}
	for i := range r.VDie {
		r.VDie[i] = vnom - amp*(0.5-0.5*math.Cos(2*math.Pi*freq*float64(i)*dt))
	}
	return r
}

func TestValidate(t *testing.T) {
	good := AdaptiveClock{WarnDroopV: 0.02, EmergencyDroopV: 0.06, ResponseLatencyS: 1e-9}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AdaptiveClock{
		{WarnDroopV: 0, EmergencyDroopV: 0.06},
		{WarnDroopV: 0.06, EmergencyDroopV: 0.02},
		{WarnDroopV: 0.02, EmergencyDroopV: 0.06, ResponseLatencyS: -1},
	}
	for i, ac := range bad {
		if err := ac.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	ac := AdaptiveClock{WarnDroopV: 0.02, EmergencyDroopV: 0.06}
	if _, err := Analyze(ac, nil, 1); err == nil {
		t.Error("nil response accepted")
	}
	if _, err := Analyze(AdaptiveClock{}, synthetic(1, 0.1, 1e6, 1e-9, 64), 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestAnalyzeCountsAndLead(t *testing.T) {
	// A 100 mV droop oscillation at 10 MHz: period 100 ns. The trace dips
	// below warn (20 mV) well before emergency (60 mV); the lead time is a
	// known fraction of the period.
	const (
		vnom = 1.0
		amp  = 0.1
		freq = 10e6
		dt   = 0.1e-9
	)
	resp := synthetic(vnom, amp, freq, dt, 40000) // 4 us = 40 cycles
	ac := AdaptiveClock{WarnDroopV: 0.02, EmergencyDroopV: 0.06, ResponseLatencyS: 0}
	a, err := Analyze(ac, resp, vnom)
	if err != nil {
		t.Fatal(err)
	}
	if a.Emergencies < 35 || a.Emergencies > 41 {
		t.Fatalf("%d emergencies, want ~40", a.Emergencies)
	}
	if a.Caught != a.Emergencies {
		t.Fatalf("zero-latency mechanism missed %d", a.Emergencies-a.Caught)
	}
	// Analytic lead: cos crossing 0.2*amp to 0.6*amp of the raised-cosine.
	tWarn := math.Acos(1-2*0.2) / (2 * math.Pi * freq)
	tEmg := math.Acos(1-2*0.6) / (2 * math.Pi * freq)
	wantLead := tEmg - tWarn
	if math.Abs(a.MinLeadS-wantLead) > 1e-9 {
		t.Fatalf("lead %v, want %v", a.MinLeadS, wantLead)
	}
	// With latency above the lead, everything is missed.
	ac.ResponseLatencyS = wantLead * 1.5
	a2, err := Analyze(ac, resp, vnom)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Caught != 0 {
		t.Fatalf("latency beyond lead still caught %d", a2.Caught)
	}
}

func TestQuietTraceHasNoEmergencies(t *testing.T) {
	resp := synthetic(1.0, 0.01, 10e6, 1e-9, 4096) // never reaches warn
	ac := AdaptiveClock{WarnDroopV: 0.02, EmergencyDroopV: 0.06}
	a, err := Analyze(ac, resp, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Emergencies != 0 || a.CaughtFraction != 1 {
		t.Fatalf("quiet trace: %+v", a)
	}
}

func TestLatencySweepMonotone(t *testing.T) {
	resp := synthetic(1.0, 0.1, 50e6, 0.1e-9, 20000)
	ac := AdaptiveClock{WarnDroopV: 0.02, EmergencyDroopV: 0.06}
	lats := []float64{0, 0.5e-9, 1e-9, 2e-9, 4e-9, 8e-9}
	points, err := LatencySweep(ac, resp, 1.0, lats)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].CaughtFraction > points[i-1].CaughtFraction {
			t.Fatalf("caught fraction rose with latency at %d: %+v", i, points)
		}
	}
	crit := CriticalLatency(points)
	if crit <= 0 {
		t.Fatal("no workable latency found for a 50 MHz oscillation")
	}
}

// The paper's Section 6 point: power-gating raises the oscillation
// frequency, shrinking the latency budget of adaptive clocking.
func TestPowerGatingShrinksLatencyBudget(t *testing.T) {
	p, err := platform.JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Domain(platform.DomainA53)
	if err != nil {
		t.Fatal(err)
	}
	budget := func(cores int) float64 {
		if err := d.SetPoweredCores(cores); err != nil {
			t.Fatal(err)
		}
		defer d.Reset()
		m, err := d.Model()
		if err != nil {
			t.Fatal(err)
		}
		fRes, _, err := m.ResonancePeak(40e6, 150e6)
		if err != nil {
			t.Fatal(err)
		}
		// Resonant excitation producing ~100 mV of oscillation.
		scl := instrument.NewSCL(1.2)
		resp, err := scl.Excite(m, fRes)
		if err != nil {
			t.Fatal(err)
		}
		ptp := resp.PeakToPeak()
		ac := AdaptiveClock{WarnDroopV: ptp * 0.15, EmergencyDroopV: ptp * 0.45}
		var lats []float64
		for l := 0.0; l <= 8e-9; l += 0.1e-9 {
			lats = append(lats, l)
		}
		points, err := LatencySweep(ac, resp, m.Params.VNominal, lats)
		if err != nil {
			t.Fatal(err)
		}
		return CriticalLatency(points)
	}
	four := budget(4)
	one := budget(1)
	if four <= 0 || one <= 0 {
		t.Fatalf("budgets not positive: %v %v", four, one)
	}
	if one >= four {
		t.Fatalf("power-gating did not shrink the latency budget: 4 cores %v, 1 core %v", four, one)
	}
}
