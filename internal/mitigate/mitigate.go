// Package mitigate models the droop-mitigation mechanism the paper's
// Section 6 discussion puts at risk: adaptive clocking (Grenat/Lefurgy
// style), which watches the rail and stretches the clock when a droop
// begins, needs its response to land before the droop bottoms out. The
// warning-to-emergency lead time scales with the PDN oscillation period,
// so power-gating cores — which raises the first-order resonance — eats
// directly into the mechanism's latency budget. This package quantifies
// that effect on simulated voltage traces.
package mitigate

import (
	"fmt"

	"repro/internal/pdn"
)

// AdaptiveClock describes a droop detector + clock stretcher.
type AdaptiveClock struct {
	// WarnDroopV is the droop (below nominal) at which the detector fires.
	WarnDroopV float64
	// EmergencyDroopV is the droop that must not be reached at full clock
	// (the margin the mechanism protects).
	EmergencyDroopV float64
	// ResponseLatencyS is the detector-to-stretch response time.
	ResponseLatencyS float64
}

// Validate reports the first problem with the configuration.
func (ac AdaptiveClock) Validate() error {
	if ac.WarnDroopV <= 0 || ac.EmergencyDroopV <= ac.WarnDroopV {
		return fmt.Errorf("mitigate: thresholds must satisfy 0 < warn < emergency, got %+v", ac)
	}
	if ac.ResponseLatencyS < 0 {
		return fmt.Errorf("mitigate: negative response latency")
	}
	return nil
}

// Analysis is the outcome of replaying a voltage trace against the
// mechanism.
type Analysis struct {
	// Emergencies is the number of excursions below the emergency level.
	Emergencies int
	// Caught is how many of them the stretcher would have intercepted
	// (warning fired at least ResponseLatency before the emergency).
	Caught int
	// CaughtFraction is Caught/Emergencies (1.0 when there are none).
	CaughtFraction float64
	// MinLeadS is the shortest observed warning-to-emergency lead time.
	MinLeadS float64
}

// Analyze replays the die-voltage trace: every crossing below the
// emergency level is an emergency; it is caught if the same excursion
// crossed the warning level at least ResponseLatency earlier.
func Analyze(ac AdaptiveClock, resp *pdn.Response, vnom float64) (*Analysis, error) {
	if err := ac.Validate(); err != nil {
		return nil, err
	}
	if resp == nil || len(resp.VDie) < 2 {
		return nil, fmt.Errorf("mitigate: empty response")
	}
	warn := vnom - ac.WarnDroopV
	emergency := vnom - ac.EmergencyDroopV

	out := &Analysis{MinLeadS: -1}
	inExcursion := false
	warnAt := -1.0
	emergencySeen := false
	for i, v := range resp.VDie {
		t := float64(i) * resp.Dt
		switch {
		case !inExcursion && v < warn:
			inExcursion = true
			warnAt = t
			emergencySeen = false
		case inExcursion && v >= warn:
			inExcursion = false
		}
		if inExcursion && !emergencySeen && v < emergency {
			emergencySeen = true
			out.Emergencies++
			lead := t - warnAt
			if lead >= ac.ResponseLatencyS {
				out.Caught++
			}
			if out.MinLeadS < 0 || lead < out.MinLeadS {
				out.MinLeadS = lead
			}
		}
	}
	if out.Emergencies == 0 {
		out.CaughtFraction = 1
		out.MinLeadS = 0
		return out, nil
	}
	out.CaughtFraction = float64(out.Caught) / float64(out.Emergencies)
	return out, nil
}

// LatencyPoint pairs a response latency with the caught fraction.
type LatencyPoint struct {
	LatencyS       float64
	CaughtFraction float64
}

// LatencySweep evaluates the mechanism across response latencies.
func LatencySweep(ac AdaptiveClock, resp *pdn.Response, vnom float64, latencies []float64) ([]LatencyPoint, error) {
	out := make([]LatencyPoint, 0, len(latencies))
	for _, l := range latencies {
		cfg := ac
		cfg.ResponseLatencyS = l
		a, err := Analyze(cfg, resp, vnom)
		if err != nil {
			return nil, err
		}
		out = append(out, LatencyPoint{LatencyS: l, CaughtFraction: a.CaughtFraction})
	}
	return out, nil
}

// CriticalLatency returns the largest latency in the sweep that still
// catches every emergency (0 if none does).
func CriticalLatency(points []LatencyPoint) float64 {
	best := 0.0
	for _, p := range points {
		if p.CaughtFraction >= 1 && p.LatencyS > best {
			best = p.LatencyS
		}
	}
	return best
}
