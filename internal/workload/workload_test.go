package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/uarch"
)

func TestAllWorkloadsBuildOnBothPools(t *testing.T) {
	for _, pool := range []*isa.Pool{isa.ARM64Pool(), isa.X86Pool()} {
		for _, w := range All() {
			seq, err := w.Build(pool)
			if err != nil {
				t.Errorf("%s on %v: %v", w.Name, pool.Arch, err)
				continue
			}
			if len(seq) == 0 {
				t.Errorf("%s on %v: empty loop", w.Name, pool.Arch)
			}
			for i, in := range seq {
				if in.Def == nil {
					t.Fatalf("%s on %v: nil def at %d", w.Name, pool.Arch, i)
				}
				limit := pool.IntRegs
				if in.Def.RegFile == isa.RegVec {
					limit = pool.VecRegs
				}
				if in.Dest < 0 || in.Dest >= limit {
					t.Fatalf("%s: dest out of range", w.Name)
				}
				if in.Def.Mem != isa.MemNone && (in.Addr < 0 || in.Addr >= pool.MemSlots) {
					t.Fatalf("%s: addr out of range", w.Name)
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("lbm")
	if err != nil || w.Name != "lbm" {
		t.Fatalf("ByName(lbm) = %v, %v", w.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown workload found")
	}
}

func TestSuiteSizes(t *testing.T) {
	if n := len(SPECSuite()); n != 10 {
		t.Errorf("SPEC suite has %d entries", n)
	}
	if n := len(DesktopSuite()); n != 7 {
		t.Errorf("desktop suite has %d entries", n)
	}
	names := map[string]bool{}
	for _, w := range All() {
		if names[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		if w.Description == "" {
			t.Errorf("%s has no description", w.Name)
		}
	}
}

// The electrical orderings the proxies are designed for.
func TestWorkloadCurrentOrdering(t *testing.T) {
	pool := isa.ARM64Pool()
	cfg := uarch.CortexA72()
	mean := func(name string) float64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w.Build(pool)
		if err != nil {
			t.Fatal(err)
		}
		cl := power.ClusterLoad{Core: cfg, Seq: seq, ClockHz: 1.2e9, ActiveCores: 1}
		wave, _, err := cl.Current(0.5e-9, 2048)
		if err != nil {
			t.Fatal(err)
		}
		return power.MeanCurrent(wave)
	}
	idle := mean("idle")
	mcf := mean("mcf")
	lbm := mean("lbm")
	prime := mean("prime95")
	if idle >= mcf || idle >= lbm {
		t.Errorf("idle %v not the lowest: mcf %v, lbm %v", idle, mcf, lbm)
	}
	if prime <= lbm || prime <= mcf {
		t.Errorf("prime95 %v not the power hog vs lbm %v / mcf %v", prime, lbm, mcf)
	}
}

func TestProbeLoopHasTwoPhases(t *testing.T) {
	pool := isa.ARM64Pool()
	seq, err := Probe().Build(pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 9 {
		t.Fatalf("probe loop has %d instructions", len(seq))
	}
	res, err := uarch.Run(uarch.CortexA53(), seq, 2000)
	if err != nil {
		t.Fatal(err)
	}
	steady := res.SteadyCharge()
	min, max := steady[0], steady[0]
	for _, q := range steady {
		if q < min {
			min = q
		}
		if q > max {
			max = q
		}
	}
	if max < 2*min {
		t.Errorf("probe loop lacks current contrast: %v..%v", min, max)
	}
}

// The same electrical orderings must hold on the x86 pool / desktop core.
func TestWorkloadCurrentOrderingX86(t *testing.T) {
	pool := isa.X86Pool()
	cfg := uarch.AthlonII()
	mean := func(name string) float64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w.Build(pool)
		if err != nil {
			t.Fatal(err)
		}
		cl := power.ClusterLoad{Core: cfg, Seq: seq, ClockHz: 3.1e9, ActiveCores: 1}
		wave, _, err := cl.Current(0.25e-9, 2048)
		if err != nil {
			t.Fatal(err)
		}
		return power.MeanCurrent(wave)
	}
	idle := mean("idle")
	prime := mean("prime95")
	webxprt := mean("webxprt")
	if idle >= webxprt || idle >= prime {
		t.Errorf("idle %v not the lowest: webxprt %v, prime95 %v", idle, webxprt, prime)
	}
	if prime <= webxprt {
		t.Errorf("prime95 %v not above webxprt %v", prime, webxprt)
	}
}
