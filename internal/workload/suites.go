package workload

import (
	"fmt"

	"repro/internal/isa"
)

// SPECSuite returns the SPEC2006 proxies used on the ARM clusters. Each
// proxy's loop reproduces the benchmark's electrical character:
//
//   - lbm: streaming stencil — bursts of loads/stores and FP interleaved,
//     the largest droop of the suite (the paper's reference point).
//   - mcf: pointer chasing — dependence-bound loads, low IPC, low current.
//   - povray/namd: FP/SIMD dense, high sustained current, little
//     modulation.
//   - hmmer/h264ref: integer dense, high IPC.
//   - bzip2/gcc: mixed integer with memory traffic and stalls.
//   - soplex/milc: FP plus memory with some burstiness.
func SPECSuite() []Workload {
	return []Workload{
		spec("lbm", "streaming LBM stencil (memory+FP bursts)", buildLbm),
		spec("mcf", "pointer-chasing (dependence-bound loads)", buildMcf),
		spec("povray", "ray tracing (dense FP)", buildFPDense(10, 0)),
		spec("namd", "molecular dynamics (dense SIMD)", buildFPDense(6, 6)),
		spec("hmmer", "profile HMM search (dense integer)", buildIntDense(12, 0)),
		spec("h264ref", "video encode (integer+SIMD)", buildIntDense(8, 4)),
		spec("bzip2", "compression (integer+memory, stalls)", buildMixedMem(14, 4, 1)),
		spec("gcc", "compiler (branchy integer+memory)", buildMixedMem(10, 4, 0)),
		spec("soplex", "LP solver (FP+memory)", buildFPMem(6, 4)),
		spec("milc", "lattice QCD (FP+memory bursts)", buildFPMem(8, 6)),
	}
}

// DesktopSuite returns the Windows desktop workloads of the AMD evaluation
// (Figure 18), including the Prime95 and AMD Overdrive stability tests the
// paper's virus beats.
func DesktopSuite() []Workload {
	return []Workload{
		spec("prime95", "mersenne FFT torture test (sustained FP/SIMD power)", buildPowerVirus(16)),
		spec("amd-stability", "AMD Overdrive stability test (sustained mixed power)", buildPowerVirus(12)),
		spec("blender", "3D render (FP with memory)", buildFPMem(10, 4)),
		spec("cinebench", "CPU render benchmark (dense FP/SIMD)", buildFPDense(8, 8)),
		spec("euler3d", "CFD solver (FP+memory)", buildFPMem(8, 6)),
		spec("webxprt", "browser workload mix (light branchy integer)", buildMixedMem(6, 2, 0)),
		spec("geekbench", "mixed benchmark suite", buildMixedMem(8, 4, 1)),
	}
}

// All returns every named workload, including idle and the probe loop.
func All() []Workload {
	out := []Workload{Idle(), Probe()}
	out = append(out, SPECSuite()...)
	out = append(out, DesktopSuite()...)
	return out
}

// ByName looks a workload up across All.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

func spec(name, desc string, build func(p *isa.Pool) ([]isa.Inst, error)) Workload {
	return Workload{Name: name, Description: desc, Build: build}
}

// buildLbm: a streaming stencil whose sweep structure alternates a
// memory/SIMD burst with a serial FP reduction chain. The chain threads
// iterations (same register), so even an out-of-order core settles into a
// periodic high/low current pattern in the tens of MHz — lbm is the
// noisiest SPEC workload in the paper's Figure 10 for exactly this kind of
// reason.
func buildLbm(p *isa.Pool) ([]isa.Inst, error) {
	b := newSeqBuilder(p)
	for i := 0; i < 6; i++ {
		b.indep(b.def(aliasLoad(p)))
	}
	for i := 0; i < 4; i++ {
		b.indep(b.def(aliasVMul(p)))
	}
	for i := 0; i < 2; i++ {
		b.indep(b.def(aliasFMul(p)))
	}
	for i := 0; i < 3; i++ {
		b.indep(b.def(aliasStore(p)))
	}
	// Serial reduction spine: 4 dependent FP adds bound the iteration
	// rate and create the low-current phase. The resulting ~100 MHz sweep
	// rhythm sits on the shoulder of the A72's 67 MHz resonance — noisy,
	// but clearly short of a deliberately tuned virus.
	for i := 0; i < 4; i++ {
		b.chain(b.def(aliasFAdd(p)), 1)
	}
	return b.build()
}

// buildMcf: serial dependent loads — low, flat current.
func buildMcf(p *isa.Pool) ([]isa.Inst, error) {
	b := newSeqBuilder(p)
	for i := 0; i < 10; i++ {
		b.chain(b.def(aliasLoad(p)), 2)
		b.chain(b.def(want(p, "add")), 2)
	}
	return b.build()
}

// buildFPDense: nFP scalar FP ops and nSIMD vector ops, all independent —
// high sustained current with minimal modulation.
func buildFPDense(nFP, nSIMD int) func(p *isa.Pool) ([]isa.Inst, error) {
	return func(p *isa.Pool) ([]isa.Inst, error) {
		b := newSeqBuilder(p)
		for i := 0; i < nFP; i++ {
			if i%2 == 0 {
				b.indep(b.def(aliasFMul(p)))
			} else {
				b.indep(b.def(aliasFAdd(p)))
			}
		}
		for i := 0; i < nSIMD; i++ {
			if i%2 == 0 {
				b.indep(b.def(aliasVMul(p)))
			} else {
				b.indep(b.def(aliasVAdd(p)))
			}
		}
		return b.build()
	}
}

// buildIntDense: independent integer ops with optional SIMD sprinkling.
func buildIntDense(nInt, nSIMD int) func(p *isa.Pool) ([]isa.Inst, error) {
	return func(p *isa.Pool) ([]isa.Inst, error) {
		b := newSeqBuilder(p)
		for i := 0; i < nInt; i++ {
			switch i % 3 {
			case 0:
				b.indep(b.def(want(p, "add")))
			case 1:
				b.indep(b.def(want(p, "sub")))
			default:
				b.indep(b.def(aliasMul(p)))
			}
		}
		for i := 0; i < nSIMD; i++ {
			b.indep(b.def(aliasVAdd(p)))
		}
		return b.build()
	}
}

// buildMixedMem: integer work with memory traffic and nDiv long stalls.
func buildMixedMem(nInt, nMem, nDiv int) func(p *isa.Pool) ([]isa.Inst, error) {
	return func(p *isa.Pool) ([]isa.Inst, error) {
		b := newSeqBuilder(p)
		for i := 0; i < nInt; i++ {
			b.indep(b.def(want(p, "add")))
		}
		for i := 0; i < nMem; i++ {
			if i%2 == 0 {
				b.indep(b.def(aliasLoad(p)))
			} else {
				b.indep(b.def(aliasStore(p)))
			}
		}
		for i := 0; i < nDiv; i++ {
			b.chain(b.def(aliasDiv(p)), 7)
		}
		return b.build()
	}
}

// buildFPMem: FP compute over memory operands.
func buildFPMem(nFP, nMem int) func(p *isa.Pool) ([]isa.Inst, error) {
	return func(p *isa.Pool) ([]isa.Inst, error) {
		b := newSeqBuilder(p)
		for i := 0; i < nMem; i++ {
			b.indep(b.def(aliasLoad(p)))
		}
		for i := 0; i < nFP; i++ {
			if i%2 == 0 {
				b.indep(b.def(aliasFAdd(p)))
			} else {
				b.indep(b.def(aliasFMul(p)))
			}
		}
		return b.build()
	}
}

// buildPowerVirus: maximum sustained switching — wide SIMD and memory kept
// saturated with no stalls. Stresses IR drop but produces little resonant
// dI/dt, which is exactly why the paper's viruses beat Prime95-class tests.
func buildPowerVirus(n int) func(p *isa.Pool) ([]isa.Inst, error) {
	return func(p *isa.Pool) ([]isa.Inst, error) {
		b := newSeqBuilder(p)
		for i := 0; i < n; i++ {
			switch i % 4 {
			case 0:
				b.indep(b.def(aliasVMul(p)))
			case 1:
				b.indep(b.def(aliasVAdd(p)))
			case 2:
				b.indep(b.def(aliasFMul(p)))
			default:
				b.indep(b.def(aliasLoad(p)))
			}
		}
		return b.build()
	}
}
