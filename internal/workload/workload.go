// Package workload provides the benchmark programs the paper compares its
// viruses against, rebuilt as deterministic instruction loops on the isa
// pools: an idle loop, the Section 5.3 resonance-probe loop, synthetic
// proxies for the SPEC2006 benchmarks used on the ARM clusters (Figures 10
// and 14), and proxies for the Windows desktop suite used on the AMD
// platform (Figure 18: Prime95, the AMD stability test, Blender, Cinebench,
// Euler3D, WebXPRT, GeekBench).
//
// The proxies are *signatures*, not ports: each reproduces the electrical
// character that matters for voltage noise — sustained high IPC with flat
// current (big IR drop, small dI/dt) for the power viruses like Prime95,
// bursty memory/FP alternation for lbm, dependence-chain-bound low current
// for mcf, and so on. Absolute performance is out of scope (DESIGN.md
// Section 2).
package workload

import (
	"fmt"

	"repro/internal/isa"
)

// Workload names a loop builder.
type Workload struct {
	Name        string
	Description string
	// Build constructs the loop for the given pool's architecture.
	Build func(p *isa.Pool) ([]isa.Inst, error)
}

// want fetches a mnemonic from the pool or reports a helpful error.
func want(p *isa.Pool, names ...string) (*isa.Def, error) {
	for _, n := range names {
		if d, ok := p.DefByMnemonic(n); ok {
			return d, nil
		}
	}
	return nil, fmt.Errorf("workload: pool %v lacks all of %v", p.Arch, names)
}

// Cross-ISA mnemonic aliases: the first name is the ARM form, the second
// the x86 form, the third the RISC-V form. A data-defined pool can use any
// of them; the loop builders only care about the role.
func aliasLoad(p *isa.Pool) (*isa.Def, error)  { return want(p, "ldr", "movload", "ld") }
func aliasStore(p *isa.Pool) (*isa.Def, error) { return want(p, "str", "movstore", "sd") }
func aliasFAdd(p *isa.Pool) (*isa.Def, error)  { return want(p, "fadd", "addsd", "fadd.d") }
func aliasFMul(p *isa.Pool) (*isa.Def, error)  { return want(p, "fmul", "mulsd", "fmul.d") }
func aliasFDiv(p *isa.Pool) (*isa.Def, error)  { return want(p, "fdiv", "divsd", "fdiv.d") }
func aliasSqrt(p *isa.Pool) (*isa.Def, error)  { return want(p, "fsqrt", "sqrtsd", "fsqrt.d") }
func aliasVAdd(p *isa.Pool) (*isa.Def, error)  { return want(p, "vadd", "addps", "vadd.vv") }
func aliasVMul(p *isa.Pool) (*isa.Def, error)  { return want(p, "vmul", "mulps", "vmul.vv") }
func aliasDiv(p *isa.Pool) (*isa.Def, error)   { return want(p, "sdiv", "idiv", "div") }
func aliasMul(p *isa.Pool) (*isa.Def, error)   { return want(p, "mul", "imul") }

// seqBuilder accumulates instructions with round-robin operand assignment.
type seqBuilder struct {
	pool *isa.Pool
	seq  []isa.Inst
	reg  int
	vreg int
	mem  int
	err  error
}

func newSeqBuilder(p *isa.Pool) *seqBuilder { return &seqBuilder{pool: p} }

// def unwraps a (def, error) lookup, capturing the first error.
func (b *seqBuilder) def(d *isa.Def, err error) *isa.Def {
	if err != nil && b.err == nil {
		b.err = err
	}
	return d
}

// indep appends an instance of d with independent (round-robin) operands.
func (b *seqBuilder) indep(d *isa.Def) *seqBuilder {
	if b.err != nil || d == nil {
		return b
	}
	in := isa.Inst{Def: d}
	limit := b.pool.IntRegs
	cursor := &b.reg
	if d.RegFile == isa.RegVec {
		limit = b.pool.VecRegs
		cursor = &b.vreg
	}
	// The top four registers of each file are reserved for chain(), so
	// independent round-robin writes never sever a dependency chain.
	wrap := limit - 4
	if wrap < 2 {
		wrap = limit
	}
	if !d.NoDest {
		in.Dest = *cursor % wrap
		*cursor++
	}
	for i := 0; i < d.NSrc; i++ {
		in.Srcs[i] = (*cursor + i + 3) % wrap
	}
	if d.Mem != isa.MemNone {
		in.Addr = b.mem % b.pool.MemSlots
		b.mem++
	}
	b.seq = append(b.seq, in)
	return b
}

// chain appends an instance of d that depends on its own previous result
// (same register for destination and sources), forming a serial chain.
func (b *seqBuilder) chain(d *isa.Def, reg int) *seqBuilder {
	if b.err != nil || d == nil {
		return b
	}
	limit := b.pool.IntRegs
	if d.RegFile == isa.RegVec {
		limit = b.pool.VecRegs
	}
	// Chains live in the reserved top-four register block (see indep).
	if limit > 4 {
		reg = limit - 1 - (reg % 4)
	} else {
		reg %= limit
	}
	in := isa.Inst{Def: d, Dest: reg}
	for i := 0; i < d.NSrc; i++ {
		in.Srcs[i] = reg
	}
	if d.Mem != isa.MemNone {
		in.Addr = b.mem % b.pool.MemSlots
		b.mem++
	}
	b.seq = append(b.seq, in)
	return b
}

func (b *seqBuilder) build() ([]isa.Inst, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.seq) == 0 {
		return nil, fmt.Errorf("workload: empty loop")
	}
	return b.seq, nil
}

// Idle returns the CPU-idle proxy: a single cheap move, so the rail sees
// essentially base current.
func Idle() Workload {
	return Workload{
		Name:        "idle",
		Description: "idle CPU (wfi proxy)",
		Build: func(p *isa.Pool) ([]isa.Inst, error) {
			b := newSeqBuilder(p)
			return b.indep(b.def(want(p, "mov", "mv"))).build()
		},
	}
}

// Probe returns the Section 5.3 resonance-probe loop: a high-current burst
// of eight independent adds followed by one long unpipelined divide. Its
// loop frequency is modulated by the CPU clock to sweep the EM spike across
// the band.
func Probe() Workload {
	return Workload{
		Name:        "probe",
		Description: "two-phase resonance probe (8 ADD + 1 DIV)",
		Build: func(p *isa.Pool) ([]isa.Inst, error) {
			b := newSeqBuilder(p)
			for i := 0; i < 8; i++ {
				b.indep(b.def(want(p, "add")))
			}
			b.chain(b.def(aliasDiv(p)), 13)
			return b.build()
		},
	}
}
