package isa

import (
	"math/rand"
	"strings"
	"testing"
)

// FuzzParseProgram throws arbitrary text at the assembly parser: it must
// never panic, and anything it accepts must survive a format/parse round
// trip.
func FuzzParseProgram(f *testing.F) {
	pool := ARM64Pool()
	rng := rand.New(rand.NewSource(1))
	f.Add(FormatProgram(pool, pool.RandomSequence(rng, 20)))
	f.Add("loop:\n\tadd x1, x2, x3\n\tb loop\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("add x1 x2 x3")           // missing commas
	f.Add("ldr x1, [m1]\nstr")      // truncated
	f.Add("b next\nb loop\nb next") // branches
	f.Add(strings.Repeat("mov x1, x2\n", 100))

	f.Fuzz(func(t *testing.T, text string) {
		seq, err := ParseProgram(pool, text)
		if err != nil {
			return
		}
		out := FormatProgram(pool, seq)
		back, err := ParseProgram(pool, out)
		if err != nil {
			t.Fatalf("formatted program does not re-parse: %v\n%s", err, out)
		}
		if len(back) != len(seq) {
			t.Fatalf("round trip changed length %d -> %d", len(seq), len(back))
		}
		for i := range seq {
			if seq[i].Dest != back[i].Dest || seq[i].Srcs != back[i].Srcs ||
				seq[i].Addr != back[i].Addr || seq[i].Def.Mnemonic != back[i].Def.Mnemonic {
				t.Fatalf("round trip changed instruction %d", i)
			}
		}
	})
}

// FuzzLoadPoolXML throws arbitrary bytes at the XML pool loader: never
// panic, and accepted pools must round-trip through WritePoolXML.
func FuzzLoadPoolXML(f *testing.F) {
	var good strings.Builder
	if err := WritePoolXML(&good, ARM64Pool()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("<pool></pool>")
	f.Add("not xml")
	f.Add(`<pool arch="arm64" int-regs="8" vec-regs="8" mem-slots="4">
		<instruction mnemonic="x" class="int-short" unit="alu" latency="1"/></pool>`)

	f.Fuzz(func(t *testing.T, text string) {
		p, err := LoadPoolXML(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WritePoolXML(&buf, p); err != nil {
			t.Fatalf("accepted pool does not serialize: %v", err)
		}
		back, err := LoadPoolXML(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("serialized pool does not re-load: %v", err)
		}
		if len(back.Defs) != len(p.Defs) || back.Arch != p.Arch {
			t.Fatal("round trip changed the pool")
		}
	})
}
