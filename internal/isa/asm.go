package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembly text form. Individuals travel between the GA workstation and the
// target machine as text (the paper ships source code over SSH), so every
// sequence can be formatted as a loop body and parsed back losslessly.
//
// The syntax is a simplified, uniform assembler:
//
//	# pool: arm64
//	loop:
//		add x3, x1, x2
//		ldr x5, [m3]
//		str x5, [m2]
//		b next
//		b loop
//
// Operand order is always: destination register (if any), source registers,
// memory slot. The trailing "b loop" / "jmp loop" closes the stress loop
// and is not part of the individual; a "b next" is the paper's dummy
// unconditional branch gene.

// regPrefix returns the register-name prefix for a register file under an
// architecture.
func regPrefix(arch Arch, rf RegFile) string {
	if arch == X86 {
		if rf == RegVec {
			return "xmm"
		}
		return "r"
	}
	if rf == RegVec {
		return "v"
	}
	return "x"
}

// loopBranch returns the instruction text that closes the loop.
func loopBranch(arch Arch) string {
	if arch == X86 {
		return "jmp loop"
	}
	return "b loop"
}

// FormatInst renders one instruction instance.
func FormatInst(p *Pool, in Inst) string {
	d := in.Def
	var ops []string
	if !d.NoDest {
		ops = append(ops, regPrefix(p.Arch, d.RegFile)+strconv.Itoa(in.Dest))
	}
	for i := 0; i < d.NSrc; i++ {
		ops = append(ops, regPrefix(p.Arch, d.RegFile)+strconv.Itoa(in.Srcs[i]))
	}
	if d.Mem != MemNone {
		ops = append(ops, "[m"+strconv.Itoa(in.Addr)+"]")
	}
	if d.Class == Branch {
		ops = append(ops, "next")
	}
	if len(ops) == 0 {
		return d.Mnemonic
	}
	return d.Mnemonic + " " + strings.Join(ops, ", ")
}

// FormatProgram renders a full loop: header comment, label, body, closing
// branch.
func FormatProgram(p *Pool, seq []Inst) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# pool: %s\n", p.Arch)
	b.WriteString("loop:\n")
	for _, in := range seq {
		b.WriteString("\t")
		b.WriteString(FormatInst(p, in))
		b.WriteString("\n")
	}
	b.WriteString("\t" + loopBranch(p.Arch) + "\n")
	return b.String()
}

// ParseProgram parses text produced by FormatProgram (or hand-written in
// the same syntax) back into an instruction sequence.
func ParseProgram(p *Pool, text string) ([]Inst, error) {
	var seq []Inst
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" || strings.HasSuffix(line, ":") {
			continue
		}
		if line == loopBranch(p.Arch) {
			continue
		}
		in, err := ParseInst(p, line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		seq = append(seq, in)
	}
	return seq, nil
}

// ParseInst parses a single instruction line.
func ParseInst(p *Pool, line string) (Inst, error) {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := fields[0]
	d, ok := p.DefByMnemonic(mnemonic)
	if !ok {
		return Inst{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	var ops []string
	if len(fields) == 2 {
		for _, op := range strings.Split(fields[1], ",") {
			op = strings.TrimSpace(op)
			if op != "" {
				ops = append(ops, op)
			}
		}
	}
	want := 0
	if !d.NoDest {
		want++
	}
	want += d.NSrc
	if d.Mem != MemNone {
		want++
	}
	if d.Class == Branch {
		want++
	}
	if len(ops) != want {
		return Inst{}, fmt.Errorf("%s: got %d operands, want %d", mnemonic, len(ops), want)
	}
	in := Inst{Def: d}
	idx := 0
	if !d.NoDest {
		r, err := parseReg(p, d, ops[idx])
		if err != nil {
			return Inst{}, fmt.Errorf("%s: dest: %w", mnemonic, err)
		}
		in.Dest = r
		idx++
	}
	for i := 0; i < d.NSrc; i++ {
		r, err := parseReg(p, d, ops[idx])
		if err != nil {
			return Inst{}, fmt.Errorf("%s: src %d: %w", mnemonic, i, err)
		}
		in.Srcs[i] = r
		idx++
	}
	if d.Mem != MemNone {
		a, err := parseMemSlot(p, ops[idx])
		if err != nil {
			return Inst{}, fmt.Errorf("%s: %w", mnemonic, err)
		}
		in.Addr = a
		idx++
	}
	if d.Class == Branch && ops[idx] != "next" {
		return Inst{}, fmt.Errorf("%s: branch target %q, want \"next\"", mnemonic, ops[idx])
	}
	return in, nil
}

func parseReg(p *Pool, d *Def, s string) (int, error) {
	prefix := regPrefix(p.Arch, d.RegFile)
	if !strings.HasPrefix(s, prefix) {
		return 0, fmt.Errorf("register %q does not match file prefix %q", s, prefix)
	}
	n, err := strconv.Atoi(s[len(prefix):])
	if err != nil {
		return 0, fmt.Errorf("register %q: %v", s, err)
	}
	limit := p.IntRegs
	if d.RegFile == RegVec {
		limit = p.VecRegs
	}
	if n < 0 || n >= limit {
		return 0, fmt.Errorf("register %q out of range [0,%d)", s, limit)
	}
	return n, nil
}

func parseMemSlot(p *Pool, s string) (int, error) {
	if !strings.HasPrefix(s, "[m") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("memory operand %q, want [mN]", s)
	}
	n, err := strconv.Atoi(s[2 : len(s)-1])
	if err != nil {
		return 0, fmt.Errorf("memory operand %q: %v", s, err)
	}
	if n < 0 || n >= p.MemSlots {
		return 0, fmt.Errorf("memory slot %q out of range [0,%d)", s, p.MemSlots)
	}
	return n, nil
}
