package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestArchRoundTrip(t *testing.T) {
	for _, a := range []Arch{ARM64, X86} {
		got, err := ParseArch(a.String())
		if err != nil || got != a {
			t.Errorf("ParseArch(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseArch("mips"); err == nil {
		t.Error("ParseArch accepted mips")
	}
	if s := Arch(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown arch string %q", s)
	}
}

func TestClassRoundTrip(t *testing.T) {
	for c := Branch; c <= Mem; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass accepted bogus")
	}
}

func TestUnitRoundTrip(t *testing.T) {
	for u := UnitALU; u < Unit(NumUnits); u++ {
		got, err := ParseUnit(u.String())
		if err != nil || got != u {
			t.Errorf("ParseUnit(%q) = %v, %v", u.String(), got, err)
		}
	}
	if _, err := ParseUnit("warp"); err == nil {
		t.Error("ParseUnit accepted warp")
	}
}

func TestDefValidate(t *testing.T) {
	good := Def{Mnemonic: "add", Latency: 1, Block: 1, NSrc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good def rejected: %v", err)
	}
	bad := []Def{
		{Latency: 1, Block: 1},                                       // empty mnemonic
		{Mnemonic: "x", Latency: 0, Block: 1},                        // latency < 1
		{Mnemonic: "x", Latency: 2, Block: 3},                        // block > latency
		{Mnemonic: "x", Latency: 1, Block: 0},                        // block < 1
		{Mnemonic: "x", Latency: 1, Block: 1, Charge: -1},            // negative charge
		{Mnemonic: "x", Latency: 1, Block: 1, NSrc: 3},               // too many sources
		{Mnemonic: "x", Latency: 1, Block: 1, NSrc: -1, Charge: 0.1}, // negative sources
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad def %d accepted", i)
		}
	}
}

func TestBuiltinPools(t *testing.T) {
	for _, p := range []*Pool{ARM64Pool(), X86Pool()} {
		if len(p.Defs) < 15 {
			t.Errorf("%v pool has only %d defs", p.Arch, len(p.Defs))
		}
		// Every class the paper uses must be present.
		classes := make(map[Class]bool)
		for i := range p.Defs {
			classes[p.Defs[i].Class] = true
		}
		want := []Class{IntShort, IntLong, Float, SIMD}
		if p.Arch == ARM64 {
			want = append(want, Mem, Branch)
		} else {
			want = append(want, IntShortMem, IntLongMem)
		}
		for _, c := range want {
			if !classes[c] {
				t.Errorf("%v pool missing class %v", p.Arch, c)
			}
		}
	}
}

func TestPoolForSelectsArch(t *testing.T) {
	if PoolFor(ARM64).Arch != ARM64 {
		t.Error("PoolFor(ARM64) wrong arch")
	}
	if PoolFor(X86).Arch != X86 {
		t.Error("PoolFor(X86) wrong arch")
	}
}

func TestNewPoolRejectsBadInput(t *testing.T) {
	goodDefs := []Def{{Mnemonic: "add", Latency: 1, Block: 1}}
	if _, err := NewPool(ARM64, nil, 8, 8, 4); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewPool(ARM64, goodDefs, 1, 8, 4); err == nil {
		t.Error("1 int reg accepted")
	}
	if _, err := NewPool(ARM64, goodDefs, 8, 8, 0); err == nil {
		t.Error("0 mem slots accepted")
	}
	dup := []Def{
		{Mnemonic: "add", Latency: 1, Block: 1},
		{Mnemonic: "add", Latency: 1, Block: 1},
	}
	if _, err := NewPool(ARM64, dup, 8, 8, 4); err == nil {
		t.Error("duplicate mnemonic accepted")
	}
	invalid := []Def{{Mnemonic: "bad", Latency: 0, Block: 1}}
	if _, err := NewPool(ARM64, invalid, 8, 8, 4); err == nil {
		t.Error("invalid def accepted")
	}
}

func TestRandomInstOperandsInRange(t *testing.T) {
	p := ARM64Pool()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		in := p.RandomInst(rng)
		limit := p.IntRegs
		if in.Def.RegFile == RegVec {
			limit = p.VecRegs
		}
		if !in.Def.NoDest && (in.Dest < 0 || in.Dest >= limit) {
			t.Fatalf("dest %d out of range for %s", in.Dest, in.Def.Mnemonic)
		}
		for j := 0; j < in.Def.NSrc; j++ {
			if in.Srcs[j] < 0 || in.Srcs[j] >= limit {
				t.Fatalf("src %d out of range for %s", in.Srcs[j], in.Def.Mnemonic)
			}
		}
		if in.Def.Mem != MemNone && (in.Addr < 0 || in.Addr >= p.MemSlots) {
			t.Fatalf("addr %d out of range for %s", in.Addr, in.Def.Mnemonic)
		}
	}
}

func TestRandomSequenceLength(t *testing.T) {
	p := X86Pool()
	seq := p.RandomSequence(rand.New(rand.NewSource(2)), 50)
	if len(seq) != 50 {
		t.Fatalf("sequence length %d", len(seq))
	}
}

func TestSources(t *testing.T) {
	p := X86Pool()
	add, _ := p.DefByMnemonic("add") // two-operand: dest is also a source
	in := Inst{Def: add, Dest: 3, Srcs: [2]int{5, 0}}
	srcs := in.Sources()
	if len(srcs) != 2 || srcs[0] != 5 || srcs[1] != 3 {
		t.Fatalf("Sources = %v, want [5 3]", srcs)
	}
	pa := ARM64Pool()
	armAdd, _ := pa.DefByMnemonic("add") // three-operand
	in2 := Inst{Def: armAdd, Dest: 1, Srcs: [2]int{2, 3}}
	srcs2 := in2.Sources()
	if len(srcs2) != 2 || srcs2[0] != 2 || srcs2[1] != 3 {
		t.Fatalf("ARM Sources = %v, want [2 3]", srcs2)
	}
	b, _ := pa.DefByMnemonic("b")
	if s := (Inst{Def: b}).Sources(); len(s) != 0 {
		t.Fatalf("branch Sources = %v", s)
	}
}

func TestMutateOperandStaysInRange(t *testing.T) {
	p := ARM64Pool()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		in := p.RandomInst(rng)
		before := in
		p.MutateOperand(rng, &in)
		if in.Def != before.Def {
			t.Fatal("MutateOperand changed the definition")
		}
		limit := p.IntRegs
		if in.Def.RegFile == RegVec {
			limit = p.VecRegs
		}
		if !in.Def.NoDest && (in.Dest < 0 || in.Dest >= limit) {
			t.Fatalf("mutated dest out of range for %s", in.Def.Mnemonic)
		}
		if in.Def.Mem != MemNone && (in.Addr < 0 || in.Addr >= p.MemSlots) {
			t.Fatalf("mutated addr out of range")
		}
	}
}

func TestMixBreakdown(t *testing.T) {
	p := ARM64Pool()
	add, _ := p.DefByMnemonic("add")
	fmul, _ := p.DefByMnemonic("fmul")
	seq := []Inst{{Def: add}, {Def: add}, {Def: fmul}, {Def: fmul}}
	mix := MixBreakdown(seq)
	if mix[IntShort] != 0.5 || mix[Float] != 0.5 {
		t.Fatalf("MixBreakdown = %v", mix)
	}
	if MixBreakdown(nil) != nil {
		t.Fatal("empty breakdown not nil")
	}
}

func TestFormatParseInstExamples(t *testing.T) {
	pa := ARM64Pool()
	px := X86Pool()
	cases := []struct {
		pool *Pool
		text string
	}{
		{pa, "add x3, x1, x2"},
		{pa, "ldr x5, [m3]"},
		{pa, "str x5, [m2]"},
		{pa, "fmadd v1, v2, v3"},
		{pa, "fsqrt v4, v5"},
		{pa, "b next"},
		{px, "add r3, r1"},
		{px, "mov r2, r9"},
		{px, "addmem r5, [m1]"},
		{px, "movstore r4, [m0]"},
		{px, "movload r6, [m7]"},
		{px, "sqrtps xmm2, xmm3"},
	}
	for _, tc := range cases {
		in, err := ParseInst(tc.pool, tc.text)
		if err != nil {
			t.Errorf("ParseInst(%q): %v", tc.text, err)
			continue
		}
		if got := FormatInst(tc.pool, in); got != tc.text {
			t.Errorf("round trip %q -> %q", tc.text, got)
		}
	}
}

func TestParseInstErrors(t *testing.T) {
	p := ARM64Pool()
	cases := []string{
		"frobnicate x1, x2",  // unknown mnemonic
		"add x1, x2",         // operand count
		"add r1, r2, r3",     // wrong prefix
		"add x1, x2, x99",    // register range
		"ldr x1, [m99]",      // mem slot range
		"ldr x1, (m1)",       // mem syntax
		"add xq, x2, x3",     // register number garbage
		"b elsewhere",        // branch target
		"ldr x1, [mzz]",      // mem slot garbage
		"add x1, x2, x3, x4", // too many operands
	}
	for _, text := range cases {
		if _, err := ParseInst(p, text); err == nil {
			t.Errorf("ParseInst(%q) succeeded", text)
		}
	}
}

// Property: FormatProgram/ParseProgram round-trips random sequences on both
// architectures.
func TestProgramRoundTripProperty(t *testing.T) {
	pools := []*Pool{ARM64Pool(), X86Pool()}
	prop := func(seed int64, poolPick bool) bool {
		p := pools[0]
		if poolPick {
			p = pools[1]
		}
		rng := rand.New(rand.NewSource(seed))
		seq := p.RandomSequence(rng, 1+rng.Intn(60))
		text := FormatProgram(p, seq)
		back, err := ParseProgram(p, text)
		if err != nil {
			return false
		}
		if len(back) != len(seq) {
			return false
		}
		for i := range seq {
			if seq[i].Def != back[i].Def || seq[i].Dest != back[i].Dest ||
				seq[i].Srcs != back[i].Srcs || seq[i].Addr != back[i].Addr {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseProgramSkipsCommentsAndLabels(t *testing.T) {
	p := ARM64Pool()
	text := "# pool: arm64\nloop:\n  add x1, x2, x3  ; trailing comment\n\n  b loop\n"
	seq, err := ParseProgram(p, text)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	if len(seq) != 1 || seq[0].Def.Mnemonic != "add" {
		t.Fatalf("seq = %+v", seq)
	}
}

func TestParseProgramReportsLine(t *testing.T) {
	p := ARM64Pool()
	_, err := ParseProgram(p, "loop:\n\tadd x1, x2, x3\n\tbroken\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3 mention", err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	for _, p := range []*Pool{ARM64Pool(), X86Pool()} {
		var b strings.Builder
		if err := WritePoolXML(&b, p); err != nil {
			t.Fatalf("WritePoolXML: %v", err)
		}
		back, err := LoadPoolXML(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("LoadPoolXML: %v", err)
		}
		if back.Arch != p.Arch || back.IntRegs != p.IntRegs ||
			back.VecRegs != p.VecRegs || back.MemSlots != p.MemSlots {
			t.Fatalf("pool header mismatch: %+v", back)
		}
		if len(back.Defs) != len(p.Defs) {
			t.Fatalf("def count %d vs %d", len(back.Defs), len(p.Defs))
		}
		for i := range p.Defs {
			if p.Defs[i] != back.Defs[i] {
				t.Fatalf("def %d mismatch:\n%+v\n%+v", i, p.Defs[i], back.Defs[i])
			}
		}
	}
}

func TestLoadPoolXMLErrors(t *testing.T) {
	cases := []string{
		"not xml at all <",
		`<pool arch="mips" int-regs="8" vec-regs="8" mem-slots="4"></pool>`,
		`<pool arch="arm64" int-regs="8" vec-regs="8" mem-slots="4">
			<instruction mnemonic="x" class="nope" unit="alu" latency="1"/></pool>`,
		`<pool arch="arm64" int-regs="8" vec-regs="8" mem-slots="4">
			<instruction mnemonic="x" class="int-short" unit="nope" latency="1"/></pool>`,
		`<pool arch="arm64" int-regs="8" vec-regs="8" mem-slots="4">
			<instruction mnemonic="x" class="int-short" unit="alu" latency="1" mem="sideways"/></pool>`,
		`<pool arch="arm64" int-regs="8" vec-regs="8" mem-slots="4">
			<instruction mnemonic="x" class="int-short" unit="alu" latency="1" regfile="quantum"/></pool>`,
		`<pool arch="arm64" int-regs="8" vec-regs="8" mem-slots="4">
			<instruction mnemonic="x" class="int-short" unit="alu" latency="0"/></pool>`,
	}
	for i, text := range cases {
		if _, err := LoadPoolXML(strings.NewReader(text)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
