package isa

import (
	"strings"
	"testing"
)

// toyDefs is a minimal valid instruction set for registry tests. Each call
// returns fresh defs so mutation by one test cannot leak into another.
func toyDefs() []Def {
	return []Def{
		{Mnemonic: "add", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.1e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "ld", Class: Mem, Unit: UnitLS, Latency: 3, Block: 1, Charge: 0.3e-9, RegFile: RegInt, Mem: MemLoad},
		{Mnemonic: "j", Class: Branch, Unit: UnitBranch, Latency: 1, Block: 1, Charge: 0.05e-9, RegFile: RegInt, NoDest: true},
	}
}

func TestDefineArchIdempotent(t *testing.T) {
	id1, err := DefineArch("reg-test-idem", toyDefs(), 8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := DefineArch("reg-test-idem", toyDefs(), 8, 8, 4)
	if err != nil {
		t.Fatalf("identical re-registration rejected: %v", err)
	}
	if id1 != id2 {
		t.Fatalf("ids differ across registrations: %d vs %d", id1, id2)
	}
}

func TestDefineArchConflict(t *testing.T) {
	if _, err := DefineArch("reg-test-conflict", toyDefs(), 8, 8, 4); err != nil {
		t.Fatal(err)
	}
	defs := toyDefs()
	defs[0].Charge *= 2
	_, err := DefineArch("reg-test-conflict", defs, 8, 8, 4)
	if err == nil {
		t.Fatal("conflicting pool accepted")
	}
	if !strings.Contains(err.Error(), "different instruction pool") {
		t.Errorf("error %q does not describe the conflict", err)
	}
}

// TestArchIDStable pins the derived ids: they are pure functions of the
// name (FNV-1a, 62-bit), so two processes loading the same spec file agree
// on every downstream cache key without coordinating. A change here
// orphans persistent cache entries — it must be deliberate.
func TestArchIDStable(t *testing.T) {
	id, err := DefineArch("riscv64", toyDefs(), 8, 8, 4)
	if err != nil && !strings.Contains(err.Error(), "different instruction pool") {
		t.Fatal(err)
	}
	if err != nil {
		// Another test (or an embedded spec) already registered riscv64
		// with its real pool; the id is still the name hash.
		id, err = ParseArch("riscv64")
		if err != nil {
			t.Fatal(err)
		}
	}
	if want := Arch(1081435589864979470); id != want {
		t.Fatalf("riscv64 id = %d, want %d", id, want)
	}
	if ARM64 != 0 || X86 != 1 {
		t.Fatalf("legacy enum ids moved: arm64=%d x86=%d", ARM64, X86)
	}
}

func TestInternArchUpgrade(t *testing.T) {
	id, err := InternArch("reg-test-intern")
	if err != nil {
		t.Fatal(err)
	}
	if got := id.String(); got != "reg-test-intern" {
		t.Fatalf("interned arch String() = %q", got)
	}
	if p := PoolFor(id); p != nil {
		t.Fatal("interned arch has a pool before DefineArch")
	}
	id2, err := DefineArch("reg-test-intern", toyDefs(), 8, 8, 4)
	if err != nil {
		t.Fatalf("upgrading interned binding: %v", err)
	}
	if id2 != id {
		t.Fatalf("upgrade changed id: %d vs %d", id2, id)
	}
	p := PoolFor(id)
	if p == nil {
		t.Fatal("no pool after upgrade")
	}
	if _, ok := p.DefByMnemonic("add"); !ok {
		t.Fatal("upgraded pool lacks its definitions")
	}
}

func TestValidateArchName(t *testing.T) {
	for _, ok := range []string{"arm64", "riscv64", "my-dsp.v2", "a_b"} {
		if err := ValidateArchName(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "Has Space", "UPPER", "naïve", "semi;colon"} {
		if err := ValidateArchName(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseArchRoundTrip(t *testing.T) {
	id, err := DefineArch("reg-test-roundtrip", toyDefs(), 8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseArch("reg-test-roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got != id || got.String() != "reg-test-roundtrip" {
		t.Fatalf("round trip: %d %q, want %d", got, got.String(), id)
	}
	// Legacy aliases still resolve to the x86 builtin.
	for _, alias := range []string{"x86", "amd64", "x86-64"} {
		if a, err := ParseArch(alias); err != nil || a != X86 {
			t.Errorf("ParseArch(%q) = %v, %v", alias, a, err)
		}
	}
	if _, err := ParseArch("vax"); err == nil {
		t.Error("unknown architecture accepted")
	}
}
